package repro

// The benchmark harness: one benchmark per evaluation artifact of the
// paper (see DESIGN.md's per-experiment index). Where the artifact is
// a communication count, the benchmark reports it via ReportMetric
// (words/op or words/proc) alongside wall time, so `go test -bench=.`
// regenerates the quantities behind every table-like claim and figure.

import (
	"fmt"
	"testing"

	"repro/internal/bounds"
	"repro/internal/cachesim"
	"repro/internal/comm"
	"repro/internal/costmodel"
	"repro/internal/cpals"
	"repro/internal/dimtree"
	"repro/internal/hbl"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/par"
	"repro/internal/pebble"
	"repro/internal/plan"
	"repro/internal/seq"
	"repro/internal/simnet"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/ttm"
	"repro/internal/tucker"
	"repro/internal/workload"
)

func benchProblem(b *testing.B, side, R int) (*tensor.Dense, []*tensor.Matrix) {
	b.Helper()
	inst, err := workload.Generate(workload.Cubical(3, side, R, 42))
	if err != nil {
		b.Fatal(err)
	}
	return inst.X, inst.Factors
}

// BenchmarkMTTKRPKernel measures the plain atomic kernel (Definition
// 2.1) — the baseline local computation of every algorithm.
func BenchmarkMTTKRPKernel(b *testing.B) {
	x, fs := benchProblem(b, 32, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq.Ref(x, fs, 0)
	}
}

// BenchmarkMTTKRPKernelWorkers measures the shared-memory parallel
// kernel's multicore scaling.
func BenchmarkMTTKRPKernelWorkers(b *testing.B) {
	x, fs := benchProblem(b, 32, 16)
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(sizeName("w", int64(w)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.RefParallel(x, fs, 0, w)
			}
		})
	}
}

// BenchmarkMTTKRPKernelEngines is the head-to-head of the three
// shared-memory kernels — atomic reference, its multicore split, and
// the KRP-splitting engine — across tensor orders 3-5 at roughly equal
// element counts.
func BenchmarkMTTKRPKernelEngines(b *testing.B) {
	shapes := map[int][]int{
		3: {32, 32, 32},
		4: {16, 16, 16, 16},
		5: {10, 10, 10, 10, 10},
	}
	const R = 16
	for order := 3; order <= 5; order++ {
		dims := shapes[order]
		x := tensor.RandomDense(42, dims...)
		fs := tensor.RandomFactors(43, dims, R)
		n := order / 2 // interior mode: the hardest case for the engine
		b.Run(sizeName("order", int64(order))+"/ref", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.Ref(x, fs, n)
			}
		})
		b.Run(sizeName("order", int64(order))+"/refparallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.RefParallel(x, fs, n, 0)
			}
		})
		b.Run(sizeName("order", int64(order))+"/fast", func(b *testing.B) {
			ws := kernel.NewWorkspace(dims, R, n)
			out := tensor.NewMatrix(dims[n], R)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernel.FastInto(out, x, fs, n, 0, ws)
			}
		})
	}
}

// BenchmarkMTTKRPKernel128 is the acceptance benchmark: the engine on
// a 128^3, R=16 problem with a reused workspace must beat seq.Ref by
// >= 3x and allocate nothing in steady state (run with -benchmem).
func BenchmarkMTTKRPKernel128(b *testing.B) {
	dims := []int{128, 128, 128}
	const R, n = 16, 1
	x := tensor.RandomDense(42, dims...)
	fs := tensor.RandomFactors(43, dims, R)
	b.Run("ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.Ref(x, fs, n)
		}
	})
	b.Run("fast", func(b *testing.B) {
		ws := kernel.NewWorkspace(dims, R, n)
		out := tensor.NewMatrix(dims[n], R)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kernel.FastInto(out, x, fs, n, 0, ws)
		}
	})
}

// BenchmarkCPALSInnerMTTKRP measures the steady-state CP-ALS inner
// iteration as Decompose runs it: an all-modes FastInto sweep with a
// reused workspace and preallocated outputs. With -benchmem this
// demonstrates the engine's zero-allocation contract.
func BenchmarkCPALSInnerMTTKRP(b *testing.B) {
	dims := []int{48, 48, 48}
	const R = 8
	x := tensor.RandomDense(42, dims...)
	fs := tensor.RandomFactors(43, dims, R)
	ws := kernel.NewWorkspace(dims, R, 1)
	bs := make([]*tensor.Matrix, len(dims))
	for n := range bs {
		bs[n] = tensor.NewMatrix(dims[n], R)
	}
	for n := range bs { // warm the workspace to steady state
		kernel.FastInto(bs[n], x, fs, n, 0, ws)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := range bs {
			kernel.FastInto(bs[n], x, fs, n, 0, ws)
		}
	}
}

// BenchmarkTreeALS compares plain ALS sweeps with the Phan-style
// prefix-reuse sweeps (identical mathematics, fewer operations).
func BenchmarkTreeALS(b *testing.B) {
	inst, err := workload.Generate(workload.Cubical(4, 10, 4, 42))
	if err != nil {
		b.Fatal(err)
	}
	opts := cpals.Options{R: 4, MaxIters: 3, Tol: 0, Seed: 5}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cpals.Decompose(inst.X, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree", func(b *testing.B) {
		var flops int64
		for i := 0; i < b.N; i++ {
			_, _, f, err := cpals.DecomposeTree(inst.X, opts)
			if err != nil {
				b.Fatal(err)
			}
			flops = f
		}
		b.ReportMetric(float64(flops), "mttkrp-flops")
	})
}

// BenchmarkLocalKernels compares the atomic kernel with the
// atomicity-breaking local KRP+GEMM variant (E12: Eq. (17)) — same
// result, fewer operations.
func BenchmarkLocalKernels(b *testing.B) {
	x, fs := benchProblem(b, 24, 16)
	b.Run("atomic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.Ref(x, fs, 0)
		}
	})
	b.Run("krp-gemm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := seq.ViaMatmul(x, fs, 0, memsim.New(1<<20))
			if err != nil {
				b.Fatal(err)
			}
			_ = res
		}
	})
}

// BenchmarkSeqBlockedComm regenerates E3 (Theorem 6.1): blocked
// algorithm words across fast-memory sizes; words/op is the measured
// communication.
func BenchmarkSeqBlockedComm(b *testing.B) {
	x, fs := benchProblem(b, 16, 8)
	for _, M := range []int64{64, 256, 1024, 4096} {
		M := M
		b.Run(sizeName("M", M), func(b *testing.B) {
			blk, err := seq.ChooseBlock(M, 3, 0.9)
			if err != nil {
				b.Fatal(err)
			}
			var words int64
			for i := 0; i < b.N; i++ {
				res, err := seq.Blocked(x, fs, 0, blk, memsim.New(M))
				if err != nil {
					b.Fatal(err)
				}
				words = res.Counts.Words()
			}
			b.ReportMetric(float64(words), "words/op")
		})
	}
}

// BenchmarkSeqVsMatmul regenerates E4 (Section VI-A): blocked vs
// via-matmul at one machine size.
func BenchmarkSeqVsMatmul(b *testing.B) {
	x, fs := benchProblem(b, 16, 32)
	const M = 512
	b.Run("blocked", func(b *testing.B) {
		blk, err := seq.ChooseBlock(M, 3, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		var words int64
		for i := 0; i < b.N; i++ {
			res, err := seq.Blocked(x, fs, 0, blk, memsim.New(M))
			if err != nil {
				b.Fatal(err)
			}
			words = res.Counts.Words()
		}
		b.ReportMetric(float64(words), "words/op")
	})
	b.Run("via-matmul", func(b *testing.B) {
		var words int64
		for i := 0; i < b.N; i++ {
			res, err := seq.ViaMatmul(x, fs, 0, memsim.New(M))
			if err != nil {
				b.Fatal(err)
			}
			words = res.Counts.Words()
		}
		b.ReportMetric(float64(words), "words/op")
	})
}

// BenchmarkSeqUnblocked regenerates the Algorithm 1 cost line: exactly
// I + IR(N+1) words.
func BenchmarkSeqUnblocked(b *testing.B) {
	x, fs := benchProblem(b, 12, 4)
	var words int64
	for i := 0; i < b.N; i++ {
		res, err := seq.Unblocked(x, fs, 0, memsim.New(64))
		if err != nil {
			b.Fatal(err)
		}
		words = res.Counts.Words()
	}
	b.ReportMetric(float64(words), "words/op")
}

// BenchmarkParStationary regenerates E5's Algorithm 3 rows: measured
// per-processor words across P, with grids chosen by the exact cost
// model.
func BenchmarkParStationary(b *testing.B) {
	x, fs := benchProblem(b, 16, 8)
	for _, P := range []int{2, 8, 64} {
		P := P
		b.Run(sizeName("P", int64(P)), func(b *testing.B) {
			shape, err := costmodel.BestStationaryExact(x.Dims(), 8, P)
			if err != nil {
				b.Fatal(err)
			}
			var words int64
			for i := 0; i < b.N; i++ {
				res, err := par.Stationary(x, fs, 0, shape)
				if err != nil {
					b.Fatal(err)
				}
				words = res.MaxWords()
			}
			b.ReportMetric(float64(words), "words/proc")
		})
	}
}

// BenchmarkParGeneral regenerates E5's Algorithm 4 rows.
func BenchmarkParGeneral(b *testing.B) {
	x, fs := benchProblem(b, 16, 8)
	for _, P := range []int{2, 8, 64} {
		P := P
		b.Run(sizeName("P", int64(P)), func(b *testing.B) {
			shape, err := costmodel.BestGeneralExact(x.Dims(), 8, P)
			if err != nil {
				b.Fatal(err)
			}
			var words int64
			for i := 0; i < b.N; i++ {
				res, err := par.General(x, fs, 0, shape)
				if err != nil {
					b.Fatal(err)
				}
				words = res.MaxWords()
			}
			b.ReportMetric(float64(words), "words/proc")
		})
	}
}

// BenchmarkParViaMatmul regenerates E5's baseline rows — the flat
// curve of Figure 4 measured on the simulator.
func BenchmarkParViaMatmul(b *testing.B) {
	x, fs := benchProblem(b, 16, 8)
	for _, P := range []int{2, 8, 64} {
		P := P
		b.Run(sizeName("P", int64(P)), func(b *testing.B) {
			var words int64
			for i := 0; i < b.N; i++ {
				res, err := par.ViaMatmul1D(x, fs, 0, P)
				if err != nil {
					b.Fatal(err)
				}
				words = res.MaxWords()
			}
			b.ReportMetric(float64(words), "words/proc")
		})
	}
}

// BenchmarkFig4Model regenerates E1/E2: the full Figure 4 sweep (31
// points, three curves, exhaustive power-of-two grid search at each).
func BenchmarkFig4Model(b *testing.B) {
	var rows []costmodel.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = costmodel.Fig4Series(30)
	}
	c := costmodel.ComputeFig4Callouts(rows)
	b.ReportMetric(float64(c.DivergeExp), "diverge-exp")
	b.ReportMetric(c.RatioAt17, "ratio@2^17")
}

// BenchmarkCPALS regenerates E10: sequential and distributed CP-ALS
// sweeps, reporting the parallel run's MTTKRP communication share.
func BenchmarkCPALS(b *testing.B) {
	inst, err := workload.Generate(workload.Spec{
		Dims: []int{16, 16, 16}, R: 4, Seed: 7, Noise: 0.01,
	})
	if err != nil {
		b.Fatal(err)
	}
	opts := cpals.Options{R: 4, MaxIters: 5, Tol: 0, Seed: 9}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cpals.Decompose(inst.X, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-2x2x2", func(b *testing.B) {
		var share float64
		for i := 0; i < b.N; i++ {
			res, err := cpals.DecomposeParallel(inst.X, []int{2, 2, 2}, opts)
			if err != nil {
				b.Fatal(err)
			}
			mt, ot := res.MaxMTTKRPWords(), res.MaxOtherWords()
			share = float64(mt) / float64(mt+ot)
		}
		b.ReportMetric(100*share, "mttkrp-comm-%")
	})
}

// BenchmarkDimTree regenerates E14: all-modes MTTKRP via a dimension
// tree versus N independent atomic passes; flops-saved is the ratio.
func BenchmarkDimTree(b *testing.B) {
	inst, err := workload.Generate(workload.Cubical(4, 12, 8, 42))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tree", func(b *testing.B) {
		var flops int64
		for i := 0; i < b.N; i++ {
			flops = dimtree.AllModes(inst.X, inst.Factors).Flops
		}
		b.ReportMetric(float64(dimtree.NaiveFlops(inst.X.Dims(), 8))/float64(flops), "flops-saved-x")
	})
	b.Run("independent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for n := 0; n < 4; n++ {
				seq.Ref(inst.X, inst.Factors, n)
			}
		}
	})
}

// BenchmarkDimTreeAllModes regenerates E22: the GEMM-based
// dimension-tree engine against (a) the scalar tree it replaced and
// (b) N independent KRP-splitting kernel calls — the head-to-head the
// multi-MTTKRP sharing argument rests on. fast-tree reports allocs to
// witness the zero-steady-state contract.
func BenchmarkDimTreeAllModes(b *testing.B) {
	for _, cfg := range []struct {
		name string
		dims []int
	}{
		{"128c3", []int{128, 128, 128}},
		{"32c5", []int{32, 32, 32, 32, 32}},
	} {
		const R = 16
		x := tensor.RandomDense(42, cfg.dims...)
		fs := tensor.RandomFactors(43, cfg.dims, R)
		N := len(cfg.dims)
		b.Run(cfg.name+"/fast-tree", func(b *testing.B) {
			eng := dimtree.NewEngine(0)
			res := &dimtree.Result{}
			eng.AllModesInto(res, x, fs) // reach steady state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.AllModesInto(res, x, fs)
			}
		})
		b.Run(cfg.name+"/independent-fast", func(b *testing.B) {
			ws := kernel.GetWorkspace()
			defer kernel.PutWorkspace(ws)
			outs := make([]*tensor.Matrix, N)
			for n := 0; n < N; n++ {
				outs[n] = tensor.NewMatrix(x.Dim(n), R)
				kernel.FastInto(outs[n], x, fs, n, 0, ws) // grow the workspace to steady state
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for n := 0; n < N; n++ {
					kernel.FastInto(outs[n], x, fs, n, 0, ws)
				}
			}
		})
		b.Run(cfg.name+"/scalar-tree", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dimtree.AllModesRef(x, fs)
			}
		})
	}
}

// BenchmarkLRUReplay regenerates E13: LRU traffic of the blocked and
// unblocked orderings at one machine size.
func BenchmarkLRUReplay(b *testing.B) {
	dims := []int{12, 12, 12}
	const R, n, M = 8, 0, 128
	l := trace.NewLayout(dims, R, n)
	b.Run("blocked", func(b *testing.B) {
		var words int64
		for i := 0; i < b.N; i++ {
			res := cachesim.Simulate(M, func(e func(trace.Access)) { trace.Blocked(l, n, 4, e) })
			words = res.Words()
		}
		b.ReportMetric(float64(words), "words/op")
	})
	b.Run("unblocked", func(b *testing.B) {
		var words int64
		for i := 0; i < b.N; i++ {
			res := cachesim.Simulate(M, func(e func(trace.Access)) { trace.Unblocked(l, n, e) })
			words = res.Words()
		}
		b.ReportMetric(float64(words), "words/op")
	})
}

// BenchmarkNaiveVsBucketCollectives quantifies the collective-algorithm
// ablation: max per-rank words of bucket vs root-based All-Gather.
func BenchmarkNaiveVsBucketCollectives(b *testing.B) {
	const q, w = 8, 256
	ranks := make([]int, q)
	for i := range ranks {
		ranks[i] = i
	}
	run := func(b *testing.B, naive bool) {
		var maxWords int64
		for i := 0; i < b.N; i++ {
			net := simnet.New(q)
			err := net.Run(func(rank int) error {
				c := comm.New(net, ranks, rank)
				if naive {
					c.NaiveAllGatherV(make([]float64, w))
				} else {
					c.AllGatherV(make([]float64, w))
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			maxWords = net.MaxWords()
		}
		b.ReportMetric(float64(maxWords), "max-words/proc")
	}
	b.Run("bucket", func(b *testing.B) { run(b, false) })
	b.Run("naive", func(b *testing.B) { run(b, true) })
}

// BenchmarkTucker measures the HOOI application built on the TTM
// substrate (the paper's "other related computational kernels").
func BenchmarkTucker(b *testing.B) {
	x := tensor.RandomDense(42, 16, 16, 16)
	for i := 0; i < b.N; i++ {
		if _, _, err := tucker.Decompose(x, tucker.Options{Ranks: []int{4, 4, 4}, MaxIters: 3, Tol: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTTMChain is E29's kernel half: the full greedy TTM chain
// (the HOOI core contraction) on a 128^3, rank-16 problem. "scalar" is
// the retained per-element reference; "engine" is the blocked-GEMM
// chain into a reused output and workspace (zero steady-state
// allocations — the allocs/op column is part of the artifact);
// "engine-par" lets the slab parallelism use every core.
func BenchmarkTTMChain(b *testing.B) {
	dims := []int{128, 128, 128}
	ranks := []int{16, 16, 16}
	x := tensor.RandomDense(42, dims...)
	us := make([]*tensor.Matrix, len(dims))
	for k := range dims {
		us[k] = tensor.RandomMatrix(int64(43+k), dims[k], ranks[k])
	}
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ttm.ChainScalar(x, us, -1)
		}
	})
	b.Run("engine", func(b *testing.B) {
		out := tensor.NewDense(ranks...)
		ws := ttm.NewWorkspace()
		ttm.ChainInto(out, x, us, -1, 1, ws)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ttm.ChainInto(out, x, us, -1, 1, ws)
		}
	})
	b.Run("engine-par", func(b *testing.B) {
		out := tensor.NewDense(ranks...)
		ws := ttm.NewWorkspace()
		ttm.ChainInto(out, x, us, -1, 0, ws)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ttm.ChainInto(out, x, us, -1, 0, ws)
		}
	})
}

// BenchmarkTuckerHOOI is E29's application half: one full HOOI sweep
// body at 128^3 ranks 16 — per-mode projection chain plus mode Gram,
// then the core contraction — with the eigensolves excluded so the
// comparison isolates the TTM substrate. "scalar" pairs the scalar
// chain with the explicit Unfold + MatMulTransB Gram (the pre-engine
// formulation); "engine" is the production ChainInto/GramInto path
// with every buffer reused.
func BenchmarkTuckerHOOI(b *testing.B) {
	dims := []int{128, 128, 128}
	ranks := []int{16, 16, 16}
	x := tensor.RandomDense(7, dims...)
	us := make([]*tensor.Matrix, len(dims))
	for k := range dims {
		us[k] = tensor.RandomMatrix(int64(8+k), dims[k], ranks[k])
	}
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k := range dims {
				y := ttm.ChainScalar(x, us, k)
				yk := tensor.Unfold(y, k)
				linalg.MatMulTransB(yk, yk)
			}
			ttm.ChainScalar(x, us, -1)
		}
	})
	run := func(b *testing.B, workers int) {
		ws := ttm.NewWorkspace()
		yBuf := make([]*tensor.Dense, len(dims))
		gramBuf := make([]*tensor.Matrix, len(dims))
		for k := range dims {
			ydims := append([]int(nil), ranks...)
			ydims[k] = dims[k]
			yBuf[k] = tensor.NewDense(ydims...)
			gramBuf[k] = tensor.NewMatrix(dims[k], dims[k])
		}
		coreBuf := tensor.NewDense(ranks...)
		sweep := func() {
			for k := range dims {
				ttm.ChainInto(yBuf[k], x, us, k, workers, ws)
				ttm.GramInto(gramBuf[k], yBuf[k], k, workers, ws)
			}
			ttm.ChainInto(coreBuf, x, us, -1, workers, ws)
		}
		sweep() // warm the workspace
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep()
		}
	}
	b.Run("engine", func(b *testing.B) { run(b, 1) })
	b.Run("engine-par", func(b *testing.B) { run(b, 0) })
}

// BenchmarkOptimalSchedule regenerates E16: the exact optimal I/O of a
// tiny instance by exhaustive search, reported as opt-words.
func BenchmarkOptimalSchedule(b *testing.B) {
	inst := pebble.Instance{Dims: []int{2, 2}, R: 2, N: 0, M: 4}
	var opt int64
	for i := 0; i < b.N; i++ {
		v, err := pebble.Optimal(inst, 20_000_000)
		if err != nil {
			b.Fatal(err)
		}
		opt = v
	}
	b.ReportMetric(float64(opt), "opt-words")
}

// BenchmarkSparseMTTKRP regenerates E19: the sparse kernel and the
// partition-dependent communication of its parallelization.
func BenchmarkSparseMTTKRP(b *testing.B) {
	dims := []int{24, 24, 24}
	const R, P = 4, 8
	s := sparse.RandomBlocky(21, 8, 60, 5, dims...)
	fs := tensor.RandomFactors(22, dims, R)
	b.Run("kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.MTTKRP(s, fs, 0)
		}
	})
	for _, pc := range []struct {
		name string
		part sparse.Partition
	}{
		{"block", sparse.BlockPartition(s, P)},
		{"random", sparse.RandomPartition(s, P, 23)},
	} {
		pc := pc
		b.Run("parallel-"+pc.name, func(b *testing.B) {
			var words int64
			for i := 0; i < b.N; i++ {
				res, err := sparse.ParallelMTTKRP(s, fs, 0, pc.part)
				if err != nil {
					b.Fatal(err)
				}
				words = res.TotalSent()
			}
			b.ReportMetric(float64(words), "volume-words")
		})
	}
}

// BenchmarkSparseMTTKRPEngines regenerates E25: the COO fallback vs
// the CSF fiber-tree engine (build cost, single- and multi-worker,
// all-modes pass) over an nnz sweep on a 256^3 tensor at R=16, with
// the dense KRP-splitting kernel on the same shape as the
// matched-density ceiling.
func BenchmarkSparseMTTKRPEngines(b *testing.B) {
	dims := []int{256, 256, 256}
	const R = 16
	fs := tensor.RandomFactors(71, dims, R)
	for _, nnz := range []int{10_000, 100_000, 1_000_000} {
		s := sparse.Random(73, nnz, dims...)
		name := sizeName("nnz", int64(nnz))
		b.Run(name+"/coo", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sparse.MTTKRP(s, fs, 0)
			}
		})
		b.Run(name+"/csf-build", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sparse.FromCOO(s, 0)
			}
		})
		t := sparse.FromCOO(s, 0)
		ws := sparse.NewWorkspace()
		out := tensor.NewMatrix(dims[0], R)
		mid := tensor.NewMatrix(dims[1], R)
		outs := make([]*tensor.Matrix, len(dims))
		for k := range outs {
			outs[k] = tensor.NewMatrix(dims[k], R)
		}
		b.Run(name+"/csf-w1", func(b *testing.B) {
			t.MTTKRPInto(out, fs, 0, 1, ws)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.MTTKRPInto(out, fs, 0, 1, ws)
			}
		})
		b.Run(name+"/csf", func(b *testing.B) {
			t.MTTKRPInto(out, fs, 0, 0, ws)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.MTTKRPInto(out, fs, 0, 0, ws)
			}
		})
		b.Run(name+"/csf-midmode", func(b *testing.B) {
			t.MTTKRPInto(mid, fs, 1, 0, ws)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.MTTKRPInto(mid, fs, 1, 0, ws)
			}
		})
		b.Run(name+"/csf-allmodes", func(b *testing.B) {
			t.AllModesInto(outs, fs, 0, ws)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.AllModesInto(outs, fs, 0, ws)
			}
		})
		ws.Release()
	}
	b.Run("dense-fast", func(b *testing.B) {
		x := tensor.RandomDense(79, dims...)
		kws := kernel.GetWorkspace()
		defer kernel.PutWorkspace(kws)
		out := tensor.NewMatrix(dims[0], R)
		kernel.FastInto(out, x, fs, 0, 0, kws)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kernel.FastInto(out, x, fs, 0, 0, kws)
		}
	})
}

// BenchmarkLPSolve regenerates E7: solving the Lemma 4.2 LP for a
// range of tensor orders.
func BenchmarkLPSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for N := 2; N <= 10; N++ {
			if _, _, err := lp.Solve(hbl.LemmaLP(N)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGridSearch measures the exact grid chooser used by the
// experiments (ablation: exhaustive search cost).
func BenchmarkGridSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := costmodel.BestGeneralExact([]int{64, 64, 64}, 16, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(prefix string, v int64) string {
	return fmt.Sprintf("%s=%d", prefix, v)
}

// BenchmarkObsDimTreeWords regenerates E24's measured column: the
// instrumented dimension-tree engine's streaming-model traffic per
// all-modes pass (words/op) and its ratio to the summed per-mode
// Theorem 4.1/Fact 4.1 best bound at M = 32768 words (boundratio) —
// both flowing into BENCH_*.json through benchjson's metric schema.
func BenchmarkObsDimTreeWords(b *testing.B) {
	dims := []int{64, 64, 64}
	const R, M = 16, 32768
	x := tensor.RandomDense(42, dims...)
	fs := tensor.RandomFactors(43, dims, R)
	col := obs.New(0)
	obs.Enable(col)
	defer obs.Disable()
	eng := dimtree.NewEngine(0)
	res := &dimtree.Result{}
	eng.AllModesInto(res, x, fs)
	col.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.AllModesInto(res, x, fs)
	}
	b.StopTimer()
	tot := col.Totals()
	words := float64(tot.Words()) / float64(b.N)
	b.ReportMetric(words, "words/op")
	prob := bounds.Problem{Dims: dims, R: R}
	bound := float64(len(dims)) * bounds.SeqBest(prob, M)
	b.ReportMetric(words/bound, "boundratio")
}

// BenchmarkObsOverhead prices the observability layer on the
// dimension-tree hot path: the no-op default (what every ordinary run
// pays — one atomic pointer load and a branch per instrumentation
// site) against an enabled collector. The acceptance budget is <= 5%
// on BenchmarkDimTreeAllModes; the instrumentation sits at GEMM-call
// granularity, far coarser than that.
func BenchmarkObsOverhead(b *testing.B) {
	dims := []int{64, 64, 64}
	const R = 16
	x := tensor.RandomDense(42, dims...)
	fs := tensor.RandomFactors(43, dims, R)
	run := func(b *testing.B) {
		eng := dimtree.NewEngine(0)
		res := &dimtree.Result{}
		eng.AllModesInto(res, x, fs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.AllModesInto(res, x, fs)
		}
	}
	b.Run("disabled", func(b *testing.B) {
		obs.Disable()
		run(b)
	})
	b.Run("enabled", func(b *testing.B) {
		obs.Enable(obs.New(0))
		defer obs.Disable()
		run(b)
	})
}

// BenchmarkFlightOverhead prices the flight recorder the same way: the
// disabled default (one atomic pointer load and a branch per
// instrumentation site) against an enabled recorder writing into its
// rings, on the dimension-tree hot path — plus a raw record-call
// nanobenchmark for the per-event cost in isolation.
func BenchmarkFlightOverhead(b *testing.B) {
	dims := []int{64, 64, 64}
	const R = 16
	x := tensor.RandomDense(42, dims...)
	fs := tensor.RandomFactors(43, dims, R)
	run := func(b *testing.B) {
		eng := dimtree.NewEngine(0)
		res := &dimtree.Result{}
		eng.AllModesInto(res, x, fs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.AllModesInto(res, x, fs)
		}
	}
	b.Run("disabled", func(b *testing.B) {
		flight.Disable()
		run(b)
	})
	b.Run("enabled", func(b *testing.B) {
		flight.Enable(flight.New(0, flight.DefaultRingCap))
		defer flight.Disable()
		run(b)
	})
	b.Run("record", func(b *testing.B) {
		flight.Enable(flight.New(0, flight.DefaultRingCap))
		defer flight.Disable()
		name := flight.RegisterName("bench-record")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			flight.Rec().Kernel(0, 0, name, 100, 10)
		}
	})
}

// benchCal is a fixed calibration for the planner benchmarks, so the
// plans (and therefore what each sub-benchmark measures) are identical
// across machines and runs — the point is to time the planned
// configuration, not to re-measure the machine mid-benchmark.
func benchCal() *plan.Calibration {
	c := plan.Default()
	c.Key = "bench: fixed planner calibration"
	return c
}

// BenchmarkPlannedMTTKRP races the cost-model planner's pick against
// each fixed engine on a dense all-modes sweep — the shape class where
// the engine choice (independent fast kernels vs the dimension tree)
// matters most. The "auto" sub-benchmark runs whatever the planner
// picked; its time should track the best fixed engine within the
// model's resolution.
func BenchmarkPlannedMTTKRP(b *testing.B) {
	dims := []int{64, 64, 64}
	const R = 16
	x := tensor.RandomDense(42, dims...)
	fs := tensor.RandomFactors(43, dims, R)
	prob := plan.Problem{Dims: dims, R: R, Mode: plan.AllModes, MaxWorkers: 1}
	cal := benchCal()
	inst := &plan.Instance{X: x, Factors: fs}
	res := &plan.Result{}
	for _, name := range plan.Engines() {
		name := name
		choice, err := plan.PlanEngine(name, prob, cal)
		if err != nil {
			continue // engine does not support this problem
		}
		eng, _ := plan.Lookup(name)
		b.Run(name, func(b *testing.B) {
			if err := eng.Prepare(prob, inst); err != nil {
				b.Fatal(err)
			}
			eng.Run(prob, inst, res, choice.Workers) // reach steady state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Run(prob, inst, res, choice.Workers)
			}
		})
	}
	b.Run("auto", func(b *testing.B) {
		choice, err := plan.Plan(prob, cal)
		if err != nil {
			b.Fatal(err)
		}
		eng, _ := plan.Lookup(choice.Engine)
		if err := eng.Prepare(prob, inst); err != nil {
			b.Fatal(err)
		}
		eng.Run(prob, inst, res, choice.Workers)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Run(prob, inst, res, choice.Workers)
		}
	})
}

// BenchmarkSmallShapeCutover is the regression benchmark behind the
// planner's small-shape guard. Each iteration is a one-shot all-modes
// sweep on a fresh problem instance — engine setup included — because
// that is what a planned command run pays: at 16^3 the whole sweep is
// tens of microseconds, the dimension tree pays construction and
// partial materialization up front, and the streaming cost model
// cannot resolve differences at that scale, so the planner pins the
// setup-free fast kernel there (and must still pick "tree" once the
// tensor is large enough for the flop saving to dominate). The
// fast/tree rows document the measured gap on the current machine;
// the auto rows fail the benchmark if either cutover decision drifts.
func BenchmarkSmallShapeCutover(b *testing.B) {
	const R = 8
	cal := benchCal()
	oneShot := func(b *testing.B, eng plan.Engine, prob plan.Problem, x *tensor.Dense, fs []*tensor.Matrix) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			inst := &plan.Instance{X: x, Factors: fs}
			if err := eng.Prepare(prob, inst); err != nil {
				b.Fatal(err)
			}
			eng.Run(prob, inst, &plan.Result{}, 1)
		}
	}
	for _, side := range []int{16, 64} {
		side := side
		dims := []int{side, side, side}
		x := tensor.RandomDense(42, dims...)
		fs := tensor.RandomFactors(43, dims, R)
		prob := plan.Problem{Dims: dims, R: R, Mode: plan.AllModes, MaxWorkers: 1}
		pre := sizeName("side", int64(side)) + "/"
		for _, name := range []string{"fast", "tree"} {
			eng, _ := plan.Lookup(name)
			b.Run(pre+name, func(b *testing.B) { oneShot(b, eng, prob, x, fs) })
		}
		choice, err := plan.Plan(prob, cal)
		if err != nil {
			b.Fatal(err)
		}
		want := map[int]string{16: "fast", 64: "tree"}[side]
		if choice.Engine != want {
			b.Fatalf("planner picked %q for side=%d all-modes, want %q", choice.Engine, side, want)
		}
		eng, _ := plan.Lookup(choice.Engine)
		b.Run(pre+"auto", func(b *testing.B) { oneShot(b, eng, prob, x, fs) })
	}
}
