#!/bin/sh
# CI gate: vet everything, run the full test suite, then re-run the
# engine-adjacent packages (kernel, seq, par, dimtree, cpals) under the
# race detector — those are the packages with goroutine-parallel
# accumulation and tree reductions.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (engine packages) =="
go test -race ./internal/kernel/... ./internal/seq/... ./internal/par/... ./internal/dimtree/... ./internal/cpals/...

echo "ci: OK"
