#!/bin/sh
# CI gate: formatting, vet, the repo's own static-analysis suite
# (repolint), the full test suite, then a race-detector pass over the
# packages with goroutine-parallel accumulation and tree reductions
# (kernel, seq, par, dimtree, cpals) plus the blocked linear algebra
# and sparse layers they fan out into.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== repolint =="
go run ./cmd/repolint ./...

echo "== go test =="
go test ./...

echo "== go test -race (engine packages) =="
go test -race ./internal/kernel/... ./internal/seq/... ./internal/par/... ./internal/dimtree/... ./internal/cpals/... ./internal/sparse/... ./internal/linalg/... ./internal/obs/... ./internal/comm/...

echo "== instrumented smoke (obs bound ratios) =="
# The blocked algorithm must land within a small constant of the best
# sequential lower bound on a 32^3 cube at M=256 (measured 3.15x; gate
# at 4x), and the unblocked algorithm must be measurably worse (gate at
# >= 20x; measured 63x). cmd/mttkrp exits 3 if counters are zero, the
# bound is vacuous, or the ratio leaves the window.
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/mttkrp -dims 32,32,32 -r 16 -mode 0 -algo blocked -m 256 \
	-obs -obs-json "$obsdir/blocked.json" -obs-maxratio 4
go run ./cmd/mttkrp -dims 32,32,32 -r 16 -mode 0 -algo unblocked -m 256 \
	-obs -obs-json "$obsdir/unblocked.json" -obs-minratio 20
go run ./cmd/mttkrp -dims 16,16,16 -r 8 -mode 1 -algo stationary -p 8 \
	-obs -obs-json "$obsdir/stationary.json" -obs-maxratio 4

echo "== sparse smoke (measured words == hypergraph metric) =="
# cmd/sparsemttkrp exits nonzero when either the simulated network's or
# the obs collector's measured comm words deviate from the (lambda-1)
# connectivity metric, for both local engines.
go run ./cmd/sparsemttkrp -side 20 -nnz 1500 -r 4 -p 8 -engine csf >/dev/null
go run ./cmd/sparsemttkrp -side 20 -nnz 1500 -r 4 -p 8 -engine coo >/dev/null

echo "ci: OK"
