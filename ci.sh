#!/bin/sh
# CI gate: formatting, vet, the repo's own static-analysis suite
# (repolint: hotpath-alloc, determinism, float-eq, errcheck-lite, and
# the concurrency-contract analyzers goroutine-leak, waitgroup-misuse,
# channel-discipline, lock-order, workspace-aliasing — all nine are
# hard failures), the full test suite on both dispatch paths (native simd
# and REPRO_NOSIMD=1 scalar), a purego-tag build+test (the no-assembly
# configuration), then a race-detector pass over the packages with
# goroutine-parallel accumulation and tree reductions (kernel, seq,
# par, dimtree, cpals — including the float32 storage-path kernels in
# kernel and sparse) plus the blocked linear algebra and sparse layers
# they fan out into.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
# gofmt only inspects .go files; the assembly kernels (*.s) under
# internal/simd are formatted by hand and are explicitly out of scope.
unformatted=$(find cmd internal -name '*.go' -print0 | xargs -0 gofmt -l)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go build -tags purego =="
# The purego tag compiles out every assembly kernel; the build must
# stay viable for ports with no .s files.
go build -tags purego ./...

echo "== repolint =="
go run ./cmd/repolint ./...

echo "== go test (native dispatch) =="
go test ./...

echo "== go test (REPRO_NOSIMD=1 scalar dispatch) =="
# The identical suite must pass with the runtime override forcing the
# portable scalar kernels, proving the two paths are interchangeable.
REPRO_NOSIMD=1 go test ./...

echo "== go test -tags purego (simd + engine packages) =="
# Same contract for the compile-time opt-out on the layers that call
# the kernels.
go test -tags purego ./internal/simd/... ./internal/linalg/... ./internal/kernel/... ./internal/sparse/... ./internal/dimtree/...

echo "== go test -race (engine packages) =="
go test -race ./internal/kernel/... ./internal/seq/... ./internal/par/... ./internal/dimtree/... ./internal/cpals/... ./internal/sparse/... ./internal/linalg/... ./internal/obs/... ./internal/comm/... ./internal/plan/... ./internal/ttm/... ./internal/tucker/...

echo "== instrumented smoke (obs bound ratios) =="
# The blocked algorithm must land within a small constant of the best
# sequential lower bound on a 32^3 cube at M=256 (measured 3.15x; gate
# at 4x), and the unblocked algorithm must be measurably worse (gate at
# >= 20x; measured 63x). cmd/mttkrp exits 3 if counters are zero, the
# bound is vacuous, or the ratio leaves the window.
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/mttkrp -dims 32,32,32 -r 16 -mode 0 -algo blocked -m 256 \
	-obs -obs-json "$obsdir/blocked.json" -obs-maxratio 4
go run ./cmd/mttkrp -dims 32,32,32 -r 16 -mode 0 -algo unblocked -m 256 \
	-obs -obs-json "$obsdir/unblocked.json" -obs-minratio 20
go run ./cmd/mttkrp -dims 16,16,16 -r 8 -mode 1 -algo stationary -p 8 \
	-obs -obs-json "$obsdir/stationary.json" -obs-maxratio 4

echo "== trace smoke (flight recorder -> tracecheck) =="
# A parallel run must export a Chrome trace that round-trips as JSON
# and survives schema validation: known phases only, every Send flow
# paired with exactly one Recv flow (tracecheck exits nonzero
# otherwise). The shared-memory planned run exercises the engine-row
# export path and the planner's plan instant.
go run ./cmd/mttkrp -dims 16,16,16 -r 8 -mode 1 -algo stationary -p 8 \
	-trace "$obsdir/stationary-trace.json" >/dev/null
go run ./cmd/tracecheck "$obsdir/stationary-trace.json" >/dev/null
REPRO_CALIBRATION="$obsdir/calibration-trace.json" go run ./cmd/mttkrp \
	-dims 16,16,16 -r 8 -trace "$obsdir/fast-trace.json" >/dev/null
go run ./cmd/tracecheck "$obsdir/fast-trace.json" >/dev/null
# The Tucker command's HOOI sweeps emit the ttm-chain/gram/solve/fit
# phase spans; the exported trace must pass the same schema check.
REPRO_CALIBRATION="$obsdir/calibration-trace.json" go run ./cmd/tucker \
	-dims 16,16,16 -ranks 4,4,4 -iters 2 \
	-trace "$obsdir/tucker-trace.json" >/dev/null
go run ./cmd/tracecheck "$obsdir/tucker-trace.json" >/dev/null

echo "== metrics smoke (obsserve -once /metrics scrape) =="
# obsserve binds an ephemeral port, runs a few engine passes, scrapes
# its own /healthz and /metrics over real HTTP, echoes the exposition
# text, and shuts the server down gracefully. The grep pins the scrape
# payload to the Prometheus text format.
go run ./cmd/obsserve -addr localhost:0 -dims 16,16,16 -r 4 -once \
	> "$obsdir/metrics.txt"
grep -q '^repro_obsserve_iterations_total 3$' "$obsdir/metrics.txt"
grep -q '^# TYPE repro_obsserve_iteration_seconds histogram$' "$obsdir/metrics.txt"

echo "== sparse smoke (measured words == hypergraph metric) =="
# cmd/sparsemttkrp exits nonzero when either the simulated network's or
# the obs collector's measured comm words deviate from the (lambda-1)
# connectivity metric, for both local engines — and, for -dtype f32,
# when the half-width storage does not halve the measured words.
go run ./cmd/sparsemttkrp -side 20 -nnz 1500 -r 4 -p 8 -engine csf >/dev/null
go run ./cmd/sparsemttkrp -side 20 -nnz 1500 -r 4 -p 8 -engine coo >/dev/null
go run ./cmd/sparsemttkrp -side 20 -nnz 1500 -r 4 -p 8 -engine csf -dtype f32 >/dev/null

echo "== planner smoke (-engine auto) =="
# The cost-model planner is the default engine selector; it must
# calibrate from scratch (REPRO_CALIBRATION points into the temp dir
# so CI never reads or writes the user cache), produce a runnable
# plan, and surface the decision in the JSON report's "plan" block.
# The second mttkrp run exercises the calibration-cache hit path.
REPRO_CALIBRATION="$obsdir/calibration.json" go run ./cmd/mttkrp \
	-dims 32,32,32 -r 8 -mode 1 -obs-json "$obsdir/auto.json" >/dev/null
grep -q '"plan"' "$obsdir/auto.json"
REPRO_CALIBRATION="$obsdir/calibration.json" go run ./cmd/cpals \
	-dims 24,24,24 -rank 4 -iters 3 -obs-json "$obsdir/auto-cpals.json" >/dev/null
grep -q '"plan"' "$obsdir/auto-cpals.json"
REPRO_CALIBRATION="$obsdir/calibration.json" go run ./cmd/sparsemttkrp \
	-side 20 -nnz 1500 -r 4 -p 8 -obs-json "$obsdir/auto-sparse.json" >/dev/null
grep -q '"plan"' "$obsdir/auto-sparse.json"

echo "== multi-ttm bound smoke (measured/multittm ratios) =="
# Parallel Tucker must report its per-processor communication joined
# against the Multi-TTM memory-independent lower bounds; the ranks are
# chosen large enough that the bound is non-vacuous at P=8.
REPRO_CALIBRATION="$obsdir/calibration.json" go run ./cmd/tucker \
	-dims 32,32,32 -ranks 24,24,24 -grid 2,2,2 -iters 2 \
	-obs-json "$obsdir/tucker-par.json" >/dev/null
grep -q '"measured/multittm' "$obsdir/tucker-par.json"

echo "== benchmark archive gate (benchjson -compare) =="
# The archived planner snapshot must stay within tolerance of the
# archived simd snapshot on the benchmarks they share, and the TTM
# engine snapshot within tolerance of the planner snapshot.
go run ./cmd/benchjson -compare BENCH_2026-08-08-simd.json BENCH_2026-08-08-auto.json >/dev/null
go run ./cmd/benchjson -compare BENCH_2026-08-08-auto.json BENCH_2026-08-08-ttm.json >/dev/null

echo "ci: OK"
