#!/bin/sh
# CI gate: formatting, vet, the repo's own static-analysis suite
# (repolint), the full test suite, then a race-detector pass over the
# packages with goroutine-parallel accumulation and tree reductions
# (kernel, seq, par, dimtree, cpals) plus the blocked linear algebra
# and sparse layers they fan out into.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== repolint =="
go run ./cmd/repolint ./...

echo "== go test =="
go test ./...

echo "== go test -race (engine packages) =="
go test -race ./internal/kernel/... ./internal/seq/... ./internal/par/... ./internal/dimtree/... ./internal/cpals/... ./internal/sparse/... ./internal/linalg/...

echo "ci: OK"
