// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON snapshot, so benchmark runs can be archived
// and diffed across commits.
//
// Usage:
//
//	go test -bench 'MTTKRPKernel|CPALS' -benchmem | go run ./cmd/benchjson
//	go test -bench . | go run ./cmd/benchjson -out results.json
//	go run ./cmd/benchjson -compare BENCH_old.json BENCH_new.json
//
// Without -out, the file is named BENCH_<yyyy-mm-dd>.json in the
// current directory.
//
// With -compare, two archived snapshots are joined by benchmark name
// and printed as a speedup table (old ns/op over new ns/op); any
// benchmark that regressed by more than -tolerance (default 10%)
// makes the command exit nonzero, so a snapshot pair doubles as a CI
// performance gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line. Metrics maps unit -> value for
// every "<value> <unit>" pair after the iteration count (ns/op, B/op,
// allocs/op, and any custom ReportMetric units like words/op).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	Date    string            `json:"date"`
	Env     map[string]string `json:"env,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	date := flag.String("date", "", "snapshot date stamp yyyy-mm-dd (default today; pin for reproducible CI filenames)")
	compare := flag.Bool("compare", false, "compare two snapshot files (old.json new.json) instead of reading stdin")
	tolerance := flag.Float64("tolerance", 0.10, "with -compare, allowed fractional ns/op regression before exiting nonzero")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two snapshot paths, got %d", flag.NArg()))
		}
		if err := compareSnapshots(flag.Arg(0), flag.Arg(1), *tolerance); err != nil {
			fatal(err)
		}
		return
	}

	stamp := *date
	if stamp == "" {
		stamp = time.Now().Format("2006-01-02")
	} else if _, err := time.Parse("2006-01-02", stamp); err != nil {
		fatal(fmt.Errorf("bad -date %q: %v", stamp, err))
	}
	snap := Snapshot{
		Date: stamp,
		Env:  envInfo(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok ") || strings.HasPrefix(line, "ok\t"):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			snap.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseLine(line)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
				continue
			}
			snap.Results = append(snap.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(snap.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench ...` output in)"))
	}

	path := *out
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(snap.Results), path)
}

// envInfo seeds the env map with the toolchain and machine facts a
// later diff needs to interpret the numbers: the commit the benchmarks
// ran at, the Go version, the parallelism, and the repository's own
// behavior switches (REPRO_NOSIMD disables the SIMD micro-kernels,
// REPRO_CALIBRATION redirects the planner's calibration cache) —
// verbatim, with "" meaning unset. The switches are read from this
// process's environment, so export them for the whole pipeline:
// `VAR=1 go test ... | benchjson` sets VAR on go test only and the
// snapshot would record it as unset. Lines parsed from the benchmark
// header (goos/goarch/cpu/pkg) are added on top.
func envInfo() map[string]string {
	env := map[string]string{
		"go":                runtime.Version(),
		"gomaxprocs":        strconv.Itoa(runtime.GOMAXPROCS(0)),
		"REPRO_NOSIMD":      os.Getenv("REPRO_NOSIMD"),
		"REPRO_CALIBRATION": os.Getenv("REPRO_CALIBRATION"),
		"dtype":             "f64",
	}
	if head, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		env["commit"] = strings.TrimSpace(string(head))
	}
	return env
}

// diffEnv lists the env keys whose values differ between two
// snapshots, "key: old -> new" per line, sorted. Keys absent on one
// side show as "" — indistinguishable from explicitly unset, which is
// exactly how the behavior switches are read.
func diffEnv(oldSnap, newSnap *Snapshot) []string {
	keys := map[string]bool{}
	for k := range oldSnap.Env {
		keys[k] = true
	}
	for k := range newSnap.Env {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	var out []string
	for _, k := range names {
		if o, n := oldSnap.Env[k], newSnap.Env[k]; o != n {
			out = append(out, fmt.Sprintf("%s: %q -> %q", k, o, n))
		}
	}
	return out
}

// parseLine parses one benchmark result line:
//
//	BenchmarkFoo/sub-8  100  12345 ns/op  0 B/op  0 allocs/op  3.5 words/op
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("too few fields")
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iteration count %q: %v", fields[1], err)
	}
	r := Result{
		// Strip the trailing -GOMAXPROCS suffix from the name.
		Name:       trimProcSuffix(fields[0]),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, fmt.Errorf("unpaired metric fields %v", rest)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric value %q: %v", rest[i], err)
		}
		r.Metrics[rest[i+1]] = v
	}
	return r, nil
}

// trimProcSuffix removes go's -N GOMAXPROCS suffix (Benchmark names
// themselves never end in -<digits> unless sub-benchmarks do, in which
// case the suffix is still the final dash group).
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compareSnapshots joins two archived snapshots by benchmark name and
// prints old/new ns/op with the speedup factor. Benchmarks present on
// only one side are listed but not gated. A new ns/op more than
// tolerance above old fails the comparison.
func compareSnapshots(oldPath, newPath string, tolerance float64) error {
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := readSnapshot(newPath)
	if err != nil {
		return err
	}
	oldBy := resultsByName(oldSnap)
	newBy := resultsByName(newSnap)

	names := make([]string, 0, len(oldSnap.Results))
	for _, r := range oldSnap.Results {
		if _, ok := newBy[r.Name]; ok {
			names = append(names, r.Name)
		}
	}

	fmt.Printf("benchjson: %s (%s) vs %s (%s)\n", oldPath, oldSnap.Date, newPath, newSnap.Date)
	// Environment differences come before the numbers: a dtype or
	// REPRO_NOSIMD mismatch usually explains a "regression" better than
	// the table below it.
	if diffs := diffEnv(oldSnap, newSnap); len(diffs) > 0 {
		fmt.Println("env differences:")
		for _, d := range diffs {
			fmt.Println("  " + d)
		}
	}
	width := len("benchmark")
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	fmt.Printf("%-*s  %14s  %14s  %9s\n", width, "benchmark", "old ns/op", "new ns/op", "speedup")
	var regressions []string
	for _, name := range names {
		o, n := oldBy[name].Metrics["ns/op"], newBy[name].Metrics["ns/op"]
		if o <= 0 || n <= 0 {
			fmt.Printf("%-*s  %14s  %14s  %9s\n", width, name, "-", "-", "-")
			continue
		}
		speedup := o / n
		marker := ""
		if n > o*(1+tolerance) {
			marker = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.1f%% slower)", name, o, n, (n/o-1)*100))
		}
		fmt.Printf("%-*s  %14.0f  %14.0f  %8.2fx%s\n", width, name, o, n, speedup, marker)
	}
	for _, r := range oldSnap.Results {
		if _, ok := newBy[r.Name]; !ok {
			fmt.Printf("%-*s  only in %s\n", width, r.Name, oldPath)
		}
	}
	for _, r := range newSnap.Results {
		if _, ok := oldBy[r.Name]; !ok {
			fmt.Printf("%-*s  only in %s\n", width, r.Name, newPath)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%:\n  %s",
			len(regressions), tolerance*100, strings.Join(regressions, "\n  "))
	}
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	return nil
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

// resultsByName indexes a snapshot's results, keeping the first entry
// when a name repeats.
func resultsByName(s *Snapshot) map[string]Result {
	m := make(map[string]Result, len(s.Results))
	for _, r := range s.Results {
		if _, ok := m[r.Name]; !ok {
			m[r.Name] = r
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
