// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON snapshot, so benchmark runs can be archived
// and diffed across commits.
//
// Usage:
//
//	go test -bench 'MTTKRPKernel|CPALS' -benchmem | go run ./cmd/benchjson
//	go test -bench . | go run ./cmd/benchjson -out results.json
//
// Without -out, the file is named BENCH_<yyyy-mm-dd>.json in the
// current directory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line. Metrics maps unit -> value for
// every "<value> <unit>" pair after the iteration count (ns/op, B/op,
// allocs/op, and any custom ReportMetric units like words/op).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	Date    string            `json:"date"`
	Env     map[string]string `json:"env,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	date := flag.String("date", "", "snapshot date stamp yyyy-mm-dd (default today; pin for reproducible CI filenames)")
	flag.Parse()

	stamp := *date
	if stamp == "" {
		stamp = time.Now().Format("2006-01-02")
	} else if _, err := time.Parse("2006-01-02", stamp); err != nil {
		fatal(fmt.Errorf("bad -date %q: %v", stamp, err))
	}
	snap := Snapshot{
		Date: stamp,
		Env:  envInfo(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok ") || strings.HasPrefix(line, "ok\t"):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			snap.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseLine(line)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
				continue
			}
			snap.Results = append(snap.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(snap.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench ...` output in)"))
	}

	path := *out
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(snap.Results), path)
}

// envInfo seeds the env map with the toolchain and machine facts a
// later diff needs to interpret the numbers: the commit the benchmarks
// ran at, the Go version, and the parallelism. Lines parsed from the
// benchmark header (goos/goarch/cpu/pkg) are added on top.
func envInfo() map[string]string {
	env := map[string]string{
		"go":         runtime.Version(),
		"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
	}
	if head, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		env["commit"] = strings.TrimSpace(string(head))
	}
	return env
}

// parseLine parses one benchmark result line:
//
//	BenchmarkFoo/sub-8  100  12345 ns/op  0 B/op  0 allocs/op  3.5 words/op
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("too few fields")
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iteration count %q: %v", fields[1], err)
	}
	r := Result{
		// Strip the trailing -GOMAXPROCS suffix from the name.
		Name:       trimProcSuffix(fields[0]),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, fmt.Errorf("unpaired metric fields %v", rest)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric value %q: %v", rest[i], err)
		}
		r.Metrics[rest[i+1]] = v
	}
	return r, nil
}

// trimProcSuffix removes go's -N GOMAXPROCS suffix (Benchmark names
// themselves never end in -<digits> unless sub-benchmarks do, in which
// case the suffix is still the final dash group).
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
