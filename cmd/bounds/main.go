// Command bounds prints every communication lower bound of Section IV
// for a given problem and machine configuration, alongside the
// algorithms' modeled upper bounds, so the sandwich can be inspected
// for any parameter point.
//
// Usage:
//
//	bounds -dims 64,64,64 -r 16 -m 4096 -p 64 [-gamma 1] [-delta 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bounds"
	"repro/internal/costmodel"
	"repro/internal/seq"
)

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 {
		return nil, fmt.Errorf("need at least 2 comma-separated dimensions, got %q", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

func main() {
	dimsFlag := flag.String("dims", "64,64,64", "tensor dimensions, comma separated")
	r := flag.Int("r", 16, "decomposition rank R")
	m := flag.Float64("m", 4096, "fast/local memory capacity M (words)")
	p := flag.Float64("p", 64, "processor count P")
	gamma := flag.Float64("gamma", 1, "tensor load-balance factor (>= 1)")
	delta := flag.Float64("delta", 1, "factor-matrix load-balance factor (>= 1)")
	flag.Parse()

	dims, err := parseDims(*dimsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bounds:", err)
		os.Exit(2)
	}
	prob := bounds.Problem{Dims: dims, R: *r}
	prob.Validate()
	N := prob.N()

	fmt.Printf("Problem: N=%d dims=%v R=%d  (I = %.4g, sum I_k R = %.4g)\n",
		N, dims, *r, prob.I(), prob.SumIkR())
	fmt.Printf("Machine: M=%.0f words, P=%.0f processors, gamma=%.2f, delta=%.2f\n\n", *m, *p, *gamma, *delta)

	fmt.Println("Sequential lower bounds (loads + stores):")
	fmt.Printf("  Theorem 4.1 (memory-dependent): %14.4g\n", bounds.SeqMemDependent(prob, *m))
	fmt.Printf("  Fact 4.1   (input/output size): %14.4g\n", bounds.SeqTrivial(prob, *m))
	fmt.Printf("  best:                           %14.4g\n\n", bounds.SeqBest(prob, *m))

	fmt.Println("Sequential upper bounds (algorithm costs):")
	fmt.Printf("  Algorithm 1 (unblocked):        %14d\n", seq.UpperUnblocked(dims, *r))
	if b, err := seq.ChooseBlock(int64(*m), N, 0.9); err == nil {
		fmt.Printf("  Algorithm 2 (blocked, b=%d):    %14d\n", b, seq.UpperBlocked(dims, *r, b))
	} else {
		fmt.Printf("  Algorithm 2: %v\n", err)
	}
	fmt.Printf("  via matmul (model):             %14.4g\n\n", seq.UpperViaMatmul(dims, *r, 0, int64(*m)))

	fmt.Println("Parallel lower bounds (per-processor sends + receives):")
	fmt.Printf("  Corollary 4.1 (memory-dep.):    %14.4g\n", bounds.ParMemDependent(prob, *m, *p))
	fmt.Printf("  Theorem 4.2:                    %14.4g\n", bounds.ParMemIndependent1(prob, *p, *gamma, *delta))
	fmt.Printf("  Theorem 4.3:                    %14.4g\n", bounds.ParMemIndependent2(prob, *p, *gamma, *delta))
	fmt.Printf("  best:                           %14.4g\n\n", bounds.ParBest(prob, *p, *gamma, *delta))

	// Theorem 6.1's hypothesis window for the paper's constants.
	if lo, hi, err := bounds.T61Window(prob, bounds.PaperT61Constants()); err == nil {
		if lo <= hi {
			fmt.Printf("Theorem 6.1 window (paper constants): M in [%.4g, %.4g]", lo, hi)
			if *m >= lo && *m <= hi {
				fmt.Printf("  <- M=%.0f inside: optimality guaranteed\n\n", *m)
			} else {
				fmt.Printf("  (M=%.0f outside)\n\n", *m)
			}
		} else {
			fmt.Printf("Theorem 6.1 window empty for this problem (needs larger I*R)\n\n")
		}
	}

	mdl := costmodel.Model{Dims: toFloat(dims), R: float64(*r)}
	fmt.Println("Parallel modeled costs (per-processor sends, optimal grid):")
	fmt.Printf("  Algorithm 3 ideal:              %14.4g\n", mdl.StationaryIdealWords(*p))
	fmt.Printf("  Algorithm 4 ideal:              %14.4g\n", mdl.GeneralIdealWords(*p))
	fmt.Printf("  regime: NR = %.4g vs (I/P)^(1-1/N) = %.4g -> ", float64(N)*float64(*r), bounds.RegimeThreshold(prob, *p))
	if bounds.LargeRankRegime(prob, *p) {
		fmt.Println("large-rank (Algorithm 4 needed)")
	} else {
		fmt.Println("small-rank (Algorithm 3 optimal)")
	}
}

func toFloat(dims []int) []float64 {
	out := make([]float64, len(dims))
	for i, d := range dims {
		out[i] = float64(d)
	}
	return out
}
