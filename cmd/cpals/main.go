// Command cpals computes a CP decomposition of a synthetic low-rank
// tensor with alternating least squares, either sequentially or on the
// simulated distributed machine, reporting the fit trajectory and —
// in the parallel case — how communication splits between MTTKRP and
// everything else (the paper's motivating observation).
//
// Usage:
//
//	cpals -dims 16,16,16 -rank 4 -truerank 4 -noise 0.01 -iters 30
//	cpals -dims 16,16,16 -rank 4 -engine tree -workers 4
//	cpals -dims 16,16,16 -rank 4 -grid 2,2,2
//
// The sequential solver picks its MTTKRP strategy with -engine:
// "independent" runs one KRP-splitting kernel call per mode,
// "tree" runs dimension-tree ALS with the GEMM-based multi-MTTKRP
// engine (prefix-partial reuse across modes) and reports the flop
// saving. -workers caps the goroutines used by either engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cpals"
	"repro/internal/dimtree"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/plan"
	"repro/internal/workload"
)

func main() {
	dimsFlag := flag.String("dims", "16,16,16", "tensor dimensions")
	rank := flag.Int("rank", 4, "decomposition rank")
	trueRank := flag.Int("truerank", 4, "ground-truth rank of the synthetic tensor")
	noise := flag.Float64("noise", 0.01, "uniform noise half-width added to the synthetic tensor")
	iters := flag.Int("iters", 30, "maximum ALS sweeps")
	tol := flag.Float64("tol", 1e-8, "fit-improvement stopping tolerance")
	gridFlag := flag.String("grid", "", "processor grid (e.g. 2,2,2); empty = sequential")
	engine := flag.String("engine", "auto", "sequential MTTKRP engine: auto (cost-model planner) | independent | tree")
	workers := flag.Int("workers", 0, "MTTKRP goroutines (0 = package default)")
	seed := flag.Int64("seed", 7, "seed")
	obsFlag := flag.Bool("obs", false, "print the instrumented observability report")
	obsJSON := flag.String("obs-json", "", "write the observability report as JSON to this path (- for stdout)")
	traceOut := flag.String("trace", "", "write a flight-recorder Chrome trace (JSON) to this path")
	flag.Parse()

	if *engine != "auto" && *engine != "independent" && *engine != "tree" {
		fatal(fmt.Errorf("unknown -engine %q (want auto, independent, or tree)", *engine))
	}

	dims, err := parseInts(*dimsFlag)
	if err != nil {
		fatal(err)
	}

	// -trace starts before the planner runs so the trace carries the
	// plan instant; parallel runs get one process row per rank.
	if *traceOut != "" {
		ranks := 0
		if *gridFlag != "" {
			shape, err := parseInts(*gridFlag)
			if err != nil {
				fatal(err)
			}
			ranks = 1
			for _, s := range shape {
				ranks *= s
			}
		}
		flush := flight.StartTrace(*traceOut, ranks)
		defer func() {
			if err := flush(); err != nil {
				fatal(err)
			}
		}()
	}

	// -engine auto (the default) asks the planner to choose between the
	// per-mode independent kernels and the dimension-tree engine for
	// the sequential solver, amortizing over the full ALS run (every
	// sweep recomputes all modes). The parallel solver has one MTTKRP
	// strategy, so auto degrades to independent there.
	var planInfo *obs.PlanInfo
	if *engine == "auto" {
		if *gridFlag != "" {
			*engine = "independent"
		} else {
			prob := plan.Problem{Dims: dims, R: *rank, Mode: plan.AllModes,
				MaxWorkers: *workers, Reuses: *iters}
			choice, _, err := plan.Auto(prob)
			if err != nil {
				fatal(err)
			}
			choice.Apply()
			if choice.Engine == "tree" {
				*engine = "tree"
			} else {
				*engine = "independent"
			}
			planInfo = choice.PlanInfo()
			fmt.Printf("plan: engine=%s workers=%d kc=%d mc=%d\n",
				*engine, choice.Workers, choice.GemmKC, choice.GemmMC)
		}
	}
	inst, err := workload.Generate(workload.Spec{Dims: dims, R: *trueRank, Seed: *seed, Noise: *noise})
	if err != nil {
		fatal(err)
	}
	opts := cpals.Options{R: *rank, MaxIters: *iters, Tol: *tol, Seed: *seed + 100, Workers: *workers}

	var col *obs.Collector
	if *obsFlag || *obsJSON != "" {
		col = obs.New(0)
		obs.Enable(col)
		defer obs.Disable()
	}
	report := func(algo string, mach obs.Machine) {
		if col == nil {
			return
		}
		rep := obs.NewReport("cpals", algo, dims, *rank, -1, mach)
		rep.Plan = planInfo
		rep.FillFromCollector(col)
		if mach.P > 0 {
			rep.JoinParBounds(float64(mach.P), 0)
		}
		emitReport(rep, *obsFlag, *obsJSON)
	}

	if *gridFlag == "" {
		if *engine == "tree" {
			model, trace, flops, err := cpals.DecomposeTree(inst.X, opts)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("sequential CP-ALS (dimension-tree engine): dims=%v rank=%d (truth rank %d, noise %.3g)\n",
				dims, *rank, *trueRank, *noise)
			printTrace(trace)
			fmt.Printf("final fit: %.6f\n", model.Fit)
			naive := int64(len(trace)) * dimtree.NaiveFlops(dims, *rank)
			fmt.Printf("MTTKRP flops: %d (vs %d for independent atomic per-mode kernels, %.2fx saving)\n",
				flops, naive, float64(naive)/float64(flops))
			report("tree", obs.Machine{Workers: *workers})
			return
		}
		model, trace, err := cpals.Decompose(inst.X, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sequential CP-ALS: dims=%v rank=%d (truth rank %d, noise %.3g)\n",
			dims, *rank, *trueRank, *noise)
		printTrace(trace)
		fmt.Printf("final fit: %.6f\n", model.Fit)
		report("independent", obs.Machine{Workers: *workers})
		return
	}

	if *engine != "independent" {
		fatal(fmt.Errorf("-engine %s applies to the sequential solver only (drop -grid)", *engine))
	}

	shape, err := parseInts(*gridFlag)
	if err != nil {
		fatal(err)
	}
	res, err := cpals.DecomposeParallel(inst.X, shape, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parallel CP-ALS: dims=%v rank=%d grid=%v\n", dims, *rank, shape)
	printTrace(res.Trace)
	fmt.Printf("final fit: %.6f\n", res.Model.Fit)
	mt, ot := res.MaxMTTKRPWords(), res.MaxOtherWords()
	fmt.Printf("\ncommunication per processor (max over ranks):\n")
	fmt.Printf("  MTTKRP collectives: %d words\n", mt)
	fmt.Printf("  everything else:    %d words (Gram all-reduces, fit scalars)\n", ot)
	if mt+ot > 0 {
		fmt.Printf("  MTTKRP share:       %.1f%%\n", 100*float64(mt)/float64(mt+ot))
	}
	p := 1
	for _, s := range shape {
		p *= s
	}
	report("parallel", obs.Machine{P: p})
}

// emitReport writes the report per the -obs / -obs-json flags.
func emitReport(rep *obs.Report, human bool, jsonPath string) {
	if human {
		rep.Format(os.Stdout)
	}
	if jsonPath == "" {
		return
	}
	if jsonPath == "-" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func printTrace(trace []cpals.TraceEntry) {
	for _, e := range trace {
		fmt.Printf("  iter %3d  fit %.8f\n", e.Iter, e.Fit)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpals:", err)
	os.Exit(2)
}
