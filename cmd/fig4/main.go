// Command fig4 regenerates Figure 4 of the paper: a modeled
// strong-scaling comparison of MTTKRP via matrix multiplication
// (CARMA), the stationary-tensor algorithm (Algorithm 3), and the
// general algorithm (Algorithm 4) for a 3-way cubical tensor with
// I = 2^45 and R = 2^15, over P = 2^0 .. 2^30.
//
// Usage:
//
//	fig4 [-maxexp 30] [-callouts] [-csv]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/costmodel"
)

// asciiPlot renders the three curves on a log2(P) x log10(words) grid,
// mirroring the paper's log-log Figure 4. m = matmul, s = Algorithm 3,
// g = Algorithm 4, * = overlapping curves.
func asciiPlot(rows []costmodel.Fig4Row) {
	const height = 24
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		for _, v := range []float64{r.Matmul, r.Stationary, r.General} {
			if v > 0 {
				lo = math.Min(lo, math.Log10(v))
				hi = math.Max(hi, math.Log10(v))
			}
		}
	}
	if math.IsInf(lo, 1) {
		fmt.Println("fig4: nothing to plot")
		return
	}
	rowOf := func(v float64) int {
		if v <= 0 {
			return -1
		}
		f := (math.Log10(v) - lo) / (hi - lo)
		return int(math.Round(f * float64(height-1)))
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(rows)))
	}
	put := func(col, row int, ch byte) {
		if row < 0 {
			return
		}
		cur := grid[height-1-row][col]
		if cur != ' ' && cur != ch {
			ch = '*'
		}
		grid[height-1-row][col] = ch
	}
	for col, r := range rows {
		put(col, rowOf(r.Matmul), 'm')
		put(col, rowOf(r.Stationary), 's')
		put(col, rowOf(r.General), 'g')
	}
	fmt.Printf("words (log10 %.1f..%.1f)   m=matmul s=stationary g=general *=overlap\n", lo, hi)
	for _, line := range grid {
		fmt.Printf("| %s\n", line)
	}
	fmt.Printf("+-%s\n", strings.Repeat("-", len(rows)))
	fmt.Printf("  P = 2^0 .. 2^%d\n", rows[len(rows)-1].Exp)
}

func shapeString(shape []float64) string {
	parts := make([]string, len(shape))
	for i, s := range shape {
		parts[i] = fmt.Sprintf("%.0f", s)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func main() {
	maxExp := flag.Int("maxexp", 30, "sweep P = 2^0 .. 2^maxexp")
	callouts := flag.Bool("callouts", false, "print the paper's quantitative call-outs")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of a table")
	plot := flag.Bool("plot", false, "render an ASCII log-log plot of the three curves")
	flag.Parse()
	if *maxExp < 0 || *maxExp > 60 {
		fmt.Fprintln(os.Stderr, "fig4: -maxexp must be in [0, 60]")
		os.Exit(2)
	}

	rows := costmodel.Fig4Series(*maxExp)
	if *csv {
		fmt.Println("exp,p,matmul_words,alg3_words,alg4_words")
		for _, r := range rows {
			fmt.Printf("%d,%.0f,%.6g,%.6g,%.6g\n", r.Exp, r.P, r.Matmul, r.Stationary, r.General)
		}
	} else {
		fmt.Println("Figure 4: modeled words communicated per processor (sends), I = 2^45, R = 2^15, N = 3")
		fmt.Printf("%-6s %-12s %-14s %-14s %-14s %-22s %s\n",
			"P", "", "matmul", "stationary", "general", "alg3 grid", "alg4 grid")
		for _, r := range rows {
			fmt.Printf("2^%-4d %-12.0f %-14.5g %-14.5g %-14.5g %-22s %s\n",
				r.Exp, r.P, r.Matmul, r.Stationary, r.General,
				shapeString(r.Alg3Shape), shapeString(r.Alg4Shape))
		}
	}

	if *plot {
		fmt.Println()
		asciiPlot(rows)
	}

	if *callouts {
		if *maxExp < 28 {
			fmt.Fprintln(os.Stderr, "fig4: call-outs need -maxexp >= 28")
			os.Exit(2)
		}
		c := costmodel.ComputeFig4Callouts(rows)
		fmt.Println()
		fmt.Println("Call-outs (paper values in parentheses):")
		fmt.Printf("  matmul 1D->higher-D kink:    2^%d   (paper: 2^15 exactly in the closed-form model)\n", c.KinkExp)
		fmt.Printf("  Alg3/Alg4 divergence:        2^%d   (paper figure: 2^27)\n", c.DivergeExp)
		fmt.Printf("  matmul / best-of-ours @2^17: %.1fx  (paper: ~25x)\n", c.RatioAt17)
		fmt.Printf("  analytic crossover P*:       2^%.1f (Section VI-B: I/(NR)^(N/(N-1)))\n",
			math.Log2(c.PredictedCrossover))
	}
}
