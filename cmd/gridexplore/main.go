// Command gridexplore enumerates every processor-grid factorization
// for a problem and prints its modeled communication (Eq. 14/18),
// message count, and memory footprint — the design space Section V's
// analysis optimizes over, laid out explicitly. Useful for seeing how
// forgiving (or not) grid choice is at a given scale.
//
// Usage:
//
//	gridexplore -dims 64,64,64 -r 16 -p 64 [-general] [-top 10]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/costmodel"
	"repro/internal/grid"
)

type row struct {
	shape []int
	words float64
	msgs  float64
	mem   float64
}

func main() {
	dimsFlag := flag.String("dims", "64,64,64", "tensor dimensions")
	r := flag.Int("r", 16, "rank R")
	p := flag.Int("p", 64, "processor count")
	general := flag.Bool("general", false, "explore (N+1)-way grids (Algorithm 4) instead of N-way")
	top := flag.Int("top", 12, "show the best and worst k grids")
	flag.Parse()

	dims, err := parseInts(*dimsFlag)
	if err != nil {
		fatal(err)
	}
	fdims := make([]float64, len(dims))
	for i, d := range dims {
		fdims[i] = float64(d)
	}
	m := costmodel.Model{Dims: fdims, R: float64(*r)}

	parts := len(dims)
	if *general {
		parts++
	}
	var rows []row
	for _, shape := range grid.Factorizations(*p, parts) {
		fshape := make([]float64, len(shape))
		valid := true
		for i, s := range shape {
			fshape[i] = float64(s)
			if *general {
				if i == 0 {
					valid = valid && s <= *r
				} else {
					valid = valid && s <= dims[i-1]
				}
			} else {
				valid = valid && s <= dims[i]
			}
		}
		if !valid {
			continue
		}
		var w, msgs, mem float64
		if *general {
			w = m.Alg4Words(fshape)
			msgs = m.Alg4Messages(fshape)
			mem = m.Alg4Memory(fshape)
		} else {
			w = m.Alg3Words(fshape)
			msgs = m.Alg3Messages(fshape)
			mem = m.Alg3Memory(fshape)
		}
		rows = append(rows, row{shape: shape, words: w, msgs: msgs, mem: mem})
	}
	if len(rows) == 0 {
		fatal(fmt.Errorf("no valid grids for P=%d over dims %v", *p, dims))
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].words < rows[b].words })

	algo := "Algorithm 3 (stationary)"
	if *general {
		algo = "Algorithm 4 (general, shape[0] = P0)"
	}
	fmt.Printf("%s grid design space: dims=%v R=%d P=%d — %d valid grids\n",
		algo, dims, *r, *p, len(rows))
	fmt.Printf("%-20s %-14s %-10s %-12s\n", "grid", "words/proc", "msgs", "mem/proc")
	show := *top
	if show > len(rows) {
		show = len(rows)
	}
	for i := 0; i < show; i++ {
		printRow(rows[i])
	}
	if len(rows) > 2*show {
		fmt.Println("  ...")
	}
	for i := max(len(rows)-show, show); i < len(rows); i++ {
		printRow(rows[i])
	}
	fmt.Printf("\nbest/worst ratio: %.2fx — grid choice matters by this factor at this scale\n",
		rows[len(rows)-1].words/rows[0].words)
}

func printRow(r row) {
	// fmt applies widths elementwise to slices; stringify first.
	fmt.Printf("%-20s %-14.5g %-10.0f %-12.5g\n", fmt.Sprint(r.shape), r.words, r.msgs, r.mem)
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridexplore:", err)
	os.Exit(2)
}
