// Command lrusweep replays MTTKRP loop-ordering traces through an
// LRU-managed fast memory and compares the resulting traffic against
// the explicitly-managed algorithms and the lower bounds. It answers a
// question the paper's model leaves implicit: how much of Algorithm
// 2's benefit comes from the *ordering* (which a hardware cache can
// exploit on its own) versus explicit staging.
//
// Usage:
//
//	lrusweep [-side 12] [-n 3] [-r 8] [-mode 0] [-mexps 6,7,8,9,10]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bounds"
	"repro/internal/cachesim"
	"repro/internal/seq"
	"repro/internal/trace"
)

func main() {
	side := flag.Int("side", 12, "tensor dimension per mode")
	nModes := flag.Int("n", 3, "tensor order N")
	r := flag.Int("r", 8, "rank R")
	mode := flag.Int("mode", 0, "MTTKRP mode")
	mexps := flag.String("mexps", "6,7,8,9,10", "fast memory sizes as powers of two")
	seed := flag.Int64("seed", 11, "random-ordering seed")
	flag.Parse()

	dims := make([]int, *nModes)
	for i := range dims {
		dims[i] = *side
	}
	l := trace.NewLayout(dims, *r, *mode)
	prob := bounds.Problem{Dims: dims, R: *r}

	fmt.Printf("LRU replay of MTTKRP orderings: dims=%v, R=%d, mode=%d\n", dims, *r, *mode)
	fmt.Println("words = misses + dirty write-backs under fully-associative LRU")
	fmt.Printf("\n%-8s %-7s %-14s %-14s %-14s %-14s %-12s\n",
		"M", "block", "W(unblocked)", "W(blocked)", "W(morton)", "W(random)", "lower bound")

	for _, part := range strings.Split(*mexps, ",") {
		e, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || e < 2 || e > 26 {
			fmt.Fprintf(os.Stderr, "lrusweep: bad exponent %q\n", part)
			os.Exit(2)
		}
		M := 1 << e
		b, err := seq.ChooseBlock(int64(M), *nModes, 0.9)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lrusweep:", err)
			os.Exit(2)
		}
		unb := cachesim.Simulate(M, func(em func(trace.Access)) { trace.Unblocked(l, *mode, em) })
		blk := cachesim.Simulate(M, func(em func(trace.Access)) { trace.Blocked(l, *mode, b, em) })
		mor := cachesim.Simulate(M, func(em func(trace.Access)) { trace.Morton(l, *mode, em) })
		rnd := cachesim.Simulate(M, func(em func(trace.Access)) { trace.Random(l, *mode, *seed, em) })
		fmt.Printf("%-8d %-7d %-14d %-14d %-14d %-14d %-12.4g\n",
			M, b, unb.Words(), blk.Words(), mor.Words(), rnd.Words(), bounds.SeqBest(prob, float64(M)))
	}
	fmt.Println("\nBlocked ordering under LRU tracks the explicitly managed Algorithm 2;")
	fmt.Println("the Morton (Z-curve) ordering is cache-oblivious: near-blocked at every")
	fmt.Println("M with no tuned block size; the random ordering shows what losing")
	fmt.Println("locality costs.")
}
