// Command mttkrp runs a single MTTKRP on a generated dense tensor with
// a chosen algorithm, verifies the result against the direct reference
// kernel, and prints the measured communication next to the relevant
// lower bounds.
//
// With -obs / -obs-json the run is instrumented through internal/obs:
// the report joins the measured words moved against the paper's lower
// bounds (Theorem 4.1 / Fact 4.1 sequentially, Theorems 4.2/4.3 and
// Eq. (14) in parallel) and -obs-maxratio / -obs-minratio turn the
// measured/bound ratio into an exit-code assertion for CI.
//
// Usage:
//
//	mttkrp -dims 16,16,16 -r 8 -mode 0 -algo blocked -m 512 -obs
//	mttkrp -dims 16,16,16 -r 8 -mode 1 -algo stationary -p 8 -obs-json -
//	mttkrp -dims 128,128,128 -r 16 -mode 1 -algo fast -workers 0
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/plan"
	"repro/internal/seq"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func main() {
	dimsFlag := flag.String("dims", "16,16,16", "tensor dimensions, comma separated")
	r := flag.Int("r", 8, "rank R")
	mode := flag.Int("mode", 0, "MTTKRP mode n")
	algo := flag.String("algo", "blocked",
		"algorithm: unblocked | blocked | seq-matmul | stationary | general | par-matmul | fast")
	engine := flag.String("engine", "auto",
		"engine selection when -algo is not given: auto (cost-model planner) | fast | fast32 | tree")
	m := flag.Int64("m", 512, "fast memory words (sequential algorithms)")
	p := flag.Int("p", 8, "processors (parallel algorithms)")
	workers := flag.Int("workers", 0, "goroutines for -algo fast (0 = GOMAXPROCS)")
	dtype := flag.String("dtype", "f64", "storage precision for -algo fast: f64 | f32 (accumulation stays float64)")
	seed := flag.Int64("seed", 42, "workload seed")
	obsFlag := flag.Bool("obs", false, "print the instrumented observability report")
	obsJSON := flag.String("obs-json", "", "write the observability report as JSON to this path (- for stdout)")
	obsMax := flag.Float64("obs-maxratio", 0, "fail (exit 3) when the measured/best-bound ratio exceeds this (0 = off)")
	obsMin := flag.Float64("obs-minratio", 0, "fail (exit 3) when the measured/best-bound ratio is below this (0 = off)")
	traceOut := flag.String("trace", "", "write a flight-recorder Chrome trace (JSON) to this path")
	flag.Parse()

	dims, err := parseDims(*dimsFlag)
	if err != nil {
		fatal(err)
	}
	inst, err := workload.Generate(workload.Spec{Dims: dims, R: *r, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if *mode < 0 || *mode >= len(dims) {
		fatal(fmt.Errorf("mode %d out of range", *mode))
	}
	prob := bounds.Problem{Dims: dims, R: *r}
	ref := seq.Ref(inst.X, inst.Factors, *mode)

	observing := *obsFlag || *obsJSON != "" || *obsMax > 0 || *obsMin > 0
	var col *obs.Collector
	if observing {
		col = obs.New(0)
		obs.Enable(col)
		defer obs.Disable()
	}
	var rep *obs.Report
	runStart := time.Now()

	// Without an explicit -algo, the run goes through the cost-model
	// planner: -engine auto (the default) lets the planner pick the
	// engine and worker count, a named engine fixes the engine but
	// still plans workers and block sizes. An explicit -algo always
	// takes the legacy path below, planner untouched.
	algoSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "algo" {
			algoSet = true
		}
	})

	// -trace records a flight-recorder timeline of whichever path runs.
	// Parallel algorithms get one process row per simulated rank; the
	// sequential/shared-memory paths render on the single engine row.
	if *traceOut != "" {
		ranks := 0
		if algoSet {
			switch *algo {
			case "stationary", "general", "par-matmul":
				ranks = *p
			}
		}
		flush := flight.StartTrace(*traceOut, ranks)
		defer func() {
			if err := flush(); err != nil {
				fatal(err)
			}
		}()
	}

	if !algoSet {
		runPlanned(*engine, inst, dims, *r, *mode, *dtype, *workers, *m,
			runStart, observing, col, *obsFlag, *obsJSON, *obsMax, *obsMin)
		return
	}

	fmt.Printf("MTTKRP: dims=%v R=%d mode=%d algo=%s\n", dims, *r, *mode, *algo)
	switch *algo {
	case "unblocked", "blocked", "seq-matmul":
		var sa core.SeqAlgorithm
		switch *algo {
		case "unblocked":
			sa = core.SeqUnblocked
		case "blocked":
			sa = core.SeqBlocked
		default:
			sa = core.SeqViaMatmul
		}
		res, err := core.Sequential(inst.X, inst.Factors, *mode, core.SeqOptions{Algorithm: sa, M: *m})
		if err != nil {
			fatal(err)
		}
		check(res.B.EqualApprox(ref, 1e-9))
		fmt.Printf("machine: two-level memory, M = %d words\n", *m)
		fmt.Printf("loads   = %d\nstores  = %d\nwords   = %d\npeak    = %d\nflops   = %d\n",
			res.Counts.Loads, res.Counts.Stores, res.Counts.Words(), res.Counts.Peak, res.Flops)
		fmt.Printf("lower bound (Thm 4.1):  %.4g\n", bounds.SeqMemDependent(prob, float64(*m)))
		fmt.Printf("lower bound (Fact 4.1): %.4g\n", bounds.SeqTrivial(prob, float64(*m)))
		if observing {
			rep = obs.NewReport("mttkrp", *algo, dims, *r, *mode, obs.Machine{M: *m})
			// The memory simulator counts loads and stores exactly; the
			// collector contributes the phase timings.
			rep.MeasuredWords = res.Counts.Words()
			rep.Counters = obs.Totals{
				WordsRead:    res.Counts.Loads,
				WordsWritten: res.Counts.Stores,
				Flops:        res.Flops,
			}
			rep.Phases = col.PhaseStats()
			rep.JoinSeqBounds(float64(*m))
		}

	case "stationary", "general", "par-matmul":
		var pa core.ParAlgorithm
		switch *algo {
		case "stationary":
			pa = core.ParStationary
		case "general":
			pa = core.ParGeneral
		default:
			pa = core.ParViaMatmul
		}
		res, err := core.Parallel(inst.X, inst.Factors, *mode, core.ParOptions{Algorithm: pa, P: *p})
		if err != nil {
			fatal(err)
		}
		check(res.B.EqualApprox(ref, 1e-9))
		fmt.Printf("machine: simulated distributed memory, P = %d\n", *p)
		fmt.Printf("max words/proc (sends+recvs) = %d\n", res.MaxWords())
		fmt.Printf("max sends/proc               = %d\n", res.MaxSent())
		fmt.Printf("total sends                  = %d\n", res.TotalSent())
		fmt.Printf("lower bound (Thm 4.2): %.4g\n", bounds.ParMemIndependent1(prob, float64(*p), 1, 1))
		fmt.Printf("lower bound (Thm 4.3): %.4g\n", bounds.ParMemIndependent2(prob, float64(*p), 1, 1))
		if observing {
			rep = obs.NewReport("mttkrp", *algo, dims, *r, *mode, obs.Machine{P: *p})
			rep.MeasuredWords = res.MaxWords()
			rep.FillFromCollector(col)
			rep.JoinParBounds(float64(*p), 0)
			joinAlgWords(rep, *algo, dims, *r, res.Grid)
		}

	case "fast":
		// Shared-memory KRP-splitting engine: warm the workspace, then
		// time one steady-state run against one atomic-reference run.
		ws := kernel.NewWorkspace(dims, *r, *mode)
		var tFast time.Duration
		switch *dtype {
		case "f64":
			b := tensor.NewMatrix(dims[*mode], *r)
			kernel.FastInto(b, inst.X, inst.Factors, *mode, *workers, ws)
			if observing {
				col.Reset() // measure the steady-state run only
			}
			t0 := time.Now()
			kernel.FastInto(b, inst.X, inst.Factors, *mode, *workers, ws)
			tFast = time.Since(t0)
			check(b.EqualApprox(ref, 1e-9))
		case "f32":
			// Convert on ingest, then verify against the reference run on
			// the exactly-widened float32 inputs (the only extra rounding
			// the path is allowed is the final float32 store).
			x32 := tensor.Dense32FromDense(inst.X)
			fs32 := make([]*tensor.Matrix32, len(inst.Factors))
			wide := make([]*tensor.Matrix, len(inst.Factors))
			for k, f := range inst.Factors {
				fs32[k] = tensor.Matrix32FromMatrix(f)
				wide[k] = fs32[k].ToMatrix()
			}
			b := tensor.NewMatrix32(dims[*mode], *r)
			kernel.Fast32Into(b, x32, fs32, *mode, *workers, ws)
			if observing {
				col.Reset() // measure the steady-state run only
			}
			t0 := time.Now()
			kernel.Fast32Into(b, x32, fs32, *mode, *workers, ws)
			tFast = time.Since(t0)
			ref32 := seq.Ref(x32.ToDense(), wide, *mode)
			scale := 1e-5 * float64(inst.X.Elems()) / float64(dims[*mode])
			check(b.MaxAbsDiff(ref32) <= scale)
		default:
			fatal(fmt.Errorf("unknown dtype %q (want f64 or f32)", *dtype))
		}
		t0 := time.Now()
		seq.Ref(inst.X, inst.Factors, *mode)
		tRef := time.Since(t0)
		fmt.Printf("machine: shared memory, workers = %d, dtype = %s\n",
			linalg.ResolveWorkers(*workers), *dtype)
		fmt.Printf("engine time    = %v\n", tFast)
		fmt.Printf("reference time = %v\n", tRef)
		fmt.Printf("speedup        = %.2fx\n", float64(tRef)/float64(tFast))
		if observing {
			rep = obs.NewReport("mttkrp", *algo, dims, *r, *mode,
				obs.Machine{M: *m, Workers: linalg.ResolveWorkers(*workers)})
			if *dtype == "f32" {
				rep.WordBytes = 4
			}
			// Streaming-model operand traffic vs the two-level bound at
			// M words: an optimistic proxy (each kernel operand counted
			// once), so the ratio reads as "at least this well blocked".
			rep.FillFromCollector(col)
			rep.JoinSeqBounds(float64(*m))
		}

	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	if rep != nil {
		rep.WallNs = int64(time.Since(runStart))
		finishObs(rep, *algo, *obsFlag, *obsJSON, *obsMax, *obsMin)
	}
}

// runPlanned is the -engine path: plan, apply the tunables, prepare
// the chosen engine, run one warm pass and one timed steady-state
// pass, verify against the reference kernel, and report the plan next
// to what was measured.
func runPlanned(engineName string, inst *workload.Instance, dims []int, r, mode int,
	dtype string, workers int, m int64, runStart time.Time,
	observing bool, col *obs.Collector, human bool, jsonPath string, maxRatio, minRatio float64) {

	prob := plan.Problem{Dims: dims, R: r, Mode: mode, MaxWorkers: workers}
	switch dtype {
	case "f64":
		prob.DType = plan.F64
	case "f32":
		prob.DType = plan.F32
	default:
		fatal(fmt.Errorf("unknown dtype %q (want f64 or f32)", dtype))
	}

	cal := plan.LoadOrMeasure(plan.DefaultCachePath())
	var choice plan.Choice
	var err error
	if engineName == "auto" {
		choice, err = plan.Plan(prob, cal)
	} else {
		choice, err = plan.PlanEngine(engineName, prob, cal)
	}
	if err != nil {
		fatal(err)
	}
	choice.Apply()
	eng, _ := plan.Lookup(choice.Engine)
	pinst := &plan.Instance{X: inst.X, Factors: inst.Factors}
	if err := eng.Prepare(prob, pinst); err != nil {
		fatal(err)
	}

	fmt.Printf("MTTKRP: dims=%v R=%d mode=%d engine=%s (planned)\n", dims, r, mode, choice.Engine)
	fmt.Printf("plan: workers=%d kc=%d mc=%d predicted=%v\n",
		choice.Workers, choice.GemmKC, choice.GemmMC,
		time.Duration(choice.Predicted.Seconds*1e9))

	var res plan.Result
	eng.Run(prob, pinst, &res, choice.Workers) // warm: grows outputs and workspaces

	// Reference results and timing come before the collector reset so
	// the measured counters cover exactly one steady-state engine pass.
	t0 := time.Now()
	ref := seq.Ref(inst.X, inst.Factors, mode)
	tRef := time.Since(t0)
	var ref32 *tensor.Matrix
	if prob.DType == plan.F32 {
		// The f32 path's reference runs on the exactly-widened float32
		// inputs; the only extra rounding allowed is the float32 store.
		wide := make([]*tensor.Matrix, len(pinst.Factors32))
		for k, f := range pinst.Factors32 {
			wide[k] = f.ToMatrix()
		}
		ref32 = seq.Ref(pinst.X32.ToDense(), wide, mode)
	}

	if observing {
		col.Reset() // measure the steady-state run only
	}
	t0 = time.Now()
	eng.Run(prob, pinst, &res, choice.Workers)
	tEng := time.Since(t0)

	if prob.DType == plan.F32 {
		scale := 1e-5 * float64(inst.X.Elems()) / float64(dims[mode])
		check(res.B32.MaxAbsDiff(ref32) <= scale)
	} else {
		check(res.B.EqualApprox(ref, 1e-9))
	}
	fmt.Printf("engine time    = %v\n", tEng)
	fmt.Printf("reference time = %v\n", tRef)
	fmt.Printf("speedup        = %.2fx\n", float64(tRef)/float64(tEng))

	if observing {
		rep := obs.NewReport("mttkrp", "auto:"+choice.Engine, dims, r, mode,
			obs.Machine{M: m, Workers: choice.Workers})
		rep.WordBytes = prob.DType.WordBytes()
		rep.Plan = choice.PlanInfo()
		rep.FillFromCollector(col)
		rep.JoinSeqBounds(float64(m))
		rep.WallNs = int64(time.Since(runStart))
		finishObs(rep, "auto", human, jsonPath, maxRatio, minRatio)
	}
}

// joinAlgWords adds the closed-form per-processor send cost of the
// algorithm actually run — Eq. (14) for Algorithm 3, Eq. (18) for
// Algorithm 4 — evaluated on the grid the run used.
func joinAlgWords(rep *obs.Report, algo string, dims []int, r int, grid []int) {
	if len(grid) == 0 {
		return
	}
	fdims := make([]float64, len(dims))
	for i, d := range dims {
		fdims[i] = float64(d)
	}
	shape := make([]float64, len(grid))
	for i, g := range grid {
		shape[i] = float64(g)
	}
	model := costmodel.Model{Dims: fdims, R: float64(r)}
	switch algo {
	case "stationary":
		rep.JoinBound("eq14-alg3-sends", model.Alg3Words(shape))
	case "general":
		rep.JoinBound("eq18-alg4-sends", model.Alg4Words(shape))
	}
}

// finishObs emits the report and enforces the CI ratio gates against
// the best applicable bound.
func finishObs(rep *obs.Report, algo string, human bool, jsonPath string, maxRatio, minRatio float64) {
	if human {
		rep.Format(os.Stdout)
	}
	if jsonPath == "-" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if maxRatio <= 0 && minRatio <= 0 {
		return
	}
	if rep.MeasuredWords <= 0 {
		fmt.Fprintf(os.Stderr, "mttkrp: obs gate: measured words = %d (instrumentation broken?)\n", rep.MeasuredWords)
		os.Exit(3)
	}
	best := "seq-best"
	switch algo {
	case "stationary", "general", "par-matmul":
		best = "par-best"
	}
	ratio := rep.Ratio(best)
	//repro:bitwise Ratio returns exactly 0 for vacuous bounds
	if ratio == 0 {
		fmt.Fprintf(os.Stderr, "mttkrp: obs gate: bound %q is vacuous for this configuration\n", best)
		os.Exit(3)
	}
	if maxRatio > 0 && ratio > maxRatio {
		fmt.Fprintf(os.Stderr, "mttkrp: obs gate: measured/%s = %.3f exceeds -obs-maxratio %.3f\n", best, ratio, maxRatio)
		os.Exit(3)
	}
	if minRatio > 0 && ratio < minRatio {
		fmt.Fprintf(os.Stderr, "mttkrp: obs gate: measured/%s = %.3f below -obs-minratio %.3f\n", best, ratio, minRatio)
		os.Exit(3)
	}
	fmt.Printf("obs gate: measured/%s = %.3f within [%g, %g]\n", best, ratio,
		minRatio, maxRatio)
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 {
		return nil, fmt.Errorf("need at least 2 dimensions, got %q", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

func check(ok bool) {
	if ok {
		fmt.Println("result: verified against reference kernel")
	} else {
		fmt.Println("result: MISMATCH against reference kernel")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mttkrp:", err)
	os.Exit(2)
}
