// Command mttkrp runs a single MTTKRP on a generated dense tensor with
// a chosen algorithm, verifies the result against the direct reference
// kernel, and prints the measured communication next to the relevant
// lower bounds.
//
// Usage:
//
//	mttkrp -dims 16,16,16 -r 8 -mode 0 -algo blocked -m 512
//	mttkrp -dims 16,16,16 -r 8 -mode 1 -algo stationary -p 8
//	mttkrp -dims 128,128,128 -r 16 -mode 1 -algo fast -workers 0
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/seq"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func main() {
	dimsFlag := flag.String("dims", "16,16,16", "tensor dimensions, comma separated")
	r := flag.Int("r", 8, "rank R")
	mode := flag.Int("mode", 0, "MTTKRP mode n")
	algo := flag.String("algo", "blocked",
		"algorithm: unblocked | blocked | seq-matmul | stationary | general | par-matmul | fast")
	m := flag.Int64("m", 512, "fast memory words (sequential algorithms)")
	p := flag.Int("p", 8, "processors (parallel algorithms)")
	workers := flag.Int("workers", 0, "goroutines for -algo fast (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	dims, err := parseDims(*dimsFlag)
	if err != nil {
		fatal(err)
	}
	inst, err := workload.Generate(workload.Spec{Dims: dims, R: *r, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if *mode < 0 || *mode >= len(dims) {
		fatal(fmt.Errorf("mode %d out of range", *mode))
	}
	prob := bounds.Problem{Dims: dims, R: *r}
	ref := seq.Ref(inst.X, inst.Factors, *mode)

	fmt.Printf("MTTKRP: dims=%v R=%d mode=%d algo=%s\n", dims, *r, *mode, *algo)
	switch *algo {
	case "unblocked", "blocked", "seq-matmul":
		var sa core.SeqAlgorithm
		switch *algo {
		case "unblocked":
			sa = core.SeqUnblocked
		case "blocked":
			sa = core.SeqBlocked
		default:
			sa = core.SeqViaMatmul
		}
		res, err := core.Sequential(inst.X, inst.Factors, *mode, core.SeqOptions{Algorithm: sa, M: *m})
		if err != nil {
			fatal(err)
		}
		check(res.B.EqualApprox(ref, 1e-9))
		fmt.Printf("machine: two-level memory, M = %d words\n", *m)
		fmt.Printf("loads   = %d\nstores  = %d\nwords   = %d\npeak    = %d\nflops   = %d\n",
			res.Counts.Loads, res.Counts.Stores, res.Counts.Words(), res.Counts.Peak, res.Flops)
		fmt.Printf("lower bound (Thm 4.1):  %.4g\n", bounds.SeqMemDependent(prob, float64(*m)))
		fmt.Printf("lower bound (Fact 4.1): %.4g\n", bounds.SeqTrivial(prob, float64(*m)))

	case "stationary", "general", "par-matmul":
		var pa core.ParAlgorithm
		switch *algo {
		case "stationary":
			pa = core.ParStationary
		case "general":
			pa = core.ParGeneral
		default:
			pa = core.ParViaMatmul
		}
		res, err := core.Parallel(inst.X, inst.Factors, *mode, core.ParOptions{Algorithm: pa, P: *p})
		if err != nil {
			fatal(err)
		}
		check(res.B.EqualApprox(ref, 1e-9))
		fmt.Printf("machine: simulated distributed memory, P = %d\n", *p)
		fmt.Printf("max words/proc (sends+recvs) = %d\n", res.MaxWords())
		fmt.Printf("max sends/proc               = %d\n", res.MaxSent())
		fmt.Printf("total sends                  = %d\n", res.TotalSent())
		fmt.Printf("lower bound (Thm 4.2): %.4g\n", bounds.ParMemIndependent1(prob, float64(*p), 1, 1))
		fmt.Printf("lower bound (Thm 4.3): %.4g\n", bounds.ParMemIndependent2(prob, float64(*p), 1, 1))

	case "fast":
		// Shared-memory KRP-splitting engine: warm the workspace, then
		// time one steady-state run against one atomic-reference run.
		ws := kernel.NewWorkspace(dims, *r, *mode)
		b := tensor.NewMatrix(dims[*mode], *r)
		kernel.FastInto(b, inst.X, inst.Factors, *mode, *workers, ws)
		t0 := time.Now()
		kernel.FastInto(b, inst.X, inst.Factors, *mode, *workers, ws)
		tFast := time.Since(t0)
		t0 = time.Now()
		seq.Ref(inst.X, inst.Factors, *mode)
		tRef := time.Since(t0)
		check(b.EqualApprox(ref, 1e-9))
		fmt.Printf("machine: shared memory, workers = %d\n", linalg.ResolveWorkers(*workers))
		fmt.Printf("engine time    = %v\n", tFast)
		fmt.Printf("reference time = %v\n", tRef)
		fmt.Printf("speedup        = %.2fx\n", float64(tRef)/float64(tFast))

	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 {
		return nil, fmt.Errorf("need at least 2 dimensions, got %q", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

func check(ok bool) {
	if ok {
		fmt.Println("result: verified against reference kernel")
	} else {
		fmt.Println("result: MISMATCH against reference kernel")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mttkrp:", err)
	os.Exit(2)
}
