// Command obsserve runs an instrumented MTTKRP workload in a loop and
// serves live observability over HTTP: Prometheus text-exposition
// metrics on /metrics (iteration counters and latency histograms, the
// obs counter totals, per-phase time, and the measured/bound ratio),
// a /healthz liveness probe, the standard net/http/pprof endpoints, an
// optional runtime/trace capture, and the internal/obs report as JSON.
// It is the interactive companion to the -obs flags on the batch
// commands — point a Prometheus scraper, a profiler, or a dashboard at
// a long-running engine loop instead of rerunning one-shot
// measurements.
//
// The server shuts down gracefully: SIGINT or SIGTERM stops the
// workload loop, drains in-flight requests through http.Server.Shutdown
// (bounded by a five-second timeout), and the final report still
// prints.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/healthz       liveness probe ("ok")
//	/report        current obs report joined against the Thm 4.1 bound
//	/spans         the span ring (most recent ringCap phase spans)
//	/reset         zero the collector (counters, phases, ring)
//	/debug/pprof/  net/http/pprof profiles
//
// Usage:
//
//	obsserve -addr localhost:6060 -dims 64,64,64 -r 16 -algo tree
//	obsserve -dims 32,32,32 -r 8 -duration 10s -trace trace.out
//	obsserve -addr localhost:0 -once     # CI: self-scrape and exit
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime/trace"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/dimtree"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/metrics"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "localhost:6060", "HTTP listen address (host:0 picks a free port)")
	dimsFlag := flag.String("dims", "32,32,32", "tensor dimensions")
	r := flag.Int("r", 8, "rank R")
	mode := flag.Int("mode", 0, "MTTKRP mode for -algo fast")
	algo := flag.String("algo", "fast", "looped workload: fast (KRP-splitting kernel) | tree (dimension-tree all-modes)")
	workers := flag.Int("workers", 0, "engine goroutines (0 = package default)")
	m := flag.Int64("m", 512, "fast memory words for the joined Thm 4.1 bound")
	duration := flag.Duration("duration", 0, "stop after this long (0 = run until signaled)")
	once := flag.Bool("once", false, "run a few iterations, scrape own /healthz and /metrics, then exit")
	traceOut := flag.String("trace", "", "write a runtime/trace capture to this file")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	dims, err := parseDims(*dimsFlag)
	if err != nil {
		fatal(err)
	}
	if *mode < 0 || *mode >= len(dims) {
		fatal(fmt.Errorf("mode %d out of range", *mode))
	}
	if *algo != "fast" && *algo != "tree" {
		fatal(fmt.Errorf("unknown -algo %q (want fast or tree)", *algo))
	}
	inst, err := workload.Generate(workload.Spec{Dims: dims, R: *r, Seed: *seed})
	if err != nil {
		fatal(err)
	}

	col := obs.New(0)
	obs.Enable(col)
	defer obs.Disable()

	buildReport := func() *obs.Report {
		rep := obs.NewReport("obsserve", *algo, dims, *r, *mode,
			obs.Machine{M: *m, Workers: linalg.ResolveWorkers(*workers)})
		rep.FillFromCollector(col)
		rep.JoinSeqBounds(float64(*m))
		return rep
	}

	// The metrics registry exposes the loop's own counters plus
	// scrape-time views over the obs collector and the joined bound.
	reg := metrics.NewRegistry()
	iterations := reg.Counter("repro_obsserve_iterations_total",
		"Engine passes completed by the workload loop.")
	iterSeconds := reg.Histogram("repro_obsserve_iteration_seconds",
		"Wall-clock latency of one engine pass.",
		[]float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1},
		"algo", *algo)
	totals := func(pick func(obs.Totals) int64) func() float64 {
		return func() float64 { return float64(pick(col.Totals())) }
	}
	reg.CounterFunc("repro_obs_words_total",
		"Streaming-model operand words moved by instrumented kernels.",
		totals(func(t obs.Totals) int64 { return t.WordsRead }), "kind", "read")
	reg.CounterFunc("repro_obs_words_total", "",
		totals(func(t obs.Totals) int64 { return t.WordsWritten }), "kind", "written")
	reg.CounterFunc("repro_obs_flops_total",
		"Floating-point operations by instrumented kernels.",
		totals(func(t obs.Totals) int64 { return t.Flops }))
	reg.CounterFunc("repro_obs_comm_words_total",
		"Simulated collective words.",
		totals(func(t obs.Totals) int64 { return t.CommSent }), "dir", "sent")
	reg.CounterFunc("repro_obs_comm_words_total", "",
		totals(func(t obs.Totals) int64 { return t.CommRecv }), "dir", "recv")
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		phase := p.String()
		stat := func(pick func(obs.PhaseStat) float64) func() float64 {
			return func() float64 {
				for _, s := range col.PhaseStats() {
					if s.Phase == phase {
						return pick(s)
					}
				}
				return 0
			}
		}
		reg.CounterFunc("repro_obs_phase_seconds_total",
			"Time spent inside each obs phase.",
			stat(func(s obs.PhaseStat) float64 { return float64(s.Nanos) / 1e9 }), "phase", phase)
		reg.CounterFunc("repro_obs_phase_spans_total",
			"Spans recorded per obs phase.",
			stat(func(s obs.PhaseStat) float64 { return float64(s.Count) }), "phase", phase)
	}
	reg.GaugeFunc("repro_obs_bound_ratio",
		"Measured words over the best applicable lower bound (0 = vacuous).",
		func() float64 { return buildReport().Ratio("seq-best") }, "bound", "seq-best")
	reg.GaugeFunc("repro_flight_events_total",
		"Events recorded by the active flight recorder.",
		func() float64 { return float64(flight.Rec().TotalCount()) })

	mux := http.DefaultServeMux // net/http/pprof registers here
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := buildReport().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(col.Spans()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/reset", func(w http.ResponseWriter, req *http.Request) {
		col.Reset()
		fmt.Fprintln(w, "collector reset")
	})

	// Listen before announcing so -addr host:0 resolves to a concrete
	// port (the -once self-scrape and CI both depend on it).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("obsserve: %s workload dims=%v R=%d on http://%s (/metrics /healthz /report /spans /reset /debug/pprof/)\n",
		*algo, dims, *r, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.Start(f); err != nil {
			fatal(err)
		}
		defer func() {
			trace.Stop()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "obsserve: trace close:", err)
			}
		}()
		fmt.Printf("obsserve: runtime/trace capture -> %s\n", *traceOut)
	}

	// The measured loop. Warm buffers outside the loop so the collector
	// sees steady-state behavior (allocs stay flat after the reset).
	// Every pass feeds the iteration counter and latency histogram; the
	// loop ends on the -duration deadline, a shutdown signal, or (with
	// -once) after a few passes.
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	iters := 0
	runLoop := func(pass func()) {
		for ctx.Err() == nil && (deadline.IsZero() || time.Now().Before(deadline)) {
			t0 := time.Now()
			pass()
			iterSeconds.Observe(time.Since(t0).Seconds())
			iterations.Inc()
			iters++
			if *once && iters >= 3 {
				return
			}
		}
	}
	switch *algo {
	case "fast":
		ws := kernel.NewWorkspace(dims, *r, *mode)
		b := tensor.NewMatrix(dims[*mode], *r)
		kernel.FastInto(b, inst.X, inst.Factors, *mode, *workers, ws)
		col.Reset()
		runLoop(func() { kernel.FastInto(b, inst.X, inst.Factors, *mode, *workers, ws) })
	case "tree":
		eng := dimtree.NewEngine(*workers)
		res := &dimtree.Result{}
		eng.AllModesInto(res, inst.X, inst.Factors)
		col.Reset()
		runLoop(func() { eng.AllModesInto(res, inst.X, inst.Factors) })
	}

	if *once {
		if err := selfScrape("http://" + ln.Addr().String()); err != nil {
			fatal(err)
		}
	}

	// Graceful drain: stop accepting, finish in-flight requests, join
	// the server goroutine. ErrServerClosed is the clean-shutdown path.
	stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "obsserve: shutdown:", err)
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fatal(err)
	}

	fmt.Printf("obsserve: %d iterations; final report:\n", iters)
	buildReport().Format(os.Stdout)
}

// selfScrape hits the command's own /healthz and /metrics endpoints
// over real HTTP and echoes the metrics payload, so CI exercises the
// full scrape path with one invocation.
func selfScrape(base string) error {
	body, err := get(base + "/healthz")
	if err != nil {
		return err
	}
	if strings.TrimSpace(body) != "ok" {
		return fmt.Errorf("healthz = %q, want ok", strings.TrimSpace(body))
	}
	body, err = get(base + "/metrics")
	if err != nil {
		return err
	}
	if !strings.Contains(body, "# TYPE repro_obsserve_iterations_total counter") {
		return fmt.Errorf("metrics scrape missing iteration counter:\n%s", body)
	}
	fmt.Print(body)
	return nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close() //repro:besteffort read-only response body
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(b), nil
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 {
		return nil, fmt.Errorf("need at least 2 dimensions, got %q", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obsserve:", err)
	os.Exit(2)
}
