// Command obsserve runs an instrumented MTTKRP workload in a loop and
// serves live observability over HTTP: the standard net/http/pprof
// endpoints, an optional runtime/trace capture, and the internal/obs
// report (counters, phase aggregates, span ring, bound ratios) as
// JSON. It is the interactive companion to the -obs flags on the batch
// commands — point a profiler or a dashboard at a long-running engine
// loop instead of rerunning one-shot measurements.
//
// Endpoints:
//
//	/report        current obs report joined against the Thm 4.1 bound
//	/spans         the span ring (most recent ringCap phase spans)
//	/reset         zero the collector (counters, phases, ring)
//	/debug/pprof/  net/http/pprof profiles
//
// Usage:
//
//	obsserve -addr localhost:6060 -dims 64,64,64 -r 16 -algo tree
//	obsserve -dims 32,32,32 -r 8 -duration 10s -trace trace.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime/trace"
	"strconv"
	"strings"
	"time"

	"repro/internal/dimtree"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "localhost:6060", "HTTP listen address")
	dimsFlag := flag.String("dims", "32,32,32", "tensor dimensions")
	r := flag.Int("r", 8, "rank R")
	mode := flag.Int("mode", 0, "MTTKRP mode for -algo fast")
	algo := flag.String("algo", "fast", "looped workload: fast (KRP-splitting kernel) | tree (dimension-tree all-modes)")
	workers := flag.Int("workers", 0, "engine goroutines (0 = package default)")
	m := flag.Int64("m", 512, "fast memory words for the joined Thm 4.1 bound")
	duration := flag.Duration("duration", 0, "stop after this long (0 = run until killed)")
	traceOut := flag.String("trace", "", "write a runtime/trace capture to this file")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	dims, err := parseDims(*dimsFlag)
	if err != nil {
		fatal(err)
	}
	if *mode < 0 || *mode >= len(dims) {
		fatal(fmt.Errorf("mode %d out of range", *mode))
	}
	if *algo != "fast" && *algo != "tree" {
		fatal(fmt.Errorf("unknown -algo %q (want fast or tree)", *algo))
	}
	inst, err := workload.Generate(workload.Spec{Dims: dims, R: *r, Seed: *seed})
	if err != nil {
		fatal(err)
	}

	col := obs.New(0)
	obs.Enable(col)
	defer obs.Disable()

	buildReport := func() *obs.Report {
		rep := obs.NewReport("obsserve", *algo, dims, *r, *mode,
			obs.Machine{M: *m, Workers: linalg.ResolveWorkers(*workers)})
		rep.FillFromCollector(col)
		rep.JoinSeqBounds(float64(*m))
		return rep
	}
	http.HandleFunc("/report", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := buildReport().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	http.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(col.Spans()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	http.HandleFunc("/reset", func(w http.ResponseWriter, req *http.Request) {
		col.Reset()
		fmt.Fprintln(w, "collector reset")
	})
	//repro:ignore goroutine-leak process-lifetime HTTP daemon; serves until the process exits
	go func() {
		if err := http.ListenAndServe(*addr, nil); err != nil {
			fatal(err)
		}
	}()
	fmt.Printf("obsserve: %s workload dims=%v R=%d on http://%s (/report /spans /reset /debug/pprof/)\n",
		*algo, dims, *r, *addr)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fatal(err)
		}
		defer trace.Stop()
		fmt.Printf("obsserve: runtime/trace capture -> %s\n", *traceOut)
	}

	// The measured loop. Warm buffers outside the loop so the collector
	// sees steady-state behavior (allocs stay flat after the reset).
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	iters := 0
	switch *algo {
	case "fast":
		ws := kernel.NewWorkspace(dims, *r, *mode)
		b := tensor.NewMatrix(dims[*mode], *r)
		kernel.FastInto(b, inst.X, inst.Factors, *mode, *workers, ws)
		col.Reset()
		for deadline.IsZero() || time.Now().Before(deadline) {
			kernel.FastInto(b, inst.X, inst.Factors, *mode, *workers, ws)
			iters++
		}
	case "tree":
		eng := dimtree.NewEngine(*workers)
		res := &dimtree.Result{}
		eng.AllModesInto(res, inst.X, inst.Factors)
		col.Reset()
		for deadline.IsZero() || time.Now().Before(deadline) {
			eng.AllModesInto(res, inst.X, inst.Factors)
			iters++
		}
	}
	fmt.Printf("obsserve: %d iterations in %v; final report:\n", iters, *duration)
	buildReport().Format(os.Stdout)
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 {
		return nil, fmt.Errorf("need at least 2 dimensions, got %q", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obsserve:", err)
	os.Exit(2)
}
