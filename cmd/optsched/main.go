// Command optsched computes the exact optimal communication of a tiny
// MTTKRP instance over ALL executions (orderings and residency
// decisions) via exhaustive state search, and prints it between the
// Section IV lower bounds and Algorithm 2's measured cost. It is the
// strongest form of validation this repository offers for Theorem 4.1:
// not even the best possible schedule beats the bound.
//
// Usage:
//
//	optsched [-dims 2,2,2] [-r 1] [-mode 0] [-ms 4,5,6,8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bounds"
	"repro/internal/memsim"
	"repro/internal/pebble"
	"repro/internal/seq"
	"repro/internal/tensor"
)

func main() {
	dimsFlag := flag.String("dims", "2,2,2", "tensor dimensions (keep tiny: exact search)")
	r := flag.Int("r", 1, "rank R")
	mode := flag.Int("mode", 0, "MTTKRP mode")
	ms := flag.String("ms", "4,5,6,8,12", "fast memory sizes to sweep")
	budget := flag.Int("budget", 50_000_000, "state-exploration budget")
	flag.Parse()

	dims, err := parseInts(*dimsFlag)
	if err != nil {
		fatal(err)
	}
	prob := bounds.Problem{Dims: dims, R: *r}
	x := tensor.RandomDense(1, dims...)
	fs := tensor.RandomFactors(2, dims, *r)

	fmt.Printf("Exact optimal I/O for MTTKRP dims=%v R=%d mode=%d (E16)\n", dims, *r, *mode)
	fmt.Printf("%-6s %-14s %-8s %-10s %s\n", "M", "lower bound", "OPT", "W(alg2)", "status")
	for _, part := range strings.Split(*ms, ",") {
		M, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || M < 1 {
			fatal(fmt.Errorf("bad M %q", part))
		}
		lb := bounds.SeqBest(prob, float64(M))
		opt, err := pebble.Optimal(pebble.Instance{Dims: dims, R: *r, N: *mode, M: M}, *budget)
		if err != nil {
			fmt.Printf("%-6d %-14.4g %-8s %-10s %v\n", M, lb, "-", "-", err)
			continue
		}
		alg2 := "-"
		if res, err := seq.Blocked(x, fs, *mode, 1, memsim.New(int64(M))); err == nil {
			alg2 = fmt.Sprintf("%d", res.Counts.Words())
		}
		status := "lb <= OPT <= alg2"
		if float64(opt) < lb {
			status = "BOUND VIOLATED"
		}
		fmt.Printf("%-6d %-14.4g %-8d %-10s %s\n", M, lb, opt, alg2, status)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "optsched:", err)
	os.Exit(2)
}
