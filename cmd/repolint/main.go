// Command repolint runs the repo's static-analysis suite
// (internal/analysis): hotpath-alloc, determinism, float-eq,
// errcheck-lite, goroutine-leak, waitgroup-misuse, channel-discipline,
// lock-order and workspace-aliasing — the invariants the engines rely
// on but the compiler cannot check.
//
// Usage:
//
//	repolint [-C dir] [-json] [pattern ...]
//
// Patterns follow the go tool's directory form: ./... (default),
// ./internal/kernel/..., ./cmd/repolint. The whole module is always
// loaded (hot-path propagation is cross-package); patterns only filter
// which files' diagnostics are reported. Exit status: 0 clean, 1
// diagnostics reported, 2 load or usage error.
//
// With -json each diagnostic is printed as one JSON object per line
// in the stable schema editor and CI integrations can rely on:
//
//	{"tool":"repolint","rule":"float-eq","pos":{"file":"internal/kernel/kernel.go","line":12,"col":3},"message":"..."}
//
// tool is always "repolint"; rule is the analyzer name as listed
// above; pos.file is slash-separated and relative to the module root;
// pos.line and pos.col are 1-based. Fields are append-only: new keys
// may be added in later versions, existing keys keep their meaning.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	chdir := flag.String("C", ".", "module directory to analyze")
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(*chdir, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	diags := analysis.RunSuite(prog, analysis.DefaultAnalyzers(analysis.DefaultConfig()))

	enc := json.NewEncoder(os.Stdout)
	n := 0
	for _, d := range diags {
		if !matchAny(d.Pos.Filename, patterns) {
			continue
		}
		n++
		if *jsonOut {
			if err := enc.Encode(jsonDiag{
				Tool: "repolint",
				Rule: d.Analyzer,
				Pos:  jsonPos{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column},
				Msg:  d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "repolint:", err)
				os.Exit(2)
			}
		} else {
			fmt.Println(d)
		}
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}

// jsonDiag is the stable -json schema; see the command doc. Keys are
// append-only across versions.
type jsonDiag struct {
	Tool string  `json:"tool"`
	Rule string  `json:"rule"`
	Pos  jsonPos `json:"pos"`
	Msg  string  `json:"message"`
}

type jsonPos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// matchAny reports whether a root-relative file path matches any
// go-style directory pattern.
func matchAny(file string, patterns []string) bool {
	for _, p := range patterns {
		if match(file, p) {
			return true
		}
	}
	return false
}

func match(file, pattern string) bool {
	pattern = strings.TrimPrefix(pattern, "./")
	if pattern == "..." || pattern == "" {
		return true
	}
	if dir, ok := strings.CutSuffix(pattern, "/..."); ok {
		return file == dir || strings.HasPrefix(file, dir+"/")
	}
	i := strings.LastIndex(file, "/")
	return (i < 0 && pattern == ".") || (i >= 0 && file[:i] == pattern)
}
