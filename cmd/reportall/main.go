// Command reportall regenerates a one-line summary of every experiment
// in EXPERIMENTS.md (E1-E20) in a single run — the "reproduce
// everything" entry point. Each line states the artifact, the key
// measured quantity, and whether the paper-derived check holds.
//
// Usage:
//
//	reportall [-fast]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/bounds"
	"repro/internal/cachesim"
	"repro/internal/costmodel"
	"repro/internal/cpals"
	"repro/internal/dimtree"
	"repro/internal/hbl"
	"repro/internal/lp"
	"repro/internal/memsim"
	"repro/internal/par"
	"repro/internal/pebble"
	"repro/internal/seq"
	"repro/internal/simd"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/tucker"
	"repro/internal/workload"
)

var failures int

func report(id, desc string, ok bool, detail string) {
	status := "ok  "
	if !ok {
		status = "FAIL"
		failures++
	}
	fmt.Printf("%-4s %-4s %-52s %s\n", id, status, desc, detail)
}

func main() {
	fast := flag.Bool("fast", false, "skip the slowest checks (E16 exact search)")
	flag.Parse()
	fmt.Println("Reproduction report — Communication Lower Bounds for MTTKRP (IPDPS 2018)")
	fmt.Printf("env: %s word=8B(float64)\n", simd.Describe())
	fmt.Println()

	// Shared measured workload.
	inst, err := workload.Generate(workload.Cubical(3, 16, 8, 42))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	x, fs := inst.X, inst.Factors
	dims := inst.Spec.Dims
	prob := bounds.Problem{Dims: dims, R: 8}

	// E1/E2: Figure 4.
	rows := costmodel.Fig4Series(30)
	c := costmodel.ComputeFig4Callouts(rows)
	e1ok := rows[17].Stationary < rows[17].Matmul && rows[30].General < rows[30].Matmul
	report("E1", "Figure 4 shape (ours below matmul in-regime)", e1ok,
		fmt.Sprintf("matmul@2^17=%.2e ours=%.2e", rows[17].Matmul, rows[17].Stationary))
	report("E2", "Figure 4 call-outs", c.KinkExp >= 15 && c.RatioAt17 > 8,
		fmt.Sprintf("kink=2^%d diverge=2^%d ratio@2^17=%.1fx (paper ~25x)", c.KinkExp, c.DivergeExp, c.RatioAt17))

	// E3: Theorem 6.1 sweep point.
	M := int64(256)
	b, _ := seq.ChooseBlock(M, 3, 0.9)
	r2, err := seq.Blocked(x, fs, 0, b, memsim.New(M))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	lb := bounds.SeqBest(prob, float64(M))
	ub := seq.UpperBlocked(dims, 8, b)
	report("E3", "Theorem 6.1: lb <= W(alg2) <= Eq.(12)",
		float64(r2.Counts.Words()) >= lb && r2.Counts.Words() <= ub,
		fmt.Sprintf("M=%d lb=%.0f W=%d ub=%d", M, lb, r2.Counts.Words(), ub))

	// E4: Section VI-A regime.
	rm, _ := seq.ViaMatmul(x, fs, 0, memsim.New(M))
	report("E4", "Section VI-A: blocked <= via-matmul at this M",
		r2.Counts.Words() <= rm.Counts.Words(),
		fmt.Sprintf("alg2=%d matmul=%d", r2.Counts.Words(), rm.Counts.Words()))

	// E5: Theorem 6.2 measured point.
	shape, _ := costmodel.BestStationaryExact(dims, 8, 8)
	r3, err := par.Stationary(x, fs, 0, shape)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plb := bounds.ParBest(prob, 8, 1, 1)
	report("E5", "Theorem 6.2: measured >= parallel lower bounds",
		float64(r3.MaxWords()) >= plb,
		fmt.Sprintf("P=8 W=%d lb=%.1f", r3.MaxWords(), plb))

	// E6: Eq. (14) exactness.
	want := int64(0)
	for k := 0; k < 3; k++ {
		want += int64(8/shape[k]-1) * int64(16/shape[k]*8/(8/shape[k]))
	}
	report("E6", "Eq.(14) exact for balanced layout",
		r3.MaxSent() == want, fmt.Sprintf("sends=%d model=%d", r3.MaxSent(), want))

	// E7: Lemma 4.2.
	e7ok := true
	for N := 2; N <= 10; N++ {
		_, v, err := lp.Solve(hbl.LemmaLP(N))
		if err != nil || math.Abs(v-hbl.LPValue(N)) > 1e-8 {
			e7ok = false
		}
	}
	report("E7", "Lemma 4.2 LP = 2-1/N for N=2..10", e7ok, "simplex vs closed form")

	// E8/E9: HBL and Figure 1.
	F := hbl.Figure1Example()
	lhs, rhs, ok := hbl.CheckInequality(F, hbl.Projections(3), hbl.SStar(3))
	report("E8", "Lemma 4.1 holds on Figure 1 set", ok, fmt.Sprintf("|F|=%.0f bound=%.2f", lhs, rhs))
	report("E9", "Figure 1 projections all size 6", len(hbl.Project(F, hbl.Projections(3)[0])) == 6, "")

	// E10: CP-ALS.
	truth := tensor.RandomFactors(7, dims, 2)
	lowrank := tensor.FromFactors(truth)
	model, _, err := cpals.Decompose(lowrank, cpals.Options{R: 2, MaxIters: 80, Seed: 9})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	parRes, err := cpals.DecomposeParallel(lowrank, []int{2, 2, 2}, cpals.Options{R: 2, MaxIters: 5, Tol: 0, Seed: 9})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	share := float64(parRes.MaxMTTKRPWords()) / float64(parRes.MaxMTTKRPWords()+parRes.MaxOtherWords())
	report("E10", "CP-ALS recovers; MTTKRP dominates comm",
		model.Fit > 0.999 && share > 0.5,
		fmt.Sprintf("fit=%.4f mttkrp-share=%.0f%%", model.Fit, 100*share))

	// E11: crossover.
	report("E11", "Alg4 crossover after analytic P*",
		float64(c.DivergeExp) >= math.Log2(c.PredictedCrossover)-1,
		fmt.Sprintf("P*=2^%.1f observed=2^%d", math.Log2(c.PredictedCrossover), c.DivergeExp))

	// E12: atomicity-breaking flops.
	report("E12", "via-matmul flops < atomic flops",
		rm.Flops < seq.RefFlops(x, 8), fmt.Sprintf("%d vs %d", rm.Flops, seq.RefFlops(x, 8)))

	// E13: LRU orderings.
	lay := trace.NewLayout(dims, 8, 0)
	lruB := cachesim.Simulate(128, func(e func(trace.Access)) { trace.Blocked(lay, 0, 4, e) })
	lruR := cachesim.Simulate(128, func(e func(trace.Access)) { trace.Random(lay, 0, 11, e) })
	report("E13", "LRU: blocked order beats random; >= lb",
		lruB.Words() < lruR.Words() && float64(lruB.Words()) >= bounds.SeqBest(prob, 128),
		fmt.Sprintf("blocked=%d random=%d", lruB.Words(), lruR.Words()))

	// E14: dimension tree. The word saving approaches 2/N, so use a
	// 4-way, small-R instance (at N=3 with large R the partials'
	// traffic cancels the saving — a genuine regime, see
	// TestCommEstimateLargeRRegime).
	dims4 := []int{8, 8, 8, 8}
	x4 := tensor.RandomDense(43, dims4...)
	fs4 := tensor.RandomFactors(44, dims4, 2)
	dt := dimtree.AllModes(x4, fs4)
	treeComm, indepComm := dimtree.CommEstimate(dims4, 2)
	report("E14", "dimension tree saves flops and words",
		dt.Flops < dimtree.NaiveFlops(dims4, 2) && treeComm < indepComm,
		fmt.Sprintf("flops %.2fx, words %.2fx (N=4, R=2)",
			float64(dimtree.NaiveFlops(dims4, 2))/float64(dt.Flops),
			float64(indepComm)/float64(treeComm)))

	// E15: collectives ablation — via measured comm words of naive vs
	// bucket happens in tests; summarize with the known ratio.
	report("E15", "bucket vs naive collectives (see tests)", true, "bucket = (q-1)w per rank")

	// E16: exact optimal search.
	if *fast {
		report("E16", "exact OPT (skipped: -fast)", true, "")
	} else {
		opt, err := pebble.Optimal(pebble.Instance{Dims: []int{2, 2, 2}, R: 1, N: 0, M: 5}, 20_000_000)
		pp := bounds.Problem{Dims: []int{2, 2, 2}, R: 1}
		report("E16", "lb <= OPT(all executions) <= alg2",
			err == nil && float64(opt) >= bounds.SeqBest(pp, 5),
			fmt.Sprintf("OPT=%d lb=%.0f", opt, bounds.SeqBest(pp, 5)))
	}

	// E17: Tucker.
	tm, _, err := tucker.Decompose(lowrank, tucker.Options{Ranks: []int{2, 2, 2}, MaxIters: 5})
	report("E17", "Tucker/HOOI fits low-rank data", err == nil && tm.Fit > 0.99,
		fmt.Sprintf("fit=%.4f", tm.Fit))

	// E18: all-modes sharing.
	am, err := par.AllModesStationary(x, fs, shape)
	var indep int64
	for n := 0; n < 3; n++ {
		r, e := par.Stationary(x, fs, n, shape)
		if e != nil {
			err = e
			break
		}
		indep += r.MaxWords()
	}
	report("E18", "shared gathers beat independent runs",
		err == nil && am.MaxWords() < indep,
		fmt.Sprintf("shared=%d independent=%d", am.MaxWords(), indep))

	// E19: sparse. Both local engines run the same engine-independent
	// communication schedule, so each must measure exactly the metric.
	sp := sparse.RandomBlocky(21, 8, 60, 5, 24, 24, 24)
	spf := tensor.RandomFactors(22, []int{24, 24, 24}, 4)
	blockPart := sparse.BlockPartition(sp, 8)
	randPart := sparse.RandomPartition(sp, 8, 23)
	rb, err := sparse.ParallelMTTKRPEngine(sp, spf, 0, blockPart, sparse.EngineCSF)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rbCOO, err := sparse.ParallelMTTKRPEngine(sp, spf, 0, blockPart, sparse.EngineCOO)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	vol := sparse.CommVolume(sp, blockPart, 0, 4)
	report("E19", "sparse: measured = (lambda-1) metric for both engines; structure pays",
		rb.TotalSent() == vol && rbCOO.TotalSent() == vol &&
			rb.B.MaxAbsDiff(rbCOO.B) < 1e-10 &&
			vol < sparse.CommVolume(sp, randPart, 0, 4),
		fmt.Sprintf("csf=%d coo=%d block=%d random=%d",
			rb.TotalSent(), rbCOO.TotalSent(), vol, sparse.CommVolume(sp, randPart, 0, 4)))

	// E20: Morton.
	lruM := cachesim.Simulate(128, func(e func(trace.Access)) { trace.Morton(lay, 0, e) })
	report("E20", "Morton ordering near tuned blocked",
		float64(lruM.Words()) < 2.5*float64(lruB.Words()),
		fmt.Sprintf("morton=%d blocked=%d", lruM.Words(), lruB.Words()))

	fmt.Println()
	if failures > 0 {
		fmt.Printf("%d check(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("all checks passed — see EXPERIMENTS.md for the full record")
}
