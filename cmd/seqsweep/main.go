// Command seqsweep runs the sequential experiment behind Theorem 6.1:
// it executes Algorithms 1 and 2 and the via-matmul baseline on the
// instrumented two-level memory machine across a sweep of fast-memory
// sizes M, and prints measured loads+stores next to the lower bounds
// (Theorem 4.1 and Fact 4.1) and the Eq. (12) upper bound. The ratio
// column demonstrates constant-factor optimality of the blocked
// algorithm.
//
// Usage:
//
//	seqsweep [-side 16] [-n 3] [-r 8] [-mode 0] [-mexps 6,7,8,9,10] [-compare]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bounds"
	"repro/internal/memsim"
	"repro/internal/seq"
	"repro/internal/workload"
)

func main() {
	side := flag.Int("side", 16, "tensor dimension per mode")
	nModes := flag.Int("n", 3, "tensor order N")
	r := flag.Int("r", 8, "rank R")
	mode := flag.Int("mode", 0, "MTTKRP mode")
	mexps := flag.String("mexps", "6,7,8,9,10,11,12", "fast memory sizes as powers of two")
	compare := flag.Bool("compare", false, "also sweep R to show the Section VI-A regime change vs via-matmul")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	inst, err := workload.Generate(workload.Cubical(*nModes, *side, *r, *seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqsweep:", err)
		os.Exit(2)
	}
	prob := bounds.Problem{Dims: inst.Spec.Dims, R: *r}

	fmt.Printf("Sequential sweep: N=%d, dims=%v, R=%d, mode=%d (E3: Theorem 6.1)\n\n",
		*nModes, inst.Spec.Dims, *r, *mode)
	fmt.Printf("%-8s %-7s %-12s %-12s %-12s %-12s %-12s %-8s\n",
		"M", "block", "W(alg1)", "W(alg2)", "W(matmul)", "lower", "upper(12)", "ub/meas")

	for _, part := range strings.Split(*mexps, ",") {
		e, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || e < 2 || e > 30 {
			fmt.Fprintf(os.Stderr, "seqsweep: bad memory exponent %q\n", part)
			os.Exit(2)
		}
		M := int64(1) << e

		w1 := runOrDash(func() (int64, error) {
			res, err := seq.Unblocked(inst.X, inst.Factors, *mode, memsim.New(M))
			if err != nil {
				return 0, err
			}
			return res.Counts.Words(), nil
		})
		b, berr := seq.ChooseBlock(M, *nModes, 0.9)
		w2 := runOrDash(func() (int64, error) {
			if berr != nil {
				return 0, berr
			}
			res, err := seq.Blocked(inst.X, inst.Factors, *mode, b, memsim.New(M))
			if err != nil {
				return 0, err
			}
			return res.Counts.Words(), nil
		})
		wm := runOrDash(func() (int64, error) {
			res, err := seq.ViaMatmul(inst.X, inst.Factors, *mode, memsim.New(M))
			if err != nil {
				return 0, err
			}
			return res.Counts.Words(), nil
		})

		lower := bounds.SeqBest(prob, float64(M))
		upper := "-"
		ratio := "-"
		if berr == nil {
			ub := seq.UpperBlocked(inst.Spec.Dims, *r, b)
			upper = fmt.Sprintf("%d", ub)
			if w2 != "-" {
				meas, _ := strconv.ParseInt(w2, 10, 64)
				ratio = fmt.Sprintf("%.2f", float64(ub)/float64(meas))
			}
		}
		fmt.Printf("%-8d %-7d %-12s %-12s %-12s %-12.4g %-12s %-8s\n",
			M, b, w1, w2, wm, lower, upper, ratio)
	}

	if *compare {
		fmt.Printf("\nSection VI-A comparison (E4): sweep R at fixed M, blocked vs via-matmul\n")
		M := int64(1) << 9
		fmt.Printf("M = %d words\n", M)
		fmt.Printf("%-6s %-12s %-12s %-10s %s\n", "R", "W(alg2)", "W(matmul)", "ratio", "regime")
		for _, rr := range []int{1, 2, 4, 8, 16, 32, 64} {
			wl, err := workload.Generate(workload.Cubical(*nModes, *side, rr, *seed))
			if err != nil {
				fmt.Fprintln(os.Stderr, "seqsweep:", err)
				os.Exit(2)
			}
			b, err := seq.ChooseBlock(M, *nModes, 0.9)
			if err != nil {
				fmt.Fprintln(os.Stderr, "seqsweep:", err)
				os.Exit(2)
			}
			r2, err := seq.Blocked(wl.X, wl.Factors, *mode, b, memsim.New(M))
			if err != nil {
				fmt.Fprintln(os.Stderr, "seqsweep:", err)
				os.Exit(2)
			}
			rm, err := seq.ViaMatmul(wl.X, wl.Factors, *mode, memsim.New(M))
			if err != nil {
				fmt.Fprintln(os.Stderr, "seqsweep:", err)
				os.Exit(2)
			}
			regime := "tensor-dominated"
			if float64(*nModes*rr) > float64(M) {
				regime = "factor-dominated"
			}
			fmt.Printf("%-6d %-12d %-12d %-10.3f %s\n",
				rr, r2.Counts.Words(), rm.Counts.Words(),
				float64(rm.Counts.Words())/float64(r2.Counts.Words()), regime)
		}
	}
}

func runOrDash(f func() (int64, error)) string {
	v, err := f()
	if err != nil {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}
