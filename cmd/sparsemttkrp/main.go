// Command sparsemttkrp demonstrates the sparse-MTTKRP extension the
// paper's conclusion points to: with sparse tensors, communication is
// governed by the nonzero structure, quantified by the hypergraph
// (lambda-1) connectivity of the nonzero partition. The command builds
// a structured (blocky) and an unstructured random sparse tensor, runs
// the owner-computes expand/fold parallel MTTKRP under block and
// random partitions, and shows measured words = metric for each.
//
// Usage:
//
//	sparsemttkrp [-side 24] [-nnz 480] [-r 4] [-p 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sparse"
	"repro/internal/tensor"
)

func main() {
	side := flag.Int("side", 24, "tensor dimension per mode (3-way)")
	nnz := flag.Int("nnz", 480, "nonzero count")
	r := flag.Int("r", 4, "rank R")
	p := flag.Int("p", 8, "parts / processors")
	seed := flag.Int64("seed", 21, "seed")
	flag.Parse()

	dims := []int{*side, *side, *side}
	fs := tensor.RandomFactors(*seed+1, dims, *r)

	blocks := 8
	perBlock := *nnz / blocks
	tensors := []struct {
		name string
		s    *sparse.COO
	}{
		{"blocky", sparse.RandomBlocky(*seed, blocks, perBlock, 5, dims...)},
		{"uniform", sparse.Random(*seed, *nnz, dims...)},
	}

	fmt.Printf("Sparse MTTKRP (E19): dims=%v R=%d P=%d\n", dims, *r, *p)
	fmt.Printf("%-9s %-10s %-8s %-14s %-14s %-10s\n",
		"tensor", "partition", "nnz", "volume(metric)", "words(meas.)", "max load")
	for _, tc := range tensors {
		for _, pc := range []struct {
			name string
			part sparse.Partition
		}{
			{"block", sparse.BlockPartition(tc.s, *p)},
			{"random", sparse.RandomPartition(tc.s, *p, *seed+2)},
		} {
			vol := sparse.CommVolume(tc.s, pc.part, 0, *r)
			res, err := sparse.ParallelMTTKRP(tc.s, fs, 0, pc.part)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sparsemttkrp:", err)
				os.Exit(1)
			}
			fmt.Printf("%-9s %-10s %-8d %-14d %-14d %-10d\n",
				tc.name, pc.name, tc.s.NNZ(), vol, res.TotalSent(), sparse.MaxPartLoad(pc.part))
		}
	}
	fmt.Println("\nMeasured words equal the hypergraph (lambda-1) metric by construction;")
	fmt.Println("structure-aware partitions cut communication on structured tensors,")
	fmt.Println("which is why the sparse case leads to hypergraph partitioning [15], [23].")
}
