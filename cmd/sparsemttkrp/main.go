// Command sparsemttkrp demonstrates the sparse-MTTKRP extension the
// paper's conclusion points to: with sparse tensors, communication is
// governed by the nonzero structure, quantified by the hypergraph
// (lambda-1) connectivity of the nonzero partition. The command first
// races the two local engines sequentially (naive COO loop vs the CSF
// fiber-tree kernel), then builds a structured (blocky) and an
// unstructured random sparse tensor, runs the owner-computes
// expand/fold parallel MTTKRP under block and random partitions with
// the selected engine, and checks — not just prints — that the
// simnet-measured words AND the obs-measured comm words both equal the
// metric. Any mismatch makes the command exit nonzero, turning E19's
// printed comparison into a checked invariant.
//
// Usage:
//
//	sparsemttkrp [-side 24] [-nnz 480] [-r 4] [-p 8]
//	             [-engine csf|coo] [-workers 0] [-obs] [-obs-json -]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/plan"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

func main() {
	side := flag.Int("side", 24, "tensor dimension per mode (3-way)")
	nnz := flag.Int("nnz", 480, "nonzero count")
	r := flag.Int("r", 4, "rank R")
	p := flag.Int("p", 8, "parts / processors")
	seed := flag.Int64("seed", 21, "seed")
	engineFlag := flag.String("engine", "auto", "parallel local engine: auto (cost-model planner) | csf | coo")
	workers := flag.Int("workers", 0, "CSF kernel workers in the sequential race (0 = GOMAXPROCS)")
	dtype := flag.String("dtype", "f64", "value/factor storage precision: f64 | f32 (accumulation stays float64)")
	obsFlag := flag.Bool("obs", false, "print the instrumented observability report")
	obsJSON := flag.String("obs-json", "", "write the observability report as JSON to this path (- for stdout)")
	traceOut := flag.String("trace", "", "write a flight-recorder Chrome trace (JSON) to this path")
	flag.Parse()

	dims := []int{*side, *side, *side}

	// -trace starts before the planner runs so the trace carries the
	// plan instant; the expand/fold runs get one process row per part.
	if *traceOut != "" {
		flush := flight.StartTrace(*traceOut, *p)
		defer func() {
			if err := flush(); err != nil {
				fmt.Fprintln(os.Stderr, "sparsemttkrp:", err)
				os.Exit(2)
			}
		}()
	}

	// -engine auto routes the local-engine pick through the cost-model
	// planner: csf vs coo decided from the nonzero count and rank, the
	// CSF chunk tunable applied from the plan.
	engineName := *engineFlag
	var choice plan.Choice
	planned := false
	if engineName == "auto" {
		prob := plan.Problem{Dims: dims, R: *r, Mode: 0, NNZ: int64(*nnz), MaxWorkers: *workers}
		if *dtype == "f32" {
			prob.DType = plan.F32
		}
		var err error
		choice, _, err = plan.Auto(prob)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sparsemttkrp:", err)
			os.Exit(2)
		}
		choice.Apply()
		engineName = choice.Engine
		planned = true
	}
	engine, err := sparse.ParseEngine(engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sparsemttkrp:", err)
		os.Exit(2)
	}
	fs := tensor.RandomFactors(*seed+1, dims, *r)

	blocks := 8
	perBlock := *nnz / blocks
	tensors := []struct {
		name string
		s    *sparse.COO
	}{
		{"blocky", sparse.RandomBlocky(*seed, blocks, perBlock, 5, dims...)},
		{"uniform", sparse.Random(*seed, *nnz, dims...)},
	}

	// Sequential head-to-head: same tensor, same factors, COO loop vs
	// CSF fiber tree. Both must agree; the CSF build amortizes across
	// the per-mode passes of a real CP-ALS sweep, so it is timed
	// separately.
	uni := tensors[1].s
	t0 := time.Now()
	bCOO := sparse.MTTKRP(uni, fs, 0)
	cooDur := time.Since(t0)
	t0 = time.Now()
	csf := sparse.FromCOO(uni, 0)
	buildDur := time.Since(t0)
	var bCSF *tensor.Matrix
	var csfDur time.Duration
	var tol float64
	switch *dtype {
	case "f64":
		t0 = time.Now()
		bCSF = csf.MTTKRPWorkers(fs, 0, *workers)
		csfDur = time.Since(t0)
		tol = 1e-9
	case "f32":
		// Narrow the value stream and factors to float32 storage; the
		// accumulation stays float64, so the only drift vs the COO loop
		// on unrounded inputs is the per-element input rounding.
		csf.EnableF32Values()
		fs32 := make([]*tensor.Matrix32, len(fs))
		for k, f := range fs {
			fs32[k] = tensor.Matrix32FromMatrix(f)
		}
		t0 = time.Now()
		b32 := csf.MTTKRP32(fs32, 0)
		csfDur = time.Since(t0)
		bCSF = b32.ToMatrix()
		tol = 1e-3
	default:
		fmt.Fprintf(os.Stderr, "sparsemttkrp: unknown dtype %q (want f64 or f32)\n", *dtype)
		os.Exit(2)
	}
	fmt.Printf("Sparse MTTKRP (E19/E25): dims=%v R=%d P=%d engine=%v dtype=%s\n", dims, *r, *p, engine, *dtype)
	if planned {
		fmt.Printf("plan: engine=%s chunks=%d predicted=%v\n",
			choice.Engine, choice.Chunks, time.Duration(choice.Predicted.Seconds*1e9))
	}
	fmt.Printf("sequential mode-0, nnz=%d: coo=%v csf=%v (build %v), max |diff| = %.3g\n\n",
		uni.NNZ(), cooDur, csfDur, buildDur, bCSF.MaxAbsDiff(bCOO))
	if d := bCSF.MaxAbsDiff(bCOO); d > tol {
		fmt.Fprintf(os.Stderr, "sparsemttkrp: engines disagree sequentially by %g\n", d)
		os.Exit(1)
	}

	col := obs.New(*p)
	obs.Enable(col)
	defer obs.Disable()

	var rep *obs.Report
	failures := 0
	fmt.Printf("%-9s %-10s %-8s %-14s %-13s %-13s %-10s\n",
		"tensor", "partition", "nnz", "volume(metric)", "simnet(meas)", "obs(meas)", "max load")
	for _, tc := range tensors {
		for _, pc := range []struct {
			name string
			part sparse.Partition
		}{
			{"block", sparse.BlockPartition(tc.s, *p)},
			{"random", sparse.RandomPartition(tc.s, *p, *seed+2)},
		} {
			col.Reset()
			vol := sparse.CommVolume(tc.s, pc.part, 0, *r)
			res, err := sparse.ParallelMTTKRPEngine(tc.s, fs, 0, pc.part, engine)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sparsemttkrp:", err)
				os.Exit(1)
			}
			tot := col.Totals()
			fmt.Printf("%-9s %-10s %-8d %-14d %-13d %-13d %-10d\n",
				tc.name, pc.name, tc.s.NNZ(), vol, res.TotalSent(), tot.CommSent, sparse.MaxPartLoad(pc.part))
			if res.TotalSent() != vol {
				fmt.Fprintf(os.Stderr, "sparsemttkrp: %s/%s: simnet measured %d words, metric %d\n",
					tc.name, pc.name, res.TotalSent(), vol)
				failures++
			}
			if tot.CommSent != vol || tot.CommRecv != vol {
				fmt.Fprintf(os.Stderr, "sparsemttkrp: %s/%s: obs measured sent=%d recv=%d, metric %d\n",
					tc.name, pc.name, tot.CommSent, tot.CommRecv, vol)
				failures++
			}
			if tc.name == "uniform" && pc.name == "block" {
				rep = obs.NewReport("sparsemttkrp", engine.String(), dims, *r, 0, obs.Machine{P: *p})
				if *dtype == "f32" {
					rep.WordBytes = 4
				}
				rep.SetMeasuredWords(res.TotalSent())
				rep.FillFromCollector(col)
				rep.JoinBound("hypergraph-lambda1", float64(vol))
				if planned {
					rep.Plan = choice.PlanInfo()
				}
			}
		}
	}
	fmt.Println("\nMeasured words (simulated network and obs counters alike) equal the")
	fmt.Println("hypergraph (lambda-1) metric; structure-aware partitions cut communication")
	fmt.Println("on structured tensors, which is why the sparse case leads to hypergraph")
	fmt.Println("partitioning [15], [23].")

	if *obsFlag && rep != nil {
		fmt.Println()
		rep.Format(os.Stdout)
	}
	if *obsJSON != "" && rep != nil {
		w := os.Stdout
		if *obsJSON != "-" {
			f, err := os.Create(*obsJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sparsemttkrp:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "sparsemttkrp:", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "sparsemttkrp: %d measured-vs-metric mismatch(es)\n", failures)
		os.Exit(1)
	}
}
