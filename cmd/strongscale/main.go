// Command strongscale runs the parallel experiment behind Theorem 6.2
// on the simulated distributed-memory machine: Algorithms 3 and 4 and
// the 1D matmul baseline across a sweep of processor counts, printing
// the measured per-processor words (sends+receives) next to the
// memory-independent lower bounds (Theorems 4.2 and 4.3). It is the
// small-scale, fully-measured companion of the model-scale Figure 4.
//
// Usage:
//
//	strongscale [-side 16] [-n 3] [-r 8] [-mode 0] [-pexps 0,1,2,3,4,5,6]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bounds"
	"repro/internal/costmodel"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/par"
	"repro/internal/workload"
)

func main() {
	side := flag.Int("side", 16, "tensor dimension per mode")
	nModes := flag.Int("n", 3, "tensor order N")
	r := flag.Int("r", 8, "rank R")
	mode := flag.Int("mode", 0, "MTTKRP mode")
	pexps := flag.String("pexps", "0,1,2,3,4,5,6", "processor counts as powers of two")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	inst, err := workload.Generate(workload.Cubical(*nModes, *side, *r, *seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "strongscale:", err)
		os.Exit(2)
	}
	dims := inst.Spec.Dims
	prob := bounds.Problem{Dims: dims, R: *r}

	fmt.Printf("Strong scaling (measured on the simulator): N=%d, dims=%v, R=%d, mode=%d (E5: Theorem 6.2)\n",
		*nModes, dims, *r, *mode)
	fmt.Println("words = max over processors of sends+receives; model = 2x Eq.(14)/(18) sends")
	fmt.Printf("\n%-6s %-14s %-10s %-14s %-10s %-14s %-12s %-12s %-16s %s\n",
		"P", "W(alg3)", "model3", "W(alg4)", "model4", "W(matmul1d)", "lb(4.2)", "lb(4.3)", "alg3 grid", "alg4 grid")

	for _, part := range strings.Split(*pexps, ",") {
		e, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || e < 0 || e > 20 {
			fmt.Fprintf(os.Stderr, "strongscale: bad processor exponent %q\n", part)
			os.Exit(2)
		}
		P := 1 << e

		shape3, err := costmodel.BestStationaryExact(dims, *r, P)
		w3, m3, grid3 := "-", "-", "-"
		if err == nil {
			res, err := par.Stationary(inst.X, inst.Factors, *mode, shape3)
			if err != nil {
				fmt.Fprintln(os.Stderr, "strongscale: alg3:", err)
				os.Exit(1)
			}
			w3 = fmt.Sprintf("%d", res.MaxWords())
			m3 = fmt.Sprintf("%d", 2*exactAlg3Sends(dims, *r, shape3))
			grid3 = fmt.Sprintf("%v", shape3)
		}

		shape4, err := costmodel.BestGeneralExact(dims, *r, P)
		w4, m4, grid4 := "-", "-", "-"
		if err == nil {
			res, err := par.General(inst.X, inst.Factors, *mode, shape4)
			if err != nil {
				fmt.Fprintln(os.Stderr, "strongscale: alg4:", err)
				os.Exit(1)
			}
			w4 = fmt.Sprintf("%d", res.MaxWords())
			m4 = fmt.Sprintf("%d", 2*exactAlg4Sends(dims, *r, shape4))
			grid4 = fmt.Sprintf("%v", shape4)
		}

		wm := "-"
		if resM, err := par.ViaMatmul1D(inst.X, inst.Factors, *mode, P); err == nil {
			wm = fmt.Sprintf("%d", resM.MaxWords())
		}

		lb1 := bounds.ParMemIndependent1(prob, float64(P), 1, 1)
		lb2 := bounds.ParMemIndependent2(prob, float64(P), 1, 1)
		fmt.Printf("%-6d %-14s %-10s %-14s %-10s %-14s %-12.4g %-12.4g %-16s %s\n",
			P, w3, m3, w4, m4, wm, lb1, lb2, grid3, grid4)
	}
	fmt.Println("\n(- means no feasible grid/partition at that P for these dimensions)")
}

// exactAlg3Sends evaluates the ceiling-aware Eq. (14) per-processor
// send count for a grid shape.
func exactAlg3Sends(dims []int, R int, shape []int) int64 {
	g := grid.New(shape...)
	lay := dist.NewStationary(dims, R, g)
	var w int64
	for k := range dims {
		q := int64(g.P() / g.Extent(k))
		w += (q - 1) * lay.MaxFactorNnz(k)
	}
	return w
}

// exactAlg4Sends evaluates the ceiling-aware Eq. (18) per-processor
// send count.
func exactAlg4Sends(dims []int, R int, shape []int) int64 {
	g := grid.New(shape...)
	lay := dist.NewGeneral(dims, R, g)
	p0 := int64(g.Extent(0))
	w := (p0 - 1) * lay.MaxTensorNnz()
	for k := range dims {
		q := int64(g.P()) / (p0 * int64(g.Extent(k+1)))
		w += (q - 1) * lay.MaxFactorNnz(k)
	}
	return w
}
