// Command tracecheck validates a flight-recorder Chrome trace export
// against the trace-event schema the repository emits: known phases
// only, required keys present, every Send flow paired with exactly one
// Recv flow arriving no earlier than it left. On success it prints a
// one-screen summary (event counts, per-rank comm words); on any
// schema violation it reports the failure and exits nonzero, so CI can
// gate on "the trace a command just wrote is well formed".
//
// Usage:
//
//	mttkrp -algo stationary -p 8 -trace run.json && tracecheck run.json
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/obs/flight"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(2)
	}
	sum, err := flight.Validate(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}

	fmt.Printf("%s: valid Chrome trace\n", path)
	fmt.Printf("  events    = %d (%d metadata, %d spans, %d instants)\n",
		sum.Events, sum.Metadata, sum.Spans, sum.Instants)
	fmt.Printf("  flows     = %d (all Send→Recv pairs matched)\n", sum.Flows)
	if len(sum.SendEvents) > 0 {
		pids := make([]int, 0, len(sum.SendEvents))
		for pid := range sum.SendEvents {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		fmt.Printf("  comm per rank:\n")
		for _, pid := range pids {
			fmt.Printf("    rank %3d: %d sends / %d words out, %d recvs / %d words in\n",
				pid, sum.SendEvents[pid], sum.SendWords[pid],
				sum.RecvEvents[pid], sum.RecvWords[pid])
		}
		fmt.Printf("  total send words = %d\n", sum.TotalSendWords())
	}
}
