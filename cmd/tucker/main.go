// Command tucker computes a Tucker decomposition of a synthetic
// low-multilinear-rank tensor with HOSVD + HOOI, sequentially or on
// the simulated distributed machine, reporting fit per sweep and the
// communication breakdown (factor gathers vs projection reduces) — the
// Tucker-side extension of the paper's MTTKRP communication analysis.
//
// Usage:
//
//	tucker -dims 16,16,16 -ranks 3,3,3 [-grid 2,2,2] [-iters 10]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/plan"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

func main() {
	dimsFlag := flag.String("dims", "16,16,16", "tensor dimensions")
	ranksFlag := flag.String("ranks", "3,3,3", "multilinear ranks")
	engine := flag.String("engine", "auto", "engine selection: auto (cost-model planner picks the TTM chain engine, workers, and GEMM blocks) | default")
	gridFlag := flag.String("grid", "", "processor grid; empty = sequential")
	iters := flag.Int("iters", 10, "HOOI sweeps")
	noise := flag.Float64("noise", 0.01, "noise half-width")
	seed := flag.Int64("seed", 5, "seed")
	obsFlag := flag.Bool("obs", false, "print the instrumented observability report")
	obsJSON := flag.String("obs-json", "", "write the observability report as JSON to this path (- for stdout)")
	traceOut := flag.String("trace", "", "write a flight-recorder Chrome trace (JSON) to this path")
	flag.Parse()

	dims, err := parseInts(*dimsFlag)
	if err != nil {
		fatal(err)
	}
	ranks, err := parseInts(*ranksFlag)
	if err != nil {
		fatal(err)
	}
	if len(ranks) != len(dims) {
		fatal(fmt.Errorf("need one rank per mode"))
	}

	// -trace starts before the planner runs so the trace carries the
	// plan instant; parallel HOOI gets one process row per rank.
	if *traceOut != "" {
		procs := 0
		if *gridFlag != "" {
			shape, err := parseInts(*gridFlag)
			if err != nil {
				fatal(err)
			}
			procs = 1
			for _, s := range shape {
				procs *= s
			}
		}
		flush := flight.StartTrace(*traceOut, procs)
		defer func() {
			if err := flush(); err != nil {
				fatal(err)
			}
		}()
	}

	// HOOI's hot loop is the TTM projection chains and mode Grams of
	// internal/ttm. With -engine auto (the default) the calibrated
	// planner plans the Tucker workload as a TTM-chain problem: the
	// registry routes it to the chain engine, the worker count comes
	// from the cost model, and the GEMM panel blocks are sized for the
	// chain's dominant (first greedy) contraction. The tunables depend
	// only on the shape and the cached calibration, never on the worker
	// count.
	var planInfo *obs.PlanInfo
	workers := 0
	switch *engine {
	case "auto":
		maxRank := 0
		for _, r := range ranks {
			if r > maxRank {
				maxRank = r
			}
		}
		prob := plan.Problem{Dims: dims, R: maxRank, Mode: plan.AllModes,
			Ranks: ranks, Reuses: *iters * (len(dims) + 1)}
		choice, _, err := plan.Auto(prob)
		if err != nil {
			fatal(err)
		}
		choice.Apply()
		planInfo = choice.PlanInfo()
		workers = choice.Workers
		fmt.Printf("plan: engine=%s workers=%d gemm blocks kc=%d mc=%d\n",
			choice.Engine, choice.Workers, choice.GemmKC, choice.GemmMC)
	case "default":
		// keep the package block sizes and worker default
	default:
		fatal(fmt.Errorf("unknown -engine %q (want auto or default)", *engine))
	}

	// Synthetic data: random core expanded by orthonormal factors,
	// plus noise.
	factors, err := tucker.InitFactors(dims, ranks, *seed)
	if err != nil {
		fatal(err)
	}
	core := tensor.RandomDense(*seed+1, ranks...)
	x := &tucker.Model{Core: core, Factors: factors}
	data := x.Reconstruct()
	tensor.AddNoise(data, *seed+2, *noise)

	var col *obs.Collector
	if *obsFlag || *obsJSON != "" {
		col = obs.New(0)
		obs.Enable(col)
		defer obs.Disable()
	}
	report := func(algo string, mach obs.Machine, custom func(*obs.Report)) {
		if col == nil {
			return
		}
		// Rank reported as the largest multilinear rank; mode -1 marks
		// an all-modes sweep.
		maxRank := 0
		for _, r := range ranks {
			if r > maxRank {
				maxRank = r
			}
		}
		rep := obs.NewReport("tucker", algo, dims, maxRank, -1, mach)
		rep.Plan = planInfo
		if custom != nil {
			custom(rep)
		}
		rep.FillFromCollector(col)
		emitReport(rep, *obsFlag, *obsJSON)
	}

	if *gridFlag == "" {
		model, trace, err := tucker.Decompose(data, tucker.Options{Ranks: ranks, MaxIters: *iters, Tol: 0, Workers: workers})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sequential HOOI: dims=%v ranks=%v\n", dims, ranks)
		for _, e := range trace {
			fmt.Printf("  sweep %d: fit %.8f\n", e.Iter, e.Fit)
		}
		fmt.Printf("final fit %.8f\n", model.Fit)
		report("hooi", obs.Machine{Workers: workers}, nil)
		return
	}

	shape, err := parseInts(*gridFlag)
	if err != nil {
		fatal(err)
	}
	res, err := tucker.DecomposeParallel(data, shape, tucker.Options{Ranks: ranks, MaxIters: *iters, Tol: 0}, *seed+3)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parallel HOOI: dims=%v ranks=%v grid=%v\n", dims, ranks, shape)
	for _, e := range res.Trace {
		fmt.Printf("  sweep %d: fit %.8f\n", e.Iter, e.Fit)
	}
	fmt.Printf("final fit %.8f\n", res.Model.Fit)
	fmt.Printf("\ncommunication per processor (max over ranks):\n")
	fmt.Printf("  factor block-row gathers: %d words\n", res.MaxGatherWords())
	fmt.Printf("  projection all-reduces:   %d words\n", res.MaxReduceWords())
	p := 1
	for _, s := range shape {
		p *= s
	}
	// The parallel report's headline figure is the per-processor
	// collective traffic, joined against the Multi-TTM lower bounds
	// (arXiv:2207.10437) for the sweeps the run executed.
	report("hooi-parallel", obs.Machine{P: p}, func(rep *obs.Report) {
		rep.MeasuredWords = res.MaxCommWords()
		rep.JoinMultiTTMBounds(ranks, float64(p), len(res.Trace))
	})
}

// emitReport writes the report per the -obs / -obs-json flags.
func emitReport(rep *obs.Report, human bool, jsonPath string) {
	if human {
		rep.Format(os.Stdout)
	}
	if jsonPath == "" {
		return
	}
	if jsonPath == "-" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tucker:", err)
	os.Exit(2)
}
