package repro_test

// Godoc examples: runnable snippets with verified output, exercising
// the public API exactly as a downstream user would.

import (
	"fmt"

	"repro"
)

// ExampleMTTKRP computes one MTTKRP directly.
func ExampleMTTKRP() {
	dims := []int{4, 4, 4}
	x := repro.RandomDense(1, dims...)
	factors := repro.RandomFactors(2, dims, 3)
	b := repro.MTTKRP(x, factors, 0)
	fmt.Println(b.Rows(), b.Cols())
	// Output: 4 3
}

// ExampleSequentialMTTKRP shows exact load/store accounting on the
// two-level memory model: Algorithm 1 moves exactly I + I*R*(N+1)
// words.
func ExampleSequentialMTTKRP() {
	dims := []int{4, 4, 4} // I = 64
	x := repro.RandomDense(1, dims...)
	factors := repro.RandomFactors(2, dims, 2) // R = 2
	res, err := repro.SequentialMTTKRP(x, factors, 0, repro.SeqOptions{
		Algorithm: repro.SeqUnblocked,
		M:         16,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Counts.Words() == 64+64*2*4)
	// Output: true
}

// ExampleParallelMTTKRP runs Algorithm 3 on eight simulated
// processors and verifies the result against the direct kernel.
func ExampleParallelMTTKRP() {
	dims := []int{8, 8, 8}
	x := repro.RandomDense(3, dims...)
	factors := repro.RandomFactors(4, dims, 4)
	res, err := repro.ParallelMTTKRP(x, factors, 0, repro.ParOptions{
		Algorithm: repro.ParStationary,
		Grid:      []int{2, 2, 2},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.B.EqualApprox(repro.MTTKRP(x, factors, 0), 1e-9))
	fmt.Println(res.MaxWords() > 0)
	// Output:
	// true
	// true
}

// ExampleLowerBounds evaluates the paper's bounds for one parameter
// point.
func ExampleLowerBounds() {
	b := repro.LowerBounds([]int{64, 64, 64}, 16, 4096, 64)
	fmt.Println(b.SeqMemDependent > 0)
	fmt.Println(b.ParIndependent2 > 0)
	// Output:
	// true
	// true
}

// ExampleCPDecompose recovers an exactly low-rank tensor.
func ExampleCPDecompose() {
	dims := []int{6, 6, 6}
	truth := repro.RandomFactors(7, dims, 2)
	x := repro.FromFactors(truth)
	model, _, err := repro.CPDecompose(x, repro.CPOptions{R: 2, MaxIters: 100, Seed: 9})
	if err != nil {
		panic(err)
	}
	fmt.Println(model.Fit > 0.999)
	// Output: true
}

// ExampleMTTKRPAllModes shares partial contractions across all modes.
func ExampleMTTKRPAllModes() {
	dims := []int{4, 4, 4, 4}
	x := repro.RandomDense(11, dims...)
	factors := repro.RandomFactors(12, dims, 2)
	multi := repro.MTTKRPAllModes(x, factors)
	ok := true
	for n := range dims {
		if !multi.B[n].EqualApprox(repro.MTTKRP(x, factors, n), 1e-9) {
			ok = false
		}
	}
	fmt.Println(ok)
	// Output: true
}
