// CP decomposition example: the workload the paper's introduction
// motivates. We build a synthetic rank-4 tensor (a noisy sum of four
// outer products — think "four latent topics" in a sender x receiver x
// time communication dataset), recover its factors with CP-ALS, and
// show that MTTKRP is where a distributed run spends its
// communication.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Ground truth: a 24 x 24 x 24 tensor of exact CP rank 4 plus a
	// little noise.
	dims := []int{24, 24, 24}
	const trueRank = 4
	truth := repro.RandomFactors(11, dims, trueRank)
	x := repro.FromFactors(truth)

	// Sequential CP-ALS.
	model, trace, err := repro.CPDecompose(x, repro.CPOptions{
		R:        trueRank,
		MaxIters: 60,
		Tol:      1e-10,
		Seed:     99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sequential CP-ALS fit trajectory:")
	for _, e := range trace {
		if e.Iter%5 == 0 || e.Iter == len(trace)-1 {
			fmt.Printf("  sweep %2d: fit %.8f\n", e.Iter, e.Fit)
		}
	}
	fmt.Printf("final fit %.8f (1.0 = exact recovery)\n\n", model.Fit)

	// The same decomposition on a simulated 2x2x2 distributed machine:
	// identical mathematics, and we get the communication bill.
	res, err := repro.CPDecomposeParallel(x, []int{2, 2, 2}, repro.CPOptions{
		R:        trueRank,
		MaxIters: 60,
		Tol:      1e-10,
		Seed:     99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel CP-ALS on a 2x2x2 grid: fit %.8f after %d sweeps\n",
		res.Model.Fit, len(res.Trace))
	mt, ot := res.MaxMTTKRPWords(), res.MaxOtherWords()
	fmt.Printf("communication per processor: MTTKRP %d words, everything else %d words\n", mt, ot)
	fmt.Printf("MTTKRP share: %.1f%% — the bottleneck the paper optimizes\n",
		100*float64(mt)/float64(mt+ot))
}
