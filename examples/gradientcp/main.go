// Gradient-based CP fitting: the second optimization family of the
// paper's Section II-A. The gradient with respect to *every* factor
// matrix requires the MTTKRP in every mode with the same factors —
// exactly the multi-MTTKRP setting where a dimension tree shares
// partial contractions instead of making N independent passes over
// the tensor.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	dims := []int{14, 14, 14, 14} // higher order makes the sharing pay more
	const rank = 3
	truth := repro.RandomFactors(21, dims, rank)
	x := repro.FromFactors(truth)

	// One shared dimension-tree pass computes all four MTTKRPs.
	multi := repro.MTTKRPAllModes(x, truth)
	naive := int64(len(dims)) * int64(x.Elems()) * rank * int64(len(dims)+1)
	fmt.Printf("all-modes MTTKRP: %d flops via dimension tree vs %d naive (%.2fx saved)\n",
		multi.Flops, naive, float64(naive)/float64(multi.Flops))
	for n := range dims {
		direct := repro.MTTKRP(x, truth, n)
		if !multi.B[n].EqualApprox(direct, 1e-9) {
			log.Fatalf("mode %d: dimension tree disagrees with direct kernel", n)
		}
	}
	fmt.Println("all modes verified against the direct kernel")

	// Fit by gradient descent; each iteration's gradient costs one
	// tree pass, not N tensor passes. As is standard for CP-OPT, a few
	// ALS sweeps provide the warm start.
	warm, _, err := repro.CPDecompose(x, repro.CPOptions{R: rank, MaxIters: 10, Tol: 0, Seed: 33})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nALS warm start (10 sweeps): fit %.6f\n", warm.Fit)
	model, trace, err := repro.CPDecomposeGradient(x, repro.CPGradOptions{
		R:        rank,
		MaxIters: 150,
		Seed:     33,
		Init:     warm.Factors,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngradient descent with Armijo backtracking:")
	for _, e := range trace {
		if e.Iter%25 == 0 || e.Iter == len(trace)-1 {
			fmt.Printf("  iter %3d  f = %.6e  ||grad|| = %.3e  step = %.3e\n",
				e.Iter, e.Objective, e.GradNorm, e.Step)
		}
	}
	fmt.Printf("final fit: %.6f\n", model.Fit)
}
