// Quickstart: compute an MTTKRP three ways — the plain kernel, the
// communication-optimal blocked sequential algorithm on the two-level
// memory model, and the stationary-tensor parallel algorithm on the
// simulated distributed machine — and see that they agree while
// moving very different numbers of words.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 16 x 16 x 16 dense tensor and rank-8 factor matrices.
	dims := []int{16, 16, 16}
	x := repro.RandomDense(1, dims...)
	factors := repro.RandomFactors(2, dims, 8)
	mode := 0

	// 1. The plain kernel: B(n)(i,r) = sum_i X(i) * prod_k A(k)(i_k,r).
	b := repro.MTTKRP(x, factors, mode)
	fmt.Printf("B(%d) is %d x %d, ||B|| = %.4f\n", mode, b.Rows(), b.Cols(), b.Norm())

	// 2. Algorithm 2 (blocked) on a machine with 512 words of fast
	// memory; every load and store is counted.
	seqRes, err := repro.SequentialMTTKRP(x, factors, mode, repro.SeqOptions{
		Algorithm: repro.SeqBlocked,
		M:         512,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential blocked:  %6d words moved (loads %d + stores %d), peak fast memory %d/%d\n",
		seqRes.Counts.Words(), seqRes.Counts.Loads, seqRes.Counts.Stores, seqRes.Counts.Peak, 512)

	// 3. Algorithm 3 (stationary tensor) across 8 simulated processors;
	// the grid is chosen automatically to minimize Eq. (14).
	parRes, err := repro.ParallelMTTKRP(x, factors, mode, repro.ParOptions{
		Algorithm: repro.ParStationary,
		P:         8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel stationary: %6d words per processor (max sends+receives) on P=8\n",
		parRes.MaxWords())

	// All three agree.
	fmt.Printf("sequential matches kernel: %v\n", seqRes.B.EqualApprox(b, 1e-9))
	fmt.Printf("parallel matches kernel:   %v\n", parRes.B.EqualApprox(b, 1e-9))

	// And the measured communication respects the paper's lower bounds.
	lb := repro.LowerBounds(dims, 8, 512, 8)
	fmt.Printf("lower bounds: seq >= %.0f words, parallel >= %.0f words/proc\n",
		lb.SeqTrivial, lb.ParIndependent2)
}
