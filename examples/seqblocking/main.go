// Sequential blocking example: how the block size of Algorithm 2
// trades fast-memory footprint against data movement, on the
// instrumented two-level memory model. Sweeping b shows the Eq. (11)
// feasibility boundary (b^N + N*b <= M) and the sweet spot near
// b ~ (alpha*M)^(1/N) used in the proof of Theorem 6.1.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	dims := []int{24, 24, 24}
	R := 8
	const M = 1000
	x := repro.RandomDense(5, dims...)
	factors := repro.RandomFactors(6, dims, R)
	ref := repro.MTTKRP(x, factors, 0)

	fmt.Printf("Algorithm 2 block-size sweep: dims %v, R=%d, fast memory M=%d words\n", dims, R, M)
	fmt.Printf("%-4s %-12s %-12s %s\n", "b", "words", "peak", "note")
	for b := 1; b <= 12; b++ {
		res, err := repro.SequentialMTTKRP(x, factors, 0, repro.SeqOptions{
			Algorithm: repro.SeqBlocked,
			M:         M,
			BlockSize: b,
		})
		if err != nil {
			fmt.Printf("%-4d %-12s %-12s %v\n", b, "-", "-", err)
			continue
		}
		if !res.B.EqualApprox(ref, 1e-9) {
			log.Fatalf("b=%d: wrong result", b)
		}
		note := ""
		if b == 1 {
			note = "(equivalent data reuse to Algorithm 1's factor traffic)"
		}
		fmt.Printf("%-4d %-12d %-12d %s\n", b, res.Counts.Words(), res.Counts.Peak, note)
	}

	// The automatic choice.
	auto, err := repro.SequentialMTTKRP(x, factors, 0, repro.SeqOptions{M: M})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nauto-chosen block size moves %d words (vs %d for the unblocked Algorithm 1)\n",
		auto.Counts.Words(), mustUnblocked(x, factors, M))
}

func mustUnblocked(x *repro.Dense, factors []*repro.Matrix, m int64) int64 {
	res, err := repro.SequentialMTTKRP(x, factors, 0, repro.SeqOptions{
		Algorithm: repro.SeqUnblocked,
		M:         m,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.Counts.Words()
}
