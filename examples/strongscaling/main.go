// Strong-scaling example: the measured, small-scale companion of the
// paper's Figure 4. We fix one MTTKRP problem and sweep the simulated
// machine from 1 to 64 processors, comparing the per-processor words
// of the stationary algorithm, the general algorithm, and the
// via-matrix-multiplication baseline. The simulator moves real data,
// so each point is also a correctness check.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	dims := []int{32, 32, 32} // I = 2^15
	R := 4
	x := repro.RandomDense(3, dims...)
	factors := repro.RandomFactors(4, dims, R)
	ref := repro.MTTKRP(x, factors, 0)

	fmt.Println("strong scaling of one MTTKRP (dims 32^3, R=4, mode 0)")
	fmt.Printf("%-4s  %-12s %-12s %-12s\n", "P", "stationary", "general", "via-matmul")
	for _, P := range []int{1, 2, 4, 8, 16, 32, 64} {
		row := fmt.Sprintf("%-4d", P)
		for _, alg := range []repro.ParAlgorithm{repro.ParStationary, repro.ParGeneral, repro.ParViaMatmul} {
			res, err := repro.ParallelMTTKRP(x, factors, 0, repro.ParOptions{Algorithm: alg, P: P})
			if err != nil {
				log.Fatal(err)
			}
			if !res.B.EqualApprox(ref, 1e-9) {
				log.Fatalf("P=%d %v: wrong result", P, alg)
			}
			row += fmt.Sprintf("  %-12d", res.MaxWords())
		}
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("The baseline's cost barely moves with P (its Reduce-Scatter of the")
	fmt.Println("full output is the flat region of Figure 4), while the stationary")
	fmt.Println("algorithm strong-scales; past P ~ N^N it communicates strictly less.")
}
