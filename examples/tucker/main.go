// Tucker decomposition example: the other decomposition family the
// paper names. A noisy tensor with low multilinear rank is compressed
// by HOSVD + HOOI; the core captures almost all the energy at a
// fraction of the storage. The TTM chains inside HOOI are the kernels
// to which the paper's lower-bound machinery extends (Section VII).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Build a 16x16x16 tensor whose true multilinear rank is (3,3,3),
	// then perturb it.
	dims := []int{16, 16, 16}
	ranks := []int{3, 3, 3}
	core := repro.RandomDense(41, ranks...)
	x := core
	for k := range dims {
		// Random factors; orthonormality is not required to *build*
		// the data, only discovered by the decomposition.
		u := repro.RandomFactors(42+int64(k), []int{dims[k]}, ranks[k])[0]
		x = repro.TTM(x, transpose(u), k)
	}

	model, trace, err := repro.TuckerDecompose(x, repro.TuckerOptions{Ranks: ranks})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("HOOI sweeps:")
	for _, e := range trace {
		fmt.Printf("  sweep %d: fit %.10f\n", e.Iter, e.Fit)
	}
	full := dims[0] * dims[1] * dims[2]
	compressed := ranks[0]*ranks[1]*ranks[2] + dims[0]*ranks[0] + dims[1]*ranks[1] + dims[2]*ranks[2]
	fmt.Printf("\nfinal fit %.10f with %d values instead of %d (%.1fx compression)\n",
		model.Fit, compressed, full, float64(full)/float64(compressed))

	rec := model.Reconstruct()
	fmt.Printf("max reconstruction error: %.3e (||X|| = %.2f)\n", rec.MaxAbsDiff(x), x.Norm())
}

// transpose flips an I x R matrix to R x I so TTM contracts the mode
// against the factor's columns (expansion direction).
func transpose(u *repro.Matrix) *repro.Matrix {
	t := repro.NewMatrix(u.Cols(), u.Rows())
	for i := 0; i < u.Rows(); i++ {
		for j := 0; j < u.Cols(); j++ {
			t.Set(j, i, u.At(i, j))
		}
	}
	return t
}
