package repro

// Cross-module integration properties: these tests tie the simulators,
// cost models, grid selection, and bounds together on randomized
// configurations — the invariants a user of the whole library relies
// on, beyond any single package's unit tests.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/costmodel"
	"repro/internal/dimtree"
	"repro/internal/grid"
	"repro/internal/memsim"
	"repro/internal/par"
	"repro/internal/seq"
	"repro/internal/tensor"
)

// The chosen grid is never beaten by any other factorization of the
// same P, measured on the simulator (the exact cost model is faithful).
func TestChosenGridIsMeasuredOptimal(t *testing.T) {
	dims := []int{8, 12, 8}
	R := 6
	P := 8
	x := tensor.RandomDense(201, dims...)
	fs := tensor.RandomFactors(202, dims, R)
	best, err := costmodel.BestStationaryExact(dims, R, P)
	if err != nil {
		t.Fatal(err)
	}
	bestRes, err := par.Stationary(x, fs, 0, best)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range grid.Factorizations(P, 3) {
		ok := true
		for k, s := range shape {
			if s > dims[k] {
				ok = false
			}
		}
		if !ok {
			continue
		}
		res, err := par.Stationary(x, fs, 0, shape)
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if res.MaxSent() < bestRes.MaxSent() {
			t.Fatalf("grid %v (%d sends) beats chosen %v (%d sends)",
				shape, res.MaxSent(), best, bestRes.MaxSent())
		}
	}
}

// Random problems: every sequential algorithm's measured words respect
// the lower bounds, and the blocked algorithm respects Eq. (12).
func TestSequentialInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		N := 2 + rng.Intn(2)
		dims := make([]int, N)
		for i := range dims {
			dims[i] = 3 + rng.Intn(6)
		}
		R := 1 + rng.Intn(5)
		n := rng.Intn(N)
		M := int64(32 << rng.Intn(4))
		prob := bounds.Problem{Dims: dims, R: R}
		x := tensor.RandomDense(seed, dims...)
		fs := tensor.RandomFactors(seed+1, dims, R)
		lb := bounds.SeqBest(prob, float64(M))

		ru, err := seq.Unblocked(x, fs, n, memsim.New(M))
		if err != nil || float64(ru.Counts.Words()) < lb {
			return false
		}
		b, err := seq.ChooseBlock(M, N, 0.9)
		if err != nil {
			return false
		}
		rb, err := seq.Blocked(x, fs, n, b, memsim.New(M))
		if err != nil || float64(rb.Counts.Words()) < lb {
			return false
		}
		if rb.Counts.Words() > seq.UpperBlocked(dims, R, b) {
			return false
		}
		if rb.Counts.Peak > M {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Random parallel problems: Algorithm 4 with its best grid never
// communicates more than Algorithm 3 with its best grid (P0 = 1 is in
// its search space), and both respect the memory-independent bounds.
func TestParallelInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{8, 8, 8}
		R := 2 << rng.Intn(4) // 2..16
		P := 2 << rng.Intn(3) // 2..8
		x := tensor.RandomDense(seed, dims...)
		fs := tensor.RandomFactors(seed+1, dims, R)
		prob := bounds.Problem{Dims: dims, R: R}
		lb := bounds.ParBest(prob, float64(P), 1, 1)

		s3, err := costmodel.BestStationaryExact(dims, R, P)
		if err != nil {
			return false
		}
		r3, err := par.Stationary(x, fs, 0, s3)
		if err != nil {
			return false
		}
		s4, err := costmodel.BestGeneralExact(dims, R, P)
		if err != nil {
			return false
		}
		r4, err := par.General(x, fs, 0, s4)
		if err != nil {
			return false
		}
		if lb > 0 && (float64(r3.MaxWords()) < lb || float64(r4.MaxWords()) < lb) {
			return false
		}
		return r4.MaxSent() <= r3.MaxSent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The full pipeline agrees: direct kernel, multicore kernel, dimension
// tree, instrumented algorithms, and the parallel simulators all
// produce the same B(n) on a shared random problem.
func TestEndToEndAgreement(t *testing.T) {
	dims := []int{6, 8, 4}
	R := 5
	x := tensor.RandomDense(203, dims...)
	fs := tensor.RandomFactors(204, dims, R)
	for n := range dims {
		want := seq.Ref(x, fs, n)
		if got := seq.RefParallel(x, fs, n, 4); !got.EqualApprox(want, 1e-9) {
			t.Fatalf("mode %d: multicore kernel disagrees", n)
		}
		if got := dimtree.AllModes(x, fs).B[n]; !got.EqualApprox(want, 1e-9) {
			t.Fatalf("mode %d: dimension tree disagrees", n)
		}
		seqRes, err := seq.Blocked(x, fs, n, 2, memsim.New(256))
		if err != nil {
			t.Fatal(err)
		}
		if !seqRes.B.EqualApprox(want, 1e-9) {
			t.Fatalf("mode %d: blocked disagrees", n)
		}
		parRes, err := par.Stationary(x, fs, n, []int{2, 2, 2})
		if err != nil {
			t.Fatal(err)
		}
		if !parRes.B.EqualApprox(want, 1e-9) {
			t.Fatalf("mode %d: stationary disagrees", n)
		}
	}
}

// Model-vs-simulator validation across the overlap range: the Alg3
// float cost model (balanced, no ceilings) equals measured sends when
// everything divides evenly.
func TestModelSimulatorAgreementQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := 1 + rng.Intn(2) // grid extent exponent per dim
		side := 8 << rng.Intn(2)
		R := 4 << rng.Intn(2)
		shape := []int{1 << e, 1 << e, 1 << e}
		P := shape[0] * shape[1] * shape[2]
		if P > side {
			return true // skip imbalanced configs
		}
		dims := []int{side, side, side}
		x := tensor.RandomDense(seed, dims...)
		fs := tensor.RandomFactors(seed+1, dims, R)
		res, err := par.Stationary(x, fs, 0, shape)
		if err != nil {
			return false
		}
		m := costmodel.Model{Dims: []float64{float64(side), float64(side), float64(side)}, R: float64(R)}
		want := m.Alg3Words([]float64{float64(shape[0]), float64(shape[1]), float64(shape[2])})
		return float64(res.MaxSent()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
