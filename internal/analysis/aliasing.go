package analysis

// WorkspaceAliasing guards the zero-alloc contract's sharpest edge.
// The engine packages keep grow-only pooled workspaces (sparse's
// Workspace, plan/seq scratch buffers) that are recycled across calls:
// any slice carved out of one is only valid until the workspace is
// released. A pooled slice that is stored to a heap location, returned
// across the pool boundary, or captured by a goroutine that outlives
// the call will silently read data from a LATER pass — a
// use-after-recycle bug no race detector reports, because the memory
// is never freed, only reused.
//
// The analyzer marks every slice expression rooted in a pool type (a
// named struct called Workspace in an engine package, plus the named
// struct types its fields transitively embed), propagates the taint
// through local assignments and module-call arguments (SSA-lite
// def-use + call graph), and classifies escapes with the lattice in
// escape.go. Scope is the hot-path-reachable function set — the same
// blast radius the allocation checker walks — because that is where
// pooled workspaces circulate.
//
// Sanctioned escapes: growing a workspace in place (`ws.buf = ...`) is
// a store back into the pool, not out of it; methods on pool types may
// return their own buffers (the caller borrowed the workspace, the
// slice has the same lifetime); goroutines that provably join before
// the spawner returns only borrow; a //repro:worker-pool directive on
// the spawn sanctions capture by the parked pool that owns the
// workspace anyway.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WorkspaceAliasing is the analyzer; see the file-level description.
type WorkspaceAliasing struct {
	// EnginePackages are the final import-path elements searched for
	// pool types named Workspace.
	EnginePackages []string
}

// Name implements Analyzer.
func (WorkspaceAliasing) Name() string { return "workspace-aliasing" }

// Run implements Analyzer.
func (a WorkspaceAliasing) Run(prog *Program) []Diagnostic {
	pools := poolTypes(prog, a.EnginePackages)
	if len(pools) == 0 {
		return nil
	}
	g := prog.CallGraph()
	scope := g.hotReachable()
	names := make([]string, 0, len(scope))
	for name := range scope {
		if g.funcs[name] != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(pos),
			Analyzer: a.Name(),
			Message:  fmt.Sprintf(format, args...),
		})
	}

	// Interprocedural taint: parameter objects that receive pooled
	// slices at some call site in scope. Grown to fixpoint; diagnostics
	// are only emitted on the final pass so every tainted parameter is
	// known by then.
	taint := make(map[token.Pos]bool)
	for pass := 0; pass < 4; pass++ {
		grew := false
		final := pass == 3
		for _, name := range names {
			fi := g.funcs[name]
			grew = a.checkFunc(prog, g, fi, pools, taint, scope, final, report) || grew
		}
		if !grew && !final {
			// Taint is stable: one reporting pass and done.
			for _, name := range names {
				fi := g.funcs[name]
				a.checkFunc(prog, g, fi, pools, taint, scope, true, report)
			}
			break
		}
	}
	return diags
}

// checkFunc propagates taint through one function and, on the final
// pass, reports escapes. Returns whether the global taint set grew.
func (a WorkspaceAliasing) checkFunc(prog *Program, g *callGraph, fi *funcInfo, pools map[string]bool, taint map[token.Pos]bool, scope map[string]bool, final bool, report func(token.Pos, string, ...any)) bool {
	info := fi.pkg.Info

	isSlice := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok {
			return false
		}
		_, s := tv.Type.Underlying().(*types.Slice)
		return s
	}
	// local holds objects tainted within this function body.
	local := make(map[token.Pos]bool)
	var marked func(e ast.Expr) bool
	marked = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			return marked(x.X)
		case *ast.IndexExpr:
			return isSlice(e) && marked(x.X)
		case *ast.SelectorExpr:
			return isSlice(e) && pools[namedTypeOf(info, x.X)]
		case *ast.Ident:
			if !isSlice(e) {
				return false
			}
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj != nil && (local[objKey(obj)] || taint[objKey(obj)])
		}
		return false
	}

	// Propagate through local assignments to a (cheap) fixpoint: taint
	// flows forward and bodies are short, so two sweeps settle the
	// straight-line chains and the third confirms.
	for i := 0; i < 3; i++ {
		changed := false
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for j, rhs := range as.Rhs {
				if !marked(rhs) {
					continue
				}
				id, ok := ast.Unparen(as.Lhs[j]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !local[objKey(obj)] {
					local[objKey(obj)] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	grew := false
	for _, site := range escapeSites(fi.decl.Body, info, marked) {
		switch site.kind {
		case escArg:
			// Taint flows into module callees in scope; external and
			// dynamic callees are an analysis horizon (stdlib helpers do
			// not retain engine slices).
			callee := g.funcs[calleeName(prog, site.call, info)]
			if callee == nil {
				continue
			}
			params := paramObjs(callee)
			if site.argIdx < len(params) && params[site.argIdx] != nil {
				k := objKey(params[site.argIdx])
				if !taint[k] {
					taint[k] = true
					grew = true
				}
			}
		case escStored:
			if !final {
				continue
			}
			// Storing back into a pool type is the grow-in-place idiom.
			if dest, ok := ast.Unparen(site.dest).(*ast.SelectorExpr); ok && pools[namedTypeOf(info, dest.X)] {
				continue
			}
			if base := innermostSelector(site.dest); base != nil && pools[namedTypeOf(info, base.X)] {
				continue
			}
			report(site.node.Pos(), "pooled workspace slice stored to a heap location (%s); the pool recycles it and the store becomes a use-after-recycle — copy the data out instead", exprLabel(site.dest))
		case escReturned:
			if !final {
				continue
			}
			// The pool boundary is the exported API: unexported helpers
			// (grow primitives, chunk carvers) circulate slices within
			// the pool scope, and their results flow back into pool
			// fields at the call site.
			if !fi.decl.Name.IsExported() {
				continue
			}
			// Pool-type methods hand out their own buffers by design.
			if rt := recvTypeName(fi); rt != "" && pools[rt] {
				continue
			}
			report(site.node.Pos(), "pooled workspace slice returned past the pool boundary; the backing array is recycled on release — return a copy, or document ownership on the workspace type")
		case escCaptured:
			if !final {
				continue
			}
			gs, ok := site.node.(*ast.GoStmt)
			if !ok {
				continue
			}
			pos := prog.Fset.Position(gs.Pos())
			if prog.Directives.WorkerPool(pos) {
				continue // the parked pool owns the workspace anyway
			}
			if goroutineJoined(prog, g, fi.pkg, fi.decl, gs) {
				continue // the goroutine is over before the frame returns
			}
			report(gs.Pos(), "pooled workspace slice captured by a goroutine with no reachable join; the goroutine can outlive the pool's recycle — join it or mark the pool with //repro:worker-pool")
		}
	}
	return grew
}

// poolTypes collects the qualified names of pooled workspace types:
// named structs called Workspace declared in engine packages, plus the
// module-internal named struct types their fields reference
// (transitively), since a slice reached through an embedded helper
// struct shares the workspace's lifetime.
func poolTypes(prog *Program, enginePkgs []string) map[string]bool {
	engine := make(map[string]bool, len(enginePkgs))
	for _, p := range enginePkgs {
		engine[p] = true
	}
	pools := make(map[string]bool)
	var queue []*types.Named
	for _, pkg := range prog.Pkgs {
		parts := strings.Split(pkg.Path, "/")
		if !engine[parts[len(parts)-1]] {
			continue
		}
		obj := pkg.Types.Scope().Lookup("Workspace")
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			continue
		}
		q := tn.Pkg().Path() + "." + tn.Name()
		if !pools[q] {
			pools[q] = true
			queue = append(queue, named)
		}
	}
	// Transitive closure over field types.
	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			for _, fn := range namedStructsIn(st.Field(i).Type()) {
				if fn.Obj().Pkg() == nil || !strings.HasPrefix(fn.Obj().Pkg().Path(), prog.ModulePath) {
					continue
				}
				q := fn.Obj().Pkg().Path() + "." + fn.Obj().Name()
				if !pools[q] {
					pools[q] = true
					queue = append(queue, fn)
				}
			}
		}
	}
	return pools
}

// namedStructsIn peels containers (slices, arrays, pointers, maps) off
// a field type and returns the named struct types inside.
func namedStructsIn(t types.Type) []*types.Named {
	for {
		switch u := t.(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Pointer:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			if named, ok := t.(*types.Named); ok {
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					return []*types.Named{named}
				}
			}
			return nil
		}
	}
}
