// Package analysis is the repo-specific static-analysis suite behind
// cmd/repolint. It loads and type-checks every package of the module
// with nothing but the standard library (go/parser + go/types; stdlib
// imports are type-checked from source) and runs analyzers that
// enforce the engine invariants the compiler cannot see:
//
//	hotpath-alloc       //repro:hotpath functions and their static
//	                    callees within the module stay allocation-free
//	determinism         engine packages stay run-to-run and
//	                    worker-count reproducible
//	float-eq            no raw float ==/!= outside sanctioned
//	                    //repro:bitwise sites
//	errcheck-lite       no silently discarded error returns
//	goroutine-leak      every go statement reaches a join, or is an
//	                    audited //repro:worker-pool / daemon
//	waitgroup-misuse    Add before spawn and Wait, no WaitGroup copies
//	channel-discipline  sends have receivers, one close, owner closes
//	lock-order          global mutex acquisition order is acyclic and
//	                    every Lock is matched by an Unlock
//	workspace-aliasing  pooled workspace slices never outlive the pool
//	                    (not stored, returned, or captured unjoined)
//
// The concurrency analyzers share an SSA-lite dataflow layer (ssa.go,
// callgraph.go, escape.go): flow-insensitive def-use chains over
// go/types, a module-internal static call graph, and a conservative
// escape lattice. Diagnostics carry file:line:col positions relative
// to the module root and can be suppressed per line or per function
// with //repro:ignore (see directives.go for the full vocabulary).
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position // Filename relative to the load root
	Analyzer string
	Message  string
}

// String formats a diagnostic the way the driver prints it:
// file:line:col: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker run over the whole program.
type Analyzer interface {
	Name() string
	Run(prog *Program) []Diagnostic
}

// Config tunes the suite. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// EnginePackages are the final import-path elements of the
	// packages the determinism analyzer covers.
	EnginePackages []string
	// ErrorAllowlist are qualified-name prefixes of callees whose
	// discarded error returns are tolerated (best-effort writers).
	ErrorAllowlist []string
}

// DefaultConfig returns the configuration repolint ships with.
func DefaultConfig() Config {
	return Config{
		EnginePackages: []string{"kernel", "dimtree", "seq", "par", "cpals", "sparse", "plan", "flight", "ttm", "tucker"},
		ErrorAllowlist: []string{
			"fmt.Print",
			"fmt.Fprint",
			"(*bytes.Buffer).",
			"(*strings.Builder).",
		},
	}
}

// DefaultAnalyzers returns the full suite in reporting order.
func DefaultAnalyzers(cfg Config) []Analyzer {
	return []Analyzer{
		HotpathAlloc{},
		Determinism{EnginePackages: cfg.EnginePackages},
		FloatEq{TestScope: cfg.EnginePackages},
		ErrcheckLite{Allowlist: cfg.ErrorAllowlist},
		GoroutineLeak{},
		WaitGroupMisuse{},
		ChannelDiscipline{},
		LockOrder{},
		WorkspaceAliasing{EnginePackages: cfg.EnginePackages},
	}
}

// RunSuite runs every analyzer, drops diagnostics suppressed by
// //repro:ignore directives, and returns the rest sorted by position.
func RunSuite(prog *Program, analyzers []Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(prog) {
			if prog.Directives.Ignored(d.Pos, d.Analyzer) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}
