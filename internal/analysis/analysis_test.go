package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtureGolden loads the testdata/src fixture tree as a
// stand-alone module ("fix") and compares every analyzer's output,
// per fixture package, against that package's golden.txt. Run with
// REPOLINT_UPDATE=1 to regenerate the goldens.
func TestFixtureGolden(t *testing.T) {
	root := filepath.Join("testdata", "src")
	prog, err := Load(root, "fix")
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	diags := RunSuite(prog, DefaultAnalyzers(DefaultConfig()))

	got := make(map[string][]string) // fixture dir -> diagnostic lines
	for _, d := range diags {
		dir, _, ok := strings.Cut(d.Pos.Filename, "/")
		if !ok {
			t.Fatalf("diagnostic outside a fixture dir: %s", d)
		}
		got[dir] = append(got[dir], d.String())
	}

	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	update := os.Getenv("REPOLINT_UPDATE") != ""
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := e.Name()
		t.Run(dir, func(t *testing.T) {
			goldenPath := filepath.Join(root, dir, "golden.txt")
			gotText := ""
			if len(got[dir]) > 0 {
				gotText = strings.Join(got[dir], "\n") + "\n"
			}
			if update {
				if err := os.WriteFile(goldenPath, []byte(gotText), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with REPOLINT_UPDATE=1): %v", err)
			}
			if gotText != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, gotText, want)
			}
		})
	}
}

// TestSeededViolations spot-checks that the golden corpus really
// covers all four analyzers — the CI gate is only meaningful if a
// seeded violation of each invariant is demonstrably caught.
func TestSeededViolations(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "src"), "fix")
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, d := range RunSuite(prog, DefaultAnalyzers(DefaultConfig())) {
		counts[d.Analyzer]++
	}
	for _, a := range DefaultAnalyzers(DefaultConfig()) {
		if counts[a.Name()] == 0 {
			t.Errorf("analyzer %s caught no seeded violation in the fixtures", a.Name())
		}
	}
}

// TestRealTreeClean runs the full suite over the repository itself:
// the invariants hold on the real tree, so any diagnostic is a
// regression (or a new site needing an audited //repro: annotation).
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	prog, err := Load(root, "")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := RunSuite(prog, DefaultAnalyzers(DefaultConfig()))
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		text string
		verb string
		args []string
		ok   bool
	}{
		{"//repro:hotpath", "hotpath", nil, true},
		{"//repro:bitwise exact-zero guard", "bitwise", nil, true},
		{"//repro:ignore float-eq legacy", "ignore", []string{"float-eq"}, true},
		{"//repro:ignore float-eq,errcheck-lite why", "ignore", []string{"float-eq", "errcheck-lite"}, true},
		{"// repro:ignore float-eq", "", nil, false}, // space: not a directive
		{"// ordinary comment", "", nil, false},
		{"//repro:", "", nil, false},
	}
	for _, c := range cases {
		d, ok := parseDirective(c.text)
		if ok != c.ok {
			t.Errorf("%q: ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if d.verb != c.verb {
			t.Errorf("%q: verb = %q, want %q", c.text, d.verb, c.verb)
		}
		if len(d.args) != len(c.args) {
			t.Errorf("%q: args = %v, want %v", c.text, d.args, c.args)
			continue
		}
		for i := range d.args {
			if d.args[i] != c.args[i] {
				t.Errorf("%q: args = %v, want %v", c.text, d.args, c.args)
			}
		}
	}
}
