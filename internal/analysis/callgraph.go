package analysis

// callgraph.go is the interprocedural half of the SSA-lite layer: a
// static, module-internal call graph over every declared function,
// with the same breadth-first reachability machinery the hotpath-alloc
// walk pioneered. Nodes are qualified names (types.Func.FullName), so
// an edge from a call site in one analysis unit resolves to the callee
// declared in another unit even though their *types.Func objects
// differ — FullName, like objKey, is stable across units.
//
// The graph is deliberately first-order: calls through interfaces and
// local function values are not edges (the hot-path policy is "keep it
// direct", and the concurrency analyzers treat an unresolvable call as
// an analysis horizon, not an error). Calls through //repro:dispatch
// variables are covered by treating every dispatch assignee as a root
// where reachability from hot paths matters.

import (
	"go/ast"
	"go/types"
	"sort"
)

// funcInfo is one declared function: its syntax, the analysis unit it
// was type-checked in, and its object.
type funcInfo struct {
	decl *ast.FuncDecl
	pkg  *Package
	obj  *types.Func
}

// callGraph is the module-internal static call graph.
type callGraph struct {
	prog    *Program
	funcs   map[string]*funcInfo // FullName -> declaration
	callees map[string][]string  // FullName -> sorted unique callee FullNames
}

// CallGraph returns the program's call graph, built on first use and
// shared by every analyzer.
func (p *Program) CallGraph() *callGraph {
	if p.graph == nil {
		p.graph = buildCallGraph(p)
	}
	return p.graph
}

func buildCallGraph(prog *Program) *callGraph {
	g := &callGraph{
		prog:    prog,
		funcs:   make(map[string]*funcInfo),
		callees: make(map[string][]string),
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue // assembly stubs have no body and no outgoing edges
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.funcs[obj.FullName()] = &funcInfo{decl: fd, pkg: pkg, obj: obj}
			}
		}
	}
	for name, fi := range g.funcs {
		g.callees[name] = moduleCallees(prog, fi.decl.Body, fi.pkg.Info)
	}
	return g
}

// moduleCallees lists the qualified names of module functions a body
// statically calls (including inside nested function literals), sorted
// and deduplicated.
func moduleCallees(prog *Program, body *ast.BlockStmt, info *types.Info) []string {
	set := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, ok := calleeObject(call, info).(*types.Func); ok && moduleFunc(prog, obj) {
			set[obj.FullName()] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// reachable runs the BFS: every function reachable from the roots over
// static call edges, roots included.
func (g *callGraph) reachable(roots []string) map[string]bool {
	seen := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if seen[name] {
			continue
		}
		seen[name] = true
		queue = append(queue, g.callees[name]...)
	}
	return seen
}

// hotReachable returns every function reachable from a //repro:hotpath
// root or a //repro:dispatch assignee — the zero-alloc contract's
// blast radius, which is also the scope of the workspace-aliasing
// analyzer.
func (g *callGraph) hotReachable() map[string]bool {
	var roots []string
	for name, fi := range g.funcs {
		if hasVerb(fi.decl.Doc, "hotpath") {
			roots = append(roots, name)
		}
	}
	dispatch := collectDispatchVars(g.prog)
	funcs, lits := collectDispatchAssignments(g.prog, dispatch)
	roots = append(roots, funcs...)
	sort.Strings(roots)
	seen := g.reachable(roots)
	// Dispatch-bound function literals have no FullName; fold their
	// static callees in directly.
	for _, lr := range lits {
		for _, callee := range moduleCallees(g.prog, lr.lit.Body, lr.pkg.Info) {
			if !seen[callee] {
				for k, v := range g.reachable([]string{callee}) {
					if v {
						seen[k] = true
					}
				}
			}
		}
	}
	return seen
}

// calleeName returns the qualified name of a call's static module
// callee, or "" when the callee is dynamic or external.
func calleeName(prog *Program, call *ast.CallExpr, info *types.Info) string {
	if obj, ok := calleeObject(call, info).(*types.Func); ok && moduleFunc(prog, obj) {
		return obj.FullName()
	}
	return ""
}

// paramObjs returns the declared parameter objects of a function in
// positional order (receiver excluded), resolved in the unit that
// declared it.
func paramObjs(fi *funcInfo) []types.Object {
	var out []types.Object
	if fi.decl.Type.Params == nil {
		return out
	}
	for _, f := range fi.decl.Type.Params.List {
		for _, name := range f.Names {
			out = append(out, fi.pkg.Info.Defs[name])
		}
	}
	return out
}

// recvObj returns a method's receiver object, or nil.
func recvObj(fi *funcInfo) types.Object {
	if fi.decl.Recv == nil || len(fi.decl.Recv.List) == 0 || len(fi.decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return fi.pkg.Info.Defs[fi.decl.Recv.List[0].Names[0]]
}
