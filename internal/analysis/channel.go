package analysis

// ChannelDiscipline enforces the ownership rules the engine packages
// follow for channels:
//
//   - a channel someone sends on must have a receiver somewhere in the
//     analyzed graph, or every send blocks forever (a goroutine leak
//     with extra steps);
//   - a channel is closed at most one static site — a second close
//     panics at run time;
//   - only the owner closes: the function that made the channel, or a
//     method of the type holding it as a field. Closing a channel that
//     arrived as a parameter hands the panic to someone else's send.
//
// The pass is built on the SSA-lite aliasing machinery: every channel
// operation (make, send, receive, close, range, select case) is
// indexed by the base object's cross-unit key, and keys are unified
// with union-find across assignments, range bindings, and
// argument-to-parameter edges of module calls. A group that escapes
// the analysis horizon — passed to an external function, returned,
// sent over another channel — is dropped entirely rather than
// half-diagnosed: conservative means silent, not wrong.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChannelDiscipline is the analyzer; see the file-level description.
type ChannelDiscipline struct{}

// Name implements Analyzer.
func (ChannelDiscipline) Name() string { return "channel-discipline" }

// chanEvent is one channel operation.
type chanEvent struct {
	kind string // "make", "send", "recv", "close"
	pos  token.Pos
	fn   *funcInfo // enclosing function
	// close bookkeeping
	baseIsParam bool
	// make bookkeeping: the named type owning the field the channel was
	// stored into ("" for locals).
	fieldOwner string
}

// chanIndex accumulates per-group state over the whole program.
type chanIndex struct {
	prog   *Program
	g      *callGraph
	parent map[token.Pos]token.Pos
	events map[token.Pos][]chanEvent
	escape map[token.Pos]bool
}

func (ci *chanIndex) find(k token.Pos) token.Pos {
	for ci.parent[k] != 0 && ci.parent[k] != k {
		ci.parent[k] = ci.parent[ci.parent[k]] // path halving
		k = ci.parent[k]
	}
	if ci.parent[k] == 0 {
		ci.parent[k] = k
	}
	return k
}

func (ci *chanIndex) union(a, b token.Pos) {
	ra, rb := ci.find(a), ci.find(b)
	if ra != rb {
		if ra > rb {
			ra, rb = rb, ra
		}
		ci.parent[rb] = ra // deterministic: lowest position is the root
	}
}

// Run implements Analyzer.
func (a ChannelDiscipline) Run(prog *Program) []Diagnostic {
	ci := &chanIndex{
		prog:   prog,
		g:      prog.CallGraph(),
		parent: make(map[token.Pos]token.Pos),
		events: make(map[token.Pos][]chanEvent),
		escape: make(map[token.Pos]bool),
	}
	for _, fi := range ci.sortedFuncs() {
		ci.scanFunc(fi)
	}

	// Fold events and escapes into union-find groups.
	groups := make(map[token.Pos][]chanEvent)
	escaped := make(map[token.Pos]bool)
	for k, evs := range ci.events {
		groups[ci.find(k)] = append(groups[ci.find(k)], evs...)
	}
	for k, esc := range ci.escape {
		if esc {
			escaped[ci.find(k)] = true
		}
	}

	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(pos),
			Analyzer: a.Name(),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	roots := make([]token.Pos, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, root := range roots {
		evs := groups[root]
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		var makes, sends, recvs, closes []chanEvent
		for _, e := range evs {
			switch e.kind {
			case "make":
				makes = append(makes, e)
			case "send":
				sends = append(sends, e)
			case "recv":
				recvs = append(recvs, e)
			case "close":
				closes = append(closes, e)
			}
		}

		// Rule 3 applies even to escaped groups: closing a parameter is
		// wrong regardless of what else happens to the channel.
		for _, c := range closes {
			if c.baseIsParam {
				report(c.pos, "close of a channel received as a parameter; only the owner (the maker) closes — signal shutdown another way")
			}
		}
		if escaped[root] || len(makes) == 0 {
			continue // beyond the analysis horizon: no further claims
		}

		// Rule 1: sends with no receiver anywhere in the group.
		if len(sends) > 0 && len(recvs) == 0 {
			for _, s := range sends {
				report(s.pos, "send on a channel with no reachable receiver in the call graph; every send will block forever")
			}
		}

		// Rule 2: more than one static close site.
		if len(closes) > 1 {
			first := prog.Fset.Position(closes[0].pos)
			for _, c := range closes[1:] {
				report(c.pos, "channel closed at more than one site (first close at %s:%d); a second close panics", first.Filename, first.Line)
			}
		}

		// Rule 3b: close outside the owner scope.
		for _, c := range closes {
			if c.baseIsParam || ownerCloses(makes, c) {
				continue
			}
			maker := prog.Fset.Position(makes[0].pos)
			report(c.pos, "channel closed outside its owner (made at %s:%d); move the close to the maker or a method of the owning type", maker.Filename, maker.Line)
		}
	}
	return diags
}

// sortedFuncs returns the call graph's functions in deterministic
// order.
func (ci *chanIndex) sortedFuncs() []*funcInfo {
	names := make([]string, 0, len(ci.g.funcs))
	for name := range ci.g.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*funcInfo, 0, len(names))
	for _, name := range names {
		out = append(out, ci.g.funcs[name])
	}
	return out
}

// scanFunc indexes every channel operation in one function body.
func (ci *chanIndex) scanFunc(fi *funcInfo) {
	info := fi.pkg.Info
	isChan := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok {
			return false
		}
		_, isC := tv.Type.Underlying().(*types.Chan)
		return isC
	}
	key := func(e ast.Expr) token.Pos {
		return objKey(baseObj(e, info))
	}
	add := func(k token.Pos, ev chanEvent) {
		if k == token.NoPos {
			return
		}
		ev.fn = fi
		ci.events[k] = append(ci.events[k], ev)
	}
	recordAssign := func(lhs, rhs ast.Expr) {
		if !isChan(ast.Unparen(rhs)) && !isChan(ast.Unparen(lhs)) {
			return
		}
		lk := key(lhs)
		if lk == token.NoPos {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if b, ok := calleeObject(r, info).(*types.Builtin); ok && b.Name() == "make" {
				owner := ""
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					owner = namedTypeOf(info, sel.X)
				} else if ie, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					// Chasing e.g. n.chans[i][j]: the field's owner.
					if sel := innermostSelector(ie); sel != nil {
						owner = namedTypeOf(info, sel.X)
					}
				}
				add(lk, chanEvent{kind: "make", pos: r.Pos(), fieldOwner: owner})
				return
			}
			// A channel produced by some other call: unknown provenance.
			ci.escape[lk] = true
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
			if rk := key(r); rk != token.NoPos {
				ci.union(lk, rk)
			} else {
				ci.escape[lk] = true
			}
		case *ast.UnaryExpr:
			if r.Op == token.ARROW {
				ci.escape[lk] = true // a channel received over a channel
			}
		default:
			// nil assignment, literals: nothing to track.
		}
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					recordAssign(n.Lhs[i], n.Rhs[i])
				}
			} else if len(n.Rhs) == 1 {
				for _, lhs := range n.Lhs {
					if isChan(ast.Unparen(lhs)) {
						ci.escape[key(lhs)] = true // multi-value unpacking: unknown
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					recordAssign(name, n.Values[i])
				}
			}
		case *ast.SendStmt:
			add(key(n.Chan), chanEvent{kind: "send", pos: n.Pos()})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add(key(n.X), chanEvent{kind: "recv", pos: n.Pos()})
			}
		case *ast.RangeStmt:
			if isChan(n.X) {
				add(key(n.X), chanEvent{kind: "recv", pos: n.Pos()})
			} else if n.Value != nil && isChan(n.Value) {
				// ranging a collection of channels aliases the element
				// to the collection's base object.
				if vk, xk := key(n.Value), key(n.X); vk != token.NoPos && xk != token.NoPos {
					ci.union(vk, xk)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isChan(r) {
					if rk := key(r); rk != token.NoPos {
						ci.escape[rk] = true
					}
				}
			}
		case *ast.CallExpr:
			ci.scanCall(fi, n, isChan, key, add)
		}
		return true
	})
}

// scanCall handles close() and channel-valued arguments.
func (ci *chanIndex) scanCall(fi *funcInfo, call *ast.CallExpr, isChan func(ast.Expr) bool, key func(ast.Expr) token.Pos, add func(token.Pos, chanEvent)) {
	info := fi.pkg.Info
	if b, ok := calleeObject(call, info).(*types.Builtin); ok {
		if b.Name() == "close" && len(call.Args) == 1 {
			base := baseObj(call.Args[0], info)
			isParam := false
			if v, ok := base.(*types.Var); ok && !v.IsField() {
				isParam = isParamOf(fi, v)
			}
			add(objKey(base), chanEvent{kind: "close", pos: call.Pos(), baseIsParam: isParam})
		}
		return
	}
	// Channel arguments: union with a module callee's parameters, or
	// mark escaped for callees beyond the horizon.
	name := calleeName(ci.prog, call, info)
	var params []types.Object
	if fi2 := ci.g.funcs[name]; fi2 != nil {
		params = paramObjs(fi2)
	}
	for i, arg := range call.Args {
		if !isChan(arg) {
			continue
		}
		ak := key(arg)
		if ak == token.NoPos {
			continue
		}
		if i < len(params) && params[i] != nil {
			ci.union(ak, objKey(params[i]))
		} else {
			ci.escape[ak] = true
		}
	}
}

// ownerCloses reports whether a close site is within the owner scope
// of the group: the function containing a make, or a method of the
// type holding the channel field.
func ownerCloses(makes []chanEvent, c chanEvent) bool {
	for _, m := range makes {
		if m.fn == c.fn {
			return true
		}
		if m.fieldOwner != "" && c.fn != nil && recvTypeName(c.fn) == m.fieldOwner {
			return true
		}
	}
	return false
}

// isParamOf reports whether v is a declared parameter of fi.
func isParamOf(fi *funcInfo, v *types.Var) bool {
	for _, p := range paramObjs(fi) {
		if p == v {
			return true
		}
	}
	return false
}

// recvTypeName returns the qualified name of a method's receiver base
// type, or "".
func recvTypeName(fi *funcInfo) string {
	sig, ok := fi.obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// namedTypeOf returns the qualified named type of an expression (after
// pointer indirection), or "".
func namedTypeOf(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok {
		return ""
	}
	t := tv.Type
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// innermostSelector digs the selector expression out of nested index
// expressions (n.chans[i][j] -> n.chans).
func innermostSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}
