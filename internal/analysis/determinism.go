package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism guards the run-to-run and worker-count reproducibility
// of the engine packages (kernel, dimtree, seq, par, cpals by
// default). Three hazards are flagged:
//
//  1. ranging over a map while accumulating with a compound assignment
//     (+=, -=, *=, /=): map iteration order is randomized, so
//     floating-point accumulation becomes order-dependent (collecting
//     keys and sorting them first is the sanctioned idiom);
//  2. calling time.Now or the global math/rand generators outside the
//     seeded-constructor pattern (rand.New / rand.NewSource are
//     allowed; methods on an explicitly constructed *rand.Rand are
//     deterministic given the seed);
//  3. compound-assigning into state captured from an enclosing scope
//     inside a `go` closure, unless the enclosing function merges the
//     private buffers through kernel.ReduceTree — the engines'
//     worker-count-independent reduction. Disjoint plain writes
//     (out[w] = ...) are fine; shared read-modify-write is not;
//  4. accumulating inside a select with more than one communication
//     case: when several cases are ready the runtime picks uniformly
//     at random, so the accumulation order differs run to run (drain
//     the channels in a fixed order instead);
//  5. lock-free float accumulation — a compare-and-swap retry loop
//     round-tripping through math.Float64bits/Float64frombits —
//     which commits contributions in completion order and is neither
//     run-to-run nor worker-count reproducible. Integer atomics
//     (counters, tokens, queue cursors) are exact and exempt.
type Determinism struct {
	// EnginePackages are final import-path elements to cover.
	EnginePackages []string
}

// Name implements Analyzer.
func (Determinism) Name() string { return "determinism" }

// Run implements Analyzer.
func (a Determinism) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !a.covers(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = append(diags, a.checkFunc(prog, pkg, fd)...)
			}
		}
	}
	return diags
}

// covers reports whether the unit's import path names an engine
// package (external _test units of engine packages are covered too).
func (a Determinism) covers(path string) bool {
	last := path[strings.LastIndex(path, "/")+1:]
	last = strings.TrimSuffix(last, "_test")
	for _, p := range a.EnginePackages {
		if last == p {
			return true
		}
	}
	return false
}

func (a Determinism) checkFunc(prog *Program, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(n.Pos()),
			Analyzer: a.Name(),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	info := pkg.Info
	reduces := callsReduceTree(fd.Body, info)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if _, ok := info.Types[n.X].Type.Underlying().(*types.Map); !ok {
				break
			}
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if as, ok := m.(*ast.AssignStmt); ok && isCompound(as.Tok) {
					report(as, "order-dependent accumulation inside a map range (map iteration order is randomized); collect and sort keys first")
				}
				return true
			})
		case *ast.CallExpr:
			obj, _ := calleeObject(n, info).(*types.Func)
			if obj == nil || obj.Pkg() == nil {
				break
			}
			switch obj.Pkg().Path() {
			case "time":
				if obj.Name() == "Now" {
					report(n, "time.Now in an engine package breaks reproducibility; thread timestamps in from the caller")
				}
			case "math/rand", "math/rand/v2":
				if obj.Name() == "New" || obj.Name() == "NewSource" || obj.Name() == "NewPCG" || obj.Name() == "NewChaCha8" {
					break // the seeded-constructor pattern
				}
				if recvIsRand(obj) {
					break // methods on an explicitly seeded *rand.Rand
				}
				report(n, "global math/rand generator is unseeded and process-global; use rand.New(rand.NewSource(seed))")
			}
		case *ast.SelectStmt:
			comm := 0
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comm++
				}
			}
			if comm < 2 {
				break // one case (plus optional default) has a fixed order
			}
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				for _, stmt := range cc.Body {
					ast.Inspect(stmt, func(m ast.Node) bool {
						if as, ok := m.(*ast.AssignStmt); ok && isCompound(as.Tok) {
							report(as, "accumulation inside a select with %d communication cases; the runtime picks ready cases at random, so the order differs run to run — drain channels in a fixed order", comm)
						}
						return true
					})
				}
			}
		case *ast.ForStmt:
			if cas := floatCASIn(n.Body, info); cas != nil {
				report(cas, "compare-and-swap float accumulation commits in completion order and is not worker-count reproducible; accumulate into private buffers and merge with kernel.ReduceTree")
			}
		case *ast.GoStmt:
			lit, ok := n.Call.Fun.(*ast.FuncLit)
			if !ok || reduces {
				break
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok || !isCompound(as.Tok) {
					return true
				}
				if v := sharedBase(as.Lhs[0], lit, info); v != "" {
					report(as, "goroutine accumulates into captured %q; merge private buffers with kernel.ReduceTree or write disjoint outputs", v)
				}
				return true
			})
		}
		return true
	})
	return diags
}

func isCompound(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// sharedBase returns the name of the outer-scope variable a compound
// assignment inside a goroutine closure targets ("" when the target is
// closure-local). Both direct targets (s += v) and indexed targets
// (out[i] += v, grid[i][j] += v) count.
func sharedBase(lhs ast.Expr, lit *ast.FuncLit, info *types.Info) string {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.Ident:
			v, ok := info.Uses[e].(*types.Var)
			if ok && !v.IsField() && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
				return v.Name()
			}
			return ""
		default:
			return ""
		}
	}
}

// callsReduceTree reports whether a function body calls ReduceTree
// from a package whose path ends in "kernel" — the sanctioned
// worker-count-independent merge.
func callsReduceTree(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, _ := calleeObject(call, info).(*types.Func); obj != nil && obj.Name() == "ReduceTree" {
			if p := obj.Pkg(); p != nil && (p.Path() == "kernel" || strings.HasSuffix(p.Path(), "/kernel")) {
				found = true
			}
		}
		return !found
	})
	return found
}

// floatCASIn returns the compare-and-swap call of a lock-free float
// accumulation loop: a body that both calls an atomic CompareAndSwap
// (package function or atomic.Uint32/Uint64 method) and round-trips
// through math.Float32/64bits/frombits. Either ingredient alone is
// innocent — integer CAS is exact, and bit inspection without CAS is
// not accumulation — so both must be present.
func floatCASIn(body *ast.BlockStmt, info *types.Info) *ast.CallExpr {
	var cas *ast.CallExpr
	floatBits := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj, _ := calleeObject(call, info).(*types.Func)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sync/atomic":
			if strings.HasPrefix(obj.Name(), "CompareAndSwap") || obj.Name() == "CompareAndSwap" {
				if cas == nil {
					cas = call
				}
			}
		case "math":
			switch obj.Name() {
			case "Float64bits", "Float64frombits", "Float32bits", "Float32frombits":
				floatBits = true
			}
		}
		return true
	})
	if cas != nil && floatBits {
		return cas
	}
	return nil
}

// recvIsRand reports whether a function is a method on a math/rand
// type (e.g. (*rand.Rand).Float64) rather than a package-level global.
func recvIsRand(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
