package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //repro: directive vocabulary (comments must use exactly this
// prefix, no space after //):
//
//	//repro:hotpath
//	    On a function's doc comment: the function and everything it
//	    statically calls within the module must be allocation-free
//	    (enforced by the hotpath-alloc analyzer).
//
//	//repro:bitwise [justification]
//	    Sanctions float ==/!= on the directive's line (or the line
//	    below a standalone comment); on a doc comment, for the whole
//	    function. Used by the bitwise-reproducibility tests and
//	    exact-zero sparsity skips.
//
//	//repro:ignore <analyzer>[,<analyzer>...] [justification]
//	    Suppresses the named analyzers on the directive's line (or the
//	    line below); on a doc comment, for the whole function. For
//	    hotpath-alloc, an ignore on a call site also stops hot-path
//	    propagation into the callee, and a function-level ignore marks
//	    the function audited (skipped entirely).
//
//	//repro:dispatch
//	    On a package-level function variable's doc comment: the
//	    variable is a sanctioned dispatch point (bound once at init,
//	    e.g. the internal/simd kernel table). Hot-path code may call
//	    through it, and every module function assigned to it joins
//	    the hot-path walk; calls through any other package-level
//	    function variable are diagnosed.
//
//	//repro:worker-pool [justification]
//	    On a `go` statement's line (or the line above), or on the
//	    spawning function's doc comment: the spawned goroutines are a
//	    parked worker pool by design — they outlive the spawning call
//	    and wake on tokens (e.g. internal/sparse's token-woken CSF
//	    pool). Exempts the goroutine-leak analyzer's join requirement
//	    and sanctions pooled-workspace capture by the pool's workers.
//
//	//repro:besteffort [justification]
//	    On a statement's line (or the line above), or on a function's
//	    doc comment: the discarded error there is best-effort by
//	    design (e.g. closing a trace file at process exit). Exempts
//	    errcheck-lite, including the writable defer-Close rule.
type directive struct {
	verb string   // "hotpath", "bitwise", "ignore"
	args []string // analyzer names for "ignore"
}

// Directives indexes every //repro: comment in the program by file and
// line, plus function-level directives (doc comments) by position
// range.
type Directives struct {
	line  map[string]map[int][]directive // file -> line -> directives
	funcs []funcDirectives
}

type funcDirectives struct {
	file       string
	start, end int // line range of the function body
	dirs       []directive
}

func buildDirectives(prog *Program) *Directives {
	d := &Directives{line: make(map[string]map[int][]directive)}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					dir, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					byLine := d.line[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]directive)
						d.line[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], dir)
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				dirs := parseGroup(fd.Doc)
				if len(dirs) == 0 {
					continue
				}
				start := prog.Fset.Position(fd.Pos())
				end := prog.Fset.Position(fd.End())
				d.funcs = append(d.funcs, funcDirectives{
					file: start.Filename, start: start.Line, end: end.Line, dirs: dirs,
				})
			}
		}
	}
	return d
}

// parseDirective parses one comment line; ok is false for ordinary
// comments. Accepted forms: "//repro:verb", "//repro:ignore a,b why".
func parseDirective(text string) (directive, bool) {
	rest, ok := strings.CutPrefix(text, "//repro:")
	if !ok {
		return directive{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return directive{}, false
	}
	dir := directive{verb: fields[0]}
	if dir.verb == "ignore" && len(fields) > 1 {
		dir.args = strings.Split(fields[1], ",")
	}
	return dir, true
}

func parseGroup(cg *ast.CommentGroup) []directive {
	var dirs []directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c.Text); ok {
			dirs = append(dirs, d)
		}
	}
	return dirs
}

// Ignored reports whether diagnostics from the named analyzer are
// suppressed at pos: a //repro:ignore naming the analyzer on the same
// line, on the line above (standalone comment), or in the enclosing
// function's doc comment.
func (d *Directives) Ignored(pos token.Position, analyzer string) bool {
	return d.match(pos, func(dir directive) bool {
		if dir.verb != "ignore" {
			return false
		}
		for _, a := range dir.args {
			if a == analyzer {
				return true
			}
		}
		return false
	})
}

// Bitwise reports whether a //repro:bitwise sanction covers pos (same
// line, line above, or enclosing function doc).
func (d *Directives) Bitwise(pos token.Position) bool {
	return d.match(pos, func(dir directive) bool { return dir.verb == "bitwise" })
}

// WorkerPool reports whether a //repro:worker-pool sanction covers pos
// (same line, line above, or enclosing function doc).
func (d *Directives) WorkerPool(pos token.Position) bool {
	return d.match(pos, func(dir directive) bool { return dir.verb == "worker-pool" })
}

// BestEffort reports whether a //repro:besteffort sanction covers pos
// (same line, line above, or enclosing function doc).
func (d *Directives) BestEffort(pos token.Position) bool {
	return d.match(pos, func(dir directive) bool { return dir.verb == "besteffort" })
}

func (d *Directives) match(pos token.Position, pred func(directive) bool) bool {
	if byLine := d.line[pos.Filename]; byLine != nil {
		for _, line := range [2]int{pos.Line, pos.Line - 1} {
			for _, dir := range byLine[line] {
				if pred(dir) {
					return true
				}
			}
		}
	}
	for _, fr := range d.funcs {
		if fr.file == pos.Filename && fr.start <= pos.Line && pos.Line <= fr.end {
			for _, dir := range fr.dirs {
				if pred(dir) {
					return true
				}
			}
		}
	}
	return false
}

// hasVerb reports whether a doc comment group carries the directive
// verb (e.g. "hotpath" roots, function-level "ignore" audits).
func hasVerb(cg *ast.CommentGroup, verb string) bool {
	if cg == nil {
		return false
	}
	for _, dir := range parseGroup(cg) {
		if dir.verb == verb {
			return true
		}
	}
	return false
}

// funcIgnores reports whether a doc comment group suppresses the named
// analyzer for the whole function.
func funcIgnores(cg *ast.CommentGroup, analyzer string) bool {
	if cg == nil {
		return false
	}
	for _, dir := range parseGroup(cg) {
		if dir.verb != "ignore" {
			continue
		}
		for _, a := range dir.args {
			if a == analyzer {
				return true
			}
		}
	}
	return false
}
