package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckLite flags error returns that are silently discarded: a call
// whose result set includes an error used as a bare statement, or
// behind go/defer. Explicit discards (_ = f()) are visible in review
// and allowed. Exemptions: the main and init functions of main
// packages (process exit is the error handler there) and callees on
// the configured allowlist (best-effort writers like fmt.Print* and
// in-memory buffers whose errors are unreachable).
type ErrcheckLite struct {
	// Allowlist holds qualified-name prefixes, e.g. "fmt.Print" or
	// "(*bytes.Buffer).".
	Allowlist []string
}

// Name implements Analyzer.
func (ErrcheckLite) Name() string { return "errcheck-lite" }

// Run implements Analyzer.
func (a ErrcheckLite) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		isMain := pkg.Types.Name() == "main"
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if isMain && fd.Recv == nil && (fd.Name.Name == "main" || fd.Name.Name == "init") {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					var call *ast.CallExpr
					switch n := n.(type) {
					case *ast.ExprStmt:
						call, _ = n.X.(*ast.CallExpr)
					case *ast.GoStmt:
						call = n.Call
					case *ast.DeferStmt:
						call = n.Call
					}
					if call == nil || !a.returnsError(call, pkg.Info) || a.allowed(call, pkg.Info) {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos:      prog.Fset.Position(call.Pos()),
						Analyzer: a.Name(),
						Message:  "error return silently discarded; handle it or discard explicitly with _ =",
					})
					return true
				})
			}
		}
	}
	return diags
}

// returnsError reports whether the call's result set includes an
// error.
func (a ErrcheckLite) returnsError(call *ast.CallExpr, info *types.Info) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// allowed reports whether the callee's qualified name matches the
// allowlist.
func (a ErrcheckLite) allowed(call *ast.CallExpr, info *types.Info) bool {
	obj, _ := calleeObject(call, info).(*types.Func)
	if obj == nil {
		return false
	}
	name := obj.FullName()
	for _, prefix := range a.Allowlist {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
