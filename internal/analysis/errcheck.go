package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckLite flags error returns that are silently discarded: a call
// whose result set includes an error used as a bare statement, or
// behind go/defer. Explicit discards (_ = f()) are visible in review
// and allowed. Exemptions: the main and init functions of main
// packages (process exit is the error handler there), callees on
// the configured allowlist (best-effort writers like fmt.Print* and
// in-memory buffers whose errors are unreachable), and statements
// covered by a //repro:besteffort directive.
//
// Deferred Close gets provenance-aware treatment through the SSA-lite
// def-use index: `defer f.Close()` is exempt when every definition of
// f traces to os.Open — closing a read-only file cannot lose data, and
// the idiom is universal. A handle that was (or may have been) opened
// for writing — os.Create, os.OpenFile, net.Dial, or unknown
// provenance — keeps the diagnostic: Close is where buffered writes
// surface their errors, and dropping it can silently truncate output.
type ErrcheckLite struct {
	// Allowlist holds qualified-name prefixes, e.g. "fmt.Print" or
	// "(*bytes.Buffer).".
	Allowlist []string
}

// Name implements Analyzer.
func (ErrcheckLite) Name() string { return "errcheck-lite" }

// Run implements Analyzer.
func (a ErrcheckLite) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		isMain := pkg.Types.Name() == "main"
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if isMain && fd.Recv == nil && (fd.Name.Name == "main" || fd.Name.Name == "init") {
					continue
				}
				var du *defUse // built on the first deferred Close
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					var call *ast.CallExpr
					deferred := false
					switch n := n.(type) {
					case *ast.ExprStmt:
						call, _ = n.X.(*ast.CallExpr)
					case *ast.GoStmt:
						call = n.Call
					case *ast.DeferStmt:
						call = n.Call
						deferred = true
					}
					if call == nil || !a.returnsError(call, pkg.Info) || a.allowed(call, pkg.Info) {
						return true
					}
					pos := prog.Fset.Position(call.Pos())
					if prog.Directives.BestEffort(pos) {
						return true // audited best-effort discard
					}
					msg := "error return silently discarded; handle it or discard explicitly with _ ="
					if deferred && isCloseCall(call, pkg.Info) {
						if du == nil {
							du = buildDefUse(fd, pkg.Info)
						}
						if readOnlyHandle(call, du) {
							return true // closing an os.Open handle cannot lose data
						}
						msg = "deferred Close on a writable or unknown-provenance handle discards the error (buffered writes fail at close); check it, or mark the discard //repro:besteffort"
					}
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: a.Name(),
						Message:  msg,
					})
					return true
				})
			}
		}
	}
	return diags
}

// returnsError reports whether the call's result set includes an
// error.
func (a ErrcheckLite) returnsError(call *ast.CallExpr, info *types.Info) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isCloseCall reports whether the call is a no-argument Close method.
func isCloseCall(call *ast.CallExpr, info *types.Info) bool {
	fn, _ := calleeObject(call, info).(*types.Func)
	if fn == nil || fn.Name() != "Close" || len(call.Args) != 0 {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// readOnlyHandle reports whether the Close receiver's every recorded
// definition is a direct os.Open call — the one provenance where a
// dropped Close error is provably harmless. Multi-value unpacking
// (f, err := os.Open(...)) records the call itself as the definition,
// so the common idiom resolves in one hop. Any other source — a
// parameter, os.Create, a constructor return — keeps the handle in
// the writable/unknown bucket.
func readOnlyHandle(call *ast.CallExpr, du *defUse) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	srcs := du.sources(sel.X)
	if len(srcs) == 0 {
		return false
	}
	for _, s := range srcs {
		c, ok := ast.Unparen(s).(*ast.CallExpr)
		if !ok {
			return false
		}
		pkg, name, ok := calleePath(c, du.info)
		if !ok || pkg != "os" || name != "Open" {
			return false
		}
	}
	return true
}

// allowed reports whether the callee's qualified name matches the
// allowlist.
func (a ErrcheckLite) allowed(call *ast.CallExpr, info *types.Info) bool {
	obj, _ := calleeObject(call, info).(*types.Func)
	if obj == nil {
		return false
	}
	name := obj.FullName()
	for _, prefix := range a.Allowlist {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
