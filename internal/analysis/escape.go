package analysis

// escape.go is the third piece of the SSA-lite layer: a conservative
// escape lattice for slice and pointer values. Given a predicate that
// marks "interesting" expressions (the workspace-aliasing analyzer
// marks pooled-workspace-derived slices), it classifies every place a
// marked value can leave its stack frame:
//
//	escNone     stays local: reads, arithmetic, copy() out of it
//	escArg      passed to another function (the caller of the lattice
//	            decides whether to follow the edge interprocedurally)
//	escStored   written to a heap location: a field of some other
//	            object, a package-level variable, a map
//	escReturned returned to the caller
//	escCaptured referenced by (or passed to) a goroutine, which may
//	            outlive the frame entirely
//
// The lattice is ordered by how far the value can travel; analyses
// that only care about "escapes at all" can treat anything above
// escArg as hot. The classification is syntactic and flow-insensitive:
// it never proves an escape safe, only cheap to audit.

import (
	"go/ast"
	"go/types"
)

type escKind int

const (
	escNone escKind = iota
	escArg
	escStored
	escReturned
	escCaptured
)

func (k escKind) String() string {
	switch k {
	case escArg:
		return "passed"
	case escStored:
		return "stored"
	case escReturned:
		return "returned"
	case escCaptured:
		return "captured by goroutine"
	}
	return "local"
}

// escSite is one place a marked value escapes.
type escSite struct {
	kind   escKind
	node   ast.Node      // the assignment, return, go statement, or call
	dest   ast.Expr      // escStored: the l-value written to
	call   *ast.CallExpr // escArg: the receiving call
	argIdx int           // escArg: positional argument index
}

// escapeSites walks one function body and returns every escape of a
// marked expression. marked must be cheap; it is called once per
// candidate expression. Goroutine capture covers both closures that
// reference marked variables and marked arguments of `go f(x)`.
func escapeSites(body *ast.BlockStmt, info *types.Info, marked func(ast.Expr) bool) []escSite {
	var sites []escSite
	inGo := make(map[ast.Node]bool) // go-statement call subtrees
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			inGo[gs.Call] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				break // multi-value call results are never marked expressions
			}
			for i, rhs := range n.Rhs {
				if marked(rhs) && heapDest(n.Lhs[i], info) {
					sites = append(sites, escSite{kind: escStored, node: n, dest: n.Lhs[i]})
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if marked(r) {
					sites = append(sites, escSite{kind: escReturned, node: n})
				}
			}
		case *ast.GoStmt:
			// Marked arguments handed to the spawned call.
			for i, arg := range n.Call.Args {
				if marked(arg) {
					sites = append(sites, escSite{kind: escCaptured, node: n, call: n.Call, argIdx: i})
				}
			}
			// Marked free variables referenced inside a spawned closure.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				found := false
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if found {
						return false
					}
					if id, ok := m.(*ast.Ident); ok && marked(id) {
						if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() &&
							(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
							found = true
						}
					}
					return true
				})
				if found {
					sites = append(sites, escSite{kind: escCaptured, node: n, call: n.Call})
				}
			}
		case *ast.CallExpr:
			if inGo[n] {
				break // already classified as escCaptured above
			}
			for i, arg := range n.Args {
				if marked(arg) {
					sites = append(sites, escSite{kind: escArg, node: n, call: n, argIdx: i})
				}
			}
		}
		return true
	})
	return sites
}

// heapDest reports whether an assignment destination is a heap
// location from the frame's point of view: a package-level variable, a
// field selector, a map element, or an element of something that is
// itself package-level or a field. Plain locals — including elements
// of local slices — are not heap destinations.
func heapDest(lhs ast.Expr, info *types.Info) bool {
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if !ok {
				if v, ok = info.Defs[x].(*types.Var); !ok {
					return false
				}
			}
			// Package-level variables live forever.
			return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
		case *ast.SelectorExpr:
			return true // a field of something: heap from this frame's view
		case *ast.IndexExpr:
			if _, ok := info.Types[x.X].Type.Underlying().(*types.Map); ok {
				return true
			}
			lhs = x.X
		case *ast.StarExpr:
			return true // write through a pointer we did not allocate here
		default:
			return false
		}
	}
}
