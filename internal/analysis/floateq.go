package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq forbids raw ==/!= between floating-point values (including
// arrays and structs whose comparison is element-wise over floats).
// Rounding makes such comparisons order- and optimization-sensitive;
// the engines compare against oracles through tolerances instead. The
// sanctioned exceptions — bitwise worker-count-reproducibility tests
// and exact-zero sparsity skips (x == 0 on a value that was stored,
// never computed) — carry a //repro:bitwise directive. The NaN idiom
// x != x is always allowed.
//
// Non-test files are checked in every package. Test files are checked
// only in TestScope packages (the engines, whose reproducibility
// contract the bitwise tests document); elsewhere tests assert exact
// analytic model values and raw comparison is the intended semantics.
type FloatEq struct {
	// TestScope are final import-path elements of packages whose
	// _test.go files are also checked.
	TestScope []string
}

// Name implements Analyzer.
func (FloatEq) Name() string { return "float-eq" }

// Run implements Analyzer.
func (a FloatEq) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		inScope := a.inTestScope(pkg.Path)
		for _, f := range pkg.Files {
			if !inScope && strings.HasSuffix(prog.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				tv, ok := pkg.Info.Types[be.X]
				if !ok || !comparesFloats(tv.Type) {
					return true
				}
				if types.ExprString(be.X) == types.ExprString(be.Y) {
					return true // x != x: the NaN check idiom
				}
				pos := prog.Fset.Position(be.OpPos)
				if prog.Directives.Bitwise(pos) {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:      pos,
					Analyzer: a.Name(),
					Message:  "float equality is rounding-sensitive; compare through a tolerance or annotate //repro:bitwise",
				})
				return true
			})
		}
	}
	return diags
}

// inTestScope reports whether the unit's final import-path element
// names a package whose test files are checked too.
func (a FloatEq) inTestScope(path string) bool {
	last := path[strings.LastIndex(path, "/")+1:]
	last = strings.TrimSuffix(last, "_test")
	for _, p := range a.TestScope {
		if last == p {
			return true
		}
	}
	return false
}

// comparesFloats reports whether ==/!= on the type reduces to
// floating-point equality somewhere: floats, complex, arrays of such,
// or structs with such fields.
func comparesFloats(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Array:
		return comparesFloats(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if comparesFloats(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}
