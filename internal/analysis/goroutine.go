package analysis

// GoroutineLeak enforces the join discipline: every `go` statement
// must reach a join the spawner can see, so no engine call leaves
// stray goroutines behind to race the next pass or pin pooled
// workspaces.
//
// A goroutine is considered joined when it signals completion —
// sync.WaitGroup.Done (including deferred), a channel send, or a
// channel close — on an object that the spawning function (or a
// module function statically reachable from it) waits on:
// sync.WaitGroup.Wait, a channel receive (<-ch, range ch, or a select
// receive case). Objects are matched through the SSA-lite layer:
// cross-unit identity by declaration position, and call-argument to
// parameter aliasing one interprocedural hop at a time, so
// `go poolWorker(ws, ws.start)` is matched against joins on the same
// `start` field wherever the BFS can see them.
//
// Deliberately-unjoined goroutines come in two sanctioned flavors:
// parked worker pools (mark the spawn or the spawning function with
// //repro:worker-pool — the workers outlive the call by design and
// wake on tokens) and process-lifetime daemons (audit them with
// //repro:ignore goroutine-leak). A spawn whose body the analyzer
// cannot see (an external or dynamic callee) cannot prove a join and
// is diagnosed: keep spawn targets direct or annotate them.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLeak is the analyzer; see the package-level description.
type GoroutineLeak struct{}

// Name implements Analyzer.
func (GoroutineLeak) Name() string { return "goroutine-leak" }

// Run implements Analyzer.
func (a GoroutineLeak) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	g := prog.CallGraph()
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					pos := prog.Fset.Position(gs.Pos())
					if prog.Directives.WorkerPool(pos) {
						return true // sanctioned parked pool
					}
					if goroutineJoined(prog, g, pkg, fd, gs) {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: a.Name(),
						Message: "goroutine has no reachable join (no WaitGroup.Wait or channel receive " +
							"observes its completion); join it, or mark a parked pool with //repro:worker-pool",
					})
					return true
				})
			}
		}
	}
	return diags
}

// goSignals are the completion signals a spawned goroutine emits,
// keyed by the cross-unit object identity of the WaitGroup or channel
// they go through.
type goSignals struct {
	keys map[token.Pos]bool
}

// goroutineJoined reports whether the goroutine spawned by gs inside
// fd provably reaches a join: some function statically reachable from
// fd (excluding the goroutine body itself) waits on an object the
// goroutine signals.
func goroutineJoined(prog *Program, g *callGraph, pkg *Package, fd *ast.FuncDecl, gs *ast.GoStmt) bool {
	sig, spawnedName := collectGoSignals(prog, g, pkg, gs)
	if sig == nil || len(sig.keys) == 0 {
		return false // body invisible, or it never signals: cannot join
	}

	// BFS the spawner's reachable set, excluding the spawned function:
	// a goroutine cannot join itself.
	encl, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	scope := g.reachable([]string{encl.FullName()})
	delete(scope, spawnedName)

	// Fixpoint over argument->parameter aliasing: scanning a body may
	// reveal that a signaled object is handed to a callee, whose
	// parameter then joins the alias set and may match joins there.
	for pass := 0; pass < 4; pass++ {
		grew := false
		for name := range scope {
			fi := g.funcs[name]
			if fi == nil {
				continue
			}
			skip := ast.Node(nil)
			if name == encl.FullName() {
				skip = gs // the goroutine's own body is not the spawner's join
			}
			found, g2 := scanForJoins(prog, g, fi, sig, skip)
			if found {
				return true
			}
			grew = grew || g2
		}
		if !grew {
			break
		}
	}
	return false
}

// collectGoSignals resolves the spawned body and gathers its
// completion signals. For `go f(...)` on a module function, signals
// found on f's parameters are translated to the spawn site's argument
// objects (and the parameter keys are kept too, for joins expressed
// against the callee's own view). Returns nil when the body is not
// analyzable. spawnedName is f's qualified name ("" for literals).
func collectGoSignals(prog *Program, g *callGraph, pkg *Package, gs *ast.GoStmt) (*goSignals, string) {
	sig := &goSignals{keys: make(map[token.Pos]bool)}
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		gatherSignals(fun.Body, pkg.Info, sig)
		return sig, ""
	default:
		name := calleeName(prog, gs.Call, pkg.Info)
		fi := g.funcs[name]
		if fi == nil {
			return nil, "" // external or dynamic spawn target: invisible
		}
		gatherSignals(fi.decl.Body, fi.pkg.Info, sig)
		// Translate callee parameter signals to spawn-site arguments.
		params := paramObjs(fi)
		for i, p := range params {
			if p == nil || !sig.keys[objKey(p)] || i >= len(gs.Call.Args) {
				continue
			}
			if obj := baseObj(gs.Call.Args[i], pkg.Info); obj != nil {
				sig.keys[objKey(obj)] = true
			}
		}
		// A method spawn signals through its receiver's fields, which
		// already unify by field position; nothing extra to translate.
		_ = fun
		return sig, name
	}
}

// gatherSignals records every completion signal in a goroutine body:
// wg.Done(), ch <- v, close(ch).
func gatherSignals(body *ast.BlockStmt, info *types.Info, sig *goSignals) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObject(n, info)
			if isMethodOn(obj, "sync", "WaitGroup", "Done") {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if base := baseObj(sel.X, info); base != nil {
						sig.keys[objKey(base)] = true
					}
				}
			}
			if b, ok := obj.(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
				if base := baseObj(n.Args[0], info); base != nil {
					sig.keys[objKey(base)] = true
				}
			}
		case *ast.SendStmt:
			if base := baseObj(n.Chan, info); base != nil {
				sig.keys[objKey(base)] = true
			}
		}
		return true
	})
}

// scanForJoins looks through one function body for a join on any
// signaled object: WaitGroup.Wait or a channel receive. It also grows
// the alias set when a signaled object is passed as an argument to a
// module function (the callee's parameter becomes an alias); grew
// reports whether the set changed. skip, when non-nil, is a subtree to
// ignore (the go statement under analysis).
func scanForJoins(prog *Program, g *callGraph, fi *funcInfo, sig *goSignals, skip ast.Node) (found, grew bool) {
	info := fi.pkg.Info
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if found || n == skip {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObject(n, info)
			if isMethodOn(obj, "sync", "WaitGroup", "Wait") {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if base := baseObj(sel.X, info); base != nil && sig.keys[objKey(base)] {
						found = true
						return false
					}
				}
			}
			// Alias growth: a signaled object handed to a module callee.
			if name := calleeName(prog, n, info); name != "" {
				if callee := g.funcs[name]; callee != nil {
					params := paramObjs(callee)
					for i, arg := range n.Args {
						if i >= len(params) || params[i] == nil {
							break
						}
						base := baseObj(arg, info)
						if base != nil && sig.keys[objKey(base)] && !sig.keys[objKey(params[i])] {
							sig.keys[objKey(params[i])] = true
							grew = true
						}
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if base := baseObj(n.X, info); base != nil && sig.keys[objKey(base)] {
					found = true
					return false
				}
			}
		case *ast.RangeStmt:
			if _, ok := info.Types[n.X].Type.Underlying().(*types.Chan); ok {
				if base := baseObj(n.X, info); base != nil && sig.keys[objKey(base)] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found, grew
}
