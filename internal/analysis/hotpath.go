package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotpathAlloc enforces the zero-steady-state-allocation invariant:
// a function whose doc comment carries //repro:hotpath — and every
// function it statically calls within the module, transitively — may
// not contain make, new, append, fmt string formatting, slice/map
// composite literals, escaping (&-taken) composite literals, or
// closures that capture local variables by reference.
//
// Exemptions: code inside the arguments of a panic(...) call is the
// failure path and is not checked; a //repro:ignore hotpath-alloc on a
// call line cuts propagation into that callee (the call is audited,
// e.g. a grow-only workspace primitive); a function-level ignore skips
// the function entirely. Calls through interfaces and function values
// are not followed — keep hot paths direct.
type HotpathAlloc struct{}

// Name implements Analyzer.
func (HotpathAlloc) Name() string { return "hotpath-alloc" }

// fmtAllocFuncs are the fmt functions that build a string or slice on
// every call; on a hot path they are both an allocation and a hint
// that formatting leaked out of the failure path.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

type funcNode struct {
	decl *ast.FuncDecl
	pkg  *Package
	obj  *types.Func
}

// Run implements Analyzer: collect every declared function, seed a
// worklist with the //repro:hotpath roots, and walk the static call
// graph breadth-first, checking each reached body once.
func (a HotpathAlloc) Run(prog *Program) []Diagnostic {
	reg := make(map[string]*funcNode)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				reg[obj.FullName()] = &funcNode{decl: fd, pkg: pkg, obj: obj}
			}
		}
	}
	type item struct{ key, root string }
	var work []item
	for key, fn := range reg {
		if hasVerb(fn.decl.Doc, "hotpath") {
			work = append(work, item{key, fn.pkg.Types.Name() + "." + fn.decl.Name.Name})
		}
	}
	sort.Slice(work, func(i, j int) bool { return work[i].key < work[j].key })

	var diags []Diagnostic
	seen := make(map[string]bool)
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		if seen[it.key] {
			continue
		}
		seen[it.key] = true
		fn := reg[it.key]
		if fn == nil {
			continue
		}
		if funcIgnores(fn.decl.Doc, a.Name()) {
			continue // audited: no diagnostics, no propagation
		}
		ds, callees := a.checkBody(prog, fn, it.root)
		diags = append(diags, ds...)
		for _, key := range callees {
			if !seen[key] {
				work = append(work, item{key, it.root})
			}
		}
	}
	return diags
}

// checkBody walks one hot function body, returning its diagnostics
// and the qualified names of module functions it calls.
func (a HotpathAlloc) checkBody(prog *Program, fn *funcNode, root string) ([]Diagnostic, []string) {
	var diags []Diagnostic
	var callees []string
	info := fn.pkg.Info
	panicRanges := panicArgRanges(fn.decl.Body, info)
	inPanic := func(n ast.Node) bool {
		for _, r := range panicRanges {
			if r.pos <= n.Pos() && n.End() <= r.end {
				return true
			}
		}
		return false
	}
	report := func(n ast.Node, format string, args ...any) {
		pos := prog.Fset.Position(n.Pos())
		msg := fmt.Sprintf(format, args...)
		diags = append(diags, Diagnostic{
			Pos:      pos,
			Analyzer: a.Name(),
			Message:  fmt.Sprintf("%s on hot path (via //repro:hotpath %s)", msg, root),
		})
	}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObject(n, info)
			switch obj := obj.(type) {
			case *types.Builtin:
				if inPanic(n) {
					break
				}
				switch obj.Name() {
				case "make":
					report(n, "make allocates")
				case "new":
					report(n, "new allocates")
				case "append":
					report(n, "append may grow and allocate")
				}
			case *types.Func:
				pkg := obj.Pkg()
				if pkg == nil {
					break
				}
				if pkg.Path() == "fmt" && fmtAllocFuncs[obj.Name()] {
					if !inPanic(n) {
						report(n, "fmt.%s formats and allocates", obj.Name())
					}
					break
				}
				if pkg.Path() == prog.ModulePath || strings.HasPrefix(pkg.Path(), prog.ModulePath+"/") {
					// A //repro:ignore on the call line audits the edge.
					if !prog.Directives.Ignored(prog.Fset.Position(n.Pos()), a.Name()) {
						callees = append(callees, obj.FullName())
					}
				}
			}
		case *ast.FuncLit:
			if inPanic(n) {
				break
			}
			if caps := capturedVars(n, info, fn.pkg.Types.Scope()); len(caps) > 0 {
				report(n, "closure captures %s by reference (may heap-allocate)", strings.Join(caps, ", "))
			}
		case *ast.CompositeLit:
			if inPanic(n) {
				break
			}
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				report(n, "slice literal allocates")
			case *types.Map:
				report(n, "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND || inPanic(n) {
				break
			}
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				report(n, "&composite literal escapes to the heap")
			}
		}
		return true
	})
	return diags, callees
}

// calleeObject resolves the object a call's Fun refers to, or nil for
// dynamic calls (function values, interface methods) and conversions.
func calleeObject(call *ast.CallExpr, info *types.Info) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

type posRange struct{ pos, end token.Pos }

// panicArgRanges collects the source ranges of panic(...) arguments;
// allocation there is the failure path, which the zero-alloc contract
// does not cover.
func panicArgRanges(body *ast.BlockStmt, info *types.Info) []posRange {
	var ranges []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if b, ok := calleeObject(call, info).(*types.Builtin); ok && b.Name() == "panic" {
			for _, arg := range call.Args {
				ranges = append(ranges, posRange{arg.Pos(), arg.End()})
			}
		}
		return true
	})
	return ranges
}

// capturedVars lists (in source order) the local variables a function
// literal references but does not declare — closure captures, which
// are by reference in Go. Package-level variables and struct fields
// are not captures.
func capturedVars(lit *ast.FuncLit, info *types.Info, pkgScope *types.Scope) []string {
	seen := make(map[*types.Var]bool)
	var caps []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == nil || v.Parent() == pkgScope || v.Parent().Parent() == types.Universe {
			return true // package-level or universe
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
			caps = append(caps, v)
		}
		return true
	})
	sort.Slice(caps, func(i, j int) bool { return caps[i].Pos() < caps[j].Pos() })
	names := make([]string, len(caps))
	for i, v := range caps {
		names[i] = v.Name()
	}
	return names
}
