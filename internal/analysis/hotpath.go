package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotpathAlloc enforces the zero-steady-state-allocation invariant:
// a function whose doc comment carries //repro:hotpath — and every
// function it statically calls within the module, transitively — may
// not contain make, new, append, fmt string formatting, slice/map
// composite literals, escaping (&-taken) composite literals, or
// closures that capture local variables by reference.
//
// Exemptions: code inside the arguments of a panic(...) call is the
// failure path and is not checked, and so is the body of an
// `if err != nil` block (a cold error path: allocating the error
// report there is fine, and propagation into callees invoked only on
// that path is cut); a //repro:ignore hotpath-alloc on a call line
// cuts propagation into that callee (the call is audited, e.g. a
// grow-only workspace primitive); a function-level ignore skips the
// function entirely. Calls through interfaces and local function
// values are not followed — keep hot paths direct.
//
// Two extensions cover the internal/simd kernel layer:
//
//   - Assembly stubs (FuncDecls with no body, declared via
//     //go:noescape next to a .s file) have nothing to check and are
//     legal hot-path callees.
//   - Package-level function variables marked //repro:dispatch (the
//     init-bound kernel tables) are legal call targets, and every
//     module function or function literal assigned to one joins the
//     hot-path walk as if it were a root. Calling through an
//     UNMARKED package-level function variable is diagnosed: an
//     indirect call the analyzer cannot follow must be a declared
//     dispatch point.
type HotpathAlloc struct{}

// Name implements Analyzer.
func (HotpathAlloc) Name() string { return "hotpath-alloc" }

// fmtAllocFuncs are the fmt functions that build a string or slice on
// every call; on a hot path they are both an allocation and a hint
// that formatting leaked out of the failure path.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// dispatchTable indexes the //repro:dispatch function variables by
// qualified name ("repro/internal/simd.Axpy") — names, not object
// identity, because each analysis unit type-checks its own object for
// an imported package's variable.
type dispatchTable map[string]bool

func varKey(v *types.Var) string {
	if v.Pkg() == nil {
		return v.Name()
	}
	return v.Pkg().Path() + "." + v.Name()
}

// litRoot is a function literal assigned to a dispatch variable: a
// hot-path entry with a body but no FuncDecl (the init-time bind
// shims wrapping the assembly kernels).
type litRoot struct {
	lit  *ast.FuncLit
	pkg  *Package
	root string
}

// Run implements Analyzer: collect every declared function and every
// //repro:dispatch variable, seed a worklist with the //repro:hotpath
// roots plus everything assigned to a dispatch variable, and walk the
// static call graph breadth-first, checking each reached body once.
func (a HotpathAlloc) Run(prog *Program) []Diagnostic {
	// The function registry is the call graph's: one map of every
	// declared body, shared with the concurrency analyzers. Bodyless
	// FuncDecls (assembly stubs) are absent — nothing to check and
	// calls to them are legal.
	reg := prog.CallGraph().funcs
	dispatch := collectDispatchVars(prog)

	type item struct{ key, root string }
	var work []item
	for key, fn := range reg {
		if hasVerb(fn.decl.Doc, "hotpath") {
			work = append(work, item{key, fn.pkg.Types.Name() + "." + fn.decl.Name.Name})
		}
	}
	// Everything assigned to a dispatch variable is reachable through
	// it from every dispatch call site, so it joins the walk as a root.
	funcs, lits := collectDispatchAssignments(prog, dispatch)
	for _, key := range funcs {
		work = append(work, item{key, "dispatch " + key})
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].key != work[j].key {
			return work[i].key < work[j].key
		}
		return work[i].root < work[j].root
	})

	var diags []Diagnostic
	seen := make(map[string]bool)
	enqueue := func(keys []string, root string) {
		for _, key := range keys {
			if !seen[key] {
				work = append(work, item{key, root})
			}
		}
	}
	for _, lr := range lits {
		ds, callees := a.checkBody(prog, lr.lit.Body, lr.pkg, dispatch, lr.root)
		diags = append(diags, ds...)
		enqueue(callees, lr.root)
	}
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		if seen[it.key] {
			continue
		}
		seen[it.key] = true
		fn := reg[it.key]
		if fn == nil {
			continue
		}
		if funcIgnores(fn.decl.Doc, a.Name()) {
			continue // audited: no diagnostics, no propagation
		}
		ds, callees := a.checkBody(prog, fn.decl.Body, fn.pkg, dispatch, it.root)
		diags = append(diags, ds...)
		enqueue(callees, it.root)
	}
	return diags
}

// collectDispatchVars finds every package-level variable whose doc
// comment (on the spec or its enclosing var block) carries
// //repro:dispatch.
func collectDispatchVars(prog *Program) dispatchTable {
	dispatch := make(dispatchTable)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || !(hasVerb(vs.Doc, "dispatch") || hasVerb(gd.Doc, "dispatch")) {
						continue
					}
					for _, name := range vs.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							dispatch[varKey(v)] = true
						}
					}
				}
			}
		}
	}
	return dispatch
}

// collectDispatchAssignments finds every module function and function
// literal assigned to a dispatch variable — in the declaration
// initializer or any assignment statement (the init-time binds and
// test path-forcing helpers).
func collectDispatchAssignments(prog *Program, dispatch dispatchTable) ([]string, []litRoot) {
	var funcs []string
	var lits []litRoot
	record := func(pkg *Package, v *types.Var, rhs ast.Expr) {
		key := varKey(v)
		if !dispatch[key] {
			return
		}
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.FuncLit:
			lits = append(lits, litRoot{lit: rhs, pkg: pkg, root: "dispatch " + key})
		default:
			if obj, ok := exprObject(rhs, pkg.Info).(*types.Func); ok && moduleFunc(prog, obj) {
				funcs = append(funcs, obj.FullName())
			}
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ValueSpec:
					for i, name := range n.Names {
						if i >= len(n.Values) {
							break
						}
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							record(pkg, v, n.Values[i])
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if i >= len(n.Rhs) {
							break
						}
						if v, ok := exprObject(lhs, pkg.Info).(*types.Var); ok {
							record(pkg, v, n.Rhs[i])
						}
					}
				}
				return true
			})
		}
	}
	sort.Strings(funcs)
	sort.Slice(lits, func(i, j int) bool { return lits[i].lit.Pos() < lits[j].lit.Pos() })
	return funcs, lits
}

// exprObject resolves an identifier or selector expression to its
// object, or nil.
func exprObject(e ast.Expr, info *types.Info) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// moduleFunc reports whether a function belongs to the analyzed
// module.
func moduleFunc(prog *Program, obj *types.Func) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == prog.ModulePath || strings.HasPrefix(pkg.Path(), prog.ModulePath+"/")
}

// checkBody walks one hot function (or bind-shim literal) body,
// returning its diagnostics and the qualified names of module
// functions it calls.
func (a HotpathAlloc) checkBody(prog *Program, body *ast.BlockStmt, pkg *Package, dispatch dispatchTable, root string) ([]Diagnostic, []string) {
	var diags []Diagnostic
	var callees []string
	info := pkg.Info
	exemptRanges := append(panicArgRanges(body, info), coldErrRanges(body, info)...)
	inPanic := func(n ast.Node) bool {
		for _, r := range exemptRanges {
			if r.pos <= n.Pos() && n.End() <= r.end {
				return true
			}
		}
		return false
	}
	report := func(n ast.Node, format string, args ...any) {
		pos := prog.Fset.Position(n.Pos())
		msg := fmt.Sprintf(format, args...)
		diags = append(diags, Diagnostic{
			Pos:      pos,
			Analyzer: a.Name(),
			Message:  fmt.Sprintf("%s on hot path (via //repro:hotpath %s)", msg, root),
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObject(n, info)
			switch obj := obj.(type) {
			case *types.Var:
				// A call through a function variable. Package-level
				// variables must be declared dispatch points (their
				// assignees joined the walk as roots); local function
				// values are not followed, per the package policy.
				if _, isFunc := obj.Type().Underlying().(*types.Signature); !isFunc {
					break
				}
				if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
					break
				}
				if !dispatch[varKey(obj)] && !inPanic(n) {
					report(n, "call through package-level function variable %s (not //repro:dispatch)", obj.Name())
				}
			case *types.Builtin:
				if inPanic(n) {
					break
				}
				switch obj.Name() {
				case "make":
					report(n, "make allocates")
				case "new":
					report(n, "new allocates")
				case "append":
					report(n, "append may grow and allocate")
				}
			case *types.Func:
				pkg := obj.Pkg()
				if pkg == nil {
					break
				}
				if pkg.Path() == "fmt" && fmtAllocFuncs[obj.Name()] {
					if !inPanic(n) {
						report(n, "fmt.%s formats and allocates", obj.Name())
					}
					break
				}
				if pkg.Path() == prog.ModulePath || strings.HasPrefix(pkg.Path(), prog.ModulePath+"/") {
					// A //repro:ignore on the call line audits the edge.
					if !prog.Directives.Ignored(prog.Fset.Position(n.Pos()), a.Name()) {
						callees = append(callees, obj.FullName())
					}
				}
			}
		case *ast.FuncLit:
			if inPanic(n) {
				break
			}
			if caps := capturedVars(n, info, pkg.Types.Scope()); len(caps) > 0 {
				report(n, "closure captures %s by reference (may heap-allocate)", strings.Join(caps, ", "))
			}
		case *ast.CompositeLit:
			if inPanic(n) {
				break
			}
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				report(n, "slice literal allocates")
			case *types.Map:
				report(n, "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND || inPanic(n) {
				break
			}
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				report(n, "&composite literal escapes to the heap")
			}
		}
		return true
	})
	return diags, callees
}

// calleeObject resolves the object a call's Fun refers to, or nil for
// dynamic calls (function values, interface methods) and conversions.
func calleeObject(call *ast.CallExpr, info *types.Info) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

type posRange struct{ pos, end token.Pos }

// panicArgRanges collects the source ranges of panic(...) arguments;
// allocation there is the failure path, which the zero-alloc contract
// does not cover.
func panicArgRanges(body *ast.BlockStmt, info *types.Info) []posRange {
	var ranges []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if b, ok := calleeObject(call, info).(*types.Builtin); ok && b.Name() == "panic" {
			for _, arg := range call.Args {
				ranges = append(ranges, posRange{arg.Pos(), arg.End()})
			}
		}
		return true
	})
	return ranges
}

// coldErrRanges collects the body ranges of `if err != nil` (and
// `err == nil` else-arms') error blocks: code reachable only once an
// error has already occurred is off the steady-state hot path, so
// allocating the error report there — and whatever cleanup helpers it
// calls — is not a contract violation.
func coldErrRanges(body *ast.BlockStmt, info *types.Info) []posRange {
	var ranges []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		eq, isErrCond := errNilCond(ifs.Cond, info)
		if !isErrCond {
			return true
		}
		if !eq {
			// if err != nil { cold }
			ranges = append(ranges, posRange{ifs.Body.Pos(), ifs.Body.End()})
		} else if ifs.Else != nil {
			// if err == nil { hot } else { cold }
			ranges = append(ranges, posRange{ifs.Else.Pos(), ifs.Else.End()})
		}
		return true
	})
	return ranges
}

// errNilCond matches `x == nil` / `x != nil` where x has type error;
// eq reports which comparison it is.
func errNilCond(cond ast.Expr, info *types.Info) (eq, ok bool) {
	bin, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return false, false
	}
	x, y := bin.X, bin.Y
	if isNilExpr(x, info) {
		x, y = y, x
	}
	if !isNilExpr(y, info) {
		return false, false
	}
	tv, found := info.Types[x]
	if !found || !isErrorType(tv.Type) {
		return false, false
	}
	return bin.Op == token.EQL, true
}

func isNilExpr(e ast.Expr, info *types.Info) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// capturedVars lists (in source order) the local variables a function
// literal references but does not declare — closure captures, which
// are by reference in Go. Package-level variables and struct fields
// are not captures.
func capturedVars(lit *ast.FuncLit, info *types.Info, pkgScope *types.Scope) []string {
	seen := make(map[*types.Var]bool)
	var caps []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == nil || v.Parent() == pkgScope || v.Parent().Parent() == types.Universe {
			return true // package-level or universe
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
			caps = append(caps, v)
		}
		return true
	})
	sort.Slice(caps, func(i, j int) bool { return caps[i].Pos() < caps[j].Pos() })
	names := make([]string, len(caps))
	for i, v := range caps {
		names[i] = v.Name()
	}
	return names
}
