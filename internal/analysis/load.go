package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analysis unit: a module package type-checked together
// with its in-package _test.go files, or an external _test package.
// Paths in diagnostics are slash-separated and relative to the load
// root, so output is stable regardless of where the tool runs.
type Package struct {
	Path  string // import path ("repro/internal/kernel"; "..._test" for external test units)
	Dir   string // slash-separated dir relative to the load root ("" for the root)
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program holds every analysis unit of one module plus the shared
// position table and directive index. Analyzers receive the whole
// program so cross-package passes (hot-path propagation) see the full
// call graph.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Root       string
	Pkgs       []*Package
	Directives *Directives

	graph *callGraph // built lazily by CallGraph, shared by analyzers
}

// Load parses and type-checks every package under root (skipping
// testdata, vendored, and hidden directories). modPath overrides the
// module path; when empty it is read from root's go.mod. Each package
// directory yields one unit of its non-test plus in-package test
// files, and a second unit for an external _test package if present.
// Standard-library imports are type-checked from source (stdlib-only:
// no go/packages), module imports are resolved within root.
func Load(root, modPath string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if modPath == "" {
		modPath, err = modulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, err
		}
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:     fset,
		root:     root,
		modPath:  modPath,
		dirs:     make(map[string]*dirFiles),
		base:     make(map[string]*types.Package),
		building: make(map[string]bool),
	}
	ld.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if err := ld.parseTree(); err != nil {
		return nil, err
	}
	prog := &Program{Fset: fset, ModulePath: modPath, Root: root}
	paths := make([]string, 0, len(ld.dirs))
	for p := range ld.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		df := ld.dirs[path]
		if len(df.base)+len(df.inTest) > 0 {
			pkg, err := ld.check(path, df.dir, append(append([]*ast.File{}, df.base...), df.inTest...))
			if err != nil {
				return nil, err
			}
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
		if len(df.extTest) > 0 {
			pkg, err := ld.check(path+"_test", df.dir, df.extTest)
			if err != nil {
				return nil, err
			}
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
	}
	prog.Directives = buildDirectives(prog)
	return prog, nil
}

type dirFiles struct {
	dir     string // relative, slash-separated
	base    []*ast.File
	inTest  []*ast.File
	extTest []*ast.File
}

type loader struct {
	fset     *token.FileSet
	root     string
	modPath  string
	dirs     map[string]*dirFiles // import path -> parsed files
	base     map[string]*types.Package
	building map[string]bool
	std      types.ImporterFrom
}

// parseTree walks the module, parsing every .go file with comments.
// File names recorded in the FileSet are relative to the root.
func (l *loader) parseTree() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		file, err := parser.ParseFile(l.fset, rel, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parse: %w", err)
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		if dir == "." {
			dir = ""
		}
		ipath := l.modPath
		if dir != "" {
			ipath = l.modPath + "/" + dir
		}
		df := l.dirs[ipath]
		if df == nil {
			df = &dirFiles{dir: dir}
			l.dirs[ipath] = df
		}
		switch {
		case strings.HasSuffix(file.Name.Name, "_test"):
			df.extTest = append(df.extTest, file)
		case strings.HasSuffix(rel, "_test.go"):
			df.inTest = append(df.inTest, file)
		default:
			df.base = append(df.base, file)
		}
		return nil
	})
}

// Import implements types.Importer for the type-checker: module paths
// resolve to base (non-test) packages built from source under root,
// everything else falls through to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		return l.buildBase(path)
	}
	return l.std.ImportFrom(path, dir, mode)
}

// buildBase type-checks the non-test files of a module package for the
// import graph, memoized. Test files are excluded here so that
// test-only imports cannot introduce cycles.
func (l *loader) buildBase(path string) (*types.Package, error) {
	if pkg, ok := l.base[path]; ok {
		return pkg, nil
	}
	if l.building[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	df := l.dirs[path]
	if df == nil || len(df.base) == 0 {
		return nil, fmt.Errorf("no Go source for %s under %s", path, l.root)
	}
	l.building[path] = true
	defer delete(l.building, path)
	conf := &types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, df.base, nil)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	l.base[path] = pkg
	return pkg, nil
}

// check type-checks one analysis unit with full type information.
func (l *loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
