package analysis

// LockOrder enforces two mutex invariants over the whole module:
//
//  1. A consistent acquisition order. Every time lock B is acquired
//     while lock A is held — directly, or through any module function
//     the holder calls — the pair (A, B) joins a global acquisition
//     graph. A cycle in that graph is a latent deadlock: two
//     goroutines can interleave the two orders and block each other
//     forever, which no amount of single-threaded testing surfaces.
//  2. No lock left behind. A function that calls Lock (or RLock) on a
//     mutex must also unlock it on every path out. Flow-insensitively:
//     a Lock with no matching Unlock/RUnlock on the same object
//     anywhere in the function (deferred counts) is diagnosed.
//     Lock-handoff designs, where one function locks and another
//     unlocks, are out of contract here — annotate them with
//     //repro:ignore lock-order if one ever becomes necessary.
//
// Mutex identity is the SSA-lite object key, so s.mu names the same
// lock in every method of the type, and two different fields named mu
// on different structs stay distinct. Held windows are positional:
// from the Lock call to the first later Unlock on the same key (to the
// end of the function for deferred unlocks), matching the
// straight-line lock...unlock discipline the engines use.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// LockOrder is the analyzer; see the file-level description.
type LockOrder struct{}

// Name implements Analyzer.
func (LockOrder) Name() string { return "lock-order" }

// lockEvent is one mutex operation in source order.
type lockEvent struct {
	key      token.Pos // identity of the mutex object
	label    string    // human name, e.g. "ws.mu"
	pos      token.Pos
	lock     bool // true = Lock/RLock, false = Unlock/RUnlock
	deferred bool
}

// heldWindow is a positional span during which a lock is held.
type heldWindow struct {
	key        token.Pos
	label      string
	start, end token.Pos
}

// lockEdge is "to acquired while from held".
type lockEdge struct {
	from, to   token.Pos
	fromL, toL string
	pos        token.Pos // the acquisition site that created the edge
}

// Run implements Analyzer.
func (a LockOrder) Run(prog *Program) []Diagnostic {
	g := prog.CallGraph()
	names := make([]string, 0, len(g.funcs))
	for name := range g.funcs {
		names = append(names, name)
	}
	sort.Strings(names)

	events := make(map[string][]lockEvent)
	for _, name := range names {
		events[name] = collectLockEvents(g.funcs[name])
	}

	// Transitive locksets: every lock a function may acquire, directly
	// or through module callees. Fixpoint over the call graph.
	locksets := make(map[string]map[token.Pos]string)
	for _, name := range names {
		set := make(map[token.Pos]string)
		for _, e := range events[name] {
			if e.lock {
				set[e.key] = e.label
			}
		}
		locksets[name] = set
	}
	for changed := true; changed; {
		changed = false
		for _, name := range names {
			for _, callee := range g.callees[name] {
				for k, l := range locksets[callee] {
					if _, ok := locksets[name][k]; !ok {
						locksets[name][k] = l
						changed = true
					}
				}
			}
		}
	}

	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(pos),
			Analyzer: a.Name(),
			Message:  fmt.Sprintf(format, args...),
		})
	}

	// Per-function: missing unlocks, and acquisition edges from held
	// windows (direct nested Locks and locks of called functions).
	var edges []lockEdge
	edgeSeen := make(map[[2]token.Pos]bool)
	addEdge := func(e lockEdge) {
		if e.from == e.to {
			return // recursive self-acquisition is rule 2's business
		}
		if k := [2]token.Pos{e.from, e.to}; !edgeSeen[k] {
			edgeSeen[k] = true
			edges = append(edges, e)
		}
	}
	for _, name := range names {
		fi := g.funcs[name]
		evs := events[name]
		if len(evs) == 0 && len(g.callees[name]) == 0 {
			continue
		}

		// Rule 2: every Lock needs some same-key Unlock in this function.
		unlocked := make(map[token.Pos]bool)
		for _, e := range evs {
			if !e.lock {
				unlocked[e.key] = true
			}
		}
		flagged := make(map[token.Pos]bool)
		for _, e := range evs {
			if e.lock && !unlocked[e.key] && !flagged[e.key] {
				flagged[e.key] = true
				report(e.pos, "%s locked but never unlocked in this function; every path out must release it (defer %s.Unlock())", e.label, e.label)
			}
		}

		// Held windows for rule 1.
		windows := heldWindows(fi, evs)
		for _, w := range windows {
			for _, e := range evs {
				if e.lock && w.start < e.pos && e.pos < w.end {
					addEdge(lockEdge{from: w.key, to: e.key, fromL: w.label, toL: e.label, pos: e.pos})
				}
			}
			ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || call.Pos() <= w.start || call.Pos() >= w.end {
					return true
				}
				callee := calleeName(prog, call, fi.pkg.Info)
				if callee == "" {
					return true
				}
				inner := locksets[callee]
				ks := make([]token.Pos, 0, len(inner))
				for k := range inner {
					ks = append(ks, k)
				}
				sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
				for _, k := range ks {
					addEdge(lockEdge{from: w.key, to: k, fromL: w.label, toL: inner[k], pos: call.Pos()})
				}
				return true
			})
		}
	}

	// Rule 1: report every edge that sits on a cycle.
	adj := make(map[token.Pos][]token.Pos)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reaches := func(from, to token.Pos) bool {
		seen := map[token.Pos]bool{}
		stack := []token.Pos{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })
	for _, e := range edges {
		if reaches(e.to, e.from) {
			report(e.pos, "lock order cycle: %s acquired while %s is held, but elsewhere %s is acquired under %s; pick one global order", e.toL, e.fromL, e.fromL, e.toL)
		}
	}
	return diags
}

// collectLockEvents gathers the mutex operations of one function body
// in source order. Operations inside nested function literals are
// skipped: a closure's locks run on its schedule, not the enclosing
// function's, and the closure is analyzed when it is spawned or
// invoked.
func collectLockEvents(fi *funcInfo) []lockEvent {
	info := fi.pkg.Info
	var evs []lockEvent
	var visit func(n ast.Node, deferred bool) bool
	visit = func(n ast.Node, deferred bool) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			ast.Inspect(n.Call, func(m ast.Node) bool { return visit(m, true) })
			return false
		case *ast.CallExpr:
			obj := calleeObject(n, info)
			var lock bool
			switch {
			case isMethodOn(obj, "sync", "Mutex", "Lock"),
				isMethodOn(obj, "sync", "RWMutex", "Lock"),
				isMethodOn(obj, "sync", "RWMutex", "RLock"):
				lock = true
			case isMethodOn(obj, "sync", "Mutex", "Unlock"),
				isMethodOn(obj, "sync", "RWMutex", "Unlock"),
				isMethodOn(obj, "sync", "RWMutex", "RUnlock"):
				lock = false
			default:
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base := baseObj(sel.X, info)
			if base == nil {
				return true
			}
			evs = append(evs, lockEvent{
				key:      objKey(base),
				label:    exprLabel(sel.X),
				pos:      n.Pos(),
				lock:     lock,
				deferred: deferred,
			})
		}
		return true
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool { return visit(n, false) })
	sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// heldWindows derives the positional spans during which each lock is
// held: Lock to the first later non-deferred Unlock on the same key,
// or to the end of the body when the unlock is deferred (or missing).
func heldWindows(fi *funcInfo, evs []lockEvent) []heldWindow {
	var ws []heldWindow
	for i, e := range evs {
		if !e.lock {
			continue
		}
		end := fi.decl.Body.End()
		for _, u := range evs[i+1:] {
			if !u.lock && u.key == e.key && !u.deferred {
				end = u.pos
				break
			}
		}
		ws = append(ws, heldWindow{key: e.key, label: e.label, start: e.pos, end: end})
	}
	return ws
}

// exprLabel renders a short human-readable name for a mutex expression
// (ws.mu, mu, s.state.mu).
func exprLabel(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprLabel(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprLabel(e.X)
	case *ast.UnaryExpr:
		return exprLabel(e.X)
	case *ast.IndexExpr:
		return exprLabel(e.X) + "[...]"
	default:
		return "mutex"
	}
}
