package analysis

// ssa.go is the per-function half of the SSA-lite dataflow layer: a
// flow-insensitive def-use index over go/types objects. It does not
// build real SSA form — there is no dominance, no phi placement — but
// it answers the two questions the concurrency analyzers ask of a
// function body:
//
//  1. which expressions were ever assigned to this variable
//     (defUse.sources: value provenance, e.g. "this file handle came
//     from os.Open"), and
//  2. which program object does this l-value expression ultimately
//     name (baseObj: `ws.bufs[c][lo:hi]` -> the field `bufs`).
//
// Objects are unified across analysis units by declaration position
// (objKey): the loader type-checks every unit against one shared
// FileSet, so the *types.Var a base package's import graph creates for
// a field or parameter carries the same token.Pos as the one the
// defining unit creates, even though the objects differ. That single
// invariant is what lets the interprocedural passes (callgraph.go)
// match a channel sent to a callee against the callee's parameter
// without a whole-program SSA builder.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// objKey is the cross-unit identity of a types.Object: its declaration
// position in the shared FileSet. token.NoPos (objects without source,
// e.g. universe members) never matches anything.
func objKey(obj types.Object) token.Pos {
	if obj == nil {
		return token.NoPos
	}
	return obj.Pos()
}

// baseObj resolves the object an l-value or channel expression
// ultimately names, peeling index, slice, star, parens and &:
// `ws.bufs[c][lo:hi]` yields the field `bufs`, `(*p).ch` the field
// `ch`, a bare identifier its variable. Calls, literals and receive
// expressions have no stable base and yield nil.
func baseObj(e ast.Expr, info *types.Info) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			return info.Uses[x.Sel]
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// baseVar is baseObj narrowed to variables (fields, params, locals,
// package-level vars).
func baseVar(e ast.Expr, info *types.Info) *types.Var {
	v, _ := baseObj(e, info).(*types.Var)
	return v
}

// isNamedType reports whether t (after pointer indirection) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isMethodOn reports whether obj is the named method on (a pointer to)
// the named type: isMethodOn(o, "sync", "WaitGroup", "Wait").
func isMethodOn(obj types.Object, pkgPath, typeName, method string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedType(sig.Recv().Type(), pkgPath, typeName)
}

// defUse is the flow-insensitive def-use index of one function body:
// for each local object, every expression assigned to it anywhere in
// the function. Parameters and receivers are registered with no
// defining expression — their provenance is the caller's.
type defUse struct {
	info *types.Info
	defs map[types.Object][]ast.Expr
	prm  map[types.Object]bool // parameters and receivers
}

// buildDefUse indexes fd's body (which must be non-nil).
func buildDefUse(fd *ast.FuncDecl, info *types.Info) *defUse {
	du := &defUse{
		info: info,
		defs: make(map[types.Object][]ast.Expr),
		prm:  make(map[types.Object]bool),
	}
	addParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					du.prm[obj] = true
				}
			}
		}
	}
	addParams(fd.Recv)
	addParams(fd.Type.Params)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		du.defs[obj] = append(du.defs[obj], rhs)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			} else if len(n.Rhs) == 1 {
				// Multi-value: every LHS is defined by the one call.
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					record(name, n.Values[i])
				} else if len(n.Values) == 1 {
					record(name, n.Values[0])
				}
			}
		case *ast.RangeStmt:
			// A range-derived value's provenance is the ranged operand
			// (approximate, but exactly what channel aliasing needs:
			// `for _, ch := range n.chans[r]` makes ch an alias of the
			// chans field).
			if n.Value != nil {
				record(n.Value, n.X)
			}
			if n.Key != nil && n.Value == nil {
				// range over a channel binds the element to Key.
				if _, ok := du.info.Types[n.X].Type.Underlying().(*types.Chan); ok {
					record(n.Key, n.X)
				}
			}
		}
		return true
	})
	return du
}

// sources flattens an expression to its value sources, chasing local
// variables through every definition recorded for them (bounded,
// cycle-safe). A parameter, an unindexed object, or a non-identifier
// expression is its own source. Slice and index operations are peeled:
// the source of `f[i]` includes the sources of `f`.
func (du *defUse) sources(e ast.Expr) []ast.Expr {
	var out []ast.Expr
	seen := make(map[types.Object]bool)
	var walk func(ast.Expr, int)
	walk = func(e ast.Expr, depth int) {
		if e == nil || depth > 8 {
			return
		}
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := du.info.Uses[x]
			if obj == nil {
				obj = du.info.Defs[x]
			}
			if obj == nil || seen[obj] {
				return
			}
			seen[obj] = true
			defs := du.defs[obj]
			if len(defs) == 0 {
				out = append(out, x) // parameter or untracked: terminal
				return
			}
			for _, d := range defs {
				walk(d, depth+1)
			}
		case *ast.IndexExpr:
			walk(x.X, depth+1)
		case *ast.SliceExpr:
			walk(x.X, depth+1)
		case *ast.StarExpr:
			walk(x.X, depth+1)
		default:
			out = append(out, e)
		}
	}
	walk(e, 0)
	return out
}

// calleePath returns the package path and name of a call's static
// callee ("os", "Open"), or ok=false for dynamic calls and methods.
func calleePath(call *ast.CallExpr, info *types.Info) (pkgPath, name string, ok bool) {
	fn, _ := calleeObject(call, info).(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}
