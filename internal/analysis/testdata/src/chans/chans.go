// Package chans exercises the channel-discipline analyzer: sends need
// a reachable receiver, a channel is closed at exactly one site, and
// only the owner — the maker, or a method of the type holding the
// field — closes.
package chans

// SendNoReceiver makes a channel and sends with no receive anywhere
// in the call graph: flagged at the send.
func SendNoReceiver() {
	ch := make(chan int, 1)
	ch <- 1
}

// DoubleClose closes the same channel twice: flagged at the second
// close.
func DoubleClose() {
	ch := make(chan int, 1)
	ch <- 1
	<-ch
	close(ch)
	close(ch)
}

// CloseParam closes a channel it received from outside: flagged —
// only the owner closes.
func CloseParam(ch chan int) {
	close(ch)
}

// OwnerClose is the sanctioned shape: the maker sends, closes once,
// and the consumer drains. Allowed.
func OwnerClose(n int) int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	s := 0
	for v := range ch {
		s += v
	}
	return s
}

// Net owns its link channel as a field; methods of the owning type
// may close it.
type Net struct {
	links chan int
}

func (nt *Net) init(n int) {
	nt.links = make(chan int, n)
}

// Push and Pop give the field sends and receives.
func (nt *Net) Push(v int) { nt.links <- v }

// Pop receives from the owned channel.
func (nt *Net) Pop() int { return <-nt.links }

// Shutdown closes from a method of the owning type: allowed.
func (nt *Net) Shutdown() { close(nt.links) }

// Relay owns out, but a free function closes it.
type Relay struct {
	out chan int
}

func (r *Relay) init(n int) {
	r.out = make(chan int, n)
}

// Get receives from the owned channel.
func (r *Relay) Get() int { return <-r.out }

// StealClose closes a channel owned by Relay from outside the owner
// scope: flagged.
func StealClose(r *Relay) {
	close(r.out)
}

// Escapes returns the channel to the caller: beyond the analysis
// horizon, so the receiver-less send is not diagnosed. Allowed.
func Escapes(n int) chan int {
	ch := make(chan int, n)
	ch <- n
	return ch
}
