// Package dispatch exercises the hotpath-alloc extensions for the
// simd-style kernel layer: //repro:dispatch function variables as
// legal hot-path call targets, propagation into their assignees
// (named functions and bind-shim literals alike), bodyless assembly
// stubs as legal callees, and the diagnostic for calls through
// unmarked package-level function variables.
package dispatch

// Axpy is a sanctioned dispatch point; AxpyGeneric joins the hot
// walk through this initializer.
//
//repro:dispatch
var Axpy func(c, a []float64, w float64) = AxpyGeneric

// rogue is NOT a dispatch point, so hot-path calls through it are
// diagnosed.
var rogue func(n int) []int = NotHot

// NotHot allocates, but only joins the hot walk if assigned to a
// marked dispatch variable — rogue is unmarked, so this stays silent.
func NotHot(n int) []int {
	return make([]int, n)
}

// AxpyGeneric allocates — caught because it is assigned to Axpy,
// even though nothing calls it by name.
func AxpyGeneric(c, a []float64, w float64) {
	tmp := make([]float64, len(c))
	for i := range c {
		c[i] += w * a[i]
		_ = tmp
	}
}

// stub has no body, like a //go:noescape assembly stub: a legal
// hot-path callee with nothing to check.
func stub(c, a []float64, w float64)

func bind() {
	// A bind-shim literal assigned to a dispatch variable is hot: the
	// append inside is caught.
	Axpy = func(c, a []float64, w float64) {
		c = append(c, 0)
		stub(c, a, w)
	}
}

// Hot calls through the dispatch variable (legal), the stub (legal),
// and the rogue variable (diagnosed).
//
//repro:hotpath
func Hot(c, a []float64) {
	Axpy(c, a, 2)
	stub(c, a, 2)
	_ = rogue(len(c))
}
