// Package errs exercises the errcheck-lite analyzer: bare, deferred,
// and goroutine-launched calls that drop an error return are flagged;
// explicit discards, handled errors, allowlisted best-effort writers,
// and suppressed lines are not.
package errs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error {
	return errors.New("boom")
}

func valueAndError() (int, error) {
	return 0, errors.New("boom")
}

func Bare() {
	mayFail()
	valueAndError()
}

func Deferred(f *os.File) {
	defer f.Close()
}

func Launched() {
	go mayFail()
}

func Explicit() error {
	_ = mayFail()
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

func Allowlisted(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("best-effort stdout")
	fmt.Fprintf(os.Stderr, "best-effort stderr\n")
	buf.WriteString("in-memory buffer never errors")
	sb.WriteString("same")
}

func Suppressed() {
	mayFail() //repro:ignore errcheck-lite best-effort cleanup
}
