// Package errs exercises the errcheck-lite analyzer: bare, deferred,
// and goroutine-launched calls that drop an error return are flagged;
// explicit discards, handled errors, allowlisted best-effort writers,
// and suppressed lines are not.
package errs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error {
	return errors.New("boom")
}

func valueAndError() (int, error) {
	return 0, errors.New("boom")
}

func Bare() {
	mayFail()
	valueAndError()
}

// Deferred drops Close on a handle of unknown provenance (a
// parameter): flagged — it may buffer writes.
func Deferred(f *os.File) {
	defer f.Close()
}

// DeferredWritable drops Close on a handle it created for writing:
// flagged — buffered writes surface their errors at Close.
func DeferredWritable(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

// DeferredReadOnly drops Close on an os.Open handle: allowed —
// closing a read-only file cannot lose data.
func DeferredReadOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

// DeferredBestEffort audits the discard with a directive: allowed.
func DeferredBestEffort(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() //repro:ignore errcheck-lite trace file closed at exit; loss is acceptable
	return nil
}

// DeferredBestEffortDirective uses the dedicated //repro:besteffort
// verb instead of a plain ignore: allowed.
func DeferredBestEffortDirective(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//repro:besteffort scratch output; a lost close error only drops telemetry
	defer f.Close()
	return nil
}

func Launched() {
	//repro:ignore goroutine-leak fixture exercises the dropped error, not the join
	go mayFail()
}

func Explicit() error {
	_ = mayFail()
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

func Allowlisted(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("best-effort stdout")
	fmt.Fprintf(os.Stderr, "best-effort stderr\n")
	buf.WriteString("in-memory buffer never errors")
	sb.WriteString("same")
}

func Suppressed() {
	mayFail() //repro:ignore errcheck-lite best-effort cleanup
}
