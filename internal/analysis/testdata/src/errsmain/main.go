// Command errsmain exercises the errcheck-lite main-package exemption:
// main and init may drop errors (process exit is the handler), helper
// functions may not.
package main

import "errors"

func mayFail() error {
	return errors.New("boom")
}

func init() {
	mayFail() // exempt: init of a main package
}

func main() {
	mayFail() // exempt: main of a main package
	helper()
}

func helper() {
	mayFail()
}
