// Package floats exercises the float-eq analyzer: raw equality on
// floats, float arrays, and float-bearing structs is flagged; the NaN
// idiom, integer comparisons, and //repro:bitwise sites are not.
package floats

type pair struct{ a, b float64 }

func Bad(a, b float64) bool {
	return a == b
}

func BadNeq(a, b float64) bool {
	return a != b
}

func BadArray(a, b [2]float64) bool {
	return a == b
}

func BadStruct(a, b pair) bool {
	return a != b
}

func NaN(a float64) bool {
	return a != a // the NaN idiom is always allowed
}

func Ints(a, b int) bool {
	return a == b
}

func ZeroGuard(a float64) bool {
	return a == 0 //repro:bitwise exact-zero sentinel
}

// BitwiseFunc is sanctioned wholesale by its doc directive.
//
//repro:bitwise
func BitwiseFunc(a, b float64) bool {
	return a == b
}

func Suppressed(a, b float64) bool {
	return a == b //repro:ignore float-eq legacy comparison pending rework
}
