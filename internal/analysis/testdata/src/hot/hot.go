// Package hot exercises the hotpath-alloc analyzer: every class of
// forbidden allocation, transitive propagation into callees, the
// panic-argument exemption, line- and function-level suppressions, and
// edge cutting.
package hot

import (
	"errors"
	"fmt"
)

type point struct{ x, y float64 }

//repro:hotpath
func Hot(dst []float64, n int) []float64 {
	buf := make([]float64, n)
	dst = append(dst, 1)
	p := new(point)
	_ = p
	m := map[int]int{1: 2}
	_ = m
	sl := []int{1, 2}
	_ = sl
	pt := &point{1, 2}
	_ = pt
	val := point{3, 4} // value composite literal: allowed
	_ = val
	s := fmt.Sprintf("%d", n)
	_ = s
	f := func() { dst[0] = buf[0] }
	f()
	helper(dst)
	audited(n)
	cold(n) //repro:ignore hotpath-alloc edge audited: cold is off the steady-state path
	if n < 0 {
		panic(fmt.Sprintf("hot: bad n %d", n)) // failure path: exempt
	}
	//repro:ignore hotpath-alloc grow-only warm-up allocation
	suppressed := make([]float64, n)
	return suppressed
}

// helper is reached transitively from Hot, so its body is hot too.
func helper(x []float64) {
	_ = append(x, 2)
}

// ColdErrBlock allocates only inside error-handling blocks, which are
// off the steady-state path: allowed. The else-arm of an err == nil
// test is cold for the same reason.
//
//repro:hotpath
func ColdErrBlock(xs []float64) (float64, error) {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	err := validate(s)
	if err != nil {
		return 0, fmt.Errorf("cold: bad sum %f: %w", s, err)
	}
	if err == nil {
		s *= 2
	} else {
		msg := make([]byte, 64)
		_ = msg
	}
	return s, nil
}

// WarmAlloc still allocates on the success path next to an error
// check: the make outside the cold block stays flagged.
//
//repro:hotpath
func WarmAlloc(xs []float64) ([]float64, error) {
	if err := validate(float64(len(xs))); err != nil {
		return nil, err
	}
	out := make([]float64, len(xs))
	copy(out, xs)
	return out, nil
}

var errNegative = errors.New("negative sum")

// validate is hot-reachable, so it must not allocate outside cold
// blocks; the sentinel error is built at package init.
func validate(s float64) error {
	if s < 0 {
		return errNegative
	}
	return nil
}

// audited is reached from Hot but its function-level suppression marks
// it reviewed: no diagnostics, no further propagation.
//
//repro:ignore hotpath-alloc audited: bookkeeping only
func audited(n int) {
	_ = make([]int, n)
}

// cold allocates, but the only call edge into it is suppressed.
func cold(n int) []int {
	return make([]int, n)
}

// NotHot is never reached from a //repro:hotpath root.
func NotHot() []int {
	return make([]int, 1)
}
