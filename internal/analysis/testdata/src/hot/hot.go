// Package hot exercises the hotpath-alloc analyzer: every class of
// forbidden allocation, transitive propagation into callees, the
// panic-argument exemption, line- and function-level suppressions, and
// edge cutting.
package hot

import "fmt"

type point struct{ x, y float64 }

//repro:hotpath
func Hot(dst []float64, n int) []float64 {
	buf := make([]float64, n)
	dst = append(dst, 1)
	p := new(point)
	_ = p
	m := map[int]int{1: 2}
	_ = m
	sl := []int{1, 2}
	_ = sl
	pt := &point{1, 2}
	_ = pt
	val := point{3, 4} // value composite literal: allowed
	_ = val
	s := fmt.Sprintf("%d", n)
	_ = s
	f := func() { dst[0] = buf[0] }
	f()
	helper(dst)
	audited(n)
	cold(n) //repro:ignore hotpath-alloc edge audited: cold is off the steady-state path
	if n < 0 {
		panic(fmt.Sprintf("hot: bad n %d", n)) // failure path: exempt
	}
	//repro:ignore hotpath-alloc grow-only warm-up allocation
	suppressed := make([]float64, n)
	return suppressed
}

// helper is reached transitively from Hot, so its body is hot too.
func helper(x []float64) {
	_ = append(x, 2)
}

// audited is reached from Hot but its function-level suppression marks
// it reviewed: no diagnostics, no further propagation.
//
//repro:ignore hotpath-alloc audited: bookkeeping only
func audited(n int) {
	_ = make([]int, n)
}

// cold allocates, but the only call edge into it is suppressed.
func cold(n int) []int {
	return make([]int, n)
}

// NotHot is never reached from a //repro:hotpath root.
func NotHot() []int {
	return make([]int, 1)
}
