// Package kernel exercises the determinism analyzer's map-range and
// clock/randomness rules inside an engine package (the directory name
// places it in the default engine set) and doubles as the ReduceTree
// provider for the fix/par fixture.
package kernel

import (
	"math/rand"
	"sort"
	"time"
)

// ReduceTree stands in for the engine's worker-count-independent
// merge; the determinism analyzer matches it by name and package.
func ReduceTree(bufs [][]float64, workers int) {
	for _, b := range bufs[1:] {
		for i, v := range b {
			bufs[0][i] += v
		}
	}
}

// MapAccum sums in map-iteration order: order-dependent accumulation.
func MapAccum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// SortedAccum is the sanctioned idiom: collect keys, sort, accumulate.
func SortedAccum(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// Stamp reads the wall clock inside an engine package.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter draws from the process-global generator.
func Jitter() float64 {
	return rand.Float64()
}

// Seeded is the sanctioned constructor pattern, and methods on the
// seeded generator are deterministic given the seed.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Suppressed documents a deliberate exception.
func Suppressed() int64 {
	return time.Now().Unix() //repro:ignore determinism wall-clock used for logging only
}
