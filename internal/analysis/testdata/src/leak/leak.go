// Package leak exercises the goroutine-leak analyzer: every go
// statement must reach a join the spawner (or a function it calls)
// can see — a WaitGroup.Wait or a channel receive observing the
// goroutine's completion signal. Parked pools are sanctioned with
// //repro:worker-pool; everything else must join.
package leak

import "sync"

func work(out []float64) {
	for i := range out {
		out[i]++
	}
}

// LeakPlain spawns a named function that signals nothing: flagged.
func LeakPlain(out []float64) {
	go work(out)
}

// LeakClosure spawns a closure that signals nothing: flagged.
func LeakClosure(out []float64) {
	go func() {
		work(out)
	}()
}

// JoinWaitGroup joins through a WaitGroup in the same function:
// allowed.
func JoinWaitGroup(parts [][]float64) {
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p []float64) {
			defer wg.Done()
			work(p)
		}(p)
	}
	wg.Wait()
}

// JoinChannel joins through a channel receive: allowed.
func JoinChannel(p []float64) float64 {
	done := make(chan float64, 1)
	go func() {
		work(p)
		done <- p[0]
	}()
	return <-done
}

func waitAll(wg *sync.WaitGroup) {
	wg.Wait()
}

// JoinViaHelper hands the WaitGroup to a helper that waits; the join
// is found through the call graph's argument-to-parameter aliasing:
// allowed.
func JoinViaHelper(parts [][]float64) {
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p []float64) {
			defer wg.Done()
			work(p)
		}(p)
	}
	waitAll(&wg)
}

var tokens chan int

// StartPool parks workers on the token channel for the process
// lifetime; the directive audits the deliberate non-join.
func StartPool(n int) {
	if tokens == nil {
		tokens = make(chan int, n)
	}
	for i := 0; i < n; i++ {
		//repro:worker-pool parked fixture pool; woken by tokens, lives with the process
		go func() {
			for range tokens {
			}
		}()
	}
}
