// Package locks exercises the lock-order analyzer: mutex acquisition
// must follow one global order (cycles are latent deadlocks), and a
// function that locks must unlock on every path out.
package locks

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// LockAB acquires A then B.
func LockAB() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock()
	defer muB.Unlock()
}

// LockBA acquires B then A — the reverse of LockAB, so both nested
// acquisitions sit on a cycle: flagged.
func LockBA() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock()
	defer muA.Unlock()
}

// Forgotten locks and never unlocks in this function: flagged.
func Forgotten(mu *sync.Mutex, n *int) {
	mu.Lock()
	*n++
}

var (
	muC sync.Mutex
	muD sync.Mutex
)

// ConsistentDirect takes C before D.
func ConsistentDirect() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

func lockD() {
	muD.Lock()
	defer muD.Unlock()
}

// ConsistentTransitive takes C and then acquires D through a call;
// the transitive edge agrees with ConsistentDirect's order, so no
// cycle: allowed.
func ConsistentTransitive() {
	muC.Lock()
	defer muC.Unlock()
	lockD()
}

var muE sync.Mutex

// unlockE is Handoff's paired release.
func unlockE() {
	muE.Unlock()
}

// Handoff locks here and releases in the paired helper — a
// cross-function handoff outside the analyzer's contract, audited
// with a directive. Allowed.
//
//repro:ignore lock-order paired with unlockE; handoff audited by the fixture
func Handoff() {
	muE.Lock()
}
