// Package par exercises the determinism analyzer's concurrency rules:
// compound assignment into captured state is flagged unless the
// enclosing function merges private buffers through kernel.ReduceTree,
// accumulation inside multi-case selects is order-randomized, and
// lock-free float accumulation through a CAS retry loop commits in
// completion order. The import also exercises module-path resolution
// in the fixture loader.
package par

import (
	"math"
	"sync"
	"sync/atomic"

	"fix/kernel"
)

// BadShared races goroutines into one shared accumulator.
func BadShared(out []float64, parts [][]float64) {
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p []float64) {
			defer wg.Done()
			for i, v := range p {
				out[i] += v
			}
		}(p)
	}
	wg.Wait()
}

// BadScalar accumulates into a captured scalar.
func BadScalar(parts []float64) float64 {
	var s float64
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p float64) {
			defer wg.Done()
			s += p
		}(p)
	}
	wg.Wait()
	return s
}

// GoodReduce accumulates into private buffers and merges with the
// sanctioned tree reduction: allowed.
func GoodReduce(parts [][]float64, n int) []float64 {
	bufs := make([][]float64, len(parts))
	var wg sync.WaitGroup
	for w := range parts {
		bufs[w] = make([]float64, n)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, v := range parts[w] {
				bufs[w][i] += v
			}
		}(w)
	}
	wg.Wait()
	kernel.ReduceTree(bufs, len(bufs))
	return bufs[0]
}

// BadSelect accumulates inside a select with two communication cases:
// flagged in both case bodies — when both channels are ready the
// runtime picks at random, so the accumulation order differs run to
// run.
func BadSelect(a, b chan float64, rounds int) float64 {
	var s float64
	for i := 0; i < rounds; i++ {
		select {
		case v := <-a:
			s += v
		case v := <-b:
			s += v
		}
	}
	return s
}

// GoodSelect drains a single channel; one communication case (plus
// default) has a fixed order: allowed.
func GoodSelect(a chan float64) float64 {
	var s float64
	for {
		select {
		case v, ok := <-a:
			if !ok {
				return s
			}
			s += v
		default:
			return s
		}
	}
}

// BadAtomicFloat accumulates a float through a compare-and-swap retry
// loop: flagged — contributions commit in completion order, which is
// neither run-to-run nor worker-count reproducible.
func BadAtomicFloat(acc *uint64, v float64) {
	for {
		old := atomic.LoadUint64(acc)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(acc, old, next) {
			return
		}
	}
}

// GoodAtomicCASInt retries an integer CAS (a queue cursor): integer
// atomics are exact regardless of commit order, allowed.
func GoodAtomicCASInt(cur *uint64) uint64 {
	for {
		old := atomic.LoadUint64(cur)
		if atomic.CompareAndSwapUint64(cur, old, old+1) {
			return old + 1
		}
	}
}

// GoodDisjoint writes disjoint plain assignments: allowed.
func GoodDisjoint(out []float64, parts []float64) {
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[w] = parts[w] * 2
		}(w)
	}
	wg.Wait()
}
