// Package par exercises the determinism analyzer's goroutine rule:
// compound assignment into captured state is flagged unless the
// enclosing function merges private buffers through kernel.ReduceTree.
// The import also exercises module-path resolution in the fixture
// loader.
package par

import (
	"sync"

	"fix/kernel"
)

// BadShared races goroutines into one shared accumulator.
func BadShared(out []float64, parts [][]float64) {
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p []float64) {
			defer wg.Done()
			for i, v := range p {
				out[i] += v
			}
		}(p)
	}
	wg.Wait()
}

// BadScalar accumulates into a captured scalar.
func BadScalar(parts []float64) float64 {
	var s float64
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p float64) {
			defer wg.Done()
			s += p
		}(p)
	}
	wg.Wait()
	return s
}

// GoodReduce accumulates into private buffers and merges with the
// sanctioned tree reduction: allowed.
func GoodReduce(parts [][]float64, n int) []float64 {
	bufs := make([][]float64, len(parts))
	var wg sync.WaitGroup
	for w := range parts {
		bufs[w] = make([]float64, n)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, v := range parts[w] {
				bufs[w][i] += v
			}
		}(w)
	}
	wg.Wait()
	kernel.ReduceTree(bufs, len(bufs))
	return bufs[0]
}

// GoodDisjoint writes disjoint plain assignments: allowed.
func GoodDisjoint(out []float64, parts []float64) {
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[w] = parts[w] * 2
		}(w)
	}
	wg.Wait()
}
