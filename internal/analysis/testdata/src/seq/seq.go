// Package seq exercises the workspace-aliasing analyzer. The package
// deliberately borrows an engine-package name: pool types called
// Workspace are only discovered in engine packages, and the analyzer
// only walks hot-path-reachable functions, so every fixture function
// below is a //repro:hotpath root.
package seq

// Workspace is the pooled scratch arena; tileState is pulled into the
// pool-type set transitively through the field.
type Workspace struct {
	buf  []float64
	tile tileState
}

type tileState struct {
	idx []int32
}

var sink []float64

// StoreGlobal parks a pooled slice in a package-level variable:
// flagged — the pool recycles the backing array under it.
//
//repro:hotpath
func StoreGlobal(ws *Workspace, n int) {
	s := ws.buf[:n]
	sink = s
}

// ReturnSlice hands a pooled slice across the exported API boundary:
// flagged.
//
//repro:hotpath
func ReturnSlice(ws *Workspace, n int) []float64 {
	return ws.buf[:n]
}

// CaptureLeak lets an unjoined goroutine hold a slice reached through
// the transitive pool type: flagged (and the leak itself is flagged by
// goroutine-leak).
//
//repro:hotpath
func CaptureLeak(ws *Workspace) {
	t := ws.tile.idx
	//repro:ignore hotpath-alloc fixture closure; the capture is the point
	go func() {
		_ = t
	}()
}

// grow is the sanctioned grow-in-place primitive: an unexported
// helper may return its slice parameter — the result flows back into
// the pool at the call site.
//
//repro:ignore hotpath-alloc grow-only workspace primitive
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// GrowInPlace stores the grown slice back into the pool field:
// allowed.
//
//repro:hotpath
func GrowInPlace(ws *Workspace, n int) {
	ws.buf = grow(ws.buf, n)
}

// JoinedBorrow lends a pooled slice to a goroutine that provably
// joins before the frame returns: allowed.
//
//repro:hotpath
func JoinedBorrow(ws *Workspace, n int) float64 {
	s := ws.buf[:n]
	done := make(chan float64, 1) //repro:ignore hotpath-alloc fixture scaffolding
	//repro:ignore hotpath-alloc fixture closure; the borrow is the point
	go func() {
		t := 0.0
		for _, v := range s {
			t += v
		}
		done <- t
	}()
	return <-done
}
