// Package wg exercises the waitgroup-misuse analyzer: Add must
// happen-before both the spawn and the Wait, and a WaitGroup must
// never be copied.
package wg

import "sync"

func step(v float64) float64 {
	return v * 2
}

// AddInsideGoroutine defers the Add to the spawned goroutine: flagged
// — Wait can run before the goroutine is scheduled and see a zero
// counter.
func AddInsideGoroutine(parts []float64) {
	var wg sync.WaitGroup
	for _, p := range parts {
		go func(p float64) {
			wg.Add(1)
			defer wg.Done()
			step(p)
		}(p)
	}
	wg.Wait()
}

// AddAfterWait reuses the group after its Wait: flagged at the second
// Add — the engines' discipline is all Adds, then spawns, then one
// Wait.
func AddAfterWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// ByValue receives the WaitGroup by value: flagged — Done decrements
// a copy and the caller's Wait never returns.
func ByValue(wg sync.WaitGroup) {
	wg.Done()
}

// CopyAssign duplicates a WaitGroup by assignment: flagged.
func CopyAssign() {
	var a sync.WaitGroup
	b := a
	b.Add(1)
	b.Done()
}

func worker(wg *sync.WaitGroup, p []float64) {
	defer wg.Done()
	for i := range p {
		p[i] = step(p[i])
	}
}

// Good follows the contract: Add for every spawn strictly before the
// spawns, a shared *sync.WaitGroup, one Wait. Allowed.
func Good(parts [][]float64) {
	var wg sync.WaitGroup
	wg.Add(len(parts))
	for _, p := range parts {
		go worker(&wg, p)
	}
	wg.Wait()
}
