package analysis

// WaitGroupMisuse catches the three classic sync.WaitGroup mistakes
// that survive testing at low worker counts and explode later:
//
//  1. Add inside the spawned goroutine — Wait can run before the
//     goroutine is scheduled, see a zero counter, and return early
//     (Add must happen-before both the spawn and the Wait);
//  2. Wait positioned before a later Add on the same WaitGroup inside
//     one function — flow-insensitively approximated by source order,
//     which is exactly the discipline the engines follow (all Adds,
//     then spawn, then one Wait);
//  3. WaitGroup copies — a by-value parameter or a plain assignment
//     copies the counter, so Done decrements a ghost (go vet's
//     copylocks catches some of these; this rule keeps the invariant
//     inside repolint's single report and covers fixtures go vet
//     never compiles).
//
// WaitGroup identity is the SSA-lite object key, so field-held groups
// (ws.wg) match across methods of the same type.

import (
	"go/ast"
	"go/types"
)

// WaitGroupMisuse is the analyzer; see the file-level description.
type WaitGroupMisuse struct{}

// Name implements Analyzer.
func (WaitGroupMisuse) Name() string { return "waitgroup-misuse" }

// Run implements Analyzer.
func (a WaitGroupMisuse) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = append(diags, a.checkFunc(prog, pkg, fd)...)
			}
		}
	}
	return diags
}

func (a WaitGroupMisuse) checkFunc(prog *Program, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	info := pkg.Info
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(n.Pos()),
			Analyzer: a.Name(),
			Message:  msg,
		})
	}

	// Rule 3a: by-value WaitGroup parameters.
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if t, ok := info.Types[field.Type]; ok && isNamedType(t.Type, "sync", "WaitGroup") {
				if _, isPtr := t.Type.(*types.Pointer); !isPtr {
					report(field.Type, "sync.WaitGroup passed by value; Done on the copy never releases the caller's Wait — pass *sync.WaitGroup")
				}
			}
		}
	}

	// Collect go-closure ranges so rule-2 bookkeeping can tell spawner
	// code from goroutine code, and flag Adds inside goroutines.
	type span struct{ pos, end int }
	var goRanges []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			goRanges = append(goRanges, span{int(lit.Body.Pos()), int(lit.Body.End())})
		}
		return true
	})
	inGo := func(n ast.Node) bool {
		for _, r := range goRanges {
			if r.pos <= int(n.Pos()) && int(n.End()) <= r.end {
				return true
			}
		}
		return false
	}

	type ev struct {
		node ast.Node
		key  int
	}
	var adds, waits []ev
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObject(n, info)
			sel, _ := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if sel == nil {
				return true
			}
			base := baseObj(sel.X, info)
			if base == nil {
				return true
			}
			key := int(objKey(base))
			switch {
			case isMethodOn(obj, "sync", "WaitGroup", "Add"):
				if inGo(n) {
					report(n, "WaitGroup.Add inside the spawned goroutine; Wait can observe a zero counter and return early — Add before the go statement")
				} else {
					adds = append(adds, ev{n, key})
				}
			case isMethodOn(obj, "sync", "WaitGroup", "Wait"):
				waits = append(waits, ev{n, key})
			}
		case *ast.AssignStmt:
			// Rule 3b: value copies via assignment.
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for _, rhs := range n.Rhs {
				r := ast.Unparen(rhs)
				switch r.(type) {
				case *ast.Ident, *ast.SelectorExpr:
				default:
					continue
				}
				if t, ok := info.Types[r]; ok && isNamedType(t.Type, "sync", "WaitGroup") {
					if _, isPtr := t.Type.(*types.Pointer); !isPtr {
						report(n, "sync.WaitGroup copied by assignment; the copy's counter is disconnected — share a *sync.WaitGroup")
					}
				}
			}
		}
		return true
	})

	// Rule 2: an Add textually after a Wait on the same WaitGroup.
	for _, ad := range adds {
		for _, w := range waits {
			if ad.key == w.key && ad.node.Pos() > w.node.Pos() {
				report(ad.node, "WaitGroup.Add after Wait on the same WaitGroup in this function; Wait may have already returned — Add strictly before Wait")
				break
			}
		}
	}
	return diags
}
