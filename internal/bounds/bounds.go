// Package bounds evaluates the paper's communication lower bounds
// (Section IV) as closed-form functions of the problem and machine
// parameters, so measured communication from the simulators can be
// compared against them.
//
// All bounds are returned as float64 word counts; negative values mean
// the bound is vacuous for those parameters (the paper's expressions
// can go negative when M or the per-processor data are large).
package bounds

import (
	"fmt"
	"math"
)

// Problem describes a dense MTTKRP instance: an N-way tensor of the
// given dimensions and factor matrices with R columns.
type Problem struct {
	Dims []int
	R    int
}

// N returns the tensor order.
func (p Problem) N() int { return len(p.Dims) }

// I returns the number of tensor elements as a float (dimensions in
// the paper's experiments reach 2^45, beyond what we can or should
// materialize).
func (p Problem) I() float64 {
	out := 1.0
	for _, d := range p.Dims {
		out *= float64(d)
	}
	return out
}

// SumIkR returns sum_k I_k * R, the total factor matrix entries.
func (p Problem) SumIkR() float64 {
	var s float64
	for _, d := range p.Dims {
		s += float64(d)
	}
	return s * float64(p.R)
}

// Validate panics on malformed problems.
func (p Problem) Validate() {
	if len(p.Dims) < 2 {
		panic(fmt.Sprintf("bounds: MTTKRP needs N >= 2 modes, got %d", len(p.Dims)))
	}
	for _, d := range p.Dims {
		if d < 1 {
			panic(fmt.Sprintf("bounds: non-positive dimension in %v", p.Dims))
		}
	}
	if p.R < 1 {
		panic(fmt.Sprintf("bounds: non-positive rank %d", p.R))
	}
}

// SeqMemDependent returns the memory-dependent sequential lower bound
// of Theorem 4.1, Eq. (4):
//
//	W >= N*I*R / (3^(2-1/N) * M^(1-1/N)) - M.
func SeqMemDependent(p Problem, M float64) float64 {
	p.Validate()
	N := float64(p.N())
	return N*p.I()*float64(p.R)/(math.Pow(3, 2-1/N)*math.Pow(M, 1-1/N)) - M
}

// SeqTrivial returns the input/output-size lower bound of Fact 4.1,
// Eq. (5): W >= I + sum_k I_k*R - 2M.
func SeqTrivial(p Problem, M float64) float64 {
	p.Validate()
	return p.I() + p.SumIkR() - 2*M
}

// SeqBest returns the tighter of the two sequential bounds.
func SeqBest(p Problem, M float64) float64 {
	return math.Max(SeqMemDependent(p, M), SeqTrivial(p, M))
}

// ParMemDependent returns the parallel memory-dependent bound of
// Corollary 4.1: some processor sends/receives at least
//
//	N*I*R / (3^(2-1/N) * P * M^(1-1/N)) - M.
func ParMemDependent(p Problem, M float64, P float64) float64 {
	p.Validate()
	if P < 1 {
		panic(fmt.Sprintf("bounds: P = %v < 1", P))
	}
	N := float64(p.N())
	return N*p.I()*float64(p.R)/(math.Pow(3, 2-1/N)*P*math.Pow(M, 1-1/N)) - M
}

// ParMemIndependent1 returns the Theorem 4.2 bound, Eq. (6): with each
// processor owning at most delta*sum_k(I_k R)/P factor entries and
// gamma*I/P tensor entries (gamma, delta >= 1),
//
//	W >= 2*(N*I*R/P)^(N/(2N-1)) - gamma*I/P - delta*sum_k I_k*R/P.
func ParMemIndependent1(p Problem, P, gamma, delta float64) float64 {
	p.Validate()
	checkBalance(P, gamma, delta)
	N := float64(p.N())
	expo := N / (2*N - 1)
	return 2*math.Pow(N*p.I()*float64(p.R)/P, expo) - gamma*p.I()/P - delta*p.SumIkR()/P
}

// ParMemIndependent2 returns the Theorem 4.3 bound, Eq. (7):
//
//	W >= min( sqrt(2/(3 gamma))^(N-1 exponent) ... , gamma*I/(2P) ),
//
// precisely: min( (2/(3 gamma))^((N-1)/N) * N * R * (I/P)^(1/N)
// - delta*sum_k I_k*R/P, gamma*I/(2P) ).
func ParMemIndependent2(p Problem, P, gamma, delta float64) float64 {
	p.Validate()
	checkBalance(P, gamma, delta)
	N := float64(p.N())
	caseA := math.Pow(2/(3*gamma), (N-1)/N)*N*float64(p.R)*math.Pow(p.I()/P, 1/N) - delta*p.SumIkR()/P
	caseB := gamma * p.I() / (2 * P)
	return math.Min(caseA, caseB)
}

// ParBest returns the tightest parallel memory-independent bound: the
// max of Theorems 4.2 and 4.3 (both hold under the same assumptions).
func ParBest(p Problem, P, gamma, delta float64) float64 {
	return math.Max(ParMemIndependent1(p, P, gamma, delta), ParMemIndependent2(p, P, gamma, delta))
}

// CubicalCombined returns the Corollary 4.2 bound for cubical tensors
// (I_k = I^(1/N) for all k), as the sum form the paper derives:
//
//	(N*I*R/P)^(N/(2N-1)) + N*R*(I/P)^(1/N).
//
// This is the Omega() expression with constant 1; the two terms
// dominate in complementary regimes split at NR = (I/P)^(1-1/N).
func CubicalCombined(p Problem, P float64) float64 {
	p.Validate()
	N := float64(p.N())
	I := p.I()
	R := float64(p.R)
	return math.Pow(N*I*R/P, N/(2*N-1)) + N*R*math.Pow(I/P, 1/N)
}

// RegimeThreshold returns (I/P)^(1-1/N), the NR threshold of Corollary
// 4.2: for NR above it the memory-dependent-style term dominates, and
// below it the stationary-tensor term dominates.
func RegimeThreshold(p Problem, P float64) float64 {
	N := float64(p.N())
	return math.Pow(p.I()/P, 1-1/N)
}

// LargeRankRegime reports whether NR >= (I/P)^(1-1/N), the regime in
// which Algorithm 4 (P0 > 1) is needed for optimality.
func LargeRankRegime(p Problem, P float64) bool {
	return float64(p.N())*float64(p.R) >= RegimeThreshold(p, P)
}

func checkBalance(P, gamma, delta float64) {
	if P < 1 {
		panic(fmt.Sprintf("bounds: P = %v < 1", P))
	}
	if gamma < 1 || delta < 1 {
		panic(fmt.Sprintf("bounds: balance factors gamma=%v delta=%v must be >= 1", gamma, delta))
	}
}

// Cubical constructs a cubical problem with I_k = side for all k.
func Cubical(N, side, R int) Problem {
	dims := make([]int, N)
	for i := range dims {
		dims[i] = side
	}
	return Problem{Dims: dims, R: R}
}
