package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProblemAccessors(t *testing.T) {
	p := Problem{Dims: []int{4, 5, 6}, R: 3}
	if p.N() != 3 {
		t.Fatalf("N = %d", p.N())
	}
	if p.I() != 120 {
		t.Fatalf("I = %v", p.I())
	}
	if p.SumIkR() != 45 {
		t.Fatalf("SumIkR = %v", p.SumIkR())
	}
}

func TestCubical(t *testing.T) {
	p := Cubical(3, 8, 4)
	if p.N() != 3 || p.I() != 512 || p.R != 4 {
		t.Fatalf("Cubical built %+v", p)
	}
}

func TestValidatePanics(t *testing.T) {
	for _, p := range []Problem{
		{Dims: []int{4}, R: 2},
		{Dims: []int{4, 0}, R: 2},
		{Dims: []int{4, 4}, R: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Validate(%+v) did not panic", p)
				}
			}()
			p.Validate()
		}()
	}
}

func TestSeqMemDependentHand(t *testing.T) {
	// N=3, I=2^12, R=8, M=64:
	// 3*4096*8 / (3^(5/3) * 64^(2/3)) - 64.
	p := Cubical(3, 16, 8)
	got := SeqMemDependent(p, 64)
	want := 3*4096*8/(math.Pow(3, 5.0/3)*math.Pow(64, 2.0/3)) - 64
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got <= 0 {
		t.Fatal("bound should be positive for these parameters")
	}
}

func TestSeqTrivialHand(t *testing.T) {
	p := Problem{Dims: []int{4, 5, 6}, R: 3}
	if got, want := SeqTrivial(p, 10), 120.0+45-20; got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSeqBestPicksMax(t *testing.T) {
	p := Cubical(3, 16, 8)
	for _, M := range []float64{16, 64, 256, 1024} {
		b := SeqBest(p, M)
		if b < SeqMemDependent(p, M) || b < SeqTrivial(p, M) {
			t.Fatalf("SeqBest not the max at M=%v", M)
		}
	}
}

func TestSeqBoundsMonotoneInM(t *testing.T) {
	// Both sequential bounds weaken as fast memory grows.
	p := Cubical(3, 32, 16)
	prev := math.Inf(1)
	for _, M := range []float64{8, 32, 128, 512, 2048} {
		b := SeqBest(p, M)
		if b > prev {
			t.Fatalf("bound increased with M: %v -> %v", prev, b)
		}
		prev = b
	}
}

func TestParMemDependentScalesWithP(t *testing.T) {
	p := Cubical(3, 32, 16)
	b1 := ParMemDependent(p, 64, 1)
	b4 := ParMemDependent(p, 64, 4)
	// The leading term divides by P.
	lead1 := b1 + 64
	lead4 := b4 + 64
	if math.Abs(lead1/lead4-4) > 1e-9 {
		t.Fatalf("leading term should scale 1/P: %v vs %v", lead1, lead4)
	}
}

func TestParMemIndependent1Hand(t *testing.T) {
	// Cubical N=3, I=2^15, R=2^5, P=2^6, gamma=delta=1:
	// 2*(3*I*R/P)^(3/5) - I/P - 3*I^(1/3)*R/P.
	p := Cubical(3, 32, 32)
	I := 32768.0
	got := ParMemIndependent1(p, 64, 1, 1)
	want := 2*math.Pow(3*I*32/64, 0.6) - I/64 - 3*32*32.0/64
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestParMemIndependent2TwoCases(t *testing.T) {
	p := Cubical(3, 32, 4)
	I := p.I()
	// With huge gamma the tensor case gamma*I/(2P) dominates the min's
	// other branch being tiny... verify the min is respected.
	got := ParMemIndependent2(p, 8, 1, 1)
	caseA := math.Pow(2.0/3, 2.0/3)*3*4*math.Pow(I/8, 1.0/3) - 3*32*4.0/8
	caseB := I / 16
	if math.Abs(got-math.Min(caseA, caseB)) > 1e-9 {
		t.Fatalf("got %v, want min(%v, %v)", got, caseA, caseB)
	}
}

func TestParBestPicksMax(t *testing.T) {
	p := Cubical(3, 32, 16)
	for _, P := range []float64{2, 8, 64, 512} {
		b := ParBest(p, P, 1.75, 1.75)
		if b < ParMemIndependent1(p, P, 1.75, 1.75) || b < ParMemIndependent2(p, P, 1.75, 1.75) {
			t.Fatalf("ParBest not the max at P=%v", P)
		}
	}
}

// Corollary 4.2 regime split: when NR crosses (I/P)^(1-1/N), the
// dominant term of the combined bound switches.
func TestCorollaryRegimes(t *testing.T) {
	N := 3
	side := 1 << 5
	I := math.Pow(float64(side), 3)

	// Small rank: NR << (I/P)^(2/3) -> stationary term dominates.
	small := Cubical(N, side, 1)
	P := 8.0
	if LargeRankRegime(small, P) {
		t.Fatal("R=1 should be the small-rank regime here")
	}
	comb := CubicalCombined(small, P)
	stationary := 3 * 1 * math.Pow(I/P, 1.0/3)
	if comb < stationary {
		t.Fatal("combined bound must include the stationary term")
	}

	// Large rank: crank R until the other regime engages.
	large := Cubical(N, side, 1<<14)
	if !LargeRankRegime(large, P) {
		t.Fatal("R=2^14 should be the large-rank regime here")
	}
	memTerm := math.Pow(3*I*float64(large.R)/P, 3.0/5)
	if CubicalCombined(large, P) < memTerm {
		t.Fatal("combined bound must include the memory-independent term")
	}
}

func TestRegimeThreshold(t *testing.T) {
	p := Cubical(3, 16, 4)
	// (I/P)^(2/3) with I = 4096, P = 8 -> 512^(2/3) = 64.
	if got := RegimeThreshold(p, 8); math.Abs(got-64) > 1e-9 {
		t.Fatalf("threshold = %v, want 64", got)
	}
}

// Property: all parallel bounds weaken (or stay equal) as P grows.
func TestParBoundsMonotoneInPQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		N := 2 + rng.Intn(3)
		side := 8 << rng.Intn(3)
		R := 1 << rng.Intn(6)
		p := Cubical(N, side, R)
		prev := math.Inf(1)
		for e := 0; e <= 10; e++ {
			P := math.Pow(2, float64(e))
			b := CubicalCombined(p, P)
			if b > prev*(1+1e-12) {
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Consistency with Section VI-A's Theorem 6.1 example constants: with
// delta = epsilon = 1/10 and suitable M, the combined sequential lower
// bound is within a constant of the simplified upper bound
// I + NIR/M^(1-1/N).
func TestSeqBoundsSandwichUpper(t *testing.T) {
	p := Cubical(3, 64, 16) // I = 2^18
	M := 4096.0             // M^(1/3) = 16 << I_k = 64
	lower := SeqBest(p, M)
	upper := p.I() + 3*p.I()*float64(p.R)/math.Pow(M, 2.0/3)
	if lower <= 0 {
		t.Fatal("lower bound vacuous for representative parameters")
	}
	ratio := upper / lower
	if ratio > 40 { // constant-factor gap only
		t.Fatalf("upper/lower = %v, expected a modest constant", ratio)
	}
}

func TestBalancePanics(t *testing.T) {
	p := Cubical(3, 8, 2)
	for _, f := range []func(){
		func() { ParMemIndependent1(p, 0.5, 1, 1) },
		func() { ParMemIndependent1(p, 4, 0.5, 1) },
		func() { ParMemIndependent2(p, 4, 1, 0.5) },
		func() { ParMemDependent(p, 16, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
