// Multi-TTM communication lower bounds, after Al Daas, Ballard,
// Grigori, Kumar, Rouse, "Communication Lower Bounds and Optimal
// Algorithms for Multiple Tensor-Times-Matrix Computation"
// (arXiv:2207.10437) — the follow-up the source paper's conclusion
// points to for TTM chains. The computation
//
//	Y = X x_1 A_1^T x_2 A_2^T ... x_d A_d^T
//
// has atoms indexed by (i_1..i_d, r_1..r_d); each atom touches one
// element of X, one of Y, and one of every A_j, which yields an
// HBL-style access bound: any schedule that performs F atoms while
// accessing at most v_j elements of array j needs prod_j v_j >= F^2
// (each array appears with exponent 1/2 in the tight HBL datum for
// this bipartite structure). Minimizing total accesses sum_j v_j
// subject to that product constraint and the array-size caps is the
// convex program the paper solves case-by-case; solved here exactly
// by water-filling, which reproduces the paper's per-regime closed
// forms without enumerating regimes.
package bounds

import (
	"fmt"
	"math"
	"sort"
)

// MultiTTM describes one TTM chain: an order-d tensor contracted on
// every mode except Skip against matrices A_j of shape Dims[j] x
// Ranks[j]. Skip = -1 contracts every mode (the Tucker core chain);
// Skip = k models a HOOI sweep's mode-k projection (mode k is not
// contracted, so Ranks[k] is ignored and A_k does not exist).
type MultiTTM struct {
	Dims  []int
	Ranks []int
	Skip  int
}

// D returns the tensor order.
func (p MultiTTM) D() int { return len(p.Dims) }

// Validate panics on malformed problems.
func (p MultiTTM) Validate() {
	if len(p.Dims) < 1 {
		panic("bounds: MultiTTM needs at least one mode")
	}
	if len(p.Ranks) != len(p.Dims) {
		panic(fmt.Sprintf("bounds: %d ranks for %d modes", len(p.Ranks), len(p.Dims)))
	}
	for j, d := range p.Dims {
		if d < 1 {
			panic(fmt.Sprintf("bounds: non-positive dimension in %v", p.Dims))
		}
		if j != p.Skip && p.Ranks[j] < 1 {
			panic(fmt.Sprintf("bounds: non-positive rank in %v", p.Ranks))
		}
	}
	if p.Skip != -1 && (p.Skip < 0 || p.Skip >= len(p.Dims)) {
		panic(fmt.Sprintf("bounds: skip %d out of range for order %d", p.Skip, len(p.Dims)))
	}
}

// contracted reports whether mode j has a matrix.
func (p MultiTTM) contracted(j int) bool { return j != p.Skip }

// Atoms returns the number of scalar multiplications F =
// prod_j n_j * prod_{contracted j} r_j performed by the atomic
// (non-Strassen-like) chain, as a float (the experiments' shapes
// overflow int64 composed counts long before float64 loses them).
func (p MultiTTM) Atoms() float64 {
	f := 1.0
	for j, n := range p.Dims {
		f *= float64(n)
		if p.contracted(j) {
			f *= float64(p.Ranks[j])
		}
	}
	return f
}

// InWords returns |X| = prod_j n_j.
func (p MultiTTM) InWords() float64 {
	f := 1.0
	for _, n := range p.Dims {
		f *= float64(n)
	}
	return f
}

// OutWords returns |Y|: r_j on contracted modes, n_j on the skipped
// one.
func (p MultiTTM) OutWords() float64 {
	f := 1.0
	for j, n := range p.Dims {
		if p.contracted(j) {
			f *= float64(p.Ranks[j])
		} else {
			f *= float64(n)
		}
	}
	return f
}

// MatWords returns sum_{contracted j} n_j * r_j, the total matrix
// entries.
func (p MultiTTM) MatWords() float64 {
	var s float64
	for j, n := range p.Dims {
		if p.contracted(j) {
			s += float64(n) * float64(p.Ranks[j])
		}
	}
	return s
}

// TotalWords returns the footprint of every array: |X| + |Y| +
// sum_j |A_j|.
func (p MultiTTM) TotalWords() float64 {
	return p.InWords() + p.OutWords() + p.MatWords()
}

// caps returns the per-array access caps of the parallel bound: no
// processor needs to access more of an array than the whole array.
// Order: X, Y, then one entry per contracted mode.
func (p MultiTTM) caps() []float64 {
	out := make([]float64, 0, p.D()+2)
	out = append(out, p.InWords(), p.OutWords())
	for j, n := range p.Dims {
		if p.contracted(j) {
			out = append(out, float64(n)*float64(p.Ranks[j]))
		}
	}
	return out
}

// accessLower solves the paper's convex program exactly: minimize
// sum_j v_j subject to prod_j v_j >= target and 0 < v_j <= caps[j].
// The optimum is v_j = min(caps[j], t) with the water level t chosen
// so the product meets the target: repeatedly pin the smallest caps
// that fall below the uniform level of the remaining budget. The
// program is always feasible here because prod(caps) = F^2 >= target.
func accessLower(target float64, caps []float64) float64 {
	if target <= 1 {
		return 0
	}
	c := append([]float64(nil), caps...)
	sort.Float64s(c)
	fixed := 0.0 // sum of pinned caps
	remain := target
	for i, ci := range c {
		// Uniform level over the m-i free variables.
		t := math.Pow(remain, 1/float64(len(c)-i))
		if t <= ci {
			return fixed + float64(len(c)-i)*t
		}
		fixed += ci
		remain /= ci
	}
	// All variables pinned at their caps (possible only when
	// prod(caps) ~= target up to rounding).
	return fixed
}

// ParAccess returns the per-processor access lower bound: among P
// processors executing F/P atoms each, some processor accesses at
// least this many words across all arrays (Section 5 of
// arXiv:2207.10437, with the regime case analysis replaced by the
// exact water-filling solution).
func (p MultiTTM) ParAccess(P float64) float64 {
	p.Validate()
	if P < 1 {
		panic(fmt.Sprintf("bounds: P = %v < 1", P))
	}
	f := p.Atoms() / P
	return accessLower(f*f, p.caps())
}

// ParBound returns the parallel memory-independent communication
// lower bound: accessed words minus the words a balanced processor
// can already own, W >= ParAccess(P) - TotalWords/P. Negative means
// vacuous (the owned data already covers the required accesses).
func (p MultiTTM) ParBound(P float64) float64 {
	return p.ParAccess(P) - p.TotalWords()/P
}

// SeqMemDependent returns the sequential memory-dependent bound with
// fast memory of M words: partitioning the schedule into phases of M
// transferred words, each phase accesses at most 2M words of every
// array and therefore completes at most (2M)^(m/2) atoms, where m is
// the number of arrays (d+2 for a full chain). Hence
//
//	W >= M * (F / (2M)^(m/2) - 1).
//
// Negative means vacuous (everything fits in fast memory).
func (p MultiTTM) SeqMemDependent(M float64) float64 {
	p.Validate()
	if M <= 0 {
		panic(fmt.Sprintf("bounds: M = %v <= 0", M))
	}
	m := float64(len(p.caps()))
	return M * (p.Atoms()/math.Pow(2*M, m/2) - 1)
}

// TuckerSweepBounds returns the Multi-TTM parallel bounds that govern
// one HOOI sweep over an order-d tensor: the d skip-k projection
// chains plus the full core chain, in that order (core last).
func TuckerSweepBounds(dims, ranks []int, P float64) []float64 {
	out := make([]float64, 0, len(dims)+1)
	for k := range dims {
		out = append(out, MultiTTM{Dims: dims, Ranks: ranks, Skip: k}.ParBound(P))
	}
	out = append(out, MultiTTM{Dims: dims, Ranks: ranks, Skip: -1}.ParBound(P))
	return out
}
