package bounds

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestMultiTTMCounts(t *testing.T) {
	p := MultiTTM{Dims: []int{4, 5, 6}, Ranks: []int{2, 3, 4}, Skip: -1}
	if got := p.Atoms(); got != 4*5*6*2*3*4 {
		t.Fatalf("Atoms = %v", got)
	}
	if got := p.InWords(); got != 120 {
		t.Fatalf("InWords = %v", got)
	}
	if got := p.OutWords(); got != 24 {
		t.Fatalf("OutWords = %v", got)
	}
	if got := p.MatWords(); got != 8+15+24 {
		t.Fatalf("MatWords = %v", got)
	}

	// Skip = 1: mode 1 keeps extent 5, A_1 does not exist.
	s := MultiTTM{Dims: []int{4, 5, 6}, Ranks: []int{2, 3, 4}, Skip: 1}
	if got := s.Atoms(); got != 4*5*6*2*4 {
		t.Fatalf("skip Atoms = %v", got)
	}
	if got := s.OutWords(); got != 2*5*4 {
		t.Fatalf("skip OutWords = %v", got)
	}
	if got := s.MatWords(); got != 8+24 {
		t.Fatalf("skip MatWords = %v", got)
	}
}

// The caps product is exactly F^2 for any chain, which is what makes
// the access program always feasible.
func TestMultiTTMCapsProduct(t *testing.T) {
	for _, p := range []MultiTTM{
		{Dims: []int{4, 5, 6}, Ranks: []int{2, 3, 4}, Skip: -1},
		{Dims: []int{4, 5, 6}, Ranks: []int{2, 3, 4}, Skip: 2},
		{Dims: []int{7}, Ranks: []int{3}, Skip: -1},
		{Dims: []int{3, 3, 3, 3}, Ranks: []int{2, 2, 2, 2}, Skip: 0},
	} {
		prod := 1.0
		for _, c := range p.caps() {
			prod *= c
		}
		f := p.Atoms()
		if math.Abs(prod-f*f) > 1e-6*f*f {
			t.Fatalf("caps product %v != F^2 %v for %+v", prod, f*f, p)
		}
	}
}

// waterOracle minimizes sum(v) s.t. prod(v) >= target, v <= caps by
// enumerating which variables sit at their cap: for every subset S of
// pinned variables, the free ones share the uniform level t =
// (target/prod(S))^(1/|free|); the candidate is feasible when t does
// not exceed any free cap. KKT says the optimum has this shape.
func waterOracle(target float64, caps []float64) float64 {
	m := len(caps)
	best := math.Inf(1)
	for mask := 0; mask < 1<<m; mask++ {
		prodS, sumS, free := 1.0, 0.0, 0
		for j := 0; j < m; j++ {
			if mask&(1<<j) != 0 {
				prodS *= caps[j]
				sumS += caps[j]
			} else {
				free++
			}
		}
		if free == 0 {
			if prodS >= target*(1-1e-9) {
				best = math.Min(best, sumS)
			}
			continue
		}
		t := math.Pow(target/prodS, 1/float64(free))
		if t <= 0 {
			continue
		}
		feasible := true
		for j := 0; j < m; j++ {
			if mask&(1<<j) == 0 && t > caps[j]*(1+1e-9) {
				feasible = false
				break
			}
		}
		if feasible {
			best = math.Min(best, sumS+float64(free)*math.Max(t, 0))
		}
	}
	return best
}

func TestAccessLowerMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(5)
		caps := make([]float64, m)
		prod := 1.0
		for j := range caps {
			caps[j] = math.Pow(10, 1+3*rng.Float64())
			prod *= caps[j]
		}
		target := math.Pow(prod, rng.Float64())
		got := accessLower(target, caps)
		want := waterOracle(target, caps)
		if math.Abs(got-want) > 1e-6*want {
			sort.Float64s(caps)
			t.Fatalf("trial %d: accessLower(%v, %v) = %v, oracle %v", trial, target, caps, got, want)
		}
	}
}

func TestAccessLowerUncapped(t *testing.T) {
	// All caps above the uniform level: the bound is m * target^(1/m).
	caps := []float64{1e9, 1e9, 1e9}
	target := 1e12
	want := 3 * math.Pow(target, 1.0/3)
	if got := accessLower(target, caps); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("accessLower = %v, want %v", got, want)
	}
	// Target at the feasibility edge: everything pins at its cap.
	caps = []float64{10, 20, 30}
	if got := accessLower(10*20*30, caps); math.Abs(got-60) > 1e-6 {
		t.Fatalf("edge accessLower = %v, want 60", got)
	}
	if got := accessLower(0.5, caps); got != 0 {
		t.Fatalf("trivial accessLower = %v, want 0", got)
	}
}

func TestMultiTTMParBound(t *testing.T) {
	dims := []int{32, 32, 32}
	ranks := []int{24, 24, 24}
	bs := TuckerSweepBounds(dims, ranks, 8)
	if len(bs) != 4 {
		t.Fatalf("got %d bounds", len(bs))
	}
	for i, b := range bs {
		if b <= 0 {
			t.Fatalf("bound %d = %v, want positive at ranks 24 / P=8", i, b)
		}
	}
	// Access shrinks as P grows; so does the bound here.
	core := MultiTTM{Dims: dims, Ranks: ranks, Skip: -1}
	if a8, a64 := core.ParAccess(8), core.ParAccess(64); a64 >= a8 {
		t.Fatalf("ParAccess not decreasing in P: %v -> %v", a8, a64)
	}
	// P = 1 with caps fully pinned: the access equals the footprint,
	// so the bound is exactly zero.
	if b := core.ParBound(1); math.Abs(b) > 1e-6*core.TotalWords() {
		t.Fatalf("ParBound(1) = %v, want ~0", b)
	}
}

func TestMultiTTMSeqMemDependent(t *testing.T) {
	p := MultiTTM{Dims: []int{64, 64, 64}, Ranks: []int{16, 16, 16}, Skip: -1}
	small := p.SeqMemDependent(256)
	if small <= 0 {
		t.Fatalf("SeqMemDependent(256) = %v, want positive", small)
	}
	if big := p.SeqMemDependent(1e12); big >= 0 {
		t.Fatalf("SeqMemDependent(1e12) = %v, want vacuous", big)
	}
	if p.SeqMemDependent(128) <= small {
		t.Fatalf("bound should tighten as M shrinks")
	}
}

func TestMultiTTMValidate(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { MultiTTM{}.Validate() },
		"ranks":    func() { MultiTTM{Dims: []int{3, 3}, Ranks: []int{2}}.Validate() },
		"dimzero":  func() { MultiTTM{Dims: []int{3, 0}, Ranks: []int{2, 2}}.Validate() },
		"rankzero": func() { MultiTTM{Dims: []int{3, 3}, Ranks: []int{2, 0}}.Validate() },
		"badskip":  func() { MultiTTM{Dims: []int{3, 3}, Ranks: []int{2, 2}, Skip: 2}.Validate() },
		"negskip":  func() { MultiTTM{Dims: []int{3, 3}, Ranks: []int{2, 2}, Skip: -2}.Validate() },
		"badP":     func() { MultiTTM{Dims: []int{3, 3}, Ranks: []int{2, 2}, Skip: -1}.ParAccess(0) },
		"badM":     func() { MultiTTM{Dims: []int{3, 3}, Ranks: []int{2, 2}, Skip: -1}.SeqMemDependent(0) },
		"skipRank0": func() {
			// A zero rank on the skipped mode is fine: A_skip does not exist.
			MultiTTM{Dims: []int{3, 3}, Ranks: []int{2, 0}, Skip: 1}.Validate()
		},
	} {
		func() {
			defer func() {
				r := recover()
				if name == "skipRank0" {
					if r != nil {
						t.Errorf("%s: unexpected panic %v", name, r)
					}
					return
				}
				if r == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
