package bounds

import (
	"fmt"
	"math"
)

// T61Constants are the constants (alpha, beta, gamma, delta, epsilon)
// parameterizing Theorem 6.1's hypotheses, Equations (25)-(29). The
// paper's illustration uses beta = 1-alpha = 1/100, gamma = 100,
// delta = epsilon = 1/10.
type T61Constants struct {
	Alpha, Beta, Gamma, Delta, Eps float64
}

// PaperT61Constants returns the constants of the paper's illustration.
func PaperT61Constants() T61Constants {
	return T61Constants{Alpha: 0.99, Beta: 0.01, Gamma: 100, Delta: 0.1, Eps: 0.1}
}

// Validate checks the right-hand side conditions attached to each
// constant in Equations (25)-(29).
func (c T61Constants) Validate(p Problem) error {
	N := float64(p.N())
	if !(c.Alpha > 0 && c.Alpha < 1) {
		return fmt.Errorf("bounds: need 0 < alpha < 1, got %v", c.Alpha)
	}
	if !(c.Beta > 0 && c.Beta < math.Pow(c.Alpha, 1-1/N)) {
		return fmt.Errorf("bounds: need 0 < beta < alpha^(1-1/N), got %v", c.Beta)
	}
	if !(c.Gamma > 1+1/N) {
		return fmt.Errorf("bounds: need gamma > 1 + 1/N, got %v", c.Gamma)
	}
	if !(c.Delta > 0 && c.Delta < 1+p.SumIkR()/p.I()) {
		return fmt.Errorf("bounds: need 0 < delta < 1 + sum(I_k R)/I, got %v", c.Delta)
	}
	if !(c.Eps > 0 && c.Eps < 1/math.Pow(3, 2-1/N)) {
		return fmt.Errorf("bounds: need 0 < eps < 3^(1/N-2), got %v", c.Eps)
	}
	return nil
}

// T61Window returns the fast-memory interval [lo, hi] on which every
// hypothesis of Theorem 6.1 holds for the given constants. An empty
// window (lo > hi) means the theorem's premises cannot all be met for
// this problem with these constants.
func T61Window(p Problem, c T61Constants) (lo, hi float64, err error) {
	p.Validate()
	if err := c.Validate(p); err != nil {
		return 0, 0, err
	}
	N := float64(p.N())
	I := p.I()
	R := float64(p.R)
	minI := math.Inf(1)
	for _, d := range p.Dims {
		if f := float64(d); f < minI {
			minI = f
		}
	}

	// Eq. (25): M >= (N*alpha^(1/N) / (1-alpha))^(N/(N-1)).
	lo25 := math.Pow(N*math.Pow(c.Alpha, 1/N)/(1-c.Alpha), N/(N-1))
	// Eq. (26): M >= (1 / (alpha^(1/N) - beta^(1/(N-1))))^N.
	lo26 := math.Pow(1/(math.Pow(c.Alpha, 1/N)-math.Pow(c.Beta, 1/(N-1))), N)
	lo = math.Max(lo25, lo26)

	// Eq. (27): M <= ( ((gamma*N/(N+1))^(1/N) - 1) / alpha^(1/N) * min_k I_k )^N.
	hi27 := math.Pow((math.Pow(c.Gamma*N/(N+1), 1/N)-1)/math.Pow(c.Alpha, 1/N)*minI, N)
	// Eq. (28): M <= ((1-delta)*I + sum_k I_k R) / 2.
	hi28 := ((1-c.Delta)*I + p.SumIkR()) / 2
	// Eq. (29): M <= ((3^(1/N-2) - eps) * N*I*R)^(N/(2N-1)).
	hi29 := math.Pow((1/math.Pow(3, 2-1/N)-c.Eps)*N*I*R, N/(2*N-1))
	hi = math.Min(hi27, math.Min(hi28, hi29))
	return lo, hi, nil
}

// Theorem61Holds reports whether all hypotheses of Theorem 6.1 hold
// for fast memory size M.
func Theorem61Holds(p Problem, M float64, c T61Constants) (bool, error) {
	lo, hi, err := T61Window(p, c)
	if err != nil {
		return false, err
	}
	return M >= lo && M <= hi, nil
}

// Theorem61GuaranteedRatio returns the constant-factor optimality
// guarantee the proof of Theorem 6.1 yields: within the window,
// W_upper / max(W_lb1, W_lb2) <= 2*gamma / (beta * min(delta, eps)).
// It is a worst-case guarantee; measured ratios (EXPERIMENTS.md E3)
// are far smaller.
func Theorem61GuaranteedRatio(c T61Constants) float64 {
	return 2 * c.Gamma / (c.Beta * math.Min(c.Delta, c.Eps))
}
