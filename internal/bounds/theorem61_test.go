package bounds_test

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/memsim"
	"repro/internal/seq"
	"repro/internal/tensor"
)

func TestT61WindowPaperIllustration(t *testing.T) {
	// The paper: with beta = 1-alpha = 1/100, gamma = 100,
	// delta = eps = 1/10 and cubical dims, the window's floor comes
	// from Eqs. (25)/(26) (around 10^4 for N <= 10) and its ceiling
	// from (27)-(29).
	p := bounds.Cubical(3, 100, 100) // I = 1e6, R = 100
	c := bounds.PaperT61Constants()
	lo, hi, err := bounds.T61Window(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 1e3 || lo > 1e4 {
		t.Fatalf("window floor %v, expected a few thousand for N=3", lo)
	}
	if hi < lo {
		t.Fatalf("empty window [%v, %v] for representative parameters", lo, hi)
	}
	mid := math.Sqrt(lo * hi)
	for _, tc := range []struct {
		M    float64
		want bool
	}{
		{mid, true},
		{lo * 0.5, false},
		{hi * 2, false},
	} {
		ok, err := bounds.Theorem61Holds(p, tc.M, c)
		if err != nil {
			t.Fatal(err)
		}
		if ok != tc.want {
			t.Fatalf("M=%v: holds=%v, want %v (window [%v, %v])", tc.M, ok, tc.want, lo, hi)
		}
	}
}

func TestT61ConstantsValidation(t *testing.T) {
	p := bounds.Cubical(3, 64, 16)
	bad := []bounds.T61Constants{
		{Alpha: 1.5, Beta: 0.01, Gamma: 100, Delta: 0.1, Eps: 0.1},
		{Alpha: 0.99, Beta: 0.999, Gamma: 100, Delta: 0.1, Eps: 0.1}, // beta too big
		{Alpha: 0.99, Beta: 0.01, Gamma: 1.0, Delta: 0.1, Eps: 0.1},  // gamma too small
		{Alpha: 0.99, Beta: 0.01, Gamma: 100, Delta: -1, Eps: 0.1},
		{Alpha: 0.99, Beta: 0.01, Gamma: 100, Delta: 0.1, Eps: 0.9}, // eps too big
	}
	for i, c := range bad {
		if err := c.Validate(p); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
	if err := bounds.PaperT61Constants().Validate(p); err != nil {
		t.Fatalf("paper constants rejected: %v", err)
	}
}

// Inside the window, the theorem's conclusion must hold on the
// measured algorithm: Algorithm 2's words are within the guaranteed
// constant of the lower bounds (in practice far within it).
func TestT61ConclusionMeasured(t *testing.T) {
	// I*R must be large enough that Eq. (29)'s ceiling clears the
	// Eq. (25) floor (~5200 for N=3 with the paper's constants).
	dims := []int{96, 96, 96}
	R := 16
	p := bounds.Problem{Dims: dims, R: R}
	c := bounds.PaperT61Constants()
	lo, hi, err := bounds.T61Window(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Skipf("empty window [%v, %v] at this tiny scale; use larger dims", lo, hi)
	}
	M := int64(math.Sqrt(lo * hi))
	x := tensor.RandomDense(1, dims...)
	fs := tensor.RandomFactors(2, dims, R)
	b := int(math.Floor(math.Pow(c.Alpha*float64(M), 1/3.0)))
	res, err := seq.Blocked(x, fs, 0, b, memsim.New(M))
	if err != nil {
		t.Fatal(err)
	}
	lb := bounds.SeqBest(p, float64(M))
	if lb <= 0 {
		t.Fatalf("lower bound vacuous inside the window: %v", lb)
	}
	ratio := float64(res.Counts.Words()) / lb
	if ratio > bounds.Theorem61GuaranteedRatio(c) {
		t.Fatalf("measured ratio %v exceeds the guarantee %v", ratio, bounds.Theorem61GuaranteedRatio(c))
	}
	if ratio > 50 {
		t.Fatalf("measured ratio %v implausibly large", ratio)
	}
}

func TestT61GuaranteedRatio(t *testing.T) {
	c := bounds.PaperT61Constants()
	// 2*100 / (0.01 * 0.1) = 200000.
	if got := bounds.Theorem61GuaranteedRatio(c); math.Abs(got-200000) > 1 {
		t.Fatalf("guaranteed ratio = %v", got)
	}
}
