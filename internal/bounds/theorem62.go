package bounds

import (
	"fmt"
	"math"
)

// T62Constants parameterize Theorem 6.2's hypotheses. The paper's
// illustration sets gamma = delta = 1.75, alpha^(1/N) = 1.05,
// beta = 1.5, and eta = tau = 0.1.
type T62Constants struct {
	AlphaRoot float64 // alpha^(1/N), > 1
	Beta      float64 // > 1
	Gamma     float64 // load-balance slack for the tensor, > AlphaRoot^N
	Delta     float64 // load-balance slack for the factors
	Eta       float64 // small-P lower-bound slack, 0 < eta < sqrt(2/(3 gamma))
	Tau       float64 // large-P lower-bound slack, 0 < tau < 2 - gamma
}

// PaperT62Constants returns the constants of the paper's illustration.
func PaperT62Constants() T62Constants {
	return T62Constants{AlphaRoot: 1.05, Beta: 1.5, Gamma: 1.75, Delta: 1.75, Eta: 0.1, Tau: 0.1}
}

// Validate checks the side conditions the proof attaches to the
// constants.
func (c T62Constants) Validate(p Problem) error {
	N := float64(p.N())
	if c.AlphaRoot <= 1 {
		return fmt.Errorf("bounds: need alpha^(1/N) > 1, got %v", c.AlphaRoot)
	}
	alpha := math.Pow(c.AlphaRoot, N)
	if c.Beta <= 1 {
		return fmt.Errorf("bounds: need beta > 1, got %v", c.Beta)
	}
	if c.Gamma <= alpha {
		return fmt.Errorf("bounds: need gamma > alpha = %v, got %v", alpha, c.Gamma)
	}
	if c.Delta <= c.AlphaRoot*c.Beta {
		return fmt.Errorf("bounds: need delta > alpha^(1/N)*beta = %v, got %v", c.AlphaRoot*c.Beta, c.Delta)
	}
	if !(c.Eta > 0 && c.Eta < math.Sqrt(2/(3*c.Gamma))) {
		return fmt.Errorf("bounds: need 0 < eta < sqrt(2/(3 gamma)), got %v", c.Eta)
	}
	if !(c.Tau > 0 && c.Tau < 2-c.Gamma) {
		return fmt.Errorf("bounds: need 0 < tau < 2 - gamma, got %v", c.Tau)
	}
	return nil
}

// T62GridOK checks the Eq. (34) conditions for a concrete grid
// (shape[0] = P0 for the general algorithm; pass P0 = 1 with an N-way
// shape prepended by 1 for the stationary special case):
//
//	P_k <= (alpha^(1/N) - 1) I_k,  P <= (gamma - alpha) I,
//	P_0 <= (beta - 1) R,           P <= (delta - alpha^(1/N) beta) I_k R.
func T62GridOK(p Problem, shape []int, c T62Constants) error {
	if len(shape) != p.N()+1 {
		return fmt.Errorf("bounds: shape %v must have N+1 = %d extents (P0 first)", shape, p.N()+1)
	}
	if err := c.Validate(p); err != nil {
		return err
	}
	N := float64(p.N())
	alpha := math.Pow(c.AlphaRoot, N)
	P := 1.0
	for _, s := range shape {
		P *= float64(s)
	}
	if float64(shape[0]) > (c.Beta-1)*float64(p.R) {
		return fmt.Errorf("bounds: P0 = %d exceeds (beta-1)R = %v", shape[0], (c.Beta-1)*float64(p.R))
	}
	if P > (c.Gamma-alpha)*p.I() {
		return fmt.Errorf("bounds: P = %v exceeds (gamma-alpha)I = %v", P, (c.Gamma-alpha)*p.I())
	}
	for k, d := range p.Dims {
		if float64(shape[k+1]) > (c.AlphaRoot-1)*float64(d) {
			return fmt.Errorf("bounds: P_%d = %d exceeds (alpha^(1/N)-1)I_%d = %v",
				k, shape[k+1], k, (c.AlphaRoot-1)*float64(d))
		}
		if P > (c.Delta-c.AlphaRoot*c.Beta)*float64(d)*float64(p.R) {
			return fmt.Errorf("bounds: P = %v exceeds (delta - alpha^(1/N) beta) I_%d R = %v",
				P, k, (c.Delta-c.AlphaRoot*c.Beta)*float64(d)*float64(p.R))
		}
	}
	return nil
}

// T62MinP returns the lower bounds on P required by the two cases'
// lower-bound simplifications: in the small-rank case (NR <=
// (I/P)^(1-1/N)) the proof needs
//
//	P >= ( delta/(sqrt(2/(3 gamma)) - eta) * sum I_k / (N I^(1/N)) )^(N/(N-1)),
//
// and in the large-rank case
//
//	P >= ( delta/(2-(gamma+tau)) * sum I_k )^((2N-1)/(N-1)) * R / (N I)^(N/(N-1)).
func T62MinP(p Problem, c T62Constants) (smallRank, largeRank float64) {
	N := float64(p.N())
	sumIk := 0.0
	for _, d := range p.Dims {
		sumIk += float64(d)
	}
	smallRank = math.Pow(
		c.Delta/(math.Sqrt(2/(3*c.Gamma))-c.Eta)*sumIk/(N*math.Pow(p.I(), 1/N)),
		N/(N-1))
	largeRank = math.Pow(c.Delta/(2-(c.Gamma+c.Tau))*sumIk, (2*N-1)/(N-1)) *
		float64(p.R) / math.Pow(N*p.I(), N/(N-1))
	return smallRank, largeRank
}
