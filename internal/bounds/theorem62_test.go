package bounds

import (
	"math"
	"testing"
)

func TestT62ConstantsPaperIllustration(t *testing.T) {
	p := Cubical(3, 1<<10, 1<<8)
	c := PaperT62Constants()
	if err := c.Validate(p); err != nil {
		t.Fatalf("paper constants rejected: %v", err)
	}
	// The paper derives: Pk <= 0.05*Ik, P <= ~0.59*I (gamma - alpha =
	// 1.75 - 1.05^3), P0 <= 0.5*R, P <= 0.175*Ik*R.
	alpha := math.Pow(1.05, 3)
	if math.Abs((c.Gamma-alpha)-(1.75-alpha)) > 1e-12 {
		t.Fatal("gamma - alpha mismatch")
	}
	if got := (c.Beta - 1) * float64(p.R); got != 0.5*float64(p.R) {
		t.Fatalf("P0 bound %v, want 0.5R", got)
	}
	if got := c.Delta - c.AlphaRoot*c.Beta; math.Abs(got-0.175) > 1e-9 {
		t.Fatalf("delta - alpha^(1/N) beta = %v, want 0.175", got)
	}
}

func TestT62GridOK(t *testing.T) {
	p := Cubical(3, 1<<10, 1<<8) // I_k = 1024, R = 256
	c := PaperT62Constants()
	// Pk <= 0.05*1024 = 51.2; P0 <= 128; P <= 0.175*1024*256 ~ 45875.
	if err := T62GridOK(p, []int{2, 16, 16, 16}, c); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	if err := T62GridOK(p, []int{2, 64, 32, 16}, c); err == nil {
		t.Fatal("P_1 = 64 > 0.05*I_1 should be rejected")
	}
	if err := T62GridOK(p, []int{200, 8, 8, 8}, c); err == nil {
		t.Fatal("P0 = 200 > 0.5R should be rejected")
	}
	if err := T62GridOK(p, []int{2, 32, 32}, c); err == nil {
		t.Fatal("wrong shape length should be rejected")
	}
}

func TestT62ConstantsValidation(t *testing.T) {
	p := Cubical(3, 64, 16)
	bad := []T62Constants{
		{AlphaRoot: 0.9, Beta: 1.5, Gamma: 1.75, Delta: 1.75, Eta: 0.1, Tau: 0.1},
		{AlphaRoot: 1.05, Beta: 0.9, Gamma: 1.75, Delta: 1.75, Eta: 0.1, Tau: 0.1},
		{AlphaRoot: 1.05, Beta: 1.5, Gamma: 1.0, Delta: 1.75, Eta: 0.1, Tau: 0.1},
		{AlphaRoot: 1.05, Beta: 1.5, Gamma: 1.75, Delta: 1.0, Eta: 0.1, Tau: 0.1},
		{AlphaRoot: 1.05, Beta: 1.5, Gamma: 1.75, Delta: 1.75, Eta: 0.9, Tau: 0.1},
		{AlphaRoot: 1.05, Beta: 1.5, Gamma: 1.75, Delta: 1.75, Eta: 0.1, Tau: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(p); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
}

// The paper: "With eta = tau = 0.1 and assuming I_k = I^(1/N) for all
// k, the assumptions necessary for the lower bound simplifications to
// apply become P >= 7 and P >= 465 N R / I^(1-1/N)."
func TestT62MinPPaperNumbers(t *testing.T) {
	// Cubical, so sum I_k = N I^(1/N): the small-rank expression
	// becomes (delta/(sqrt(2/(3 gamma)) - eta))^(N/(N-1)), a constant.
	p := Cubical(3, 1<<10, 1<<8)
	c := PaperT62Constants()
	small, large := T62MinP(p, c)
	// delta/(sqrt(2/5.25) - 0.1) = 1.75/0.5171 ~ 3.38; ^(3/2) ~ 6.2 -> "P >= 7".
	if small < 5 || small > 8 {
		t.Fatalf("small-rank min P = %v, paper says ~7", small)
	}
	// Large-rank: (delta/(2-1.85) * sum)^((2N-1)/(N-1)) R/(NI)^(N/(N-1)):
	// with cubical dims this is ~465 * N R / I^(1-1/N) ... check the
	// scaling against the paper's coefficient.
	nr := 3.0 * float64(p.R)
	iPow := math.Pow(p.I(), 1-1.0/3)
	coeff := large / (nr / iPow)
	if coeff < 300 || coeff > 700 {
		t.Fatalf("large-rank coefficient %v, paper says ~465", coeff)
	}
}
