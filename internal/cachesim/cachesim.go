// Package cachesim replays word-granularity address traces through a
// fully-associative LRU-managed fast memory of M words, counting
// compulsory/capacity misses (loads) and dirty write-backs (stores).
// It provides an execution-order-only view of the sequential I/O
// model: unlike package seq, nothing is explicitly staged — the
// replacement policy alone decides residency, so the measured traffic
// isolates the effect of the *loop ordering* that the paper's blocked
// algorithm is designed around.
//
// In the I/O model a word can be discarded without cost unless dirty;
// LRU with write-back and write-allocate matches that: clean evictions
// are free, dirty evictions cost one store, and the final flush of
// dirty lines is charged (the output must reach slow memory).
package cachesim

import (
	"container/list"
	"fmt"

	"repro/internal/trace"
)

// Result summarizes a simulation.
type Result struct {
	Loads    int64 // misses (words read from slow memory)
	Stores   int64 // dirty write-backs, including the final flush
	Accesses int64
	Hits     int64
}

// Words returns loads + stores.
func (r Result) Words() int64 { return r.Loads + r.Stores }

type line struct {
	addr  uint64
	dirty bool
}

// LRU is a fully-associative LRU cache of capacity M words.
type LRU struct {
	capacity int
	order    *list.List // front = most recent
	index    map[uint64]*list.Element
	res      Result
}

// NewLRU creates a cache with capacity M words.
func NewLRU(M int) *LRU {
	if M < 1 {
		panic(fmt.Sprintf("cachesim: capacity %d", M))
	}
	return &LRU{
		capacity: M,
		order:    list.New(),
		index:    make(map[uint64]*list.Element, M),
	}
}

// Access processes one reference.
func (c *LRU) Access(a trace.Access) {
	c.res.Accesses++
	if el, ok := c.index[a.Addr]; ok {
		c.res.Hits++
		c.order.MoveToFront(el)
		if a.Write {
			el.Value.(*line).dirty = true
		}
		return
	}
	// Miss: write-allocate.
	c.res.Loads++
	if c.order.Len() >= c.capacity {
		c.evict()
	}
	el := c.order.PushFront(&line{addr: a.Addr, dirty: a.Write})
	c.index[a.Addr] = el
}

func (c *LRU) evict() {
	el := c.order.Back()
	ln := el.Value.(*line)
	if ln.dirty {
		c.res.Stores++
	}
	delete(c.index, ln.addr)
	c.order.Remove(el)
}

// Flush writes back all dirty lines (end of computation: outputs must
// reach slow memory) and empties the cache.
func (c *LRU) Flush() {
	for el := c.order.Front(); el != nil; el = el.Next() {
		if el.Value.(*line).dirty {
			c.res.Stores++
		}
	}
	c.order.Init()
	c.index = make(map[uint64]*list.Element)
}

// Result returns the counters accumulated so far.
func (c *LRU) Result() Result { return c.res }

// Simulate replays a trace generator through a fresh LRU of capacity M
// and returns the totals including the final flush.
func Simulate(M int, gen func(emit func(trace.Access))) Result {
	c := NewLRU(M)
	gen(c.Access)
	c.Flush()
	return c.Result()
}
