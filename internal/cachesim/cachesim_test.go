package cachesim

import (
	"testing"

	"repro/internal/bounds"
	"repro/internal/trace"
)

func access(addr uint64) trace.Access { return trace.Access{Addr: addr} }
func write(addr uint64) trace.Access  { return trace.Access{Addr: addr, Write: true} }

func TestColdMissesAndHits(t *testing.T) {
	c := NewLRU(4)
	c.Access(access(1))
	c.Access(access(2))
	c.Access(access(1)) // hit
	r := c.Result()
	if r.Loads != 2 || r.Hits != 1 || r.Accesses != 3 {
		t.Fatalf("result %+v", r)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(2)
	c.Access(access(1))
	c.Access(access(2))
	c.Access(access(1)) // 1 now most recent
	c.Access(access(3)) // evicts 2
	c.Access(access(1)) // still resident: hit
	c.Access(access(2)) // miss again
	r := c.Result()
	if r.Loads != 4 || r.Hits != 2 {
		t.Fatalf("result %+v", r)
	}
}

func TestCleanEvictionsFree(t *testing.T) {
	c := NewLRU(1)
	for addr := uint64(0); addr < 10; addr++ {
		c.Access(access(addr))
	}
	c.Flush()
	r := c.Result()
	if r.Stores != 0 {
		t.Fatalf("clean evictions must not store: %+v", r)
	}
	if r.Loads != 10 {
		t.Fatalf("loads %d", r.Loads)
	}
}

func TestDirtyEvictionAndFlushStores(t *testing.T) {
	c := NewLRU(1)
	c.Access(write(1))
	c.Access(access(2)) // evicts dirty 1: 1 store
	c.Access(write(3))  // evicts clean 2: free
	c.Flush()           // dirty 3: 1 store
	r := c.Result()
	if r.Stores != 2 {
		t.Fatalf("stores = %d, want 2 (%+v)", r.Stores, r)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := NewLRU(2)
	c.Access(access(1)) // clean
	c.Access(write(1))  // hit, now dirty
	c.Flush()
	if r := c.Result(); r.Stores != 1 {
		t.Fatalf("stores = %d", r.Stores)
	}
}

func TestFlushEmptiesCache(t *testing.T) {
	c := NewLRU(4)
	c.Access(write(1))
	c.Flush()
	c.Access(access(1)) // must miss again
	if r := c.Result(); r.Loads != 2 {
		t.Fatalf("loads = %d, want 2", r.Loads)
	}
}

func TestCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLRU(0)
}

// Whole-problem fit: with M >= footprint, traffic is exactly one load
// per distinct word plus one store per output word.
func TestEverythingFits(t *testing.T) {
	dims := []int{4, 4}
	R := 3
	l := trace.NewLayout(dims, R, 0)
	res := Simulate(int(l.Words()), func(e func(trace.Access)) {
		trace.Unblocked(l, 0, e)
	})
	// Mode 0's own factor A(0) is never read, so the touched footprint
	// is Words() minus its I_0 x R segment.
	touched := int64(l.Words()) - int64(dims[0]*R)
	if res.Loads != touched {
		t.Fatalf("loads = %d, touched footprint = %d", res.Loads, touched)
	}
	if res.Stores != int64(dims[0]*R) {
		t.Fatalf("stores = %d, output = %d", res.Stores, dims[0]*R)
	}
}

// The central property (E13): for any ordering and any M, the measured
// LRU traffic respects the Theorem 4.1 / Fact 4.1 lower bounds (LRU is
// just another sequential MTTKRP execution).
func TestLRUNeverBeatsLowerBound(t *testing.T) {
	dims := []int{8, 8, 8}
	R := 4
	n := 0
	prob := bounds.Problem{Dims: dims, R: R}
	l := trace.NewLayout(dims, R, n)
	for _, M := range []int{16, 64, 256} {
		lb := bounds.SeqBest(prob, float64(M))
		for name, gen := range map[string]func(func(trace.Access)){
			"unblocked": func(e func(trace.Access)) { trace.Unblocked(l, n, e) },
			"blocked2":  func(e func(trace.Access)) { trace.Blocked(l, n, 2, e) },
			"blocked4":  func(e func(trace.Access)) { trace.Blocked(l, n, 4, e) },
			"random":    func(e func(trace.Access)) { trace.Random(l, n, 11, e) },
		} {
			res := Simulate(M, gen)
			if float64(res.Words()) < lb {
				t.Fatalf("%s at M=%d: %d words beats lower bound %v", name, M, res.Words(), lb)
			}
		}
	}
}

// Locality ranking: at a fast-memory size where blocking matters, the
// blocked ordering must beat the unblocked one, which must beat the
// random one.
func TestOrderingLocalityRanking(t *testing.T) {
	// M must be small enough that the unblocked order's working set
	// (a full B row panel of I_n*R = 96 words plus factor slices)
	// thrashes, while a b=4 block (64 + 3*4 words) still fits.
	dims := []int{12, 12, 12}
	R := 8
	n := 0
	M := 96
	l := trace.NewLayout(dims, R, n)
	blocked := Simulate(M, func(e func(trace.Access)) { trace.Blocked(l, n, 4, e) })
	unblocked := Simulate(M, func(e func(trace.Access)) { trace.Unblocked(l, n, e) })
	random := Simulate(M, func(e func(trace.Access)) { trace.Random(l, n, 13, e) })
	if blocked.Words() >= unblocked.Words() {
		t.Fatalf("blocked %d should beat unblocked %d", blocked.Words(), unblocked.Words())
	}
	if unblocked.Words() >= random.Words() {
		t.Fatalf("unblocked %d should beat random %d", unblocked.Words(), random.Words())
	}
}

// The cache-oblivious claim: the Morton (Z-curve) ordering, with no
// tuned block size at all, stays within a small factor of the
// best-tuned blocked ordering across a wide range of M.
func TestMortonCacheOblivious(t *testing.T) {
	dims := []int{16, 16, 16}
	R := 8
	n := 0
	l := trace.NewLayout(dims, R, n)
	for _, cfg := range []struct{ M, b int }{
		{64, 3}, {128, 4}, {512, 7}, {2048, 12},
	} {
		blocked := Simulate(cfg.M, func(e func(trace.Access)) { trace.Blocked(l, n, cfg.b, e) })
		morton := Simulate(cfg.M, func(e func(trace.Access)) { trace.Morton(l, n, e) })
		ratio := float64(morton.Words()) / float64(blocked.Words())
		if ratio > 2.5 {
			t.Fatalf("M=%d: Morton %d words vs tuned blocked %d (ratio %.2f)",
				cfg.M, morton.Words(), blocked.Words(), ratio)
		}
	}
}

// LRU with the Algorithm 2 ordering tracks the explicitly-managed
// Algorithm 2 within a modest factor — caches reward the ordering
// without orchestration (and can even beat explicit staging, since
// LRU exploits reuse across adjacent blocks).
func TestLRUBlockedNearExplicit(t *testing.T) {
	dims := []int{12, 12, 12}
	R := 4
	n := 0
	b := 4
	M := b*b*b + 3*b + 32
	l := trace.NewLayout(dims, R, n)
	lru := Simulate(M, func(e func(trace.Access)) { trace.Blocked(l, n, b, e) })
	// Explicit Algorithm 2 cost from Eq. (12)'s exact form: measured in
	// the seq package as I + blocks*R*(N+1)*b.
	explicit := int64(12*12*12) + int64(27*R*4*b)
	ratio := float64(lru.Words()) / float64(explicit)
	if ratio > 1.5 || ratio < 0.2 {
		t.Fatalf("LRU blocked %d vs explicit %d: ratio %.2f outside [0.2, 1.5]",
			lru.Words(), explicit, ratio)
	}
}
