// Package comm provides MPI-style communicators and the bucket (ring)
// collective algorithms the paper's parallel algorithms are built on
// (Section V-C3): All-Gather and Reduce-Scatter proceeding in q-1
// steps, each step passing an array of at most w words to a neighbor,
// for a total cost of (q-1)*w — bandwidth-optimal for balanced
// distributions [Chan et al. 2007].
//
// A Comm is a view of a subset of network ranks (a processor-grid
// hyperslice or fiber). Collectives are called collectively: every
// member must invoke the same operation with compatible arguments.
package comm

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// Comm is a communicator: an ordered group of global network ranks.
// The index of a rank within the group is its communicator rank.
type Comm struct {
	net   *simnet.Network
	ranks []int // global ranks; position = communicator rank
	me    int   // my communicator rank
	vol   Volume
}

// New builds a communicator over the given global ranks for the caller
// whose global rank is global. ranks must be duplicate-free and
// contain global.
func New(net *simnet.Network, ranks []int, global int) *Comm {
	me := -1
	seen := make(map[int]bool, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= net.P() {
			panic(fmt.Sprintf("comm: rank %d outside network of %d", r, net.P()))
		}
		if seen[r] {
			panic(fmt.Sprintf("comm: duplicate rank %d", r))
		}
		seen[r] = true
		if r == global {
			me = i
		}
	}
	if me == -1 {
		panic(fmt.Sprintf("comm: global rank %d not in group %v", global, ranks))
	}
	return &Comm{net: net, ranks: append([]int(nil), ranks...), me: me}
}

// Size returns the number of ranks in the communicator (q).
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.me }

// GlobalRank returns the caller's rank in the underlying network.
func (c *Comm) GlobalRank() int { return c.ranks[c.me] }

// Send transmits data to communicator rank dst.
func (c *Comm) Send(dst int, data []float64) {
	c.vol.Sent += int64(len(data))
	obs.Comm(c.ranks[c.me], int64(len(data)), 0)
	c.net.Send(c.ranks[c.me], c.ranks[dst], data)
}

// Recv blocks for a message from communicator rank src.
func (c *Comm) Recv(src int) []float64 {
	msg := c.net.Recv(c.ranks[src], c.ranks[c.me])
	c.vol.Recv += int64(len(msg))
	obs.Comm(c.ranks[c.me], 0, int64(len(msg)))
	return msg
}

// AllGatherV gathers each rank's block onto every rank using the
// bucket (ring) algorithm: in step t, rank i forwards the block it
// holds for position (i-t) mod q to rank i+1. After q-1 steps everyone
// holds all blocks. Each rank sends and receives (total - own) words:
// (q-1)*w for balanced blocks of w words.
//
// Returns the blocks indexed by communicator rank. Block lengths may
// differ across ranks (the "v" variant); they are discovered from the
// received payloads, so no extra size exchange is modeled (in practice
// sizes are known from the data distribution).
func (c *Comm) AllGatherV(mine []float64) [][]float64 {
	span := obs.StartRank(c.ranks[c.me], obs.PhaseAllGather)
	defer span.Stop()
	q := len(c.ranks)
	blocks := make([][]float64, q)
	blocks[c.me] = append([]float64(nil), mine...)
	if q == 1 {
		return blocks
	}
	right := (c.me + 1) % q
	left := (c.me - 1 + q) % q
	for t := 0; t < q-1; t++ {
		sendIdx := (c.me - t + q*len(c.ranks)) % q
		recvIdx := (c.me - t - 1 + q*len(c.ranks)) % q
		c.Send(right, blocks[sendIdx])
		blocks[recvIdx] = c.Recv(left)
	}
	return blocks
}

// AllGatherConcat is AllGatherV followed by concatenation in rank
// order, the layout collective gathers of contiguous partitions want.
func (c *Comm) AllGatherConcat(mine []float64) []float64 {
	blocks := c.AllGatherV(mine)
	var total int
	for _, b := range blocks {
		total += len(b)
	}
	out := make([]float64, 0, total)
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// ReduceScatterV reduces elementwise across ranks and scatters: chunk j
// of every rank's contribution is summed over all ranks and delivered
// to communicator rank j. contrib must have exactly q chunks whose
// lengths agree across ranks chunk-by-chunk.
//
// Bucket algorithm: chunk j starts at rank j+1 and travels the ring
// rightward, accumulating each rank's contribution, arriving complete
// at rank j after q-1 steps. Each rank sends (total - |own chunk|)
// words: (q-1)*w for balanced chunks of w words.
func (c *Comm) ReduceScatterV(contrib [][]float64) []float64 {
	span := obs.StartRank(c.ranks[c.me], obs.PhaseReduceScatter)
	defer span.Stop()
	q := len(c.ranks)
	if len(contrib) != q {
		panic(fmt.Sprintf("comm: ReduceScatterV got %d chunks for %d ranks", len(contrib), q))
	}
	if q == 1 {
		return append([]float64(nil), contrib[0]...)
	}
	right := (c.me + 1) % q
	left := (c.me - 1 + q) % q
	// Step t: send the running sum of chunk (me-1-t) mod q to the
	// right; receive chunk (me-2-t) mod q from the left and add our
	// contribution.
	buf := append([]float64(nil), contrib[(c.me-1+q)%q]...)
	for t := 0; t < q-1; t++ {
		c.Send(right, buf)
		inIdx := (c.me - 2 - t + 2*q + q*q) % q
		in := c.Recv(left)
		own := contrib[inIdx]
		if len(in) != len(own) {
			panic(fmt.Sprintf("comm: ReduceScatterV chunk %d length mismatch: %d vs %d", inIdx, len(in), len(own)))
		}
		for i := range in {
			in[i] += own[i]
		}
		buf = in
	}
	// After the last step buf holds chunk (me - q) mod q = me, fully
	// accumulated.
	return buf
}

// AllReduce sums x elementwise across all ranks and returns the result
// on every rank, implemented as an even-partition Reduce-Scatter
// followed by an All-Gather (cost 2*(q-1)/q * len(x) words each way).
func (c *Comm) AllReduce(x []float64) []float64 {
	span := obs.StartRank(c.ranks[c.me], obs.PhaseAllReduce)
	defer span.Stop()
	q := len(c.ranks)
	if q == 1 {
		return append([]float64(nil), x...)
	}
	chunks := make([][]float64, q)
	for j := 0; j < q; j++ {
		lo, hi := evenPart(len(x), q, j)
		chunks[j] = x[lo:hi]
	}
	own := c.ReduceScatterV(chunks)
	blocks := c.AllGatherV(own)
	out := make([]float64, 0, len(x))
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// Barrier synchronizes all ranks with zero-word token passes (no
// bandwidth cost in the model, two ring sweeps).
func (c *Comm) Barrier() {
	q := len(c.ranks)
	if q == 1 {
		return
	}
	right := (c.me + 1) % q
	left := (c.me - 1 + q) % q
	for sweep := 0; sweep < 2; sweep++ {
		c.Send(right, nil)
		c.Recv(left)
	}
}

// evenPart splits n items into q nearly equal contiguous parts and
// returns the bounds of part j (sizes differ by at most one, larger
// parts first).
func evenPart(n, q, j int) (lo, hi int) {
	base := n / q
	rem := n % q
	if j < rem {
		lo = j * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (j-rem)*base
	return lo, lo + base
}

// EvenPart exposes the partition rule used by AllReduce for tests and
// data-distribution code.
func EvenPart(n, q, j int) (lo, hi int) { return evenPart(n, q, j) }
