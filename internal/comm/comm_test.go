package comm

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

// runGroup executes body on every rank of a fresh network of size p
// and returns the network for stats inspection.
func runGroup(t *testing.T, p int, body func(c *Comm) error) *simnet.Network {
	t.Helper()
	net := simnet.New(p)
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = i
	}
	err := net.Run(func(rank int) error {
		return body(New(net, ranks, rank))
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestAllGatherVCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		p := p
		runGroup(t, p, func(c *Comm) error {
			mine := []float64{float64(c.Rank()) * 10, float64(c.Rank())*10 + 1}
			blocks := c.AllGatherV(mine)
			if len(blocks) != p {
				return fmt.Errorf("got %d blocks", len(blocks))
			}
			for j, b := range blocks {
				want := []float64{float64(j) * 10, float64(j)*10 + 1}
				if len(b) != 2 || b[0] != want[0] || b[1] != want[1] {
					return fmt.Errorf("rank %d block %d = %v", c.Rank(), j, b)
				}
			}
			return nil
		})
	}
}

func TestAllGatherVUnevenBlocks(t *testing.T) {
	runGroup(t, 4, func(c *Comm) error {
		// Rank r contributes r+1 words, value = rank.
		mine := make([]float64, c.Rank()+1)
		for i := range mine {
			mine[i] = float64(c.Rank())
		}
		blocks := c.AllGatherV(mine)
		for j, b := range blocks {
			if len(b) != j+1 {
				return fmt.Errorf("block %d has %d words", j, len(b))
			}
			for _, v := range b {
				if v != float64(j) {
					return fmt.Errorf("block %d contains %v", j, v)
				}
			}
		}
		return nil
	})
}

// The paper's cost claim: bucket All-Gather with balanced blocks of w
// words moves exactly (q-1)*w words out of (and into) each rank.
func TestAllGatherVBucketCost(t *testing.T) {
	const q, w = 5, 12
	net := runGroup(t, q, func(c *Comm) error {
		c.AllGatherV(make([]float64, w))
		return nil
	})
	for r := 0; r < q; r++ {
		s := net.RankStats(r)
		if s.SentWords != (q-1)*w || s.RecvWords != (q-1)*w {
			t.Fatalf("rank %d sent %d recv %d, want %d each", r, s.SentWords, s.RecvWords, (q-1)*w)
		}
		if s.SentMsgs != q-1 {
			t.Fatalf("rank %d sent %d messages, want q-1=%d", r, s.SentMsgs, q-1)
		}
	}
}

func TestAllGatherConcat(t *testing.T) {
	runGroup(t, 3, func(c *Comm) error {
		mine := []float64{float64(c.Rank())}
		got := c.AllGatherConcat(mine)
		if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
			return fmt.Errorf("concat = %v", got)
		}
		return nil
	})
}

func TestReduceScatterVCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		p := p
		runGroup(t, p, func(c *Comm) error {
			// Every rank contributes chunk j = [j, j+0.5] scaled by
			// (rank+1); chunk j's sum over ranks is j * sum(rank+1).
			contrib := make([][]float64, p)
			scale := float64(c.Rank() + 1)
			for j := range contrib {
				contrib[j] = []float64{float64(j) * scale, (float64(j) + 0.5) * scale}
			}
			got := c.ReduceScatterV(contrib)
			total := float64(p*(p+1)) / 2
			j := float64(c.Rank())
			want0, want1 := j*total, (j+0.5)*total
			if len(got) != 2 || math.Abs(got[0]-want0) > 1e-9 || math.Abs(got[1]-want1) > 1e-9 {
				return fmt.Errorf("rank %d got %v want [%v %v]", c.Rank(), got, want0, want1)
			}
			return nil
		})
	}
}

func TestReduceScatterVBucketCost(t *testing.T) {
	const q, w = 6, 9
	net := runGroup(t, q, func(c *Comm) error {
		contrib := make([][]float64, q)
		for j := range contrib {
			contrib[j] = make([]float64, w)
		}
		c.ReduceScatterV(contrib)
		return nil
	})
	for r := 0; r < q; r++ {
		s := net.RankStats(r)
		if s.SentWords != (q-1)*w || s.RecvWords != (q-1)*w {
			t.Fatalf("rank %d sent %d recv %d, want %d", r, s.SentWords, s.RecvWords, (q-1)*w)
		}
	}
}

func TestReduceScatterVUnevenChunks(t *testing.T) {
	runGroup(t, 3, func(c *Comm) error {
		contrib := [][]float64{
			{1},       // chunk 0: 1 word
			{2, 2},    // chunk 1: 2 words
			{3, 3, 3}, // chunk 2: 3 words
		}
		got := c.ReduceScatterV(contrib)
		wantLen := c.Rank() + 1
		if len(got) != wantLen {
			return fmt.Errorf("rank %d got %d words", c.Rank(), len(got))
		}
		for _, v := range got {
			if v != 3*float64(c.Rank()+1) {
				return fmt.Errorf("rank %d got %v", c.Rank(), got)
			}
		}
		return nil
	})
}

func TestReduceScatterVChunkCountPanics(t *testing.T) {
	net := simnet.New(1)
	c := New(net, []int{0}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.ReduceScatterV([][]float64{{1}, {2}})
}

func TestAllReduce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		p := p
		runGroup(t, p, func(c *Comm) error {
			x := []float64{1, 2, 3, 4, 5, 6, 7}
			got := c.AllReduce(x)
			for i, v := range got {
				want := x[i] * float64(p)
				if math.Abs(v-want) > 1e-9 {
					return fmt.Errorf("rank %d element %d: %v want %v", c.Rank(), i, v, want)
				}
			}
			return nil
		})
	}
}

func TestAllReduceMatchesNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(6)
		n := 1 + rng.Intn(20)
		inputs := make([][]float64, p)
		want := make([]float64, n)
		for r := range inputs {
			inputs[r] = make([]float64, n)
			for i := range inputs[r] {
				inputs[r][i] = rng.Float64()
				want[i] += inputs[r][i]
			}
		}
		net := simnet.New(p)
		ranks := make([]int, p)
		for i := range ranks {
			ranks[i] = i
		}
		var mu sync.Mutex
		ok := true
		err := net.Run(func(rank int) error {
			c := New(net, ranks, rank)
			got := c.AllReduce(inputs[rank])
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// AllReduce = Reduce-Scatter + All-Gather: for n divisible by q, each
// rank sends exactly 2*(q-1)*(n/q) words.
func TestAllReduceBucketCost(t *testing.T) {
	const q, n = 4, 32
	net := runGroup(t, q, func(c *Comm) error {
		c.AllReduce(make([]float64, n))
		return nil
	})
	want := int64(2 * (q - 1) * (n / q))
	for r := 0; r < q; r++ {
		if s := net.RankStats(r); s.SentWords != want || s.RecvWords != want {
			t.Fatalf("rank %d sent %d recv %d, want %d", r, s.SentWords, s.RecvWords, want)
		}
	}
}

// Latency proxy: a bucket All-Gather takes exactly q-1 messages per
// rank; AllReduce takes 2(q-1).
func TestCollectiveMessageCounts(t *testing.T) {
	const q = 5
	net := runGroup(t, q, func(c *Comm) error {
		c.AllGatherV([]float64{1})
		c.AllReduce(make([]float64, 10))
		return nil
	})
	for r := 0; r < q; r++ {
		if s := net.RankStats(r); s.SentMsgs != 3*(q-1) {
			t.Fatalf("rank %d sent %d messages, want %d", r, s.SentMsgs, 3*(q-1))
		}
	}
}

func TestBarrierNoWords(t *testing.T) {
	net := runGroup(t, 4, func(c *Comm) error {
		c.Barrier()
		return nil
	})
	if net.MaxWords() != 0 {
		t.Fatalf("barrier moved %d words", net.MaxWords())
	}
}

func TestSubCommunicator(t *testing.T) {
	// Two disjoint groups {0,2} and {1,3} gather independently.
	net := simnet.New(4)
	err := net.Run(func(rank int) error {
		var group []int
		if rank%2 == 0 {
			group = []int{0, 2}
		} else {
			group = []int{1, 3}
		}
		c := New(net, group, rank)
		if c.Size() != 2 {
			return fmt.Errorf("size %d", c.Size())
		}
		blocks := c.AllGatherV([]float64{float64(rank)})
		// Member j of the group contributed its global rank.
		for j, b := range blocks {
			if b[0] != float64(group[j]) {
				return fmt.Errorf("rank %d block %d = %v", rank, j, b)
			}
		}
		if c.GlobalRank() != rank {
			return fmt.Errorf("GlobalRank = %d", c.GlobalRank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewPanics(t *testing.T) {
	net := simnet.New(2)
	for _, f := range []func(){
		func() { New(net, []int{0, 5}, 0) },
		func() { New(net, []int{0, 0}, 0) },
		func() { New(net, []int{0}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEvenPart(t *testing.T) {
	// 10 items over 4 parts: sizes 3,3,2,2, contiguous and covering.
	sizes := []int{3, 3, 2, 2}
	pos := 0
	for j := 0; j < 4; j++ {
		lo, hi := EvenPart(10, 4, j)
		if lo != pos || hi-lo != sizes[j] {
			t.Fatalf("part %d = [%d,%d), want start %d size %d", j, lo, hi, pos, sizes[j])
		}
		pos = hi
	}
	if pos != 10 {
		t.Fatal("parts do not cover")
	}
	// Degenerate: more parts than items.
	total := 0
	for j := 0; j < 5; j++ {
		lo, hi := EvenPart(3, 5, j)
		total += hi - lo
	}
	if total != 3 {
		t.Fatal("uneven tiny partition broken")
	}
}
