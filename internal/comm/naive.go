package comm

import "fmt"

// This file implements *naive* collectives — gather-to-root plus
// broadcast-from-root — as an ablation against the bucket algorithms.
// The paper assumes bucket collectives because their (q-1)*w cost is
// bandwidth-optimal; the naive versions concentrate (q-1)*total words
// on the root, so the max-per-processor cost is a factor ~q worse for
// balanced inputs. Tests and benchmarks quantify exactly that gap.

// NaiveAllGatherV gathers every rank's block to rank 0, which then
// sends the full collection to every other rank.
func (c *Comm) NaiveAllGatherV(mine []float64) [][]float64 {
	q := len(c.ranks)
	blocks := make([][]float64, q)
	blocks[c.me] = append([]float64(nil), mine...)
	if q == 1 {
		return blocks
	}
	if c.me == 0 {
		for src := 1; src < q; src++ {
			blocks[src] = c.Recv(src)
		}
		// Broadcast: concatenate with a length header per block so
		// receivers can split.
		payload := encodeBlocks(blocks)
		for dst := 1; dst < q; dst++ {
			c.Send(dst, payload)
		}
		return blocks
	}
	c.Send(0, mine)
	return decodeBlocks(c.Recv(0), q)
}

// NaiveReduceScatterV reduces all contributions at rank 0 and sends
// each rank its chunk.
func (c *Comm) NaiveReduceScatterV(contrib [][]float64) []float64 {
	q := len(c.ranks)
	if len(contrib) != q {
		panic(fmt.Sprintf("comm: NaiveReduceScatterV got %d chunks for %d ranks", len(contrib), q))
	}
	if q == 1 {
		return append([]float64(nil), contrib[0]...)
	}
	if c.me == 0 {
		// Accumulate everyone's full contribution.
		sum := make([][]float64, q)
		for j := range sum {
			sum[j] = append([]float64(nil), contrib[j]...)
		}
		for src := 1; src < q; src++ {
			in := decodeBlocks(c.Recv(src), q)
			for j := range sum {
				if len(in[j]) != len(sum[j]) {
					panic(fmt.Sprintf("comm: chunk %d length mismatch: %d vs %d", j, len(in[j]), len(sum[j])))
				}
				for i := range sum[j] {
					sum[j][i] += in[j][i]
				}
			}
		}
		for dst := 1; dst < q; dst++ {
			c.Send(dst, sum[dst])
		}
		return sum[0]
	}
	c.Send(0, encodeBlocks(contrib))
	return c.Recv(0)
}

// encodeBlocks flattens variable-length blocks with a per-block length
// header (lengths as float64 words; counted as real traffic, which
// only penalizes the naive scheme it belongs to).
func encodeBlocks(blocks [][]float64) []float64 {
	total := len(blocks)
	for _, b := range blocks {
		total += len(b)
	}
	out := make([]float64, 0, total)
	for _, b := range blocks {
		out = append(out, float64(len(b)))
		out = append(out, b...)
	}
	return out
}

func decodeBlocks(payload []float64, q int) [][]float64 {
	out := make([][]float64, q)
	at := 0
	for j := 0; j < q; j++ {
		if at >= len(payload) {
			panic("comm: truncated naive-collective payload")
		}
		n := int(payload[at])
		at++
		if at+n > len(payload) {
			panic("comm: truncated naive-collective payload")
		}
		out[j] = append([]float64(nil), payload[at:at+n]...)
		at += n
	}
	return out
}
