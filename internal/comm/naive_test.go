package comm

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/simnet"
)

func TestNaiveAllGatherVCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		p := p
		runGroup(t, p, func(c *Comm) error {
			mine := make([]float64, c.Rank()+1)
			for i := range mine {
				mine[i] = float64(c.Rank())
			}
			blocks := c.NaiveAllGatherV(mine)
			for j, b := range blocks {
				if len(b) != j+1 {
					return fmt.Errorf("block %d has %d words", j, len(b))
				}
				for _, v := range b {
					if v != float64(j) {
						return fmt.Errorf("block %d = %v", j, b)
					}
				}
			}
			return nil
		})
	}
}

func TestNaiveReduceScatterVCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		p := p
		runGroup(t, p, func(c *Comm) error {
			contrib := make([][]float64, p)
			for j := range contrib {
				contrib[j] = []float64{float64(j) * float64(c.Rank()+1), 1}
			}
			got := c.ReduceScatterV(contrib)
			want := c.NaiveReduceScatterV(contrib)
			if len(got) != len(want) {
				return fmt.Errorf("length mismatch")
			}
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					return fmt.Errorf("bucket %v vs naive %v", got, want)
				}
			}
			return nil
		})
	}
}

// The ablation: for balanced blocks, the naive all-gather's root
// sends/receives ~q times more words than any rank under the bucket
// algorithm.
func TestNaiveVsBucketMaxWords(t *testing.T) {
	const q, w = 8, 32

	bucket := simnet.New(q)
	ranks := make([]int, q)
	for i := range ranks {
		ranks[i] = i
	}
	err := bucket.Run(func(rank int) error {
		New(bucket, ranks, rank).AllGatherV(make([]float64, w))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	naive := simnet.New(q)
	err = naive.Run(func(rank int) error {
		New(naive, ranks, rank).NaiveAllGatherV(make([]float64, w))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if naive.MaxWords() < 3*bucket.MaxWords() {
		t.Fatalf("naive root (%d words) should be several times worse than bucket (%d words)",
			naive.MaxWords(), bucket.MaxWords())
	}
	// And the bucket cost is exactly 2*(q-1)*w per rank.
	if bucket.MaxWords() != 2*(q-1)*w {
		t.Fatalf("bucket max words %d, want %d", bucket.MaxWords(), 2*(q-1)*w)
	}
}

func TestNaiveChunkCountPanics(t *testing.T) {
	net := simnet.New(1)
	c := New(net, []int{0}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.NaiveReduceScatterV([][]float64{{1}, {2}})
}

func TestDecodeBlocksPanicsOnTruncation(t *testing.T) {
	for _, payload := range [][]float64{
		{},
		{5, 1, 2}, // claims 5 words, has 2
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			decodeBlocks(payload, 2)
		}()
	}
}
