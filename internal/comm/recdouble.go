package comm

import (
	"fmt"
	"math/bits"
)

// RDAllGather is a recursive-doubling All-Gather for *uniform* block
// sizes: log2(q) rounds, in round t each rank exchanges its
// accumulated 2^t blocks with the partner whose rank differs in bit t.
// Bandwidth equals the bucket algorithm's (q-1)*w per rank, but only
// log2(q) messages are needed instead of q-1 — the latency/bandwidth
// trade the paper sets aside ("we focus on the amount of data
// communicated and ignore the number of messages"). Requires q to be a
// power of two and every rank to contribute exactly the same number of
// words.
func (c *Comm) RDAllGather(mine []float64) [][]float64 {
	q := len(c.ranks)
	if q&(q-1) != 0 {
		panic(fmt.Sprintf("comm: recursive doubling needs power-of-two group, got %d", q))
	}
	w := len(mine)
	blocks := make([][]float64, q)
	blocks[c.me] = append([]float64(nil), mine...)
	if q == 1 {
		return blocks
	}
	rounds := bits.TrailingZeros(uint(q))
	for t := 0; t < rounds; t++ {
		span := 1 << uint(t)
		partner := c.me ^ span
		myGroup := c.me &^ (span - 1)
		payload := make([]float64, 0, span*w)
		for j := myGroup; j < myGroup+span; j++ {
			if len(blocks[j]) != w {
				panic(fmt.Sprintf("comm: RDAllGather needs uniform blocks, got %d vs %d", len(blocks[j]), w))
			}
			payload = append(payload, blocks[j]...)
		}
		// Fixed order (lower rank sends first) for a reproducible
		// trace; buffering makes either order deadlock-free.
		var in []float64
		if c.me < partner {
			c.Send(partner, payload)
			in = c.Recv(partner)
		} else {
			in = c.Recv(partner)
			c.Send(partner, payload)
		}
		if len(in) != span*w {
			panic(fmt.Sprintf("comm: RDAllGather partner payload %d, want %d", len(in), span*w))
		}
		theirs := partner &^ (span - 1)
		for j := 0; j < span; j++ {
			blocks[theirs+j] = in[j*w : (j+1)*w]
		}
	}
	return blocks
}
