package comm

import (
	"fmt"

	"repro/internal/obs"
)

// RDAllGather is a doubling All-Gather for *uniform* block sizes:
// ceil(log2(q)) rounds, each at most doubling the number of blocks a
// rank holds. For power-of-two q this is classic recursive doubling
// (round t exchanges 2^t blocks with the partner whose rank differs in
// bit t, up to Bruck's rotation); for general q it is Bruck's
// algorithm, whose round t sends min(2^t, q-2^t) blocks to rank
// me-2^t and receives the same from rank me+2^t (mod q). Either way
// each rank moves exactly
//
//	sum_t min(2^t, q-2^t) * w = (q-1)*w
//
// words in each direction — the bucket algorithm's bandwidth, matching
// the per-slice All-Gather term of Eq. (14) — but in only
// ceil(log2(q)) messages instead of q-1, the latency/bandwidth trade
// the paper sets aside ("we focus on the amount of data communicated
// and ignore the number of messages"). Every rank must contribute
// exactly the same number of words.
func (c *Comm) RDAllGather(mine []float64) [][]float64 {
	span := obs.StartRank(c.ranks[c.me], obs.PhaseAllGather)
	defer span.Stop()
	q := len(c.ranks)
	w := len(mine)
	blocks := make([][]float64, q)
	blocks[c.me] = append([]float64(nil), mine...)
	if q == 1 {
		return blocks
	}
	// Bruck's rotated indexing: local[j] holds the block of rank
	// (me+j) mod q, so every round sends a contiguous prefix of the
	// blocks held so far. simnet copies payloads on Send, so the
	// staging buffer is reused across rounds.
	local := make([][]float64, q)
	local[0] = blocks[c.me]
	payload := make([]float64, 0, q*w)
	for have := 1; have < q; {
		b := have
		if q-have < b {
			b = q - have
		}
		to := (c.me - have + q) % q
		from := (c.me + have) % q
		payload = payload[:0]
		for j := 0; j < b; j++ {
			if len(local[j]) != w {
				panic(fmt.Sprintf("comm: RDAllGather needs uniform blocks, got %d vs %d", len(local[j]), w))
			}
			payload = append(payload, local[j]...)
		}
		// Buffered channels make send-then-receive deadlock-free even
		// though every rank sends first.
		c.Send(to, payload)
		in := c.Recv(from)
		if len(in) != b*w {
			panic(fmt.Sprintf("comm: RDAllGather partner payload %d, want %d", len(in), b*w))
		}
		for j := 0; j < b; j++ {
			local[have+j] = in[j*w : (j+1)*w]
		}
		have += b
	}
	for j := 1; j < q; j++ {
		blocks[(c.me+j)%q] = local[j]
	}
	return blocks
}
