package comm

import (
	"fmt"
	"testing"

	"repro/internal/simnet"
)

func TestRDAllGatherCorrect(t *testing.T) {
	for _, q := range []int{1, 2, 4, 8, 16} {
		q := q
		runGroup(t, q, func(c *Comm) error {
			mine := []float64{float64(c.Rank()), float64(c.Rank()) + 0.5}
			blocks := c.RDAllGather(mine)
			if len(blocks) != q {
				return fmt.Errorf("got %d blocks", len(blocks))
			}
			for j, b := range blocks {
				if len(b) != 2 || b[0] != float64(j) || b[1] != float64(j)+0.5 {
					return fmt.Errorf("rank %d block %d = %v", c.Rank(), j, b)
				}
			}
			return nil
		})
	}
}

// The ablation: same bandwidth as the bucket algorithm, exponentially
// fewer messages.
func TestRDVsBucketCosts(t *testing.T) {
	const q, w = 8, 64
	bucket := runGroup(t, q, func(c *Comm) error {
		c.AllGatherV(make([]float64, w))
		return nil
	})
	rd := runGroup(t, q, func(c *Comm) error {
		c.RDAllGather(make([]float64, w))
		return nil
	})
	for r := 0; r < q; r++ {
		sb, sr := bucket.RankStats(r), rd.RankStats(r)
		if sb.SentWords != sr.SentWords {
			t.Fatalf("rank %d: bucket %d words vs RD %d words (should match)",
				r, sb.SentWords, sr.SentWords)
		}
		if sb.SentMsgs != q-1 || sr.SentMsgs != 3 { // log2(8) = 3
			t.Fatalf("rank %d: bucket %d msgs (want %d), RD %d msgs (want 3)",
				r, sb.SentMsgs, q-1, sr.SentMsgs)
		}
	}
}

func TestRDAllGatherPanics(t *testing.T) {
	net := simnet.New(3)
	ranks := []int{0, 1, 2}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two group")
		}
	}()
	c := New(net, ranks, 0)
	c.RDAllGather([]float64{1})
}
