package comm

import (
	"fmt"
	"testing"
)

func TestRDAllGatherCorrect(t *testing.T) {
	for _, q := range []int{1, 2, 3, 4, 5, 6, 7, 8, 11, 16} {
		q := q
		runGroup(t, q, func(c *Comm) error {
			mine := []float64{float64(c.Rank()), float64(c.Rank()) + 0.5}
			blocks := c.RDAllGather(mine)
			if len(blocks) != q {
				return fmt.Errorf("got %d blocks", len(blocks))
			}
			for j, b := range blocks {
				if len(b) != 2 || b[0] != float64(j) || b[1] != float64(j)+0.5 {
					return fmt.Errorf("rank %d block %d = %v", c.Rank(), j, b)
				}
			}
			return nil
		})
	}
}

// The ablation: same bandwidth as the bucket algorithm, exponentially
// fewer messages.
func TestRDVsBucketCosts(t *testing.T) {
	const q, w = 8, 64
	bucket := runGroup(t, q, func(c *Comm) error {
		c.AllGatherV(make([]float64, w))
		return nil
	})
	rd := runGroup(t, q, func(c *Comm) error {
		c.RDAllGather(make([]float64, w))
		return nil
	})
	for r := 0; r < q; r++ {
		sb, sr := bucket.RankStats(r), rd.RankStats(r)
		if sb.SentWords != sr.SentWords {
			t.Fatalf("rank %d: bucket %d words vs RD %d words (should match)",
				r, sb.SentWords, sr.SentWords)
		}
		if sb.SentMsgs != q-1 || sr.SentMsgs != 3 { // log2(8) = 3
			t.Fatalf("rank %d: bucket %d msgs (want %d), RD %d msgs (want 3)",
				r, sb.SentMsgs, q-1, sr.SentMsgs)
		}
	}
}

// Bruck's generalization keeps the (q-1)*w bandwidth and the
// ceil(log2 q) message count for non-power-of-two groups.
func TestRDAllGatherNonPowerOfTwoCosts(t *testing.T) {
	const w = 16
	for _, q := range []int{3, 5, 6, 7, 11} {
		q := q
		net := runGroup(t, q, func(c *Comm) error {
			c.RDAllGather(make([]float64, w))
			return nil
		})
		rounds := int64(0)
		for s := 1; s < q; s *= 2 {
			rounds++
		}
		for r := 0; r < q; r++ {
			s := net.RankStats(r)
			if s.SentWords != int64(q-1)*w || s.RecvWords != int64(q-1)*w {
				t.Fatalf("q=%d rank %d: sent %d recv %d words, want %d each",
					q, r, s.SentWords, s.RecvWords, (q-1)*w)
			}
			if s.SentMsgs != rounds {
				t.Fatalf("q=%d rank %d: %d msgs, want ceil(log2 q) = %d",
					q, r, s.SentMsgs, rounds)
			}
		}
	}
}

func TestRDAllGatherPanicsOnUnevenBlocks(t *testing.T) {
	runGroup(t, 2, func(c *Comm) error {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-uniform blocks")
			}
		}()
		c.RDAllGather(make([]float64, 1+c.Rank()))
		return nil
	})
}
