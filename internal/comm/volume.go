package comm

// Volume is the measured word traffic through one communicator
// endpoint: every word handed to Send and every word returned by Recv,
// including the length-header words the naive collectives encode (they
// are real modeled traffic). Collectives *return* their volumes via the
// *Vol variants below so callers can compare the measurement against
// the closed forms of Eq. (14) without scraping logs or the network's
// global statistics.
type Volume struct {
	Sent int64 `json:"sent"`
	Recv int64 `json:"recv"`
}

// Words returns the endpoint's total traffic, sent plus received.
func (v Volume) Words() int64 { return v.Sent + v.Recv }

// add returns the component-wise sum.
func (v Volume) add(o Volume) Volume { return Volume{v.Sent + o.Sent, v.Recv + o.Recv} }

// sub returns the component-wise difference.
func (v Volume) sub(o Volume) Volume { return Volume{v.Sent - o.Sent, v.Recv - o.Recv} }

// Volume returns the cumulative traffic through this communicator since
// construction (or the last TakeVolume).
func (c *Comm) Volume() Volume { return c.vol }

// TakeVolume returns the cumulative traffic and resets the counter, so
// successive calls bracket successive collectives.
func (c *Comm) TakeVolume() Volume {
	v := c.vol
	c.vol = Volume{}
	return v
}

// measure runs fn and returns the traffic it caused on this endpoint.
func (c *Comm) measure(fn func()) Volume {
	before := c.vol
	fn()
	return c.vol.sub(before)
}

// AllGatherVVol is AllGatherV returning the caller's measured traffic.
// For balanced blocks of w words the bucket algorithm moves
// (q-1)*w each way — the per-slice term of Eq. (14).
func (c *Comm) AllGatherVVol(mine []float64) (blocks [][]float64, v Volume) {
	v = c.measure(func() { blocks = c.AllGatherV(mine) })
	return blocks, v
}

// NaiveAllGatherVVol is NaiveAllGatherV returning the caller's measured
// traffic. Rank 0 receives (q-1)*w and rebroadcasts the encoded
// collection — (q-1)*(q*w+q) sent for balanced blocks — while every
// other rank sends w and receives q*w+q.
func (c *Comm) NaiveAllGatherVVol(mine []float64) (blocks [][]float64, v Volume) {
	v = c.measure(func() { blocks = c.NaiveAllGatherV(mine) })
	return blocks, v
}

// RDAllGatherVol is RDAllGather returning the caller's measured
// traffic: (q-1)*w each way for any q, matching the bucket algorithm.
func (c *Comm) RDAllGatherVol(mine []float64) (blocks [][]float64, v Volume) {
	v = c.measure(func() { blocks = c.RDAllGather(mine) })
	return blocks, v
}

// ReduceScatterVVol is ReduceScatterV returning the caller's measured
// traffic: (q-1)*w each way for balanced chunks of w words.
func (c *Comm) ReduceScatterVVol(contrib [][]float64) (out []float64, v Volume) {
	v = c.measure(func() { out = c.ReduceScatterV(contrib) })
	return out, v
}

// NaiveReduceScatterVVol is NaiveReduceScatterV returning the caller's
// measured traffic.
func (c *Comm) NaiveReduceScatterVVol(contrib [][]float64) (out []float64, v Volume) {
	v = c.measure(func() { out = c.NaiveReduceScatterV(contrib) })
	return out, v
}

// AllReduceVol is AllReduce returning the caller's measured traffic:
// 2*(q-1)/q*n words each way for n-word inputs (up to partition
// rounding).
func (c *Comm) AllReduceVol(x []float64) (out []float64, v Volume) {
	v = c.measure(func() { out = c.AllReduce(x) })
	return out, v
}
