package comm

import (
	"testing"

	"repro/internal/costmodel"
)

// The *Vol variants must return exactly the traffic the closed forms
// predict — for non-power-of-two q too, where the Bruck generalization
// carries the doubling All-Gather. Eq. (14) counts (q-1)*w sends per
// rank per slice collective; the naive ablation's closed form includes
// the q length-header words its encoded rebroadcast carries.
func TestAllGatherVolumesMatchClosedForms(t *testing.T) {
	const w = 12
	for _, q := range []int{2, 3, 5, 6, 7, 8} {
		q := q
		vols := make([]Volume, q)
		naive := make([]Volume, q)
		runGroup(t, q, func(c *Comm) error {
			mine := make([]float64, w)
			_, v := c.RDAllGatherVol(mine)
			vols[c.Rank()] = v
			_, nv := c.NaiveAllGatherVVol(mine)
			naive[c.Rank()] = nv
			return nil
		})
		// Bucket-bandwidth closed form: (q-1)*w each way, every rank.
		want := int64(q-1) * w
		for r, v := range vols {
			if v.Sent != want || v.Recv != want {
				t.Fatalf("q=%d rank %d: RD volume %+v, want %d each way", q, r, v, want)
			}
		}
		// Naive closed form: rank 0 receives (q-1)*w and rebroadcasts the
		// encoded collection of q*w+q words to q-1 peers; everyone else
		// sends w and receives that collection.
		encoded := int64(q*w + q)
		if naive[0].Recv != want || naive[0].Sent != int64(q-1)*encoded {
			t.Fatalf("q=%d root: naive volume %+v, want recv %d sent %d",
				q, naive[0], want, int64(q-1)*encoded)
		}
		for r := 1; r < q; r++ {
			if naive[r].Sent != w || naive[r].Recv != encoded {
				t.Fatalf("q=%d rank %d: naive volume %+v, want sent %d recv %d",
					q, r, naive[r], w, encoded)
			}
		}
	}
}

// A full Algorithm 3 exchange round on a grid fiber: per-mode
// All-Gather volumes summed over modes must equal Eq. (14)'s
// Alg3Words. Uses a non-power-of-two grid so the generalized doubling
// path is the one being certified.
func TestFiberAllGatherMatchesEq14(t *testing.T) {
	dims := []float64{12, 12, 12}
	R := 4.0
	shape := []float64{3, 2, 1} // P = 6, non-power-of-two fiber of size 3
	m := costmodel.Model{Dims: dims, R: R}
	want := m.Alg3Words(shape)

	// Balanced distribution: rank volume for mode k's fiber All-Gather
	// is (P/P_k - 1) * I_k*R/P each direction; simulate each mode's
	// fiber as its own group of size q_k = P/P_k gathering blocks of
	// I_k*R/P words.
	P := 6.0
	var got float64
	for k := range dims {
		qk := int(P / shape[k])
		wk := int(dims[k] * R / P)
		vols := make([]Volume, qk)
		runGroup(t, qk, func(c *Comm) error {
			_, v := c.RDAllGatherVol(make([]float64, wk))
			vols[c.Rank()] = v
			return nil
		})
		for r, v := range vols {
			if v.Sent != vols[0].Sent {
				t.Fatalf("mode %d rank %d: unbalanced fiber volume %+v vs %+v", k, r, v, vols[0])
			}
		}
		got += float64(vols[0].Sent)
	}
	if got != want {
		t.Fatalf("summed fiber All-Gather sends = %v, Eq. (14) = %v", got, want)
	}
}

// TakeVolume brackets successive collectives without cross-talk.
func TestTakeVolumeBrackets(t *testing.T) {
	const q, w = 4, 8
	runGroup(t, q, func(c *Comm) error {
		c.AllGatherV(make([]float64, w))
		first := c.TakeVolume()
		if first.Sent != (q-1)*w || first.Recv != (q-1)*w {
			t.Errorf("first volume %+v, want %d each way", first, (q-1)*w)
		}
		chunks := make([][]float64, q)
		for j := range chunks {
			chunks[j] = make([]float64, w)
		}
		c.ReduceScatterV(chunks)
		second := c.TakeVolume()
		if second.Sent != (q-1)*w || second.Recv != (q-1)*w {
			t.Errorf("second volume %+v, want %d each way", second, (q-1)*w)
		}
		if v := c.Volume(); v.Sent != 0 || v.Recv != 0 {
			t.Errorf("volume after TakeVolume = %+v, want zero", v)
		}
		return nil
	})
}
