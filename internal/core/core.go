// Package core is the high-level MTTKRP API tying the paper's pieces
// together: a plain in-memory kernel, the instrumented sequential
// algorithms (Algorithms 1-2 and the via-matmul baseline) on the
// two-level memory model, the parallel algorithms (Algorithms 3-4 and
// the 1D matmul baseline) on the simulated distributed machine, and
// automatic algorithm/grid selection guided by the paper's cost models
// and regime analysis.
package core

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/costmodel"
	"repro/internal/kernel"
	"repro/internal/memsim"
	"repro/internal/par"
	"repro/internal/seq"
	"repro/internal/tensor"
)

// MTTKRP computes B(n) for the dense tensor and factor matrices using
// the KRP-splitting shared-memory engine (kernel.Fast), with no
// communication accounting. factors[n] is ignored and may be nil.
// Results match the atomic reference kernel (seq.Ref) up to
// floating-point reassociation.
func MTTKRP(x *tensor.Dense, factors []*tensor.Matrix, n int) *tensor.Matrix {
	return kernel.Fast(x, factors, n)
}

// SeqAlgorithm selects an instrumented sequential algorithm.
type SeqAlgorithm int

const (
	// SeqAuto picks Blocked with the Theorem 6.1 block size.
	SeqAuto SeqAlgorithm = iota
	// SeqUnblocked is Algorithm 1.
	SeqUnblocked
	// SeqBlocked is Algorithm 2 (communication optimal).
	SeqBlocked
	// SeqViaMatmul is the matricize + explicit-KRP + GEMM baseline.
	SeqViaMatmul
)

func (a SeqAlgorithm) String() string {
	switch a {
	case SeqAuto:
		return "auto"
	case SeqUnblocked:
		return "unblocked"
	case SeqBlocked:
		return "blocked"
	case SeqViaMatmul:
		return "via-matmul"
	}
	return fmt.Sprintf("SeqAlgorithm(%d)", int(a))
}

// SeqOptions configures Sequential.
type SeqOptions struct {
	Algorithm SeqAlgorithm
	M         int64 // fast memory capacity in words
	BlockSize int   // Algorithm 2 block size; 0 = choose via Alpha
	Alpha     float64
}

// Sequential runs an instrumented sequential MTTKRP on a fresh
// two-level memory machine of capacity opts.M and returns the result
// together with its exact load/store counts.
func Sequential(x *tensor.Dense, factors []*tensor.Matrix, n int, opts SeqOptions) (*seq.Result, error) {
	if opts.M <= 0 {
		return nil, fmt.Errorf("core: fast memory capacity M must be positive, got %d", opts.M)
	}
	mach := memsim.New(opts.M)
	switch opts.Algorithm {
	case SeqUnblocked:
		return seq.Unblocked(x, factors, n, mach)
	case SeqViaMatmul:
		return seq.ViaMatmul(x, factors, n, mach)
	case SeqAuto, SeqBlocked:
		b := opts.BlockSize
		if b == 0 {
			alpha := opts.Alpha
			if alpha == 0 { //repro:bitwise unset-option sentinel, exact
				alpha = 0.9
			}
			var err error
			b, err = seq.ChooseBlock(opts.M, x.Order(), alpha)
			if err != nil {
				return nil, err
			}
		}
		return seq.Blocked(x, factors, n, b, mach)
	default:
		return nil, fmt.Errorf("core: unknown sequential algorithm %v", opts.Algorithm)
	}
}

// ParAlgorithm selects a parallel algorithm.
type ParAlgorithm int

const (
	// ParAuto picks Stationary or General by the Corollary 4.2 regime
	// test NR vs (I/P)^(1-1/N).
	ParAuto ParAlgorithm = iota
	// ParStationary is Algorithm 3.
	ParStationary
	// ParGeneral is Algorithm 4.
	ParGeneral
	// ParViaMatmul is the 1D matmul baseline of Section VI-B.
	ParViaMatmul
)

func (a ParAlgorithm) String() string {
	switch a {
	case ParAuto:
		return "auto"
	case ParStationary:
		return "stationary"
	case ParGeneral:
		return "general"
	case ParViaMatmul:
		return "via-matmul-1d"
	}
	return fmt.Sprintf("ParAlgorithm(%d)", int(a))
}

// ParOptions configures Parallel.
type ParOptions struct {
	Algorithm ParAlgorithm
	P         int   // processor count (used when Grid is nil)
	Grid      []int // explicit grid shape; overrides P
}

// Parallel runs a parallel MTTKRP on the simulated distributed-memory
// machine and returns the reassembled result plus per-processor
// communication statistics. When no explicit grid is given, the grid
// minimizing the exact Eq. (14)/(18) cost is chosen.
func Parallel(x *tensor.Dense, factors []*tensor.Matrix, n int, opts ParOptions) (*par.Result, error) {
	alg := opts.Algorithm
	if alg == ParAuto {
		P := opts.P
		if opts.Grid != nil {
			P = 1
			for _, s := range opts.Grid {
				P *= s
			}
		}
		prob := bounds.Problem{Dims: x.Dims(), R: factorCols(x, factors, n)}
		if bounds.LargeRankRegime(prob, float64(P)) {
			alg = ParGeneral
		} else {
			alg = ParStationary
		}
	}
	switch alg {
	case ParStationary:
		shape := opts.Grid
		if shape == nil {
			var err error
			shape, err = costmodel.BestStationaryExact(x.Dims(), factorCols(x, factors, n), opts.P)
			if err != nil {
				return nil, err
			}
		}
		return par.Stationary(x, factors, n, shape)
	case ParGeneral:
		shape := opts.Grid
		if shape == nil {
			var err error
			shape, err = costmodel.BestGeneralExact(x.Dims(), factorCols(x, factors, n), opts.P)
			if err != nil {
				return nil, err
			}
		}
		return par.General(x, factors, n, shape)
	case ParViaMatmul:
		P := opts.P
		if opts.Grid != nil {
			P = 1
			for _, s := range opts.Grid {
				P *= s
			}
		}
		return par.ViaMatmul1D(x, factors, n, P)
	default:
		return nil, fmt.Errorf("core: unknown parallel algorithm %v", opts.Algorithm)
	}
}

func factorCols(x *tensor.Dense, factors []*tensor.Matrix, n int) int {
	for k, f := range factors {
		if k != n && f != nil {
			return f.Cols()
		}
	}
	panic("core: no participating factor")
}

// Bounds reports every lower bound of Section IV for the given
// problem/machine parameters, for display alongside measured counts.
type Bounds struct {
	SeqMemDependent float64 // Theorem 4.1
	SeqTrivial      float64 // Fact 4.1
	ParMemDependent float64 // Corollary 4.1
	ParIndependent1 float64 // Theorem 4.2
	ParIndependent2 float64 // Theorem 4.3
}

// AllBounds evaluates the full bound set with gamma = delta = 1
// (exactly balanced distributions, which is what this library's
// layouts provide).
func AllBounds(dims []int, R int, M float64, P float64) Bounds {
	prob := bounds.Problem{Dims: dims, R: R}
	return Bounds{
		SeqMemDependent: bounds.SeqMemDependent(prob, M),
		SeqTrivial:      bounds.SeqTrivial(prob, M),
		ParMemDependent: bounds.ParMemDependent(prob, M, P),
		ParIndependent1: bounds.ParMemIndependent1(prob, P, 1, 1),
		ParIndependent2: bounds.ParMemIndependent2(prob, P, 1, 1),
	}
}
