package core

import (
	"testing"

	"repro/internal/seq"
	"repro/internal/tensor"
)

func problem(t *testing.T) (*tensor.Dense, []*tensor.Matrix) {
	t.Helper()
	dims := []int{8, 8, 8}
	return tensor.RandomDense(1, dims...), tensor.RandomFactors(2, dims, 4)
}

func TestMTTKRPMatchesRef(t *testing.T) {
	x, fs := problem(t)
	for n := 0; n < 3; n++ {
		// The engine reassociates the factor products, so results match
		// the atomic reference to rounding rather than bitwise.
		if !MTTKRP(x, fs, n).EqualApprox(seq.Ref(x, fs, n), 1e-10) {
			t.Fatalf("mode %d mismatch", n)
		}
	}
}

func TestSequentialAlgorithms(t *testing.T) {
	x, fs := problem(t)
	want := seq.Ref(x, fs, 1)
	for _, alg := range []SeqAlgorithm{SeqAuto, SeqUnblocked, SeqBlocked, SeqViaMatmul} {
		res, err := Sequential(x, fs, 1, SeqOptions{Algorithm: alg, M: 512})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.B.EqualApprox(want, 1e-9) {
			t.Fatalf("%v: wrong result", alg)
		}
		if res.Counts.Words() <= 0 {
			t.Fatalf("%v: no communication counted", alg)
		}
	}
}

func TestSequentialAutoBeatsUnblocked(t *testing.T) {
	x, fs := problem(t)
	auto, err := Sequential(x, fs, 0, SeqOptions{M: 512})
	if err != nil {
		t.Fatal(err)
	}
	unb, err := Sequential(x, fs, 0, SeqOptions{Algorithm: SeqUnblocked, M: 512})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Counts.Words() >= unb.Counts.Words() {
		t.Fatalf("auto (blocked) %d words should beat unblocked %d",
			auto.Counts.Words(), unb.Counts.Words())
	}
}

func TestSequentialExplicitBlockSize(t *testing.T) {
	x, fs := problem(t)
	res, err := Sequential(x, fs, 0, SeqOptions{Algorithm: SeqBlocked, M: 512, BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.B.EqualApprox(seq.Ref(x, fs, 0), 1e-9) {
		t.Fatal("wrong result with explicit block size")
	}
}

func TestSequentialErrors(t *testing.T) {
	x, fs := problem(t)
	if _, err := Sequential(x, fs, 0, SeqOptions{M: 0}); err == nil {
		t.Fatal("M=0 should error")
	}
	if _, err := Sequential(x, fs, 0, SeqOptions{Algorithm: SeqAlgorithm(99), M: 64}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
	if _, err := Sequential(x, fs, 0, SeqOptions{Algorithm: SeqBlocked, M: 64, BlockSize: 10}); err == nil {
		t.Fatal("oversized block should error")
	}
}

func TestParallelAlgorithms(t *testing.T) {
	x, fs := problem(t)
	want := seq.Ref(x, fs, 2)
	for _, alg := range []ParAlgorithm{ParAuto, ParStationary, ParGeneral, ParViaMatmul} {
		res, err := Parallel(x, fs, 2, ParOptions{Algorithm: alg, P: 8})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.B.EqualApprox(want, 1e-9) {
			t.Fatalf("%v: wrong result", alg)
		}
	}
}

func TestParallelExplicitGrid(t *testing.T) {
	x, fs := problem(t)
	res, err := Parallel(x, fs, 0, ParOptions{Algorithm: ParStationary, Grid: []int{2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 8 {
		t.Fatalf("expected 8 ranks, got %d", len(res.Stats))
	}
	res4, err := Parallel(x, fs, 0, ParOptions{Algorithm: ParGeneral, Grid: []int{2, 2, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.B.EqualApprox(res4.B, 1e-9) {
		t.Fatal("explicit-grid runs disagree")
	}
}

func TestParallelAutoPicksRegime(t *testing.T) {
	// Small R, large I/P: auto should behave like Stationary (its
	// chosen grid cost matches the stationary best).
	dims := []int{8, 8, 8}
	x := tensor.RandomDense(3, dims...)
	small := tensor.RandomFactors(4, dims, 2)
	resAuto, err := Parallel(x, small, 0, ParOptions{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	resStat, err := Parallel(x, small, 0, ParOptions{Algorithm: ParStationary, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resAuto.MaxWords() != resStat.MaxWords() {
		t.Fatalf("auto (%d words) should match stationary (%d words) for small R",
			resAuto.MaxWords(), resStat.MaxWords())
	}
	// Large R: auto should pick General with P0 > 1 and win.
	big := tensor.RandomFactors(5, dims, 64)
	resAutoBig, err := Parallel(x, big, 0, ParOptions{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	resStatBig, err := Parallel(x, big, 0, ParOptions{Algorithm: ParStationary, P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if resAutoBig.MaxWords() >= resStatBig.MaxWords() {
		t.Fatalf("auto (%d) should beat stationary (%d) for large R",
			resAutoBig.MaxWords(), resStatBig.MaxWords())
	}
}

func TestParallelErrors(t *testing.T) {
	x, fs := problem(t)
	if _, err := Parallel(x, fs, 0, ParOptions{Algorithm: ParAlgorithm(42), P: 4}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
	if _, err := Parallel(x, fs, 0, ParOptions{Algorithm: ParStationary, P: 4096}); err == nil {
		t.Fatal("infeasible P should error")
	}
}

func TestAllBounds(t *testing.T) {
	b := AllBounds([]int{16, 16, 16}, 8, 128, 8)
	if b.SeqMemDependent <= 0 || b.SeqTrivial <= 0 {
		t.Fatalf("sequential bounds should be positive here: %+v", b)
	}
	if b.ParIndependent2 <= 0 {
		t.Fatalf("Theorem 4.3 bound should be positive here: %+v", b)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if SeqBlocked.String() != "blocked" || SeqAlgorithm(77).String() == "" {
		t.Fatal("SeqAlgorithm strings")
	}
	if ParGeneral.String() != "general" || ParAlgorithm(77).String() == "" {
		t.Fatal("ParAlgorithm strings")
	}
	if SeqAuto.String() != "auto" || SeqUnblocked.String() != "unblocked" || SeqViaMatmul.String() != "via-matmul" {
		t.Fatal("SeqAlgorithm strings")
	}
	if ParAuto.String() != "auto" || ParStationary.String() != "stationary" || ParViaMatmul.String() != "via-matmul-1d" {
		t.Fatal("ParAlgorithm strings")
	}
}
