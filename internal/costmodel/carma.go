package costmodel

import (
	"fmt"
	"math"
)

// CarmaWords models the per-processor words sent by the CARMA
// recursive rectangular matrix multiplication [Demmel et al., IPDPS
// 2013] multiplying an m x k matrix by a k x n matrix on P processors
// with unbounded memory. P must be a power of two (the Figure 4 sweep
// uses P = 2^0 .. 2^30).
//
// The model follows CARMA's BFS recursion: each step halves the
// largest dimension and splits the processors in two. Splitting the
// inner dimension k requires combining partial C results (m*n words
// spread over the current P); splitting m (or n) requires the group to
// acquire the full B (or A) operand (k*n or m*k words over the current
// P). This reproduces both regimes of Section VI-B — the flat
// "1 large dimension" cost ~ m*n and the "3 large dimensions" decline
// ~ (mkn/P)^(2/3) — and the kink between them.
func CarmaWords(m, k, n, P float64) float64 {
	if P < 1 {
		panic(fmt.Sprintf("costmodel: P = %v", P))
	}
	if frac := math.Log2(P); frac != math.Trunc(frac) { //repro:bitwise exact integrality check for power-of-two P
		panic(fmt.Sprintf("costmodel: CarmaWords needs power-of-two P, got %v", P))
	}
	var w float64
	for P > 1 {
		switch {
		case k >= m && k >= n:
			w += m * n / P
			k /= 2
		case m >= n:
			w += k * n / P
			m /= 2
		default:
			w += m * k / P
			n /= 2
		}
		P /= 2
	}
	return w
}

// CarmaClosedForm gives the Demmel et al. memory-independent
// communication cost by regime, for dimensions sorted d1 >= d2 >= d3:
//
//	P <= d1/d2:            Theta(d2*d3)              (1 large dimension)
//	d1/d2 <= P <= d1d2/d3^2: Theta(sqrt(d1d2d3^2/P))  (2 large dimensions)
//	P >= d1d2/d3^2:        Theta((d1d2d3/P)^(2/3))   (3 large dimensions)
//
// Used as an independent cross-check of the recursive model's shape.
func CarmaClosedForm(m, k, n, P float64) float64 {
	d := []float64{m, k, n}
	// Sort descending (3 elements).
	if d[0] < d[1] {
		d[0], d[1] = d[1], d[0]
	}
	if d[1] < d[2] {
		d[1], d[2] = d[2], d[1]
	}
	if d[0] < d[1] {
		d[0], d[1] = d[1], d[0]
	}
	switch {
	case P <= d[0]/d[1]:
		return d[1] * d[2]
	case P <= d[0]*d[1]/(d[2]*d[2]):
		return math.Sqrt(d[0] * d[1] * d[2] * d[2] / P)
	default:
		return math.Pow(d[0]*d[1]*d[2]/P, 2.0/3)
	}
}

// MatmulMTTKRPWords models the full MTTKRP-via-matmul baseline of
// Section VI-B for mode n of a cubical tensor: multiply the
// I^(1/N) x I^(N-1)/N... matricized tensor (I_n x I/I_n) by the
// explicit I/I_n x R Khatri-Rao product using CARMA. Following the
// paper, the cost of forming the KRP is ignored.
func (m Model) MatmulMTTKRPWords(n int, P float64) float64 {
	if n < 0 || n >= m.N() {
		panic(fmt.Sprintf("costmodel: mode %d out of range", n))
	}
	In := m.Dims[n]
	J := m.I() / In
	return CarmaWords(In, J, m.R, P)
}
