package costmodel

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/grid"
)

// BestAlg3PowerOfTwo minimizes Alg3Words over all power-of-two
// factorizations of P = 2^exp into N grid extents with P_k <= I_k.
// It returns the best shape and its modeled words.
func (m Model) BestAlg3PowerOfTwo(exp int) ([]float64, float64, error) {
	best := math.Inf(1)
	var bestShape []float64
	for _, f := range grid.PowerOfTwoFactorizations(exp, m.N()) {
		shape := make([]float64, m.N())
		ok := true
		for k, v := range f {
			shape[k] = float64(v)
			if shape[k] > m.Dims[k] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if w := m.Alg3Words(shape); w < best {
			best = w
			bestShape = shape
		}
	}
	if bestShape == nil {
		return nil, 0, fmt.Errorf("costmodel: no valid N-way grid for P = 2^%d", exp)
	}
	return bestShape, best, nil
}

// BestAlg4PowerOfTwo minimizes Alg4Words over all power-of-two
// factorizations of P = 2^exp into N+1 extents with P0 <= R and
// P_k <= I_k.
func (m Model) BestAlg4PowerOfTwo(exp int) ([]float64, float64, error) {
	best := math.Inf(1)
	var bestShape []float64
	for _, f := range grid.PowerOfTwoFactorizations(exp, m.N()+1) {
		shape := make([]float64, m.N()+1)
		ok := float64(f[0]) <= m.R
		if ok {
			shape[0] = float64(f[0])
			for k := 0; k < m.N(); k++ {
				shape[k+1] = float64(f[k+1])
				if shape[k+1] > m.Dims[k] {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		if w := m.Alg4Words(shape); w < best {
			best = w
			bestShape = shape
		}
	}
	if bestShape == nil {
		return nil, 0, fmt.Errorf("costmodel: no valid (N+1)-way grid for P = 2^%d", exp)
	}
	return bestShape, best, nil
}

// BestStationaryExact picks the N-way grid over exactly P processors
// minimizing the exact (ceiling-aware) Eq. (14) cost for simulator
// runs. All ordered factorizations of P are tried.
func BestStationaryExact(dims []int, R, P int) ([]int, error) {
	var bestShape []int
	best := int64(math.MaxInt64)
	for _, shape := range grid.Factorizations(P, len(dims)) {
		ok := true
		for k, s := range shape {
			if s > dims[k] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		g := grid.New(shape...)
		lay := dist.NewStationary(dims, R, g)
		var w int64
		for k := range dims {
			q := int64(P / shape[k])
			w += (q - 1) * lay.MaxFactorNnz(k)
		}
		if w < best {
			best = w
			bestShape = shape
		}
	}
	if bestShape == nil {
		return nil, fmt.Errorf("costmodel: no valid stationary grid for P=%d over dims %v", P, dims)
	}
	return bestShape, nil
}

// BestGeneralExact picks the (N+1)-way grid (shape[0] = P0 <= R)
// minimizing the exact Eq. (18) cost.
func BestGeneralExact(dims []int, R, P int) ([]int, error) {
	var bestShape []int
	best := int64(math.MaxInt64)
	for _, shape := range grid.Factorizations(P, len(dims)+1) {
		if shape[0] > R {
			continue
		}
		ok := true
		for k := range dims {
			if shape[k+1] > dims[k] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		g := grid.New(shape...)
		lay := dist.NewGeneral(dims, R, g)
		p0 := int64(shape[0])
		w := (p0 - 1) * lay.MaxTensorNnz()
		for k := range dims {
			q := int64(P) / (p0 * int64(shape[k+1]))
			w += (q - 1) * lay.MaxFactorNnz(k)
		}
		if w < best {
			best = w
			bestShape = shape
		}
	}
	if bestShape == nil {
		return nil, fmt.Errorf("costmodel: no valid general grid for P=%d over dims %v, R=%d", P, dims, R)
	}
	return bestShape, nil
}
