// Package costmodel evaluates the paper's closed-form communication,
// arithmetic, and memory cost expressions at model scale (Figure 4
// uses I = 2^45 elements and P up to 2^30 processors, far beyond what
// can be materialized), and selects processor grids that minimize
// them.
//
// Words here count per-processor *sends*, matching the (q-1)*w bucket
// collective accounting of Section V (each send is matched by a
// receive of the same size, so sends+receives is exactly twice this).
package costmodel

import (
	"fmt"
	"math"
)

// Model describes a model-scale MTTKRP instance.
type Model struct {
	Dims []float64 // tensor dimensions I_1..I_N
	R    float64   // rank
}

// N returns the tensor order.
func (m Model) N() int { return len(m.Dims) }

// I returns the total tensor elements.
func (m Model) I() float64 {
	out := 1.0
	for _, d := range m.Dims {
		out *= d
	}
	return out
}

// CubicalModel builds a model with N equal dimensions of the given
// side.
func CubicalModel(N int, side, R float64) Model {
	dims := make([]float64, N)
	for i := range dims {
		dims[i] = side
	}
	return Model{Dims: dims, R: R}
}

func (m Model) validateShape(shape []float64, want int) {
	if len(shape) != want {
		panic(fmt.Sprintf("costmodel: grid shape %v, want %d extents", shape, want))
	}
	for _, s := range shape {
		if s < 1 {
			panic(fmt.Sprintf("costmodel: non-positive grid extent in %v", shape))
		}
	}
}

func prod(xs []float64) float64 {
	out := 1.0
	for _, x := range xs {
		out *= x
	}
	return out
}

// Alg3Words evaluates Eq. (14) for a balanced distribution on the
// N-way grid shape: sum_k (P/P_k - 1) * (I_k R / P) words sent per
// processor (nnz(A(k)_p) = nnz(B(n)_p) = I_k R / P when balanced, so
// the mode n term needs no special case).
func (m Model) Alg3Words(shape []float64) float64 {
	m.validateShape(shape, m.N())
	P := prod(shape)
	var w float64
	for k, d := range m.Dims {
		w += (P/shape[k] - 1) * d * m.R / P
	}
	return w
}

// Alg3Flops evaluates Eq. (15): N*R*(I/P) for the local MTTKRP plus
// (P/P_n - 1) * I_n R / P reduction adds; the bound maximizes over n,
// i.e. uses the largest hyperslice.
func (m Model) Alg3Flops(shape []float64) float64 {
	m.validateShape(shape, m.N())
	P := prod(shape)
	local := float64(m.N()) * m.R * m.I() / P
	reduce := 0.0
	for k, d := range m.Dims {
		if r := (P/shape[k] - 1) * d * m.R / P; r > reduce {
			reduce = r
		}
	}
	return local + reduce
}

// Alg3Memory evaluates Eq. (16): I/P tensor words plus the replicated
// factor block rows sum_k (I_k/P_k) * R.
func (m Model) Alg3Memory(shape []float64) float64 {
	m.validateShape(shape, m.N())
	P := prod(shape)
	mem := m.I() / P
	for k, d := range m.Dims {
		mem += d / shape[k] * m.R
	}
	return mem
}

// Alg4Words evaluates Eq. (18) for a balanced distribution on the
// (N+1)-way grid shape (shape[0] = P0):
//
//	(P0 - 1) * I/P + sum_k (P/(P0 P_k) - 1) * I_k R / P.
func (m Model) Alg4Words(shape []float64) float64 {
	m.validateShape(shape, m.N()+1)
	P := prod(shape)
	p0 := shape[0]
	w := (p0 - 1) * m.I() / P
	for k, d := range m.Dims {
		w += (P/(p0*shape[k+1]) - 1) * d * m.R / P
	}
	return w
}

// Alg4Flops evaluates Eq. (19) analogously to Alg3Flops.
func (m Model) Alg4Flops(shape []float64) float64 {
	m.validateShape(shape, m.N()+1)
	P := prod(shape)
	p0 := shape[0]
	local := float64(m.N()) * m.R * m.I() / (P / p0) / p0 // N * (R/P0) * prod(I_k/P_k)
	reduce := 0.0
	for k, d := range m.Dims {
		if r := (P/(p0*shape[k+1]) - 1) * d * m.R / P; r > reduce {
			reduce = r
		}
	}
	return local + reduce
}

// Alg4Memory evaluates Eq. (20): the gathered tensor block plus the
// gathered factor blocks restricted to R/P0 columns.
func (m Model) Alg4Memory(shape []float64) float64 {
	m.validateShape(shape, m.N()+1)
	p0 := shape[0]
	blocks := 1.0
	for k, d := range m.Dims {
		blocks *= d / shape[k+1]
	}
	mem := blocks
	for k, d := range m.Dims {
		mem += d / shape[k+1] * m.R / p0
	}
	return mem
}

// StationaryIdealWords is the optimized form of Eq. (14) with
// P_k = I_k/(I/P)^(1/N): approximately N*R*(I/P)^(1/N).
func (m Model) StationaryIdealWords(P float64) float64 {
	N := float64(m.N())
	return N * m.R * math.Pow(m.I()/P, 1/N)
}

// GeneralIdealWords is the optimized cost of Algorithm 4 from Section
// V-D3: N*R*(I/P)^(1/N) + (N*I*R/P)^(N/(2N-1)), with the first term
// applying when P0 = 1 suffices.
func (m Model) GeneralIdealWords(P float64) float64 {
	N := float64(m.N())
	return math.Min(m.StationaryIdealWords(P),
		math.Pow(N*m.I()*m.R/P, N/(2*N-1)))
}

// CrossoverP returns I/(NR)^(N/(N-1)), the processor count beyond
// which the general algorithm (P0 > 1) communicates less than the
// stationary algorithm (Section VI-B).
func (m Model) CrossoverP() float64 {
	N := float64(m.N())
	return m.I() / math.Pow(N*m.R, N/(N-1))
}
