package costmodel

import (
	"math"
	"testing"
)

func TestAlg3WordsHand(t *testing.T) {
	// dims 8,8,8, R=8, grid 2x2x2 (P=8): per mode (8/2-1)*8*8/8 = 3*8.
	m := CubicalModel(3, 8, 8)
	got := m.Alg3Words([]float64{2, 2, 2})
	if math.Abs(got-72) > 1e-9 {
		t.Fatalf("Alg3Words = %v, want 72", got)
	}
}

func TestAlg3WordsMatchesSimulatorCase(t *testing.T) {
	// The balanced case proven exact in par's TestAlg3CostMatchesModel:
	// same parameters must give the same number here.
	m := CubicalModel(3, 8, 8)
	if got := m.Alg3Words([]float64{2, 2, 2}); got != 72 {
		t.Fatalf("model disagrees with measured constant: %v", got)
	}
}

func TestAlg4WordsP0OneReducesToAlg3(t *testing.T) {
	m := Model{Dims: []float64{32, 64, 16}, R: 8}
	shapes := [][]float64{{2, 4, 1}, {4, 2, 2}, {1, 1, 16}}
	for _, s := range shapes {
		w3 := m.Alg3Words(s)
		w4 := m.Alg4Words(append([]float64{1}, s...))
		if math.Abs(w3-w4) > 1e-9 {
			t.Fatalf("shape %v: Alg3 %v != Alg4(P0=1) %v", s, w3, w4)
		}
	}
}

func TestAlg4WordsHand(t *testing.T) {
	// dims 8,8,8, R=8, shape (2,2,2,1): P=8, P0=2.
	// Tensor term: (2-1)*512/8 = 64.
	// Modes k=0,1: (8/(2*2)-1)*8*8/8 = 8 each; k=2: (8/2-1)*8 = 24.
	m := CubicalModel(3, 8, 8)
	got := m.Alg4Words([]float64{2, 2, 2, 1})
	if math.Abs(got-104) > 1e-9 {
		t.Fatalf("Alg4Words = %v, want 104", got)
	}
}

func TestMemoryAndFlopsModels(t *testing.T) {
	m := CubicalModel(3, 16, 4)
	sh := []float64{2, 2, 2}
	if got := m.Alg3Memory(sh); math.Abs(got-(4096/8.0+3*8*4)) > 1e-9 {
		t.Fatalf("Alg3Memory = %v", got)
	}
	if got := m.Alg3Flops(sh); got <= 3*4096*4/8.0 {
		t.Fatalf("Alg3Flops = %v should exceed the local term", got)
	}
	sh4 := []float64{2, 2, 2, 1}
	// Block (16/2)*(16/2)*(16/1) = 1024 plus factors (8+8+16)*(4/2) = 64.
	if got := m.Alg4Memory(sh4); math.Abs(got-1088) > 1e-9 {
		t.Fatalf("Alg4Memory = %v, want 1088", got)
	}
	if m.Alg4Flops(sh4) <= 0 {
		t.Fatal("Alg4Flops must be positive")
	}
}

func TestBestAlg3PrefersBalancedGridForCube(t *testing.T) {
	m := CubicalModel(3, 1<<10, 4)
	shape, w, err := m.BestAlg3PowerOfTwo(6) // P = 64
	if err != nil {
		t.Fatal(err)
	}
	// For a cube the optimal grid is cubical: 4x4x4.
	for _, s := range shape {
		if s != 4 {
			t.Fatalf("best shape %v, want [4 4 4]", shape)
		}
	}
	ideal := m.StationaryIdealWords(64)
	if w > ideal || w < ideal/2 {
		t.Fatalf("best words %v vs ideal %v", w, ideal)
	}
}

func TestBestAlg3RespectsDimBounds(t *testing.T) {
	// A mode of size 2 cannot take more than 2 processors.
	m := Model{Dims: []float64{2, 1 << 12}, R: 4}
	shape, _, err := m.BestAlg3PowerOfTwo(4)
	if err != nil {
		t.Fatal(err)
	}
	if shape[0] > 2 {
		t.Fatalf("shape %v violates P_k <= I_k", shape)
	}
	// Infeasible: P larger than I.
	tiny := Model{Dims: []float64{2, 2}, R: 2}
	if _, _, err := tiny.BestAlg3PowerOfTwo(5); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestBestAlg4P0Bounded(t *testing.T) {
	m := Model{Dims: []float64{4, 4, 4}, R: 2}
	shape, _, err := m.BestAlg4PowerOfTwo(5)
	if err != nil {
		t.Fatal(err)
	}
	if shape[0] > 2 {
		t.Fatalf("P0 = %v exceeds R = 2", shape[0])
	}
}

func TestCarmaWordsFlatRegime(t *testing.T) {
	// One large dimension: cost ~ m*n (the flat region of Figure 4).
	m, k, n := float64(1<<15), float64(1<<30), float64(1<<15)
	w1 := CarmaWords(m, k, n, 1<<4)
	w2 := CarmaWords(m, k, n, 1<<10)
	mn := m * n
	for _, w := range []float64{w1, w2} {
		if w < mn/2 || w > mn {
			t.Fatalf("flat regime violated: %v not within [mn/2, mn] = [%v, %v]", w, mn/2, mn)
		}
	}
	// And nearly constant across the regime.
	if math.Abs(w1-w2)/w2 > 0.1 {
		t.Fatalf("flat regime should be flat: %v vs %v", w1, w2)
	}
}

func TestCarmaWordsCubeRegime(t *testing.T) {
	// Square multiplication: W ~ (d^3/P)^(2/3) scaling. Deep in the
	// recursion an 8x increase in P cuts words by ~4x; early levels
	// carry geometric-sum corrections, so test deep levels.
	d := float64(1 << 12)
	wA := CarmaWords(d, d, d, 1<<18)
	wB := CarmaWords(d, d, d, 1<<21)
	ratio := wA / wB
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("cube regime scaling ratio %v, want ~4", ratio)
	}
	closed := CarmaClosedForm(d, d, d, 1<<18)
	if wA < closed/4 || wA > 4*closed {
		t.Fatalf("recursive %v vs closed form %v differ beyond constants", wA, closed)
	}
}

func TestCarmaZeroAtOneProcessor(t *testing.T) {
	if CarmaWords(100, 100, 100, 1) != 0 {
		t.Fatal("P=1 needs no communication")
	}
}

func TestCarmaPanics(t *testing.T) {
	for _, f := range []func(){
		func() { CarmaWords(4, 4, 4, 3) },
		func() { CarmaWords(4, 4, 4, 0.5) },
		func() { Fig4Problem().MatmulMTTKRPWords(5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// The closed-form model places the 1D -> higher-D switch exactly at
// P = d1/d2 = I/R^2 = 2^15 for the Figure 4 shape, matching the
// paper's caption.
func TestCarmaClosedFormKinkAt2To15(t *testing.T) {
	m, k, n := float64(1<<15), float64(1<<30), float64(1<<15)
	flat := CarmaClosedForm(m, k, n, 1<<14)
	if flat != m*n {
		t.Fatalf("below the kink cost should be m*n, got %v", flat)
	}
	after := CarmaClosedForm(m, k, n, 1<<17)
	if after >= flat {
		t.Fatalf("past the kink the cost must fall: %v vs %v", after, flat)
	}
}

func TestCarmaClosedFormContinuity(t *testing.T) {
	// The regimes agree at their boundaries.
	m, k, n := float64(1<<15), float64(1<<30), float64(1<<15)
	pKink := k / m // boundary 1-large / 2-large
	a := CarmaClosedForm(m, k, n, pKink*0.999)
	b := CarmaClosedForm(m, k, n, pKink*1.001)
	if math.Abs(a-b)/a > 0.01 {
		t.Fatalf("discontinuity at first boundary: %v vs %v", a, b)
	}
}

// E1: the regenerated Figure 4 series has the paper's qualitative
// shape: (i) both our algorithms beat matmul once P exceeds the
// Section VI-B small-P advantage threshold ~N^N = 27 (the advantage
// factor is O(P^(1/N)/N), which is < 1 for tiny P against a matmul
// model that gets its Khatri-Rao product for free), (ii) Algorithm 4
// never loses to Algorithm 3 (P0 = 1 is in its search space), and
// (iii) our curves strong-scale monotonically.
func TestFig4SeriesShape(t *testing.T) {
	rows := Fig4Series(30)
	if len(rows) != 31 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		// Algorithm 3 wins from P = 32 up to the deep large-P regime,
		// where Algorithm 4 takes over (exactly the paper's story).
		if r.Exp >= 5 && r.Exp <= 29 && r.Stationary > r.Matmul {
			t.Fatalf("2^%d: Alg3 (%v) worse than matmul (%v)", r.Exp, r.Stationary, r.Matmul)
		}
		if r.Exp >= 5 && r.General > r.Matmul {
			t.Fatalf("2^%d: Alg4 (%v) worse than matmul (%v)", r.Exp, r.General, r.Matmul)
		}
		if r.General > r.Stationary*(1+1e-12) {
			t.Fatalf("2^%d: Alg4 (%v) worse than Alg3 (%v)", r.Exp, r.General, r.Stationary)
		}
		// Exact Eq. (14)/(18) costs rise briefly at tiny P (factor
		// replication grows before strong scaling engages); from the
		// scaling regime onward they must decrease monotonically.
		if r.Exp >= 5 {
			prev := rows[i-1]
			if r.Stationary > prev.Stationary*(1+1e-12) ||
				r.General > prev.General*(1+1e-12) {
				t.Fatalf("2^%d: our curves increased with P", r.Exp)
			}
		}
	}
	// P = 1: no communication for our algorithms.
	if rows[0].Stationary != 0 || rows[0].General != 0 {
		t.Fatalf("P=1 should cost 0: %+v", rows[0])
	}
}

// E2: quantitative callouts. The matmul kink sits at P = I/R^2 = 2^15;
// Algorithms 3 and 4 diverge deep in the sweep (paper: P >= 2^27); at
// P = 2^17 the gap to matmul is an order of magnitude or more.
func TestFig4Callouts(t *testing.T) {
	rows := Fig4Series(30)
	c := ComputeFig4Callouts(rows)
	// The recursive model rounds the kink over a couple of octaves;
	// the closed-form model places the regime switch exactly at
	// P = I/R^2 = 2^15 (tested separately below).
	if c.KinkExp < 15 || c.KinkExp > 19 {
		t.Fatalf("matmul kink at 2^%d, paper places it at 2^15", c.KinkExp)
	}
	// Observed: divergence at 2^23 (paper's figure shows 2^27; the
	// analytic crossover is 2^20.1 — all within the same deep-sweep
	// regime; the exact point depends on hidden constants).
	if c.DivergeExp < 20 || c.DivergeExp > 28 {
		t.Fatalf("Alg3/Alg4 diverge at 2^%d, expected deep in the sweep", c.DivergeExp)
	}
	// Observed: 12x (the paper reports ~25x; same order of magnitude).
	if c.RatioAt17 < 8 {
		t.Fatalf("matmul/ours ratio at 2^17 = %v, expected an order of magnitude", c.RatioAt17)
	}
	// Predicted crossover from Section VI-B: I/(NR)^(3/2) ~ 2^20.1.
	if c.PredictedCrossover < math.Pow(2, 19) || c.PredictedCrossover > math.Pow(2, 22) {
		t.Fatalf("predicted crossover %v outside expected band", c.PredictedCrossover)
	}
}

// E11: the discrete model's divergence point is consistent with (at or
// after) the analytic crossover P* = I/(NR)^(N/(N-1)).
func TestAlg4CrossoverNearPredicted(t *testing.T) {
	rows := Fig4Series(30)
	c := ComputeFig4Callouts(rows)
	if c.DivergeExp == -1 {
		t.Fatal("no divergence found in sweep")
	}
	predicted := math.Log2(c.PredictedCrossover)
	if float64(c.DivergeExp) < predicted-1 {
		t.Fatalf("diverged at 2^%d, before predicted crossover 2^%.1f", c.DivergeExp, predicted)
	}
}

func TestBestStationaryExact(t *testing.T) {
	shape, err := BestStationaryExact([]int{8, 8, 8}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if shape[0]*shape[1]*shape[2] != 8 {
		t.Fatalf("shape %v does not multiply to 8", shape)
	}
	// Cube + cube grid: all extents 2.
	for _, s := range shape {
		if s != 2 {
			t.Fatalf("best exact shape %v, want [2 2 2]", shape)
		}
	}
	if _, err := BestStationaryExact([]int{2, 2}, 4, 64); err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestBestGeneralExact(t *testing.T) {
	// Large R relative to I/P: P0 > 1 should win.
	shape, err := BestGeneralExact([]int{4, 4, 4}, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := shape[0] * shape[1] * shape[2] * shape[3]
	if p != 16 {
		t.Fatalf("shape %v does not multiply to 16", shape)
	}
	if shape[0] < 2 {
		t.Fatalf("with R=64 >> (I/P)^(2/3), expected P0 > 1, got shape %v", shape)
	}
	if _, err := BestGeneralExact([]int{2, 2}, 1, 64); err == nil {
		t.Fatal("expected infeasibility")
	}
}

// The float model chooser and the exact (ceiling-aware) chooser agree
// on balanced power-of-two instances.
func TestChoosersAgreeOnBalancedInstances(t *testing.T) {
	dims := []int{64, 64, 64}
	R := 8
	m := CubicalModel(3, 64, 8)
	for e := 0; e <= 6; e++ {
		shapeF, _, err := m.BestAlg3PowerOfTwo(e)
		if err != nil {
			t.Fatal(err)
		}
		shapeE, err := BestStationaryExact(dims, R, 1<<e)
		if err != nil {
			t.Fatal(err)
		}
		// Costs must agree even if tie-broken shapes differ.
		costF := m.Alg3Words(shapeF)
		fe := make([]float64, 3)
		for i, s := range shapeE {
			fe[i] = float64(s)
		}
		costE := m.Alg3Words(fe)
		if costF != costE {
			t.Fatalf("P=2^%d: float chooser %v (%v words) vs exact chooser %v (%v words)",
				e, shapeF, costF, shapeE, costE)
		}
	}
}

func TestCrossoverPFormula(t *testing.T) {
	m := Fig4Problem()
	want := math.Pow(2, 45) / math.Pow(3*math.Pow(2, 15), 1.5)
	if math.Abs(m.CrossoverP()-want) > 1e-6*want {
		t.Fatalf("CrossoverP = %v, want %v", m.CrossoverP(), want)
	}
}

func TestModelValidation(t *testing.T) {
	m := CubicalModel(3, 8, 2)
	for _, f := range []func(){
		func() { m.Alg3Words([]float64{2, 2}) },
		func() { m.Alg4Words([]float64{2, 2, 2}) },
		func() { m.Alg3Words([]float64{0, 2, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
