package costmodel

// Shared-memory engine cost forms. The distributed models above count
// per-processor sends against Eq. (14)/(18); these count the streaming
// traffic (words read + written through the memory hierarchy) and the
// arithmetic of the repository's local MTTKRP engines, in the same
// operand-counting discipline internal/obs uses at run time. The
// planner (internal/plan) evaluates them against calibrated machine
// constants to pick an engine, so the formulas only need to rank
// configurations correctly — they mirror each engine's documented
// loop structure rather than model caches exactly.

// EngineCost is the streaming-model prediction for one engine pass:
// words moved through memory and floating-point operations executed.
type EngineCost struct {
	Words float64
	Flops float64
}

// Add returns the component-wise sum of two costs.
func (c EngineCost) Add(d EngineCost) EngineCost {
	return EngineCost{Words: c.Words + d.Words, Flops: c.Flops + d.Flops}
}

// Scale returns the cost multiplied by s.
func (c EngineCost) Scale(s float64) EngineCost {
	return EngineCost{Words: c.Words * s, Flops: c.Flops * s}
}

// FastKernelCost models one kernel.Fast MTTKRP for mode n: the
// KRP-splitting engine streams the tensor once, builds the left/right
// partial KRP panels, and — for interior modes — writes and folds one
// I_n x R scratch panel per right slab.
func (m Model) FastKernelCost(mode int) EngineCost {
	if mode < 0 || mode >= m.N() {
		panic("costmodel: FastKernelCost mode out of range")
	}
	L, Rt := 1.0, 1.0
	for k := 0; k < mode; k++ {
		L *= m.Dims[k]
	}
	for k := mode + 1; k < m.N(); k++ {
		Rt *= m.Dims[k]
	}
	In := m.Dims[mode]
	I := L * In * Rt
	var c EngineCost
	// Partial KRP panels: written once, streamed once by the GEMMs.
	if mode > 0 {
		c.Words += 2 * L * m.R
		c.Flops += L * m.R
	}
	if mode < m.N()-1 {
		c.Words += 2 * Rt * m.R
		c.Flops += Rt * m.R
	}
	c.Words += I + In*m.R // tensor stream + output
	c.Flops += 2 * I * m.R
	if mode > 0 && mode < m.N()-1 {
		// Interior slabs: W_t written and read back per slab, plus the
		// KR-weighted fold into the accumulator.
		c.Words += 2 * In * m.R * Rt
		c.Flops += 2 * In * m.R * Rt
	}
	return c
}

// FastAllModesCost models an all-modes sweep as N independent
// kernel.Fast calls.
func (m Model) FastAllModesCost() EngineCost {
	var c EngineCost
	for n := range m.Dims {
		c = c.Add(m.FastKernelCost(n))
	}
	return c
}

// TreeAllModesCost models the dimtree engine's all-modes sweep by
// walking the same balanced tree the engine builds: root contractions
// stream the tensor, partial contractions stream their (much smaller)
// partial, and every interior two-sided contraction pays the slab
// scratch fold.
func (m Model) TreeAllModesCost() EngineCost {
	N := m.N()
	if N == 2 {
		return m.treeRootCost(0, 1).Add(m.treeRootCost(1, 2))
	}
	mid := N / 2
	return m.treeBranchCost(0, mid).Add(m.treeBranchCost(mid, N))
}

// treeBranchCost is a root child holding modes [lo, hi) plus its
// subtree.
func (m Model) treeBranchCost(lo, hi int) EngineCost {
	c := m.treeRootCost(lo, hi)
	if hi-lo > 1 {
		c = c.Add(m.treeDescendCost(lo, hi))
	}
	return c
}

// treeDescendCost splits the partial holding [lo, hi) at its
// midpoint, mirroring dimtree.Engine.descend.
func (m Model) treeDescendCost(lo, hi int) EngineCost {
	mid := lo + (hi-lo)/2
	c := m.treePartCost(lo, hi, lo, mid)
	if mid-lo > 1 {
		c = c.Add(m.treeDescendCost(lo, mid))
	}
	c = c.Add(m.treePartCost(lo, hi, mid, hi))
	if hi-mid > 1 {
		c = c.Add(m.treeDescendCost(mid, hi))
	}
	return c
}

// treeRootCost is one contraction from the tensor keeping [lo, hi).
func (m Model) treeRootCost(lo, hi int) EngineCost {
	L := m.prodDims(0, lo)
	M := m.prodDims(lo, hi)
	Rt := m.prodDims(hi, m.N())
	return m.contractCost(L, M, Rt, lo > 0, hi < m.N(), L*M*Rt)
}

// treePartCost is one contraction of the partial holding [plo, phi)
// down to [klo, khi); the source is the partial's S*R block, not the
// tensor.
func (m Model) treePartCost(plo, phi, klo, khi int) EngineCost {
	Lp := m.prodDims(plo, klo)
	Mp := m.prodDims(klo, khi)
	Rtp := m.prodDims(khi, phi)
	c := m.contractCost(Lp, Mp, Rtp, klo > plo, khi < phi, Lp*Mp*Rtp*m.R)
	// The per-rank GEMV passes re-run the contraction once per rank
	// column but each streams only its own slab, so the source traffic
	// above is already per-pass exact; the arithmetic, though, is R
	// independent GEMVs — contractCost already counts 2*S*R.
	return c
}

// contractCost is the shared (L, M, Rt) contraction form: src is the
// streamed source volume in words (the tensor for roots, S*R for
// partials), dropLeft/dropRight say which KRP panels exist.
func (m Model) contractCost(L, M, Rt float64, dropLeft, dropRight bool, src float64) EngineCost {
	var c EngineCost
	if dropLeft {
		c.Words += 2 * L * m.R
		c.Flops += L * m.R
	}
	if dropRight {
		c.Words += 2 * Rt * m.R
		c.Flops += Rt * m.R
	}
	c.Words += src + M*m.R
	c.Flops += 2 * L * M * Rt * m.R
	if dropLeft && dropRight {
		c.Words += 2 * M * m.R * Rt
		c.Flops += 2 * M * m.R * Rt
	}
	if !dropLeft && !dropRight {
		// Nothing dropped: the empty product is a broadcast copy.
		c.Words += M * m.R
		c.Flops += M * m.R
	}
	return c
}

// TTMChainCost models one TTM-chain pass of the blocked engine
// (internal/ttm.ChainInto): every mode but skip (-1 skips none)
// contracts down to ranks[k] columns, in the engine's greedy order —
// ascending ranks[k]/Dims[k], ties toward the lower index. Each step
// is GEMM over the L x I x Rt slab stack of the current intermediate:
// the boundary modes (Rt = 1 or L = 1) are one GEMM, interior modes
// are Rt per-slab GEMMs. Word and flop counts reproduce obs.Gemm's
// operand accounting exactly, so the prediction matches the measured
// streaming totals of an uninstrumented chain to the word.
func (m Model) TTMChainCost(ranks []float64, skip int) EngineCost {
	N := m.N()
	if len(ranks) != N {
		panic("costmodel: TTMChainCost ranks length mismatch")
	}
	if skip < -1 || skip >= N {
		panic("costmodel: TTMChainCost skip out of range")
	}
	// Greedy order on the original shapes, mirroring ttm.ChainOrder's
	// cross-multiplied ratio compare and insertion-sort stability.
	ord := make([]int, 0, N)
	for k := 0; k < N; k++ {
		if k != skip {
			ord = append(ord, k)
		}
	}
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && ranks[ord[j]]*m.Dims[ord[j-1]] < ranks[ord[j-1]]*m.Dims[ord[j]]; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	if len(ord) == 0 {
		// Empty chain: ChainInto degenerates to a copy (read + write).
		return EngineCost{Words: 2 * m.prodDims(0, N)}
	}
	dims := append([]float64(nil), m.Dims...)
	var c EngineCost
	for _, k := range ord {
		L, Rt := 1.0, 1.0
		for j := 0; j < k; j++ {
			L *= dims[j]
		}
		for j := k + 1; j < N; j++ {
			Rt *= dims[j]
		}
		I, r := dims[k], ranks[k]
		switch {
		case Rt == 1: //repro:bitwise Rt is a product of integer extents, exactly 1 iff all trailing modes are unit
			// One GemmNN: Y (L x r) = X (L x I) * U.
			c.Words += L*I + I*r + L*r
			c.Flops += 2 * L * I * r
		case L == 1: //repro:bitwise L is a product of integer extents, exactly 1 iff all leading modes are unit
			// One GemmTN: Y (r x Rt) = U^T * X (I x Rt).
			c.Words += I*r + I*Rt + r*Rt
			c.Flops += 2 * r * I * Rt
		default:
			// Rt per-slab GemmNNs; U streams once per slab.
			c.Words += Rt * (L*I + I*r + L*r)
			c.Flops += 2 * L * I * r * Rt
		}
		dims[k] = r
	}
	return c
}

// csfLevelNodes estimates the node count of CSF tree level lv for a
// uniformly random nonzero pattern: the fiber count saturates at the
// prefix-index space until nnz distinct prefixes exhaust it. perm[0]
// is the root mode; the remaining modes follow in ascending order,
// matching sparse.FromCOO.
func (m Model) csfLevelNodes(root, lv int, nnz float64) float64 {
	prefix := 1.0
	seen := 0
	for _, k := range m.csfPerm(root) {
		prefix *= m.Dims[k]
		seen++
		if seen > lv {
			break
		}
	}
	if nnz < prefix {
		return nnz
	}
	return prefix
}

// csfPerm is the mode ordering of a CSF tree rooted at root: root
// first, the rest ascending.
func (m Model) csfPerm(root int) []int {
	perm := make([]int, 0, m.N())
	perm = append(perm, root)
	for k := 0; k < m.N(); k++ {
		if k != root {
			perm = append(perm, k)
		}
	}
	return perm
}

// CSFCost models one CSF MTTKRP pass for the output mode on a tree
// rooted at that mode (lout = 0, the layout the parallel engine
// builds), mirroring (*CSF).kernelCost: each node extends a prefix
// Hadamard (R flops, one factor row) or folds a subtree sum (2R
// flops), leaves stream their values, and output rows accumulate
// read-modify-write.
func (m Model) CSFCost(nnz float64, mode int) EngineCost {
	var c EngineCost
	N := m.N()
	c.Words += nnz // leaf values
	for lv := 0; lv < N; lv++ {
		nodes := m.csfLevelNodes(mode, lv, nnz)
		switch {
		case lv == 0: // output level: read-modify-write one row per root node
			c.Words += 2 * nodes * m.R
			c.Flops += 2 * nodes * m.R
		case lv == N-1: // leaves fold their factor row into the subtree sum
			c.Words += nodes * m.R
			c.Flops += 2 * nodes * m.R
		default: // interior: factor row folded into the running subtree sum
			c.Words += nodes * m.R
			c.Flops += 2 * nodes * m.R
		}
	}
	return c
}

// CSFAllModesCost models the shared-subtree all-modes pass on one
// tree (rooted at mode 0): every node with children extends the
// prefix, every non-root node folds into its parent's subtree sum,
// and every level accumulates into its own output.
func (m Model) CSFAllModesCost(nnz float64) EngineCost {
	var c EngineCost
	N := m.N()
	c.Words += nnz
	for lv := 0; lv < N; lv++ {
		nodes := m.csfLevelNodes(0, lv, nnz)
		if lv != N-1 {
			c.Words += nodes * m.R // prefix factor row
			c.Flops += nodes * m.R
		}
		if lv != 0 {
			c.Words += nodes * m.R // fold factor row
			c.Flops += 2 * nodes * m.R
		}
		c.Words += 2 * nodes * m.R // output row read-modify-write
		c.Flops += 2 * nodes * m.R
	}
	return c
}

// COOCost models the naive coordinate-format accumulation loop: per
// nonzero, the entry (N index words + 1 value), one factor row per
// non-output mode, and a read-modify-write of the output row.
func (m Model) COOCost(nnz float64, mode int) EngineCost {
	if mode < 0 || mode >= m.N() {
		panic("costmodel: COOCost mode out of range")
	}
	N := float64(m.N())
	return EngineCost{
		Words: nnz * (N + 1 + (N-1)*m.R + 2*m.R),
		Flops: nnz * N * m.R,
	}
}

// prodDims multiplies Dims[lo:hi].
func (m Model) prodDims(lo, hi int) float64 {
	p := 1.0
	for k := lo; k < hi; k++ {
		p *= m.Dims[k]
	}
	return p
}
