package costmodel

import "testing"

func TestFastKernelCostBoundaryVsInterior(t *testing.T) {
	m := CubicalModel(3, 64, 16)
	I := m.I()
	for mode := 0; mode < 3; mode++ {
		c := m.FastKernelCost(mode)
		if c.Flops < 2*I*m.R {
			t.Errorf("mode %d: flops %.0f below the 2IR GEMM floor %.0f", mode, c.Flops, 2*I*m.R)
		}
		if c.Words < I {
			t.Errorf("mode %d: words %.0f below the tensor stream %.0f", mode, c.Words, I)
		}
	}
	// Interior modes pay the slab scratch on top of the boundary cost.
	if b, i := m.FastKernelCost(0), m.FastKernelCost(1); i.Words <= b.Words {
		t.Errorf("interior mode words %.0f should exceed boundary mode words %.0f", i.Words, b.Words)
	}
}

func TestTreeBeatsIndependentAtHighOrder(t *testing.T) {
	// The dimension tree's raison d'être: at order 5 the tree reuses
	// partials across modes, so it does strictly less arithmetic than
	// N independent kernels. The model must reproduce that ordering —
	// it is what makes the planner pick the tree for large sweeps.
	m := CubicalModel(5, 32, 16)
	tree := m.TreeAllModesCost()
	ind := m.FastAllModesCost()
	if tree.Flops >= ind.Flops {
		t.Errorf("tree flops %.3g not below independent flops %.3g", tree.Flops, ind.Flops)
	}
}

func TestTreeAllModesOrder2(t *testing.T) {
	m := CubicalModel(2, 128, 8)
	c := m.TreeAllModesCost()
	if c.Flops <= 0 || c.Words <= 0 {
		t.Fatalf("degenerate order-2 tree cost: %+v", c)
	}
}

func TestCSFBeatsCOO(t *testing.T) {
	// The CSF fiber tree reads each factor row once per node, the COO
	// loop once per nonzero; with many nonzeros per fiber the tree
	// must model cheaper on both axes.
	m := CubicalModel(3, 256, 16)
	nnz := 1e6
	csf := m.CSFCost(nnz, 0)
	coo := m.COOCost(nnz, 0)
	if csf.Words >= coo.Words {
		t.Errorf("CSF words %.3g not below COO words %.3g", csf.Words, coo.Words)
	}
	if csf.Flops >= coo.Flops {
		t.Errorf("CSF flops %.3g not below COO flops %.3g", csf.Flops, coo.Flops)
	}
}

func TestCSFLevelNodesSaturates(t *testing.T) {
	m := CubicalModel(3, 16, 4)
	// Level 0 has at most I_root = 16 fibers even with 1000 nonzeros.
	if got := m.csfLevelNodes(0, 0, 1000); got != 16 {
		t.Errorf("root level nodes = %.0f, want saturation at 16", got)
	}
	// The leaf level is bounded by nnz.
	if got := m.csfLevelNodes(0, 2, 1000); got != 1000 {
		t.Errorf("leaf level nodes = %.0f, want nnz 1000", got)
	}
	// Sparse regime: nnz below every prefix space.
	if got := m.csfLevelNodes(0, 1, 5); got != 5 {
		t.Errorf("sparse level nodes = %.0f, want 5", got)
	}
}

func TestEngineCostAddScale(t *testing.T) {
	a := EngineCost{Words: 2, Flops: 3}
	b := EngineCost{Words: 5, Flops: 7}
	if s := a.Add(b); s.Words != 7 || s.Flops != 10 {
		t.Errorf("Add = %+v", s)
	}
	if s := a.Scale(2); s.Words != 4 || s.Flops != 6 {
		t.Errorf("Scale = %+v", s)
	}
}
