package costmodel

import "math"

// Fig4Problem returns the Figure 4 instance: N = 3 cubical tensor with
// I_1 = I_2 = I_3 = R = 2^15 (I = 2^45).
func Fig4Problem() Model {
	return CubicalModel(3, 1<<15, 1<<15)
}

// Fig4Row is one point of the Figure 4 strong-scaling comparison.
type Fig4Row struct {
	Exp        int // P = 2^Exp
	P          float64
	Matmul     float64 // CARMA MTTKRP-via-matmul words
	Stationary float64 // Algorithm 3 with its best N-way grid
	General    float64 // Algorithm 4 with its best (N+1)-way grid
	Alg3Shape  []float64
	Alg4Shape  []float64
}

// Fig4Series regenerates the three curves of Figure 4 for
// P = 2^0 .. 2^maxExp (the paper sweeps to 2^30, the number of
// elements in a factor matrix).
func Fig4Series(maxExp int) []Fig4Row {
	m := Fig4Problem()
	rows := make([]Fig4Row, 0, maxExp+1)
	for e := 0; e <= maxExp; e++ {
		P := math.Pow(2, float64(e))
		s3, w3, err := m.BestAlg3PowerOfTwo(e)
		if err != nil {
			panic(err) // cannot happen for the Figure 4 range
		}
		s4, w4, err := m.BestAlg4PowerOfTwo(e)
		if err != nil {
			panic(err)
		}
		rows = append(rows, Fig4Row{
			Exp:        e,
			P:          P,
			Matmul:     m.MatmulMTTKRPWords(0, P),
			Stationary: w3,
			General:    w4,
			Alg3Shape:  s3,
			Alg4Shape:  s4,
		})
	}
	return rows
}

// Fig4Callouts summarizes the quantitative claims the paper attaches
// to Figure 4 so experiments can check them against the regenerated
// series.
type Fig4Callouts struct {
	// DivergeExp is the smallest exponent at which Algorithm 4 beats
	// Algorithm 3 by more than 1% (the paper reports the curves
	// "diverge only when P >= 2^27").
	DivergeExp int
	// KinkExp is the exponent at which the matmul curve first drops
	// by more than 25% per step (the 1D -> 2D/3D switch; the paper's
	// caption places it where P = I/R^2 = 2^15).
	KinkExp int
	// RatioAt17 is matmul words / min(alg3, alg4) words at P = 2^17
	// (the paper reports approximately 25x).
	RatioAt17 float64
	// PredictedCrossover is I/(NR)^(N/(N-1)) from Section VI-B.
	PredictedCrossover float64
}

// ComputeFig4Callouts derives the callouts from a series that must
// extend to at least 2^28.
func ComputeFig4Callouts(rows []Fig4Row) Fig4Callouts {
	out := Fig4Callouts{DivergeExp: -1, KinkExp: -1}
	m := Fig4Problem()
	out.PredictedCrossover = m.CrossoverP()
	for i, r := range rows {
		if out.DivergeExp == -1 && r.General < 0.99*r.Stationary {
			out.DivergeExp = r.Exp
		}
		if out.KinkExp == -1 && i > 0 && r.Matmul < 0.75*rows[i-1].Matmul {
			out.KinkExp = r.Exp
		}
		if r.Exp == 17 {
			best := math.Min(r.Stationary, r.General)
			out.RatioAt17 = r.Matmul / best
		}
	}
	return out
}
