package costmodel

import "math"

// Latency (message-count) models. The paper's bounds and analyses
// count words only ("we focus on the amount of data communicated and
// ignore the number of messages"); these models quantify what was set
// aside, using the collective algorithms' message counts: a bucket
// collective over q processors takes q-1 messages per processor, and
// the recursive-doubling alternative takes ceil(log2 q) at the same
// bandwidth (see comm.RDAllGather).

// Alg3Messages returns per-processor messages sent by Algorithm 3 on
// the given grid with bucket collectives: sum_k (P/P_k - 1).
func (m Model) Alg3Messages(shape []float64) float64 {
	m.validateShape(shape, m.N())
	P := prod(shape)
	var msgs float64
	for _, s := range shape {
		msgs += P/s - 1
	}
	return msgs
}

// Alg4Messages returns per-processor messages for Algorithm 4:
// (P0 - 1) for the tensor gather plus sum_k (P/(P0 P_k) - 1).
func (m Model) Alg4Messages(shape []float64) float64 {
	m.validateShape(shape, m.N()+1)
	P := prod(shape)
	p0 := shape[0]
	msgs := p0 - 1
	for k := 0; k < m.N(); k++ {
		msgs += P/(p0*shape[k+1]) - 1
	}
	return msgs
}

// RDMessages returns the recursive-doubling message count for the same
// collectives: each bucket collective's q-1 becomes ceil(log2 q).
func RDMessages(q float64) float64 {
	if q <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(q))
}

// Alg3MessagesRD is Alg3Messages with recursive-doubling collectives.
func (m Model) Alg3MessagesRD(shape []float64) float64 {
	m.validateShape(shape, m.N())
	P := prod(shape)
	var msgs float64
	for _, s := range shape {
		msgs += RDMessages(P / s)
	}
	return msgs
}
