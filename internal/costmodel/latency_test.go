package costmodel

import (
	"math"
	"testing"
)

func TestAlg3Messages(t *testing.T) {
	m := CubicalModel(3, 64, 8)
	// 2x2x2 grid: each hyperslice has q = 4 -> 3 messages, x3 modes.
	if got := m.Alg3Messages([]float64{2, 2, 2}); got != 9 {
		t.Fatalf("Alg3Messages = %v, want 9", got)
	}
}

func TestAlg4Messages(t *testing.T) {
	m := CubicalModel(3, 64, 8)
	// shape (2,2,2,1): tensor gather 1 msg; groups q = 2,2,4 -> 1+1+3.
	if got := m.Alg4Messages([]float64{2, 2, 2, 1}); got != 6 {
		t.Fatalf("Alg4Messages = %v, want 6", got)
	}
}

func TestRDMessages(t *testing.T) {
	if RDMessages(1) != 0 || RDMessages(8) != 3 || RDMessages(5) != 3 {
		t.Fatal("RDMessages")
	}
}

func TestRDBeatsBucketLatency(t *testing.T) {
	m := CubicalModel(3, 1<<10, 8)
	shape := []float64{8, 8, 8}
	bucket := m.Alg3Messages(shape)
	rd := m.Alg3MessagesRD(shape)
	if rd >= bucket {
		t.Fatalf("recursive doubling (%v msgs) should beat bucket (%v msgs)", rd, bucket)
	}
	// 3 hyperslices of q = 64: bucket 3*63, RD 3*6.
	if bucket != 189 || rd != 18 {
		t.Fatalf("bucket=%v rd=%v", bucket, rd)
	}
}

func TestMessagesMatchMeasured(t *testing.T) {
	// The par test TestMessageCounts measures 2*9 sends+receives on a
	// 2x2x2 grid; the model's per-proc sends must be half that.
	m := CubicalModel(3, 8, 2)
	if got := m.Alg3Messages([]float64{2, 2, 2}); math.Abs(got-9) > 0 {
		t.Fatalf("model says %v, simulator measures 9 sends", got)
	}
}
