// Package cpals implements the CP decomposition via alternating least
// squares (Section II-A), the application whose per-iteration
// bottleneck is the MTTKRP this library optimizes. A sequential solver
// and a fully distributed solver (built on the Algorithm 3 data
// distribution and collectives) are provided; the distributed solver
// reports how its communication splits between MTTKRP and the rest of
// the iteration, substantiating the paper's premise that MTTKRP
// dominates.
package cpals

import (
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Options configures a CP-ALS run.
type Options struct {
	R        int     // decomposition rank
	MaxIters int     // maximum ALS sweeps (default 50)
	Tol      float64 // stop when the fit improves by less than Tol (default 1e-8)
	Seed     int64   // factor initialization seed
	Workers  int     // MTTKRP goroutines (<= 0: linalg package default)

	// Normalize rebalances the factor column norms after every sweep
	// (the standard lambda handling): each rank-one component's
	// magnitude is spread evenly across the N factors, leaving the
	// model unchanged but keeping Gram matrices well-conditioned over
	// long runs.
	Normalize bool
}

func (o *Options) fill() error {
	if o.R < 1 {
		return fmt.Errorf("cpals: rank %d", o.R)
	}
	if o.MaxIters == 0 {
		o.MaxIters = 50
	}
	if o.MaxIters < 1 {
		return fmt.Errorf("cpals: MaxIters %d", o.MaxIters)
	}
	if o.Tol == 0 { //repro:bitwise unset-option sentinel, exact
		o.Tol = 1e-8
	}
	return nil
}

// Model is a computed CP decomposition: X ~ sum_r prod_k A(k)(:, r).
type Model struct {
	Factors []*tensor.Matrix
	Fit     float64 // 1 - ||X - Xhat|| / ||X||
}

// Reconstruct materializes the model's rank-R tensor.
func (m *Model) Reconstruct() *tensor.Dense {
	return tensor.FromFactors(m.Factors)
}

// TraceEntry records one ALS sweep.
type TraceEntry struct {
	Iter int
	Fit  float64
}

// Decompose runs sequential CP-ALS.
func Decompose(x *tensor.Dense, opts Options) (*Model, []TraceEntry, error) {
	if err := opts.fill(); err != nil {
		return nil, nil, err
	}
	N := x.Order()
	if N < 2 {
		return nil, nil, fmt.Errorf("cpals: tensor order %d", N)
	}
	factors := tensor.RandomFactors(opts.Seed, x.Dims(), opts.R)
	grams := make([]*tensor.Matrix, N)
	for k, f := range factors {
		grams[k] = linalg.Gram(f)
	}
	normX := x.Norm()
	if normX == 0 { //repro:bitwise zero-tensor guard: norm is exactly 0 iff all entries are 0
		return nil, nil, fmt.Errorf("cpals: zero tensor")
	}

	// MTTKRP state reused across all sweeps: one workspace plus one
	// output buffer per mode, so the per-iteration bottleneck runs
	// through the KRP-splitting engine with zero steady-state
	// allocations.
	ws := kernel.GetWorkspace()
	defer kernel.PutWorkspace(ws)
	bs := make([]*tensor.Matrix, N)
	for n := 0; n < N; n++ {
		bs[n] = tensor.NewMatrix(x.Dim(n), opts.R)
	}

	var trace []TraceEntry
	prevFit := math.Inf(-1)
	fit := 0.0
	for it := 0; it < opts.MaxIters; it++ {
		var lastB *tensor.Matrix
		for n := 0; n < N; n++ {
			b := bs[n]
			kernel.FastInto(b, x, factors, n, opts.Workers, ws)
			v := hadamardGrams(grams, n, opts.R)
			sspan := obs.Start(obs.PhaseSolve)
			an, err := solveFactor(v, b)
			sspan.Stop()
			if err != nil {
				return nil, nil, fmt.Errorf("cpals: mode %d solve: %w", n, err)
			}
			factors[n] = an
			gspan := obs.Start(obs.PhaseGram)
			grams[n] = linalg.Gram(an)
			gspan.Stop()
			lastB = b
		}
		fspan := obs.Start(obs.PhaseFit)
		fit = computeFit(normX, lastB, factors[N-1], grams)
		fspan.Stop()
		trace = append(trace, TraceEntry{Iter: it, Fit: fit})
		if fit-prevFit < opts.Tol && it > 0 {
			break
		}
		prevFit = fit
		if opts.Normalize {
			rebalance(factors)
			for k, f := range factors {
				grams[k] = linalg.Gram(f)
			}
		}
	}
	return &Model{Factors: factors, Fit: fit}, trace, nil
}

// rebalance spreads each rank-one component's magnitude evenly across
// the factors: column r of every factor is scaled to carry
// (prod_k ||a_r^(k)||)^(1/N). The represented tensor is unchanged.
func rebalance(factors []*tensor.Matrix) {
	N := len(factors)
	R := factors[0].Cols()
	for r := 0; r < R; r++ {
		lambda := 1.0
		norms := make([]float64, N)
		for k, f := range factors {
			col := f.Col(r)
			var s float64
			for _, v := range col {
				s += v * v
			}
			norms[k] = math.Sqrt(s)
			lambda *= norms[k]
		}
		if lambda == 0 { //repro:bitwise exact-zero guard before division
			continue
		}
		target := math.Pow(lambda, 1/float64(N))
		for k, f := range factors {
			if norms[k] == 0 { //repro:bitwise exact-zero guard before division
				continue
			}
			scale := target / norms[k]
			col := f.Col(r)
			for i := range col {
				col[i] *= scale
			}
		}
	}
}

// hadamardGrams returns the Hadamard product of all Gram matrices
// except mode n — the normal-equations matrix V of the ALS subproblem.
func hadamardGrams(grams []*tensor.Matrix, n, R int) *tensor.Matrix {
	v := tensor.NewMatrix(R, R)
	v.Fill(1)
	for k, g := range grams {
		if k == n {
			continue
		}
		v = tensor.Hadamard(v, g)
	}
	return v
}

// solveFactor solves A = B V^{-1} row-wise via the SPD system
// V A^T = B^T.
func solveFactor(v, b *tensor.Matrix) (*tensor.Matrix, error) {
	xt, err := linalg.SolveSPD(v, linalg.Transpose(b))
	if err != nil {
		return nil, err
	}
	return linalg.Transpose(xt), nil
}

// computeFit evaluates 1 - ||X - Xhat||/||X|| using the standard
// identity: ||X - Xhat||^2 = ||X||^2 - 2<X, Xhat> + ||Xhat||^2, where
// <X, Xhat> = <B(n), A(n)> for the last updated mode n and
// ||Xhat||^2 = 1' (hadamard of all Grams) 1.
func computeFit(normX float64, lastB, lastA *tensor.Matrix, grams []*tensor.Matrix) float64 {
	inner := linalg.Dot(lastB, lastA)
	R := lastA.Cols()
	all := tensor.NewMatrix(R, R)
	all.Fill(1)
	for _, g := range grams {
		all = tensor.Hadamard(all, g)
	}
	normHat2 := linalg.SumAll(all)
	resid2 := normX*normX - 2*inner + normHat2
	if resid2 < 0 {
		resid2 = 0
	}
	return 1 - math.Sqrt(resid2)/normX
}
