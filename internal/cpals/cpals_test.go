package cpals

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestDecomposeRecoversExactLowRank(t *testing.T) {
	dims := []int{6, 5, 4}
	R := 2
	truth := tensor.RandomFactors(7, dims, R)
	x := tensor.FromFactors(truth)
	model, trace, err := Decompose(x, Options{R: R, MaxIters: 200, Tol: 1e-12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if model.Fit < 0.9999 {
		t.Fatalf("fit = %v, expected near-exact recovery", model.Fit)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// Reconstruction matches the data.
	rec := model.Reconstruct()
	if rec.MaxAbsDiff(x) > 1e-2*x.Norm() {
		t.Fatalf("reconstruction error %v too large", rec.MaxAbsDiff(x))
	}
}

func TestDecomposeFitMonotone(t *testing.T) {
	dims := []int{5, 5, 5}
	x := tensor.RandomDense(11, dims...)
	_, trace, err := Decompose(x, Options{R: 3, MaxIters: 30, Tol: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Fit < trace[i-1].Fit-1e-9 {
			t.Fatalf("fit decreased at iter %d: %v -> %v", i, trace[i-1].Fit, trace[i].Fit)
		}
	}
}

func TestDecomposeNoisyLowRank(t *testing.T) {
	dims := []int{6, 6, 6}
	R := 2
	truth := tensor.RandomFactors(13, dims, R)
	x := tensor.FromFactors(truth)
	tensor.AddNoise(x, 17, 0.01)
	model, _, err := Decompose(x, Options{R: R, MaxIters: 100, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if model.Fit < 0.95 {
		t.Fatalf("fit = %v on lightly noised low-rank data", model.Fit)
	}
}

func TestDecomposeMatrixCase(t *testing.T) {
	// N = 2: CP-ALS computes a rank-R matrix approximation.
	x := tensor.RandomDense(23, 8, 6)
	model, _, err := Decompose(x, Options{R: 4, MaxIters: 60, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if model.Fit <= 0.3 {
		t.Fatalf("rank-4 fit of an 8x6 matrix should be substantial, got %v", model.Fit)
	}
}

// Normalization leaves the represented tensor (and hence the fit
// trajectory) unchanged while balancing factor norms.
func TestNormalizePreservesFitBalancesNorms(t *testing.T) {
	dims := []int{6, 6, 6}
	x := tensor.RandomDense(61, dims...)
	opts := Options{R: 3, MaxIters: 12, Tol: 0, Seed: 63}
	_, plain, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	optsN := opts
	optsN.Normalize = true
	modelN, normed, err := Decompose(x, optsN)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(normed) {
		t.Fatalf("trace lengths differ: %d vs %d", len(plain), len(normed))
	}
	for i := range plain {
		if math.Abs(plain[i].Fit-normed[i].Fit) > 1e-6 {
			t.Fatalf("sweep %d: fit %v vs %v", i, plain[i].Fit, normed[i].Fit)
		}
	}
	// Column norms balanced across modes for each component.
	for r := 0; r < 3; r++ {
		var norms []float64
		for _, f := range modelN.Factors {
			col := f.Col(r)
			var s float64
			for _, v := range col {
				s += v * v
			}
			norms = append(norms, math.Sqrt(s))
		}
		for k := 1; k < len(norms); k++ {
			if math.Abs(norms[k]-norms[0]) > 1e-6*(1+norms[0]) {
				t.Fatalf("component %d norms unbalanced: %v", r, norms)
			}
		}
	}
}

func TestRebalanceZeroColumnSafe(t *testing.T) {
	fs := tensor.RandomFactors(65, []int{3, 3}, 2)
	fs[0].Col(1)[0], fs[0].Col(1)[1], fs[0].Col(1)[2] = 0, 0, 0
	before := tensor.FromFactors(fs)
	rebalance(fs)
	after := tensor.FromFactors(fs)
	if !before.EqualApprox(after, 1e-10) {
		t.Fatal("rebalance changed the represented tensor")
	}
}

func TestDecomposeErrors(t *testing.T) {
	x := tensor.RandomDense(1, 4, 4)
	if _, _, err := Decompose(x, Options{R: 0}); err == nil {
		t.Fatal("R=0 should error")
	}
	if _, _, err := Decompose(x, Options{R: 2, MaxIters: -1}); err == nil {
		t.Fatal("negative MaxIters should error")
	}
	zero := tensor.NewDense(3, 3)
	if _, _, err := Decompose(zero, Options{R: 1}); err == nil {
		t.Fatal("zero tensor should error")
	}
}

func TestDecomposeParallelMatchesSequential(t *testing.T) {
	dims := []int{8, 8, 8}
	R := 2
	truth := tensor.RandomFactors(31, dims, R)
	x := tensor.FromFactors(truth)
	opts := Options{R: R, MaxIters: 10, Tol: 0, Seed: 37}
	_, seqTrace, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := DecomposeParallel(x, []int{2, 2, 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(parRes.Trace) != len(seqTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(parRes.Trace), len(seqTrace))
	}
	for i := range seqTrace {
		if math.Abs(parRes.Trace[i].Fit-seqTrace[i].Fit) > 1e-6 {
			t.Fatalf("iter %d: parallel fit %v vs sequential %v",
				i, parRes.Trace[i].Fit, seqTrace[i].Fit)
		}
	}
}

func TestDecomposeParallelRecovers(t *testing.T) {
	dims := []int{8, 4, 8}
	R := 2
	truth := tensor.RandomFactors(41, dims, R)
	x := tensor.FromFactors(truth)
	res, err := DecomposeParallel(x, []int{2, 1, 2}, Options{R: R, MaxIters: 150, Tol: 1e-12, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Fit < 0.999 {
		t.Fatalf("parallel fit = %v", res.Model.Fit)
	}
	rec := res.Model.Reconstruct()
	if rec.MaxAbsDiff(x) > 1e-2*x.Norm() {
		t.Fatalf("parallel reconstruction error %v", rec.MaxAbsDiff(x))
	}
}

// E10: the paper's premise — MTTKRP communication dominates CP-ALS
// communication.
func TestParallelMTTKRPDominatesComm(t *testing.T) {
	dims := []int{12, 12, 12}
	x := tensor.RandomDense(47, dims...)
	res, err := DecomposeParallel(x, []int{2, 2, 2}, Options{R: 4, MaxIters: 5, Tol: 0, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMTTKRPWords() <= res.MaxOtherWords() {
		t.Fatalf("MTTKRP words (%d) should dominate other words (%d)",
			res.MaxMTTKRPWords(), res.MaxOtherWords())
	}
}

func TestDecomposeParallelErrors(t *testing.T) {
	x := tensor.RandomDense(1, 4, 4)
	if _, err := DecomposeParallel(x, []int{2}, Options{R: 2}); err == nil {
		t.Fatal("wrong shape rank should error")
	}
	if _, err := DecomposeParallel(x, []int{4, 2}, Options{R: 2}); err == nil {
		t.Fatal("P > min dim should error")
	}
	if _, err := DecomposeParallel(x, []int{2, 2}, Options{R: 0}); err == nil {
		t.Fatal("R=0 should error")
	}
}

func TestParallelSingleProcessor(t *testing.T) {
	dims := []int{5, 5}
	x := tensor.RandomDense(53, dims...)
	res, err := DecomposeParallel(x, []int{1, 1}, Options{R: 2, MaxIters: 5, Tol: 0, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMTTKRPWords() != 0 || res.MaxOtherWords() != 0 {
		t.Fatal("P=1 should not communicate")
	}
	_, seqTrace, err := Decompose(x, Options{R: 2, MaxIters: 5, Tol: 0, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqTrace {
		if math.Abs(res.Trace[i].Fit-seqTrace[i].Fit) > 1e-9 {
			t.Fatalf("P=1 parallel should match sequential exactly at iter %d", i)
		}
	}
}
