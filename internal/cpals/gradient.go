package cpals

import (
	"fmt"
	"math"

	"repro/internal/dimtree"
	"repro/internal/linalg"
	"repro/internal/tensor"
)

// This file implements the *gradient-based* CP optimization route of
// Section II-A: "the gradients with respect to all factor matrices are
// computed and used to determine the variable updates. In both cases
// [ALS and gradient], setting up the normal equations and computing
// the gradient are bottlenecked by ... MTTKRP." All N MTTKRPs use the
// same factors here, which is exactly the case where the dimension
// tree (package dimtree) shares partial contractions across modes.

// Objective returns f(A) = 0.5 * ||X - Xhat||^2 together with the
// all-modes MTTKRP results it is computed from.
func Objective(x *tensor.Dense, factors []*tensor.Matrix) (float64, *dimtree.Result) {
	return ObjectiveWorkers(x, factors, 0)
}

// ObjectiveWorkers is Objective with an explicit goroutine count for
// the dimension-tree multi-MTTKRP (<= 0: linalg package default).
func ObjectiveWorkers(x *tensor.Dense, factors []*tensor.Matrix, workers int) (float64, *dimtree.Result) {
	res := dimtree.AllModesWorkers(x, factors, workers)
	R := factors[0].Cols()
	grams := make([]*tensor.Matrix, len(factors))
	for k, f := range factors {
		grams[k] = linalg.Gram(f)
	}
	all := tensor.NewMatrix(R, R)
	all.Fill(1)
	for _, g := range grams {
		all = tensor.Hadamard(all, g)
	}
	normX2 := 0.0
	for _, v := range x.Data() {
		normX2 += v * v
	}
	inner := linalg.Dot(res.B[0], factors[0]) // <X, Xhat> via any mode
	f := 0.5 * (normX2 - 2*inner + linalg.SumAll(all))
	if f < 0 {
		f = 0
	}
	return f, res
}

// Gradient returns the gradients dF/dA(n) = A(n)*Gamma(n) - B(n) for
// all modes, the objective value, and the shared-MTTKRP flop count.
func Gradient(x *tensor.Dense, factors []*tensor.Matrix) ([]*tensor.Matrix, float64, int64) {
	return GradientWorkers(x, factors, 0)
}

// GradientWorkers is Gradient with an explicit goroutine count for the
// dimension-tree multi-MTTKRP (<= 0: linalg package default).
func GradientWorkers(x *tensor.Dense, factors []*tensor.Matrix, workers int) ([]*tensor.Matrix, float64, int64) {
	f, res := ObjectiveWorkers(x, factors, workers)
	N := len(factors)
	R := factors[0].Cols()
	grams := make([]*tensor.Matrix, N)
	for k, fac := range factors {
		grams[k] = linalg.Gram(fac)
	}
	grads := make([]*tensor.Matrix, N)
	for n := 0; n < N; n++ {
		gamma := hadamardGrams(grams, n, R)
		g := linalg.MatMul(factors[n], gamma)
		g.Add(-1, res.B[n])
		grads[n] = g
	}
	return grads, f, res.Flops
}

// GradOptions configures DecomposeGradient.
type GradOptions struct {
	R        int
	MaxIters int     // default 200
	Tol      float64 // stop when the relative objective decrease < Tol (default 1e-10)
	Seed     int64
	Step0    float64 // initial step size (default 1e-2, adapted by backtracking)
	Workers  int     // MTTKRP goroutines (<= 0: linalg package default)

	// Init warm-starts from the given factors (cloned) instead of a
	// random initialization — e.g. a few ALS sweeps, the standard
	// CP-OPT practice. Shapes must match the tensor and R.
	Init []*tensor.Matrix
}

func (o *GradOptions) fill() error {
	if o.R < 1 {
		return fmt.Errorf("cpals: rank %d", o.R)
	}
	if o.MaxIters == 0 {
		o.MaxIters = 200
	}
	if o.MaxIters < 1 {
		return fmt.Errorf("cpals: MaxIters %d", o.MaxIters)
	}
	if o.Tol == 0 { //repro:bitwise unset-option sentinel, exact
		o.Tol = 1e-10
	}
	if o.Step0 == 0 { //repro:bitwise unset-option sentinel, exact
		o.Step0 = 1e-2
	}
	if o.Step0 <= 0 {
		return fmt.Errorf("cpals: Step0 %v", o.Step0)
	}
	return nil
}

// GradTraceEntry records one gradient-descent iteration.
type GradTraceEntry struct {
	Iter      int
	Objective float64
	GradNorm  float64
	Step      float64
}

// DecomposeGradient fits a CP model by gradient descent with Armijo
// backtracking line search, computing all per-mode gradients from one
// dimension-tree pass per objective evaluation.
func DecomposeGradient(x *tensor.Dense, opts GradOptions) (*Model, []GradTraceEntry, error) {
	if err := opts.fill(); err != nil {
		return nil, nil, err
	}
	if x.Order() < 2 {
		return nil, nil, fmt.Errorf("cpals: tensor order %d", x.Order())
	}
	normX := x.Norm()
	if normX == 0 { //repro:bitwise zero-tensor guard: norm is exactly 0 iff all entries are 0
		return nil, nil, fmt.Errorf("cpals: zero tensor")
	}
	var factors []*tensor.Matrix
	if opts.Init != nil {
		if len(opts.Init) != x.Order() {
			return nil, nil, fmt.Errorf("cpals: %d init factors for order-%d tensor", len(opts.Init), x.Order())
		}
		factors = make([]*tensor.Matrix, len(opts.Init))
		for k, f := range opts.Init {
			if f == nil || f.Rows() != x.Dim(k) || f.Cols() != opts.R {
				return nil, nil, fmt.Errorf("cpals: init factor %d has wrong shape", k)
			}
			factors[k] = f.Clone()
		}
	} else {
		// Small random init keeps the first iterations well-conditioned.
		factors = tensor.RandomFactors(opts.Seed, x.Dims(), opts.R)
		for _, f := range factors {
			for i, v := range f.Data() {
				f.Data()[i] = 0.3 * v
			}
		}
	}

	step := opts.Step0
	const c1 = 1e-4
	var trace []GradTraceEntry
	f := math.Inf(1)
	for it := 0; it < opts.MaxIters; it++ {
		grads, fcur, _ := GradientWorkers(x, factors, opts.Workers)
		f = fcur
		gnorm2 := 0.0
		for _, g := range grads {
			n := g.Norm()
			gnorm2 += n * n
		}
		trace = append(trace, GradTraceEntry{Iter: it, Objective: fcur, GradNorm: math.Sqrt(gnorm2), Step: step})
		if math.Sqrt(gnorm2) < 1e-12 {
			break
		}

		// Backtracking: shrink until the Armijo condition holds.
		accepted := false
		for try := 0; try < 40; try++ {
			cand := make([]*tensor.Matrix, len(factors))
			for k, fac := range factors {
				c := fac.Clone()
				c.Add(-step, grads[k])
				cand[k] = c
			}
			fNew, _ := ObjectiveWorkers(x, cand, opts.Workers)
			if fNew <= fcur-c1*step*gnorm2 {
				factors = cand
				f = fNew
				accepted = true
				step *= 1.2 // optimistic growth for the next iteration
				break
			}
			step *= 0.5
		}
		if !accepted {
			break // line search stalled: we are at (numerical) optimality
		}
		if fcur-f < opts.Tol*math.Max(1, fcur) && it > 0 {
			break
		}
	}

	fit := 1 - math.Sqrt(2*f)/normX
	return &Model{Factors: factors, Fit: fit}, trace, nil
}
