package cpals

import (
	"math"
	"testing"

	"repro/internal/seq"
	"repro/internal/tensor"
)

func TestObjectiveMatchesDirectResidual(t *testing.T) {
	dims := []int{4, 5, 3}
	x := tensor.RandomDense(1, dims...)
	fs := tensor.RandomFactors(2, dims, 2)
	f, _ := Objective(x, fs)
	// Direct: materialize Xhat and compute 0.5||X - Xhat||^2.
	xhat := tensor.FromFactors(fs)
	diff := x.Clone()
	diff.Add(-1, xhat)
	want := 0.5 * diff.Norm() * diff.Norm()
	if math.Abs(f-want) > 1e-8*math.Max(1, want) {
		t.Fatalf("objective %v, direct %v", f, want)
	}
}

func TestGradientMatchesFiniteDifferences(t *testing.T) {
	dims := []int{3, 4, 3}
	R := 2
	x := tensor.RandomDense(3, dims...)
	fs := tensor.RandomFactors(4, dims, R)
	grads, _, _ := Gradient(x, fs)
	const h = 1e-6
	for n := range dims {
		for i := 0; i < dims[n]; i += 2 {
			for r := 0; r < R; r++ {
				orig := fs[n].At(i, r)
				fs[n].Set(i, r, orig+h)
				fp, _ := Objective(x, fs)
				fs[n].Set(i, r, orig-h)
				fm, _ := Objective(x, fs)
				fs[n].Set(i, r, orig)
				fd := (fp - fm) / (2 * h)
				if math.Abs(fd-grads[n].At(i, r)) > 1e-4*(1+math.Abs(fd)) {
					t.Fatalf("mode %d (%d,%d): finite diff %v vs gradient %v",
						n, i, r, fd, grads[n].At(i, r))
				}
			}
		}
	}
}

func TestGradientUsesSharedMTTKRP(t *testing.T) {
	// The gradient's B(n) must equal the per-mode atomic reference.
	dims := []int{4, 4, 4}
	x := tensor.RandomDense(5, dims...)
	fs := tensor.RandomFactors(6, dims, 3)
	_, res := Objective(x, fs)
	for n := range dims {
		if !res.B[n].EqualApprox(seq.Ref(x, fs, n), 1e-9) {
			t.Fatalf("dimension-tree B(%d) differs from reference", n)
		}
	}
}

func TestGradientNearZeroAtALSFixedPoint(t *testing.T) {
	// Run ALS to convergence on an exactly low-rank tensor; the
	// gradient there should be tiny relative to the data scale.
	dims := []int{5, 5, 5}
	truth := tensor.RandomFactors(7, dims, 2)
	x := tensor.FromFactors(truth)
	model, _, err := Decompose(x, Options{R: 2, MaxIters: 300, Tol: 1e-14, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	grads, f, _ := Gradient(x, model.Factors)
	var gnorm float64
	for _, g := range grads {
		gnorm += g.Norm() * g.Norm()
	}
	gnorm = math.Sqrt(gnorm)
	if gnorm > 1e-4*x.Norm() {
		t.Fatalf("gradient norm %v too large at ALS fixed point (f=%v)", gnorm, f)
	}
}

func TestDecomposeGradientDescends(t *testing.T) {
	dims := []int{5, 4, 5}
	x := tensor.RandomDense(11, dims...)
	_, trace, err := DecomposeGradient(x, GradOptions{R: 3, MaxIters: 50, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 2 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Objective > trace[i-1].Objective+1e-9 {
			t.Fatalf("objective increased at iter %d: %v -> %v",
				i, trace[i-1].Objective, trace[i].Objective)
		}
	}
}

func TestDecomposeGradientRecoversLowRank(t *testing.T) {
	dims := []int{6, 6, 6}
	truth := tensor.RandomFactors(17, dims, 2)
	x := tensor.FromFactors(truth)
	model, _, err := DecomposeGradient(x, GradOptions{R: 2, MaxIters: 400, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if model.Fit < 0.9 {
		t.Fatalf("gradient descent fit %v; expected substantial recovery", model.Fit)
	}
}

func TestDecomposeGradientWarmStart(t *testing.T) {
	// ALS warm start then gradient polish: the objective must start at
	// the ALS value (not a random one) and never increase.
	dims := []int{6, 6, 6}
	truth := tensor.RandomFactors(21, dims, 2)
	x := tensor.FromFactors(truth)
	warm, _, err := Decompose(x, Options{R: 2, MaxIters: 8, Tol: 0, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	model, trace, err := DecomposeGradient(x, GradOptions{
		R: 2, MaxIters: 30, Seed: 23, Init: warm.Factors,
	})
	if err != nil {
		t.Fatal(err)
	}
	warmObj, _ := Objective(x, warm.Factors)
	if math.Abs(trace[0].Objective-warmObj) > 1e-9*(1+warmObj) {
		t.Fatalf("first objective %v != warm-start objective %v", trace[0].Objective, warmObj)
	}
	if model.Fit < warm.Fit-1e-9 {
		t.Fatalf("gradient polish regressed fit: %v -> %v", warm.Fit, model.Fit)
	}
	// Init must not be mutated.
	warmObj2, _ := Objective(x, warm.Factors)
	if warmObj2 != warmObj { //repro:bitwise mutation check: identical inputs must give bitwise-identical objective
		t.Fatal("warm-start factors were mutated")
	}
}

func TestDecomposeGradientBadInit(t *testing.T) {
	x := tensor.RandomDense(1, 4, 4)
	bad := []*tensor.Matrix{tensor.NewMatrix(4, 2)}
	if _, _, err := DecomposeGradient(x, GradOptions{R: 2, Init: bad}); err == nil {
		t.Fatal("wrong init length should error")
	}
	bad2 := []*tensor.Matrix{tensor.NewMatrix(5, 2), tensor.NewMatrix(4, 2)}
	if _, _, err := DecomposeGradient(x, GradOptions{R: 2, Init: bad2}); err == nil {
		t.Fatal("wrong init shape should error")
	}
}

func TestDecomposeGradientErrors(t *testing.T) {
	x := tensor.RandomDense(1, 4, 4)
	if _, _, err := DecomposeGradient(x, GradOptions{R: 0}); err == nil {
		t.Fatal("R=0 should error")
	}
	if _, _, err := DecomposeGradient(x, GradOptions{R: 2, Step0: -1}); err == nil {
		t.Fatal("negative step should error")
	}
	if _, _, err := DecomposeGradient(tensor.NewDense(3, 3), GradOptions{R: 1}); err == nil {
		t.Fatal("zero tensor should error")
	}
	if _, _, err := DecomposeGradient(x, GradOptions{R: 2, MaxIters: -5}); err == nil {
		t.Fatal("negative MaxIters should error")
	}
}
