package cpals

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// ParallelResult extends Model with the distributed run's
// communication accounting.
type ParallelResult struct {
	Model *Model
	Trace []TraceEntry

	// MTTKRPWords and OtherWords are, per rank, the words (sent +
	// received) spent in MTTKRP collectives (factor All-Gathers and
	// output Reduce-Scatters) versus everything else (Gram All-Reduces
	// and fit scalars). The paper's premise is that the first column
	// dominates.
	MTTKRPWords []int64
	OtherWords  []int64
}

// MaxMTTKRPWords returns the per-rank maximum of MTTKRP words.
func (r *ParallelResult) MaxMTTKRPWords() int64 { return maxOf(r.MTTKRPWords) }

// MaxOtherWords returns the per-rank maximum of non-MTTKRP words.
func (r *ParallelResult) MaxOtherWords() int64 { return maxOf(r.OtherWords) }

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// DecomposeParallel runs CP-ALS on the simulated distributed machine
// with an N-way processor grid (the Algorithm 3 data distribution,
// with factor block rows partitioned by whole rows so Gram matrices
// can be summed locally). Each tensor dimension must be at least
// prod(shape) so that every rank owns at least one row of every
// factor.
func DecomposeParallel(x *tensor.Dense, shape []int, opts Options) (*ParallelResult, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	N := x.Order()
	if len(shape) != N {
		return nil, fmt.Errorf("cpals: grid shape %v for order-%d tensor", shape, N)
	}
	g := grid.New(shape...)
	P := g.P()
	for k, d := range x.Dims() {
		if d < P {
			return nil, fmt.Errorf("cpals: dimension %d (mode %d) smaller than P = %d", d, k, P)
		}
	}
	lay := dist.NewStationary(x.Dims(), opts.R, g)
	net := simnet.New(P)

	// Driver-side initialization: same deterministic factors as the
	// sequential solver, sharded by rows.
	global := tensor.RandomFactors(opts.Seed, x.Dims(), opts.R)
	localX := make([]*tensor.Dense, P)
	ownRows := make([][][2]int, P) // [rank][mode] global row range
	ownFact := make([][]*tensor.Matrix, P)
	for r := 0; r < P; r++ {
		coords := g.Coords(r)
		localX[r] = lay.LocalTensor(coords, x)
		ownRows[r] = make([][2]int, N)
		ownFact[r] = make([]*tensor.Matrix, N)
		for k := 0; k < N; k++ {
			lo, hi := ownRowRange(lay, g, k, coords, r)
			ownRows[r][k] = [2]int{lo, hi}
			ownFact[r][k] = global[k].RowBlock(lo, hi)
		}
	}

	mttkrpWords := make([]int64, P)
	fits := make([][]float64, P)
	finalFact := make([][]*tensor.Matrix, P)
	err := net.Run(func(rank int) error {
		coords := g.Coords(rank)
		world := comm.New(net, worldRanks(P), rank)
		factors := ownFact[rank]

		// normX^2 via one All-Reduce of local sums of squares.
		localSq := 0.0
		for _, v := range localX[rank].Data() {
			localSq += v * v
		}
		normX := math.Sqrt(world.AllReduce([]float64{localSq})[0])

		// Initial Grams: local contribution + All-Reduce.
		grams := make([]*tensor.Matrix, N)
		for k := 0; k < N; k++ {
			grams[k] = allReduceGram(world, factors[k], opts.R)
		}

		prevFit := math.Inf(-1)
		for it := 0; it < opts.MaxIters; it++ {
			var lastB *tensor.Matrix
			for n := 0; n < N; n++ {
				before := net.RankStats(rank).Words()

				// Gather factor block rows within hyperslices.
				gathered := make([]*tensor.Matrix, N)
				for k := 0; k < N; k++ {
					if k == n {
						continue
					}
					ck := comm.New(net, lay.HyperSlice(k, coords), rank)
					gathered[k] = gatherRowBlocks(ck, factors[k], opts.R)
				}
				// Local MTTKRP (workers=1: each simulated rank already
				// runs on its own goroutine) and row-wise Reduce-Scatter.
				span := obs.StartRank(rank, obs.PhaseLocal)
				c := kernel.FastWorkers(localX[rank], gathered, n, 1)
				span.Stop()
				cn := comm.New(net, lay.HyperSlice(n, coords), rank)
				b := reduceScatterRows(cn, c, opts.R)
				mttkrpWords[rank] += net.RankStats(rank).Words() - before

				// Normal equations (replicated) and row-wise solve.
				v := hadamardGrams(grams, n, opts.R)
				an, err := solveFactor(v, b)
				if err != nil {
					return fmt.Errorf("cpals: rank %d mode %d: %w", rank, n, err)
				}
				factors[n] = an
				grams[n] = allReduceGram(world, an, opts.R)
				lastB = b
			}
			// Fit: global inner product plus replicated Gram identity.
			inner := world.AllReduce([]float64{linalg.Dot(lastB, factors[N-1])})[0]
			all := tensor.NewMatrix(opts.R, opts.R)
			all.Fill(1)
			for _, gm := range grams {
				all = tensor.Hadamard(all, gm)
			}
			resid2 := normX*normX - 2*inner + linalg.SumAll(all)
			if resid2 < 0 {
				resid2 = 0
			}
			fit := 1 - math.Sqrt(resid2)/normX
			fits[rank] = append(fits[rank], fit)
			if fit-prevFit < opts.Tol && it > 0 {
				break
			}
			prevFit = fit
		}
		finalFact[rank] = factors
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Assemble the global model from owned rows.
	factors := make([]*tensor.Matrix, N)
	for k := 0; k < N; k++ {
		factors[k] = tensor.NewMatrix(x.Dim(k), opts.R)
		for r := 0; r < P; r++ {
			factors[k].SetBlock(ownRows[r][k][0], 0, finalFact[r][k])
		}
	}
	trace := make([]TraceEntry, len(fits[0]))
	for i, f := range fits[0] {
		trace[i] = TraceEntry{Iter: i, Fit: f}
	}
	res := &ParallelResult{
		Model:       &Model{Factors: factors, Fit: fits[0][len(fits[0])-1]},
		Trace:       trace,
		MTTKRPWords: mttkrpWords,
		OtherWords:  make([]int64, P),
	}
	for r := 0; r < P; r++ {
		res.OtherWords[r] = net.RankStats(r).Words() - mttkrpWords[r]
	}
	return res, nil
}

func worldRanks(P int) []int {
	out := make([]int, P)
	for i := range out {
		out[i] = i
	}
	return out
}

// ownRowRange returns the global rows of factor k owned by the rank at
// coords: its hyperslice-position's part of the block row.
func ownRowRange(lay dist.Stationary, g *grid.Grid, k int, coords []int, rank int) (int, int) {
	slice := lay.HyperSlice(k, coords)
	idx := dist.IndexIn(slice, rank)
	blo, bhi := lay.FactorRowRange(k, coords[k])
	lo, hi := grid.Part(bhi-blo, len(slice), idx)
	return blo + lo, blo + hi
}

// gatherRowBlocks All-Gathers per-rank row shards (flattened
// column-major) and stacks them into the hyperslice's block-row
// matrix.
func gatherRowBlocks(c *comm.Comm, mine *tensor.Matrix, R int) *tensor.Matrix {
	blocks := c.AllGatherV(mine.Data())
	rows := 0
	for _, b := range blocks {
		rows += len(b) / R
	}
	out := tensor.NewMatrix(rows, R)
	at := 0
	for _, b := range blocks {
		br := len(b) / R
		out.SetBlock(at, 0, tensor.NewMatrixFromData(b, br, R))
		at += br
	}
	return out
}

// reduceScatterRows Reduce-Scatters the local contribution C by row
// blocks: hyperslice member j receives the summed rows Part(rows,q,j).
func reduceScatterRows(c *comm.Comm, contrib *tensor.Matrix, R int) *tensor.Matrix {
	q := c.Size()
	rows := contrib.Rows()
	chunks := make([][]float64, q)
	for j := 0; j < q; j++ {
		lo, hi := grid.Part(rows, q, j)
		chunks[j] = contrib.Block(lo, hi, 0, R).Data()
	}
	ownLo, ownHi := grid.Part(rows, q, c.Rank())
	own := c.ReduceScatterV(chunks)
	return tensor.NewMatrixFromData(own, ownHi-ownLo, R)
}

// allReduceGram sums each rank's local Gram contribution into the
// replicated global Gram matrix.
func allReduceGram(world *comm.Comm, rows *tensor.Matrix, R int) *tensor.Matrix {
	local := linalg.Gram(rows)
	return tensor.NewMatrixFromData(world.AllReduce(local.Data()), R, R)
}
