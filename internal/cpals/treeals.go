package cpals

import (
	"fmt"
	"math"

	"repro/internal/dimtree"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// DecomposeTree runs CP-ALS with the prefix-partial reuse of Phan et
// al. (the paper's reference [13], flagged in Section VII): within a
// sweep, modes are updated in ascending order and the prefix partial
//
//	P_k = X x_1 a^(1)... contracted with the ALREADY-UPDATED factors
//	      of modes < k (a tensor over modes k..N-1 plus the rank index)
//
// is maintained incrementally, so B(k) = contract(P_k, old factors of
// modes > k) touches a rapidly shrinking partial instead of the whole
// tensor. The update mathematics are identical to Decompose — the fit
// trajectories match to rounding — but the arithmetic per sweep drops
// from ~N tensor passes to ~1 (plus lower-order partial traffic).
//
// The returned TraceEntry slice and model match Decompose for the same
// Options; the extra return reports total MTTKRP flops for comparison
// with N*RefFlops per sweep.
func DecomposeTree(x *tensor.Dense, opts Options) (*Model, []TraceEntry, int64, error) {
	if err := opts.fill(); err != nil {
		return nil, nil, 0, err
	}
	N := x.Order()
	if N < 2 {
		return nil, nil, 0, fmt.Errorf("cpals: tensor order %d", N)
	}
	factors := tensor.RandomFactors(opts.Seed, x.Dims(), opts.R)
	grams := make([]*tensor.Matrix, N)
	for k, f := range factors {
		grams[k] = linalg.Gram(f)
	}
	normX := x.Norm()
	if normX == 0 { //repro:bitwise zero-tensor guard: norm is exactly 0 iff all entries are 0
		return nil, nil, 0, fmt.Errorf("cpals: zero tensor")
	}

	// One GEMM engine for every contraction in the run: its KRP panels,
	// partial stack, and slab scratch grow to the largest contraction
	// once and are reused for the rest of the decomposition.
	eng := dimtree.NewEngine(opts.Workers)

	var totalFlops int64
	var trace []TraceEntry
	prevFit := math.Inf(-1)
	fit := 0.0
	for it := 0; it < opts.MaxIters; it++ {
		// Prefix partial over modes k..N-1 (plus r); starts as the
		// tensor itself (no r index yet).
		var prefix *tensor.Dense
		prefixModes := make([]int, N)
		for i := range prefixModes {
			prefixModes[i] = i
		}
		var lastB *tensor.Matrix
		for n := 0; n < N; n++ {
			modes := prefixModes[n:]
			// B(n): drop all modes but n from the prefix.
			var bPart *tensor.Dense
			var fl int64
			if prefix == nil {
				bPart, fl = eng.ContractTensor(x, factors, opts.R, []int{n})
			} else {
				bPart, fl = eng.ContractPartial(prefix, modes, factors, opts.R, []int{n})
			}
			totalFlops += fl
			b := tensor.NewMatrixFromData(bPart.Data(), x.Dim(n), opts.R)

			v := hadamardGrams(grams, n, opts.R)
			sspan := obs.Start(obs.PhaseSolve)
			an, err := solveFactor(v, b)
			sspan.Stop()
			if err != nil {
				return nil, nil, 0, fmt.Errorf("cpals: mode %d solve: %w", n, err)
			}
			factors[n] = an
			gspan := obs.Start(obs.PhaseGram)
			grams[n] = linalg.Gram(an)
			gspan.Stop()
			lastB = b

			// Advance the prefix: contract mode n with the updated
			// factor (not needed after the last mode).
			if n < N-1 {
				if prefix == nil {
					prefix, fl = eng.ContractTensor(x, factors, opts.R, prefixModes[n+1:])
				} else {
					prefix, fl = eng.ContractPartial(prefix, modes, factors, opts.R, prefixModes[n+1:])
				}
				totalFlops += fl
			}
		}
		fspan := obs.Start(obs.PhaseFit)
		fit = computeFit(normX, lastB, factors[N-1], grams)
		fspan.Stop()
		trace = append(trace, TraceEntry{Iter: it, Fit: fit})
		if fit-prevFit < opts.Tol && it > 0 {
			break
		}
		prevFit = fit
		if opts.Normalize {
			rebalance(factors)
			for k, f := range factors {
				grams[k] = linalg.Gram(f)
			}
		}
	}
	return &Model{Factors: factors, Fit: fit}, trace, totalFlops, nil
}
