package cpals

import (
	"math"
	"testing"

	"repro/internal/seq"
	"repro/internal/tensor"
)

// The headline property: tree-ALS performs *identical mathematics* to
// plain ALS — every sweep's fit matches to rounding — with far fewer
// operations.
func TestTreeALSMatchesPlainALS(t *testing.T) {
	for _, dims := range [][]int{{6, 5}, {6, 5, 4}, {4, 4, 4, 4}} {
		opts := Options{R: 3, MaxIters: 8, Tol: 0, Seed: 91}
		x := tensor.RandomDense(93, dims...)
		_, plainTrace, err := Decompose(x, opts)
		if err != nil {
			t.Fatal(err)
		}
		model, treeTrace, flops, err := DecomposeTree(x, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(treeTrace) != len(plainTrace) {
			t.Fatalf("dims %v: trace lengths %d vs %d", dims, len(treeTrace), len(plainTrace))
		}
		for i := range plainTrace {
			if math.Abs(treeTrace[i].Fit-plainTrace[i].Fit) > 1e-8 {
				t.Fatalf("dims %v sweep %d: tree fit %v vs plain %v",
					dims, i, treeTrace[i].Fit, plainTrace[i].Fit)
			}
		}
		if flops <= 0 {
			t.Fatal("flops not counted")
		}
		if model.Fit != treeTrace[len(treeTrace)-1].Fit { //repro:bitwise same stored value read twice; bitwise by construction
			t.Fatal("model fit inconsistent with trace")
		}
	}
}

func TestTreeALSSavesFlops(t *testing.T) {
	dims := []int{8, 8, 8, 8}
	opts := Options{R: 2, MaxIters: 4, Tol: 0, Seed: 95}
	x := tensor.RandomDense(97, dims...)
	_, trace, flops, err := DecomposeTree(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	sweeps := int64(len(trace))
	plain := sweeps * int64(len(dims)) * seq.RefFlops(x, 2)
	if flops >= plain {
		t.Fatalf("tree ALS %d flops >= plain %d", flops, plain)
	}
	if ratio := float64(plain) / float64(flops); ratio < 2 {
		t.Fatalf("expected at least 2x flop saving for N=4, got %.2fx", ratio)
	}
}

func TestTreeALSRecoversLowRank(t *testing.T) {
	dims := []int{6, 6, 6}
	truth := tensor.RandomFactors(99, dims, 2)
	x := tensor.FromFactors(truth)
	model, _, _, err := DecomposeTree(x, Options{R: 2, MaxIters: 200, Tol: 1e-12, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	if model.Fit < 0.9999 {
		t.Fatalf("fit = %v", model.Fit)
	}
}

func TestTreeALSWithNormalization(t *testing.T) {
	dims := []int{5, 5, 5}
	x := tensor.RandomDense(103, dims...)
	opts := Options{R: 2, MaxIters: 6, Tol: 0, Seed: 105, Normalize: true}
	_, plainTrace, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, treeTrace, _, err := DecomposeTree(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plainTrace {
		if math.Abs(treeTrace[i].Fit-plainTrace[i].Fit) > 1e-8 {
			t.Fatalf("sweep %d: %v vs %v", i, treeTrace[i].Fit, plainTrace[i].Fit)
		}
	}
}

func TestTreeALSErrors(t *testing.T) {
	x := tensor.RandomDense(1, 4, 4)
	if _, _, _, err := DecomposeTree(x, Options{R: 0}); err == nil {
		t.Fatal("R=0 should error")
	}
	if _, _, _, err := DecomposeTree(tensor.NewDense(3, 3), Options{R: 1}); err == nil {
		t.Fatal("zero tensor should error")
	}
}
