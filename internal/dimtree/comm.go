package dimtree

// This file analyzes the *communication* side of the multi-MTTKRP
// optimization under a streaming two-level-memory model: every
// contraction reads its source once from slow memory, reads the
// dropped factor matrices once, and writes its result once. The
// dimension tree reads the full tensor only twice (the two root
// contractions) where N independent MTTKRPs read it N times; all other
// tree traffic touches the much smaller partials.

// CommEstimate returns the streaming-model words moved (loads+stores)
// by the balanced dimension tree and by N independent single-mode
// passes, for a tensor of the given dimensions and rank R.
func CommEstimate(dims []int, R int) (tree, independent int64) {
	N := len(dims)
	I := int64(1)
	for _, d := range dims {
		I *= int64(d)
	}
	// Independent: per mode, read X once, read the N-1 factors, write
	// the output.
	for n := 0; n < N; n++ {
		independent += I
		for k, d := range dims {
			if k != n {
				independent += int64(d) * int64(R)
			}
		}
		independent += int64(dims[n]) * int64(R)
	}

	// Tree: simulate the recursion's reads/writes.
	allModes := make([]int, N)
	for i := range allModes {
		allModes[i] = i
	}
	size := func(modes []int) int64 {
		s := int64(R)
		for _, k := range modes {
			s *= int64(dims[k])
		}
		return s
	}
	factorWords := func(drop []int) int64 {
		var s int64
		for _, k := range drop {
			s += int64(dims[k]) * int64(R)
		}
		return s
	}
	var rec func(modes []int, srcWords int64)
	rec = func(modes []int, srcWords int64) {
		if len(modes) == 1 {
			return // the node itself was already written by its parent
		}
		m := len(modes) / 2
		left, right := modes[:m], modes[m:]
		// Two contractions from this node: each reads the node and the
		// dropped factors, and writes the child.
		tree += srcWords + factorWords(right) + size(left)
		tree += srcWords + factorWords(left) + size(right)
		rec(left, size(left))
		rec(right, size(right))
	}
	if N == 2 {
		tree = 2*I + factorWords([]int{1}) + size([]int{0}) +
			factorWords([]int{0}) + size([]int{1})
		return tree, independent
	}
	m := N / 2
	left, right := allModes[:m], allModes[m:]
	tree += I + factorWords(right) + size(left)
	tree += I + factorWords(left) + size(right)
	rec(left, size(left))
	rec(right, size(right))
	return tree, independent
}
