// Package dimtree computes the MTTKRP for *all* N modes at once using
// a dimension tree, the multi-MTTKRP optimization the paper's
// conclusion points to ("optimizing over multiple MTTKRPs can save
// both communication and computation", citing Phan et al.). Gradient-
// based CP algorithms need B(n) for every mode with the same factors;
// computing them independently costs N full passes over the tensor,
// while a dimension tree shares partial contractions:
//
//	          {0,...,N-1}  (the tensor X)
//	         /           \
//	contract away R-half   contract away L-half
//	     {0,..,m-1}            {m,..,N-1}
//	     /    \                 /    \
//	   ...    ...             ...    ...
//	   {n}  -> B(n) at each leaf
//
// A node holding modes S stores the partial MTTKRP
// T_S(i_S, r) = sum_{i not in S} X(i) * prod_{k not in S} A(k)(i_k, r),
// a dense tensor of shape (I_k for k in S) x R. Only the two root
// children read X; every other contraction works on a smaller partial.
package dimtree

import (
	"fmt"

	"repro/internal/tensor"
)

// Result carries the per-mode MTTKRP outputs and the arithmetic cost.
type Result struct {
	B     []*tensor.Matrix // B[n] is the mode-n MTTKRP, I_n x R
	Flops int64            // multiply/add operations performed
}

// NaiveFlops returns the cost of computing all N MTTKRPs
// independently with the atomic kernel: N * I * R * (N+1).
func NaiveFlops(dims []int, R int) int64 {
	I := int64(1)
	for _, d := range dims {
		I *= int64(d)
	}
	N := int64(len(dims))
	return N * I * int64(R) * (N + 1)
}

// validate checks the (tensor, factors) pair and returns the rank R.
// It allocates nothing.
func validate(x *tensor.Dense, factors []*tensor.Matrix) int {
	N := x.Order()
	if len(factors) != N {
		panic(fmt.Sprintf("dimtree: %d factors for order-%d tensor", len(factors), N))
	}
	R := -1
	for k, f := range factors {
		if f == nil {
			panic(fmt.Sprintf("dimtree: factor %d is nil", k))
		}
		if f.Rows() != x.Dim(k) {
			panic(fmt.Sprintf("dimtree: factor %d has %d rows, want %d", k, f.Rows(), x.Dim(k)))
		}
		if R == -1 {
			R = f.Cols()
		} else if f.Cols() != R {
			panic(fmt.Sprintf("dimtree: factor %d has %d cols, want %d", k, f.Cols(), R))
		}
	}
	if N < 2 {
		panic("dimtree: need N >= 2")
	}
	return R
}

// AllModesRef computes B(n) for every mode n via a balanced dimension
// tree with the scalar (index-arithmetic) contraction kernels. It is
// the correctness oracle for the GEMM-based Engine; production callers
// should use AllModes. factors must all be non-nil (every mode
// participates in some contraction).
func AllModesRef(x *tensor.Dense, factors []*tensor.Matrix) *Result {
	N := x.Order()
	R := validate(x, factors)
	res := &Result{B: make([]*tensor.Matrix, N)}
	allModes := make([]int, N)
	for i := range allModes {
		allModes[i] = i
	}
	if N == 2 {
		// Both leaves come straight from the root.
		res.B[0] = res.leafFromPartial(res.contractRoot(x, factors, R, []int{0}), 0, R)
		res.B[1] = res.leafFromPartial(res.contractRoot(x, factors, R, []int{1}), 1, R)
		return res
	}
	m := N / 2
	left := allModes[:m]
	right := allModes[m:]
	res.descend(res.contractRoot(x, factors, R, left), left, factors, R)
	res.descend(res.contractRoot(x, factors, R, right), right, factors, R)
	return res
}

// descend recursively splits a partial until single modes remain.
func (res *Result) descend(part *tensor.Dense, modes []int, factors []*tensor.Matrix, R int) {
	if len(modes) == 1 {
		res.B[modes[0]] = res.leafFromPartial(part, modes[0], R)
		return
	}
	m := len(modes) / 2
	left := modes[:m]
	right := modes[m:]
	res.descend(res.contractPartial(part, modes, factors, R, left), left, factors, R)
	res.descend(res.contractPartial(part, modes, factors, R, right), right, factors, R)
}

// leafFromPartial reinterprets a single-mode partial (I_n x R tensor)
// as the output matrix (the layouts coincide: column-major).
func (res *Result) leafFromPartial(part *tensor.Dense, mode, R int) *tensor.Matrix {
	return tensor.NewMatrixFromData(part.Data(), part.Dim(0), R)
}

// contractRoot computes T_keep directly from the tensor:
// T(i_keep, r) = sum_{i_drop} X(i) prod_{k in drop} A(k)(i_k, r).
func (res *Result) contractRoot(x *tensor.Dense, factors []*tensor.Matrix, R int, keep []int) *tensor.Dense {
	N := x.Order()
	dims := x.Dims()
	drop := complement(N, keep)

	outDims := make([]int, len(keep)+1)
	for i, k := range keep {
		outDims[i] = dims[k]
	}
	outDims[len(keep)] = R
	out := tensor.NewDense(outDims...)

	// Strides of the kept modes within the output.
	keepStride := make([]int, N)
	acc := 1
	for i, k := range keep {
		keepStride[k] = acc
		acc *= outDims[i]
	}
	rStride := acc

	// Hoisted out of the element loop: the dropped factors' raw
	// column-major storage and row counts, so the rank loop indexes
	// slices directly instead of going through Matrix.At.
	dropData := make([][]float64, len(drop))
	dropRows := make([]int, len(drop))
	for i, k := range drop {
		dropData[i] = factors[k].Data()
		dropRows[i] = factors[k].Rows()
	}

	idx := make([]int, N)
	data := x.Data()
	outData := out.Data()
	for off := 0; off < len(data); off++ {
		v := data[off]
		base := 0
		for _, k := range keep {
			base += idx[k] * keepStride[k]
		}
		for r := 0; r < R; r++ {
			p := v
			for i, k := range drop {
				p *= dropData[i][idx[k]+r*dropRows[i]]
			}
			outData[base+r*rStride] += p
		}
		incIndex(idx, dims)
	}
	res.Flops += int64(len(data)) * int64(R) * int64(len(drop)+1)
	return out
}

// contractPartial contracts away modes of an existing partial:
// T'(i_keep, r) = sum_{i_drop} T(i_modes, r) prod_{k in drop} A(k)(i_k, r).
// modes lists the partial's tensor modes in order (its last dimension
// is r); keep must be a sub-slice of modes.
func (res *Result) contractPartial(part *tensor.Dense, modes []int, factors []*tensor.Matrix, R int, keep []int) *tensor.Dense {
	keepSet := make(map[int]bool, len(keep))
	for _, k := range keep {
		keepSet[k] = true
	}
	var drop []int
	for _, k := range modes {
		if !keepSet[k] {
			drop = append(drop, k)
		}
	}

	pd := part.Dims() // modes' extents + R
	outDims := make([]int, len(keep)+1)
	for i, k := range keep {
		outDims[i] = extentOf(modes, pd, k)
	}
	outDims[len(keep)] = R
	out := tensor.NewDense(outDims...)

	// Precompute, per kept/dropped mode, its position in the partial's
	// index and (for kept modes) its stride in the output.
	keepPos := make([]int, len(keep))
	keepStride := make([]int, len(keep))
	acc := 1
	for i, k := range keep {
		keepPos[i] = posOf(modes, k)
		keepStride[i] = acc
		acc *= outDims[i]
	}
	rStride := acc
	dropPos := make([]int, len(drop))
	for i, k := range drop {
		dropPos[i] = posOf(modes, k)
	}

	// The rank index is the partial's last (slowest-varying) mode, so
	// r is constant over long runs of offsets: hoist the dropped
	// factors' rank-r column slices and the output's rank-r base,
	// refreshing them only when r advances.
	dropCols := make([][]float64, len(drop))
	idx := make([]int, len(pd))
	data := part.Data()
	outData := out.Data()
	lastR := -1
	outBase := 0
	for off := 0; off < len(data); off++ {
		r := idx[len(pd)-1]
		if r != lastR {
			for i, k := range drop {
				dropCols[i] = factors[k].Col(r)
			}
			outBase = r * rStride
			lastR = r
		}
		p := data[off]
		for i := range drop {
			p *= dropCols[i][idx[dropPos[i]]]
		}
		base := outBase
		for i := range keep {
			base += idx[keepPos[i]] * keepStride[i]
		}
		outData[base] += p
		incIndex(idx, pd)
	}
	res.Flops += int64(len(data)) * int64(len(drop)+1)
	return out
}

// ContractTensorRef computes the partial MTTKRP T(i_keep, r) =
// sum_{i_drop} X(i) prod_{k in drop} A(k)(i_k, r) directly from the
// tensor with the scalar kernel, returning the partial (dims: kept
// extents + R) and the flop count. It accepts arbitrary keep sets and
// serves as the oracle for the Engine's GEMM-based contractions.
func ContractTensorRef(x *tensor.Dense, factors []*tensor.Matrix, R int, keep []int) (*tensor.Dense, int64) {
	scratch := &Result{}
	out := scratch.contractRoot(x, factors, R, keep)
	return out, scratch.Flops
}

// ContractPartialRef contracts away modes of an existing partial (last
// dimension r) with the scalar kernel: modes lists the partial's
// tensor modes in order, keep the modes to retain. Returns the new
// partial and the flop count.
func ContractPartialRef(part *tensor.Dense, modes []int, factors []*tensor.Matrix, R int, keep []int) (*tensor.Dense, int64) {
	scratch := &Result{}
	out := scratch.contractPartial(part, modes, factors, R, keep)
	return out, scratch.Flops
}

func complement(N int, keep []int) []int {
	in := make([]bool, N)
	for _, k := range keep {
		in[k] = true
	}
	var out []int
	for k := 0; k < N; k++ {
		if !in[k] {
			out = append(out, k)
		}
	}
	return out
}

func posOf(modes []int, k int) int {
	for i, m := range modes {
		if m == k {
			return i
		}
	}
	panic(fmt.Sprintf("dimtree: mode %d not in %v", k, modes))
}

func extentOf(modes []int, partDims []int, k int) int {
	return partDims[posOf(modes, k)]
}

func incIndex(idx, dims []int) {
	for k := range idx {
		idx[k]++
		if idx[k] < dims[k] {
			return
		}
		idx[k] = 0
	}
}
