package dimtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memsim"
	"repro/internal/seq"
	"repro/internal/tensor"
)

func TestAllModesMatchesRef(t *testing.T) {
	for _, dims := range [][]int{
		{4, 5},
		{3, 4, 5},
		{2, 3, 4, 3},
		{2, 2, 3, 2, 2},
	} {
		R := 3
		x := tensor.RandomDense(7, dims...)
		fs := tensor.RandomFactors(9, dims, R)
		res := AllModes(x, fs)
		if len(res.B) != len(dims) {
			t.Fatalf("dims %v: got %d outputs", dims, len(res.B))
		}
		for n := range dims {
			want := seq.Ref(x, fs, n)
			if !res.B[n].EqualApprox(want, 1e-9) {
				t.Fatalf("dims %v mode %d: mismatch %v", dims, n, res.B[n].MaxAbsDiff(want))
			}
		}
	}
}

// The whole point: for N >= 3 the tree performs fewer operations than
// N independent atomic MTTKRPs, increasingly so with N.
func TestTreeSavesFlops(t *testing.T) {
	prevRatio := 1.0
	for _, N := range []int{3, 4, 5} {
		dims := make([]int, N)
		for i := range dims {
			dims[i] = 6
		}
		R := 4
		x := tensor.RandomDense(11, dims...)
		fs := tensor.RandomFactors(13, dims, R)
		res := AllModes(x, fs)
		naive := NaiveFlops(dims, R)
		if res.Flops >= naive {
			t.Fatalf("N=%d: tree flops %d >= naive %d", N, res.Flops, naive)
		}
		ratio := float64(res.Flops) / float64(naive)
		if ratio >= prevRatio {
			t.Fatalf("N=%d: savings ratio %.3f did not improve on %.3f", N, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestN2BothLeavesFromRoot(t *testing.T) {
	dims := []int{5, 7}
	x := tensor.RandomDense(17, dims...)
	fs := tensor.RandomFactors(19, dims, 2)
	res := AllModes(x, fs)
	for n := 0; n < 2; n++ {
		if !res.B[n].EqualApprox(seq.Ref(x, fs, n), 1e-9) {
			t.Fatalf("N=2 mode %d mismatch", n)
		}
	}
}

func TestFlopsPositiveAndCounted(t *testing.T) {
	dims := []int{4, 4, 4}
	x := tensor.RandomDense(23, dims...)
	fs := tensor.RandomFactors(29, dims, 2)
	res := AllModes(x, fs)
	if res.Flops <= 0 {
		t.Fatal("flops not counted")
	}
	// Root contractions alone cost 2 * I*R*(drop+1); the total must
	// exceed that.
	if res.Flops < 2*64*2*2 {
		t.Fatalf("flops %d implausibly low", res.Flops)
	}
}

func TestPanics(t *testing.T) {
	x := tensor.RandomDense(1, 4, 4)
	fs := tensor.RandomFactors(2, []int{4, 4}, 2)
	for _, f := range []func(){
		func() { AllModes(x, fs[:1]) },
		func() { AllModes(x, []*tensor.Matrix{nil, fs[1]}) },
		func() { AllModes(x, []*tensor.Matrix{fs[0], tensor.NewMatrix(5, 2)}) },
		func() { AllModes(x, []*tensor.Matrix{fs[0], tensor.NewMatrix(4, 3)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// The communication claim (Section VII: "save both communication and
// computation"): under the streaming model, the tree's words approach
// 2/N of the independent cost as N grows (tensor reads dominate).
func TestCommEstimateTreeWins(t *testing.T) {
	prevRatio := 1.0
	for _, N := range []int{3, 4, 5, 6} {
		dims := make([]int, N)
		for i := range dims {
			dims[i] = 8
		}
		tree, indep := CommEstimate(dims, 2)
		if tree >= indep {
			t.Fatalf("N=%d: tree %d >= independent %d", N, tree, indep)
		}
		ratio := float64(tree) / float64(indep)
		if ratio >= prevRatio {
			t.Fatalf("N=%d: comm ratio %.3f did not improve on %.3f", N, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	// Deep tree: ratio should be within shouting distance of 2/N.
	dims := []int{8, 8, 8, 8, 8, 8}
	tree, indep := CommEstimate(dims, 2)
	ratio := float64(tree) / float64(indep)
	if ratio > 2.0/6+0.15 {
		t.Fatalf("N=6 ratio %.3f far above 2/N", ratio)
	}
}

func TestCommEstimateN2(t *testing.T) {
	tree, indep := CommEstimate([]int{16, 16}, 2)
	if tree <= 0 || indep <= 0 {
		t.Fatal("estimates must be positive")
	}
	// For N=2 both read the tensor twice; no asymptotic saving.
	if tree > indep {
		t.Fatalf("N=2: tree %d should not exceed independent %d", tree, indep)
	}
}

// When R is large relative to the tensor, intermediate partials
// dominate and the tree's advantage shrinks — the estimate must
// capture that regime reversal.
func TestCommEstimateLargeRRegime(t *testing.T) {
	dims := []int{4, 4, 4, 4}
	_, indepSmall := CommEstimate(dims, 1)
	treeSmall, _ := CommEstimate(dims, 1)
	ratioSmall := float64(treeSmall) / float64(indepSmall)
	treeBig, indepBig := CommEstimate(dims, 256)
	ratioBig := float64(treeBig) / float64(indepBig)
	if ratioBig <= ratioSmall {
		t.Fatalf("large R should erode the tree's advantage: %.3f vs %.3f", ratioBig, ratioSmall)
	}
}

// The instrumented tree's measured words equal the analytic estimate
// exactly, and its results match the plain tree.
func TestInstrumentedMatchesEstimate(t *testing.T) {
	for _, dims := range [][]int{{6, 6}, {6, 6, 6}, {4, 4, 4, 4}} {
		R := 2
		x := tensor.RandomDense(31, dims...)
		fs := tensor.RandomFactors(32, dims, R)
		mach := memsim.New(1 << 20)
		res, counts, err := AllModesInstrumented(x, fs, mach)
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		tree, _ := CommEstimate(dims, R)
		if counts.Words() != tree {
			t.Fatalf("dims %v: measured %d words, estimate %d", dims, counts.Words(), tree)
		}
		for n := range dims {
			if !res.B[n].EqualApprox(seq.Ref(x, fs, n), 1e-9) {
				t.Fatalf("dims %v mode %d: wrong result", dims, n)
			}
		}
	}
}

func TestInstrumentedCapacityError(t *testing.T) {
	dims := []int{8, 8, 8}
	x := tensor.RandomDense(33, dims...)
	fs := tensor.RandomFactors(34, dims, 4)
	// Root child destination is 8*8*4 = 256 words; M = 64 cannot hold it.
	if _, _, err := AllModesInstrumented(x, fs, memsim.New(64)); err == nil {
		t.Fatal("expected capacity error")
	}
}

// Measured head-to-head (E14 comm): instrumented tree vs N x blocked
// Algorithm 2 at the same machine size — the tree moves fewer words in
// the tensor-dominated regime.
func TestInstrumentedTreeBeatsIndependentMeasured(t *testing.T) {
	dims := []int{8, 8, 8, 8}
	R := 2
	x := tensor.RandomDense(35, dims...)
	fs := tensor.RandomFactors(36, dims, R)
	M := int64(1 << 13)
	machT := memsim.New(M)
	_, counts, err := AllModesInstrumented(x, fs, machT)
	if err != nil {
		t.Fatal(err)
	}
	var indep int64
	for n := range dims {
		b, err := seq.ChooseBlock(M, len(dims), 0.9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := seq.Blocked(x, fs, n, b, memsim.New(M))
		if err != nil {
			t.Fatal(err)
		}
		indep += res.Counts.Words()
	}
	if counts.Words() >= indep {
		t.Fatalf("tree %d words should beat %d independent blocked runs (%d words)",
			counts.Words(), len(dims), indep)
	}
}

// Property: random shapes and ranks, tree output equals per-mode Ref.
func TestAllModesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		N := 2 + rng.Intn(3)
		dims := make([]int, N)
		for i := range dims {
			dims[i] = 1 + rng.Intn(5)
		}
		R := 1 + rng.Intn(4)
		x := tensor.RandomDense(seed, dims...)
		fs := tensor.RandomFactors(seed+1, dims, R)
		res := AllModes(x, fs)
		for n := range dims {
			if !res.B[n].EqualApprox(seq.Ref(x, fs, n), 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
