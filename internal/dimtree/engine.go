package dimtree

// The GEMM-based multi-MTTKRP engine. The balanced dimension tree only
// ever holds *contiguous* mode ranges [lo, hi): the root splits
// [0, N) into [0, m) and [m, N), and every descent splits a range at
// its midpoint. In generalized column-major layout that contiguity is
// everything — a node's partial needs no permutation to be contracted:
//
//   - a root contraction keeping [lo, hi) views the tensor in place as
//     an (L, M, Rt) 3-tensor (L = prod I_0..I_{lo-1},
//     M = prod I_lo..I_{hi-1}, Rt = prod I_hi..I_{N-1}) and is exactly
//     kernel.Contract3: one blocked GEMM when the kept range touches a
//     boundary (GemmNN for prefixes — the natural unfolding IS the
//     layout — GemmTN for suffixes), the slab-splitting interior
//     kernel otherwise;
//   - a partial contraction shares the rank index r between the source
//     and the dropped factors, so it is R independent GEMV-shaped
//     passes: per rank, the partial's slab is an (L', M', Rt')
//     column-major block and the kept result is slab * kr_r (dropped
//     suffix) or slab^T * kl_r (dropped prefix), each a call into the
//     blocked linalg kernels. Ranks split across goroutines with
//     disjoint output columns.
//
// Every temporary — partial tensors (a stack, depth <= log2 N), the
// dropped-mode KRP panels, per-worker GEMV scratch, and the interior
// kernel's accumulation buckets — lives in a grow-only workspace owned
// by the Engine, so repeated traversals allocate nothing in steady
// state. Results are bitwise independent of the worker count: the
// boundary GEMMs compute each output element in a partition-invariant
// order, rank splitting only moves whole output columns between
// goroutines, and the interior kernel accumulates into a fixed bucket
// count combined by kernel.ReduceTree. AllModesRef (the scalar tree)
// remains the correctness oracle.

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Engine executes dimension-tree contractions with the blocked GEMM
// kernels, reusing all internal buffers across calls. An Engine is not
// safe for concurrent use; use one per goroutine (the package-level
// AllModes/ContractTensor/ContractPartial helpers borrow from a pool).
type Engine struct {
	// Workers is the goroutine count handed to the underlying kernels
	// (<= 0 selects the linalg package default). Results are bitwise
	// identical for every value.
	Workers int

	kws   *kernel.Workspace // Contract3 scratch (slab GEMM + buckets)
	kl    []float64         // dropped-prefix KRP panel
	kr    []float64         // dropped-suffix KRP panel
	tmp   []float64         // workers * M' scratch for two-sided partials
	stack [][]float64       // partial-tensor slots, stack discipline
	sp    int
}

// NewEngine returns an engine with the given worker count (<= 0 means
// the linalg package default).
func NewEngine(workers int) *Engine {
	return &Engine{Workers: workers, kws: new(kernel.Workspace)}
}

// AllModes computes B(n) for every mode n via the balanced dimension
// tree, freshly allocating the Result. See AllModesInto for the
// allocation-free variant.
func (e *Engine) AllModes(x *tensor.Dense, factors []*tensor.Matrix) *Result {
	res := &Result{}
	e.AllModesInto(res, x, factors)
	return res
}

// AllModesInto computes B(n) for every mode n into res, reusing
// res.B matrices whose shapes already match. With a warmed engine and
// Workers == 1 the call performs no allocations, which is what keeps
// gradient-CP and multi-MTTKRP inner loops allocation-free; parallel
// calls allocate only goroutine bookkeeping.
//
//repro:hotpath
func (e *Engine) AllModesInto(res *Result, x *tensor.Dense, factors []*tensor.Matrix) {
	R := validate(x, factors)
	N := x.Order()
	if len(res.B) != N {
		res.B = make([]*tensor.Matrix, N) //repro:ignore hotpath-alloc first-call/shape-change growth; steady state reuses res.B
	}
	for n := 0; n < N; n++ {
		if res.B[n] == nil || res.B[n].Rows() != x.Dim(n) || res.B[n].Cols() != R {
			res.B[n] = tensor.NewMatrix(x.Dim(n), R) //repro:ignore hotpath-alloc first-call/shape-change growth; steady state reuses res.B
		}
	}
	res.Flops = 0
	e.sp = 0
	if N == 2 {
		res.Flops += e.contractRoot(res.B[0].Data(), x, factors, R, 0, 1)
		res.Flops += e.contractRoot(res.B[1].Data(), x, factors, R, 1, 2)
		return
	}
	m := N / 2
	e.rootBranch(res, x, factors, R, 0, m)
	e.rootBranch(res, x, factors, R, m, N)
}

// rootBranch materializes the root child holding modes [lo, hi) and
// recursively splits it down to the leaves.
func (e *Engine) rootBranch(res *Result, x *tensor.Dense, factors []*tensor.Matrix, R, lo, hi int) {
	if hi-lo == 1 {
		res.Flops += e.contractRoot(res.B[lo].Data(), x, factors, R, lo, hi)
		return
	}
	part := e.push(prodDims(x, lo, hi) * R)
	res.Flops += e.contractRoot(part, x, factors, R, lo, hi)
	e.descend(res, part, x, factors, R, lo, hi)
	e.pop()
}

// descend splits the partial holding modes [lo, hi) at its midpoint,
// mirroring the scalar tree's structure exactly.
func (e *Engine) descend(res *Result, part []float64, x *tensor.Dense, factors []*tensor.Matrix, R, lo, hi int) {
	mid := lo + (hi-lo)/2
	if mid-lo == 1 {
		res.Flops += e.contractPart(res.B[lo].Data(), part, x, factors, R, lo, hi, lo, mid)
	} else {
		child := e.push(prodDims(x, lo, mid) * R)
		res.Flops += e.contractPart(child, part, x, factors, R, lo, hi, lo, mid)
		e.descend(res, child, x, factors, R, lo, mid)
		e.pop()
	}
	if hi-mid == 1 {
		res.Flops += e.contractPart(res.B[mid].Data(), part, x, factors, R, lo, hi, mid, hi)
	} else {
		child := e.push(prodDims(x, mid, hi) * R)
		res.Flops += e.contractPart(child, part, x, factors, R, lo, hi, mid, hi)
		e.descend(res, child, x, factors, R, mid, hi)
		e.pop()
	}
}

// contractRoot computes the partial keeping the contiguous mode range
// [lo, hi) directly from the tensor into out (prod I_lo..I_{hi-1} x R,
// overwritten) via kernel.Contract3, and returns the flop count.
//
//repro:hotpath
func (e *Engine) contractRoot(out []float64, x *tensor.Dense, factors []*tensor.Matrix, R, lo, hi int) int64 {
	span := obs.Start(obs.PhaseTreeRoot)
	defer span.Stop()
	N := x.Order()
	L := prodDims(x, 0, lo)
	M := prodDims(x, lo, hi)
	Rt := prodDims(x, hi, N)
	var fl int64
	var kl, kr []float64
	if lo > 0 {
		e.kl = growf(e.kl, L*R)
		kernel.KRPInto(e.kl, factors, 0, lo, R)
		kl = e.kl
		fl += int64(L) * int64(R)
	}
	if hi < N {
		e.kr = growf(e.kr, Rt*R)
		kernel.KRPInto(e.kr, factors, hi, N, R)
		kr = e.kr
		fl += int64(Rt) * int64(R)
	}
	if kl == nil && kr == nil {
		// Nothing dropped: the empty product broadcasts X across the R
		// rank columns (the scalar oracle's behavior and accounting).
		obs.Copy(M * R)
		for r := 0; r < R; r++ {
			copy(out[r*M:(r+1)*M], x.Data())
		}
		return fl + int64(M)*int64(R)
	}
	kernel.Contract3(out, x.Data(), kl, kr, L, M, Rt, R, e.Workers, e.kws)
	fl += 2 * int64(L) * int64(M) * int64(Rt) * int64(R)
	if kl != nil && kr != nil {
		fl += 2 * int64(M) * int64(Rt) * int64(R) // interior slab fold
	}
	return fl
}

// contractPart contracts a partial holding modes [plo, phi) down to
// the kept range [klo, khi), writing into out. Mode extents come from
// the tensor.
func (e *Engine) contractPart(out, part []float64, x *tensor.Dense, factors []*tensor.Matrix, R, plo, phi, klo, khi int) int64 {
	return e.contractPartExtents(out, part, factors, R, plo, phi, klo, khi,
		prodDims(x, plo, klo), prodDims(x, klo, khi), prodDims(x, khi, phi))
}

// contractPartExtents is the rank-split partial contraction: per rank
// r the source slab is an (Lp, Mp, Rtp) column-major block and
//
//	out(:, r) = sum_{l, t} slab(l, :, t) * kl(l, r) * kr(t, r)
//
// — a GEMV-shaped pass into the blocked kernels (GemmNN for a dropped
// suffix, GemmTN for a dropped prefix, a slab loop when both sides
// drop). Ranks are split across workers; each writes only its own
// output columns, so results are bitwise worker-count independent.
//
//repro:hotpath
func (e *Engine) contractPartExtents(out, part []float64, factors []*tensor.Matrix, R, plo, phi, klo, khi, Lp, Mp, Rtp int) int64 {
	span := obs.Start(obs.PhaseTreePartial)
	defer span.Stop()
	S := Lp * Mp * Rtp
	var fl int64
	var kl, kr []float64
	if klo > plo {
		e.kl = growf(e.kl, Lp*R)
		kernel.KRPInto(e.kl, factors, plo, klo, R)
		kl = e.kl
		fl += int64(Lp) * int64(R)
	}
	if khi < phi {
		e.kr = growf(e.kr, Rtp*R)
		kernel.KRPInto(e.kr, factors, khi, phi, R)
		kr = e.kr
		fl += int64(Rtp) * int64(R)
	}
	if kl == nil && kr == nil {
		// Nothing dropped: the contraction is the identity (the scalar
		// oracle's empty-product case). Match its flop accounting.
		obs.Copy(S * R)
		copy(out[:S*R], part[:S*R])
		return fl + int64(S)*int64(R)
	}
	workers := linalg.ResolveWorkers(e.Workers)
	if workers > R {
		workers = R
	}
	if kl != nil && kr != nil {
		e.tmp = growf(e.tmp, workers*Mp)
	}
	if workers <= 1 {
		// Direct call — no closure, so the serial path (the one the
		// zero-alloc contract covers) allocates nothing.
		partialRanks(out, part, kl, kr, e.tmp, Lp, Mp, Rtp, 0, R)
	} else {
		partialRanksParallel(out, part, kl, kr, e.tmp, Lp, Mp, Rtp, R, workers)
	}
	fl += 2 * int64(S) * int64(R)
	if kl != nil && kr != nil {
		fl += 2 * int64(Mp) * int64(Rtp) * int64(R)
	}
	return fl
}

// ContractTensor computes the partial MTTKRP keeping the given modes
// directly from the tensor — the GEMM-based counterpart of
// ContractTensorRef. keep must be non-empty and ascending; a
// non-contiguous keep set falls back to the scalar kernel (the layout
// admits no GEMM view). Returns the partial (kept extents + R) and the
// flop count.
func (e *Engine) ContractTensor(x *tensor.Dense, factors []*tensor.Matrix, R int, keep []int) (*tensor.Dense, int64) {
	if !contiguousAscending(keep) {
		return ContractTensorRef(x, factors, R, keep)
	}
	lo, hi := keep[0], keep[len(keep)-1]+1
	if lo < 0 || hi > x.Order() {
		panic(fmt.Sprintf("dimtree: keep %v out of range for order-%d tensor", keep, x.Order()))
	}
	outDims := make([]int, len(keep)+1)
	for i, k := range keep {
		outDims[i] = x.Dim(k)
	}
	outDims[len(keep)] = R
	out := tensor.NewDense(outDims...)
	return out, e.contractRoot(out.Data(), x, factors, R, lo, hi)
}

// ContractPartial contracts away modes of an existing partial (last
// dimension r) — the GEMM-based counterpart of ContractPartialRef.
// modes lists the partial's tensor modes in order, keep the modes to
// retain; when either is non-contiguous the call falls back to the
// scalar kernel. Returns the new partial and the flop count.
func (e *Engine) ContractPartial(part *tensor.Dense, modes []int, factors []*tensor.Matrix, R int, keep []int) (*tensor.Dense, int64) {
	if !contiguousAscending(modes) || !contiguousAscending(keep) {
		return ContractPartialRef(part, modes, factors, R, keep)
	}
	plo, phi := modes[0], modes[len(modes)-1]+1
	klo, khi := keep[0], keep[len(keep)-1]+1
	if klo < plo || khi > phi {
		panic(fmt.Sprintf("dimtree: keep %v not within modes %v", keep, modes))
	}
	Lp, Mp, Rtp := 1, 1, 1
	for i, k := range modes {
		d := part.Dim(i)
		switch {
		case k < klo:
			Lp *= d
		case k < khi:
			Mp *= d
		default:
			Rtp *= d
		}
	}
	outDims := make([]int, len(keep)+1)
	for i, k := range keep {
		outDims[i] = part.Dim(k - plo)
	}
	outDims[len(keep)] = R
	out := tensor.NewDense(outDims...)
	fl := e.contractPartExtents(out.Data(), part.Data(), factors, R, plo, phi, klo, khi, Lp, Mp, Rtp)
	return out, fl
}

// push returns the grow-only buffer for the next partial-stack slot.
// The traversal order is deterministic, so each slot settles on its
// maximal size after the first call and push allocates nothing in
// steady state. Contractions fully overwrite their output, so the
// buffer is not cleared.
func (e *Engine) push(n int) []float64 {
	if e.sp == len(e.stack) {
		e.stack = append(e.stack, nil) //repro:ignore hotpath-alloc grow-only partial stack, depth <= log2 N; settles after the first traversal
	}
	e.stack[e.sp] = growf(e.stack[e.sp], n)
	buf := e.stack[e.sp]
	e.sp++
	return buf
}

func (e *Engine) pop() { e.sp-- }

// enginePool backs the package-level entry points so concurrent
// callers (e.g. simulated ranks in par) each get a private engine.
var enginePool = sync.Pool{New: func() any { return NewEngine(0) }}

// AllModes computes B(n) for every mode n via a balanced dimension
// tree with the GEMM-based engine at the default worker count. factors
// must all be non-nil (every mode participates in some contraction).
func AllModes(x *tensor.Dense, factors []*tensor.Matrix) *Result {
	return AllModesWorkers(x, factors, 0)
}

// AllModesWorkers is AllModes with an explicit goroutine count (<= 0
// selects the linalg package default). Results are bitwise identical
// for every worker count.
func AllModesWorkers(x *tensor.Dense, factors []*tensor.Matrix, workers int) *Result {
	e := enginePool.Get().(*Engine)
	e.Workers = workers
	res := e.AllModes(x, factors)
	enginePool.Put(e)
	return res
}

// ContractTensor computes the partial MTTKRP T(i_keep, r) =
// sum_{i_drop} X(i) prod_{k in drop} A(k)(i_k, r) directly from the
// tensor with a pooled GEMM engine (scalar fallback for
// non-contiguous keep sets), returning the partial (dims: kept
// extents + R) and the flop count. Exported for algorithms that manage
// their own partials (e.g. dimension-tree ALS).
func ContractTensor(x *tensor.Dense, factors []*tensor.Matrix, R int, keep []int) (*tensor.Dense, int64) {
	e := enginePool.Get().(*Engine)
	e.Workers = 0
	defer enginePool.Put(e)
	return e.ContractTensor(x, factors, R, keep)
}

// ContractPartial contracts away modes of an existing partial (last
// dimension r) with a pooled GEMM engine: modes lists the partial's
// tensor modes in order, keep the modes to retain. Returns the new
// partial and the flop count.
func ContractPartial(part *tensor.Dense, modes []int, factors []*tensor.Matrix, R int, keep []int) (*tensor.Dense, int64) {
	e := enginePool.Get().(*Engine)
	e.Workers = 0
	defer enginePool.Put(e)
	return e.ContractPartial(part, modes, factors, R, keep)
}

// prodDims multiplies the extents of modes [lo, hi) without
// allocating.
func prodDims(x *tensor.Dense, lo, hi int) int {
	p := 1
	for k := lo; k < hi; k++ {
		p *= x.Dim(k)
	}
	return p
}

func contiguousAscending(modes []int) bool {
	if len(modes) == 0 {
		return false
	}
	for i := 1; i < len(modes); i++ {
		if modes[i] != modes[i-1]+1 {
			return false
		}
	}
	return true
}

// growf returns s resized to n, reusing capacity when possible.
//
//repro:ignore hotpath-alloc grow-only workspace primitive; allocates only while capacity still grows
func growf(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// partialRanks runs the per-rank GEMV passes for ranks [r0, r1). tmp
// supplies the two-sided scratch column starting at its front (callers
// hand each worker a disjoint sub-slice). Each rank touches only its
// own output column and is processed in an order fixed by the rank
// alone, so any partition of [0, R) gives bitwise-identical results.
func partialRanks(out, part, kl, kr, tmp []float64, Lp, Mp, Rtp, r0, r1 int) {
	if kl != nil && kr != nil {
		// The per-slab GEMV passes count themselves; the KR-weighted fold
		// adds Rtp accumulate passes of Mp words per rank.
		obs.Axpy((r1-r0)*Rtp, Mp)
	}
	S := Lp * Mp * Rtp
	for r := r0; r < r1; r++ {
		pr := part[r*S : (r+1)*S]
		outcol := out[r*Mp : (r+1)*Mp]
		switch {
		case kl == nil:
			linalg.GemmNN(outcol, pr, kr[r*Rtp:(r+1)*Rtp], Mp, Rtp, 1, 1)
		case kr == nil:
			linalg.GemmTN(outcol, pr, kl[r*Lp:(r+1)*Lp], Lp, Mp, 1, 1)
		default:
			for i := range outcol {
				outcol[i] = 0
			}
			slab := Lp * Mp
			klcol := kl[r*Lp : (r+1)*Lp]
			wcol := tmp[:Mp]
			for t := 0; t < Rtp; t++ {
				linalg.GemmTN(wcol, pr[t*slab:(t+1)*slab], klcol, Lp, Mp, 1, 1)
				krv := kr[t+r*Rtp]
				if krv == 0 { //repro:bitwise exact-zero sparsity skip; krv was stored, never computed
					continue
				}
				for i, v := range wcol {
					outcol[i] += krv * v
				}
			}
		}
	}
}

// partialRanksParallel splits the ranks into contiguous chunks across
// `workers` goroutines, each with its own scratch column from tmp. A
// separate function so its closure never taxes the serial path.
//
//repro:ignore hotpath-alloc goroutine fan-out: the parallel path allocates bookkeeping only
func partialRanksParallel(out, part, kl, kr, tmp []float64, Lp, Mp, Rtp, R, workers int) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * R / workers
		hi := (w + 1) * R / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			var wtmp []float64
			if kl != nil && kr != nil {
				wtmp = tmp[w*Mp : (w+1)*Mp]
			}
			partialRanks(out, part, kl, kr, wtmp, Lp, Mp, Rtp, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
