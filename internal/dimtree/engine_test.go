package dimtree

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/seq"
	"repro/internal/tensor"
)

// engineShapes covers orders 3-5, non-cubical extents, and degenerate
// (extent-1) modes in every position class (prefix, interior, suffix).
var engineShapes = [][]int{
	{3, 4, 5},
	{9, 2, 6},
	{1, 5, 4},
	{4, 5, 1},
	{2, 7, 3, 4},
	{3, 1, 4, 2},
	{2, 3, 2, 4, 3},
	{3, 1, 4, 1, 2},
}

// TestEngineMatchesOracleAndKernel: the GEMM engine agrees with the
// scalar tree oracle and with N independent KRP-splitting kernel calls
// to 1e-10, at every worker count.
func TestEngineMatchesOracleAndKernel(t *testing.T) {
	for _, dims := range engineShapes {
		R := 4
		x := tensor.RandomDense(41, dims...)
		fs := tensor.RandomFactors(43, dims, R)
		want := AllModesRef(x, fs)
		for _, w := range []int{1, 2, 8} {
			got := AllModesWorkers(x, fs, w)
			for n := range dims {
				if !got.B[n].EqualApprox(want.B[n], 1e-10) {
					t.Fatalf("dims %v workers %d mode %d: vs oracle diff %g",
						dims, w, n, got.B[n].MaxAbsDiff(want.B[n]))
				}
				indep := kernel.FastWorkers(x, fs, n, w)
				if !got.B[n].EqualApprox(indep, 1e-10) {
					t.Fatalf("dims %v workers %d mode %d: vs kernel diff %g",
						dims, w, n, got.B[n].MaxAbsDiff(indep))
				}
			}
		}
	}
}

// TestEngineBitwiseWorkerIndependence: the engine's documented
// contract — not tolerance-equal, bitwise-equal at any parallelism.
func TestEngineBitwiseWorkerIndependence(t *testing.T) {
	for _, dims := range [][]int{{8, 8, 8}, {6, 5, 4, 3}, {3, 4, 2, 3, 2}} {
		R := 5
		x := tensor.RandomDense(47, dims...)
		fs := tensor.RandomFactors(53, dims, R)
		base := AllModesWorkers(x, fs, 1)
		for _, w := range []int{2, 3, 8} {
			got := AllModesWorkers(x, fs, w)
			for n := range dims {
				bd, gd := base.B[n].Data(), got.B[n].Data()
				for i := range bd {
					if gd[i] != bd[i] { //repro:bitwise the bitwise worker-count-independence contract under test
						t.Fatalf("dims %v workers %d mode %d elem %d: %x != %x",
							dims, w, n, i, gd[i], bd[i])
					}
				}
			}
			if got.Flops != base.Flops {
				t.Fatalf("dims %v workers %d: flops %d != %d", dims, w, got.Flops, base.Flops)
			}
		}
	}
}

// TestEngineZeroAllocSteadyState: a warmed engine traversing the tree
// into a reused Result allocates nothing — the multi-MTTKRP analogue
// of the kernel package's FastInto guarantee.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	for _, dims := range [][]int{{16, 16, 16}, {8, 6, 4, 5, 3}} {
		R := 4
		x := tensor.RandomDense(59, dims...)
		fs := tensor.RandomFactors(61, dims, R)
		e := NewEngine(1)
		res := &Result{}
		e.AllModesInto(res, x, fs)                                                                  // warm buffers and output matrices
		if allocs := testing.AllocsPerRun(10, func() { e.AllModesInto(res, x, fs) }); allocs != 0 { //repro:bitwise exact allocation count
			t.Errorf("dims %v: steady state allocates %v objects/op, want 0", dims, allocs)
		}
	}
}

// TestEngineContractTensorMatchesRef: every contiguous keep range of
// an order-4 tensor (prefix, suffix, interior, full) agrees with the
// scalar kernel, and a non-contiguous keep falls back to it exactly.
func TestEngineContractTensorMatchesRef(t *testing.T) {
	dims := []int{3, 4, 2, 5}
	R := 3
	x := tensor.RandomDense(67, dims...)
	fs := tensor.RandomFactors(71, dims, R)
	e := NewEngine(2)
	for lo := 0; lo < 4; lo++ {
		for hi := lo + 1; hi <= 4; hi++ {
			keep := make([]int, 0, hi-lo)
			for k := lo; k < hi; k++ {
				keep = append(keep, k)
			}
			want, _ := ContractTensorRef(x, fs, R, keep)
			got, _ := e.ContractTensor(x, fs, R, keep)
			assertDenseApprox(t, got, want, 1e-10, "keep", keep)
		}
	}
	// Non-contiguous keep routes through the scalar fallback.
	want, wantFl := ContractTensorRef(x, fs, R, []int{0, 2})
	got, gotFl := e.ContractTensor(x, fs, R, []int{0, 2})
	assertDenseApprox(t, got, want, 0, "keep", []int{0, 2})
	if gotFl != wantFl {
		t.Fatalf("fallback flops %d != %d", gotFl, wantFl)
	}
}

// TestEngineContractPartialMatchesRef: partial contractions over a
// mid-tree partial (modes 1..3 of an order-4 tensor) agree with the
// scalar kernel for every contiguous keep sub-range, including the
// degenerate keep == modes identity.
func TestEngineContractPartialMatchesRef(t *testing.T) {
	dims := []int{3, 4, 2, 5}
	R := 3
	x := tensor.RandomDense(73, dims...)
	fs := tensor.RandomFactors(79, dims, R)
	modes := []int{1, 2, 3}
	part, _ := ContractTensorRef(x, fs, R, modes)
	e := NewEngine(2)
	for lo := 1; lo < 4; lo++ {
		for hi := lo + 1; hi <= 4; hi++ {
			keep := make([]int, 0, hi-lo)
			for k := lo; k < hi; k++ {
				keep = append(keep, k)
			}
			want, _ := ContractPartialRef(part, modes, fs, R, keep)
			got, _ := e.ContractPartial(part, modes, fs, R, keep)
			assertDenseApprox(t, got, want, 1e-10, "partial keep", keep)
		}
	}
	// Non-contiguous keep routes through the scalar fallback.
	want, _ := ContractPartialRef(part, modes, fs, R, []int{1, 3})
	got, _ := e.ContractPartial(part, modes, fs, R, []int{1, 3})
	assertDenseApprox(t, got, want, 0, "partial keep", []int{1, 3})
}

// TestEngineLeavesMatchSeqRef anchors the whole chain to the atomic
// reference kernel, independent of both tree implementations.
func TestEngineLeavesMatchSeqRef(t *testing.T) {
	dims := []int{5, 3, 6, 2}
	R := 4
	x := tensor.RandomDense(83, dims...)
	fs := tensor.RandomFactors(89, dims, R)
	res := AllModes(x, fs)
	for n := range dims {
		want := seq.Ref(x, fs, n)
		if !res.B[n].EqualApprox(want, 1e-10) {
			t.Fatalf("mode %d: vs seq.Ref diff %g", n, res.B[n].MaxAbsDiff(want))
		}
	}
}

func assertDenseApprox(t *testing.T, got, want *tensor.Dense, tol float64, what string, keep []int) {
	t.Helper()
	if got.Order() != want.Order() {
		t.Fatalf("%s %v: order %d != %d", what, keep, got.Order(), want.Order())
	}
	for k := 0; k < got.Order(); k++ {
		if got.Dim(k) != want.Dim(k) {
			t.Fatalf("%s %v: dim %d is %d, want %d", what, keep, k, got.Dim(k), want.Dim(k))
		}
	}
	gd, wd := got.Data(), want.Data()
	for i := range gd {
		d := gd[i] - wd[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			t.Fatalf("%s %v: elem %d differs by %g (tol %g)", what, keep, i, d, tol)
		}
	}
}
