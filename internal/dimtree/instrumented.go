package dimtree

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/tensor"
)

// AllModesInstrumented computes the all-modes MTTKRP while accounting
// for the streaming two-level-memory traffic of every contraction on
// the machine: the source streams through a bounded window, the
// dropped factor matrices and the destination stay resident (the
// destination is a random-access accumulation target), and the
// destination is written back once. It errors if any contraction's
// working set (destination + factors + streaming window) exceeds M.
//
// The measured words equal CommEstimate exactly, turning the analytic
// claim of Section VII ("save both communication") into a counted one.
func AllModesInstrumented(x *tensor.Dense, factors []*tensor.Matrix, mach *memsim.Machine) (*Result, memsim.Counts, error) {
	start := mach.Snapshot()
	N := x.Order()
	res := &Result{B: make([]*tensor.Matrix, N)}
	R := factors[0].Cols()

	allModes := make([]int, N)
	for i := range allModes {
		allModes[i] = i
	}
	dims := x.Dims()
	I := int64(x.Elems())

	var descend func(part *tensor.Dense, modes []int) error
	contract := func(src *tensor.Dense, srcWords int64, modes []int, keep []int, fromRoot bool) (*tensor.Dense, error) {
		// Account: destination resident, dropped factors resident,
		// source streamed through one word at a time (window 1 keeps
		// the requirement minimal; larger windows change nothing in
		// the totals).
		keepSet := make(map[int]bool, len(keep))
		for _, k := range keep {
			keepSet[k] = true
		}
		var drop []int
		for _, k := range modes {
			if !keepSet[k] {
				drop = append(drop, k)
			}
		}
		dst := int64(R)
		for _, k := range keep {
			dst *= int64(dims[k])
		}
		var fWords int64
		for _, k := range drop {
			fWords += int64(dims[k]) * int64(R)
		}
		if err := mach.Alloc(dst); err != nil {
			return nil, fmt.Errorf("dimtree: destination %v does not fit: %w", keep, err)
		}
		if err := mach.Load(fWords); err != nil {
			return nil, fmt.Errorf("dimtree: factors for %v do not fit: %w", keep, err)
		}
		// Stream the source.
		for moved := int64(0); moved < srcWords; {
			chunk := min64(srcWords-moved, 1)
			if err := mach.Load(chunk); err != nil {
				return nil, err
			}
			if err := mach.Evict(chunk); err != nil {
				return nil, err
			}
			moved += chunk
		}
		if err := mach.Evict(fWords); err != nil {
			return nil, err
		}
		if err := mach.Store(dst); err != nil {
			return nil, err
		}
		// The actual computation (uncounted compute, counted traffic).
		if fromRoot {
			return res.contractRoot(x, factors, R, keep), nil
		}
		return res.contractPartial(src, modes, factors, R, keep), nil
	}
	descend = func(part *tensor.Dense, modes []int) error {
		if len(modes) == 1 {
			res.B[modes[0]] = res.leafFromPartial(part, modes[0], R)
			return nil
		}
		m := len(modes) / 2
		left, right := modes[:m], modes[m:]
		srcWords := int64(R)
		for _, k := range modes {
			srcWords *= int64(dims[k])
		}
		l, err := contract(part, srcWords, modes, left, false)
		if err != nil {
			return err
		}
		if err := descend(l, left); err != nil {
			return err
		}
		r, err := contract(part, srcWords, modes, right, false)
		if err != nil {
			return err
		}
		return descend(r, right)
	}

	if N == 2 {
		for n := 0; n < 2; n++ {
			part, err := contract(nil, I, allModes, []int{n}, true)
			if err != nil {
				return nil, memsim.Counts{}, err
			}
			res.B[n] = res.leafFromPartial(part, n, R)
		}
	} else {
		m := N / 2
		left, right := allModes[:m], allModes[m:]
		l, err := contract(nil, I, allModes, left, true)
		if err != nil {
			return nil, memsim.Counts{}, err
		}
		if err := descend(l, left); err != nil {
			return nil, memsim.Counts{}, err
		}
		r, err := contract(nil, I, allModes, right, true)
		if err != nil {
			return nil, memsim.Counts{}, err
		}
		if err := descend(r, right); err != nil {
			return nil, memsim.Counts{}, err
		}
	}
	end := mach.Snapshot()
	return res, memsim.Counts{
		Loads:  end.Loads - start.Loads,
		Stores: end.Stores - start.Stores,
		Peak:   end.Peak,
	}, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
