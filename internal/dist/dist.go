// Package dist implements the data distributions of the paper's
// parallel algorithms.
//
// Stationary (Section V-C1): processors form an N-way grid; processor
// p owns the subtensor X(S^(1)_{p1}, ..., S^(N)_{pN}) and, for each
// mode k, a part of the block row A(k)(S^(k)_{pk}, :) partitioned
// across the hyperslice of processors sharing p_k.
//
// General (Section V-D1): processors form an (N+1)-way grid whose
// extra dimension (index 0 here) splits the rank dimension [R] into
// P_0 parts; the subtensor is additionally partitioned across the
// P_0-fibers, and factor block rows are restricted to the rank part
// T_{p0} and partitioned across processors sharing (p0, pk).
//
// Partitions are contiguous and even (sizes differ by at most one), so
// the nnz bounds of Eq. (33) hold. Matrix blocks are flattened
// column-major; a processor's shard is a contiguous range of the
// flattening, which makes All-Gather reassembly a concatenation.
package dist

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/tensor"
)

// Stationary is the Algorithm 3 layout: an N-way grid over the tensor
// modes.
type Stationary struct {
	Dims []int
	R    int
	G    *grid.Grid
}

// NewStationary validates and returns the layout.
func NewStationary(dims []int, R int, g *grid.Grid) Stationary {
	if g.Dims() != len(dims) {
		panic(fmt.Sprintf("dist: %d-d grid for %d-way tensor", g.Dims(), len(dims)))
	}
	if R < 1 {
		panic(fmt.Sprintf("dist: rank %d", R))
	}
	for k, d := range dims {
		if g.Extent(k) > d {
			panic(fmt.Sprintf("dist: grid extent %d exceeds dimension %d of mode %d", g.Extent(k), d, k))
		}
	}
	return Stationary{Dims: append([]int(nil), dims...), R: R, G: g}
}

// BlockRange returns the subtensor bounds [lo, hi) owned by the
// processor at the given grid coordinates.
func (d Stationary) BlockRange(coords []int) (lo, hi []int) {
	lo = make([]int, len(d.Dims))
	hi = make([]int, len(d.Dims))
	for k := range d.Dims {
		lo[k], hi[k] = grid.Part(d.Dims[k], d.G.Extent(k), coords[k])
	}
	return lo, hi
}

// LocalTensor extracts the subtensor owned by coords from the global
// tensor (driver-side helper; in a real deployment data is born
// distributed).
func (d Stationary) LocalTensor(coords []int, x *tensor.Dense) *tensor.Dense {
	lo, hi := d.BlockRange(coords)
	return x.SubTensor(lo, hi)
}

// FactorRowRange returns the block-row bounds of mode k's factor
// matrix for hyperslice coordinate ck: S^(k)_{ck}.
func (d Stationary) FactorRowRange(k, ck int) (lo, hi int) {
	return grid.Part(d.Dims[k], d.G.Extent(k), ck)
}

// HyperSlice returns the global ranks of the processors sharing
// coordinate coords[k] in mode k — the group across which mode k's
// block row is partitioned and All-Gathered.
func (d Stationary) HyperSlice(k int, coords []int) []int {
	return d.G.Slice([]int{k}, coords)
}

// ShardRange returns the range [lo, hi) of the column-major flattening
// of mode k's block row owned by the processor at position idx within
// its hyperslice (of size q).
func (d Stationary) ShardRange(k int, ck, q, idx int) (lo, hi int) {
	rlo, rhi := d.FactorRowRange(k, ck)
	return grid.Part((rhi-rlo)*d.R, q, idx)
}

// FactorShard extracts the shard of mode k's factor owned by the
// processor at coords, given the global factor matrix (driver-side).
func (d Stationary) FactorShard(k int, coords []int, global *tensor.Matrix) []float64 {
	slice := d.HyperSlice(k, coords)
	idx := IndexIn(slice, d.G.Rank(coords))
	rlo, rhi := d.FactorRowRange(k, coords[k])
	block := global.RowBlock(rlo, rhi)
	lo, hi := d.ShardRange(k, coords[k], len(slice), idx)
	return append([]float64(nil), block.Data()[lo:hi]...)
}

// MaxTensorNnz returns max_p nnz(X_p) = prod_k ceil(I_k / P_k).
func (d Stationary) MaxTensorNnz() int64 {
	out := int64(1)
	for k := range d.Dims {
		out *= int64(grid.MaxPartSize(d.Dims[k], d.G.Extent(k)))
	}
	return out
}

// MaxFactorNnz returns max_p nnz(A(k)_p) for mode k:
// ceil(ceil(I_k/P_k)*R / (P/P_k)).
func (d Stationary) MaxFactorNnz(k int) int64 {
	rows := grid.MaxPartSize(d.Dims[k], d.G.Extent(k))
	q := d.G.P() / d.G.Extent(k)
	return int64(grid.MaxPartSize(rows*d.R, q))
}

// General is the Algorithm 4 layout: an (N+1)-way grid whose dimension
// 0 has extent P0 and splits the rank dimension; grid dimension k+1
// corresponds to tensor mode k.
type General struct {
	Dims []int
	R    int
	G    *grid.Grid
}

// NewGeneral validates and returns the layout.
func NewGeneral(dims []int, R int, g *grid.Grid) General {
	if g.Dims() != len(dims)+1 {
		panic(fmt.Sprintf("dist: %d-d grid for general layout over %d-way tensor (need N+1)", g.Dims(), len(dims)))
	}
	if R < 1 {
		panic(fmt.Sprintf("dist: rank %d", R))
	}
	if g.Extent(0) > R {
		panic(fmt.Sprintf("dist: P0 = %d exceeds R = %d", g.Extent(0), R))
	}
	for k, d := range dims {
		if g.Extent(k+1) > d {
			panic(fmt.Sprintf("dist: grid extent %d exceeds dimension %d of mode %d", g.Extent(k+1), d, k))
		}
	}
	return General{Dims: append([]int(nil), dims...), R: R, G: g}
}

// P0 returns the rank-dimension extent.
func (d General) P0() int { return d.G.Extent(0) }

// BlockRange returns the subtensor bounds of the grid-coordinate's
// tensor block (shared by the whole P0-fiber).
func (d General) BlockRange(coords []int) (lo, hi []int) {
	lo = make([]int, len(d.Dims))
	hi = make([]int, len(d.Dims))
	for k := range d.Dims {
		lo[k], hi[k] = grid.Part(d.Dims[k], d.G.Extent(k+1), coords[k+1])
	}
	return lo, hi
}

// RankRange returns the rank-column part T_{p0} = [lo, hi).
func (d General) RankRange(p0 int) (lo, hi int) {
	return grid.Part(d.R, d.G.Extent(0), p0)
}

// Fiber returns the global ranks of the P0-fiber through coords (the
// group across which the tensor block is partitioned and gathered).
func (d General) Fiber(coords []int) []int {
	fixed := make([]int, len(d.Dims))
	for k := range d.Dims {
		fixed[k] = k + 1
	}
	return d.G.Slice(fixed, coords)
}

// FactorGroup returns the global ranks sharing (p0, pk) — the group
// across which mode k's factor block is partitioned and gathered.
func (d General) FactorGroup(k int, coords []int) []int {
	return d.G.Slice([]int{0, k + 1}, coords)
}

// TensorShardRange returns the range of the block's column-major
// flattening owned by fiber position idx (fiber size = P0).
func (d General) TensorShardRange(coords []int, idx int) (lo, hi int) {
	blo, bhi := d.BlockRange(coords)
	elems := 1
	for k := range blo {
		elems *= bhi[k] - blo[k]
	}
	return grid.Part(elems, d.G.Extent(0), idx)
}

// TensorShard extracts the tensor shard owned by coords (driver-side).
func (d General) TensorShard(coords []int, x *tensor.Dense) []float64 {
	blo, bhi := d.BlockRange(coords)
	block := x.SubTensor(blo, bhi)
	lo, hi := d.TensorShardRange(coords, coords[0])
	return append([]float64(nil), block.Data()[lo:hi]...)
}

// FactorRowRange returns S^(k)_{pk} for mode k.
func (d General) FactorRowRange(k, ck int) (lo, hi int) {
	return grid.Part(d.Dims[k], d.G.Extent(k+1), ck)
}

// ShardRange returns the owned range of the column-major flattening of
// the (rows x |T_{p0}|) factor block for group position idx (group
// size q).
func (d General) ShardRange(k int, coords []int, q, idx int) (lo, hi int) {
	rlo, rhi := d.FactorRowRange(k, coords[k+1])
	clo, chi := d.RankRange(coords[0])
	return grid.Part((rhi-rlo)*(chi-clo), q, idx)
}

// FactorShard extracts the factor shard owned by coords from the
// global factor matrix (driver-side).
func (d General) FactorShard(k int, coords []int, global *tensor.Matrix) []float64 {
	group := d.FactorGroup(k, coords)
	idx := IndexIn(group, d.G.Rank(coords))
	rlo, rhi := d.FactorRowRange(k, coords[k+1])
	clo, chi := d.RankRange(coords[0])
	block := global.Block(rlo, rhi, clo, chi)
	lo, hi := d.ShardRange(k, coords, len(group), idx)
	return append([]float64(nil), block.Data()[lo:hi]...)
}

// MaxTensorNnz returns max_p nnz(X_p) = ceil(prod_k ceil(I_k/P_k) / P0).
func (d General) MaxTensorNnz() int64 {
	block := int64(1)
	for k := range d.Dims {
		block *= int64(grid.MaxPartSize(d.Dims[k], d.G.Extent(k+1)))
	}
	p0 := int64(d.G.Extent(0))
	return (block + p0 - 1) / p0
}

// MaxFactorNnz returns max_p nnz(A(k)_p) =
// ceil(ceil(I_k/P_k)*ceil(R/P0) / (P/(P_k P0))).
func (d General) MaxFactorNnz(k int) int64 {
	rows := grid.MaxPartSize(d.Dims[k], d.G.Extent(k+1))
	cols := grid.MaxPartSize(d.R, d.G.Extent(0))
	q := d.G.P() / (d.G.Extent(k+1) * d.G.Extent(0))
	return int64(grid.MaxPartSize(rows*cols, q))
}

// IndexIn returns the position of rank within slice (which must
// contain it).
func IndexIn(slice []int, rank int) int {
	for i, r := range slice {
		if r == rank {
			return i
		}
	}
	panic(fmt.Sprintf("dist: rank %d not in group %v", rank, slice))
}
