package dist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/tensor"
)

func TestStationaryBlocksPartitionTensor(t *testing.T) {
	dims := []int{6, 5, 4}
	g := grid.New(3, 2, 2)
	d := NewStationary(dims, 3, g)
	covered := make(map[int]int)
	x := tensor.RandomDense(1, dims...)
	for r := 0; r < g.P(); r++ {
		lo, hi := d.BlockRange(g.Coords(r))
		idx := make([]int, 3)
		copy(idx, lo)
		for {
			covered[x.Offset(idx...)]++
			done := true
			for k := 0; k < 3; k++ {
				idx[k]++
				if idx[k] < hi[k] {
					done = false
					break
				}
				idx[k] = lo[k]
			}
			if done {
				break
			}
		}
	}
	if len(covered) != x.Elems() {
		t.Fatalf("blocks cover %d of %d elements", len(covered), x.Elems())
	}
	for off, c := range covered {
		if c != 1 {
			t.Fatalf("element %d covered %d times", off, c)
		}
	}
}

func TestStationaryLocalTensorValues(t *testing.T) {
	dims := []int{4, 4}
	g := grid.New(2, 2)
	d := NewStationary(dims, 2, g)
	x := tensor.RandomDense(7, dims...)
	coords := []int{1, 0}
	local := d.LocalTensor(coords, x)
	lo, hi := d.BlockRange(coords)
	if local.Dim(0) != hi[0]-lo[0] || local.Dim(1) != hi[1]-lo[1] {
		t.Fatal("local shape mismatch")
	}
	if local.At(0, 0) != x.At(lo[0], lo[1]) {
		t.Fatal("local content mismatch")
	}
}

func TestStationaryFactorShardsPartitionBlockRow(t *testing.T) {
	dims := []int{6, 4}
	R := 3
	g := grid.New(2, 2)
	d := NewStationary(dims, R, g)
	a := tensor.RandomMatrix(5, 6, R)
	k := 0
	// For each hyperslice coordinate, the shards of its members must
	// concatenate to the flattened block row.
	for ck := 0; ck < g.Extent(k); ck++ {
		rlo, rhi := d.FactorRowRange(k, ck)
		want := a.RowBlock(rlo, rhi).Data()
		var got []float64
		// Enumerate hyperslice members in sorted rank order.
		coords := []int{ck, 0}
		slice := d.HyperSlice(k, coords)
		for _, r := range slice {
			got = append(got, d.FactorShard(k, g.Coords(r), a)...)
		}
		if len(got) != len(want) {
			t.Fatalf("ck=%d: concatenated %d words, want %d", ck, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ck=%d: shard mismatch at %d", ck, i)
			}
		}
	}
}

func TestStationaryMaxNnz(t *testing.T) {
	dims := []int{7, 5}
	g := grid.New(2, 2)
	d := NewStationary(dims, 3, g)
	// ceil(7/2)*ceil(5/2) = 4*3 = 12.
	if got := d.MaxTensorNnz(); got != 12 {
		t.Fatalf("MaxTensorNnz = %d", got)
	}
	// Mode 0: ceil(ceil(7/2)*3 / (4/2)) = ceil(12/2) = 6.
	if got := d.MaxFactorNnz(0); got != 6 {
		t.Fatalf("MaxFactorNnz(0) = %d", got)
	}
}

func TestStationaryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewStationary([]int{4, 4}, 2, grid.New(2)) },
		func() { NewStationary([]int{4, 4}, 0, grid.New(2, 2)) },
		func() { NewStationary([]int{1, 4}, 2, grid.New(2, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGeneralTensorShardsPartitionBlock(t *testing.T) {
	dims := []int{4, 6}
	R := 4
	g := grid.New(2, 2, 2) // P0=2, P1=2, P2=2
	d := NewGeneral(dims, R, g)
	x := tensor.RandomDense(11, dims...)
	// For each (p1, p2) block, shards across the fiber must
	// reassemble the block's flattening.
	for p1 := 0; p1 < 2; p1++ {
		for p2 := 0; p2 < 2; p2++ {
			coords := []int{0, p1, p2}
			blo, bhi := d.BlockRange(coords)
			want := x.SubTensor(blo, bhi).Data()
			var got []float64
			for _, r := range d.Fiber(coords) {
				got = append(got, d.TensorShard(g.Coords(r), x)...)
			}
			if len(got) != len(want) {
				t.Fatalf("block (%d,%d): got %d words, want %d", p1, p2, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("block (%d,%d): mismatch at %d", p1, p2, i)
				}
			}
		}
	}
}

func TestGeneralFactorShardsPartitionBlock(t *testing.T) {
	dims := []int{6, 4}
	R := 4
	g := grid.New(2, 3, 2)
	d := NewGeneral(dims, R, g)
	a := tensor.RandomMatrix(13, 6, R)
	k := 0
	for p0 := 0; p0 < 2; p0++ {
		for pk := 0; pk < 3; pk++ {
			coords := []int{p0, pk, 0}
			rlo, rhi := d.FactorRowRange(k, pk)
			clo, chi := d.RankRange(p0)
			want := a.Block(rlo, rhi, clo, chi).Data()
			var got []float64
			for _, r := range d.FactorGroup(k, coords) {
				got = append(got, d.FactorShard(k, g.Coords(r), a)...)
			}
			if len(got) != len(want) {
				t.Fatalf("(p0=%d,pk=%d): got %d, want %d", p0, pk, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("(p0=%d,pk=%d): mismatch at %d", p0, pk, i)
				}
			}
		}
	}
}

func TestGeneralRankRangesPartitionR(t *testing.T) {
	g := grid.New(3, 1, 1)
	d := NewGeneral([]int{4, 4}, 7, g)
	pos := 0
	for p0 := 0; p0 < 3; p0++ {
		lo, hi := d.RankRange(p0)
		if lo != pos {
			t.Fatalf("rank ranges not contiguous at p0=%d", p0)
		}
		pos = hi
	}
	if pos != 7 {
		t.Fatal("rank ranges do not cover R")
	}
	if d.P0() != 3 {
		t.Fatal("P0 accessor")
	}
}

func TestGeneralMaxNnz(t *testing.T) {
	dims := []int{6, 6}
	g := grid.New(2, 2, 3)
	d := NewGeneral(dims, 4, g)
	// Block = ceil(6/2)*ceil(6/3) = 3*2 = 6; over P0=2 -> 3.
	if got := d.MaxTensorNnz(); got != 3 {
		t.Fatalf("MaxTensorNnz = %d", got)
	}
	// Mode 0: rows=3, cols=ceil(4/2)=2, q = 12/(2*2) = 3 -> ceil(6/3)=2.
	if got := d.MaxFactorNnz(0); got != 2 {
		t.Fatalf("MaxFactorNnz(0) = %d", got)
	}
}

func TestGeneralPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewGeneral([]int{4, 4}, 2, grid.New(2, 2)) },
		func() { NewGeneral([]int{4, 4}, 2, grid.New(3, 2, 2)) }, // P0 > R
		func() { NewGeneral([]int{4, 1}, 2, grid.New(1, 2, 2)) },
		func() { IndexIn([]int{1, 2}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestIndexIn(t *testing.T) {
	if IndexIn([]int{5, 9, 11}, 9) != 1 {
		t.Fatal("IndexIn")
	}
}

// Property: for random grids, every stationary factor shard has size
// within the Eq. (33)-style bound, and shard sizes sum to the block.
func TestStationaryShardSizesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		N := 2 + rng.Intn(2)
		dims := make([]int, N)
		shape := make([]int, N)
		for i := range dims {
			shape[i] = 1 + rng.Intn(3)
			dims[i] = shape[i] + rng.Intn(5)
		}
		R := 1 + rng.Intn(4)
		g := grid.New(shape...)
		d := NewStationary(dims, R, g)
		for k := 0; k < N; k++ {
			bound := d.MaxFactorNnz(k)
			for ck := 0; ck < shape[k]; ck++ {
				coords := make([]int, N)
				coords[k] = ck
				slice := d.HyperSlice(k, coords)
				total := 0
				for idx := range slice {
					lo, hi := d.ShardRange(k, ck, len(slice), idx)
					if int64(hi-lo) > bound {
						return false
					}
					total += hi - lo
				}
				rlo, rhi := d.FactorRowRange(k, ck)
				if total != (rhi-rlo)*R {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
