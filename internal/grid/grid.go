// Package grid provides logical processor grids (Sections V-C1 and
// V-D1): factorizations P = P_1*...*P_N (or P_0*P_1*...*P_N for the
// general algorithm), mixed-radix rank/coordinate conversion, and
// hyperslice enumeration for building collective communicators.
package grid

import (
	"fmt"
	"sort"
)

// Grid is a logical d-way processor grid. Ranks map to coordinates in
// mixed radix with dimension 0 varying fastest (matching the tensor
// package's column-major convention).
type Grid struct {
	shape []int
	p     int
}

// New builds a grid with the given shape.
func New(shape ...int) *Grid {
	if len(shape) == 0 {
		panic("grid: empty shape")
	}
	p := 1
	for _, s := range shape {
		if s < 1 {
			panic(fmt.Sprintf("grid: non-positive extent in %v", shape))
		}
		p *= s
	}
	return &Grid{shape: append([]int(nil), shape...), p: p}
}

// Dims returns the number of grid dimensions.
func (g *Grid) Dims() int { return len(g.shape) }

// Shape returns a copy of the grid shape.
func (g *Grid) Shape() []int { return append([]int(nil), g.shape...) }

// Extent returns the size of grid dimension d.
func (g *Grid) Extent(d int) int { return g.shape[d] }

// P returns the total number of processors.
func (g *Grid) P() int { return g.p }

// Coords converts a rank to grid coordinates.
func (g *Grid) Coords(rank int) []int {
	if rank < 0 || rank >= g.p {
		panic(fmt.Sprintf("grid: rank %d out of [0,%d)", rank, g.p))
	}
	c := make([]int, len(g.shape))
	for d, s := range g.shape {
		c[d] = rank % s
		rank /= s
	}
	return c
}

// Rank converts grid coordinates to a rank.
func (g *Grid) Rank(coords []int) int {
	if len(coords) != len(g.shape) {
		panic(fmt.Sprintf("grid: coords %v for %d-d grid", coords, len(g.shape)))
	}
	rank := 0
	mult := 1
	for d, s := range g.shape {
		if coords[d] < 0 || coords[d] >= s {
			panic(fmt.Sprintf("grid: coords %v out of shape %v", coords, g.shape))
		}
		rank += coords[d] * mult
		mult *= s
	}
	return rank
}

// Slice returns, in increasing rank order, all ranks whose coordinates
// agree with coords on the dimensions listed in fixed. With one fixed
// dimension this is the paper's processor hyperslice normal to that
// dimension; with all-but-one fixed it is a grid fiber.
func (g *Grid) Slice(fixed []int, coords []int) []int {
	if len(coords) != len(g.shape) {
		panic(fmt.Sprintf("grid: coords %v for %d-d grid", coords, len(g.shape)))
	}
	isFixed := make([]bool, len(g.shape))
	for _, d := range fixed {
		if d < 0 || d >= len(g.shape) {
			panic(fmt.Sprintf("grid: fixed dimension %d out of range", d))
		}
		isFixed[d] = true
	}
	// Enumerate the free dimensions.
	cur := append([]int(nil), coords...)
	var out []int
	var rec func(d int)
	rec = func(d int) {
		if d == len(g.shape) {
			out = append(out, g.Rank(cur))
			return
		}
		if isFixed[d] {
			rec(d + 1)
			return
		}
		for v := 0; v < g.shape[d]; v++ {
			cur[d] = v
			rec(d + 1)
		}
		cur[d] = coords[d]
	}
	rec(0)
	sort.Ints(out)
	return out
}

// Part splits n items into q nearly-equal contiguous parts (sizes
// differ by at most one, larger parts first) and returns part j's
// bounds [lo, hi). It tolerates q > n (empty trailing parts).
func Part(n, q, j int) (lo, hi int) {
	if n < 0 || q < 1 || j < 0 || j >= q {
		panic(fmt.Sprintf("grid: Part(%d, %d, %d)", n, q, j))
	}
	base := n / q
	rem := n % q
	if j < rem {
		lo = j * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (j-rem)*base
	return lo, lo + base
}

// PartSize returns hi-lo of Part.
func PartSize(n, q, j int) int {
	lo, hi := Part(n, q, j)
	return hi - lo
}

// MaxPartSize returns ceil(n/q), the largest part size.
func MaxPartSize(n, q int) int {
	return (n + q - 1) / q
}

// Factorizations enumerates every ordered factorization of p into
// exactly parts positive factors. The count grows quickly; intended
// for the moderate P values of the simulator experiments.
func Factorizations(p, parts int) [][]int {
	if p < 1 || parts < 1 {
		panic(fmt.Sprintf("grid: Factorizations(%d, %d)", p, parts))
	}
	var out [][]int
	cur := make([]int, parts)
	var rec func(rem, d int)
	rec = func(rem, d int) {
		if d == parts-1 {
			cur[d] = rem
			out = append(out, append([]int(nil), cur...))
			return
		}
		for f := 1; f <= rem; f++ {
			if rem%f == 0 {
				cur[d] = f
				rec(rem/f, d+1)
			}
		}
	}
	rec(p, 0)
	return out
}

// PowerOfTwoFactorizations enumerates factorizations of 2^exp into
// parts power-of-two factors, as exponent compositions. This covers
// the paper's Figure 4 sweep (P = 2^0 .. 2^30) without enumerating
// divisors of astronomically large P.
func PowerOfTwoFactorizations(exp, parts int) [][]int {
	if exp < 0 || parts < 1 {
		panic(fmt.Sprintf("grid: PowerOfTwoFactorizations(%d, %d)", exp, parts))
	}
	var out [][]int
	cur := make([]int, parts)
	var rec func(rem, d int)
	rec = func(rem, d int) {
		if d == parts-1 {
			cur[d] = 1 << rem
			out = append(out, append([]int(nil), cur...))
			return
		}
		for e := 0; e <= rem; e++ {
			cur[d] = 1 << e
			rec(rem-e, d+1)
		}
	}
	rec(exp, 0)
	return out
}
