package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoordsRankRoundTrip(t *testing.T) {
	g := New(3, 2, 4)
	if g.P() != 24 || g.Dims() != 3 || g.Extent(2) != 4 {
		t.Fatalf("grid basics broken: P=%d", g.P())
	}
	for r := 0; r < g.P(); r++ {
		if back := g.Rank(g.Coords(r)); back != r {
			t.Fatalf("round trip failed at rank %d", r)
		}
	}
}

func TestCoordsColumnMajor(t *testing.T) {
	g := New(3, 2, 4)
	c := g.Coords(1)
	if c[0] != 1 || c[1] != 0 || c[2] != 0 {
		t.Fatalf("dim 0 should vary fastest: Coords(1) = %v", c)
	}
	c = g.Coords(3)
	if c[0] != 0 || c[1] != 1 || c[2] != 0 {
		t.Fatalf("Coords(3) = %v", c)
	}
	c = g.Coords(6)
	if c[0] != 0 || c[1] != 0 || c[2] != 1 {
		t.Fatalf("Coords(6) = %v", c)
	}
}

func TestSliceHyperslice(t *testing.T) {
	g := New(2, 3, 2) // P = 12
	// Hyperslice normal to dim 1 through coord 1: ranks with c1 = 1,
	// i.e. all (c0, 1, c2): 2*2 = 4 ranks.
	me := g.Coords(g.Rank([]int{0, 1, 0}))
	s := g.Slice([]int{1}, me)
	if len(s) != 4 {
		t.Fatalf("hyperslice size %d, want 4", len(s))
	}
	for _, r := range s {
		if g.Coords(r)[1] != 1 {
			t.Fatalf("rank %d not in hyperslice", r)
		}
	}
	// Sorted ascending and includes me.
	found := false
	for i, r := range s {
		if i > 0 && s[i-1] >= r {
			t.Fatal("slice not sorted")
		}
		if r == g.Rank(me) {
			found = true
		}
	}
	if !found {
		t.Fatal("slice misses caller")
	}
}

func TestSliceFiber(t *testing.T) {
	g := New(2, 3, 2)
	// Fiber along dim 0 (fix dims 1 and 2): 2 ranks.
	coords := []int{1, 2, 1}
	s := g.Slice([]int{1, 2}, coords)
	if len(s) != 2 {
		t.Fatalf("fiber size %d, want 2", len(s))
	}
	for _, r := range s {
		c := g.Coords(r)
		if c[1] != 2 || c[2] != 1 {
			t.Fatalf("rank %d escaped fiber", r)
		}
	}
}

func TestSliceAllFixedIsSelf(t *testing.T) {
	g := New(2, 2)
	s := g.Slice([]int{0, 1}, []int{1, 1})
	if len(s) != 1 || s[0] != g.Rank([]int{1, 1}) {
		t.Fatalf("fully fixed slice = %v", s)
	}
}

// Property: slices with the same fixed dims partition the grid.
func TestSlicesPartitionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		shape := make([]int, d)
		for i := range shape {
			shape[i] = 1 + rng.Intn(3)
		}
		g := New(shape...)
		fixed := []int{rng.Intn(d)}
		seen := make(map[int]int)
		for v := 0; v < shape[fixed[0]]; v++ {
			coords := make([]int, d)
			coords[fixed[0]] = v
			for _, r := range g.Slice(fixed, coords) {
				seen[r]++
			}
		}
		if len(seen) != g.P() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPart(t *testing.T) {
	// 10 over 3: sizes 4,3,3.
	sizes := []int{4, 3, 3}
	pos := 0
	for j := 0; j < 3; j++ {
		lo, hi := Part(10, 3, j)
		if lo != pos || hi-lo != sizes[j] {
			t.Fatalf("Part(10,3,%d) = [%d,%d)", j, lo, hi)
		}
		if PartSize(10, 3, j) != sizes[j] {
			t.Fatal("PartSize mismatch")
		}
		pos = hi
	}
	if MaxPartSize(10, 3) != 4 {
		t.Fatal("MaxPartSize")
	}
	// q > n leaves empty parts.
	if PartSize(2, 5, 4) != 0 {
		t.Fatal("expected empty trailing part")
	}
}

func TestPartCoversQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		q := 1 + rng.Intn(8)
		pos := 0
		maxSize := 0
		for j := 0; j < q; j++ {
			lo, hi := Part(n, q, j)
			if lo != pos || hi < lo {
				return false
			}
			if hi-lo > maxSize {
				maxSize = hi - lo
			}
			pos = hi
		}
		return pos == n && maxSize == MaxPartSize(n, q) || (n == 0 && maxSize == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorizations(t *testing.T) {
	fs := Factorizations(12, 2)
	// Ordered factorizations of 12 into 2 factors: 6 divisors.
	if len(fs) != 6 {
		t.Fatalf("got %d factorizations: %v", len(fs), fs)
	}
	for _, f := range fs {
		if f[0]*f[1] != 12 {
			t.Fatalf("bad factorization %v", f)
		}
	}
	// parts=1.
	fs = Factorizations(7, 1)
	if len(fs) != 1 || fs[0][0] != 7 {
		t.Fatalf("Factorizations(7,1) = %v", fs)
	}
	// p=1 into 3 parts: only all-ones.
	fs = Factorizations(1, 3)
	if len(fs) != 1 || fs[0][0] != 1 || fs[0][2] != 1 {
		t.Fatalf("Factorizations(1,3) = %v", fs)
	}
}

func TestPowerOfTwoFactorizations(t *testing.T) {
	fs := PowerOfTwoFactorizations(4, 3)
	// Compositions of 4 into 3 nonneg parts: C(6,2) = 15.
	if len(fs) != 15 {
		t.Fatalf("got %d compositions", len(fs))
	}
	for _, f := range fs {
		prod := 1
		for _, v := range f {
			prod *= v
		}
		if prod != 16 {
			t.Fatalf("bad power-of-two factorization %v", f)
		}
	}
	// exp=0: single all-ones.
	fs = PowerOfTwoFactorizations(0, 4)
	if len(fs) != 1 {
		t.Fatalf("exp=0 should give 1 factorization, got %d", len(fs))
	}
}

func TestPanics(t *testing.T) {
	g := New(2, 2)
	for _, f := range []func(){
		func() { New() },
		func() { New(0, 2) },
		func() { g.Coords(4) },
		func() { g.Rank([]int{1}) },
		func() { g.Rank([]int{2, 0}) },
		func() { g.Slice([]int{5}, []int{0, 0}) },
		func() { g.Slice([]int{0}, []int{0}) },
		func() { Part(5, 0, 0) },
		func() { Part(5, 2, 2) },
		func() { Factorizations(0, 1) },
		func() { PowerOfTwoFactorizations(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
