package hbl

// Figure1Example returns the example subset F of the 4-way iteration
// space shown in Figure 1 of the paper (N = 3, I_1 = I_2 = I_3 = 15,
// R = 4): six coordinates (i_1, i_2, i_3, r), converted here to
// 0-based indexing.
//
// The paper lists (1-based): a (5,1,1,1), b (3,3,15,1), c (7,10,2,2),
// d (4,14,11,3), e (11,2,2,4), f (14,14,14,4).
func Figure1Example() [][]int {
	oneBased := [][]int{
		{5, 1, 1, 1},
		{3, 3, 15, 1},
		{7, 10, 2, 2},
		{4, 14, 11, 3},
		{11, 2, 2, 4},
		{14, 14, 14, 4},
	}
	out := make([][]int, len(oneBased))
	for i, pt := range oneBased {
		out[i] = make([]int, len(pt))
		for j, v := range pt {
			out[i][j] = v - 1
		}
	}
	return out
}

// Figure1Dims returns the iteration-space bounds of the Figure 1
// example: I_1 = I_2 = I_3 = 15, R = 4.
func Figure1Dims() (dims []int, R int) {
	return []int{15, 15, 15}, 4
}
