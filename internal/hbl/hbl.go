// Package hbl implements the Hölder–Brascamp–Lieb machinery of Section
// IV-A: the MTTKRP projection structure (the matrix Delta), the
// exponent vector s* of Lemma 4.2, a finite-set verifier for the
// multilinear inequality of Lemma 4.1, and the closed-form solutions of
// the optimization problems in Lemmas 4.3 and 4.4.
//
// The iteration space of an N-way MTTKRP is
// [I_1] x ... x [I_N] x [R] (dimension d = N+1), and there are
// m = N+1 projections: one per factor matrix (extracting {i_k, r}) and
// one for the tensor (extracting {i_1, ..., i_N}).
package hbl

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// Delta returns the d x m constraint matrix of Lemma 4.2 for an N-way
// MTTKRP: rows are loop indices (i_1..i_N, r), columns are projections
// (N factor matrices then the tensor),
//
//	Delta = [ I_{NxN}  1_{Nx1} ]
//	        [ 1_{1xN}  0       ].
func Delta(N int) [][]float64 {
	if N < 2 {
		panic(fmt.Sprintf("hbl: MTTKRP needs N >= 2, got %d", N))
	}
	d := N + 1
	m := N + 1
	out := make([][]float64, d)
	for i := range out {
		out[i] = make([]float64, m)
	}
	for i := 0; i < N; i++ {
		out[i][i] = 1 // index i_k appears in factor k's projection
		out[i][N] = 1 // ... and in the tensor's projection
		out[N][i] = 1 // index r appears in every factor projection
	}
	// out[N][N] = 0: r does not appear in the tensor projection.
	return out
}

// SStar returns the optimal exponents of Lemma 4.2,
// s* = (1/N, ..., 1/N, 1-1/N), which satisfy Delta s >= 1 with
// 1's* = 2 - 1/N.
func SStar(N int) []float64 {
	if N < 2 {
		panic(fmt.Sprintf("hbl: MTTKRP needs N >= 2, got %d", N))
	}
	s := make([]float64, N+1)
	for i := 0; i < N; i++ {
		s[i] = 1 / float64(N)
	}
	s[N] = 1 - 1/float64(N)
	return s
}

// LPValue returns 2 - 1/N, the optimal value of the Lemma 4.2 LP.
func LPValue(N int) float64 { return 2 - 1/float64(N) }

// LemmaLP builds the Lemma 4.2 linear program min 1's s.t.
// Delta s >= 1, s >= 0 for the given N, ready for lp.Solve.
func LemmaLP(N int) lp.Problem {
	delta := Delta(N)
	d := len(delta)
	m := len(delta[0])
	p := lp.Problem{
		C: make([]float64, m),
		A: delta,
		B: make([]float64, d),
	}
	for j := range p.C {
		p.C[j] = 1
	}
	for i := range p.B {
		p.B[i] = 1
	}
	return p
}

// Projections returns the MTTKRP projection index sets S_j for j in
// [m]: factor matrix k extracts coordinates {k, N} (i_k and r); the
// tensor extracts {0, ..., N-1}.
func Projections(N int) [][]int {
	if N < 2 {
		panic(fmt.Sprintf("hbl: MTTKRP needs N >= 2, got %d", N))
	}
	out := make([][]int, N+1)
	for k := 0; k < N; k++ {
		out[k] = []int{k, N}
	}
	tensorIdx := make([]int, N)
	for i := range tensorIdx {
		tensorIdx[i] = i
	}
	out[N] = tensorIdx
	return out
}

// Project applies the projection extracting coordinates coords to each
// point of F and returns the set of distinct images.
func Project(F [][]int, coords []int) map[string]struct{} {
	out := make(map[string]struct{}, len(F))
	for _, pt := range F {
		key := make([]byte, 0, 4*len(coords))
		for _, c := range coords {
			v := pt[c]
			key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		out[string(key)] = struct{}{}
	}
	return out
}

// CheckInequality verifies Lemma 4.1 for a finite set F in Z^d with the
// given projections and exponents: |F| <= prod_j |phi_j(F)|^(s_j).
// It returns the two sides so tests can assert slack.
func CheckInequality(F [][]int, projections [][]int, s []float64) (lhs, rhs float64, ok bool) {
	if len(projections) != len(s) {
		panic(fmt.Sprintf("hbl: %d projections but %d exponents", len(projections), len(s)))
	}
	distinct := make(map[string]struct{}, len(F))
	for _, pt := range F {
		key := make([]byte, 0, 4*len(pt))
		for _, v := range pt {
			key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		distinct[string(key)] = struct{}{}
	}
	lhs = float64(len(distinct))
	rhs = 1
	for j, coords := range projections {
		img := Project(F, coords)
		rhs *= math.Pow(float64(len(img)), s[j])
	}
	return lhs, rhs, lhs <= rhs*(1+1e-9)
}

// InPolytope reports whether s lies in the polytope P of Lemma 4.1:
// s in [0,1]^m and Delta s >= 1.
func InPolytope(delta [][]float64, s []float64) bool {
	for _, v := range s {
		if v < -1e-12 || v > 1+1e-12 {
			return false
		}
	}
	for _, row := range delta {
		var acc float64
		for j, a := range row {
			acc += a * s[j]
		}
		if acc < 1-1e-9 {
			return false
		}
	}
	return true
}

// Lemma43Max returns the closed-form maximum of prod x_i^{s_i} subject
// to sum x_i <= c, x >= 0 (Lemma 4.3):
//
//	c^{sum s} * prod_j (s_j / sum s)^{s_j}.
func Lemma43Max(s []float64, c float64) float64 {
	var sum float64
	for _, v := range s {
		if v <= 0 {
			panic(fmt.Sprintf("hbl: Lemma 4.3 requires s > 0, got %v", s))
		}
		sum += v
	}
	out := math.Pow(c, sum)
	for _, v := range s {
		out *= math.Pow(v/sum, v)
	}
	return out
}

// Lemma43Argmax returns the maximizing point x_j = c*s_j / sum(s).
func Lemma43Argmax(s []float64, c float64) []float64 {
	var sum float64
	for _, v := range s {
		sum += v
	}
	x := make([]float64, len(s))
	for j, v := range s {
		x[j] = c * v / sum
	}
	return x
}

// Lemma44Min returns the closed-form minimum of sum x_i subject to
// prod x_i^{s_i} >= c, x >= 0 (Lemma 4.4):
//
//	(c / prod_i s_i^{s_i})^{1/sum s} * sum_i s_i.
func Lemma44Min(s []float64, c float64) float64 {
	var sum, denom float64
	denom = 1
	for _, v := range s {
		if v < 0 {
			panic(fmt.Sprintf("hbl: Lemma 4.4 requires s >= 0, got %v", s))
		}
		sum += v
		if v > 0 {
			denom *= math.Pow(v, v)
		}
	}
	if sum == 0 { //repro:bitwise exact-zero guard before division
		return 0
	}
	return math.Pow(c/denom, 1/sum) * sum
}

// Lemma44Argmin returns the minimizing point
// x_j = s_j * (c / prod s_i^{s_i})^{1/sum s}.
func Lemma44Argmin(s []float64, c float64) []float64 {
	var sum, denom float64
	denom = 1
	for _, v := range s {
		sum += v
		if v > 0 {
			denom *= math.Pow(v, v)
		}
	}
	scale := math.Pow(c/denom, 1/sum)
	x := make([]float64, len(s))
	for j, v := range s {
		x[j] = v * scale
	}
	return x
}

// SStarProductFactor evaluates prod_j (s*_j / sum s*)^{s*_j}, the
// factor shown in the proof of Theorem 4.1 to be at most 1/N.
func SStarProductFactor(N int) float64 {
	s := SStar(N)
	var sum float64
	for _, v := range s {
		sum += v
	}
	out := 1.0
	for _, v := range s {
		out *= math.Pow(v/sum, v)
	}
	return out
}
