package hbl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

func TestDeltaStructure(t *testing.T) {
	for N := 2; N <= 6; N++ {
		d := Delta(N)
		if len(d) != N+1 || len(d[0]) != N+1 {
			t.Fatalf("Delta(%d) shape %dx%d", N, len(d), len(d[0]))
		}
		for i := 0; i < N; i++ {
			for j := 0; j < N; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if d[i][j] != want {
					t.Fatalf("Delta(%d)[%d][%d] = %v", N, i, j, d[i][j])
				}
			}
			if d[i][N] != 1 {
				t.Fatalf("tensor column row %d should be 1", i)
			}
			if d[N][i] != 1 {
				t.Fatalf("rank row col %d should be 1", i)
			}
		}
		if d[N][N] != 0 {
			t.Fatal("rank does not appear in tensor projection")
		}
	}
}

// E7: Lemma 4.2 — the simplex solver finds exactly s* with value 2-1/N,
// and s* is also dual feasible (the duality argument in the paper).
func TestLemma42(t *testing.T) {
	for N := 2; N <= 10; N++ {
		p := LemmaLP(N)
		x, v, err := lp.Solve(p)
		if err != nil {
			t.Fatalf("N=%d: %v", N, err)
		}
		if math.Abs(v-LPValue(N)) > 1e-8 {
			t.Fatalf("N=%d: LP value %v, want %v", N, v, LPValue(N))
		}
		star := SStar(N)
		for j := range star {
			if math.Abs(x[j]-star[j]) > 1e-7 {
				t.Fatalf("N=%d: solution %v, want %v", N, x, star)
			}
		}
		// The paper's duality argument: t* = s* is dual feasible and
		// attains the same objective.
		if !lp.DualFeasible(p, star, 1e-9) {
			t.Fatalf("N=%d: s* should be dual feasible", N)
		}
		if math.Abs(lp.DualObjective(p, star)-v) > 1e-8 {
			t.Fatalf("N=%d: dual objective mismatch", N)
		}
	}
}

func TestSStarInPolytope(t *testing.T) {
	for N := 2; N <= 8; N++ {
		if !InPolytope(Delta(N), SStar(N)) {
			t.Fatalf("s* not in polytope for N=%d", N)
		}
	}
	// Slightly shrunk s* must leave the polytope.
	s := SStar(3)
	for i := range s {
		s[i] *= 0.9
	}
	if InPolytope(Delta(3), s) {
		t.Fatal("shrunk s* should violate Delta s >= 1")
	}
}

// E9: the Figure 1 example — six points whose projections have the
// sizes shown in the figure.
func TestFigure1Example(t *testing.T) {
	F := Figure1Example()
	dims, R := Figure1Dims()
	if len(F) != 6 {
		t.Fatalf("|F| = %d, want 6", len(F))
	}
	for _, pt := range F {
		for k := 0; k < 3; k++ {
			if pt[k] < 0 || pt[k] >= dims[k] {
				t.Fatalf("point %v outside iteration space", pt)
			}
		}
		if pt[3] < 0 || pt[3] >= R {
			t.Fatalf("point %v outside rank range", pt)
		}
	}
	projs := Projections(3)
	// All six points are distinct in every projection in the figure
	// (each of phi_1..phi_4 shows six marks).
	for j, coords := range projs {
		img := Project(F, coords)
		if len(img) != 6 {
			t.Fatalf("projection %d has %d images, figure shows 6", j, len(img))
		}
	}
	// And the HBL inequality holds with s*: 6 <= 6^(1/3)*6^(1/3)*6^(1/3)*6^(2/3).
	lhs, rhs, ok := CheckInequality(F, projs, SStar(3))
	if !ok {
		t.Fatalf("HBL inequality fails on Figure 1 example: %v > %v", lhs, rhs)
	}
}

func TestProjectionsStructure(t *testing.T) {
	projs := Projections(4)
	if len(projs) != 5 {
		t.Fatalf("want 5 projections, got %d", len(projs))
	}
	for k := 0; k < 4; k++ {
		if len(projs[k]) != 2 || projs[k][0] != k || projs[k][1] != 4 {
			t.Fatalf("factor projection %d = %v", k, projs[k])
		}
	}
	if len(projs[4]) != 4 {
		t.Fatalf("tensor projection = %v", projs[4])
	}
}

// E8: property test of Lemma 4.1 on random finite subsets of the
// MTTKRP iteration space, for every s in P we try (s* and random
// vertices of P).
func TestHBLInequalityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		N := 2 + rng.Intn(3)
		d := N + 1
		// Random box bounds and random point count.
		bounds := make([]int, d)
		for i := range bounds {
			bounds[i] = 2 + rng.Intn(6)
		}
		nPts := 1 + rng.Intn(60)
		F := make([][]int, nPts)
		for i := range F {
			pt := make([]int, d)
			for j := range pt {
				pt[j] = rng.Intn(bounds[j])
			}
			F[i] = pt
		}
		projs := Projections(N)
		delta := Delta(N)
		// s*: must be in P and satisfy the inequality.
		star := SStar(N)
		if !InPolytope(delta, star) {
			return false
		}
		if _, _, ok := CheckInequality(F, projs, star); !ok {
			return false
		}
		// All-ones is always in P; inequality must hold there too.
		ones := make([]float64, N+1)
		for i := range ones {
			ones[i] = 1
		}
		if _, _, ok := CheckInequality(F, projs, ones); !ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// HBL fails for exponents outside P — a sanity check that the verifier
// has teeth. With s = 0 the bound is 1 and any |F| > 1 violates it.
func TestHBLVerifierHasTeeth(t *testing.T) {
	F := [][]int{{0, 0, 0, 0}, {1, 1, 1, 1}}
	zero := make([]float64, 4)
	_, _, ok := CheckInequality(F, Projections(3), zero)
	if ok {
		t.Fatal("inequality should fail with zero exponents on |F| = 2")
	}
}

func TestCheckInequalityDeduplicates(t *testing.T) {
	// Duplicated points must not inflate |F|.
	F := [][]int{{1, 2, 3, 0}, {1, 2, 3, 0}, {1, 2, 3, 0}}
	lhs, _, _ := CheckInequality(F, Projections(3), SStar(3))
	if lhs != 1 {
		t.Fatalf("lhs = %v, want 1 (distinct count)", lhs)
	}
}

// Lemma 4.3: the closed form matches brute-force search over the
// simplex, and the argmax is feasible and attains it.
func TestLemma43ClosedForm(t *testing.T) {
	s := []float64{0.5, 1.5, 1.0}
	c := 7.0
	want := Lemma43Max(s, c)
	x := Lemma43Argmax(s, c)
	var sum float64
	got := 1.0
	for j := range x {
		sum += x[j]
		got *= math.Pow(x[j], s[j])
	}
	if sum > c+1e-9 {
		t.Fatal("argmax infeasible")
	}
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("argmax attains %v, closed form %v", got, want)
	}
	// Brute-force grid search should not beat the closed form.
	grid := 40
	best := 0.0
	for a := 0; a <= grid; a++ {
		for b := 0; a+b <= grid; b++ {
			x0 := c * float64(a) / float64(grid)
			x1 := c * float64(b) / float64(grid)
			x2 := c - x0 - x1
			v := math.Pow(x0, s[0]) * math.Pow(x1, s[1]) * math.Pow(x2, s[2])
			if v > best {
				best = v
			}
		}
	}
	if best > want*(1+1e-9) {
		t.Fatalf("grid search found %v > closed form %v", best, want)
	}
}

// Lemma 4.4: same treatment for the min-sum problem.
func TestLemma44ClosedForm(t *testing.T) {
	s := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3, 2.0 / 3}
	c := 100.0
	want := Lemma44Min(s, c)
	x := Lemma44Argmin(s, c)
	prod := 1.0
	var sum float64
	for j := range x {
		sum += x[j]
		prod *= math.Pow(x[j], s[j])
	}
	if prod < c*(1-1e-9) {
		t.Fatalf("argmin violates constraint: prod = %v < %v", prod, c)
	}
	if math.Abs(sum-want) > 1e-9*want {
		t.Fatalf("argmin attains %v, closed form %v", sum, want)
	}
	// Random feasible points should never have a smaller sum.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		y := make([]float64, len(s))
		p := 1.0
		var ys float64
		for j := range y {
			y[j] = x[j] * (0.5 + 2*rng.Float64())
			p *= math.Pow(y[j], s[j])
			ys += y[j]
		}
		if p >= c && ys < want*(1-1e-9) {
			t.Fatalf("found feasible point with smaller sum: %v < %v", ys, want)
		}
	}
}

func TestLemma44ZeroExponents(t *testing.T) {
	if got := Lemma44Min([]float64{0, 0}, 5); got != 0 {
		t.Fatalf("all-zero exponents: min is 0, got %v", got)
	}
}

// The proof of Theorem 4.1 claims prod (s*_j/sum s*)^{s*_j} <= 1/N.
func TestSStarProductFactorAtMostOneOverN(t *testing.T) {
	for N := 2; N <= 12; N++ {
		f := SStarProductFactor(N)
		if f > 1/float64(N)+1e-12 {
			t.Fatalf("N=%d: factor %v exceeds 1/N = %v", N, f, 1/float64(N))
		}
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Delta(1) },
		func() { SStar(1) },
		func() { Projections(1) },
		func() { Lemma43Max([]float64{0}, 1) },
		func() { Lemma44Min([]float64{-1}, 1) },
		func() { CheckInequality(nil, Projections(2), []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
