package kernel

// The float32 storage variant of the KRP-splitting engine. The tensor
// and factor matrices live in float32 (half the bytes on every big
// stream the paper's bounds count), while every intermediate — KRP
// panels, slab scratch, accumulation buckets — stays float64, and the
// result rounds to float32 exactly once at the final store. The mode
// split, blocking, fixed-chunk slab tiling, and ReduceTree merge are
// identical to FastInto, so the float32 path inherits the bitwise
// worker-count-independence contract unchanged.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/simd"
	"repro/internal/tensor"
)

// Fast32 computes the MTTKRP B(n) = X_(n) * KRP on float32 storage at
// the default worker count. factors[n] is ignored and may be nil.
//
//repro:hotpath
func Fast32(x *tensor.Dense32, factors []*tensor.Matrix32, n int) *tensor.Matrix32 {
	R := checkArgs32(x, factors, n)
	b := tensor.NewMatrix32(x.Dim(n), R) //repro:ignore hotpath-alloc result allocation is the API; the zero-alloc path is Fast32Into
	ws := GetWorkspace()
	Fast32Into(b, x, factors, n, 0, ws)
	PutWorkspace(ws)
	return b
}

// Fast32Into computes the float32 MTTKRP into b (x.Dim(n) x R,
// overwritten). Same workspace and determinism contract as FastInto;
// the extra out64 buffer holds the float64 accumulator that rounds
// into b at the end.
//
//repro:hotpath
func Fast32Into(b *tensor.Matrix32, x *tensor.Dense32, factors []*tensor.Matrix32, n, workers int, ws *Workspace) {
	R := checkArgs32(x, factors, n)
	In := x.Dim(n)
	if b.Rows() != In || b.Cols() != R {
		panic(fmt.Sprintf("kernel: output is %dx%d, want %dx%d", b.Rows(), b.Cols(), In, R))
	}
	if ws == nil {
		ws = GetWorkspace()
		defer PutWorkspace(ws)
	}
	span := obs.Start(obs.PhaseKernel)
	defer span.Stop()
	N := x.Order()
	L, Rt := 1, 1
	for k := 0; k < n; k++ {
		L *= x.Dim(k)
	}
	for k := n + 1; k < N; k++ {
		Rt *= x.Dim(k)
	}
	workers = linalg.ResolveWorkers(workers)
	ws.ensure(L, Rt, In, R, workers)
	ws.out64 = grow(ws.out64, In*R)

	data := x.Data()
	acc := ws.out64[:In*R]
	switch {
	case n == 0:
		KRPInto32(ws.krRight, factors, 1, N, R)
		linalg.Gemm32NN(acc, data, ws.krRight, In, Rt, R, workers)
	case n == N-1:
		KRPInto32(ws.krLeft, factors, 0, N-1, R)
		linalg.Gemm32TN(acc, data, ws.krLeft, L, In, R, workers)
	default:
		KRPInto32(ws.krLeft, factors, 0, n, R)
		KRPInto32(ws.krRight, factors, n+1, N, R)
		interior32(acc, data, ws.krLeft, ws.krRight, L, In, Rt, R, workers, ws)
	}
	store32(b.Data(), acc)
}

// interior32 mirrors interior with a float32 tensor stream: same
// fixed chunk tiling, same ReduceTree association, float64 buckets.
func interior32(out []float64, data []float32, kl, kr []float64, L, M, Rt, R, workers int, ws *Workspace) {
	nbuf := interiorChunks
	if nbuf > Rt {
		nbuf = Rt
	}
	MR := M * R
	out = out[:MR]
	for i := range out {
		out[i] = 0
	}
	if nbuf == 1 {
		interiorSlabs32(out, ws.scratch[:MR], data, kl, kr, L, M, Rt, R, 0, Rt)
		return
	}
	bufs := append(ws.bufs[:0], out) //repro:ignore hotpath-alloc bucket list reuses workspace capacity ensured by ensureScratch
	priv := ws.priv[:(nbuf-1)*MR]
	for i := range priv {
		priv[i] = 0
	}
	for c := 1; c < nbuf; c++ {
		bufs = append(bufs, priv[(c-1)*MR:c*MR]) //repro:ignore hotpath-alloc appends within capacity ensured by ensureScratch
	}
	if workers > nbuf {
		workers = nbuf
	}
	if workers <= 1 {
		for c := 0; c < nbuf; c++ {
			interiorSlabs32(bufs[c], ws.scratch[:MR], data, kl, kr, L, M, Rt, R, c*Rt/nbuf, (c+1)*Rt/nbuf)
		}
	} else {
		interiorParallel32(bufs, ws.scratch, data, kl, kr, L, M, Rt, R, nbuf, workers)
	}
	ReduceTree(bufs, workers)
	ws.bufs = bufs[:0]
}

// interiorParallel32 is interiorParallel over a float32 tensor.
//
//repro:ignore hotpath-alloc goroutine fan-out: the parallel path allocates bookkeeping only
func interiorParallel32(bufs [][]float64, scratch []float64, data []float32, kl, kr []float64, L, M, Rt, R, nbuf, workers int) {
	MR := M * R
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			wbuf := scratch[w*MR : (w+1)*MR]
			for {
				c := int(next.Add(1)) - 1
				if c >= nbuf {
					return
				}
				interiorSlabs32(bufs[c], wbuf, data, kl, kr, L, M, Rt, R, c*Rt/nbuf, (c+1)*Rt/nbuf)
			}
		}(w)
	}
	wg.Wait()
}

// interiorSlabs32 accumulates slabs [t0, t1) into acc (In x R) with a
// float32 tensor stream and float64 everything else.
func interiorSlabs32(acc, wbuf []float64, data []float32, krLeft, krRight []float64, L, In, Rt, R, t0, t1 int) {
	obs.Axpy((t1-t0)*R, In)
	slab := L * In
	for t := t0; t < t1; t++ {
		xt := data[t*slab : (t+1)*slab]
		linalg.Gemm32TN(wbuf, xt, krLeft, L, In, R, 1)
		for r := 0; r < R; r++ {
			krv := krRight[t+r*Rt]
			if krv == 0 { //repro:bitwise exact-zero sparsity skip; krv was stored, never computed
				continue
			}
			simd.Axpy(acc[r*In:(r+1)*In], wbuf[r*In:(r+1)*In], krv)
		}
	}
}

// KRPInto32 is KRPInto reading float32 factor columns: the expansion
// and every product run in float64, only the source storage narrows.
//
//repro:hotpath
func KRPInto32(dst []float64, factors []*tensor.Matrix32, lo, hi, R int) {
	rows := 1
	sumRows := 0
	for k := lo; k < hi; k++ {
		rows *= factors[k].Rows()
		sumRows += factors[k].Rows()
	}
	obs.KRP(rows, sumRows, R)
	for r := 0; r < R; r++ {
		col := dst[r*rows : (r+1)*rows]
		f0 := factors[lo].Col(r)
		for i, v := range f0 {
			col[i] = float64(v)
		}
		cur := len(f0)
		for k := lo + 1; k < hi; k++ {
			fk := factors[k].Col(r)
			for j := len(fk) - 1; j >= 0; j-- {
				v := float64(fk[j])
				out := col[j*cur : j*cur+cur]
				for i, base := range col[:cur] {
					out[i] = base * v
				}
			}
			cur *= len(fk)
		}
	}
}

// store32 rounds the float64 accumulator into float32 storage — the
// single store-side rounding of the float32 path. It charges nothing
// to obs: the producing kernels already counted the output write
// (exactly as in the float64 schedule), so the narrowing store is a
// re-store of the same stream, and charging it would make the float32
// schedule's element count differ from the float64 one it mirrors.
//
//repro:hotpath
func store32(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// checkArgs32 validates the float32 (tensor, factors, mode) triple
// and returns the rank R.
func checkArgs32(x *tensor.Dense32, factors []*tensor.Matrix32, n int) int {
	N := x.Order()
	if len(factors) != N {
		panic(fmt.Sprintf("kernel: %d factors for order-%d tensor", len(factors), N))
	}
	if n < 0 || n >= N {
		panic(fmt.Sprintf("kernel: mode %d out of range [0,%d)", n, N))
	}
	R := -1
	for k, f := range factors {
		if k == n {
			continue
		}
		if f == nil {
			panic(fmt.Sprintf("kernel: factor %d is nil", k))
		}
		if f.Rows() != x.Dim(k) {
			panic(fmt.Sprintf("kernel: factor %d has %d rows, tensor dim is %d", k, f.Rows(), x.Dim(k)))
		}
		if R == -1 {
			R = f.Cols()
		} else if f.Cols() != R {
			panic(fmt.Sprintf("kernel: factor %d has %d cols, want %d", k, f.Cols(), R))
		}
	}
	if R == -1 {
		panic("kernel: MTTKRP needs at least two modes")
	}
	return R
}
