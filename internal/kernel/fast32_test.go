package kernel_test

import (
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/simd"
	"repro/internal/tensor"
)

// round32 converts a float64 problem to float32 storage and returns
// both the narrow copies and the exactly-widened float64 views, so an
// oracle can run on precisely the values the float32 path sees.
func round32(x *tensor.Dense, fs []*tensor.Matrix) (*tensor.Dense32, []*tensor.Matrix32, *tensor.Dense, []*tensor.Matrix) {
	x32 := tensor.Dense32FromDense(x)
	fs32 := make([]*tensor.Matrix32, len(fs))
	wide := make([]*tensor.Matrix, len(fs))
	for k := range fs {
		fs32[k] = tensor.Matrix32FromMatrix(fs[k])
		wide[k] = fs32[k].ToMatrix()
	}
	return x32, fs32, x32.ToDense(), wide
}

// TestFast32MatchesRef: the float32 engine agrees with the seq.Ref
// oracle run on the exactly-widened inputs, up to the single float32
// store rounding (relative ~1e-7; 1e-5 absolute covers the tested
// magnitudes). Checked on the active dispatch path and forced scalar.
func TestFast32MatchesRef(t *testing.T) {
	run := func(t *testing.T) {
		rng := rand.New(rand.NewSource(41))
		for trial := 0; trial < 10; trial++ {
			order := 3 + trial%3
			x, fs := randomProblem(rng, order, 6, 5)
			x32, fs32, xw, fsw := round32(x, fs)
			for n := 0; n < order; n++ {
				want := seq.Ref(xw, fsw, n)
				got := kernel.Fast32(x32, fs32, n)
				if d := got.MaxAbsDiff(want); d > 1e-5 {
					t.Errorf("order %d mode %d dims %v: max diff %g", order, n, x.Dims(), d)
				}
			}
		}
	}
	t.Run("dispatch="+simd.Path(), run)
	restore := simd.ForceScalar()
	defer restore()
	t.Run("dispatch=scalar", run)
}

// TestFast32WorkersBitwise: the float32 path inherits the fixed-chunk
// tiling and ReduceTree association, so every worker count stores the
// identical float32 result.
func TestFast32WorkersBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x, fs := randomProblem(rng, 4, 8, 4)
	x32, fs32, _, _ := round32(x, fs)
	R := fs[0].Cols()
	ws := kernel.NewWorkspace(x.Dims(), R, 1)
	for n := 0; n < 4; n++ {
		serial := tensor.NewMatrix32(x.Dim(n), R)
		kernel.Fast32Into(serial, x32, fs32, n, 1, ws)
		for _, w := range []int{2, 3, 8} {
			par := tensor.NewMatrix32(x.Dim(n), R)
			kernel.Fast32Into(par, x32, fs32, n, w, ws)
			for i, v := range par.Data() {
				if v != serial.Data()[i] { //repro:bitwise the worker-count-independence contract under test
					t.Fatalf("mode %d workers=%d: differs from serial at %d", n, w, i)
				}
			}
		}
	}
}

// TestFast32ZeroAllocSteadyState: the float32 engine keeps the
// zero-allocation steady state of FastInto, including its extra
// float64 output accumulator.
func TestFast32ZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	x, fs := randomProblem(rng, 3, 16, 4)
	x32, fs32, _, _ := round32(x, fs)
	R := fs[0].Cols()
	ws := kernel.NewWorkspace(x.Dims(), R, 1)
	bs := make([]*tensor.Matrix32, 3)
	for n := range bs {
		bs[n] = tensor.NewMatrix32(x.Dim(n), R)
	}
	sweep := func() {
		for n := 0; n < 3; n++ {
			kernel.Fast32Into(bs[n], x32, fs32, n, 1, ws)
		}
	}
	sweep()                                                     // warm the workspace (out64 included) to steady state
	if allocs := testing.AllocsPerRun(10, sweep); allocs != 0 { //repro:bitwise exact allocation count
		t.Errorf("steady-state float32 sweep allocates %v objects/op, want 0", allocs)
	}
}

// TestFast32ObsHalfWords: the float32 engine runs the identical
// streaming schedule (same element counts), so a word-size-4 report
// shows exactly half the measured words of the float64 run — the
// bound-ratio honesty contract of the float32 path.
func TestFast32ObsHalfWords(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	x, fs := randomProblem(rng, 4, 7, 5)
	x32, fs32, _, _ := round32(x, fs)
	R := fs[0].Cols()
	col := obs.New(0)
	obs.Enable(col)
	defer obs.Disable()
	ws := kernel.NewWorkspace(x.Dims(), R, 1)
	for n := 0; n < 4; n++ {
		col.Reset()
		b := tensor.NewMatrix(x.Dim(n), R)
		kernel.FastInto(b, x, fs, n, 1, ws)
		rep64 := obs.NewReport("t", "fast", x.Dims(), R, n, obs.Machine{Workers: 1})
		rep64.FillFromCollector(col)

		col.Reset()
		b32 := tensor.NewMatrix32(x.Dim(n), R)
		kernel.Fast32Into(b32, x32, fs32, n, 1, ws)
		rep32 := obs.NewReport("t", "fast", x.Dims(), R, n, obs.Machine{Workers: 1})
		rep32.WordBytes = 4
		rep32.FillFromCollector(col)

		if 2*rep32.MeasuredWords != rep64.MeasuredWords { //repro:bitwise identical schedule, half the bytes per element
			t.Errorf("mode %d: f32 measured %d words, f64 measured %d — want exactly half",
				n, rep32.MeasuredWords, rep64.MeasuredWords)
		}
	}
}
