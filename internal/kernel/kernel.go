// Package kernel is the shared-memory MTTKRP execution engine: a
// KRP-splitting kernel in the style of Phan, Tichavský & Cichocki
// ("Fast Alternating LS Algorithms for High Order CANDECOMP/PARAFAC
// Tensor Factorizations", IEEE TSP 2013, Section III-B) running on the
// blocked parallel GEMM of internal/linalg.
//
// For mode n of an order-N tensor in generalized column-major layout,
// the modes split into a left group (k < n, combined extent L) and a
// right group (k > n, combined extent Rt), and the tensor is — with no
// data movement at all — a 3-way array of shape (L, I_n, Rt):
//
//	B(i, r) = sum_{l, t} X(l, i, t) * KL(l, r) * KR(t, r)
//
// where KL and KR are the left/right partial Khatri-Rao products. The
// full J x R Khatri-Rao product of the via-matmul baseline is never
// materialized, and no mode requires a tensor permutation:
//
//   - n == 0:   L = 1, so B = X_(0) * KR — one GEMM over the natural
//     layout (the mode-0 unfolding IS the memory layout);
//   - n == N-1: Rt = 1, so B = X_flat^T * KL — one transposed GEMM,
//     again over the natural layout;
//   - interior: for each of the Rt contiguous (L x I_n) column-major
//     slabs, W_t = X_t^T * KL is a GEMM-shaped pass, and
//     B(:, r) += KR(t, r) * W_t(:, r) folds the slab in. Slabs are
//     independent, so they parallelize across workers with private
//     accumulators combined by a pairwise tree reduction.
//
// Arithmetic drops from the atomic kernel's (N+1)*I*R to ~2*I*R plus
// lower-order partial-KRP terms, and every inner loop is a contiguous
// blocked GEMM. seq.Ref remains the correctness oracle; results agree
// up to floating-point reassociation.
package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/simd"
	"repro/internal/tensor"
)

// Fast computes the MTTKRP B(n) = X_(n) * KRP with the KRP-splitting
// engine at the default worker count, using a pooled workspace.
// factors[n] is ignored and may be nil.
//
//repro:hotpath
func Fast(x *tensor.Dense, factors []*tensor.Matrix, n int) *tensor.Matrix {
	return FastWorkers(x, factors, n, 0)
}

// FastWorkers is Fast with an explicit goroutine count (<= 0 selects
// the linalg package default, itself defaulting to GOMAXPROCS).
func FastWorkers(x *tensor.Dense, factors []*tensor.Matrix, n, workers int) *tensor.Matrix {
	R := checkArgs(x, factors, n)
	b := tensor.NewMatrix(x.Dim(n), R) //repro:ignore hotpath-alloc result allocation is the API; the zero-alloc path is FastInto
	ws := GetWorkspace()
	FastInto(b, x, factors, n, workers, ws)
	PutWorkspace(ws)
	return b
}

// FastInto computes the MTTKRP into b (x.Dim(n) x R, overwritten)
// using the caller's workspace. With a reused workspace and workers=1
// the call performs no allocations in steady state, which is what
// keeps CP-ALS inner iterations allocation-free; parallel calls
// allocate only goroutine bookkeeping. ws must not be shared between
// concurrent calls; a nil ws borrows one from the pool.
//
//repro:hotpath
func FastInto(b *tensor.Matrix, x *tensor.Dense, factors []*tensor.Matrix, n, workers int, ws *Workspace) {
	R := checkArgs(x, factors, n)
	In := x.Dim(n)
	if b.Rows() != In || b.Cols() != R {
		panic(fmt.Sprintf("kernel: output is %dx%d, want %dx%d", b.Rows(), b.Cols(), In, R))
	}
	if ws == nil {
		ws = GetWorkspace()
		defer PutWorkspace(ws)
	}
	span := obs.Start(obs.PhaseKernel)
	defer span.Stop()
	N := x.Order()
	L, Rt := 1, 1
	for k := 0; k < n; k++ {
		L *= x.Dim(k)
	}
	for k := n + 1; k < N; k++ {
		Rt *= x.Dim(k)
	}
	workers = linalg.ResolveWorkers(workers)
	ws.ensure(L, Rt, In, R, workers)

	data := x.Data()
	bd := b.Data()
	switch {
	case n == 0:
		// B = X_(0) * KR: the mode-0 unfolding is the memory layout.
		KRPInto(ws.krRight, factors, 1, N, R)
		linalg.GemmNN(bd, data, ws.krRight, In, Rt, R, workers)
	case n == N-1:
		// B = X_flat^T * KL over the (L x I_n) natural reshape.
		KRPInto(ws.krLeft, factors, 0, N-1, R)
		linalg.GemmTN(bd, data, ws.krLeft, L, In, R, workers)
	default:
		KRPInto(ws.krLeft, factors, 0, n, R)
		KRPInto(ws.krRight, factors, n+1, N, R)
		interior(bd, data, ws.krLeft, ws.krRight, L, In, Rt, R, workers, ws)
	}
}

// Contract3 computes the generic KRP-weighted 3-way contraction
//
//	out(i, r) = sum_{l, t} data(l, i, t) * kl(l, r) * kr(t, r)
//
// treating data as an (L, M, Rt) column-major 3-tensor; out is M x R,
// overwritten. kl must be L x R and kr Rt x R, both column-major. A nil
// kl asserts that no left modes are contracted (L must be 1, the
// weight is 1); a nil kr likewise requires Rt == 1. This is the
// substrate shared by the single-mode MTTKRP (M = I_n) and the
// dimension tree's root contractions (M = a product of kept modes):
// the boundary cases are one blocked GEMM over the natural layout, the
// two-sided case runs slab passes accumulated into a fixed number of
// buckets combined by ReduceTree, so results are bitwise independent
// of the worker count. ws supplies scratch (nil borrows a pooled one);
// workers <= 0 selects the linalg default.
//
//repro:hotpath
func Contract3(out, data, kl, kr []float64, L, M, Rt, R, workers int, ws *Workspace) {
	if len(out) < M*R || len(data) < L*M*Rt {
		panic("kernel: Contract3 slice too short")
	}
	switch {
	case kl == nil && kr == nil:
		panic("kernel: Contract3 needs at least one KRP panel")
	case kl == nil:
		if L != 1 {
			panic("kernel: Contract3 nil kl with L > 1")
		}
		linalg.GemmNN(out, data, kr, M, Rt, R, workers)
	case kr == nil:
		if Rt != 1 {
			panic("kernel: Contract3 nil kr with Rt > 1")
		}
		linalg.GemmTN(out, data, kl, L, M, R, workers)
	default:
		workers = linalg.ResolveWorkers(workers)
		if ws == nil {
			ws = GetWorkspace()
			defer PutWorkspace(ws)
		}
		ws.ensureScratch(M, Rt, R, workers)
		interior(out, data, kl, kr, L, M, Rt, R, workers, ws)
	}
}

// slabName tags one interior slab chunk on the flight recorder's
// timeline: chunk counts depend only on interiorChunks and Rt, so slab
// event totals — like the obs counters — are worker-count independent;
// only their thread-row attribution varies.
var slabName = flight.RegisterName("slab")

// interiorChunks is the fixed accumulation-bucket count of the
// two-sided slab kernel. Slab ranges and the ReduceTree association
// depend only on this constant and Rt — never on the worker count — so
// the interior result is bitwise reproducible at any parallelism.
const interiorChunks = 16

// interior runs the split-mode slab passes: the Rt slabs are cut into
// a fixed set of contiguous chunks, each chunk accumulates KR-weighted
// W_t = X_t^T * KL contributions into its own bucket (bucket 0 is
// out's storage), workers drain the chunk queue, and the buckets
// combine by tree reduction.
func interior(out, data, kl, kr []float64, L, M, Rt, R, workers int, ws *Workspace) {
	nbuf := interiorChunks
	if nbuf > Rt {
		nbuf = Rt
	}
	MR := M * R
	out = out[:MR]
	for i := range out {
		out[i] = 0
	}
	if nbuf == 1 {
		fr := flight.Rec()
		fr.Begin(flight.AnonPid, 0, slabName)
		interiorSlabs(out, ws.scratch[:MR], data, kl, kr, L, M, Rt, R, 0, Rt)
		fr.End(flight.AnonPid, 0, slabName)
		return
	}
	bufs := append(ws.bufs[:0], out) //repro:ignore hotpath-alloc bucket list reuses workspace capacity ensured by ensureScratch
	priv := ws.priv[:(nbuf-1)*MR]
	for i := range priv {
		priv[i] = 0
	}
	for c := 1; c < nbuf; c++ {
		bufs = append(bufs, priv[(c-1)*MR:c*MR]) //repro:ignore hotpath-alloc appends within capacity ensured by ensureScratch
	}
	if workers > nbuf {
		workers = nbuf
	}
	if workers <= 1 {
		fr := flight.Rec()
		for c := 0; c < nbuf; c++ {
			fr.Begin(flight.AnonPid, 0, slabName)
			interiorSlabs(bufs[c], ws.scratch[:MR], data, kl, kr, L, M, Rt, R, c*Rt/nbuf, (c+1)*Rt/nbuf)
			fr.End(flight.AnonPid, 0, slabName)
		}
	} else {
		// A separate function so the goroutine closure's captures don't
		// force bufs/nbuf onto the heap in the serial path above.
		interiorParallel(bufs, ws.scratch, data, kl, kr, L, M, Rt, R, nbuf, workers)
	}
	ReduceTree(bufs, workers)
	ws.bufs = bufs[:0]
}

// interiorParallel drains the fixed chunk queue with `workers`
// goroutines, each writing through its own GEMM scratch. Chunk c
// always covers slabs [c*Rt/nbuf, (c+1)*Rt/nbuf) and accumulates into
// bufs[c] regardless of which worker claims it.
//
//repro:ignore hotpath-alloc goroutine fan-out: the parallel path allocates bookkeeping only
func interiorParallel(bufs [][]float64, scratch, data, kl, kr []float64, L, M, Rt, R, nbuf, workers int) {
	MR := M * R
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fr := flight.Rec()
			wbuf := scratch[w*MR : (w+1)*MR]
			for {
				c := int(next.Add(1)) - 1
				if c >= nbuf {
					return
				}
				fr.Begin(flight.AnonPid, w, slabName)
				interiorSlabs(bufs[c], wbuf, data, kl, kr, L, M, Rt, R, c*Rt/nbuf, (c+1)*Rt/nbuf)
				fr.End(flight.AnonPid, w, slabName)
			}
		}(w)
	}
	wg.Wait()
}

// interiorSlabs accumulates slabs [t0, t1) into acc (In x R).
func interiorSlabs(acc, wbuf, data, krLeft, krRight []float64, L, In, Rt, R, t0, t1 int) {
	// The per-slab GEMMs count themselves; the KR-weighted fold adds
	// R axpy passes of In words per slab (zero-skips counted anyway —
	// the streaming model reads the column to know it).
	obs.Axpy((t1-t0)*R, In)
	slab := L * In
	for t := t0; t < t1; t++ {
		xt := data[t*slab : (t+1)*slab]
		linalg.GemmTN(wbuf, xt, krLeft, L, In, R, 1)
		for r := 0; r < R; r++ {
			krv := krRight[t+r*Rt]
			if krv == 0 { //repro:bitwise exact-zero sparsity skip; krv was stored, never computed
				continue
			}
			simd.Axpy(acc[r*In:(r+1)*In], wbuf[r*In:(r+1)*In], krv)
		}
	}
}

// KRPInto fills dst with the Khatri-Rao product of factors[lo:hi]
// (all participating, ascending mode order, smallest mode varying
// fastest — matching the tensor layout), a (prod dims) x R
// column-major matrix. Each column is expanded in place: growing the
// product by one mode writes offsets >= the current length first, so
// no temporary is needed. Requires lo < hi and non-nil factors in the
// range.
//
//repro:hotpath
func KRPInto(dst []float64, factors []*tensor.Matrix, lo, hi, R int) {
	rows := 1
	sumRows := 0
	for k := lo; k < hi; k++ {
		rows *= factors[k].Rows()
		sumRows += factors[k].Rows()
	}
	obs.KRP(rows, sumRows, R)
	for r := 0; r < R; r++ {
		col := dst[r*rows : (r+1)*rows]
		f0 := factors[lo].Col(r)
		copy(col, f0)
		cur := len(f0)
		for k := lo + 1; k < hi; k++ {
			fk := factors[k].Col(r)
			for j := len(fk) - 1; j >= 0; j-- {
				v := fk[j]
				out := col[j*cur : j*cur+cur]
				for i, base := range col[:cur] {
					out[i] = base * v
				}
			}
			cur *= len(fk)
		}
	}
}

// checkArgs validates the (tensor, factors, mode) triple and returns
// the rank R. It allocates nothing.
func checkArgs(x *tensor.Dense, factors []*tensor.Matrix, n int) int {
	N := x.Order()
	if len(factors) != N {
		panic(fmt.Sprintf("kernel: %d factors for order-%d tensor", len(factors), N))
	}
	if n < 0 || n >= N {
		panic(fmt.Sprintf("kernel: mode %d out of range [0,%d)", n, N))
	}
	R := -1
	for k, f := range factors {
		if k == n {
			continue
		}
		if f == nil {
			panic(fmt.Sprintf("kernel: factor %d is nil", k))
		}
		if f.Rows() != x.Dim(k) {
			panic(fmt.Sprintf("kernel: factor %d has %d rows, tensor dim is %d", k, f.Rows(), x.Dim(k)))
		}
		if R == -1 {
			R = f.Cols()
		} else if f.Cols() != R {
			panic(fmt.Sprintf("kernel: factor %d has %d cols, want %d", k, f.Cols(), R))
		}
	}
	if R == -1 {
		panic("kernel: MTTKRP needs at least two modes")
	}
	return R
}
