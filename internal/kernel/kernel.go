// Package kernel is the shared-memory MTTKRP execution engine: a
// KRP-splitting kernel in the style of Phan, Tichavský & Cichocki
// ("Fast Alternating LS Algorithms for High Order CANDECOMP/PARAFAC
// Tensor Factorizations", IEEE TSP 2013, Section III-B) running on the
// blocked parallel GEMM of internal/linalg.
//
// For mode n of an order-N tensor in generalized column-major layout,
// the modes split into a left group (k < n, combined extent L) and a
// right group (k > n, combined extent Rt), and the tensor is — with no
// data movement at all — a 3-way array of shape (L, I_n, Rt):
//
//	B(i, r) = sum_{l, t} X(l, i, t) * KL(l, r) * KR(t, r)
//
// where KL and KR are the left/right partial Khatri-Rao products. The
// full J x R Khatri-Rao product of the via-matmul baseline is never
// materialized, and no mode requires a tensor permutation:
//
//   - n == 0:   L = 1, so B = X_(0) * KR — one GEMM over the natural
//     layout (the mode-0 unfolding IS the memory layout);
//   - n == N-1: Rt = 1, so B = X_flat^T * KL — one transposed GEMM,
//     again over the natural layout;
//   - interior: for each of the Rt contiguous (L x I_n) column-major
//     slabs, W_t = X_t^T * KL is a GEMM-shaped pass, and
//     B(:, r) += KR(t, r) * W_t(:, r) folds the slab in. Slabs are
//     independent, so they parallelize across workers with private
//     accumulators combined by a pairwise tree reduction.
//
// Arithmetic drops from the atomic kernel's (N+1)*I*R to ~2*I*R plus
// lower-order partial-KRP terms, and every inner loop is a contiguous
// blocked GEMM. seq.Ref remains the correctness oracle; results agree
// up to floating-point reassociation.
package kernel

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/tensor"
)

// Fast computes the MTTKRP B(n) = X_(n) * KRP with the KRP-splitting
// engine at the default worker count, using a pooled workspace.
// factors[n] is ignored and may be nil.
func Fast(x *tensor.Dense, factors []*tensor.Matrix, n int) *tensor.Matrix {
	return FastWorkers(x, factors, n, 0)
}

// FastWorkers is Fast with an explicit goroutine count (<= 0 selects
// the linalg package default, itself defaulting to GOMAXPROCS).
func FastWorkers(x *tensor.Dense, factors []*tensor.Matrix, n, workers int) *tensor.Matrix {
	R := checkArgs(x, factors, n)
	b := tensor.NewMatrix(x.Dim(n), R)
	ws := GetWorkspace()
	FastInto(b, x, factors, n, workers, ws)
	PutWorkspace(ws)
	return b
}

// FastInto computes the MTTKRP into b (x.Dim(n) x R, overwritten)
// using the caller's workspace. With a reused workspace and workers=1
// the call performs no allocations in steady state, which is what
// keeps CP-ALS inner iterations allocation-free; parallel calls
// allocate only goroutine bookkeeping. ws must not be shared between
// concurrent calls; a nil ws borrows one from the pool.
func FastInto(b *tensor.Matrix, x *tensor.Dense, factors []*tensor.Matrix, n, workers int, ws *Workspace) {
	R := checkArgs(x, factors, n)
	In := x.Dim(n)
	if b.Rows() != In || b.Cols() != R {
		panic(fmt.Sprintf("kernel: output is %dx%d, want %dx%d", b.Rows(), b.Cols(), In, R))
	}
	if ws == nil {
		ws = GetWorkspace()
		defer PutWorkspace(ws)
	}
	N := x.Order()
	L, Rt := 1, 1
	for k := 0; k < n; k++ {
		L *= x.Dim(k)
	}
	for k := n + 1; k < N; k++ {
		Rt *= x.Dim(k)
	}
	workers = linalg.ResolveWorkers(workers)
	ws.ensure(L, Rt, In, R, workers)

	data := x.Data()
	bd := b.Data()
	switch {
	case n == 0:
		// B = X_(0) * KR: the mode-0 unfolding is the memory layout.
		krpRangeInto(ws.krRight, factors, 1, N, R)
		linalg.GemmNN(bd, data, ws.krRight, In, Rt, R, workers)
	case n == N-1:
		// B = X_flat^T * KL over the (L x I_n) natural reshape.
		krpRangeInto(ws.krLeft, factors, 0, N-1, R)
		linalg.GemmTN(bd, data, ws.krLeft, L, In, R, workers)
	default:
		krpRangeInto(ws.krLeft, factors, 0, n, R)
		krpRangeInto(ws.krRight, factors, n+1, N, R)
		interior(bd, data, ws, L, In, Rt, R, workers)
	}
}

// interior runs the split-mode slab passes: per worker, a private
// accumulator collects KR-weighted W_t = X_t^T * KL contributions over
// a contiguous slab range; privates then combine by tree reduction
// directly into b's storage (which serves as accumulator 0).
func interior(bd, data []float64, ws *Workspace, L, In, Rt, R, workers int) {
	if workers > Rt {
		workers = Rt
	}
	InR := In * R
	for i := range bd {
		bd[i] = 0
	}
	if workers <= 1 {
		interiorSlabs(bd, ws.scratch[:InR], data, ws.krLeft, ws.krRight, L, In, Rt, R, 0, Rt)
		return
	}
	bufs := ws.bufs[:0]
	bufs = append(bufs, bd)
	priv := ws.priv[:(workers-1)*InR]
	for i := range priv {
		priv[i] = 0
	}
	for w := 1; w < workers; w++ {
		bufs = append(bufs, priv[(w-1)*InR:w*InR])
	}
	parallelChunks(Rt, workers, func(w, t0, t1 int) {
		wbuf := ws.scratch[w*InR : (w+1)*InR]
		interiorSlabs(bufs[w], wbuf, data, ws.krLeft, ws.krRight, L, In, Rt, R, t0, t1)
	})
	ReduceTree(bufs, workers)
	ws.bufs = bufs[:0]
}

// interiorSlabs accumulates slabs [t0, t1) into acc (In x R).
func interiorSlabs(acc, wbuf, data, krLeft, krRight []float64, L, In, Rt, R, t0, t1 int) {
	slab := L * In
	for t := t0; t < t1; t++ {
		xt := data[t*slab : (t+1)*slab]
		linalg.GemmTN(wbuf, xt, krLeft, L, In, R, 1)
		for r := 0; r < R; r++ {
			krv := krRight[t+r*Rt]
			if krv == 0 {
				continue
			}
			wcol := wbuf[r*In : (r+1)*In]
			acol := acc[r*In : (r+1)*In]
			for i, v := range wcol {
				acol[i] += krv * v
			}
		}
	}
}

// krpRangeInto fills dst with the Khatri-Rao product of factors[lo:hi]
// (all participating, ascending mode order, smallest mode varying
// fastest — matching the tensor layout), a (prod dims) x R
// column-major matrix. Each column is expanded in place: growing the
// product by one mode writes offsets >= the current length first, so
// no temporary is needed.
func krpRangeInto(dst []float64, factors []*tensor.Matrix, lo, hi, R int) {
	rows := 1
	for k := lo; k < hi; k++ {
		rows *= factors[k].Rows()
	}
	for r := 0; r < R; r++ {
		col := dst[r*rows : (r+1)*rows]
		f0 := factors[lo].Col(r)
		copy(col, f0)
		cur := len(f0)
		for k := lo + 1; k < hi; k++ {
			fk := factors[k].Col(r)
			for j := len(fk) - 1; j >= 0; j-- {
				v := fk[j]
				out := col[j*cur : j*cur+cur]
				for i, base := range col[:cur] {
					out[i] = base * v
				}
			}
			cur *= len(fk)
		}
	}
}

// checkArgs validates the (tensor, factors, mode) triple and returns
// the rank R. It allocates nothing.
func checkArgs(x *tensor.Dense, factors []*tensor.Matrix, n int) int {
	N := x.Order()
	if len(factors) != N {
		panic(fmt.Sprintf("kernel: %d factors for order-%d tensor", len(factors), N))
	}
	if n < 0 || n >= N {
		panic(fmt.Sprintf("kernel: mode %d out of range [0,%d)", n, N))
	}
	R := -1
	for k, f := range factors {
		if k == n {
			continue
		}
		if f == nil {
			panic(fmt.Sprintf("kernel: factor %d is nil", k))
		}
		if f.Rows() != x.Dim(k) {
			panic(fmt.Sprintf("kernel: factor %d has %d rows, tensor dim is %d", k, f.Rows(), x.Dim(k)))
		}
		if R == -1 {
			R = f.Cols()
		} else if f.Cols() != R {
			panic(fmt.Sprintf("kernel: factor %d has %d cols, want %d", k, f.Cols(), R))
		}
	}
	if R == -1 {
		panic("kernel: MTTKRP needs at least two modes")
	}
	return R
}
