package kernel_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/seq"
	"repro/internal/tensor"
)

// randomProblem draws a random order-N tensor with dims in [1, maxDim]
// and rank in [1, maxR].
func randomProblem(rng *rand.Rand, order, maxDim, maxR int) (*tensor.Dense, []*tensor.Matrix) {
	dims := make([]int, order)
	for k := range dims {
		dims[k] = 1 + rng.Intn(maxDim)
	}
	R := 1 + rng.Intn(maxR)
	x := tensor.NewDense(dims...)
	d := x.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	factors := make([]*tensor.Matrix, order)
	for k := range factors {
		factors[k] = tensor.NewMatrix(dims[k], R)
		fd := factors[k].Data()
		for i := range fd {
			fd[i] = rng.NormFloat64()
		}
	}
	return x, factors
}

// TestFastMatchesRefProperty is the engine's main property: for random
// problems of orders 3-5, kernel.Fast agrees with the seq.Ref oracle
// on every mode to 1e-10.
func TestFastMatchesRefProperty(t *testing.T) {
	for order := 3; order <= 5; order++ {
		order := order
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			x, fs := randomProblem(rng, order, 6, 5)
			for n := 0; n < order; n++ {
				want := seq.Ref(x, fs, n)
				got := kernel.Fast(x, fs, n)
				if !got.EqualApprox(want, 1e-10) {
					t.Logf("order %d mode %d dims %v: max diff %g",
						order, n, x.Dims(), got.MaxAbsDiff(want))
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("order %d: %v", order, err)
		}
	}
}

// TestFastEdgeCases pins the degenerate shapes: R=1, unit extents
// (including the mode being computed and the boundary modes that
// collapse the left/right split), and order 2 where one side of the
// split is always empty.
func TestFastEdgeCases(t *testing.T) {
	cases := []struct {
		dims []int
		R    int
	}{
		{[]int{1, 1, 1}, 1},
		{[]int{1, 4, 3}, 2},
		{[]int{4, 1, 3}, 2},
		{[]int{3, 4, 1}, 2},
		{[]int{5, 3, 4}, 1},
		{[]int{1, 1, 5}, 3},
		{[]int{6, 7}, 4},
		{[]int{1, 6}, 2},
		{[]int{2, 1, 3, 1, 2}, 3},
	}
	rng := rand.New(rand.NewSource(99))
	for _, tc := range cases {
		x := tensor.NewDense(tc.dims...)
		d := x.Data()
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		fs := make([]*tensor.Matrix, len(tc.dims))
		for k := range fs {
			fs[k] = tensor.NewMatrix(tc.dims[k], tc.R)
			fd := fs[k].Data()
			for i := range fd {
				fd[i] = rng.NormFloat64()
			}
		}
		for n := range tc.dims {
			want := seq.Ref(x, fs, n)
			got := kernel.Fast(x, fs, n)
			if !got.EqualApprox(want, 1e-10) {
				t.Errorf("dims %v R=%d mode %d: max diff %g", tc.dims, tc.R, n, got.MaxAbsDiff(want))
			}
		}
	}
}

// TestFastNilOwnFactor verifies factors[n] may be nil, as with seq.Ref.
func TestFastNilOwnFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, fs := randomProblem(rng, 3, 5, 3)
	for n := 0; n < 3; n++ {
		trimmed := append([]*tensor.Matrix(nil), fs...)
		trimmed[n] = nil
		want := seq.Ref(x, trimmed, n)
		if got := kernel.Fast(x, trimmed, n); !got.EqualApprox(want, 1e-10) {
			t.Errorf("mode %d with nil own factor: mismatch", n)
		}
	}
}

// TestFastWorkersEquivalence: the slab split changes only summation
// order, so any worker count agrees with workers=1 under tolerance.
func TestFastWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, fs := randomProblem(rng, 4, 8, 4)
	for n := 0; n < 4; n++ {
		serial := kernel.FastWorkers(x, fs, n, 1)
		for _, w := range []int{2, 3, 8} {
			par := kernel.FastWorkers(x, fs, n, w)
			if !par.EqualApprox(serial, 1e-12) {
				t.Errorf("mode %d workers=%d: max diff %g", n, w, par.MaxAbsDiff(serial))
			}
		}
	}
}

// TestFastIntoZeroAllocSteadyState enforces the engine contract: after
// warmup, a serial FastInto with a reused workspace and preallocated
// output allocates nothing — the property CP-ALS inner iterations
// rely on.
func TestFastIntoZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x, fs := randomProblem(rng, 3, 16, 4)
	R := fs[0].Cols()
	ws := kernel.NewWorkspace(x.Dims(), R, 1)
	bs := make([]*tensor.Matrix, 3)
	for n := range bs {
		bs[n] = tensor.NewMatrix(x.Dim(n), R)
	}
	sweep := func() {
		for n := 0; n < 3; n++ {
			kernel.FastInto(bs[n], x, fs, n, 1, ws)
		}
	}
	sweep()                                                     // warm the workspace to steady state
	if allocs := testing.AllocsPerRun(10, sweep); allocs != 0 { //repro:bitwise exact allocation count
		t.Errorf("steady-state sweep allocates %v objects/op, want 0", allocs)
	}
}

// TestReduceTree checks the reduction against a serial sum and its
// bitwise independence from the worker count.
func TestReduceTree(t *testing.T) {
	const m, n = 7, 1 << 15
	mk := func() [][]float64 {
		rng := rand.New(rand.NewSource(17))
		bufs := make([][]float64, m)
		for i := range bufs {
			bufs[i] = make([]float64, n)
			for j := range bufs[i] {
				bufs[i][j] = rng.NormFloat64()
			}
		}
		return bufs
	}
	want := make([]float64, n)
	for _, buf := range mk() {
		for j, v := range buf {
			want[j] += v
		}
	}
	serial := mk()
	kernel.ReduceTree(serial, 1)
	parallel := mk()
	kernel.ReduceTree(parallel, 8)
	for j := 0; j < n; j++ {
		if serial[0][j] != parallel[0][j] { //repro:bitwise the bitwise worker-count-independence contract under test
			t.Fatalf("tree reduction depends on worker count at %d", j)
		}
		if d := serial[0][j] - want[j]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("tree reduction wrong at %d: got %g want %g", j, serial[0][j], want[j])
		}
	}
}
