package kernel

import (
	"sync"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// ReduceTree sums bufs[1:] into bufs[0] with pairwise (binary-tree)
// combining: round s adds bufs[i+s] into bufs[i] for i = 0, 2s, 4s,
// ..., halving the live set each round. The association order depends
// only on len(bufs), never on the worker count, so a reduction over
// the same private buffers is bitwise reproducible at any parallelism.
//
// Within a round the adds are independent; they are split across
// `workers` goroutines by pair and, when pairs are scarcer than
// workers, by contiguous vector segment. workers <= 0 selects the
// linalg package default. All buffers must have the same length.
//
//repro:hotpath
func ReduceTree(bufs [][]float64, workers int) {
	m := len(bufs)
	if m <= 1 {
		return
	}
	workers = linalg.ResolveWorkers(workers)
	n := len(bufs[0])
	// m-1 pairwise adds of n words each: read both operands, write one.
	obs.Axpy(m-1, n)
	for stride := 1; stride < m; stride *= 2 {
		step := 2 * stride
		npairs := 0
		for i := 0; i+stride < m; i += step {
			npairs++
		}
		if workers <= 1 || npairs*n < 1<<14 {
			for i := 0; i+stride < m; i += step {
				addInto(bufs[i], bufs[i+stride])
			}
			continue
		}
		segs := (workers + npairs - 1) / npairs
		seglen := (n + segs - 1) / segs
		var wg sync.WaitGroup
		for i := 0; i+stride < m; i += step {
			dst, src := bufs[i], bufs[i+stride]
			for lo := 0; lo < n; lo += seglen {
				hi := min(lo+seglen, n)
				wg.Add(1)
				//repro:ignore hotpath-alloc goroutine fan-out: the parallel path allocates bookkeeping only
				go func(dst, src []float64) {
					defer wg.Done()
					addInto(dst, src)
				}(dst[lo:hi], src[lo:hi])
			}
		}
		wg.Wait()
	}
}

func addInto(dst, src []float64) {
	src = src[:len(dst)]
	for i, v := range src {
		dst[i] += v
	}
}

// parallelChunks splits [0, total) into at most `workers` contiguous
// chunks and runs fn on each concurrently; workers == 1 runs inline.
func parallelChunks(total, workers int, fn func(w, lo, hi int)) {
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		fn(0, 0, total)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * total / workers
		hi := (w + 1) * total / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
