package kernel_test

import (
	"math/rand"
	"testing"

	"repro/internal/kernel"
)

// randomBufs draws m independent buffers of length n from a seeded
// generator, plus their serial left-to-right pairwise-tree reference
// sum computed with a fresh copy (ReduceTree mutates in place).
func randomBufs(rng *rand.Rand, m, n int) [][]float64 {
	bufs := make([][]float64, m)
	for i := range bufs {
		bufs[i] = make([]float64, n)
		for j := range bufs[i] {
			bufs[i][j] = rng.NormFloat64()
		}
	}
	return bufs
}

func cloneBufs(bufs [][]float64) [][]float64 {
	out := make([][]float64, len(bufs))
	for i, b := range bufs {
		out[i] = append([]float64(nil), b...)
	}
	return out
}

// refTree reproduces ReduceTree's association order serially: round
// `stride` folds bufs[i+stride] into bufs[i].
func refTree(bufs [][]float64) []float64 {
	m := len(bufs)
	for stride := 1; stride < m; stride *= 2 {
		for i := 0; i+stride < m; i += 2 * stride {
			for j, v := range bufs[i+stride] {
				bufs[i][j] += v
			}
		}
	}
	if m == 0 {
		return nil
	}
	return bufs[0]
}

func TestReduceTreeZeroAndOneBuffer(t *testing.T) {
	// Zero buffers: must not panic, nothing to reduce.
	kernel.ReduceTree(nil, 4)
	kernel.ReduceTree([][]float64{}, 4)

	// One buffer: must be left untouched.
	b := []float64{1, 2, 3}
	kernel.ReduceTree([][]float64{b}, 4)
	for i, want := range []float64{1, 2, 3} {
		if b[i] != want { //repro:bitwise untouched buffer must be bit-identical
			t.Fatalf("single buffer mutated at %d: got %v want %v", i, b[i], want)
		}
	}
}

func TestReduceTreeNonPowerOfTwoCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []int{2, 3, 5, 6, 7, 9, 13} {
		bufs := randomBufs(rng, m, 33)
		want := refTree(cloneBufs(bufs))
		kernel.ReduceTree(bufs, 1)
		for j := range want {
			if bufs[0][j] != want[j] { //repro:bitwise same association order must match exactly
				t.Fatalf("m=%d: bufs[0][%d] = %v, want %v", m, j, bufs[0][j], want[j])
			}
		}
	}
}

func TestReduceTreeWorkersExceedBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// n large enough that npairs*n >= 1<<14 triggers the parallel
	// branch even with a single pair per round.
	const n = 1 << 15
	bufs := randomBufs(rng, 3, n)
	want := refTree(cloneBufs(bufs))
	kernel.ReduceTree(bufs, 64) // 64 workers, at most 1 pair in round 2
	for j := range want {
		if bufs[0][j] != want[j] { //repro:bitwise association order is worker-count independent
			t.Fatalf("bufs[0][%d] = %v, want %v", j, bufs[0][j], want[j])
		}
	}
}

func TestReduceTreeBitwiseAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 1 << 14 // past the serial cutoff so parallel paths engage
	for _, m := range []int{2, 5, 8} {
		base := randomBufs(rng, m, n)
		var first []float64
		for _, workers := range []int{1, 2, 3, 7, 16} {
			bufs := cloneBufs(base)
			kernel.ReduceTree(bufs, workers)
			if first == nil {
				first = bufs[0]
				continue
			}
			for j := range first {
				if bufs[0][j] != first[j] { //repro:bitwise reduction must be bitwise reproducible across worker counts
					t.Fatalf("m=%d workers=%d: bufs[0][%d] = %v, want %v",
						m, workers, j, bufs[0][j], first[j])
				}
			}
		}
	}
}
