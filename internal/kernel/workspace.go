package kernel

import (
	"sync"

	"repro/internal/linalg"
)

// Workspace holds every buffer the KRP-splitting MTTKRP needs: the
// left and right partial Khatri-Rao products, per-worker GEMM scratch,
// and per-chunk accumulation buckets for the slab reduction. Buffers
// grow monotonically and are reused across calls, so a CP-ALS or HOOI
// iteration that cycles through modes of one tensor reaches a steady
// state with zero allocations.
//
// A Workspace is not safe for concurrent use by multiple MTTKRP calls;
// use one per goroutine (or the pool helpers below).
type Workspace struct {
	krLeft  []float64 // L x R column-major partial KRP of modes < n
	krRight []float64 // Rt x R column-major partial KRP of modes > n
	scratch []float64 // workers * In*R slab GEMM outputs
	priv    []float64 // (chunks-1) * In*R accumulation buckets
	bufs    [][]float64
	out64   []float64 // In x R float64 accumulator of the float32 path
}

// NewWorkspace returns a workspace pre-sized for mode n of a tensor
// with the given dimensions and rank R at the default worker count, so
// the first FastInto call already allocates nothing.
func NewWorkspace(dims []int, R, n int) *Workspace {
	L, Rt := 1, 1
	for k := 0; k < n; k++ {
		L *= dims[k]
	}
	for k := n + 1; k < len(dims); k++ {
		Rt *= dims[k]
	}
	ws := new(Workspace)
	ws.ensure(L, Rt, dims[n], R, linalg.Workers())
	return ws
}

// ensure grows the buffers to fit an (L, In, Rt, R) problem at the
// given worker count. Existing capacity is kept.
func (ws *Workspace) ensure(L, Rt, In, R, workers int) {
	ws.krLeft = grow(ws.krLeft, L*R)
	ws.krRight = grow(ws.krRight, Rt*R)
	ws.ensureScratch(In, Rt, R, workers)
}

// ensureScratch grows only the slab-pass buffers (GEMM scratch and
// accumulation buckets) for an M x R output over Rt slabs — what
// Contract3 needs when the KRP panels live elsewhere.
func (ws *Workspace) ensureScratch(M, Rt, R, workers int) {
	nbuf := interiorChunks
	if nbuf > Rt {
		nbuf = Rt
	}
	if workers < 1 {
		workers = 1
	}
	ws.scratch = grow(ws.scratch, workers*M*R)
	if nbuf > 1 {
		ws.priv = grow(ws.priv, (nbuf-1)*M*R)
	}
	if cap(ws.bufs) < nbuf {
		ws.bufs = make([][]float64, 0, nbuf) //repro:ignore hotpath-alloc grow-only bucket headers; settles after the first call
	}
}

//repro:ignore hotpath-alloc grow-only workspace primitive; allocates only while capacity still grows
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace fetches a workspace from the shared pool.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// PutWorkspace returns a workspace to the shared pool for reuse.
func PutWorkspace(ws *Workspace) { wsPool.Put(ws) }
