package linalg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// SymEig computes the full eigendecomposition of a symmetric matrix
// with the cyclic Jacobi method: A = V diag(vals) V^T with orthonormal
// V, eigenvalues sorted in descending order. Only symmetric inputs are
// supported (the Tucker substrate needs Gram matrices of unfoldings).
func SymEig(a *tensor.Matrix) (vals []float64, vecs *tensor.Matrix, err error) {
	n := a.Rows()
	if a.Cols() != n {
		panic(fmt.Sprintf("linalg: SymEig of non-square %dx%d", n, a.Cols()))
	}
	const tolSym = 1e-9
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > tolSym*(1+math.Abs(a.At(i, j))) {
				return nil, nil, fmt.Errorf("linalg: SymEig input not symmetric at (%d,%d)", i, j)
			}
		}
	}
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-24*(1+frob2(w)) {
			break
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				apq := w.At(i, j)
				if apq == 0 { //repro:bitwise exact-zero sparsity skip: rotation is the identity
					continue
				}
				app := w.At(i, i)
				aqq := w.At(j, j)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, i, j, c, s)
			}
		}
	}
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = w.At(i, i)
	}
	// Sort descending, permuting eigenvectors accordingly.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return vals[perm[a]] > vals[perm[b]] })
	outVals := make([]float64, n)
	outVecs := tensor.NewMatrix(n, n)
	for c, p := range perm {
		outVals[c] = vals[p]
		copy(outVecs.Col(c), v.Col(p))
	}
	return outVals, outVecs, nil
}

// rotate applies the Jacobi rotation J(i, j, c, s) as A <- J^T A J and
// accumulates V <- V J.
func rotate(a, v *tensor.Matrix, p, q int, c, s float64) {
	n := a.Rows()
	for k := 0; k < n; k++ {
		akp := a.At(k, p)
		akq := a.At(k, q)
		a.Set(k, p, c*akp-s*akq)
		a.Set(k, q, s*akp+c*akq)
	}
	for k := 0; k < n; k++ {
		apk := a.At(p, k)
		aqk := a.At(q, k)
		a.Set(p, k, c*apk-s*aqk)
		a.Set(q, k, s*apk+c*aqk)
	}
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func frob2(a *tensor.Matrix) float64 {
	var s float64
	for _, x := range a.Data() {
		s += x * x
	}
	return s
}

// LeadingEigvecs returns the r eigenvectors of the symmetric matrix a
// with the largest eigenvalues, as an n x r matrix.
func LeadingEigvecs(a *tensor.Matrix, r int) (*tensor.Matrix, error) {
	n := a.Rows()
	if r < 1 || r > n {
		panic(fmt.Sprintf("linalg: leading %d of %d eigenvectors", r, n))
	}
	_, vecs, err := SymEig(a)
	if err != nil {
		return nil, err
	}
	return vecs.Block(0, n, 0, r), nil
}

// QR computes the thin QR factorization of a (rows >= cols) with
// modified Gram-Schmidt: a = Q R, Q orthonormal columns. Rank
// deficiency produces an error.
func QR(a *tensor.Matrix) (q, r *tensor.Matrix, err error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		panic(fmt.Sprintf("linalg: thin QR needs rows >= cols, got %dx%d", m, n))
	}
	q = a.Clone()
	r = tensor.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		col := q.Col(j)
		for i := 0; i < j; i++ {
			qi := q.Col(i)
			var dot float64
			for k := range col {
				dot += qi[k] * col[k]
			}
			r.Set(i, j, dot)
			for k := range col {
				col[k] -= dot * qi[k]
			}
		}
		var nrm float64
		for _, v := range col {
			nrm += v * v
		}
		nrm = math.Sqrt(nrm)
		if nrm < 1e-12 {
			return nil, nil, fmt.Errorf("linalg: QR rank deficiency at column %d", j)
		}
		r.Set(j, j, nrm)
		inv := 1 / nrm
		for k := range col {
			col[k] *= inv
		}
	}
	return q, r, nil
}
