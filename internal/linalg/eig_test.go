package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSymEig2x2Hand(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := tensor.NewMatrixFromData([]float64{2, 1, 1, 2}, 2, 2)
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("vals = %v, want [3 1]", vals)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
	v0 := vecs.Col(0)
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-10 || math.Abs(v0[0]-v0[1]) > 1e-10 {
		t.Fatalf("vec0 = %v", v0)
	}
}

func TestSymEigReconstructs(t *testing.T) {
	a := tensor.RandomMatrix(3, 6, 6)
	sym := Gram(a)
	vals, vecs, err := SymEig(sym)
	if err != nil {
		t.Fatal(err)
	}
	// V diag V^T == sym.
	n := 6
	rec := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += vecs.At(i, k) * vals[k] * vecs.At(j, k)
			}
			rec.Set(i, j, s)
		}
	}
	if !rec.EqualApprox(sym, 1e-8) {
		t.Fatalf("reconstruction error %v", rec.MaxAbsDiff(sym))
	}
	// Descending order.
	for k := 1; k < n; k++ {
		if vals[k] > vals[k-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
	// Orthonormal columns.
	vtv := Gram(vecs)
	if !vtv.EqualApprox(Identity(n), 1e-9) {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestSymEigRejectsAsymmetric(t *testing.T) {
	a := tensor.NewMatrixFromData([]float64{1, 5, 2, 1}, 2, 2)
	if _, _, err := SymEig(a); err == nil {
		t.Fatal("asymmetric input should error")
	}
}

func TestSymEigPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _, _ = SymEig(tensor.NewMatrix(2, 3))
}

func TestLeadingEigvecs(t *testing.T) {
	a := tensor.RandomMatrix(7, 5, 5)
	sym := Gram(a)
	lead, err := LeadingEigvecs(sym, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lead.Rows() != 5 || lead.Cols() != 2 {
		t.Fatalf("shape %dx%d", lead.Rows(), lead.Cols())
	}
	// Columns orthonormal.
	g := Gram(lead)
	if !g.EqualApprox(Identity(2), 1e-9) {
		t.Fatal("leading eigenvectors not orthonormal")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for r out of range")
		}
	}()
	_, _ = LeadingEigvecs(sym, 6)
}

func TestQRBasics(t *testing.T) {
	a := tensor.RandomMatrix(11, 7, 4)
	q, r, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Gram(q).EqualApprox(Identity(4), 1e-9) {
		t.Fatal("Q columns not orthonormal")
	}
	if !MatMul(q, r).EqualApprox(a, 1e-9) {
		t.Fatal("QR != A")
	}
	// R upper triangular with positive diagonal.
	for i := 0; i < 4; i++ {
		if r.At(i, i) <= 0 {
			t.Fatal("R diagonal not positive")
		}
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatal("R not upper triangular")
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := tensor.NewMatrix(4, 2)
	// Second column = 2x first.
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, 2*float64(i+1))
	}
	if _, _, err := QR(a); err == nil {
		t.Fatal("rank deficiency should error")
	}
}

func TestQRPanicsWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _, _ = QR(tensor.NewMatrix(2, 3))
}

// Property: eigenvalues of a Gram matrix are nonnegative and sum to
// its trace.
func TestSymEigGramPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(4)
		n := 2 + rng.Intn(4)
		g := Gram(tensor.RandomMatrix(seed, m, n))
		vals, _, err := SymEig(g)
		if err != nil {
			return false
		}
		var sum, trace float64
		for i, v := range vals {
			if v < -1e-9 {
				return false
			}
			sum += v
			trace += g.At(i, i)
		}
		return math.Abs(sum-trace) < 1e-8*(1+trace)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
