package linalg

// The dense GEMM execution engine: cache-blocked, register-blocked,
// goroutine-parallel matrix kernels operating on raw column-major
// slices. These are the flop-carrying substrate under the paper's cost
// models — the communication-oblivious "do the arithmetic as fast as
// the hardware allows" layer, blocked per the discipline of Ballard et
// al., "Minimizing Communication in Numerical Linear Algebra": the
// innermost kernel updates a 4x4 register tile, the middle loops keep
// an MC x KC panel of A resident in cache, and the outer loop hands
// disjoint column (or row) panels of C to worker goroutines.
//
// Three data orders cover every multiply in the repository:
//
//	GemmNN: C = A * B     (via-matmul baseline, mode-0 MTTKRP)
//	GemmTN: C = A^T * B   (Gram matrices, last-mode and interior MTTKRP)
//	GemmNT: C = A * B^T   (unfolding Grams in Tucker/HOSVD)
//
// All kernels overwrite C and tolerate m, n, k of 1 (factor matrices
// are tall and skinny; degenerate extents appear in distributed local
// blocks).

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/simd"
)

// Cache-blocking parameters: the A panel held hot across a column
// sweep is gemmMC x gemmKC words (512 KiB at 8 bytes/word by default,
// sized for a typical L2). They are package variables — not constants
// — so the cost-model planner (internal/plan) can retune them from
// measured machine constants; see SetBlockSizes.
var (
	gemmKC = 256
	gemmMC = 256
)

// gemmSmall is the flop threshold below which spawning goroutines
// costs more than it saves; such products run inline.
const gemmSmall = 1 << 15

// blockMin/blockMax bound the settable cache-blocking extents: below
// 16 the register tiles dominate and the panel bookkeeping is pure
// overhead; above 4096 the panel no longer fits any realistic cache.
const (
	blockMin = 16
	blockMax = 4096
)

// SetBlockSizes retunes the GEMM cache-blocking extents (the KC x MC
// A-panel held hot across a column sweep). Values are clamped to
// [16, 4096]; n <= 0 restores a dimension's default (256). The blocks
// change the floating-point summation order, so they must be fixed
// before a run and never derived from the worker count — that is what
// keeps results bitwise independent of the parallelism. Not safe to
// call concurrently with running kernels; set once at planning time.
func SetBlockSizes(kc, mc int) {
	gemmKC = clampBlock(kc)
	gemmMC = clampBlock(mc)
}

// BlockSizes reports the current GEMM cache-blocking extents (KC, MC).
func BlockSizes() (kc, mc int) { return gemmKC, gemmMC }

func clampBlock(n int) int {
	if n <= 0 {
		return 256
	}
	if n < blockMin {
		return blockMin
	}
	if n > blockMax {
		return blockMax
	}
	return n
}

// defaultWorkers is the package-wide parallelism knob; 0 means
// GOMAXPROCS at call time.
var defaultWorkers atomic.Int32

// SetWorkers sets the default goroutine count used by the blocked
// kernels when a call does not specify one. n <= 0 restores the
// default (GOMAXPROCS).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Workers reports the effective default worker count.
func Workers() int {
	if w := int(defaultWorkers.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// ResolveWorkers maps a per-call workers argument to an effective
// count: values <= 0 select the package default.
func ResolveWorkers(workers int) int {
	if workers > 0 {
		return workers
	}
	return Workers()
}

// parallelChunks splits [0, total) into at most `workers` contiguous
// chunks and runs fn on each concurrently. workers must already be
// resolved; workers == 1 runs inline.
//
//repro:ignore hotpath-alloc goroutine fan-out primitive: allocates bookkeeping only on the parallel path
func parallelChunks(total, workers int, fn func(lo, hi int)) {
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		fn(0, total)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * total / workers
		hi := (w + 1) * total / workers
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// GemmNN computes C = A * B on column-major slices: A is m x k, B is
// k x n, C is m x n, overwritten. workers <= 0 uses the package
// default.
//
//repro:hotpath
func GemmNN(c, a, b []float64, m, k, n, workers int) {
	checkLen("GemmNN", len(c), m*n)
	checkLen("GemmNN", len(a), m*k)
	checkLen("GemmNN", len(b), k*n)
	obs.Gemm(m, k, n)
	w := ResolveWorkers(workers)
	if m*n*k <= gemmSmall {
		w = 1
	}
	if w == 1 {
		gemmNN(c, a, b, m, k, 0, m, 0, n)
		return
	}
	// Prefer disjoint column panels; fall back to row panels when C is
	// wide in rows but narrow in columns (e.g. GEMM against a rank-R
	// Khatri-Rao product with small R).
	if n >= 2*w {
		//repro:ignore hotpath-alloc sanctioned fan-out closure: bookkeeping only on the parallel path
		parallelChunks(n, w, func(j0, j1 int) {
			gemmNN(c, a, b, m, k, 0, m, j0, j1)
		})
	} else {
		//repro:ignore hotpath-alloc sanctioned fan-out closure: bookkeeping only on the parallel path
		parallelChunks(m, w, func(i0, i1 int) {
			gemmNN(c, a, b, m, k, i0, i1, 0, n)
		})
	}
}

// gemmNN computes the C block rows [i0,i1) x columns [j0,j1).
func gemmNN(c, a, b []float64, m, k, i0, i1, j0, j1 int) {
	for j := j0; j < j1; j++ {
		cj := c[j*m : (j+1)*m]
		for i := i0; i < i1; i++ {
			cj[i] = 0
		}
	}
	for l0 := 0; l0 < k; l0 += gemmKC {
		l1 := min(l0+gemmKC, k)
		for ib := i0; ib < i1; ib += gemmMC {
			ie := min(ib+gemmMC, i1)
			gemmNNBlock(c, a, b, m, k, l0, l1, ib, ie, j0, j1)
		}
	}
}

// gemmNNBlock accumulates A(ib:ie, l0:l1) * B(l0:l1, j0:j1) into C.
// The coefficient tile is read from B columns directly.
func gemmNNBlock(c, a, b []float64, m, k, l0, l1, ib, ie, j0, j1 int) {
	j := j0
	for ; j+4 <= j1; j += 4 {
		c0 := c[(j+0)*m+ib : (j+0)*m+ie]
		c1 := c[(j+1)*m+ib : (j+1)*m+ie]
		c2 := c[(j+2)*m+ib : (j+2)*m+ie]
		c3 := c[(j+3)*m+ib : (j+3)*m+ie]
		b0 := b[(j+0)*k : (j+0)*k+k]
		b1 := b[(j+1)*k : (j+1)*k+k]
		b2 := b[(j+2)*k : (j+2)*k+k]
		b3 := b[(j+3)*k : (j+3)*k+k]
		l := l0
		for ; l+4 <= l1; l += 4 {
			a0 := a[(l+0)*m+ib : (l+0)*m+ie]
			a1 := a[(l+1)*m+ib : (l+1)*m+ie]
			a2 := a[(l+2)*m+ib : (l+2)*m+ie]
			a3 := a[(l+3)*m+ib : (l+3)*m+ie]
			axpy4x4(c0, c1, c2, c3, a0, a1, a2, a3,
				b0[l], b0[l+1], b0[l+2], b0[l+3],
				b1[l], b1[l+1], b1[l+2], b1[l+3],
				b2[l], b2[l+1], b2[l+2], b2[l+3],
				b3[l], b3[l+1], b3[l+2], b3[l+3])
		}
		for ; l < l1; l++ {
			al := a[l*m+ib : l*m+ie]
			axpy4x1(c0, c1, c2, c3, al, b0[l], b1[l], b2[l], b3[l])
		}
	}
	for ; j < j1; j++ {
		cj := c[j*m+ib : j*m+ie]
		bj := b[j*k : j*k+k]
		l := l0
		for ; l+4 <= l1; l += 4 {
			a0 := a[(l+0)*m+ib : (l+0)*m+ie]
			a1 := a[(l+1)*m+ib : (l+1)*m+ie]
			a2 := a[(l+2)*m+ib : (l+2)*m+ie]
			a3 := a[(l+3)*m+ib : (l+3)*m+ie]
			axpy1x4(cj, a0, a1, a2, a3, bj[l], bj[l+1], bj[l+2], bj[l+3])
		}
		for ; l < l1; l++ {
			axpy(cj, a[l*m+ib:l*m+ie], bj[l])
		}
	}
}

// GemmTN computes C = A^T * B on column-major slices: A is m x ka, B
// is m x n, C is ka x n, overwritten. The contraction runs down the
// shared (contiguous) row dimension, so both operands stream in unit
// stride. workers <= 0 uses the package default.
//
//repro:hotpath
func GemmTN(c, a, b []float64, m, ka, n, workers int) {
	checkLen("GemmTN", len(c), ka*n)
	checkLen("GemmTN", len(a), m*ka)
	checkLen("GemmTN", len(b), m*n)
	obs.Gemm(ka, m, n)
	w := ResolveWorkers(workers)
	if m*ka*n <= gemmSmall {
		w = 1
	}
	if w == 1 {
		gemmTN(c, a, b, m, ka, n, 0, ka)
		return
	}
	// Rows of C are columns of A: each worker owns a disjoint row
	// range and streams its A columns exactly once.
	//repro:ignore hotpath-alloc sanctioned fan-out closure: bookkeeping only on the parallel path
	parallelChunks(ka, w, func(i0, i1 int) {
		gemmTN(c, a, b, m, ka, n, i0, i1)
	})
}

// gemmTN fills C rows [i0,i1): C(i,j) = <A(:,i), B(:,j)>. Four B
// columns are processed per pass so each A column is read once per
// quadruple, and the four dot products share its stream.
func gemmTN(c, a, b []float64, m, ka, n, i0, i1 int) {
	j := 0
	for ; j+4 <= n; j += 4 {
		b0 := b[(j+0)*m : (j+0)*m+m]
		b1 := b[(j+1)*m : (j+1)*m+m]
		b2 := b[(j+2)*m : (j+2)*m+m]
		b3 := b[(j+3)*m : (j+3)*m+m]
		for i := i0; i < i1; i++ {
			ai := a[i*m : i*m+m]
			s0, s1, s2, s3 := simd.Dot4(ai, b0, b1, b2, b3)
			c[i+(j+0)*ka] = s0
			c[i+(j+1)*ka] = s1
			c[i+(j+2)*ka] = s2
			c[i+(j+3)*ka] = s3
		}
	}
	for ; j < n; j++ {
		bj := b[j*m : j*m+m]
		for i := i0; i < i1; i++ {
			c[i+j*ka] = dotUnroll(a[i*m:i*m+m], bj)
		}
	}
}

// GemmNT computes C = A * B^T on column-major slices: A is m x k, B is
// nb x k, C is m x nb, overwritten. workers <= 0 uses the package
// default.
//
//repro:hotpath
func GemmNT(c, a, b []float64, m, k, nb, workers int) {
	checkLen("GemmNT", len(c), m*nb)
	checkLen("GemmNT", len(a), m*k)
	checkLen("GemmNT", len(b), nb*k)
	obs.Gemm(m, k, nb)
	w := ResolveWorkers(workers)
	if m*k*nb <= gemmSmall {
		w = 1
	}
	if w == 1 {
		gemmNT(c, a, b, m, k, nb, 0, nb)
		return
	}
	//repro:ignore hotpath-alloc sanctioned fan-out closure: bookkeeping only on the parallel path
	parallelChunks(nb, w, func(j0, j1 int) {
		gemmNT(c, a, b, m, k, nb, j0, j1)
	})
}

// gemmNT computes C columns [j0,j1); the coefficient tile comes from
// rows of B (stride nb).
func gemmNT(c, a, b []float64, m, k, nb, j0, j1 int) {
	for j := j0; j < j1; j++ {
		cj := c[j*m : (j+1)*m]
		for i := range cj {
			cj[i] = 0
		}
	}
	for l0 := 0; l0 < k; l0 += gemmKC {
		l1 := min(l0+gemmKC, k)
		for ib := 0; ib < m; ib += gemmMC {
			ie := min(ib+gemmMC, m)
			gemmNTBlock(c, a, b, m, nb, l0, l1, ib, ie, j0, j1)
		}
	}
}

func gemmNTBlock(c, a, b []float64, m, nb, l0, l1, ib, ie, j0, j1 int) {
	j := j0
	for ; j+4 <= j1; j += 4 {
		c0 := c[(j+0)*m+ib : (j+0)*m+ie]
		c1 := c[(j+1)*m+ib : (j+1)*m+ie]
		c2 := c[(j+2)*m+ib : (j+2)*m+ie]
		c3 := c[(j+3)*m+ib : (j+3)*m+ie]
		l := l0
		for ; l+4 <= l1; l += 4 {
			a0 := a[(l+0)*m+ib : (l+0)*m+ie]
			a1 := a[(l+1)*m+ib : (l+1)*m+ie]
			a2 := a[(l+2)*m+ib : (l+2)*m+ie]
			a3 := a[(l+3)*m+ib : (l+3)*m+ie]
			axpy4x4(c0, c1, c2, c3, a0, a1, a2, a3,
				b[(j+0)+(l+0)*nb], b[(j+0)+(l+1)*nb], b[(j+0)+(l+2)*nb], b[(j+0)+(l+3)*nb],
				b[(j+1)+(l+0)*nb], b[(j+1)+(l+1)*nb], b[(j+1)+(l+2)*nb], b[(j+1)+(l+3)*nb],
				b[(j+2)+(l+0)*nb], b[(j+2)+(l+1)*nb], b[(j+2)+(l+2)*nb], b[(j+2)+(l+3)*nb],
				b[(j+3)+(l+0)*nb], b[(j+3)+(l+1)*nb], b[(j+3)+(l+2)*nb], b[(j+3)+(l+3)*nb])
		}
		for ; l < l1; l++ {
			al := a[l*m+ib : l*m+ie]
			axpy4x1(c0, c1, c2, c3, al,
				b[(j+0)+l*nb], b[(j+1)+l*nb], b[(j+2)+l*nb], b[(j+3)+l*nb])
		}
	}
	for ; j < j1; j++ {
		cj := c[j*m+ib : j*m+ie]
		l := l0
		for ; l+4 <= l1; l += 4 {
			a0 := a[(l+0)*m+ib : (l+0)*m+ie]
			a1 := a[(l+1)*m+ib : (l+1)*m+ie]
			a2 := a[(l+2)*m+ib : (l+2)*m+ie]
			a3 := a[(l+3)*m+ib : (l+3)*m+ie]
			axpy1x4(cj, a0, a1, a2, a3,
				b[j+(l+0)*nb], b[j+(l+1)*nb], b[j+(l+2)*nb], b[j+(l+3)*nb])
		}
		for ; l < l1; l++ {
			axpy(cj, a[l*m+ib:l*m+ie], b[j+l*nb])
		}
	}
}

// The micro-kernels delegate to the internal/simd dispatch layer. The
// scalar bodies that used to live here moved verbatim to
// simd.*Generic — the portable fallback and correctness oracle — and
// on amd64/arm64 the dispatch variables bind the AVX2+FMA / NEON
// assembly at init. Every worker calls through the same bound
// variable, so parallel results stay independent of the worker count
// on either path.

// axpy4x4 is the register-blocked micro-kernel: a 4x4 tile of
// coefficients w applied to four source columns, accumulated into four
// destination columns. All eight slices have equal length.
func axpy4x4(c0, c1, c2, c3, a0, a1, a2, a3 []float64,
	w00, w01, w02, w03,
	w10, w11, w12, w13,
	w20, w21, w22, w23,
	w30, w31, w32, w33 float64) {
	simd.Axpy4x4(c0, c1, c2, c3, a0, a1, a2, a3,
		w00, w01, w02, w03, w10, w11, w12, w13,
		w20, w21, w22, w23, w30, w31, w32, w33)
}

// axpy4x1 accumulates one source column into four destinations.
func axpy4x1(c0, c1, c2, c3, al []float64, w0, w1, w2, w3 float64) {
	simd.Axpy4x1(c0, c1, c2, c3, al, w0, w1, w2, w3)
}

// axpy1x4 accumulates four source columns into one destination.
func axpy1x4(cj, a0, a1, a2, a3 []float64, w0, w1, w2, w3 float64) {
	simd.Axpy1x4(cj, a0, a1, a2, a3, w0, w1, w2, w3)
}

// axpy accumulates cj += al * w.
func axpy(cj, al []float64, w float64) {
	simd.Axpy(cj, al, w)
}

// dotUnroll is a four-accumulator dot product. The unrolled head
// reduces before the tail folds in (simd.DotGeneric), matching the
// lanes-then-tail order of the vector kernels.
func dotUnroll(x, y []float64) float64 {
	return simd.Dot(x, y)
}

func checkLen(op string, got, want int) {
	if got < want {
		panic("linalg: " + op + " slice too short")
	}
}
