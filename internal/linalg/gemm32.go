package linalg

// Mixed-precision GEMM variants for the float32 storage path: the
// large streamed operand A is float32 (the tensor), B and C stay
// float64 (KRP panels and accumulators). Accumulation is entirely in
// float64 — the only rounding the path adds is the one on ingest and
// the one on the final float32 store, per the accumulation rules in
// DESIGN.md §10. The blocking mirrors GemmNN/GemmTN exactly, so the
// word traffic per the paper's model is unchanged in count and halved
// in bytes on the A stream.

import (
	"repro/internal/obs"
	"repro/internal/simd"
)

// Gemm32NN computes C = A * B with a float32 A: A is m x k float32, B
// is k x n float64, C is m x n float64, overwritten. workers <= 0
// uses the package default.
//
//repro:hotpath
func Gemm32NN(c []float64, a []float32, b []float64, m, k, n, workers int) {
	checkLen("Gemm32NN", len(c), m*n)
	checkLen("Gemm32NN", len(a), m*k)
	checkLen("Gemm32NN", len(b), k*n)
	obs.Gemm(m, k, n)
	w := ResolveWorkers(workers)
	if m*n*k <= gemmSmall {
		w = 1
	}
	if w == 1 {
		gemm32NN(c, a, b, m, k, 0, n)
		return
	}
	//repro:ignore hotpath-alloc sanctioned fan-out closure: bookkeeping only on the parallel path
	parallelChunks(n, w, func(j0, j1 int) {
		gemm32NN(c, a, b, m, k, j0, j1)
	})
}

// gemm32NN fills C columns [j0,j1), cache-blocked over the
// contraction like gemmNN; the register kernel is the four-source
// float32 axpy.
func gemm32NN(c []float64, a []float32, b []float64, m, k, j0, j1 int) {
	for j := j0; j < j1; j++ {
		cj := c[j*m : (j+1)*m]
		for i := range cj {
			cj[i] = 0
		}
	}
	for l0 := 0; l0 < k; l0 += gemmKC {
		l1 := min(l0+gemmKC, k)
		for j := j0; j < j1; j++ {
			cj := c[j*m : (j+1)*m]
			bj := b[j*k : j*k+k]
			l := l0
			for ; l+4 <= l1; l += 4 {
				a0 := a[(l+0)*m : (l+1)*m]
				a1 := a[(l+1)*m : (l+2)*m]
				a2 := a[(l+2)*m : (l+3)*m]
				a3 := a[(l+3)*m : (l+4)*m]
				simd.Axpy1x4F32(cj, a0, a1, a2, a3, bj[l], bj[l+1], bj[l+2], bj[l+3])
			}
			for ; l < l1; l++ {
				simd.AxpyF32(cj, a[l*m:(l+1)*m], bj[l])
			}
		}
	}
}

// Gemm32TN computes C = A^T * B with a float32 A: A is m x ka
// float32, B is m x n float64, C is ka x n float64, overwritten.
// workers <= 0 uses the package default.
//
//repro:hotpath
func Gemm32TN(c []float64, a []float32, b []float64, m, ka, n, workers int) {
	checkLen("Gemm32TN", len(c), ka*n)
	checkLen("Gemm32TN", len(a), m*ka)
	checkLen("Gemm32TN", len(b), m*n)
	obs.Gemm(ka, m, n)
	w := ResolveWorkers(workers)
	if m*ka*n <= gemmSmall {
		w = 1
	}
	if w == 1 {
		gemm32TN(c, a, b, m, ka, n, 0, ka)
		return
	}
	//repro:ignore hotpath-alloc sanctioned fan-out closure: bookkeeping only on the parallel path
	parallelChunks(ka, w, func(i0, i1 int) {
		gemm32TN(c, a, b, m, ka, n, i0, i1)
	})
}

// gemm32TN fills C rows [i0,i1): C(i,j) = <A(:,i), B(:,j)> with the
// float32 column streamed once per four outputs.
func gemm32TN(c []float64, a []float32, b []float64, m, ka, n, i0, i1 int) {
	j := 0
	for ; j+4 <= n; j += 4 {
		b0 := b[(j+0)*m : (j+0)*m+m]
		b1 := b[(j+1)*m : (j+1)*m+m]
		b2 := b[(j+2)*m : (j+2)*m+m]
		b3 := b[(j+3)*m : (j+3)*m+m]
		for i := i0; i < i1; i++ {
			ai := a[i*m : i*m+m]
			s0, s1, s2, s3 := simd.Dot4F32(ai, b0, b1, b2, b3)
			c[i+(j+0)*ka] = s0
			c[i+(j+1)*ka] = s1
			c[i+(j+2)*ka] = s2
			c[i+(j+3)*ka] = s3
		}
	}
	for ; j < n; j++ {
		bj := b[j*m : j*m+m]
		for i := i0; i < i1; i++ {
			c[i+j*ka] = simd.DotF32(a[i*m:i*m+m], bj)
		}
	}
}
