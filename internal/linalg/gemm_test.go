package linalg

import (
	"math/rand"
	"testing"

	"repro/internal/simd"
	"repro/internal/tensor"
)

func randMat(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return m
}

func naiveNN(a, b *tensor.Matrix) *tensor.Matrix {
	c := tensor.NewMatrix(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float64
			for l := 0; l < a.Cols(); l++ {
				s += a.At(i, l) * b.At(l, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func naiveTN(a, b *tensor.Matrix) *tensor.Matrix {
	c := tensor.NewMatrix(a.Cols(), b.Cols())
	for i := 0; i < a.Cols(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float64
			for l := 0; l < a.Rows(); l++ {
				s += a.At(l, i) * b.At(l, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func naiveNT(a, b *tensor.Matrix) *tensor.Matrix {
	c := tensor.NewMatrix(a.Rows(), b.Rows())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Rows(); j++ {
			var s float64
			for l := 0; l < a.Cols(); l++ {
				s += a.At(i, l) * b.At(j, l)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

// Shapes cross every micro-kernel edge: the 4-wide column and l
// remainders, single rows/columns, and sizes straddling the gemmKC /
// gemmMC cache-block boundaries.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 5, 7},
	{4, 4, 4},
	{5, 9, 6},
	{17, 33, 13},
	{64, 16, 64},
	{1, 300, 4},
	{300, 1, 5},
	{31, 257, 9},
	{260, 270, 11},
}

func TestGemmNNMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range gemmShapes {
		for _, w := range []int{1, 2, 4} {
			a := randMat(rng, s.m, s.k)
			b := randMat(rng, s.k, s.n)
			c := tensor.NewMatrix(s.m, s.n)
			c.Fill(3.25) // engine must overwrite, not accumulate
			GemmNN(c.Data(), a.Data(), b.Data(), s.m, s.k, s.n, w)
			if want := naiveNN(a, b); !c.EqualApprox(want, 1e-11*float64(s.k)) {
				t.Fatalf("GemmNN %dx%dx%d workers=%d: max diff %g", s.m, s.k, s.n, w, c.MaxAbsDiff(want))
			}
		}
	}
}

func TestGemmTNMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range gemmShapes {
		for _, w := range []int{1, 3} {
			a := randMat(rng, s.k, s.m) // contraction down rows
			b := randMat(rng, s.k, s.n)
			c := tensor.NewMatrix(s.m, s.n)
			c.Fill(-1)
			GemmTN(c.Data(), a.Data(), b.Data(), s.k, s.m, s.n, w)
			if want := naiveTN(a, b); !c.EqualApprox(want, 1e-11*float64(s.k)) {
				t.Fatalf("GemmTN %dx%dx%d workers=%d: max diff %g", s.m, s.k, s.n, w, c.MaxAbsDiff(want))
			}
		}
	}
}

func TestGemmNTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range gemmShapes {
		for _, w := range []int{1, 3} {
			a := randMat(rng, s.m, s.k)
			b := randMat(rng, s.n, s.k)
			c := tensor.NewMatrix(s.m, s.n)
			c.Fill(7)
			GemmNT(c.Data(), a.Data(), b.Data(), s.m, s.k, s.n, w)
			if want := naiveNT(a, b); !c.EqualApprox(want, 1e-11*float64(s.k)) {
				t.Fatalf("GemmNT %dx%dx%d workers=%d: max diff %g", s.m, s.k, s.n, w, c.MaxAbsDiff(want))
			}
		}
	}
}

func TestMatMulIntoVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 37, 23)
	b := randMat(rng, 23, 19)
	c := tensor.NewMatrix(37, 19)
	MatMulInto(c, a, b)
	if !c.EqualApprox(naiveNN(a, b), 1e-10) {
		t.Fatal("MatMulInto mismatch")
	}

	at := randMat(rng, 41, 11)
	bt := randMat(rng, 41, 7)
	ct := tensor.NewMatrix(11, 7)
	MatMulTransAInto(ct, at, bt)
	if !ct.EqualApprox(naiveTN(at, bt), 1e-10) {
		t.Fatal("MatMulTransAInto mismatch")
	}

	an := randMat(rng, 13, 29)
	bn := randMat(rng, 17, 29)
	cn := tensor.NewMatrix(13, 17)
	MatMulTransBInto(cn, an, bn)
	if !cn.EqualApprox(naiveNT(an, bn), 1e-10) {
		t.Fatal("MatMulTransBInto mismatch")
	}
}

// TestGemmFringeBothDispatchPaths sweeps every extent in {1..9, 16,
// 17} through the three data orders on the init-time dispatch path
// and again with the kernels forced scalar, pinning asm-vs-oracle
// agreement for every micro-kernel fringe (the issue's m,n,k sweep).
func TestGemmFringeBothDispatchPaths(t *testing.T) {
	ext := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 17}
	run := func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		for _, m := range ext {
			for _, k := range ext {
				for _, n := range ext {
					a := randMat(rng, m, k)
					b := randMat(rng, k, n)
					c := tensor.NewMatrix(m, n)
					GemmNN(c.Data(), a.Data(), b.Data(), m, k, n, 1)
					if want := naiveNN(a, b); !c.EqualApprox(want, 1e-12*float64(k)) {
						t.Fatalf("GemmNN %dx%dx%d: max diff %g", m, k, n, c.MaxAbsDiff(want))
					}
					at := randMat(rng, k, m)
					GemmTN(c.Data(), at.Data(), b.Data(), k, m, n, 1)
					if want := naiveTN(at, b); !c.EqualApprox(want, 1e-12*float64(k)) {
						t.Fatalf("GemmTN %dx%dx%d: max diff %g", m, k, n, c.MaxAbsDiff(want))
					}
					bt := randMat(rng, n, k)
					GemmNT(c.Data(), a.Data(), bt.Data(), m, k, n, 1)
					if want := naiveNT(a, bt); !c.EqualApprox(want, 1e-12*float64(k)) {
						t.Fatalf("GemmNT %dx%dx%d: max diff %g", m, k, n, c.MaxAbsDiff(want))
					}
				}
			}
		}
	}
	t.Run("dispatch="+simd.Path(), run)
	restore := simd.ForceScalar()
	defer restore()
	t.Run("dispatch=scalar", run)
}

// TestGemmBitwiseAcrossWorkers pins the determinism contract on the
// bound dispatch path: one kernel set per process means the worker
// count cannot change a single bit of the result.
func TestGemmBitwiseAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, k, n := 129, 65, 33
	a := randMat(rng, m, k)
	b := randMat(rng, k, n)
	ref := tensor.NewMatrix(m, n)
	GemmNN(ref.Data(), a.Data(), b.Data(), m, k, n, 1)
	got := tensor.NewMatrix(m, n)
	for w := 2; w <= 8; w++ {
		GemmNN(got.Data(), a.Data(), b.Data(), m, k, n, w)
		for i, v := range got.Data() {
			if v != ref.Data()[i] { //repro:bitwise worker count must not change results
				t.Fatalf("GemmNN workers=%d differs at %d on path %s", w, i, simd.Path())
			}
		}
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	if ResolveWorkers(5) != 5 {
		t.Fatalf("ResolveWorkers(5) = %d", ResolveWorkers(5))
	}
	if ResolveWorkers(0) != 3 {
		t.Fatalf("ResolveWorkers(0) = %d, want 3", ResolveWorkers(0))
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after reset", Workers())
	}
}
