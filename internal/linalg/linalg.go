// Package linalg provides the small dense linear-algebra kernels the
// MTTKRP baselines and CP-ALS need: matrix multiplication, Gram
// matrices, and symmetric positive-definite solves via Cholesky.
//
// Everything operates on tensor.Matrix (column-major). These kernels
// are substrates, not the paper's contribution: the via-matmul MTTKRP
// baseline multiplies the unfolded tensor by an explicit Khatri-Rao
// product, and CP-ALS solves R x R normal equations each sweep.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MatMul returns C = A * B.
func MatMul(a, b *tensor.Matrix) *tensor.Matrix {
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("linalg: matmul inner dims %d vs %d", a.Cols(), b.Rows()))
	}
	c := tensor.NewMatrix(a.Rows(), b.Cols())
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes C = A * B into an existing matrix using the
// blocked parallel engine with the package-default worker count.
func MatMulInto(c, a, b *tensor.Matrix) {
	MatMulIntoWorkers(c, a, b, 0)
}

// MatMulIntoWorkers is MatMulInto with an explicit goroutine count
// (<= 0 selects the package default).
func MatMulIntoWorkers(c, a, b *tensor.Matrix, workers int) {
	if a.Cols() != b.Rows() || c.Rows() != a.Rows() || c.Cols() != b.Cols() {
		panic(fmt.Sprintf("linalg: matmul shapes %dx%d * %dx%d -> %dx%d",
			a.Rows(), a.Cols(), b.Rows(), b.Cols(), c.Rows(), c.Cols()))
	}
	GemmNN(c.Data(), a.Data(), b.Data(), a.Rows(), a.Cols(), b.Cols(), workers)
}

// MatMulTransA returns C = A^T * B.
func MatMulTransA(a, b *tensor.Matrix) *tensor.Matrix {
	c := tensor.NewMatrix(a.Cols(), b.Cols())
	MatMulTransAInto(c, a, b)
	return c
}

// MatMulTransAInto computes C = A^T * B into an existing matrix.
func MatMulTransAInto(c, a, b *tensor.Matrix) {
	MatMulTransAIntoWorkers(c, a, b, 0)
}

// MatMulTransAIntoWorkers is MatMulTransAInto with an explicit
// goroutine count (<= 0 selects the package default).
func MatMulTransAIntoWorkers(c, a, b *tensor.Matrix, workers int) {
	if a.Rows() != b.Rows() || c.Rows() != a.Cols() || c.Cols() != b.Cols() {
		panic(fmt.Sprintf("linalg: matmulTransA shapes (%dx%d)^T * %dx%d -> %dx%d",
			a.Rows(), a.Cols(), b.Rows(), b.Cols(), c.Rows(), c.Cols()))
	}
	GemmTN(c.Data(), a.Data(), b.Data(), a.Rows(), a.Cols(), b.Cols(), workers)
}

// MatMulTransB returns C = A * B^T.
func MatMulTransB(a, b *tensor.Matrix) *tensor.Matrix {
	c := tensor.NewMatrix(a.Rows(), b.Rows())
	MatMulTransBInto(c, a, b)
	return c
}

// MatMulTransBInto computes C = A * B^T into an existing matrix.
func MatMulTransBInto(c, a, b *tensor.Matrix) {
	MatMulTransBIntoWorkers(c, a, b, 0)
}

// MatMulTransBIntoWorkers is MatMulTransBInto with an explicit
// goroutine count (<= 0 selects the package default).
func MatMulTransBIntoWorkers(c, a, b *tensor.Matrix, workers int) {
	if a.Cols() != b.Cols() || c.Rows() != a.Rows() || c.Cols() != b.Rows() {
		panic(fmt.Sprintf("linalg: matmulTransB shapes %dx%d * (%dx%d)^T -> %dx%d",
			a.Rows(), a.Cols(), b.Rows(), b.Cols(), c.Rows(), c.Cols()))
	}
	GemmNT(c.Data(), a.Data(), b.Data(), a.Rows(), a.Cols(), b.Rows(), workers)
}

// Gram returns A^T * A (R x R symmetric positive semidefinite).
func Gram(a *tensor.Matrix) *tensor.Matrix {
	return MatMulTransA(a, a)
}

// Identity returns the n x n identity matrix.
func Identity(n int) *tensor.Matrix {
	m := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular L with A = L * L^T. A must be
// symmetric positive definite; only the lower triangle of A is read.
func Cholesky(a *tensor.Matrix) (*tensor.Matrix, error) {
	n := a.Rows()
	if a.Cols() != n {
		panic(fmt.Sprintf("linalg: cholesky of non-square %dx%d", n, a.Cols()))
	}
	l := tensor.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d: %v)", ErrNotSPD, j, d)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// SolveSPD solves A * X = B for X where A is symmetric positive
// definite, via Cholesky. B may have multiple right-hand-side columns.
// If A is singular to working precision, a small ridge is added and the
// solve retried; the ridge grows geometrically up to a cap before
// giving up.
func SolveSPD(a, b *tensor.Matrix) (*tensor.Matrix, error) {
	n := a.Rows()
	if a.Cols() != n || b.Rows() != n {
		panic(fmt.Sprintf("linalg: solveSPD shapes %dx%d, rhs %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	work := a
	ridge := 0.0
	for attempt := 0; ; attempt++ {
		l, err := Cholesky(work)
		if err == nil {
			return solveWithCholesky(l, b), nil
		}
		if attempt >= 20 {
			return nil, err
		}
		if ridge == 0 { //repro:bitwise unset-ridge sentinel, exact
			// Scale the initial ridge to the matrix magnitude.
			maxDiag := 0.0
			for i := 0; i < n; i++ {
				if d := math.Abs(a.At(i, i)); d > maxDiag {
					maxDiag = d
				}
			}
			if maxDiag == 0 { //repro:bitwise exact-zero guard before scaling
				maxDiag = 1
			}
			ridge = 1e-12 * maxDiag
		} else {
			ridge *= 10
		}
		work = a.Clone()
		for i := 0; i < n; i++ {
			work.AddAt(i, i, ridge)
		}
	}
}

func solveWithCholesky(l, b *tensor.Matrix) *tensor.Matrix {
	n := l.Rows()
	x := b.Clone()
	for j := 0; j < x.Cols(); j++ {
		col := x.Col(j)
		// Forward substitution L y = b.
		for i := 0; i < n; i++ {
			s := col[i]
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * col[k]
			}
			col[i] = s / l.At(i, i)
		}
		// Back substitution L^T x = y.
		for i := n - 1; i >= 0; i-- {
			s := col[i]
			for k := i + 1; k < n; k++ {
				s -= l.At(k, i) * col[k]
			}
			col[i] = s / l.At(i, i)
		}
	}
	return x
}

// Transpose returns A^T.
func Transpose(a *tensor.Matrix) *tensor.Matrix {
	t := tensor.NewMatrix(a.Cols(), a.Rows())
	TransposeInto(t, a)
	return t
}

// TransposeInto writes A^T into t (a.Cols() x a.Rows()), allocating
// nothing — the hoisted form for loops that transpose into a reused
// buffer.
func TransposeInto(t, a *tensor.Matrix) {
	if t.Rows() != a.Cols() || t.Cols() != a.Rows() {
		panic(fmt.Sprintf("linalg: transpose into %dx%d of %dx%d", t.Rows(), t.Cols(), a.Rows(), a.Cols()))
	}
	for j := 0; j < a.Cols(); j++ {
		aj := a.Col(j)
		for i := range aj {
			t.Set(j, i, aj[i])
		}
	}
}

// Dot returns the Frobenius inner product <A, B> = sum_ij A_ij B_ij.
func Dot(a, b *tensor.Matrix) float64 {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		panic(fmt.Sprintf("linalg: dot shape mismatch %dx%d vs %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	var s float64
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		s += ad[i] * bd[i]
	}
	return s
}

// SumAll returns the sum of all entries of A.
func SumAll(a *tensor.Matrix) float64 {
	var s float64
	for _, v := range a.Data() {
		s += v
	}
	return s
}

// ColumnNormalize scales each column of A to unit 2-norm and returns
// the original norms. Zero columns are left untouched with norm 0.
func ColumnNormalize(a *tensor.Matrix) []float64 {
	norms := make([]float64, a.Cols())
	for j := 0; j < a.Cols(); j++ {
		col := a.Col(j)
		var s float64
		for _, v := range col {
			s += v * v
		}
		nrm := math.Sqrt(s)
		norms[j] = nrm
		if nrm > 0 {
			inv := 1 / nrm
			for i := range col {
				col[i] *= inv
			}
		}
	}
	return norms
}
