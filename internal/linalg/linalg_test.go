package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func naiveMul(a, b *tensor.Matrix) *tensor.Matrix {
	c := tensor.NewMatrix(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float64
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestMatMulHand(t *testing.T) {
	a := tensor.NewMatrixFromData([]float64{1, 3, 2, 4}, 2, 2) // [[1,2],[3,4]]
	b := tensor.NewMatrixFromData([]float64{5, 7, 6, 8}, 2, 2) // [[5,6],[7,8]]
	c := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("C(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulMatchesNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := tensor.RandomMatrix(seed, m, k)
		b := tensor.RandomMatrix(seed+1, k, n)
		return MatMul(a, b).EqualApprox(naiveMul(a, b), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransA(t *testing.T) {
	a := tensor.RandomMatrix(1, 5, 3)
	b := tensor.RandomMatrix(2, 5, 4)
	got := MatMulTransA(a, b)
	want := naiveMul(Transpose(a), b)
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("MatMulTransA mismatch")
	}
}

func TestMatMulTransB(t *testing.T) {
	a := tensor.RandomMatrix(1, 4, 3)
	b := tensor.RandomMatrix(2, 5, 3)
	got := MatMulTransB(a, b)
	want := naiveMul(a, Transpose(b))
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("MatMulTransB mismatch")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	for _, f := range []func(){
		func() { MatMul(tensor.NewMatrix(2, 3), tensor.NewMatrix(2, 3)) },
		func() { MatMulTransA(tensor.NewMatrix(2, 3), tensor.NewMatrix(3, 3)) },
		func() { MatMulTransB(tensor.NewMatrix(2, 3), tensor.NewMatrix(3, 2)) },
		func() { MatMulInto(tensor.NewMatrix(2, 2), tensor.NewMatrix(2, 3), tensor.NewMatrix(3, 3)) },
		func() { _, _ = Cholesky(tensor.NewMatrix(2, 3)) },
		func() { Dot(tensor.NewMatrix(2, 2), tensor.NewMatrix(2, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGramSymmetricPSD(t *testing.T) {
	a := tensor.RandomMatrix(3, 10, 4)
	g := Gram(a)
	for i := 0; i < 4; i++ {
		if g.At(i, i) < 0 {
			t.Fatalf("Gram diagonal %d negative", i)
		}
		for j := 0; j < 4; j++ {
			if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-12 {
				t.Fatalf("Gram not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	a := tensor.RandomMatrix(5, 8, 4)
	g := Gram(a)
	// Make it strictly PD.
	for i := 0; i < 4; i++ {
		g.AddAt(i, i, 0.5)
	}
	l, err := Cholesky(g)
	if err != nil {
		t.Fatal(err)
	}
	// Check L is lower triangular and L L^T = G.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if l.At(i, j) != 0 {
				t.Fatalf("L(%d,%d) = %v, want 0", i, j, l.At(i, j))
			}
		}
	}
	llt := MatMulTransB(l, l)
	if !llt.EqualApprox(g, 1e-10) {
		t.Fatal("L L^T != G")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := Identity(3)
	a.Set(2, 2, -1)
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotSPD")
	}
}

func TestSolveSPDExact(t *testing.T) {
	a := tensor.RandomMatrix(9, 6, 6)
	g := Gram(a)
	for i := 0; i < 6; i++ {
		g.AddAt(i, i, 1)
	}
	xTrue := tensor.RandomMatrix(10, 6, 3)
	b := MatMul(g, xTrue)
	x, err := SolveSPD(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x.EqualApprox(xTrue, 1e-8) {
		t.Fatalf("SolveSPD residual %v", x.MaxAbsDiff(xTrue))
	}
}

func TestSolveSPDSingularUsesRidge(t *testing.T) {
	// Rank-deficient Gram (more columns than rows).
	a := tensor.RandomMatrix(11, 2, 4)
	g := Gram(a) // 4x4, rank <= 2
	b := tensor.RandomMatrix(12, 4, 1)
	x, err := SolveSPD(g, b)
	if err != nil {
		t.Fatalf("ridge fallback failed: %v", err)
	}
	// Residual of the regularized solve should be finite.
	r := MatMul(g, x)
	r.Add(-1, b)
	if math.IsNaN(r.Norm()) || math.IsInf(r.Norm(), 0) {
		t.Fatal("non-finite solution")
	}
}

func TestTransposeInvolution(t *testing.T) {
	a := tensor.RandomMatrix(4, 3, 5)
	if !Transpose(Transpose(a)).EqualApprox(a, 0) {
		t.Fatal("transpose twice != identity")
	}
	at := Transpose(a)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestDotAndSumAll(t *testing.T) {
	a := tensor.NewMatrixFromData([]float64{1, 2, 3, 4}, 2, 2)
	if got := Dot(a, a); got != 30 {
		t.Fatalf("Dot = %v, want 30", got)
	}
	if got := SumAll(a); got != 10 {
		t.Fatalf("SumAll = %v, want 10", got)
	}
}

func TestColumnNormalize(t *testing.T) {
	a := tensor.NewMatrixFromData([]float64{3, 4, 0, 0}, 2, 2)
	norms := ColumnNormalize(a)
	if math.Abs(norms[0]-5) > 1e-12 {
		t.Fatalf("norm[0] = %v, want 5", norms[0])
	}
	if norms[1] != 0 {
		t.Fatalf("norm[1] = %v, want 0 (zero column)", norms[1])
	}
	if math.Abs(a.At(0, 0)-0.6) > 1e-12 || math.Abs(a.At(1, 0)-0.8) > 1e-12 {
		t.Fatal("column 0 not normalized")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	a := tensor.RandomMatrix(13, 3, 3)
	if !MatMul(id, a).EqualApprox(a, 0) || !MatMul(a, id).EqualApprox(a, 0) {
		t.Fatal("identity does not act as identity")
	}
}

// Property: (A B)^T = B^T A^T.
func TestTransposeOfProductQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := tensor.RandomMatrix(seed, m, k)
		b := tensor.RandomMatrix(seed+1, k, n)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return lhs.EqualApprox(rhs, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTransposeIntoReusesBuffer: the in-place transpose fills a
// caller-owned buffer (the hoisted per-iteration allocation), matches
// the allocating form, and rejects wrong-shaped targets.
func TestTransposeIntoReusesBuffer(t *testing.T) {
	a := tensor.NewMatrixFromData([]float64{1, 4, 2, 5, 3, 6}, 2, 3)
	buf := tensor.NewMatrix(3, 2)
	TransposeInto(buf, a)
	want := Transpose(a)
	for i := range buf.Data() {
		if buf.Data()[i] != want.Data()[i] { //repro:bitwise a transpose moves words, never rounds
			t.Fatalf("element %d: %g != %g", i, buf.Data()[i], want.Data()[i])
		}
	}
	if allocs := testing.AllocsPerRun(10, func() { TransposeInto(buf, a) }); allocs != 0 { //repro:bitwise exact allocation count
		t.Errorf("TransposeInto into warm buffer: %v allocs/op, want 0", allocs)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("TransposeInto accepted a mis-shaped target")
		}
	}()
	TransposeInto(tensor.NewMatrix(2, 2), a)
}
