package lp

import (
	"math/rand"
	"testing"
)

// FuzzSolveInvariants: on fuzzer-generated feasible LPs (nonnegative A
// with a guaranteed positive entry per row, positive costs), the
// solver must return a feasible optimum, and weak duality must hold
// for any scaled-down dual candidate.
func FuzzSolveInvariants(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(2))
	f.Add(int64(9), uint8(3), uint8(1))
	f.Add(int64(123), uint8(4), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, nn, mm uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nn)%5
		m := 1 + int(mm)%5
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := range p.C {
			p.C[j] = 0.1 + rng.Float64()
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				p.A[i][j] = rng.Float64()
			}
			p.A[i][rng.Intn(n)] += 0.5
			p.B[i] = rng.Float64() * 3
		}
		x, v, err := Solve(p)
		if err != nil {
			t.Fatalf("feasible LP rejected: %v", err)
		}
		if !Feasible(p, x, 1e-6) {
			t.Fatalf("optimum infeasible: %v", x)
		}
		if v < -1e-9 {
			t.Fatalf("negative optimum %v with positive costs", v)
		}
		tv := make([]float64, m)
		for i := range tv {
			tv[i] = rng.Float64() * 0.05
		}
		if DualFeasible(p, tv, 1e-9) && DualObjective(p, tv) > v+1e-6 {
			t.Fatalf("weak duality violated: %v > %v", DualObjective(p, tv), v)
		}
	})
}
