// Package lp solves small dense linear programs of the form
//
//	min c'x  subject to  A x >= b,  x >= 0,
//
// with a two-phase primal simplex method using Bland's anti-cycling
// rule. It exists to solve (and to let tests verify) the linear program
// of Lemma 4.2,
//
//	min 1's  subject to  Delta s >= 1,  s >= 0,
//
// whose solution s* = (1/N, ..., 1/N, 1-1/N) supplies the exponents of
// every lower bound in the paper. Problems here have at most a few
// dozen variables, so a dense tableau is the right tool.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Problem is min C'x subject to A x >= B, x >= 0.
type Problem struct {
	C []float64   // objective coefficients, length n
	A [][]float64 // m x n constraint matrix
	B []float64   // right-hand sides, length m
}

// ErrInfeasible is returned when no x satisfies the constraints.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: unbounded")

const eps = 1e-9

// Solve returns an optimal solution and its objective value.
func Solve(p Problem) (x []float64, value float64, err error) {
	m := len(p.A)
	if len(p.B) != m {
		return nil, 0, fmt.Errorf("lp: %d constraint rows but %d rhs entries", m, len(p.B))
	}
	n := len(p.C)
	for i, row := range p.A {
		if len(row) != n {
			return nil, 0, fmt.Errorf("lp: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if m == 0 {
		// Unconstrained besides x >= 0: minimized at x = 0 unless some
		// c_j < 0, in which case unbounded.
		for _, cj := range p.C {
			if cj < -eps {
				return nil, 0, ErrUnbounded
			}
		}
		return make([]float64, n), 0, nil
	}

	// Standard form: A x - s = b with surplus s >= 0; rows with
	// negative rhs are negated so b >= 0; artificials give the
	// starting basis.
	total := n + m + m // original + surplus + artificial
	tab := make([][]float64, m)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, total)
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			tab[i][j] = sign * p.A[i][j]
		}
		tab[i][n+i] = -sign // surplus
		tab[i][n+m+i] = 1   // artificial
		rhs[i] = sign * p.B[i]
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + m + i
	}

	// Phase 1: minimize the sum of artificials.
	phase1 := make([]float64, total)
	for j := n + m; j < total; j++ {
		phase1[j] = 1
	}
	if err := simplex(tab, rhs, basis, phase1, total); err != nil {
		return nil, 0, err
	}
	if obj := objective(rhs, basis, phase1); obj > 1e-7 {
		return nil, 0, ErrInfeasible
	}
	// Drive any remaining artificial basis variables out (degenerate
	// rows); if a row has no eligible pivot it is redundant and can
	// stay with a zero artificial.
	for i, bi := range basis {
		if bi < n+m {
			continue
		}
		for j := 0; j < n+m; j++ {
			if math.Abs(tab[i][j]) > eps {
				pivot(tab, rhs, basis, i, j)
				break
			}
		}
	}

	// Phase 2: original objective; artificials frozen out.
	phase2 := make([]float64, total)
	copy(phase2, p.C)
	if err := simplex(tab, rhs, basis, phase2, n+m); err != nil {
		return nil, 0, err
	}
	x = make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = rhs[i]
		}
	}
	value = 0
	for j := 0; j < n; j++ {
		value += p.C[j] * x[j]
	}
	return x, value, nil
}

// simplex runs primal simplex on the tableau restricted to the first
// ncols columns, minimizing cost. basis/rhs/tab are updated in place.
func simplex(tab [][]float64, rhs []float64, basis []int, cost []float64, ncols int) error {
	m := len(tab)
	for iter := 0; iter < 10000; iter++ {
		// Reduced costs: c_j - c_B' B^-1 A_j. With an explicit tableau,
		// the current tab rows are already B^-1 A, so compute directly.
		enter := -1
		for j := 0; j < ncols; j++ {
			if inBasis(basis, j) {
				continue
			}
			red := cost[j]
			for i := 0; i < m; i++ {
				red -= cost[basis[i]] * tab[i][j]
			}
			if red < -eps {
				enter = j // Bland: first improving index
				break
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		// Ratio test (Bland: smallest basis index breaks ties).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > eps {
				ratio := rhs[i] / tab[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return ErrUnbounded
		}
		pivot(tab, rhs, basis, leave, enter)
	}
	return errors.New("lp: simplex iteration limit exceeded")
}

func pivot(tab [][]float64, rhs []float64, basis []int, row, col int) {
	m := len(tab)
	pv := tab[row][col]
	inv := 1 / pv
	for j := range tab[row] {
		tab[row][j] *= inv
	}
	rhs[row] *= inv
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 { //repro:bitwise exact-zero pivot skip: row update is a no-op
			continue
		}
		for j := range tab[i] {
			tab[i][j] -= f * tab[row][j]
		}
		rhs[i] -= f * rhs[row]
	}
	basis[row] = col
}

func inBasis(basis []int, j int) bool {
	for _, b := range basis {
		if b == j {
			return true
		}
	}
	return false
}

func objective(rhs []float64, basis []int, cost []float64) float64 {
	var v float64
	for i, bi := range basis {
		v += cost[bi] * rhs[i]
	}
	return v
}

// Feasible reports whether x satisfies A x >= b and x >= 0 within tol.
func Feasible(p Problem, x []float64, tol float64) bool {
	if len(x) != len(p.C) {
		return false
	}
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	for i, row := range p.A {
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		if s < p.B[i]-tol {
			return false
		}
	}
	return true
}

// DualFeasible reports whether t >= 0 satisfies A' t <= c within tol
// (the dual of Solve's primal). By weak duality, any such t certifies
// value >= b't for the primal.
func DualFeasible(p Problem, t []float64, tol float64) bool {
	if len(t) != len(p.B) {
		return false
	}
	for _, v := range t {
		if v < -tol {
			return false
		}
	}
	for j := range p.C {
		var s float64
		for i := range p.A {
			s += p.A[i][j] * t[i]
		}
		if s > p.C[j]+tol {
			return false
		}
	}
	return true
}

// DualObjective returns b't.
func DualObjective(p Problem, t []float64) float64 {
	var v float64
	for i := range p.B {
		v += p.B[i] * t[i]
	}
	return v
}
