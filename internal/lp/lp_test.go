package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveSimple2D(t *testing.T) {
	// min x + y s.t. x + 2y >= 4, 3x + y >= 3. Optimum at the
	// intersection: x = 2/5, y = 9/5, value 11/5.
	p := Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 2}, {3, 1}},
		B: []float64{4, 3},
	}
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2.2) > 1e-8 {
		t.Fatalf("value = %v, want 2.2", v)
	}
	if math.Abs(x[0]-0.4) > 1e-8 || math.Abs(x[1]-1.8) > 1e-8 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingleConstraint(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 5: put everything on the cheaper var.
	p := Problem{C: []float64{2, 3}, A: [][]float64{{1, 1}}, B: []float64{5}}
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-10) > 1e-8 || math.Abs(x[0]-5) > 1e-8 {
		t.Fatalf("x=%v v=%v", x, v)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x >= 1 and -x >= 1 cannot both hold with x >= 0.
	p := Problem{C: []float64{1}, A: [][]float64{{1}, {-1}}, B: []float64{1, 1}}
	if _, _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x s.t. x >= 1: drive x to infinity.
	p := Problem{C: []float64{-1}, A: [][]float64{{1}}, B: []float64{1}}
	if _, _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}

func TestSolveNoConstraints(t *testing.T) {
	p := Problem{C: []float64{2, 1}}
	x, v, err := Solve(p)
	if err != nil || v != 0 || x[0] != 0 || x[1] != 0 {
		t.Fatalf("x=%v v=%v err=%v", x, v, err)
	}
	p2 := Problem{C: []float64{-1}}
	if _, _, err := Solve(p2); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// A constraint with negative rhs is trivially satisfiable: x >= -3.
	p := Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{-3}}
	x, v, err := Solve(p)
	if err != nil || math.Abs(v) > 1e-9 || math.Abs(x[0]) > 1e-9 {
		t.Fatalf("x=%v v=%v err=%v", x, v, err)
	}
}

func TestSolveRedundantConstraints(t *testing.T) {
	// Duplicate rows should not break phase 1 artificial handling.
	p := Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 1}, {1, 1}, {2, 2}},
		B: []float64{2, 2, 4},
	}
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-8 {
		t.Fatalf("value = %v, want 2 (x=%v)", v, x)
	}
}

func TestShapeErrors(t *testing.T) {
	if _, _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Fatal("row width mismatch should error")
	}
	if _, _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}); err == nil {
		t.Fatal("rhs length mismatch should error")
	}
}

func TestFeasibleAndDual(t *testing.T) {
	p := Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 2}, {3, 1}},
		B: []float64{4, 3},
	}
	if !Feasible(p, []float64{4, 0}, 1e-9) {
		t.Fatal("(4,0) is feasible")
	}
	if Feasible(p, []float64{0, 0}, 1e-9) {
		t.Fatal("(0,0) is infeasible")
	}
	if Feasible(p, []float64{-1, 10}, 1e-9) {
		t.Fatal("negative x is infeasible")
	}
	if Feasible(p, []float64{1}, 1e-9) {
		t.Fatal("wrong length is infeasible")
	}
	// Dual optimum: t = (2/5, 1/5) gives b't = 4*(2/5)+3*(1/5) = 11/5.
	tstar := []float64{0.4, 0.2}
	if !DualFeasible(p, tstar, 1e-9) {
		t.Fatal("dual optimum should be dual feasible")
	}
	if math.Abs(DualObjective(p, tstar)-2.2) > 1e-9 {
		t.Fatalf("dual objective = %v", DualObjective(p, tstar))
	}
	if DualFeasible(p, []float64{10, 10}, 1e-9) {
		t.Fatal("large t violates A't <= c")
	}
	if DualFeasible(p, []float64{1}, 1e-9) {
		t.Fatal("wrong length dual")
	}
	if DualFeasible(p, []float64{-1, 0}, 1e-9) {
		t.Fatal("negative dual")
	}
}

// Property: on random feasible problems, the solver's optimum is
// primal feasible and weak duality holds against random dual-feasible
// points.
func TestWeakDualityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := Problem{
			C: make([]float64, n),
			A: make([][]float64, m),
			B: make([]float64, m),
		}
		for j := range p.C {
			p.C[j] = rng.Float64() + 0.1 // positive costs => bounded
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				p.A[i][j] = rng.Float64() // nonneg A => feasible
			}
			p.B[i] = rng.Float64() * 2
		}
		// Ensure every row has at least one strictly positive entry so
		// the problem is feasible.
		for i := range p.A {
			p.A[i][rng.Intn(n)] += 0.5
		}
		x, v, err := Solve(p)
		if err != nil {
			return false
		}
		if !Feasible(p, x, 1e-6) {
			return false
		}
		// Random scaled-down dual candidates must satisfy b't <= v.
		for trial := 0; trial < 5; trial++ {
			tv := make([]float64, m)
			for i := range tv {
				tv[i] = rng.Float64() * 0.1
			}
			if DualFeasible(p, tv, 1e-9) && DualObjective(p, tv) > v+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Degenerate problems exercise Bland's rule.
func TestDegeneratePivoting(t *testing.T) {
	p := Problem{
		C: []float64{1, 1, 1},
		A: [][]float64{
			{1, 0, 0},
			{1, 1, 0},
			{1, 1, 1},
		},
		B: []float64{1, 1, 1},
	}
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-8 {
		t.Fatalf("value = %v, want 1 (x=%v)", v, x)
	}
}
