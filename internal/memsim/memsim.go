// Package memsim implements the paper's two-level sequential memory
// model (Section II-C): a processor attached to a fast memory of
// capacity M words and a slow memory of unbounded capacity. The only
// communication operations are loads (slow -> fast) and stores
// (fast -> slow), each moving one word.
//
// Algorithms are written against a Machine and explicitly account for
// every word they move and every word resident in fast memory. The
// Machine enforces the capacity constraint, so an algorithm that would
// need more than M words of fast memory fails loudly instead of
// silently under-reporting its communication.
package memsim

import (
	"errors"
	"fmt"
)

// ErrCapacity is returned when an operation would exceed fast memory.
var ErrCapacity = errors.New("memsim: fast memory capacity exceeded")

// Machine models the two-level memory. The zero value is unusable;
// construct with New.
type Machine struct {
	capacity int64 // M, in words
	resident int64 // words currently in fast memory
	peak     int64 // high-water mark of resident
	loads    int64
	stores   int64
}

// New returns a machine with fast memory capacity m words.
func New(m int64) *Machine {
	if m <= 0 {
		panic(fmt.Sprintf("memsim: non-positive capacity %d", m))
	}
	return &Machine{capacity: m}
}

// Capacity returns M.
func (m *Machine) Capacity() int64 { return m.capacity }

// Resident returns the number of words currently in fast memory.
func (m *Machine) Resident() int64 { return m.resident }

// Peak returns the high-water mark of fast-memory residency.
func (m *Machine) Peak() int64 { return m.peak }

// Loads returns the number of words loaded from slow memory so far.
func (m *Machine) Loads() int64 { return m.loads }

// Stores returns the number of words stored to slow memory so far.
func (m *Machine) Stores() int64 { return m.stores }

// Words returns total communication: loads + stores.
func (m *Machine) Words() int64 { return m.loads + m.stores }

// Reset zeroes all counters and empties fast memory.
func (m *Machine) Reset() {
	m.resident, m.peak, m.loads, m.stores = 0, 0, 0, 0
}

// Load moves n words from slow to fast memory. It returns ErrCapacity
// (wrapped with the attempted residency) if fast memory would overflow.
func (m *Machine) Load(n int64) error {
	if n < 0 {
		panic(fmt.Sprintf("memsim: negative load %d", n))
	}
	if m.resident+n > m.capacity {
		return fmt.Errorf("%w: load %d would make %d resident, capacity %d",
			ErrCapacity, n, m.resident+n, m.capacity)
	}
	m.loads += n
	m.resident += n
	if m.resident > m.peak {
		m.peak = m.resident
	}
	return nil
}

// Store moves n words from fast to slow memory, freeing their space.
// The words must be resident.
func (m *Machine) Store(n int64) error {
	if n < 0 {
		panic(fmt.Sprintf("memsim: negative store %d", n))
	}
	if n > m.resident {
		return fmt.Errorf("memsim: store %d exceeds resident %d", n, m.resident)
	}
	m.stores += n
	m.resident -= n
	return nil
}

// StoreKeep moves n words from fast to slow memory while also keeping
// them resident (a write-back without eviction).
func (m *Machine) StoreKeep(n int64) error {
	if n < 0 {
		panic(fmt.Sprintf("memsim: negative store %d", n))
	}
	if n > m.resident {
		return fmt.Errorf("memsim: store %d exceeds resident %d", n, m.resident)
	}
	m.stores += n
	return nil
}

// Evict discards n resident words without writing them back (free
// operation in the I/O model: discarding inputs costs nothing).
func (m *Machine) Evict(n int64) error {
	if n < 0 {
		panic(fmt.Sprintf("memsim: negative evict %d", n))
	}
	if n > m.resident {
		return fmt.Errorf("memsim: evict %d exceeds resident %d", n, m.resident)
	}
	m.resident -= n
	return nil
}

// Alloc reserves n words of fast memory for values created in place
// (e.g. an output accumulator initialized to zero); it costs no
// communication but counts against capacity.
func (m *Machine) Alloc(n int64) error {
	if n < 0 {
		panic(fmt.Sprintf("memsim: negative alloc %d", n))
	}
	if m.resident+n > m.capacity {
		return fmt.Errorf("%w: alloc %d would make %d resident, capacity %d",
			ErrCapacity, n, m.resident+n, m.capacity)
	}
	m.resident += n
	if m.resident > m.peak {
		m.peak = m.resident
	}
	return nil
}

// Counts is a snapshot of a machine's counters.
type Counts struct {
	Loads  int64
	Stores int64
	Peak   int64
}

// Snapshot returns the current counters.
func (m *Machine) Snapshot() Counts {
	return Counts{Loads: m.loads, Stores: m.stores, Peak: m.peak}
}

// Words returns total traffic for a snapshot.
func (c Counts) Words() int64 { return c.Loads + c.Stores }
