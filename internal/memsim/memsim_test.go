package memsim

import (
	"errors"
	"testing"
)

func TestLoadStoreCounting(t *testing.T) {
	m := New(10)
	if err := m.Load(4); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(3); err != nil {
		t.Fatal(err)
	}
	if m.Loads() != 7 || m.Resident() != 7 || m.Peak() != 7 {
		t.Fatalf("loads=%d resident=%d peak=%d", m.Loads(), m.Resident(), m.Peak())
	}
	if err := m.Store(5); err != nil {
		t.Fatal(err)
	}
	if m.Stores() != 5 || m.Resident() != 2 || m.Words() != 12 {
		t.Fatalf("stores=%d resident=%d words=%d", m.Stores(), m.Resident(), m.Words())
	}
	if m.Peak() != 7 {
		t.Fatalf("peak should stay at high-water mark, got %d", m.Peak())
	}
}

func TestCapacityEnforced(t *testing.T) {
	m := New(5)
	if err := m.Load(5); err != nil {
		t.Fatal(err)
	}
	err := m.Load(1)
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("want ErrCapacity, got %v", err)
	}
	if m.Loads() != 5 {
		t.Fatal("failed load must not count")
	}
	if err := m.Alloc(1); !errors.Is(err, ErrCapacity) {
		t.Fatalf("alloc should also hit capacity, got %v", err)
	}
}

func TestStoreMoreThanResident(t *testing.T) {
	m := New(5)
	if err := m.Load(2); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(3); err == nil {
		t.Fatal("storing more than resident should fail")
	}
	if err := m.Evict(3); err == nil {
		t.Fatal("evicting more than resident should fail")
	}
	if err := m.StoreKeep(3); err == nil {
		t.Fatal("storeKeep more than resident should fail")
	}
}

func TestEvictIsFree(t *testing.T) {
	m := New(5)
	if err := m.Load(4); err != nil {
		t.Fatal(err)
	}
	if err := m.Evict(4); err != nil {
		t.Fatal(err)
	}
	if m.Words() != 4 || m.Resident() != 0 {
		t.Fatalf("evict should not count as communication: words=%d", m.Words())
	}
}

func TestStoreKeepKeepsResidency(t *testing.T) {
	m := New(5)
	if err := m.Alloc(3); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreKeep(3); err != nil {
		t.Fatal(err)
	}
	if m.Resident() != 3 || m.Stores() != 3 {
		t.Fatalf("resident=%d stores=%d", m.Resident(), m.Stores())
	}
}

func TestAllocCountsNoTraffic(t *testing.T) {
	m := New(8)
	if err := m.Alloc(6); err != nil {
		t.Fatal(err)
	}
	if m.Words() != 0 || m.Resident() != 6 || m.Peak() != 6 {
		t.Fatalf("alloc miscounted: words=%d resident=%d peak=%d", m.Words(), m.Resident(), m.Peak())
	}
}

func TestReset(t *testing.T) {
	m := New(8)
	_ = m.Load(5)
	_ = m.Store(2)
	m.Reset()
	if m.Loads() != 0 || m.Stores() != 0 || m.Resident() != 0 || m.Peak() != 0 {
		t.Fatal("reset did not zero counters")
	}
	if m.Capacity() != 8 {
		t.Fatal("reset changed capacity")
	}
}

func TestSnapshot(t *testing.T) {
	m := New(8)
	_ = m.Load(5)
	_ = m.Store(2)
	s := m.Snapshot()
	if s.Loads != 5 || s.Stores != 2 || s.Peak != 5 || s.Words() != 7 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestNegativePanics(t *testing.T) {
	m := New(4)
	for _, f := range []func(){
		func() { _ = m.Load(-1) },
		func() { _ = m.Store(-1) },
		func() { _ = m.Evict(-1) },
		func() { _ = m.Alloc(-1) },
		func() { _ = m.StoreKeep(-1) },
		func() { New(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
