// Chrome trace-event JSON export. The output loads in Perfetto /
// chrome://tracing: simnet ranks render as process rows, workers as
// thread rows, Begin/End pairs as duration slices, kernel calls as
// instants, and Send→Recv pairs as flow arrows keyed by
// (src, dst, seq) — the per-mode message schedule of Eq. (14)/(18)
// made visible. Format reference: the Trace Event Format spec's JSON
// object form ({"traceEvents": [...]}).
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceEvent is one entry of the exported traceEvents array.
type TraceEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`  // instant scope
	ID   string         `json:"id,omitempty"` // flow id
	BP   string         `json:"bp,omitempty"` // flow binding point
	Args map[string]any `json:"args,omitempty"`
}

// TraceDoc is the exported JSON object form.
type TraceDoc struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteTrace exports the recorder's current contents as Chrome
// trace-event JSON. Call when recording goroutines are quiescent.
func (r *Recorder) WriteTrace(w io.Writer) error {
	return ExportEvents(w, r.Events(), r.ColdEvents())
}

// usec converts recorder nanoseconds to trace microseconds.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// ExportEvents renders an event batch (sorted by TS, as returned by
// Events) plus cold instants as a Chrome trace document. Exported
// separately from Recorder so tests can drive it with crafted events
// and golden-compare the bytes.
//
// Anonymous events (Pid == AnonPid) are mapped onto process row 0 when
// the batch holds no comm events; in a distributed batch (any
// send/recv present) row 0 belongs to rank 0, so anonymous events are
// dropped and counted in otherData instead of being misattributed.
func ExportEvents(w io.Writer, evs []Event, cold []ColdEvent) error {
	distributed := false
	for i := range evs {
		if k := Kind(evs[i].Kind); k == KindSend || k == KindRecv {
			distributed = true
			break
		}
	}

	var out []TraceEvent
	rows := map[[2]int]bool{}
	droppedAnon := 0
	unmatched := 0

	// Per-(pid,tid) stacks pair Begin/End events into X slices.
	type open struct {
		ts   int64
		name uint8
	}
	stacks := map[[2]int][]open{}
	// A command may run several sequential simnet networks (each restarts
	// its channel sequence numbers at zero), so a (src, dst, seq) triple
	// can repeat across runs. Per-channel FIFO order makes the k-th send
	// occurrence pair with the k-th recv occurrence, so an occurrence
	// index disambiguates the flow id; the first occurrence keeps the
	// plain id.
	sendOcc := map[string]int{}
	recvOcc := map[string]int{}
	occID := func(id string, occ map[string]int) string {
		k := occ[id]
		occ[id] = k + 1
		if k == 0 {
			return id
		}
		return fmt.Sprintf("%s.%d", id, k)
	}
	row := func(ev Event) ([2]int, bool) {
		pid, tid := int(ev.Pid), int(ev.Tid)
		if pid < 0 {
			if distributed {
				return [2]int{}, false
			}
			pid = 0
		}
		return [2]int{pid, tid}, true
	}

	for _, ev := range evs {
		rt, ok := row(ev)
		if !ok {
			droppedAnon++
			continue
		}
		rows[rt] = true
		switch Kind(ev.Kind) {
		case KindBegin:
			stacks[rt] = append(stacks[rt], open{ts: ev.TS, name: ev.Name})
		case KindEnd:
			st := stacks[rt]
			// Pop to the innermost matching open; opens above it lost
			// their End to a ring wrap and are dropped.
			m := len(st) - 1
			for m >= 0 && st[m].name != ev.Name {
				m--
			}
			if m < 0 {
				unmatched++ // End whose Begin was overwritten
				continue
			}
			unmatched += len(st) - 1 - m
			dur := usec(ev.TS - st[m].ts)
			out = append(out, TraceEvent{
				Name: NameOf(ev.Name), Cat: "phase", Ph: "X",
				TS: usec(st[m].ts), Dur: &dur, Pid: rt[0], Tid: rt[1],
			})
			stacks[rt] = st[:m]
		case KindInstant:
			out = append(out, TraceEvent{
				Name: NameOf(ev.Name), Cat: "mark", Ph: "i", S: "t",
				TS: usec(ev.TS), Pid: rt[0], Tid: rt[1],
				Args: map[string]any{"value": ev.A},
			})
		case KindKernel:
			out = append(out, TraceEvent{
				Name: NameOf(ev.Name), Cat: "kernel", Ph: "i", S: "t",
				TS: usec(ev.TS), Pid: rt[0], Tid: rt[1],
				Args: map[string]any{"flops": ev.A, "words": ev.B},
			})
		case KindSend:
			id := occID(flowID(int(ev.Pid), int(ev.Peer), ev.Seq), sendOcc)
			zero := 0.0
			out = append(out, TraceEvent{
				Name: "send", Cat: "comm", Ph: "X",
				TS: usec(ev.TS), Dur: &zero, Pid: rt[0], Tid: rt[1],
				Args: map[string]any{"peer": ev.Peer, "words": ev.A, "seq": ev.Seq},
			})
			out = append(out, TraceEvent{
				Name: "msg", Cat: "comm", Ph: "s", ID: id,
				TS: usec(ev.TS), Pid: rt[0], Tid: rt[1],
			})
		case KindRecv:
			id := occID(flowID(int(ev.Peer), int(ev.Pid), ev.Seq), recvOcc)
			zero := 0.0
			out = append(out, TraceEvent{
				Name: "recv", Cat: "comm", Ph: "X",
				TS: usec(ev.TS), Dur: &zero, Pid: rt[0], Tid: rt[1],
				Args: map[string]any{"peer": ev.Peer, "words": ev.A, "seq": ev.Seq},
			})
			out = append(out, TraceEvent{
				Name: "msg", Cat: "comm", Ph: "f", BP: "e", ID: id,
				TS: usec(ev.TS), Pid: rt[0], Tid: rt[1],
			})
		}
	}
	for _, st := range stacks {
		unmatched += len(st) //repro:ignore determinism integer accumulation is exact in any order
	}

	for _, ce := range cold {
		rows[[2]int{0, 0}] = true
		args := make(map[string]any, len(ce.Args))
		for k, v := range ce.Args {
			args[k] = v
		}
		out = append(out, TraceEvent{
			Name: ce.Name, Cat: "plan", Ph: "i", S: "g",
			TS: usec(ce.TS), Pid: 0, Tid: 0, Args: args,
		})
	}

	// Metadata rows, sorted for deterministic output.
	var keys [][2]int
	for rt := range rows {
		keys = append(keys, rt)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var meta []TraceEvent
	lastPid := -1
	for _, rt := range keys {
		if rt[0] != lastPid {
			lastPid = rt[0]
			pname := "engine"
			if distributed {
				pname = fmt.Sprintf("rank %d", rt[0])
			}
			meta = append(meta, TraceEvent{
				Name: "process_name", Ph: "M", Pid: rt[0], Tid: 0,
				Args: map[string]any{"name": pname},
			})
		}
		tname := "main"
		if rt[1] != 0 {
			tname = fmt.Sprintf("worker %d", rt[1])
		}
		meta = append(meta, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: rt[0], Tid: rt[1],
			Args: map[string]any{"name": tname},
		})
	}

	doc := TraceDoc{
		TraceEvents:     append(meta, out...),
		DisplayTimeUnit: "ns",
	}
	if droppedAnon > 0 || unmatched > 0 {
		doc.OtherData = map[string]any{}
		if droppedAnon > 0 {
			doc.OtherData["dropped_anonymous_events"] = droppedAnon
		}
		if unmatched > 0 {
			doc.OtherData["unmatched_span_events"] = unmatched
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// flowID names the flow arrow of one (src, dst, seq) message; both
// the send ("s") and recv ("f") halves derive the same id.
func flowID(src, dst int, seq int32) string {
	return fmt.Sprintf("%d>%d#%d", src, dst, seq)
}
