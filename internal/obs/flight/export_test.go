package flight_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs/flight"
)

// goldenEvents is a small distributed batch exercising every exported
// shape: a dropped anonymous kernel instant, spans on two rank rows, a
// paired Send→Recv flow, and a planner cold instant.
func goldenEvents() ([]flight.Event, []flight.ColdEvent) {
	local := flight.RegisterName("local")
	gemm := flight.RegisterName("gemm")
	evs := []flight.Event{
		{TS: 500, Kind: uint8(flight.KindKernel), Name: gemm, Pid: flight.AnonPid, A: 200, B: 30},
		{TS: 1000, Kind: uint8(flight.KindBegin), Name: local, Pid: 0},
		{TS: 1500, Kind: uint8(flight.KindSend), Pid: 0, Peer: 1, Seq: 0, A: 8},
		{TS: 2500, Kind: uint8(flight.KindRecv), Pid: 1, Peer: 0, Seq: 0, A: 8},
		{TS: 3000, Kind: uint8(flight.KindEnd), Name: local, Pid: 0},
		{TS: 3200, Kind: uint8(flight.KindBegin), Name: local, Pid: 1, Tid: 2},
		{TS: 4000, Kind: uint8(flight.KindEnd), Name: local, Pid: 1, Tid: 2},
	}
	cold := []flight.ColdEvent{
		{TS: 100, Name: "plan", Args: map[string]string{"engine": "fast", "workers": "4"}},
	}
	return evs, cold
}

// TestGoldenTrace compares the exporter's bytes against the checked-in
// Chrome-trace fixture (regenerate with REPRO_UPDATE_GOLDEN=1) and
// validates the fixture against the trace-event schema.
func TestGoldenTrace(t *testing.T) {
	evs, cold := goldenEvents()
	var buf bytes.Buffer
	if err := flight.ExportEvents(&buf, evs, cold); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if os.Getenv("REPRO_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with REPRO_UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exported trace differs from %s:\ngot:\n%s", golden, buf.String())
	}

	sum, err := flight.Validate(want)
	if err != nil {
		t.Fatalf("golden trace fails schema validation: %v", err)
	}
	if sum.Flows != 1 {
		t.Fatalf("golden flows = %d, want 1", sum.Flows)
	}
	if sum.Spans != 2 {
		t.Fatalf("golden spans = %d, want 2", sum.Spans)
	}
	if sum.SendEvents[0] != 1 || sum.RecvEvents[1] != 1 {
		t.Fatalf("golden comm events = %v / %v", sum.SendEvents, sum.RecvEvents)
	}
	if sum.SendWords[0] != 8 || sum.RecvWords[1] != 8 {
		t.Fatalf("golden comm words = %v / %v", sum.SendWords, sum.RecvWords)
	}
	// The anonymous kernel instant is dropped (distributed batch); the
	// only instant left is the planner cold event.
	if sum.Instants != 1 {
		t.Fatalf("golden instants = %d, want 1", sum.Instants)
	}

	// The export round-trips: parse, re-marshal, re-validate.
	var doc any
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flight.Validate(again); err != nil {
		t.Fatalf("re-marshaled trace fails validation: %v", err)
	}
}

// TestExportSharedMemoryKeepsAnonymous: without comm events, anonymous
// engine rows export onto process 0 ("engine").
func TestExportSharedMemoryKeepsAnonymous(t *testing.T) {
	name := flight.RegisterName("shm-span")
	evs := []flight.Event{
		{TS: 10, Kind: uint8(flight.KindBegin), Name: name, Pid: flight.AnonPid},
		{TS: 20, Kind: uint8(flight.KindKernel), Name: name, Pid: flight.AnonPid, Tid: 1, A: 2, B: 2},
		{TS: 30, Kind: uint8(flight.KindEnd), Name: name, Pid: flight.AnonPid},
	}
	var buf bytes.Buffer
	if err := flight.ExportEvents(&buf, evs, nil); err != nil {
		t.Fatal(err)
	}
	sum, err := flight.Validate(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Spans != 1 || sum.Instants != 1 {
		t.Fatalf("spans=%d instants=%d, want 1/1 (anonymous events kept)", sum.Spans, sum.Instants)
	}
}

// TestValidateRejectsBadTraces pins the checker's teeth: unpaired and
// time-reversed flows, unknown phases, and missing required keys all
// fail.
func TestValidateRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"unpaired flow": `{"traceEvents":[
			{"ph":"s","id":"0>1#0","ts":1,"pid":0,"tid":0,"name":"msg"}],"displayTimeUnit":"ns"}`,
		"time-reversed flow": `{"traceEvents":[
			{"ph":"s","id":"0>1#0","ts":5,"pid":0,"tid":0,"name":"msg"},
			{"ph":"f","bp":"e","id":"0>1#0","ts":2,"pid":1,"tid":0,"name":"msg"}],"displayTimeUnit":"ns"}`,
		"duplicate flow start": `{"traceEvents":[
			{"ph":"s","id":"0>1#0","ts":1,"pid":0,"tid":0},
			{"ph":"s","id":"0>1#0","ts":2,"pid":0,"tid":0},
			{"ph":"f","bp":"e","id":"0>1#0","ts":3,"pid":1,"tid":0}],"displayTimeUnit":"ns"}`,
		"unknown phase":   `{"traceEvents":[{"ph":"Q","ts":1,"pid":0,"tid":0}],"displayTimeUnit":"ns"}`,
		"missing pid":     `{"traceEvents":[{"ph":"i","ts":1,"tid":0}],"displayTimeUnit":"ns"}`,
		"X without dur":   `{"traceEvents":[{"ph":"X","ts":1,"pid":0,"tid":0}],"displayTimeUnit":"ns"}`,
		"no traceEvents":  `{"displayTimeUnit":"ns"}`,
		"bad time unit":   `{"traceEvents":[],"displayTimeUnit":"fortnights"}`,
		"flow without bp": `{"traceEvents":[{"ph":"s","id":"a","ts":1,"pid":0,"tid":0},{"ph":"f","id":"a","ts":2,"pid":1,"tid":0}],"displayTimeUnit":"ns"}`,
		"not even JSON":   `]`,
	}
	for name, doc := range cases {
		if _, err := flight.Validate([]byte(doc)); err == nil {
			t.Errorf("%s: Validate accepted a bad trace", name)
		}
	}
}

// TestWriteTraceLive drives a real recorder through a two-rank
// exchange and validates the export end to end.
func TestWriteTraceLive(t *testing.T) {
	rec := flight.New(2, 256)
	name := flight.RegisterName("live-span")
	rec.Begin(0, 0, name)
	rec.Send(0, 1, 16, 0)
	rec.Send(0, 1, 16, 1)
	rec.Recv(0, 1, 16, 0)
	rec.Recv(0, 1, 16, 1)
	rec.End(0, 0, name)
	rec.ColdInstant("plan", map[string]string{"engine": "csf"})

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := flight.Validate(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Flows != 2 {
		t.Fatalf("flows = %d, want 2", sum.Flows)
	}
	if sum.SendWords[0] != 32 || sum.RecvWords[1] != 32 {
		t.Fatalf("words = %v / %v, want 32/32", sum.SendWords, sum.RecvWords)
	}
}
