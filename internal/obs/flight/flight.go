// Package flight is the repository's flight recorder: a zero-alloc
// structured event tracer that sits one layer below internal/obs.
// Where obs answers "how much" (words, flops, bound ratios), flight
// answers "when and where": which worker ran which kernel slab, which
// rank was blocked in a collective, how a CP-ALS sweep's critical path
// is laid out, and how every simnet Send pairs with its Recv — the
// per-mode communication schedule the paper's Eq. (14)/(18) count,
// rendered as a timeline instead of a total.
//
// The design follows obs's slab discipline:
//
//   - A Recorder owns per-track preallocated event rings carved out of
//     one backing slab, each ring headed by a cache-line-padded atomic
//     cursor. Recording an event is a clock read, an atomic counter
//     add, an atomic cursor bump, and six atomic word stores (one
//     48-byte event) — nothing on the record path allocates, ever (the
//     repolint hotpath-alloc analyzer walks it). Rings wrap,
//     overwriting the oldest events; per-kind aggregate counts stay
//     exact regardless. Slots are atomic words rather than a struct
//     memcpy so that writers which collide on a wrapped slot (two
//     cursor claims exactly one capacity apart, racing) interleave at
//     word granularity instead of tearing arbitrarily — each stored
//     word is always one writer's value, and the exporter already
//     tolerates a mixed slot the same way it tolerates a snapshot
//     catching a store mid-flight.
//   - The package-level active recorder is never nil: the default is a
//     statically allocated disabled recorder, so an uninstrumented run
//     pays one atomic pointer load and a predictable branch per site.
//   - Event names are interned uint8 ids in a process-wide registry;
//     instrumenting packages register their names once at init, so hot
//     record calls carry no strings.
//
// Events attributed to a simnet rank carry that rank as Pid; events
// recorded by engine internals that cannot know a rank (shared-memory
// kernels, GEMM instants) carry AnonPid. The Chrome-trace exporter
// (export.go) renders ranks as process rows, workers as thread rows,
// and Send→Recv pairs as flow events keyed by (src, dst, seq).
package flight

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one recorded event.
type Kind uint8

const (
	// KindBegin opens a named span on a (Pid, Tid) row.
	KindBegin Kind = iota
	// KindEnd closes the innermost open span of the same name.
	KindEnd
	// KindInstant marks a point in time (payload in A).
	KindInstant
	// KindKernel is an instant kernel-call marker with flop (A) and
	// word (B) payloads.
	KindKernel
	// KindSend is one simnet message leaving Pid for Peer: A words,
	// Seq-th message on the (Pid, Peer) channel.
	KindSend
	// KindRecv is one simnet message arriving at Pid from Peer: A
	// words, Seq-th message on the (Peer, Pid) channel.
	KindRecv

	// NumKinds is the number of event kinds.
	NumKinds
)

var kindNames = [NumKinds]string{"begin", "end", "instant", "kernel", "send", "recv"}

// String returns the kind's snake_case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// AnonPid marks events recorded by engine internals that do not know a
// simnet rank. The exporter maps them onto process row 0 in
// shared-memory traces and drops them from distributed traces, where
// row 0 is rank 0 and anonymous attribution would be ambiguous.
const AnonPid = -1

// Event is one recorded flight event. 48 bytes; kept flat so ring
// stores never allocate or chase pointers.
type Event struct {
	TS   int64 // ns on the recorder's clock
	A    int64 // kind-specific payload: flops (kernel), words (send/recv), value (instant)
	B    int64 // kind-specific payload: words (kernel)
	Pid  int32 // simnet rank, or AnonPid
	Tid  int32 // worker index within the rank (0 = the rank's main goroutine)
	Peer int32 // counterpart rank for send/recv
	Seq  int32 // per-(src,dst)-channel message sequence number
	Kind uint8
	Name uint8 // interned name id (RegisterName/NameOf)
}

// names is the process-wide interned-name registry. Registration is
// cold (package init of instrumenting layers); lookups on the export
// path take the lock once per event batch, never on the record path.
var names struct {
	mu  sync.Mutex
	tab []string
	idx map[string]uint8
}

func init() {
	names.idx = make(map[string]uint8, 64)
	names.tab = []string{"?"} // id 0 is the unnamed placeholder
}

// RegisterName interns s and returns its id. Re-registering a string
// returns the existing id. The registry holds at most 255 names;
// overflow folds into the id 0 placeholder rather than failing, so
// callers never need to handle an error at init time.
func RegisterName(s string) uint8 {
	names.mu.Lock()
	defer names.mu.Unlock()
	if id, ok := names.idx[s]; ok {
		return id
	}
	if len(names.tab) > 255 {
		return 0
	}
	id := uint8(len(names.tab))
	names.tab = append(names.tab, s)
	names.idx[s] = id
	return id
}

// NameOf returns the string interned under id ("?" for unknown ids).
func NameOf(id uint8) string {
	names.mu.Lock()
	defer names.mu.Unlock()
	if int(id) < len(names.tab) {
		return names.tab[id]
	}
	return "?"
}

// DefaultRingCap is the per-track event-ring capacity when New is
// given ringCap <= 0.
const DefaultRingCap = 8192

// eventWords is the size of one ring slot in 64-bit words: an Event's
// three payload int64s, the packed (Pid,Tid) and (Peer,Seq) pairs, and
// the packed (Kind,Name) byte pair.
const eventWords = 6

// words packs the event into its ring-slot representation.
func (ev Event) words() [eventWords]uint64 {
	return [eventWords]uint64{
		uint64(ev.TS),
		uint64(ev.A),
		uint64(ev.B),
		uint64(uint32(ev.Pid)) | uint64(uint32(ev.Tid))<<32,
		uint64(uint32(ev.Peer)) | uint64(uint32(ev.Seq))<<32,
		uint64(ev.Kind) | uint64(ev.Name)<<8,
	}
}

// eventFromWords unpacks one ring slot.
func eventFromWords(w [eventWords]uint64) Event {
	return Event{
		TS:   int64(w[0]),
		A:    int64(w[1]),
		B:    int64(w[2]),
		Pid:  int32(uint32(w[3])),
		Tid:  int32(uint32(w[3] >> 32)),
		Peer: int32(uint32(w[4])),
		Seq:  int32(uint32(w[4] >> 32)),
		Kind: uint8(w[5]),
		Name: uint8(w[5] >> 8),
	}
}

// ring is one track's event buffer: `slots` slots of eventWords atomic
// words each. The cursor sits alone on its cache line so concurrent
// tracks never false-share; slots and buf are immutable after New.
type ring struct {
	pos   atomic.Int64
	_     [56]byte
	buf   []atomic.Uint64 // len = slots * eventWords
	slots int64
}

// ColdEvent is an off-hot-path instant (planner decisions, run
// metadata) recorded with full string arguments. Cold events take a
// mutex and allocate; they exist for setup-time facts that occur a
// handful of times per run.
type ColdEvent struct {
	TS   int64             `json:"ts_ns"`
	Name string            `json:"name"`
	Args map[string]string `json:"args,omitempty"`
}

// Recorder owns the event rings for one traced run. All record
// methods are safe for concurrent use; the zero value is a valid
// *disabled* recorder (every record is a no-op), which backs the
// package default.
type Recorder struct {
	on bool
	// dropAnon suppresses AnonPid events at record time
	// (NewDistributed): a distributed export drops them anyway —
	// anonymous rows are ambiguous next to rank rows — and recording
	// them would let P ranks' engine internals flood the low-numbered
	// rings and evict rank 0's comm events.
	dropAnon bool
	rings    []ring
	// counts aggregates events per kind across ring wraps, so totals
	// stay exact even when the rings overwrite.
	counts [NumKinds]atomic.Int64

	base time.Time

	coldMu sync.Mutex
	cold   []ColdEvent
}

// New returns an enabled recorder with `tracks` event rings of
// `ringCap` events each, all carved from one backing slab. tracks <= 0
// selects 8 (enough rows for shared-memory worker fan-out); for a
// P-rank simnet run pass tracks = P so every rank records into its own
// ring. ringCap <= 0 selects DefaultRingCap.
func New(tracks, ringCap int) *Recorder {
	if tracks <= 0 {
		tracks = 8
	}
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	r := &Recorder{
		on:    true,
		rings: make([]ring, tracks),
		//repro:ignore determinism recorder clock base: wall timestamps are the tracer's output, not engine state
		base: time.Now(),
	}
	slab := make([]atomic.Uint64, tracks*ringCap*eventWords)
	for i := range r.rings {
		r.rings[i].buf = slab[i*ringCap*eventWords : (i+1)*ringCap*eventWords]
		r.rings[i].slots = int64(ringCap)
	}
	return r
}

// NewDistributed returns a recorder sized for a P-rank simnet run:
// one ring per rank, with anonymous engine events (AnonPid) dropped at
// record time so every ring holds exactly its rank's timeline.
func NewDistributed(ranks, ringCap int) *Recorder {
	r := New(ranks, ringCap)
	r.dropAnon = true
	return r
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r.on }

// skip reports whether an event attributed to pid is suppressed.
func (r *Recorder) skip(pid int) bool { return !r.on || (r.dropAnon && pid < 0) }

// Tracks returns the ring count.
func (r *Recorder) Tracks() int { return len(r.rings) }

// now returns nanoseconds since the recorder's base time.
func (r *Recorder) now() int64 { return int64(time.Since(r.base)) }

// record stores ev in track's ring (folded by modulus) and bumps the
// kind aggregate. The single store path every public helper funnels
// through.
//
//repro:hotpath
func (r *Recorder) record(track int, ev Event) {
	ev.TS = r.now()
	r.counts[ev.Kind].Add(1)
	rg := &r.rings[uint(track)%uint(len(r.rings))]
	slot := (uint64(rg.pos.Add(1)-1) % uint64(rg.slots)) * eventWords
	w := ev.words()
	for k := 0; k < eventWords; k++ {
		rg.buf[slot+uint64(k)].Store(w[k])
	}
}

// track picks the ring for a (pid, tid) attribution: rank events ride
// the rank's ring, anonymous engine events ride the worker's.
func track(pid, tid int) int {
	if pid < 0 {
		return tid
	}
	return pid
}

// Begin opens a named span on row (pid, tid).
//
//repro:hotpath
func (r *Recorder) Begin(pid, tid int, name uint8) {
	if r.skip(pid) {
		return
	}
	r.record(track(pid, tid), Event{Kind: uint8(KindBegin), Name: name, Pid: int32(pid), Tid: int32(tid)})
}

// End closes the innermost open span named name on row (pid, tid).
//
//repro:hotpath
func (r *Recorder) End(pid, tid int, name uint8) {
	if r.skip(pid) {
		return
	}
	r.record(track(pid, tid), Event{Kind: uint8(KindEnd), Name: name, Pid: int32(pid), Tid: int32(tid)})
}

// Instant marks a point event with payload a on row (pid, tid).
//
//repro:hotpath
func (r *Recorder) Instant(pid, tid int, name uint8, a int64) {
	if r.skip(pid) {
		return
	}
	r.record(track(pid, tid), Event{Kind: uint8(KindInstant), Name: name, Pid: int32(pid), Tid: int32(tid), A: a})
}

// Kernel marks one kernel invocation with its flop and word payloads.
//
//repro:hotpath
func (r *Recorder) Kernel(pid, tid int, name uint8, flops, words int64) {
	if r.skip(pid) {
		return
	}
	r.record(track(pid, tid), Event{Kind: uint8(KindKernel), Name: name, Pid: int32(pid), Tid: int32(tid), A: flops, B: words})
}

// Send records the seq-th message on the (src, dst) channel leaving
// src with `words` payload words. Recorded by src's goroutine into
// src's ring.
//
//repro:hotpath
func (r *Recorder) Send(src, dst int, words, seq int64) {
	if !r.on {
		return
	}
	r.record(src, Event{Kind: uint8(KindSend), Pid: int32(src), Peer: int32(dst), Seq: int32(seq), A: words})
}

// Recv records the seq-th message on the (src, dst) channel arriving
// at dst. Recorded by dst's goroutine into dst's ring.
//
//repro:hotpath
func (r *Recorder) Recv(src, dst int, words, seq int64) {
	if !r.on {
		return
	}
	r.record(dst, Event{Kind: uint8(KindRecv), Pid: int32(dst), Peer: int32(src), Seq: int32(seq), A: words})
}

// ColdInstant records an off-hot-path instant with string arguments
// (planner decisions, run metadata). Allocates; never call from a
// //repro:hotpath function.
func (r *Recorder) ColdInstant(name string, args map[string]string) {
	if !r.on {
		return
	}
	ev := ColdEvent{TS: r.now(), Name: name, Args: args}
	r.coldMu.Lock()
	r.cold = append(r.cold, ev)
	r.coldMu.Unlock()
}

// Count returns the exact number of events of kind k recorded so far,
// including events the rings have since overwritten.
func (r *Recorder) Count(k Kind) int64 {
	if !r.on || k >= NumKinds {
		return 0
	}
	return r.counts[k].Load()
}

// TotalCount returns the exact number of recorded events of all kinds.
func (r *Recorder) TotalCount() int64 {
	var t int64
	for k := Kind(0); k < NumKinds; k++ {
		t += r.Count(k)
	}
	return t
}

// Dropped returns how many events the rings have overwritten.
func (r *Recorder) Dropped() int64 {
	if !r.on {
		return 0
	}
	var d int64
	for i := range r.rings {
		if n := r.rings[i].pos.Load() - r.rings[i].slots; n > 0 {
			d += n
		}
	}
	return d
}

// Events snapshots every ring, oldest-first per ring, merged and
// stably sorted by timestamp. Call when recording goroutines are
// quiescent; a concurrent snapshot is safe but may catch an event
// store mid-flight.
func (r *Recorder) Events() []Event {
	if !r.on {
		return nil
	}
	var out []Event
	for i := range r.rings {
		rg := &r.rings[i]
		pos := rg.pos.Load()
		n := pos
		if n > rg.slots {
			n = rg.slots
		}
		for j := int64(0); j < n; j++ {
			slot := uint64((pos-n+j)%rg.slots) * eventWords
			var w [eventWords]uint64
			for k := range w {
				w[k] = rg.buf[slot+uint64(k)].Load()
			}
			out = append(out, eventFromWords(w))
		}
	}
	stableSortByTS(out)
	return out
}

// ColdEvents returns a copy of the cold-instant list in record order.
func (r *Recorder) ColdEvents() []ColdEvent {
	if !r.on {
		return nil
	}
	r.coldMu.Lock()
	defer r.coldMu.Unlock()
	out := make([]ColdEvent, len(r.cold))
	copy(out, r.cold)
	return out
}

// stableSortByTS is an insertion-friendly stable merge sort by TS.
// Events within one ring are already in record order; sorting stably
// preserves that order for equal timestamps, keeping exports
// deterministic for a fixed input.
func stableSortByTS(evs []Event) {
	if len(evs) < 2 {
		return
	}
	tmp := make([]Event, len(evs))
	for width := 1; width < len(evs); width *= 2 {
		for lo := 0; lo < len(evs); lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > len(evs) {
				mid = len(evs)
			}
			if hi > len(evs) {
				hi = len(evs)
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if evs[j].TS < evs[i].TS {
					tmp[k] = evs[j]
					j++
				} else {
					tmp[k] = evs[i]
					i++
				}
				k++
			}
			copy(tmp[k:], evs[i:mid])
			copy(tmp[k+mid-i:], evs[j:hi])
		}
		copy(evs, tmp)
	}
}

// noop is the permanently disabled default recorder. A real object,
// so instrumentation sites never test for nil.
var noop = &Recorder{}

// active is the process-wide recorder; never nil.
var active atomic.Pointer[Recorder]

func init() { active.Store(noop) }

// Enable installs r as the process-wide active recorder. A nil r
// restores the disabled default.
func Enable(r *Recorder) {
	if r == nil {
		r = noop
	}
	active.Store(r)
}

// Disable restores the disabled default recorder.
func Disable() { active.Store(noop) }

// Rec returns the process-wide recorder (the disabled default when
// none is enabled); never nil. The one atomic load a disabled
// instrumentation site pays.
//
//repro:hotpath
func Rec() *Recorder { return active.Load() }

// Enabled reports whether an enabled recorder is installed.
func Enabled() bool { return active.Load().on }
