package flight_test

import (
	"sync"
	"testing"

	"repro/internal/obs/flight"
)

// TestRingWrapUnderPressure hammers a tiny two-ring recorder from
// concurrent writers: aggregate counts stay exact, the rings retain
// exactly their capacity, Dropped accounts for the difference, and the
// merged snapshot is time-ordered.
func TestRingWrapUnderPressure(t *testing.T) {
	const (
		writers   = 4
		perWriter = 2500
		ringCap   = 64
		tracks    = 2
	)
	rec := flight.New(tracks, ringCap)
	name := flight.RegisterName("pressure")
	var wg sync.WaitGroup
	wg.Add(writers)
	for g := 0; g < writers; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Pid g folds onto ring g % tracks.
				rec.Instant(g, 0, name, int64(i))
			}
		}(g)
	}
	wg.Wait()

	total := int64(writers * perWriter)
	if got := rec.Count(flight.KindInstant); got != total {
		t.Fatalf("instant count = %d, want %d (aggregates must survive wrap)", got, total)
	}
	if got := rec.TotalCount(); got != total {
		t.Fatalf("total count = %d, want %d", got, total)
	}
	evs := rec.Events()
	if len(evs) != tracks*ringCap {
		t.Fatalf("retained %d events, want full rings = %d", len(evs), tracks*ringCap)
	}
	if got, want := rec.Dropped(), total-int64(tracks*ringCap); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("snapshot out of order at %d: %d after %d", i, evs[i].TS, evs[i-1].TS)
		}
	}
}

// TestDisabledDefault pins the disabled-recorder contract: the package
// default records nothing and Enable/Disable swap the active pointer.
func TestDisabledDefault(t *testing.T) {
	name := flight.RegisterName("disabled-probe")
	r := flight.Rec()
	if r == nil {
		t.Fatal("Rec returned nil; the default must be a real disabled recorder")
	}
	if flight.Enabled() {
		t.Fatal("flight enabled before any Enable")
	}
	r.Begin(0, 0, name)
	r.Send(0, 1, 8, 0)
	if r.TotalCount() != 0 || r.Events() != nil {
		t.Fatal("disabled recorder recorded events")
	}

	rec := flight.New(1, 16)
	flight.Enable(rec)
	defer flight.Disable()
	if !flight.Enabled() {
		t.Fatal("flight disabled after Enable")
	}
	flight.Rec().Begin(0, 0, name)
	if rec.Count(flight.KindBegin) != 1 {
		t.Fatal("enabled recorder did not record")
	}
	flight.Disable()
	if flight.Enabled() {
		t.Fatal("flight enabled after Disable")
	}
}

// TestRecordAllocFree is the alloc-guard: the enabled steady state
// records every event kind with zero allocations per operation.
func TestRecordAllocFree(t *testing.T) {
	rec := flight.New(4, 1024)
	flight.Enable(rec)
	defer flight.Disable()
	name := flight.RegisterName("alloc-probe")
	allocs := testing.AllocsPerRun(1000, func() {
		r := flight.Rec()
		r.Begin(0, 0, name)
		r.Kernel(0, 1, name, 100, 10)
		r.Instant(1, 0, name, 7)
		r.Send(0, 1, 64, 3)
		r.Recv(0, 1, 64, 3)
		r.End(0, 0, name)
	})
	if allocs != 0 { //repro:bitwise exact allocation count
		t.Fatalf("record path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestRegisterNameInterns pins registry semantics: re-registration is
// idempotent and NameOf inverts RegisterName.
func TestRegisterNameInterns(t *testing.T) {
	a := flight.RegisterName("intern-probe")
	b := flight.RegisterName("intern-probe")
	if a != b {
		t.Fatalf("re-registration returned %d then %d", a, b)
	}
	if got := flight.NameOf(a); got != "intern-probe" {
		t.Fatalf("NameOf(%d) = %q", a, got)
	}
	if got := flight.NameOf(255); got != "?" {
		t.Fatalf("NameOf(unregistered) = %q, want ?", got)
	}
}

// TestDistributedDropsAnonymous: a NewDistributed recorder suppresses
// AnonPid events at record time so rank rings hold only rank
// timelines; rank-attributed events still record.
func TestDistributedDropsAnonymous(t *testing.T) {
	rec := flight.NewDistributed(2, 16)
	name := flight.RegisterName("anon-probe")
	rec.Begin(flight.AnonPid, 0, name)
	rec.Kernel(flight.AnonPid, 3, name, 1, 1)
	if got := rec.TotalCount(); got != 0 {
		t.Fatalf("distributed recorder kept %d anonymous events", got)
	}
	rec.Begin(1, 0, name)
	rec.Send(0, 1, 4, 0)
	if got := rec.TotalCount(); got != 2 {
		t.Fatalf("rank events recorded = %d, want 2", got)
	}
}
