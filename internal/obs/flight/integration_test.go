package flight_test

import (
	"bytes"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/cpals"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/par"
	"repro/internal/tensor"
)

// countKinds runs one interior-mode kernel pass under a fresh recorder
// and returns the per-kind event totals.
func countKinds(t *testing.T, x *tensor.Dense, factors []*tensor.Matrix, workers int) [flight.NumKinds]int64 {
	t.Helper()
	rec := flight.New(8, 1<<14)
	flight.Enable(rec)
	defer flight.Disable()
	b := tensor.NewMatrix(x.Dim(1), factors[0].Cols())
	ws := kernel.NewWorkspace(x.Dims(), factors[0].Cols(), 1)
	kernel.FastInto(b, x, factors, 1, workers, ws)
	var out [flight.NumKinds]int64
	for k := flight.Kind(0); k < flight.NumKinds; k++ {
		out[k] = rec.Count(k)
	}
	return out
}

// TestEventTotalsWorkerIndependent pins the tracer to the same
// contract as the obs counters: event totals depend only on the
// problem, never on the worker count — slab chunks are a fixed
// schedule, so only their thread-row attribution varies.
func TestEventTotalsWorkerIndependent(t *testing.T) {
	dims := []int{24, 20, 18}
	R := 8
	factors := tensor.RandomFactors(11, dims, R)
	x := tensor.FromFactors(factors)

	base := countKinds(t, x, factors, 1)
	if base[flight.KindBegin] == 0 || base[flight.KindKernel] == 0 {
		t.Fatalf("baseline recorded no span/kernel events: %v", base)
	}
	if base[flight.KindBegin] != base[flight.KindEnd] {
		t.Fatalf("begin/end mismatch at workers=1: %d vs %d", base[flight.KindBegin], base[flight.KindEnd])
	}
	for _, workers := range []int{2, 3, 7} {
		got := countKinds(t, x, factors, workers)
		if got != base {
			t.Fatalf("event totals at workers=%d = %v, want %v (workers=1)", workers, got, base)
		}
	}
}

// TestStationaryTraceMatchesEq14 runs Algorithm 3 under a distributed
// recorder and checks the exported trace against the paper's Eq. (14)
// schedule: per-rank send words equal the closed form, and per-rank
// send-event counts equal the bucket collectives' q-1 messages summed
// over the per-mode All-Gathers plus the mode-n Reduce-Scatter.
func TestStationaryTraceMatchesEq14(t *testing.T) {
	dims := []int{8, 8, 8}
	R := 4
	n := 0
	shape := []int{2, 2, 2}
	P := 8
	factors := tensor.RandomFactors(7, dims, R)
	x := tensor.FromFactors(factors)

	rec := flight.NewDistributed(P, 1<<12)
	flight.Enable(rec)
	defer flight.Disable()
	if _, err := par.Stationary(x, factors, n, shape); err != nil {
		t.Fatal(err)
	}
	flight.Disable()

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := flight.Validate(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	// Eq. (14): sum_k (P/P_k - 1) * I_k R / P words sent per rank
	// (balanced distribution: dims divisible by the grid).
	m := costmodel.Model{Dims: []float64{8, 8, 8}, R: float64(R)}
	wantWords := int64(m.Alg3Words([]float64{2, 2, 2}))
	// Bucket collectives send q_k - 1 messages per rank: the mode-k
	// All-Gathers for k != n plus the mode-n Reduce-Scatter — with
	// nnz(A(k)_p) = nnz(B(n)_p) the mode-n term needs no special case,
	// exactly as in the closed form.
	wantEvents := 0
	for k := range shape {
		wantEvents += P/shape[k] - 1
	}
	for r := 0; r < P; r++ {
		if got := sum.SendWords[r]; got != wantWords {
			t.Errorf("rank %d send words = %d, Eq. (14) = %d", r, got, wantWords)
		}
		if got := sum.SendEvents[r]; got != wantEvents {
			t.Errorf("rank %d send events = %d, schedule = %d", r, got, wantEvents)
		}
		if sum.RecvWords[r] != wantWords || sum.RecvEvents[r] != wantEvents {
			t.Errorf("rank %d recv side = %d words / %d events, want %d / %d",
				r, sum.RecvWords[r], sum.RecvEvents[r], wantWords, wantEvents)
		}
	}
	if sum.Flows != P*wantEvents {
		t.Errorf("flows = %d, want %d (every Send paired with its Recv)", sum.Flows, P*wantEvents)
	}
}

// TestParallelCPALSTraceFlowsPair is the acceptance run: parallel
// CP-ALS on a 4x4x4 simnet grid exports a trace whose Send→Recv flow
// events exactly pair up and whose per-rank comm event counts equal
// the bucket-collective schedule Eq. (14) counts — cross-checked
// against the obs comm counters word for word.
func TestParallelCPALSTraceFlowsPair(t *testing.T) {
	dims := []int{64, 64, 64}
	R := 2
	shape := []int{4, 4, 4}
	P := 64
	truth := tensor.RandomFactors(23, dims, R)
	x := tensor.FromFactors(truth)

	rec := flight.NewDistributed(P, 1<<12)
	flight.Enable(rec)
	defer flight.Disable()
	col := obs.New(P)
	obs.Enable(col)
	defer obs.Disable()

	res, err := cpals.DecomposeParallel(x, shape, cpals.Options{R: R, MaxIters: 1, Tol: 0, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	flight.Disable()
	obs.Disable()
	iters := len(res.Trace)

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := flight.Validate(buf.Bytes()) // errors if any flow is unpaired
	if err != nil {
		t.Fatal(err)
	}

	// Per-rank send events from the collective schedule: every bucket
	// collective over q ranks sends q-1 messages per member, and
	// AllReduce = ReduceScatter + AllGather. Per sweep and mode: the
	// Eq. (14) MTTKRP schedule (hyperslice gathers for k != n plus the
	// mode-n reduce-scatter) plus one world Gram AllReduce; outside the
	// sweep: the normX AllReduce, N initial Gram AllReduces, and one
	// fit AllReduce per iteration.
	q := P / shape[0] // 16: all hyperslices have this size on the cubic grid
	ar := 2 * (P - 1)
	perMode := (len(shape)-1)*(q-1) + (q - 1) + ar
	wantEvents := ar + len(shape)*ar + iters*(len(shape)*perMode+ar)
	totalFlows := 0
	for r := 0; r < P; r++ {
		if got := sum.SendEvents[r]; got != wantEvents {
			t.Errorf("rank %d send events = %d, want %d", r, got, wantEvents)
		}
		if sum.SendEvents[r] != sum.RecvEvents[r] {
			t.Errorf("rank %d: %d sends vs %d recvs", r, sum.SendEvents[r], sum.RecvEvents[r])
		}
		totalFlows += sum.SendEvents[r]
	}
	if sum.Flows != totalFlows {
		t.Errorf("flows = %d, want %d (exact Send→Recv pairing)", sum.Flows, totalFlows)
	}

	// The trace's words agree with the obs comm counters exactly.
	totals := col.Totals()
	if got := sum.TotalSendWords(); got != totals.CommSent {
		t.Errorf("trace send words = %d, obs comm_sent = %d", got, totals.CommSent)
	}
	var recvWords int64
	for _, w := range sum.RecvWords {
		recvWords += w //repro:ignore determinism integer accumulation is exact in any order
	}
	if recvWords != totals.CommRecv {
		t.Errorf("trace recv words = %d, obs comm_recv = %d", recvWords, totals.CommRecv)
	}
}
