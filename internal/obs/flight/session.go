package flight

import "os"

// StartTrace enables a fresh package-level recorder for one
// command-line run — NewDistributed when ranks > 0, so rank timelines
// are not diluted by anonymous engine events, and a shared-memory New
// otherwise — and returns a flush function that stops recording and
// writes the Chrome trace JSON to path. Deferred flushes do not run
// when a command leaves through os.Exit; flush before exit-code gates
// when the trace must survive a failure.
func StartTrace(path string, ranks int) func() error {
	var rec *Recorder
	if ranks > 0 {
		rec = NewDistributed(ranks, DefaultRingCap)
	} else {
		rec = New(0, DefaultRingCap)
	}
	Enable(rec)
	return func() error {
		Disable()
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := rec.WriteTrace(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		return f.Close()
	}
}
