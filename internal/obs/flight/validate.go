// Trace validation: a strict structural checker for the exported
// Chrome trace-event JSON, used by cmd/tracecheck, the ci.sh trace
// smoke, and the integration tests that pin the Eq. (14) schedule.
package flight

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Summary aggregates what Validate saw in a trace document.
type Summary struct {
	Events   int // total traceEvents entries
	Metadata int // ph "M"
	Spans    int // ph "X" (excluding comm send/recv markers)
	Instants int // ph "i"
	Flows    int // matched s/f pairs

	SendEvents map[int]int   // per pid: comm send slices
	RecvEvents map[int]int   // per pid: comm recv slices
	SendWords  map[int]int64 // per pid: words summed over send slices
	RecvWords  map[int]int64 // per pid: words summed over recv slices
}

// TotalSendWords sums SendWords over all pids.
func (s *Summary) TotalSendWords() int64 {
	var t int64
	for _, w := range s.SendWords {
		t += w //repro:ignore determinism integer accumulation is exact in any order
	}
	return t
}

// validPhases are the phase types the exporter emits.
var validPhases = map[string]bool{"M": true, "X": true, "i": true, "s": true, "f": true}

// Validate parses data as a Chrome trace-event JSON object, checks it
// against the subset of the trace-event schema the exporter emits, and
// verifies that every flow id has exactly one "s" and one "f" event
// with s.ts <= f.ts (Send→Recv pairs pair up exactly). It returns a
// traffic summary on success.
func Validate(data []byte) (*Summary, error) {
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("flight: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return nil, fmt.Errorf("flight: trace has no traceEvents array")
	}
	if doc.DisplayTimeUnit != "ms" && doc.DisplayTimeUnit != "ns" {
		return nil, fmt.Errorf("flight: displayTimeUnit %q (want ms or ns)", doc.DisplayTimeUnit)
	}

	sum := &Summary{
		SendEvents: map[int]int{},
		RecvEvents: map[int]int{},
		SendWords:  map[int]int64{},
		RecvWords:  map[int]int64{},
	}
	type flowHalf struct {
		sTS, fTS     float64
		haveS, haveF bool
	}
	flows := map[string]*flowHalf{}

	num := func(ev map[string]any, key string) (float64, bool) {
		v, ok := ev[key].(float64)
		return v, ok
	}
	str := func(ev map[string]any, key string) (string, bool) {
		v, ok := ev[key].(string)
		return v, ok
	}

	for i, ev := range doc.TraceEvents {
		ph, ok := str(ev, "ph")
		if !ok || !validPhases[ph] {
			return nil, fmt.Errorf("flight: event %d has missing or unsupported ph %v", i, ev["ph"])
		}
		if _, ok := num(ev, "pid"); !ok {
			return nil, fmt.Errorf("flight: event %d (ph %s) has no numeric pid", i, ph)
		}
		if _, ok := num(ev, "tid"); !ok {
			return nil, fmt.Errorf("flight: event %d (ph %s) has no numeric tid", i, ph)
		}
		sum.Events++
		switch ph {
		case "M":
			sum.Metadata++
			name, _ := str(ev, "name")
			if name != "process_name" && name != "thread_name" {
				return nil, fmt.Errorf("flight: event %d: metadata name %q", i, name)
			}
			continue
		}
		ts, ok := num(ev, "ts")
		if !ok || ts < 0 {
			return nil, fmt.Errorf("flight: event %d (ph %s) has missing or negative ts", i, ph)
		}
		switch ph {
		case "X":
			dur, ok := num(ev, "dur")
			if !ok || dur < 0 {
				return nil, fmt.Errorf("flight: event %d: X event needs dur >= 0", i)
			}
			name, _ := str(ev, "name")
			cat, _ := str(ev, "cat")
			pid := int(mustNum(ev, "pid"))
			if cat == "comm" && name == "send" {
				sum.SendEvents[pid]++
				sum.SendWords[pid] += argWords(ev)
			} else if cat == "comm" && name == "recv" {
				sum.RecvEvents[pid]++
				sum.RecvWords[pid] += argWords(ev)
			} else {
				sum.Spans++
			}
		case "i":
			sum.Instants++
		case "s", "f":
			id, ok := str(ev, "id")
			if !ok || id == "" {
				return nil, fmt.Errorf("flight: event %d: flow %s without id", i, ph)
			}
			h := flows[id]
			if h == nil {
				h = &flowHalf{}
				flows[id] = h
			}
			if ph == "s" {
				if h.haveS {
					return nil, fmt.Errorf("flight: flow %q has more than one start event", id)
				}
				h.haveS, h.sTS = true, ts
			} else {
				if h.haveF {
					return nil, fmt.Errorf("flight: flow %q has more than one finish event", id)
				}
				if bp, _ := str(ev, "bp"); bp != "e" {
					return nil, fmt.Errorf("flight: flow finish %q without bp \"e\"", id)
				}
				h.haveF, h.fTS = true, ts
			}
		}
	}

	var ids []string
	for id := range flows {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		h := flows[id]
		if !h.haveS || !h.haveF {
			return nil, fmt.Errorf("flight: flow %q is unpaired (start=%v finish=%v)", id, h.haveS, h.haveF)
		}
		if h.fTS < h.sTS {
			return nil, fmt.Errorf("flight: flow %q finishes at %v before it starts at %v", id, h.fTS, h.sTS)
		}
		sum.Flows++
	}
	return sum, nil
}

// mustNum reads a numeric field already known present.
func mustNum(ev map[string]any, key string) float64 {
	v, _ := ev[key].(float64)
	return v
}

// argWords reads args.words from a comm slice (0 when absent).
func argWords(ev map[string]any) int64 {
	args, _ := ev["args"].(map[string]any)
	w, _ := args["words"].(float64)
	return int64(w)
}
