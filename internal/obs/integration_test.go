package obs_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/workload"

	"repro/internal/dimtree"
)

// The streaming-model counters are defined at kernel-call granularity,
// so the aggregated totals for the same problem must be identical at
// every worker count — parallelism moves whole counted units between
// slabs, never fractions. (Allocs/Bytes are process-wide and excluded.)
func TestEngineCountersWorkerIndependent(t *testing.T) {
	inst, err := workload.Generate(workload.Spec{Dims: []int{12, 10, 8, 6}, R: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	countWork := func(tot obs.Totals) [3]int64 {
		return [3]int64{tot.WordsRead, tot.WordsWritten, tot.Flops}
	}

	col := obs.New(8)
	obs.Enable(col)
	defer obs.Disable()

	var kernelRef, treeRef [3]int64
	for i, workers := range []int{1, 2, 7} {
		col.Reset()
		b := tensor.NewMatrix(inst.X.Dim(1), 5)
		kernel.FastInto(b, inst.X, inst.Factors, 1, workers, nil)
		got := countWork(col.Totals())
		if i == 0 {
			kernelRef = got
		} else if got != kernelRef {
			t.Errorf("kernel: workers=%d counters %v, want %v", workers, got, kernelRef)
		}
	}
	for i, workers := range []int{1, 2, 7} {
		col.Reset()
		eng := dimtree.NewEngine(workers)
		eng.AllModes(inst.X, inst.Factors)
		got := countWork(col.Totals())
		if i == 0 {
			treeRef = got
		} else if got != treeRef {
			t.Errorf("dimtree: workers=%d counters %v, want %v", workers, got, treeRef)
		}
	}
	if kernelRef == ([3]int64{}) || treeRef == ([3]int64{}) {
		t.Fatalf("instrumentation recorded nothing: kernel %v, tree %v", kernelRef, treeRef)
	}
}

// The kernel's streaming-model flop count must agree with the engine's
// own arithmetic accounting (Result.Flops), tying the new counters to
// the pre-existing ground truth.
func TestDimTreeFlopCountersMatchEngine(t *testing.T) {
	inst, err := workload.Generate(workload.Spec{Dims: []int{9, 8, 7}, R: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	col := obs.New(1)
	obs.Enable(col)
	defer obs.Disable()
	res := dimtree.AllModesWorkers(inst.X, inst.Factors, 1)
	tot := col.Totals()
	// The streaming count includes the KR-weighted interior folds the
	// engine also books, so the two totals agree exactly for 3-way
	// trees (root GEMMs + partial GEMV passes + folds + KRP panels).
	if tot.Flops != res.Flops {
		t.Fatalf("collector flops %d != engine accounting %d", tot.Flops, res.Flops)
	}
}
