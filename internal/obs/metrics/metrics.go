// Package metrics is a stdlib-only Prometheus client: a registry of
// counters, gauges, and fixed-bucket histograms rendered in the text
// exposition format (version 0.0.4) that any Prometheus-compatible
// scraper ingests. It exists so cmd/obsserve can export the obs
// layer's measured words and bound ratios as scrapeable SLO metrics
// ("within 4x of the paper's lower bound" as a dashboard alert)
// without pulling a dependency into the module.
//
// Update paths are atomic and allocation-free; rendering takes the
// registry lock once per scrape. Metric and label names are validated
// at registration (programmer errors panic there, never on the update
// or scrape path).
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families in registration order.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name, help, typ string
	series          []*series
	bySuffix        map[string]bool // label-set dedup
}

type series struct {
	labels string // pre-rendered {k="v",...} or ""

	ival atomic.Int64  // counter
	fval atomic.Uint64 // gauge (Float64bits)
	fn   func() float64

	hist *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ s *series }

// Add increases the counter by n (negative n panics: counters only go
// up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decreased")
	}
	c.s.ival.Add(n)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.s.ival.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.s.ival.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.fval.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.fval.Load()) }

// Histogram is a fixed-bucket latency/size histogram. Buckets are
// cumulative at render time; Observe is an atomic add per bucket plus
// a CAS loop on the float sum.
type Histogram struct {
	upper  []float64 // ascending; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // Float64bits
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// register adds a series under (name, labels), creating or reusing the
// family. Conflicting types or duplicate label sets panic.
func (r *Registry) register(name, help, typ string, labels []string) *series {
	validName(name)
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, bySuffix: make(map[string]bool)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
	}
	if f.bySuffix[ls] {
		panic(fmt.Sprintf("metrics: duplicate series %s%s", name, ls))
	}
	f.bySuffix[ls] = true
	s := &series{labels: ls}
	f.series = append(f.series, s)
	return s
}

// Counter registers a counter series. labels are key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return &Counter{s: r.register(name, help, "counter", labels)}
}

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return &Gauge{s: r.register(name, help, "gauge", labels)}
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time. fn must be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, "counter", labels).fn = fn
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, "gauge", labels).fn = fn
}

// Histogram registers a histogram series with the given ascending
// bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if len(buckets) == 0 {
		panic("metrics: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram buckets must ascend")
		}
	}
	h := &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1),
	}
	r.register(name, help, "histogram", labels).hist = h
	return h
}

// WriteText renders every family in the Prometheus text exposition
// format, families in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.families {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.hist != nil:
				writeHistogram(&b, f.name, s.labels, s.hist)
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, fmtFloat(s.fn()))
			case f.typ == "counter":
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.ival.Load())
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, fmtFloat(math.Float64frombits(s.fval.Load())))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry at scrape time.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	var cum int64
	for i, upper := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", fmtFloat(upper)), cum)
	}
	cum += h.counts[len(h.upper)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, fmtFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.count.Load())
}

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels turns key, value pairs into a sorted, escaped
// {k="v",...} suffix ("" for no labels).
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: labels must be key, value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		validLabel(kv[i])
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabel splices one extra label (the histogram "le") into a
// rendered label suffix.
func mergeLabel(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validName(name string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid metric name %q", name))
		}
	}
}

func validLabel(name string) {
	if name == "" || name == "le" {
		panic(fmt.Sprintf("metrics: invalid label name %q", name))
	}
	for i, c := range name {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid label name %q", name))
		}
	}
}
