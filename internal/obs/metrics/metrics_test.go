package metrics_test

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs/metrics"
)

func fullRegistry() (*metrics.Registry, *metrics.Histogram) {
	r := metrics.NewRegistry()
	c := r.Counter("repro_iterations_total", "Engine passes completed.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("repro_bound_ratio", "Measured words over the lower bound.", "bound", "seq-best")
	g.Set(3.5)
	r.GaugeFunc("repro_up", "Constant liveness probe.", func() float64 { return 1 })
	r.CounterFunc("repro_words_total", "Measured words.", func() float64 { return 12345 }, "kind", "read")
	h := r.Histogram("repro_iteration_seconds", "Engine pass latency.",
		[]float64{0.001, 0.01, 0.1, 1}, "algo", "fast")
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	return r, h
}

// parseExposition is a strict checker for the subset of the Prometheus
// text exposition format (version 0.0.4) the registry renders: HELP
// then TYPE precede every family's samples, sample lines parse as
// name{labels} value, histogram buckets are cumulative and end at
// +Inf, and _count equals the +Inf bucket.
func parseExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	samples := map[string]string{}
	typed := map[string]string{}
	var curFamily string
	sawHelp := map[string]bool{}
	type histState struct {
		prev    int64
		infSeen bool
		count   int64
		lastLe  float64
	}
	hists := map[string]*histState{}

	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without docstring: %q", ln+1, line)
			}
			if sawHelp[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			sawHelp[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, typ)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			typed[name] = typ
			curFamily = name
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			name := line
			labels := ""
			if i := strings.IndexByte(line, '{'); i >= 0 {
				j := strings.LastIndexByte(line, '}')
				if j < i {
					t.Fatalf("line %d: unbalanced label braces: %q", ln+1, line)
				}
				name, labels = line[:i], line[i+1:j]
				line = line[:i] + line[j+1:]
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("line %d: sample is not `name value`: %q", ln+1, line)
			}
			name = fields[0]
			val := fields[1]
			if val != "+Inf" && val != "-Inf" && val != "NaN" {
				if _, err := strconv.ParseFloat(val, 64); err != nil {
					t.Fatalf("line %d: unparseable sample value %q", ln+1, val)
				}
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if base != curFamily {
				t.Fatalf("line %d: sample %s outside its family's TYPE block (current %s)", ln+1, name, curFamily)
			}
			if typed[curFamily] == "" {
				t.Fatalf("line %d: sample %s before any TYPE", ln+1, name)
			}
			for _, kv := range splitLabels(labels) {
				k, v, ok := strings.Cut(kv, "=")
				if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("line %d: malformed label %q", ln+1, kv)
				}
				_ = k
			}
			if strings.HasSuffix(name, "_bucket") {
				h := hists[base]
				if h == nil {
					h = &histState{lastLe: math.Inf(-1)}
					hists[base] = h
				}
				le := leOf(t, labels)
				if le <= h.lastLe {
					t.Fatalf("line %d: bucket le %v not ascending after %v", ln+1, le, h.lastLe)
				}
				h.lastLe = le
				cum, _ := strconv.ParseInt(val, 10, 64)
				if cum < h.prev {
					t.Fatalf("line %d: bucket counts not cumulative: %d after %d", ln+1, cum, h.prev)
				}
				h.prev = cum
				if math.IsInf(le, 1) {
					h.infSeen = true
				}
			}
			if strings.HasSuffix(name, "_count") {
				h := hists[base]
				if h == nil || !h.infSeen {
					t.Fatalf("line %d: %s before its +Inf bucket", ln+1, name)
				}
				h.count, _ = strconv.ParseInt(val, 10, 64)
				if h.count != h.prev {
					t.Fatalf("line %d: _count %d != +Inf bucket %d", ln+1, h.count, h.prev)
				}
			}
			samples[name+"{"+labels+"}"] = val
		}
	}
	return samples
}

// splitLabels splits a rendered label body on commas outside quotes.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func leOf(t *testing.T, labels string) float64 {
	t.Helper()
	for _, kv := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(kv, `le="`); ok {
			v = strings.TrimSuffix(v, `"`)
			if v == "+Inf" {
				return math.Inf(1)
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("bad le %q", v)
			}
			return f
		}
	}
	t.Fatalf("bucket without le in %q", labels)
	return 0
}

// TestExpositionFormatParses renders a registry with every metric kind
// and strictly parses the exposition text.
func TestExpositionFormatParses(t *testing.T) {
	r, _ := fullRegistry()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())

	expect := map[string]string{
		"repro_iterations_total{}":                               "42",
		`repro_bound_ratio{bound="seq-best"}`:                    "3.5",
		"repro_up{}":                                             "1",
		`repro_words_total{kind="read"}`:                         "12345",
		`repro_iteration_seconds_bucket{algo="fast",le="0.001"}`: "1",
		`repro_iteration_seconds_bucket{algo="fast",le="0.01"}`:  "1",
		`repro_iteration_seconds_bucket{algo="fast",le="0.1"}`:   "3",
		`repro_iteration_seconds_bucket{algo="fast",le="1"}`:     "3",
		`repro_iteration_seconds_bucket{algo="fast",le="+Inf"}`:  "4",
		`repro_iteration_seconds_count{algo="fast"}`:             "4",
	}
	for key, want := range expect {
		if got := samples[key]; got != want {
			t.Errorf("%s = %q, want %q", key, got, want)
		}
	}
	sum, err := strconv.ParseFloat(samples[`repro_iteration_seconds_sum{algo="fast"}`], 64)
	if err != nil || math.Abs(sum-5.1005) > 1e-9 {
		t.Errorf("histogram sum = %v (err %v), want 5.1005", sum, err)
	}
}

// TestHandlerServesTextFormat pins the scrape endpoint's content type
// and body.
func TestHandlerServesTextFormat(t *testing.T) {
	r, _ := fullRegistry()
	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "# TYPE repro_iterations_total counter") {
		t.Fatalf("scrape body missing TYPE line:\n%s", rr.Body.String())
	}
	parseExposition(t, rr.Body.String())
}

// TestRegistryPanicsOnMisuse pins registration-time validation.
func TestRegistryPanicsOnMisuse(t *testing.T) {
	cases := map[string]func(r *metrics.Registry){
		"bad name":         func(r *metrics.Registry) { r.Counter("0bad", "") },
		"type conflict":    func(r *metrics.Registry) { r.Counter("m", ""); r.Gauge("m", "") },
		"duplicate series": func(r *metrics.Registry) { r.Counter("m", "", "a", "1"); r.Counter("m", "", "a", "1") },
		"odd labels":       func(r *metrics.Registry) { r.Counter("m", "", "only-key") },
		"le label":         func(r *metrics.Registry) { r.Histogram("m", "", []float64{1}, "le", "x") },
		"unsorted buckets": func(r *metrics.Registry) { r.Histogram("m", "", []float64{2, 1}) },
		"counter decrease": func(r *metrics.Registry) { r.Counter("m", "").Add(-1) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn(metrics.NewRegistry())
		}()
	}
}

// TestCounterConcurrency exercises atomic updates from many
// goroutines; the rendered total is exact.
func TestCounterConcurrency(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.Counter("repro_hits_total", "")
	h := r.Histogram("repro_lat", "", []float64{1, 10})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), fmt.Sprintf("repro_hits_total %d", 8000)) {
		t.Fatalf("rendered text missing exact total:\n%s", buf.String())
	}
}
