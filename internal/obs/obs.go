// Package obs is the runtime observability layer: zero-allocation
// counters and phase timers that every engine in the repository reports
// through, plus a Report type that joins the measured totals against
// the paper's communication lower bounds (internal/bounds).
//
// The design mirrors the measurement methodology of the paper's
// experiments (and of the Multi-TTM follow-up): an algorithm's
// *measured* data movement should sit within a small constant factor of
// the applicable lower bound, so measurement has to be cheap enough to
// leave on and precise enough to compare against closed forms.
//
//   - A Collector owns pre-allocated per-worker counter slabs (one
//     cache line per worker; words read/written, flops, collective
//     sends/receives) updated with atomic adds, and a fixed ring of
//     phase spans with per-phase aggregate counts and nanoseconds.
//     Nothing on the update path allocates, ever.
//   - The package-level active collector is never nil: the default is a
//     statically allocated disabled collector whose update methods
//     return after a single branch, so uninstrumented runs pay one
//     atomic pointer load and a predictable branch per instrumentation
//     site — at kernel-call granularity, unmeasurable — and the
//     repolint hotpath-alloc analyzer walks these functions as part of
//     the engine hot paths.
//   - Counter semantics are the streaming model at kernel-call
//     granularity: each GEMM/KRP/fold pass counts its operand words
//     read, result words written, and flops once per invocation. Totals
//     are therefore independent of the worker count (work splits move
//     whole call ranges, never fractions of a counted unit), which
//     TestCounterWorkerIndependence pins.
package obs

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obs/flight"
)

// Counter indexes one slot of a per-worker counter slab.
type Counter uint8

const (
	// WordsRead counts operand words read by instrumented kernels
	// (streaming model: once per kernel invocation).
	WordsRead Counter = iota
	// WordsWritten counts result words written by instrumented kernels.
	WordsWritten
	// Flops counts floating-point operations (multiply-adds count 2).
	Flops
	// CommSent counts words sent through simulated-network collectives.
	CommSent
	// CommRecv counts words received through simulated-network
	// collectives.
	CommRecv

	// NumCounters is the number of counter kinds.
	NumCounters
)

// counterNames indexes Counter; keep in sync with the constants.
var counterNames = [NumCounters]string{
	"words_read", "words_written", "flops", "comm_sent", "comm_recv",
}

// String returns the snake_case counter name used in JSON reports.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter?"
}

// Phase identifies one kind of timed span.
type Phase uint8

const (
	// PhaseKernel covers one KRP-splitting MTTKRP (kernel.FastInto).
	PhaseKernel Phase = iota
	// PhaseKRP covers partial Khatri-Rao panel formation.
	PhaseKRP
	// PhaseTreeRoot covers dimension-tree root contractions (from the
	// tensor).
	PhaseTreeRoot
	// PhaseTreePartial covers dimension-tree partial contractions.
	PhaseTreePartial
	// PhaseSeq covers one instrumented sequential MTTKRP (Algorithms
	// 1-2 and the via-matmul baseline on the two-level memory model).
	PhaseSeq
	// PhaseAllGather covers All-Gather collectives.
	PhaseAllGather
	// PhaseReduceScatter covers Reduce-Scatter collectives.
	PhaseReduceScatter
	// PhaseAllReduce covers All-Reduce collectives.
	PhaseAllReduce
	// PhaseLocal covers a parallel rank's local MTTKRP kernel.
	PhaseLocal
	// PhaseGram covers Gram-matrix formation in ALS/HOOI sweeps.
	PhaseGram
	// PhaseSolve covers normal-equation solves in ALS sweeps.
	PhaseSolve
	// PhaseFit covers fit/objective evaluation.
	PhaseFit
	// PhaseSparse covers one CSF sparse-MTTKRP kernel invocation
	// (sparse.CSF MTTKRPInto/AllModesInto).
	PhaseSparse
	// PhaseExpand covers the expand (input-row distribution) phase of
	// the owner-computes sparse parallelization.
	PhaseExpand
	// PhaseFold covers the fold (partial-output merge) phase of the
	// owner-computes sparse parallelization.
	PhaseFold
	// PhaseTTM covers one mode-k TTM GEMM pass (ttm.TTMInto).
	PhaseTTM
	// PhaseTTMChain covers one multi-TTM chain (ttm.ChainInto), the
	// projection step of Tucker HOOI sweeps.
	PhaseTTMChain

	// NumPhases is the number of phase kinds.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"kernel", "krp", "tree-root", "tree-partial", "seq",
	"allgather", "reducescatter", "allreduce", "local",
	"gram", "solve", "fit", "sparse", "expand", "fold",
	"ttm", "ttm-chain",
}

// String returns the phase name used in JSON reports.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase?"
}

// flightPhase holds the flight-recorder name id of every phase, plus
// the kernel-op names the counter helpers forward, interned once so
// span hot paths carry no strings.
var (
	flightPhase [NumPhases]uint8
	nameGemm    = flight.RegisterName("gemm")
	nameKRP     = flight.RegisterName("krp")
	nameAxpy    = flight.RegisterName("axpy")
	nameCopy    = flight.RegisterName("copy")
)

func init() {
	for p := 0; p < int(NumPhases); p++ {
		flightPhase[p] = flight.RegisterName(phaseNames[p])
	}
}

// slotWords pads each worker's counter slab to one 64-byte cache line
// so concurrent workers never false-share counter words.
const slotWords = 8

// ringCap is the span-ring capacity. The ring wraps, overwriting the
// oldest spans; per-phase aggregates keep exact totals regardless.
const ringCap = 4096

// spanRec is one recorded phase span (start/stop pair) in the ring.
type spanRec struct {
	phase Phase
	start int64 // ns since the collector's base time
	stop  int64
}

// SpanInfo is one exported ring entry.
type SpanInfo struct {
	Phase string `json:"phase"`
	Start int64  `json:"start_ns"`
	Stop  int64  `json:"stop_ns"`
}

// PhaseStat aggregates every span of one phase.
type PhaseStat struct {
	Phase string `json:"phase"`
	Count int64  `json:"count"`
	Nanos int64  `json:"ns"`
}

// Collector accumulates counters and phase spans for one measured run.
// All update methods are safe for concurrent use and allocate nothing;
// construction pre-sizes every buffer. The zero value is a valid
// *disabled* collector (every update is a no-op), which is what backs
// the package default.
type Collector struct {
	on      bool
	workers int
	slabs   []int64 // workers * slotWords, updated atomically

	phaseNs    [NumPhases]int64 // atomic
	phaseCount [NumPhases]int64 // atomic

	ring    []spanRec
	ringPos atomic.Int64

	base         time.Time
	startMallocs uint64
	startBytes   uint64
}

// New returns an enabled collector with per-worker counter slabs for
// the given worker count (<= 0 selects GOMAXPROCS). Counter updates
// tagged with a worker index outside [0, workers) fold into a slab by
// modulus, so the count only affects contention, never totals.
func New(workers int) *Collector {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &Collector{
		on:      true,
		workers: workers,
		slabs:   make([]int64, workers*slotWords),
		ring:    make([]spanRec, ringCap),
	}
	c.Reset()
	return c
}

// Reset zeroes every counter, phase aggregate, and the span ring, and
// re-bases the clock and the process allocation snapshot.
func (c *Collector) Reset() {
	if !c.on {
		return
	}
	for i := range c.slabs {
		atomic.StoreInt64(&c.slabs[i], 0)
	}
	for p := 0; p < int(NumPhases); p++ {
		atomic.StoreInt64(&c.phaseNs[p], 0)
		atomic.StoreInt64(&c.phaseCount[p], 0)
	}
	c.ringPos.Store(0)
	for i := range c.ring {
		c.ring[i] = spanRec{}
	}
	c.base = time.Now()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.startMallocs = ms.Mallocs
	c.startBytes = ms.TotalAlloc
}

// Enabled reports whether the collector records anything.
func (c *Collector) Enabled() bool { return c.on }

// Workers returns the slab count.
func (c *Collector) Workers() int { return c.workers }

// Add adds n to counter ctr on worker w's slab. Any w is accepted
// (folded by modulus); negative w uses slab 0.
func (c *Collector) Add(w int, ctr Counter, n int64) {
	if !c.on {
		return
	}
	if w < 0 || w >= c.workers {
		w = 0
	}
	atomic.AddInt64(&c.slabs[w*slotWords+int(ctr)], n)
}

// Span is an open phase timer returned by Start. The zero value (and
// any span from a disabled collector) is safe to Stop.
type Span struct {
	c     *Collector
	phase Phase
	fl    bool  // mirror the span to the flight recorder on Stop
	rank  int32 // flight process row (AnonPid outside simnet ranks)
	start int64
}

// Start opens a span for phase p on the collector's clock.
func (c *Collector) Start(p Phase) Span {
	if !c.on {
		return Span{}
	}
	return Span{c: c, phase: p, start: int64(time.Since(c.base))}
}

// Stop closes the span: the phase aggregates gain its duration and the
// start/stop pair lands in the ring (wrapping over the oldest entry).
func (s Span) Stop() {
	if s.fl {
		flight.Rec().End(int(s.rank), 0, flightPhase[s.phase])
	}
	c := s.c
	if c == nil || !c.on {
		return
	}
	stop := int64(time.Since(c.base))
	atomic.AddInt64(&c.phaseNs[s.phase], stop-s.start)
	atomic.AddInt64(&c.phaseCount[s.phase], 1)
	i := (c.ringPos.Add(1) - 1) % int64(len(c.ring))
	c.ring[i] = spanRec{phase: s.phase, start: s.start, stop: stop}
}

// Totals is a point-in-time aggregate of every counter slab plus the
// process-wide allocation delta since the last Reset.
type Totals struct {
	WordsRead    int64 `json:"words_read"`
	WordsWritten int64 `json:"words_written"`
	Flops        int64 `json:"flops"`
	CommSent     int64 `json:"comm_sent"`
	CommRecv     int64 `json:"comm_recv"`
	Allocs       int64 `json:"allocs"`
	Bytes        int64 `json:"bytes"`
}

// Words returns total memory traffic: words read plus written.
func (t Totals) Words() int64 { return t.WordsRead + t.WordsWritten }

// CommWords returns total collective traffic: sent plus received.
func (t Totals) CommWords() int64 { return t.CommSent + t.CommRecv }

// Totals sums the per-worker slabs and snapshots the allocation delta.
// Safe to call while workers are still updating (atomic loads); the
// result is then a consistent-per-counter running snapshot.
func (c *Collector) Totals() Totals {
	var t Totals
	if !c.on {
		return t
	}
	sum := func(ctr Counter) int64 {
		var s int64
		for w := 0; w < c.workers; w++ {
			s += atomic.LoadInt64(&c.slabs[w*slotWords+int(ctr)])
		}
		return s
	}
	t.WordsRead = sum(WordsRead)
	t.WordsWritten = sum(WordsWritten)
	t.Flops = sum(Flops)
	t.CommSent = sum(CommSent)
	t.CommRecv = sum(CommRecv)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Allocs = int64(ms.Mallocs - c.startMallocs)
	t.Bytes = int64(ms.TotalAlloc - c.startBytes)
	return t
}

// PhaseStats returns the aggregate of every phase with at least one
// recorded span, in Phase declaration order.
func (c *Collector) PhaseStats() []PhaseStat {
	if !c.on {
		return nil
	}
	var out []PhaseStat
	for p := 0; p < int(NumPhases); p++ {
		n := atomic.LoadInt64(&c.phaseCount[p])
		if n == 0 {
			continue
		}
		out = append(out, PhaseStat{
			Phase: Phase(p).String(),
			Count: n,
			Nanos: atomic.LoadInt64(&c.phaseNs[p]),
		})
	}
	return out
}

// Spans returns the ring contents, oldest first. At most the last
// ringCap spans survive; use PhaseStats for exact totals.
func (c *Collector) Spans() []SpanInfo {
	if !c.on {
		return nil
	}
	pos := c.ringPos.Load()
	n := pos
	if n > int64(len(c.ring)) {
		n = int64(len(c.ring))
	}
	out := make([]SpanInfo, 0, n)
	for i := int64(0); i < n; i++ {
		r := c.ring[(pos-n+i)%int64(len(c.ring))]
		out = append(out, SpanInfo{Phase: r.phase.String(), Start: r.start, Stop: r.stop})
	}
	return out
}

// noop is the permanently disabled default collector. It is a real
// object, so instrumentation sites never test for nil — they load the
// active pointer and call through it unconditionally.
var noop = &Collector{}

// active is the process-wide collector; never nil.
var active atomic.Pointer[Collector]

func init() { active.Store(noop) }

// Enable installs c as the process-wide active collector. A nil c
// restores the disabled default.
func Enable(c *Collector) {
	if c == nil {
		c = noop
	}
	active.Store(c)
}

// Disable restores the disabled default collector.
func Disable() { active.Store(noop) }

// Active returns the process-wide collector (the disabled default when
// none is enabled); never nil.
func Active() *Collector { return active.Load() }

// Enabled reports whether an enabled collector is installed.
func Enabled() bool { return active.Load().on }

// The package-level helpers below are the instrumentation API the
// engines call. Each is a pointer load plus a branch when disabled.

// Add adds n to counter ctr on slab 0 of the active collector.
func Add(ctr Counter, n int64) { active.Load().Add(0, ctr, n) }

// AddWorker adds n to counter ctr on worker w's slab.
func AddWorker(w int, ctr Counter, n int64) { active.Load().Add(w, ctr, n) }

// Gemm records one C = A*B pass with C m x n and inner extent k:
// 2mnk flops, operand reads mk + kn, result writes mn. The transposed
// kernels map their shapes onto the same (m, k, n) triple.
func Gemm(m, k, n int) {
	mm, kk, nn := int64(m), int64(k), int64(n)
	if r := flight.Rec(); r.Enabled() {
		r.Kernel(flight.AnonPid, 0, nameGemm, 2*mm*kk*nn, mm*kk+kk*nn+mm*nn)
	}
	c := active.Load()
	if !c.on {
		return
	}
	c.Add(0, Flops, 2*mm*kk*nn)
	c.Add(0, WordsRead, mm*kk+kk*nn)
	c.Add(0, WordsWritten, mm*nn)
}

// KRP records one Khatri-Rao panel formation: rows*r result words
// written (and counted as flops, matching the engines' accounting) and
// sumRows*r factor words read.
func KRP(rows, sumRows, r int) {
	out := int64(rows) * int64(r)
	if fr := flight.Rec(); fr.Enabled() {
		fr.Kernel(flight.AnonPid, 0, nameKRP, out, int64(sumRows)*int64(r)+out)
	}
	c := active.Load()
	if !c.on {
		return
	}
	c.Add(0, Flops, out)
	c.Add(0, WordsRead, int64(sumRows)*int64(r))
	c.Add(0, WordsWritten, out)
}

// Axpy records folds scaled-accumulate passes of length n each:
// 2*folds*n flops, folds*n reads and writes.
func Axpy(folds, n int) {
	fn := int64(folds) * int64(n)
	if fr := flight.Rec(); fr.Enabled() {
		fr.Kernel(flight.AnonPid, 0, nameAxpy, 2*fn, 2*fn)
	}
	c := active.Load()
	if !c.on {
		return
	}
	c.Add(0, Flops, 2*fn)
	c.Add(0, WordsRead, fn)
	c.Add(0, WordsWritten, fn)
}

// Copy records a straight move of n words: n reads, n writes, no
// flops.
func Copy(n int) {
	if fr := flight.Rec(); fr.Enabled() {
		fr.Kernel(flight.AnonPid, 0, nameCopy, 0, 2*int64(n))
	}
	c := active.Load()
	if !c.on {
		return
	}
	c.Add(0, WordsRead, int64(n))
	c.Add(0, WordsWritten, int64(n))
}

// Comm records words moved through a simulated-network endpoint on
// rank's slab.
func Comm(rank int, sent, recv int64) {
	c := active.Load()
	if !c.on {
		return
	}
	if sent != 0 {
		c.Add(rank, CommSent, sent)
	}
	if recv != 0 {
		c.Add(rank, CommRecv, recv)
	}
}

// Start opens a span for phase p on the active collector, mirrored to
// the flight recorder as an anonymous (engine-row) span when tracing
// is enabled. When both layers are disabled this is two atomic loads
// and two branches.
func Start(p Phase) Span { return StartRank(flight.AnonPid, p) }

// StartRank opens a span for phase p attributed to a simnet rank: the
// obs collector treats it exactly like Start (phase aggregates are
// rank-agnostic), while the flight recorder renders it on the rank's
// process row. Pass flight.AnonPid when no rank applies.
func StartRank(rank int, p Phase) Span {
	s := active.Load().Start(p)
	if r := flight.Rec(); r.Enabled() {
		r.Begin(rank, 0, flightPhase[p])
		s.fl = true
		s.rank = int32(rank)
		s.phase = p
	}
	return s
}
