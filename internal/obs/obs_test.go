package obs

import (
	"sync"
	"testing"
)

// The counter hot path must not allocate — same contract as the
// kernel's zero-alloc steady state, checked the same way. This covers
// both the enabled and the disabled (no-op default) collector.
func TestCounterHotPathZeroAlloc(t *testing.T) {
	c := New(4)
	Enable(c)
	defer Disable()
	if n := testing.AllocsPerRun(100, func() {
		Add(WordsRead, 64)
		AddWorker(3, Flops, 128)
		Gemm(8, 8, 8)
		KRP(16, 8, 4)
		Axpy(4, 16)
		Copy(32)
		Comm(2, 10, 10)
		sp := Start(PhaseKernel)
		sp.Stop()
	}); n != 0 {
		t.Fatalf("enabled counter hot path allocates %.1f per run, want 0", n)
	}
	Disable()
	if n := testing.AllocsPerRun(100, func() {
		Add(WordsRead, 64)
		Gemm(8, 8, 8)
		sp := Start(PhaseKernel)
		sp.Stop()
	}); n != 0 {
		t.Fatalf("disabled counter hot path allocates %.1f per run, want 0", n)
	}
}

// Aggregated totals must not depend on how updates spread over worker
// slabs: the same logical work reported through 1, 3, or 16 workers
// (including out-of-range indices, which fold) sums identically.
func TestCounterWorkerIndependence(t *testing.T) {
	const updates = 1000
	var want Totals
	ref := New(1)
	for i := 0; i < updates; i++ {
		ref.Add(0, WordsRead, int64(i))
		ref.Add(0, Flops, 2*int64(i))
	}
	want = ref.Totals()

	for _, workers := range []int{1, 3, 16} {
		c := New(workers)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < updates; i += 4 {
					c.Add(i%32-1, WordsRead, int64(i)) // exercises folding and negatives
					c.Add(w, Flops, 2*int64(i))
				}
			}(w)
		}
		wg.Wait()
		got := c.Totals()
		if got.WordsRead != want.WordsRead || got.Flops != want.Flops {
			t.Fatalf("workers=%d: totals %+v, want read=%d flops=%d",
				workers, got, want.WordsRead, want.Flops)
		}
	}
}

// Allocs/Bytes in Totals are process-wide deltas, so they are >= 0 and
// rebased by Reset.
func TestResetRebasesCounters(t *testing.T) {
	c := New(2)
	c.Add(0, WordsRead, 42)
	sp := c.Start(PhaseKRP)
	sp.Stop()
	c.Reset()
	tot := c.Totals()
	if tot.WordsRead != 0 {
		t.Fatalf("WordsRead = %d after Reset", tot.WordsRead)
	}
	if ps := c.PhaseStats(); len(ps) != 0 {
		t.Fatalf("PhaseStats = %v after Reset", ps)
	}
	if sp := c.Spans(); len(sp) != 0 {
		t.Fatalf("Spans = %v after Reset", sp)
	}
}

// The disabled default never records.
func TestNoopCollectorRecordsNothing(t *testing.T) {
	Disable()
	Add(WordsRead, 1000)
	Gemm(10, 10, 10)
	sp := Start(PhaseKernel)
	sp.Stop()
	if tot := Active().Totals(); tot != (Totals{}) {
		t.Fatalf("noop totals = %+v", tot)
	}
	if Enabled() {
		t.Fatal("Enabled() true with no collector installed")
	}
}

// Phase aggregates survive ring wrap-around: the ring keeps only the
// last ringCap spans, the aggregates keep every one.
func TestPhaseAggregatesSurviveRingWrap(t *testing.T) {
	c := New(1)
	total := ringCap + 100
	for i := 0; i < total; i++ {
		sp := c.Start(PhaseGram)
		sp.Stop()
	}
	ps := c.PhaseStats()
	if len(ps) != 1 || ps[0].Phase != "gram" || ps[0].Count != int64(total) {
		t.Fatalf("PhaseStats = %+v, want gram count %d", ps, total)
	}
	if spans := c.Spans(); len(spans) != ringCap {
		t.Fatalf("ring holds %d spans, want %d", len(spans), ringCap)
	}
}

// Span helpers route through the package-level active collector.
func TestHelperSemantics(t *testing.T) {
	c := New(1)
	Enable(c)
	defer Disable()
	Gemm(3, 4, 5)
	KRP(6, 5, 2)
	Axpy(2, 7)
	Copy(9)
	tot := c.Totals()
	wantFlops := int64(2*3*4*5 + 6*2 + 2*2*7)
	if tot.Flops != wantFlops {
		t.Fatalf("Flops = %d, want %d", tot.Flops, wantFlops)
	}
	wantRead := int64(3*4 + 4*5 + 5*2 + 2*7 + 9)
	if tot.WordsRead != wantRead {
		t.Fatalf("WordsRead = %d, want %d", tot.WordsRead, wantRead)
	}
	wantWritten := int64(3*5 + 6*2 + 2*7 + 9)
	if tot.WordsWritten != wantWritten {
		t.Fatalf("WordsWritten = %d, want %d", tot.WordsWritten, wantWritten)
	}
}
