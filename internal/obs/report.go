package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/bounds"
)

// Machine describes the machine model a measured run executed on. Zero
// fields are omitted from JSON: a sequential run has M only, a
// simulated distributed run has P, a shared-memory run has Workers.
type Machine struct {
	M       int64 `json:"m,omitempty"`       // fast memory words (two-level model)
	P       int   `json:"p,omitempty"`       // simulated processors
	Workers int   `json:"workers,omitempty"` // shared-memory goroutines
}

// Report is the per-run JSON document joining measured counters against
// the paper's lower bounds. Bounds maps bound names to word counts;
// Ratios maps "measured/<bound>" to MeasuredWords divided by that
// bound, emitted only for bounds that are positive (the paper's
// expressions go vacuous — zero or negative — for some parameters).
type Report struct {
	Name    string  `json:"name"`
	Algo    string  `json:"algo,omitempty"`
	Dims    []int   `json:"dims"`
	Rank    int     `json:"rank"`
	Mode    int     `json:"mode"`
	Machine Machine `json:"machine"`

	// Counters are the run's measured totals (collector totals, or
	// exact memsim/simnet counts for the instrumented model machines).
	Counters Totals      `json:"counters"`
	Phases   []PhaseStat `json:"phases,omitempty"`

	// MeasuredWords is the headline data-movement figure the ratios
	// divide: loads+stores for sequential runs, max words per processor
	// for parallel runs, streaming-model operand traffic for
	// shared-memory engine runs. It is denominated in the paper's
	// 8-byte words: element counts scale by WordBytes/8 on the way in.
	MeasuredWords int64 `json:"measured_words"`

	// WordBytes is the storage width in bytes of one streamed element:
	// 8 for float64 runs, 4 for the float32 path (0 is treated as 8).
	// The bounds count words, so halving the bytes per element honestly
	// halves the measured traffic joined against them — set this before
	// FillFromCollector or SetMeasuredWords.
	WordBytes int `json:"word_bytes,omitempty"`

	Bounds map[string]float64 `json:"bounds,omitempty"`
	Ratios map[string]float64 `json:"ratios,omitempty"`

	// Plan records the autotuner's decision when the run was planned
	// (engine auto): what was picked and what the cost model predicted,
	// so reports can compare predicted against measured traffic/time.
	Plan *PlanInfo `json:"plan,omitempty"`

	WallNs int64 `json:"wall_ns,omitempty"`
}

// PlanInfo is the planner decision attached to a report. It lives here
// (rather than in internal/plan) so obs stays dependency-free: plan
// imports obs, never the reverse.
type PlanInfo struct {
	Engine           string  `json:"engine"`
	Workers          int     `json:"workers"`
	GemmKC           int     `json:"gemm_kc,omitempty"`
	GemmMC           int     `json:"gemm_mc,omitempty"`
	Chunks           int     `json:"chunks,omitempty"`
	PredictedWords   float64 `json:"predicted_words"`
	PredictedSeconds float64 `json:"predicted_seconds"`
	CalibrationKey   string  `json:"calibration_key,omitempty"`
}

// NewReport starts a report for one measured run.
func NewReport(name, algo string, dims []int, rank, mode int, mach Machine) *Report {
	return &Report{
		Name:    name,
		Algo:    algo,
		Dims:    append([]int(nil), dims...),
		Rank:    rank,
		Mode:    mode,
		Machine: mach,
	}
}

// Problem returns the bounds.Problem this report describes.
func (r *Report) Problem() bounds.Problem {
	return bounds.Problem{Dims: r.Dims, R: r.Rank}
}

// JoinBound records one named lower bound and, when the bound is
// positive and finite, the measured/bound ratio.
func (r *Report) JoinBound(name string, w float64) {
	if r.Bounds == nil {
		r.Bounds = map[string]float64{}
	}
	r.Bounds[name] = w
	if w > 0 && !math.IsInf(w, 0) && !math.IsNaN(w) {
		if r.Ratios == nil {
			r.Ratios = map[string]float64{}
		}
		r.Ratios["measured/"+name] = float64(r.MeasuredWords) / w
	}
}

// JoinSeqBounds joins the sequential bounds for fast memory M words:
// the memory-dependent Theorem 4.1 bound, the trivial Fact 4.1 bound,
// and their max ("seq-best", the operative lower bound).
func (r *Report) JoinSeqBounds(M float64) {
	p := r.Problem()
	r.JoinBound("seq-memdep-thm4.1", bounds.SeqMemDependent(p, M))
	r.JoinBound("seq-trivial-fact4.1", bounds.SeqTrivial(p, M))
	r.JoinBound("seq-best", bounds.SeqBest(p, M))
}

// JoinParBounds joins the parallel bounds for P processors with
// balanced layouts (gamma = delta = 1): the memory-independent
// Theorems 4.2/4.3 and their max ("par-best"), the Corollary 4.2
// combined expression for cubical problems, and — when M > 0 — the
// memory-dependent Corollary 4.1 bound.
func (r *Report) JoinParBounds(P, M float64) {
	p := r.Problem()
	r.JoinBound("par-memindep1-thm4.2", bounds.ParMemIndependent1(p, P, 1, 1))
	r.JoinBound("par-memindep2-thm4.3", bounds.ParMemIndependent2(p, P, 1, 1))
	r.JoinBound("par-best", bounds.ParBest(p, P, 1, 1))
	if cubical(r.Dims) {
		r.JoinBound("par-cubical-cor4.2", bounds.CubicalCombined(p, P))
	}
	if M > 0 {
		r.JoinBound("par-memdep-cor4.1", bounds.ParMemDependent(p, M, P))
	}
}

// JoinMultiTTMBounds joins the Multi-TTM parallel lower bounds
// (arXiv:2207.10437) that govern `sweeps` Tucker HOOI sweeps on P
// processors with the given per-mode ranks: "multittm-core" is the
// single full core chain, "multittm-chain-max" the largest of the
// per-mode projection chains, and "multittm-sweeps" the sum of every
// chain bound in every sweep (the figure a whole run's measured comm
// words joins against). Vacuous (non-positive) per-chain bounds
// contribute zero to the sum.
func (r *Report) JoinMultiTTMBounds(ranks []int, P float64, sweeps int) {
	if sweeps < 1 {
		sweeps = 1
	}
	per := bounds.TuckerSweepBounds(r.Dims, ranks, P)
	core := per[len(per)-1]
	chainMax := math.Inf(-1)
	perSweep := math.Max(core, 0)
	for _, b := range per[:len(per)-1] {
		chainMax = math.Max(chainMax, b)
		perSweep += math.Max(b, 0)
	}
	r.JoinBound("multittm-core", core)
	r.JoinBound("multittm-chain-max", chainMax)
	r.JoinBound("multittm-sweeps", perSweep*float64(sweeps))
}

// Ratio returns the measured/bound ratio for name, or 0 when that
// bound is vacuous or absent.
func (r *Report) Ratio(name string) float64 { return r.Ratios["measured/"+name] }

// ScaleWords converts a streamed-element count into the paper's 8-byte
// words under the report's word size: identity for float64, exactly
// half for float32.
func (r *Report) ScaleWords(elems int64) int64 {
	wb := int64(r.WordBytes)
	if wb == 0 {
		wb = 8
	}
	return elems * wb / 8
}

// SetMeasuredWords records the headline traffic from a streamed
// element count, applying the word-size scaling.
func (r *Report) SetMeasuredWords(elems int64) { r.MeasuredWords = r.ScaleWords(elems) }

// FillFromCollector copies the collector's totals, phase aggregates,
// and — when MeasuredWords is still unset — the streaming-model word
// total into the report.
func (r *Report) FillFromCollector(c *Collector) {
	t := c.Totals()
	r.Counters = t
	r.Phases = c.PhaseStats()
	if r.MeasuredWords == 0 {
		r.MeasuredWords = r.ScaleWords(t.Words())
	}
}

// WriteJSON writes the report as indented JSON (map keys sorted, so
// output is deterministic given deterministic values).
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Format writes the human-readable report.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "obs: %s algo=%s dims=%v R=%d mode=%d", r.Name, r.Algo, r.Dims, r.Rank, r.Mode)
	if r.Machine.M > 0 {
		fmt.Fprintf(w, " M=%d", r.Machine.M)
	}
	if r.Machine.P > 0 {
		fmt.Fprintf(w, " P=%d", r.Machine.P)
	}
	if r.Machine.Workers > 0 {
		fmt.Fprintf(w, " workers=%d", r.Machine.Workers)
	}
	fmt.Fprintln(w)
	t := r.Counters
	fmt.Fprintf(w, "  counters: read=%d written=%d flops=%d", t.WordsRead, t.WordsWritten, t.Flops)
	if t.CommSent+t.CommRecv > 0 {
		fmt.Fprintf(w, " sent=%d recv=%d", t.CommSent, t.CommRecv)
	}
	fmt.Fprintf(w, " allocs=%d bytes=%d\n", t.Allocs, t.Bytes)
	for _, ps := range r.Phases {
		fmt.Fprintf(w, "  phase %-14s count=%-6d total=%v\n", ps.Phase, ps.Count, time.Duration(ps.Nanos))
	}
	if p := r.Plan; p != nil {
		fmt.Fprintf(w, "  plan: engine=%s workers=%d", p.Engine, p.Workers)
		if p.GemmKC > 0 {
			fmt.Fprintf(w, " kc=%d mc=%d", p.GemmKC, p.GemmMC)
		}
		if p.Chunks > 0 {
			fmt.Fprintf(w, " chunks=%d", p.Chunks)
		}
		fmt.Fprintf(w, " predicted_words=%.4g", p.PredictedWords)
		if p.PredictedSeconds > 0 {
			fmt.Fprintf(w, " predicted=%v", time.Duration(p.PredictedSeconds*1e9))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  measured words moved = %d", r.MeasuredWords)
	if r.WordBytes != 0 && r.WordBytes != 8 {
		fmt.Fprintf(w, " (storage word = %d bytes)", r.WordBytes)
	}
	fmt.Fprintln(w)
	for _, name := range sortedKeys(r.Bounds) {
		v := r.Bounds[name]
		if ratio, ok := r.Ratios["measured/"+name]; ok {
			fmt.Fprintf(w, "  bound %-22s %14.4g   ratio %.3f\n", name, v, ratio)
		} else {
			fmt.Fprintf(w, "  bound %-22s %14.4g   (vacuous)\n", name, v)
		}
	}
	if r.WallNs > 0 {
		fmt.Fprintf(w, "  wall time = %v\n", time.Duration(r.WallNs))
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cubical(dims []int) bool {
	for _, d := range dims[1:] {
		if d != dims[0] {
			return false
		}
	}
	return true
}
