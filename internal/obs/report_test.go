package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// goldenReport is a fully deterministic report: counters and phase
// times are pinned, so the emitted JSON must match the checked-in
// fixture byte-for-byte (MarshalIndent sorts map keys).
func goldenReport() *Report {
	rep := NewReport("mttkrp", "blocked", []int{32, 32, 32}, 16, 0, Machine{M: 256})
	rep.Counters = Totals{
		WordsRead:    88064,
		WordsWritten: 18432,
		Flops:        2097152,
	}
	rep.MeasuredWords = 106496
	rep.Phases = []PhaseStat{{Phase: "seq", Count: 1, Nanos: 1500000}}
	rep.JoinSeqBounds(256)
	rep.WallNs = 2000000
	return rep
}

func TestReportGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture: %v (regenerate by writing the got bytes)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report JSON drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

func TestJoinBoundRatioSemantics(t *testing.T) {
	rep := NewReport("x", "a", []int{8, 8}, 4, 0, Machine{})
	rep.MeasuredWords = 100

	rep.JoinBound("positive", 50)
	if r := rep.Ratio("positive"); r != 2 {
		t.Fatalf("ratio = %v, want 2", r)
	}
	// Vacuous bounds are recorded but produce no ratio.
	rep.JoinBound("negative", -10)
	rep.JoinBound("zero", 0)
	rep.JoinBound("nan", math.NaN())
	for _, name := range []string{"negative", "zero", "nan"} {
		if _, ok := rep.Bounds[name]; !ok {
			t.Fatalf("bound %q not recorded", name)
		}
		if r := rep.Ratio(name); r != 0 {
			t.Fatalf("ratio for vacuous bound %q = %v, want 0", name, r)
		}
	}
}

func TestJoinSeqBoundsUsesProblem(t *testing.T) {
	rep := NewReport("x", "blocked", []int{32, 32, 32}, 16, 0, Machine{M: 256})
	rep.MeasuredWords = 106496
	rep.JoinSeqBounds(256)
	for _, name := range []string{"seq-memdep-thm4.1", "seq-trivial-fact4.1", "seq-best"} {
		if _, ok := rep.Bounds[name]; !ok {
			t.Fatalf("missing bound %q: %v", name, rep.Bounds)
		}
	}
	// At these parameters Thm 4.1 is non-vacuous and below the trivial
	// bound, so seq-best equals the trivial bound.
	if rep.Bounds["seq-memdep-thm4.1"] <= 0 {
		t.Fatalf("Thm 4.1 bound %v should be positive at M=256", rep.Bounds["seq-memdep-thm4.1"])
	}
	if rep.Bounds["seq-best"] < rep.Bounds["seq-memdep-thm4.1"] ||
		rep.Bounds["seq-best"] < rep.Bounds["seq-trivial-fact4.1"] {
		t.Fatalf("seq-best %v not the max of its parts", rep.Bounds["seq-best"])
	}
}

func TestJoinParBoundsCubical(t *testing.T) {
	rep := NewReport("x", "stationary", []int{16, 16, 16}, 8, 1, Machine{P: 8})
	rep.MeasuredWords = 288
	rep.JoinParBounds(8, 0)
	if _, ok := rep.Bounds["par-cubical-cor4.2"]; !ok {
		t.Fatal("cubical problem missing Cor 4.2 bound")
	}
	rect := NewReport("x", "stationary", []int{16, 8, 4}, 8, 1, Machine{P: 8})
	rect.MeasuredWords = 288
	rect.JoinParBounds(8, 0)
	if _, ok := rect.Bounds["par-cubical-cor4.2"]; ok {
		t.Fatal("rectangular problem joined the cubical-only bound")
	}
	if _, ok := rect.Bounds["par-memdep-cor4.1"]; ok {
		t.Fatal("M=0 joined the memory-dependent parallel bound")
	}
	rectM := NewReport("x", "stationary", []int{16, 8, 4}, 8, 1, Machine{P: 8, M: 128})
	rectM.JoinParBounds(8, 128)
	if _, ok := rectM.Bounds["par-memdep-cor4.1"]; !ok {
		t.Fatal("M>0 missing the Cor 4.1 bound")
	}
}

// TestPlanInfoSerialization: a planned run's report carries the plan
// block; an unplanned run's report omits it entirely (the golden
// fixture above guards the omission byte-for-byte).
func TestPlanInfoSerialization(t *testing.T) {
	rep := goldenReport()
	rep.Plan = &PlanInfo{
		Engine: "tree", Workers: 4, GemmKC: 256, GemmMC: 128,
		PredictedWords: 1.5e6, PredictedSeconds: 0.002, CalibrationKey: "k",
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"plan"`, `"engine": "tree"`, `"gemm_kc": 256`, `"predicted_words"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("plan JSON missing %s:\n%s", want, buf.Bytes())
		}
	}
	var text bytes.Buffer
	rep.Format(&text)
	if !bytes.Contains(text.Bytes(), []byte("plan: engine=tree workers=4")) {
		t.Errorf("Format missing the plan line:\n%s", text.Bytes())
	}
}
