package par

import (
	"testing"

	"repro/internal/tensor"
)

// Grid-shape ablation (DESIGN.md §6): for a cubical tensor, the
// cubical processor grid communicates less than a maximally skewed
// one-dimensional grid at the same P.
func TestGridShapeAblation(t *testing.T) {
	dims := []int{16, 16, 16}
	R := 8
	x := tensor.RandomDense(61, dims...)
	fs := tensor.RandomFactors(62, dims, R)

	cubical, err := Stationary(x, fs, 0, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Stationary(x, fs, 0, []int{1, 1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if cubical.MaxWords() >= skewed.MaxWords() {
		t.Fatalf("cubical grid (%d words) should beat skewed 1x1x8 (%d words)",
			cubical.MaxWords(), skewed.MaxWords())
	}
	// Both compute the same result, of course.
	if !cubical.B.EqualApprox(skewed.B, 1e-9) {
		t.Fatal("grids disagree on the result")
	}
}

// P0 ablation: with small R and abundant I/P, increasing P0 at fixed P
// only adds tensor-gather traffic.
func TestP0Ablation(t *testing.T) {
	dims := []int{16, 16, 16}
	R := 4
	x := tensor.RandomDense(63, dims...)
	fs := tensor.RandomFactors(64, dims, R)

	p0one, err := General(x, fs, 0, []int{1, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	p0two, err := General(x, fs, 0, []int{2, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p0one.MaxWords() >= p0two.MaxWords() {
		t.Fatalf("small-rank regime: P0=1 (%d words) should beat P0=2 (%d words)",
			p0one.MaxWords(), p0two.MaxWords())
	}
}

// E12 in the parallel context (Section V-C3 / Eq. 17): breaking the
// atomicity of the local kernel changes arithmetic but not a single
// word of communication — per-rank statistics are bitwise identical.
func TestNonAtomicVariantSameComm(t *testing.T) {
	dims := []int{8, 12, 8}
	R := 6
	x := tensor.RandomDense(69, dims...)
	fs := tensor.RandomFactors(70, dims, R)
	shape := []int{2, 2, 2}
	atomic, err := Stationary(x, fs, 1, shape)
	if err != nil {
		t.Fatal(err)
	}
	nonAtomic, err := StationaryWithKernel(x, fs, 1, shape, NonAtomicKernel)
	if err != nil {
		t.Fatal(err)
	}
	if !atomic.B.EqualApprox(nonAtomic.B, 1e-9) {
		t.Fatal("kernels disagree on the result")
	}
	for r := range atomic.Stats {
		if atomic.Stats[r] != nonAtomic.Stats[r] {
			t.Fatalf("rank %d: stats differ: %+v vs %+v",
				r, atomic.Stats[r], nonAtomic.Stats[r])
		}
	}
}

// Measured per-rank storage equals the Eq. (16)/(20) memory models for
// balanced layouts.
func TestResidentMatchesMemoryModel(t *testing.T) {
	dims := []int{8, 8, 8}
	R := 8
	x := tensor.RandomDense(67, dims...)
	fs := tensor.RandomFactors(68, dims, R)

	res3, err := Stationary(x, fs, 0, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Eq. (16): I/P + sum_k (I_k/P_k)*R = 64 + 3*4*8 = 160.
	if got := res3.MaxResident(); got != 160 {
		t.Fatalf("Alg3 resident = %d, Eq.(16) says 160", got)
	}

	res4, err := General(x, fs, 0, []int{2, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Eq. (20): gathered block (4*4*8=128) + sum_k (I_k/P_k)*(R/P0):
	// 128 + (4+4+8)*4 = 192.
	if got := res4.MaxResident(); got != 192 {
		t.Fatalf("Alg4 resident = %d, Eq.(20) says 192", got)
	}
}

// Latency proxy: bucket collectives cost q-1 messages each; the
// stationary algorithm on a 2x2x2 grid runs N = 3 collectives over
// hyperslices of size 4, so 3 * (4-1) messages each way per rank.
func TestMessageCounts(t *testing.T) {
	dims := []int{8, 8, 8}
	x := tensor.RandomDense(65, dims...)
	fs := tensor.RandomFactors(66, dims, 2)
	res, err := Stationary(x, fs, 0, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.MaxMsgs(), int64(2*3*3); got != want {
		t.Fatalf("MaxMsgs = %d, want %d", got, want)
	}
}
