package par

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dimtree"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// AllModesResult carries the per-mode outputs of a shared-gather
// multi-MTTKRP run.
type AllModesResult struct {
	B     []*tensor.Matrix // B[n], reassembled
	Stats []simnet.Stats

	// LocalFlops is each rank's dimension-tree arithmetic; the naive
	// per-mode kernels would cost N * |block| * R * (N+1) instead.
	LocalFlops []int64
}

// MaxWords returns the maximum over ranks of sends+receives.
func (r *AllModesResult) MaxWords() int64 {
	var m int64
	for _, s := range r.Stats {
		if w := s.Words(); w > m {
			m = w
		}
	}
	return m
}

// AllModesStationary computes the MTTKRP for every mode with the
// Algorithm 3 distribution, All-Gathering each factor's block row
// exactly once and reusing it across all N local MTTKRPs — the
// communication half of the paper's closing observation that
// "optimizing over multiple MTTKRPs can save both communication and
// computation". Per-processor words drop from
// sum_n [ sum_{k != n} (P/P_k - 1) w_k + (P/P_n - 1) w_n ]
// (N independent runs, ~N x gathers) to
// sum_k (P/P_k - 1) w_k  (gathers, once) + sum_n (P/P_n - 1) w_n
// (reduce-scatters, unavoidable per mode) — about (N+1)/(2N) of the
// independent cost.
func AllModesStationary(x *tensor.Dense, factors []*tensor.Matrix, shape []int) (*AllModesResult, error) {
	N := x.Order()
	if len(factors) != N {
		panic(fmt.Sprintf("par: %d factors for order-%d tensor", len(factors), N))
	}
	R := -1
	for k, f := range factors {
		if f == nil {
			panic(fmt.Sprintf("par: factor %d is nil (all modes participate)", k))
		}
		if f.Rows() != x.Dim(k) {
			panic(fmt.Sprintf("par: factor %d rows %d != dim %d", k, f.Rows(), x.Dim(k)))
		}
		if R == -1 {
			R = f.Cols()
		} else if R != f.Cols() {
			panic("par: inconsistent rank")
		}
	}
	if len(shape) != N {
		return nil, fmt.Errorf("par: grid shape %v for order-%d tensor", shape, N)
	}
	g := grid.New(shape...)
	lay := dist.NewStationary(x.Dims(), R, g)
	P := g.P()
	net := simnet.New(P)

	localX := make([]*tensor.Dense, P)
	localA := make([][][]float64, P)
	for r := 0; r < P; r++ {
		coords := g.Coords(r)
		localX[r] = lay.LocalTensor(coords, x)
		localA[r] = make([][]float64, N)
		for k := 0; k < N; k++ {
			localA[r][k] = lay.FactorShard(k, coords, factors[k])
		}
	}

	outShards := make([][][]float64, P) // [rank][mode]
	localFlops := make([]int64, P)
	err := net.Run(func(rank int) error {
		coords := g.Coords(rank)

		// Gather every factor block row once.
		gathered := make([]*tensor.Matrix, N)
		for k := 0; k < N; k++ {
			ck := comm.New(net, lay.HyperSlice(k, coords), rank)
			flat := ck.AllGatherConcat(localA[rank][k])
			rlo, rhi := lay.FactorRowRange(k, coords[k])
			gathered[k] = tensor.NewMatrixFromData(flat, rhi-rlo, R)
		}

		// All local MTTKRPs from one dimension-tree pass over the
		// block (the computation half of the multi-MTTKRP saving),
		// then one Reduce-Scatter per mode. Each simulated rank is
		// already its own goroutine, so the engine runs serially
		// within a rank.
		local := dimtree.AllModesWorkers(localX[rank], gathered, 1)
		outShards[rank] = make([][]float64, N)
		for n := 0; n < N; n++ {
			c := local.B[n]
			cn := comm.New(net, lay.HyperSlice(n, coords), rank)
			q := cn.Size()
			chunks := make([][]float64, q)
			for j := 0; j < q; j++ {
				lo, hi := lay.ShardRange(n, coords[n], q, j)
				chunks[j] = c.Data()[lo:hi]
			}
			outShards[rank][n] = cn.ReduceScatterV(chunks)
		}
		localFlops[rank] = local.Flops
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &AllModesResult{
		B:          make([]*tensor.Matrix, N),
		Stats:      net.AllStats(),
		LocalFlops: localFlops,
	}
	for n := 0; n < N; n++ {
		shards := make([][]float64, P)
		for r := 0; r < P; r++ {
			shards[r] = outShards[r][n]
		}
		res.B[n] = assembleStationary(lay, g, n, shards)
	}
	return res, nil
}
