package par

import (
	"testing"

	"repro/internal/seq"
	"repro/internal/tensor"
)

func TestAllModesStationaryCorrect(t *testing.T) {
	dims := []int{6, 4, 4}
	R := 3
	x := tensor.RandomDense(71, dims...)
	fs := tensor.RandomFactors(72, dims, R)
	res, err := AllModesStationary(x, fs, []int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	for n := range dims {
		want := seq.Ref(x, fs, n)
		if !res.B[n].EqualApprox(want, 1e-9) {
			t.Fatalf("mode %d mismatch: %v", n, res.B[n].MaxAbsDiff(want))
		}
	}
}

// The communication claim: shared gathers cost strictly less than N
// independent Algorithm 3 runs — and exactly
// sum_k (q_k - 1) w_k (once) + sum_n (q_n - 1) w_n.
func TestAllModesSharesGathers(t *testing.T) {
	dims := []int{8, 8, 8}
	R := 8
	shape := []int{2, 2, 2}
	x := tensor.RandomDense(73, dims...)
	fs := tensor.RandomFactors(74, dims, R)

	shared, err := AllModesStationary(x, fs, shape)
	if err != nil {
		t.Fatal(err)
	}
	var independent int64
	for n := range dims {
		res, err := Stationary(x, fs, n, shape)
		if err != nil {
			t.Fatal(err)
		}
		independent += res.MaxWords()
	}
	if shared.MaxWords() >= independent {
		t.Fatalf("shared gathers (%d words) should beat %d independent runs (%d words)",
			shared.MaxWords(), len(dims), independent)
	}
	// Exact count for this balanced case: per rank, gathers once
	// (3 modes x (q-1) w) plus one reduce-scatter per mode (same w
	// here), all x2 for sends+receives: 2 * 6 * 3 * 8 = 288 vs
	// independent 3 * 2 * 3 * 3 * 8 = 432... compute from formulas:
	// w_k = 8, q_k = 4 for each mode.
	wantShared := int64(2 * (3*3*8 + 3*3*8)) // gathers + reduces
	if shared.MaxWords() != wantShared {
		t.Fatalf("shared words = %d, want %d", shared.MaxWords(), wantShared)
	}
	// Saving factor (N+1)/(2N) = 4/6 for N = 3.
	if got, want := float64(shared.MaxWords())/float64(independent), 4.0/6; got != want { //repro:bitwise exact ratio of exact integer word counts
		t.Fatalf("saving ratio %v, want %v", got, want)
	}
}

// The computation half of the multi-MTTKRP saving: local flops come
// from one dimension-tree pass per rank, below N independent kernels.
func TestAllModesLocalFlopsSaved(t *testing.T) {
	dims := []int{8, 8, 8, 8}
	R := 2
	x := tensor.RandomDense(77, dims...)
	fs := tensor.RandomFactors(78, dims, R)
	res, err := AllModesStationary(x, fs, []int{2, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	blockElems := int64(4 * 4 * 8 * 8)
	naive := int64(len(dims)) * blockElems * int64(R) * int64(len(dims)+1)
	for r, fl := range res.LocalFlops {
		if fl <= 0 || fl >= naive {
			t.Fatalf("rank %d: local flops %d vs naive %d", r, fl, naive)
		}
	}
}

func TestAllModesSingleProc(t *testing.T) {
	dims := []int{4, 4}
	x := tensor.RandomDense(75, dims...)
	fs := tensor.RandomFactors(76, dims, 2)
	res, err := AllModesStationary(x, fs, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWords() != 0 {
		t.Fatal("P=1 should not communicate")
	}
	for n := range dims {
		if !res.B[n].EqualApprox(seq.Ref(x, fs, n), 1e-9) {
			t.Fatalf("mode %d mismatch", n)
		}
	}
}

func TestAllModesErrors(t *testing.T) {
	dims := []int{4, 4}
	x := tensor.RandomDense(1, dims...)
	fs := tensor.RandomFactors(2, dims, 2)
	if _, err := AllModesStationary(x, fs, []int{2}); err == nil {
		t.Fatal("wrong shape length should error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil factor should panic")
			}
		}()
		_, _ = AllModesStationary(x, []*tensor.Matrix{nil, fs[1]}, []int{1, 1})
	}()
}
