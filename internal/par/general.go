package par

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// General runs Algorithm 4 (PAR-GEN-MTTKRP) for mode n on a simulated
// machine with an (N+1)-way grid: shape[0] = P0 splits the rank
// dimension, shape[k+1] splits tensor mode k. With shape[0] = 1 it
// performs exactly the communication of Algorithm 3.
//
// Compared to Stationary, the tensor block is additionally partitioned
// across each P0-fiber and All-Gathered at the start (Line 3), factor
// gathers carry only the T_{p0} rank columns, and the output
// Reduce-Scatter runs over the smaller (p0, pn)-groups.
func General(x *tensor.Dense, factors []*tensor.Matrix, n int, shape []int) (*Result, error) {
	N, R := checkProblem(x, factors, n)
	if len(shape) != N+1 {
		return nil, fmt.Errorf("par: general grid shape %v for order-%d tensor (need N+1 extents)", shape, N)
	}
	g := grid.New(shape...)
	lay := dist.NewGeneral(x.Dims(), R, g)
	P := g.P()
	net := simnet.New(P)

	// Driver-side distribution per Section V-D1.
	localX := make([][]float64, P)
	localA := make([][][]float64, P)
	for r := 0; r < P; r++ {
		coords := g.Coords(r)
		localX[r] = lay.TensorShard(coords, x)
		localA[r] = make([][]float64, N)
		for k := 0; k < N; k++ {
			if k == n {
				continue
			}
			localA[r][k] = lay.FactorShard(k, coords, factors[k])
		}
	}

	outShards := make([][]float64, P)
	res := &Result{
		Grid:          append([]int(nil), shape...),
		GatherWords:   make([]int64, P),
		ReduceWords:   make([]int64, P),
		ResidentWords: make([]int64, P),
	}
	err := net.Run(func(rank int) error {
		coords := g.Coords(rank)
		clo, chi := lay.RankRange(coords[0])
		rloc := chi - clo

		// Line 3: All-Gather the tensor block across the P0-fiber.
		fc := comm.New(net, lay.Fiber(coords), rank)
		blockFlat := fc.AllGatherConcat(localX[rank])
		blo, bhi := lay.BlockRange(coords)
		bdims := make([]int, N)
		for k := range bdims {
			bdims[k] = bhi[k] - blo[k]
		}
		block := tensor.NewDenseFromData(blockFlat, bdims...)

		// Lines 4-6: All-Gather factor blocks (T_{p0} columns only)
		// within (p0, pk)-groups.
		gathered := make([]*tensor.Matrix, N)
		for k := 0; k < N; k++ {
			if k == n {
				continue
			}
			gc := comm.New(net, lay.FactorGroup(k, coords), rank)
			flat := gc.AllGatherConcat(localA[rank][k])
			rlo, rhi := lay.FactorRowRange(k, coords[k+1])
			if len(flat) != (rhi-rlo)*rloc {
				return fmt.Errorf("rank %d mode %d: gathered %d words, want %d", rank, k, len(flat), (rhi-rlo)*rloc)
			}
			gathered[k] = tensor.NewMatrixFromData(flat, rhi-rlo, rloc)
		}
		res.GatherWords[rank] = net.RankStats(rank).Words()

		// Line 7: local MTTKRP over the T_{p0} columns, via the
		// KRP-splitting engine (serial: one goroutine per rank).
		span := obs.StartRank(rank, obs.PhaseLocal)
		c := kernel.FastWorkers(block, gathered, n, 1)
		span.Stop()

		// Peak storage: gathered tensor block + factor blocks + C
		// (Eq. (20)).
		resident := int64(block.Elems())
		for k := 0; k < N; k++ {
			if k == n {
				continue
			}
			resident += int64(gathered[k].Rows()) * int64(rloc)
		}
		resident += int64(c.Rows()) * int64(rloc)
		res.ResidentWords[rank] = resident

		// Line 8: Reduce-Scatter across the (p0, pn)-group.
		group := lay.FactorGroup(n, coords)
		gc := comm.New(net, group, rank)
		q := gc.Size()
		chunks := make([][]float64, q)
		for j := 0; j < q; j++ {
			lo, hi := lay.ShardRange(n, coords, q, j)
			chunks[j] = c.Data()[lo:hi]
		}
		outShards[rank] = gc.ReduceScatterV(chunks)
		res.ReduceWords[rank] = net.RankStats(rank).Words() - res.GatherWords[rank]
		return nil
	})
	if err != nil {
		return nil, err
	}

	res.Stats = net.AllStats()
	res.B = assembleGeneral(lay, g, n, outShards)
	return res, nil
}

// assembleGeneral reconstructs the global B(n) from shards of the
// (S_pn x T_p0) blocks.
func assembleGeneral(lay dist.General, g *grid.Grid, n int, shards [][]float64) *tensor.Matrix {
	b := tensor.NewMatrix(lay.Dims[n], lay.R)
	for r := 0; r < g.P(); r++ {
		coords := g.Coords(r)
		group := lay.FactorGroup(n, coords)
		idx := dist.IndexIn(group, r)
		rlo, rhi := lay.FactorRowRange(n, coords[n+1])
		clo, _ := lay.RankRange(coords[0])
		rows := rhi - rlo
		lo, hi := lay.ShardRange(n, coords, len(group), idx)
		shard := shards[r]
		if len(shard) != hi-lo {
			panic(fmt.Sprintf("par: rank %d shard has %d words, want %d", r, len(shard), hi-lo))
		}
		for p := lo; p < hi; p++ {
			row := rlo + p%rows
			col := clo + p/rows
			b.Set(row, col, shard[p-lo])
		}
	}
	return b
}
