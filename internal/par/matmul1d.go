package par

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// ViaMatmul1D runs the Section VI-B comparator at small P: MTTKRP cast
// as the matrix multiplication X_(n) * KRP with a 1D (inner-dimension)
// parallelization — the optimal matmul regime when the contracted
// dimension J = I/I_n dominates, which is exactly the MTTKRP shape for
// small R.
//
// Each processor owns J/P columns of the matricized tensor and the
// matching J/P rows of the Khatri-Rao product (which, following the
// paper's generous assumption, is formed locally without any
// communication cost). It computes a full I_n x R partial product and
// the results are summed and distributed by a Reduce-Scatter over all
// P processors — communicating (P-1)/P * I_n * R words per processor
// each way, independent of P: the structure of the KRP is invisible to
// the matmul, which is the paper's core criticism.
func ViaMatmul1D(x *tensor.Dense, factors []*tensor.Matrix, n int, P int) (*Result, error) {
	_, R := checkProblem(x, factors, n)
	if P < 1 {
		return nil, fmt.Errorf("par: P = %d", P)
	}
	xn := tensor.Unfold(x, n)
	krp := tensor.KRPAll(factors, n)
	J := xn.Cols()
	In := xn.Rows()
	if P > J {
		return nil, fmt.Errorf("par: P = %d exceeds contracted dimension J = %d", P, J)
	}
	net := simnet.New(P)

	// Driver-side distribution: column slab of X_(n), row slab of KRP.
	localX := make([]*tensor.Matrix, P)
	localK := make([]*tensor.Matrix, P)
	for r := 0; r < P; r++ {
		lo, hi := grid.Part(J, P, r)
		localX[r] = xn.Block(0, In, lo, hi)
		localK[r] = krp.Block(lo, hi, 0, R)
	}

	outShards := make([][]float64, P)
	res := &Result{
		Grid:        []int{P},
		GatherWords: make([]int64, P), // no input gathers in this scheme
		ReduceWords: make([]int64, P),
	}
	err := net.Run(func(rank int) error {
		// Local partial product: full I_n x R dense partial C.
		span := obs.StartRank(rank, obs.PhaseLocal)
		partial := linalg.MatMul(localX[rank], localK[rank])
		span.Stop()

		// Reduce-Scatter C across all processors.
		ranks := make([]int, P)
		for i := range ranks {
			ranks[i] = i
		}
		c := comm.New(net, ranks, rank)
		chunks := make([][]float64, P)
		for j := 0; j < P; j++ {
			lo, hi := grid.Part(In*R, P, j)
			chunks[j] = partial.Data()[lo:hi]
		}
		outShards[rank] = c.ReduceScatterV(chunks)
		res.ReduceWords[rank] = net.RankStats(rank).Words()
		return nil
	})
	if err != nil {
		return nil, err
	}

	res.Stats = net.AllStats()
	b := tensor.NewMatrix(In, R)
	for r := 0; r < P; r++ {
		lo, hi := grid.Part(In*R, P, r)
		copy(b.Data()[lo:hi], outShards[r])
	}
	res.B = b
	return res, nil
}
