// Package par implements the paper's distributed-memory MTTKRP
// algorithms on the simulated machine:
//
//   - Algorithm 3, the stationary-tensor algorithm (Section V-C): the
//     tensor never moves; factor block rows are All-Gathered within
//     processor-grid hyperslices, a local MTTKRP runs, and the output
//     is formed by a Reduce-Scatter.
//   - Algorithm 4, the general algorithm (Section V-D): an (N+1)-way
//     grid also splits the rank dimension into P0 parts; the tensor
//     block is additionally All-Gathered across P0-fibers. P0 = 1
//     recovers Algorithm 3.
//   - A 1D-parallel MTTKRP-via-matrix-multiplication baseline
//     (Section VI-B's comparator).
//
// Every rank is a goroutine exchanging real data through
// simnet/comm, so each run verifies correctness and measures the words
// each processor sends and receives.
package par

import (
	"fmt"

	"repro/internal/simnet"
	"repro/internal/tensor"
)

// Result carries a parallel run's reassembled output and its
// communication statistics.
type Result struct {
	B     *tensor.Matrix // reassembled In x R output (driver-side check)
	Stats []simnet.Stats // per-rank traffic

	// Grid is the processor-grid shape the run used (N entries for
	// Algorithm 3, N+1 with the rank split first for Algorithm 4,
	// [P] for the 1D baseline), so callers can evaluate the matching
	// closed forms (Eq. (14)/(18)) without re-deriving the grid.
	Grid []int

	// Phase breakdown, per rank: words (sent+received) during input
	// gathers and during the output reduce-scatter.
	GatherWords []int64
	ReduceWords []int64

	// ResidentWords is each rank's peak storage (local tensor data,
	// gathered factor blocks, and the local contribution matrix) — the
	// measured counterpart of the paper's per-processor memory bounds,
	// Eq. (16) for Algorithm 3 and Eq. (20) for Algorithm 4.
	ResidentWords []int64
}

// MaxResident returns the largest per-rank storage.
func (r *Result) MaxResident() int64 {
	var m int64
	for _, v := range r.ResidentWords {
		if v > m {
			m = v
		}
	}
	return m
}

// MaxWords returns the maximum over ranks of words sent plus received,
// the per-processor quantity bounded below by Theorems 4.2/4.3.
func (r *Result) MaxWords() int64 {
	var m int64
	for _, s := range r.Stats {
		if w := s.Words(); w > m {
			m = w
		}
	}
	return m
}

// MaxSent returns the maximum over ranks of words sent — the quantity
// the algorithm analyses (Eqs. 14 and 18) bound via (q-1)*w bucket
// collective costs.
func (r *Result) MaxSent() int64 {
	var m int64
	for _, s := range r.Stats {
		if s.SentWords > m {
			m = s.SentWords
		}
	}
	return m
}

// TotalSent returns the total words sent across all ranks.
func (r *Result) TotalSent() int64 {
	var t int64
	for _, s := range r.Stats {
		t += s.SentWords
	}
	return t
}

// MaxMsgs returns the maximum over ranks of messages sent plus
// received — the latency proxy the paper explicitly does not optimize
// ("we focus on the amount of data communicated and ignore the number
// of messages"), reported for completeness. Bucket collectives cost
// q-1 messages each.
func (r *Result) MaxMsgs() int64 {
	var m int64
	for _, s := range r.Stats {
		if v := s.SentMsgs + s.RecvMsgs; v > m {
			m = v
		}
	}
	return m
}

func checkProblem(x *tensor.Dense, factors []*tensor.Matrix, n int) (N, R int) {
	N = x.Order()
	if len(factors) != N {
		panic(fmt.Sprintf("par: %d factors for order-%d tensor", len(factors), N))
	}
	if n < 0 || n >= N {
		panic(fmt.Sprintf("par: mode %d out of range", n))
	}
	R = -1
	for k, f := range factors {
		if k == n {
			continue
		}
		if f == nil {
			panic(fmt.Sprintf("par: factor %d is nil", k))
		}
		if f.Rows() != x.Dim(k) {
			panic(fmt.Sprintf("par: factor %d rows %d != dim %d", k, f.Rows(), x.Dim(k)))
		}
		if R == -1 {
			R = f.Cols()
		} else if R != f.Cols() {
			panic(fmt.Sprintf("par: inconsistent rank: %d vs %d", R, f.Cols()))
		}
	}
	if R == -1 {
		panic("par: no participating factors")
	}
	return N, R
}
