package par

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/seq"
	"repro/internal/tensor"
)

func TestStationaryCorrectAllModes(t *testing.T) {
	dims := []int{6, 4, 5}
	R := 3
	x := tensor.RandomDense(1, dims...)
	fs := tensor.RandomFactors(2, dims, R)
	for _, shape := range [][]int{{1, 1, 1}, {2, 1, 1}, {2, 2, 1}, {3, 2, 2}, {2, 4, 5}} {
		for n := range dims {
			res, err := Stationary(x, fs, n, shape)
			if err != nil {
				t.Fatalf("shape %v mode %d: %v", shape, n, err)
			}
			want := seq.Ref(x, fs, n)
			if !res.B.EqualApprox(want, 1e-9) {
				t.Fatalf("shape %v mode %d: wrong result (maxdiff %v)",
					shape, n, res.B.MaxAbsDiff(want))
			}
		}
	}
}

func TestStationarySingleProcessorNoComm(t *testing.T) {
	dims := []int{4, 4}
	x := tensor.RandomDense(3, dims...)
	fs := tensor.RandomFactors(4, dims, 2)
	res, err := Stationary(x, fs, 0, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWords() != 0 {
		t.Fatalf("P=1 moved %d words", res.MaxWords())
	}
}

func TestStationaryTensorNeverMoves(t *testing.T) {
	// The defining property: total traffic is exactly the factor
	// gathers plus the output reduce — strictly less than I words when
	// factors are small, proving tensor entries stay put.
	dims := []int{8, 8, 8} // I = 512
	R := 2
	x := tensor.RandomDense(5, dims...)
	fs := tensor.RandomFactors(6, dims, R)
	res, err := Stationary(x, fs, 0, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Factor data is 3*8*2 = 48 words total; tensor is 512. Any
	// algorithm that moved the tensor would show >= 512/8 words on
	// some rank.
	if res.MaxWords() >= 64 {
		t.Fatalf("stationary algorithm moved %d words per rank; tensor appears to move", res.MaxWords())
	}
}

// E6 part 1: measured per-rank sends equal Eq. (14) exactly for a
// perfectly balanced distribution.
func TestAlg3CostMatchesModel(t *testing.T) {
	dims := []int{8, 8, 8}
	R := 8
	n := 0
	shape := []int{2, 2, 2}
	x := tensor.RandomDense(7, dims...)
	fs := tensor.RandomFactors(8, dims, R)
	res, err := Stationary(x, fs, n, shape)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(shape...)
	lay := dist.NewStationary(dims, R, g)
	var want int64
	for k := 0; k < 3; k++ {
		q := int64(g.P() / g.Extent(k))
		want += (q - 1) * lay.MaxFactorNnz(k)
	}
	for r, s := range res.Stats {
		if s.SentWords != want {
			t.Fatalf("rank %d sent %d words, Eq.(14) says %d", r, s.SentWords, want)
		}
		if s.RecvWords != want {
			t.Fatalf("rank %d received %d words, want %d", r, s.RecvWords, want)
		}
	}
}

func TestStationaryPhaseBreakdown(t *testing.T) {
	dims := []int{8, 8, 8}
	R := 4
	x := tensor.RandomDense(9, dims...)
	fs := tensor.RandomFactors(10, dims, R)
	res, err := Stationary(x, fs, 1, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for r := range res.Stats {
		if res.GatherWords[r]+res.ReduceWords[r] != res.Stats[r].Words() {
			t.Fatalf("rank %d: phases %d+%d != total %d",
				r, res.GatherWords[r], res.ReduceWords[r], res.Stats[r].Words())
		}
		if res.GatherWords[r] == 0 || res.ReduceWords[r] == 0 {
			t.Fatalf("rank %d: expected both phases to communicate", r)
		}
	}
}

func TestGeneralCorrectAllModes(t *testing.T) {
	dims := []int{4, 6, 4}
	R := 4
	x := tensor.RandomDense(11, dims...)
	fs := tensor.RandomFactors(12, dims, R)
	for _, shape := range [][]int{
		{1, 1, 1, 1},
		{2, 1, 1, 1},
		{2, 2, 1, 1},
		{4, 1, 2, 1},
		{2, 2, 3, 2},
	} {
		for n := range dims {
			res, err := General(x, fs, n, shape)
			if err != nil {
				t.Fatalf("shape %v mode %d: %v", shape, n, err)
			}
			want := seq.Ref(x, fs, n)
			if !res.B.EqualApprox(want, 1e-9) {
				t.Fatalf("shape %v mode %d: wrong result (maxdiff %v)",
					shape, n, res.B.MaxAbsDiff(want))
			}
		}
	}
}

// Algorithm 3 is the P0 = 1 special case of Algorithm 4: identical
// results and identical per-rank communication.
func TestGeneralP0OneMatchesStationary(t *testing.T) {
	dims := []int{6, 4, 4}
	R := 3
	x := tensor.RandomDense(13, dims...)
	fs := tensor.RandomFactors(14, dims, R)
	n := 1
	shape3 := []int{2, 2, 1}
	res3, err := Stationary(x, fs, n, shape3)
	if err != nil {
		t.Fatal(err)
	}
	res4, err := General(x, fs, n, append([]int{1}, shape3...))
	if err != nil {
		t.Fatal(err)
	}
	if !res3.B.EqualApprox(res4.B, 1e-9) {
		t.Fatal("results differ")
	}
	for r := range res3.Stats {
		if res3.Stats[r].SentWords != res4.Stats[r].SentWords {
			t.Fatalf("rank %d: Alg3 sent %d, Alg4(P0=1) sent %d",
				r, res3.Stats[r].SentWords, res4.Stats[r].SentWords)
		}
	}
}

// E6 part 2: Eq. (18) exactly for a balanced general run.
func TestAlg4CostMatchesModel(t *testing.T) {
	dims := []int{8, 8, 8}
	R := 8
	n := 0
	shape := []int{2, 2, 2, 1} // P0=2, P = 8
	x := tensor.RandomDense(15, dims...)
	fs := tensor.RandomFactors(16, dims, R)
	res, err := General(x, fs, n, shape)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(shape...)
	lay := dist.NewGeneral(dims, R, g)
	p0 := int64(g.Extent(0))
	want := (p0 - 1) * lay.MaxTensorNnz()
	for k := 0; k < 3; k++ {
		q := int64(g.P()) / (p0 * int64(g.Extent(k+1)))
		want += (q - 1) * lay.MaxFactorNnz(k)
	}
	for r, s := range res.Stats {
		if s.SentWords != want {
			t.Fatalf("rank %d sent %d words, Eq.(18) says %d", r, s.SentWords, want)
		}
	}
}

func TestGeneralShapeErrors(t *testing.T) {
	dims := []int{4, 4}
	x := tensor.RandomDense(1, dims...)
	fs := tensor.RandomFactors(2, dims, 2)
	if _, err := General(x, fs, 0, []int{2, 2}); err == nil {
		t.Fatal("N-way shape should be rejected for General")
	}
	if _, err := Stationary(x, fs, 0, []int{2, 2, 2}); err == nil {
		t.Fatal("(N+1)-way shape should be rejected for Stationary")
	}
}

func TestViaMatmul1DCorrect(t *testing.T) {
	dims := []int{4, 5, 3}
	R := 3
	x := tensor.RandomDense(17, dims...)
	fs := tensor.RandomFactors(18, dims, R)
	for _, P := range []int{1, 2, 4, 8} {
		for n := range dims {
			res, err := ViaMatmul1D(x, fs, n, P)
			if err != nil {
				t.Fatalf("P=%d mode=%d: %v", P, n, err)
			}
			want := seq.Ref(x, fs, n)
			if !res.B.EqualApprox(want, 1e-9) {
				t.Fatalf("P=%d mode=%d: wrong result", P, n)
			}
		}
	}
}

func TestViaMatmul1DCost(t *testing.T) {
	// Per-rank sends = (P-1)/P * In * R, *independent of P* growing —
	// no strong scaling. This is the flat region of Figure 4.
	dims := []int{8, 8, 8}
	R := 4
	x := tensor.RandomDense(19, dims...)
	fs := tensor.RandomFactors(20, dims, R)
	for _, P := range []int{2, 4, 8} {
		res, err := ViaMatmul1D(x, fs, 0, P)
		if err != nil {
			t.Fatal(err)
		}
		want := int64((P - 1) * 8 * R / P)
		for r, s := range res.Stats {
			if s.SentWords != want {
				t.Fatalf("P=%d rank %d sent %d, want %d", P, r, s.SentWords, want)
			}
		}
	}
}

// The paper's headline parallel claim: for small R, the stationary
// algorithm communicates far less than the matmul approach on the same
// machine.
func TestStationaryBeatsMatmul(t *testing.T) {
	// The small-P advantage of Section VI-B is a factor O(P^(1/N)/N),
	// so P must exceed roughly N^N before Algorithm 3 wins.
	dims := []int{32, 32, 32} // I = 2^15
	R := 4
	P := 64
	x := tensor.RandomDense(21, dims...)
	fs := tensor.RandomFactors(22, dims, R)
	res3, err := Stationary(x, fs, 0, []int{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	resM, err := ViaMatmul1D(x, fs, 0, P)
	if err != nil {
		t.Fatal(err)
	}
	if res3.MaxWords() >= resM.MaxWords() {
		t.Fatalf("stationary %d words should beat matmul %d words",
			res3.MaxWords(), resM.MaxWords())
	}
}

// E5: measured communication respects the memory-independent lower
// bounds (Theorems 4.2/4.3 with gamma = delta = 1, since our
// distributions are exactly balanced).
func TestMeasuredRespectsLowerBound(t *testing.T) {
	dims := []int{16, 16, 16}
	R := 16
	P := 8
	x := tensor.RandomDense(23, dims...)
	fs := tensor.RandomFactors(24, dims, R)
	prob := bounds.Problem{Dims: dims, R: R}
	lb := bounds.ParBest(prob, float64(P), 1, 1)
	if lb <= 0 {
		t.Fatalf("lower bound vacuous (%v); pick better parameters", lb)
	}
	res3, err := Stationary(x, fs, 0, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res3.MaxWords()) < lb {
		t.Fatalf("Alg3 measured %d words below lower bound %v", res3.MaxWords(), lb)
	}
	res4, err := General(x, fs, 0, []int{2, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res4.MaxWords()) < lb {
		t.Fatalf("Alg4 measured %d words below lower bound %v", res4.MaxWords(), lb)
	}
	resM, err := ViaMatmul1D(x, fs, 0, P)
	if err != nil {
		t.Fatal(err)
	}
	if float64(resM.MaxWords()) < lb {
		t.Fatalf("matmul measured %d words below lower bound %v", resM.MaxWords(), lb)
	}
}

// Property: random problems, random grids — all three parallel
// algorithms agree with the sequential reference.
func TestParallelAgreesWithRefQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		N := 2 + rng.Intn(2)
		dims := make([]int, N)
		shape := make([]int, N)
		for i := range dims {
			shape[i] = 1 + rng.Intn(2)
			dims[i] = shape[i] * (1 + rng.Intn(3))
		}
		R := 1 + rng.Intn(4)
		n := rng.Intn(N)
		x := tensor.RandomDense(seed, dims...)
		fs := tensor.RandomFactors(seed+1, dims, R)
		want := seq.Ref(x, fs, n)

		r3, err := Stationary(x, fs, n, shape)
		if err != nil || !r3.B.EqualApprox(want, 1e-9) {
			return false
		}
		p0 := 1 + rng.Intn(min(R, 3))
		r4, err := General(x, fs, n, append([]int{p0}, shape...))
		if err != nil || !r4.B.EqualApprox(want, 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckProblemPanics(t *testing.T) {
	dims := []int{4, 4}
	x := tensor.RandomDense(1, dims...)
	fs := tensor.RandomFactors(2, dims, 2)
	for _, f := range []func(){
		func() { checkProblem(x, fs[:1], 0) },
		func() { checkProblem(x, fs, 5) },
		func() { checkProblem(x, []*tensor.Matrix{nil, nil}, 0) },
		func() { checkProblem(x, []*tensor.Matrix{fs[0], tensor.NewMatrix(9, 2)}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestViaMatmul1DErrors(t *testing.T) {
	dims := []int{2, 2}
	x := tensor.RandomDense(1, dims...)
	fs := tensor.RandomFactors(2, dims, 2)
	if _, err := ViaMatmul1D(x, fs, 0, 0); err == nil {
		t.Fatal("P=0 should error")
	}
	if _, err := ViaMatmul1D(x, fs, 0, 100); err == nil {
		t.Fatal("P > J should error")
	}
}
