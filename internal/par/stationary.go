package par

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// Stationary runs Algorithm 3 (PAR-STAT-MTTKRP) for mode n on a
// simulated machine with the given N-way processor grid shape
// (len(shape) must equal the tensor order, prod(shape) = P).
//
// The driver distributes the inputs according to Section V-C1, runs
// one goroutine per processor, and reassembles the distributed output
// for verification. Only the algorithm's collectives touch the
// network, so the measured statistics are exactly the algorithm's
// communication.
func Stationary(x *tensor.Dense, factors []*tensor.Matrix, n int, shape []int) (*Result, error) {
	return StationaryWithKernel(x, factors, n, shape, engineKernel)
}

// engineKernel is the default LocalKernel: the KRP-splitting engine run
// serially, since each simulated processor already owns a goroutine.
func engineKernel(x *tensor.Dense, factors []*tensor.Matrix, n int) *tensor.Matrix {
	return kernel.FastWorkers(x, factors, n, 1)
}

// LocalKernel computes a local MTTKRP contribution from a resident
// subtensor and gathered factor block rows.
type LocalKernel func(x *tensor.Dense, factors []*tensor.Matrix, n int) *tensor.Matrix

// NonAtomicKernel is the Eq. (17) local variant: form the explicit
// local Khatri-Rao product and multiply — fewer operations than the
// atomic kernel, identical results, and (as Section V-C3 observes)
// identical communication, since the collectives see only the data
// distribution.
func NonAtomicKernel(x *tensor.Dense, factors []*tensor.Matrix, n int) *tensor.Matrix {
	return linalg.MatMul(tensor.Unfold(x, n), tensor.KRPAll(factors, n))
}

// StationaryWithKernel is Stationary with a pluggable local kernel
// (the KRP-splitting engine by default; NonAtomicKernel for the
// Eq. (17) variant; seq.Ref for the atomic baseline).
func StationaryWithKernel(x *tensor.Dense, factors []*tensor.Matrix, n int, shape []int, local LocalKernel) (*Result, error) {
	N, R := checkProblem(x, factors, n)
	if len(shape) != N {
		return nil, fmt.Errorf("par: grid shape %v for order-%d tensor", shape, N)
	}
	g := grid.New(shape...)
	lay := dist.NewStationary(x.Dims(), R, g)
	P := g.P()
	net := simnet.New(P)

	// Driver-side distribution (free in the model: inputs start
	// distributed).
	localX := make([]*tensor.Dense, P)
	localA := make([][][]float64, P) // [rank][mode] shard
	for r := 0; r < P; r++ {
		coords := g.Coords(r)
		localX[r] = lay.LocalTensor(coords, x)
		localA[r] = make([][]float64, N)
		for k := 0; k < N; k++ {
			if k == n {
				continue
			}
			localA[r][k] = lay.FactorShard(k, coords, factors[k])
		}
	}

	outShards := make([][]float64, P)
	res := &Result{
		Grid:          append([]int(nil), shape...),
		GatherWords:   make([]int64, P),
		ReduceWords:   make([]int64, P),
		ResidentWords: make([]int64, P),
	}
	err := net.Run(func(rank int) error {
		coords := g.Coords(rank)

		// Lines 3-5: All-Gather factor block rows within hyperslices.
		gathered := make([]*tensor.Matrix, N)
		for k := 0; k < N; k++ {
			if k == n {
				continue
			}
			ck := comm.New(net, lay.HyperSlice(k, coords), rank)
			flat := ck.AllGatherConcat(localA[rank][k])
			rlo, rhi := lay.FactorRowRange(k, coords[k])
			if len(flat) != (rhi-rlo)*R {
				return fmt.Errorf("rank %d mode %d: gathered %d words, want %d", rank, k, len(flat), (rhi-rlo)*R)
			}
			gathered[k] = tensor.NewMatrixFromData(flat, rhi-rlo, R)
		}
		res.GatherWords[rank] = net.RankStats(rank).Words()

		// Line 6: local MTTKRP on the resident subtensor.
		span := obs.StartRank(rank, obs.PhaseLocal)
		c := local(localX[rank], gathered, n)
		span.Stop()

		// Peak storage: subtensor + replicated block rows + C
		// (Eq. (16); the output block rows double as C's shape).
		resident := int64(localX[rank].Elems())
		for k := 0; k < N; k++ {
			if k == n {
				continue
			}
			resident += int64(gathered[k].Rows()) * int64(R)
		}
		resident += int64(c.Rows()) * int64(R)
		res.ResidentWords[rank] = resident

		// Line 7: Reduce-Scatter the contribution across the mode-n
		// hyperslice.
		slice := lay.HyperSlice(n, coords)
		cn := comm.New(net, slice, rank)
		q := cn.Size()
		chunks := make([][]float64, q)
		for j := 0; j < q; j++ {
			lo, hi := lay.ShardRange(n, coords[n], q, j)
			chunks[j] = c.Data()[lo:hi]
		}
		outShards[rank] = cn.ReduceScatterV(chunks)
		res.ReduceWords[rank] = net.RankStats(rank).Words() - res.GatherWords[rank]
		return nil
	})
	if err != nil {
		return nil, err
	}

	res.Stats = net.AllStats()
	res.B = assembleStationary(lay, g, n, outShards)
	return res, nil
}

// assembleStationary reconstructs the global B(n) from the
// per-processor shards of each mode-n block row.
func assembleStationary(lay dist.Stationary, g *grid.Grid, n int, shards [][]float64) *tensor.Matrix {
	In := lay.Dims[n]
	b := tensor.NewMatrix(In, lay.R)
	for r := 0; r < g.P(); r++ {
		coords := g.Coords(r)
		slice := lay.HyperSlice(n, coords)
		idx := dist.IndexIn(slice, r)
		rlo, rhi := lay.FactorRowRange(n, coords[n])
		rows := rhi - rlo
		lo, hi := lay.ShardRange(n, coords[n], len(slice), idx)
		shard := shards[r]
		if len(shard) != hi-lo {
			panic(fmt.Sprintf("par: rank %d shard has %d words, want %d", r, len(shard), hi-lo))
		}
		for p := lo; p < hi; p++ {
			row := rlo + p%rows
			col := p / rows
			b.Set(row, col, shard[p-lo])
		}
	}
	return b
}
