// Package pebble computes the exact optimal communication of tiny
// MTTKRP instances in the two-level memory model by exhaustive search
// over machine states — a red-blue-pebble-game-style validator for
// Theorem 4.1. Where packages seq and cachesim measure particular
// executions, this package minimizes over *all* executions: every
// ordering of the atomic multiply-accumulates and every residency
// decision. The result OPT satisfies
//
//	max(Theorem 4.1, Fact 4.1, 0)  <=  OPT  <=  cost of Algorithm 2,
//
// and the tests pin both inequalities on instances small enough to
// solve exactly.
//
// Model (matching Section II-C, with inputs initially in slow memory
// and outputs required in slow memory at the end):
//
//   - values: tensor entries X(i) and factor entries A(k)(i_k, r)
//     (read-only inputs), and output accumulators B(i_n, r);
//   - an atomic op (i, r) executes free of charge when its N inputs
//     and its accumulator are all in fast memory;
//   - loading any absent value costs 1; a zero accumulator may be
//     created in fast memory for free (sums start at 0);
//   - evicting an input or a clean accumulator is free; evicting a
//     dirty accumulator costs 1 store (its partial sum must survive);
//   - at the end every accumulator's final value must be in slow
//     memory.
//
// The search is Dijkstra over (resident set, done ops, dirty bits).
// Two safe reductions keep it tractable: ops whose accumulator is
// already dirty fire eagerly (they are free and forfeit nothing), and
// evictions are deferred until space is needed (delaying a free action
// preserves optimality). Ops on clean accumulators remain explicit
// decisions, since firing one early can cost a store/reload pair a
// delayed schedule avoids.
package pebble

import (
	"container/heap"
	"fmt"
	"math/bits"
)

// Instance describes a tiny MTTKRP to solve exactly.
type Instance struct {
	Dims []int
	R    int
	N    int // output mode n
	M    int // fast memory capacity in words
}

// ErrTooLarge is returned when the instance exceeds the encodable or
// explorable state budget.
var ErrTooLarge = fmt.Errorf("pebble: instance too large for exact search")

// ErrInfeasible is returned when no execution fits in fast memory
// (M < N+1).
var ErrInfeasible = fmt.Errorf("pebble: no schedule fits in fast memory")

type op struct {
	inputs []int // value ids that must be resident
	acc    int   // accumulator id
}

type problem struct {
	nValues int // inputs + accumulators
	nInputs int
	nAccs   int
	ops     []op
	accBase int // first accumulator id
	m       int
}

// build enumerates values and ops. Value ids: tensor entries first,
// then used factor entries, then accumulators.
func build(inst Instance) (*problem, error) {
	N := len(inst.Dims)
	if N < 2 || inst.R < 1 || inst.N < 0 || inst.N >= N || inst.M < 1 {
		return nil, fmt.Errorf("pebble: bad instance %+v", inst)
	}
	I := 1
	for _, d := range inst.Dims {
		if d < 1 {
			return nil, fmt.Errorf("pebble: bad dims %v", inst.Dims)
		}
		I *= d
	}
	// Tensor entry ids: column-major offset.
	xID := func(idx []int) int {
		off, mult := 0, 1
		for k, d := range inst.Dims {
			off += idx[k] * mult
			mult *= d
		}
		return off
	}
	at := I
	// Factor entry ids for k != n.
	aID := make(map[[3]int]int)
	for k := 0; k < N; k++ {
		if k == inst.N {
			continue
		}
		for i := 0; i < inst.Dims[k]; i++ {
			for r := 0; r < inst.R; r++ {
				aID[[3]int{k, i, r}] = at
				at++
			}
		}
	}
	nInputs := at
	// Accumulators.
	bID := func(in, r int) int { return nInputs + in*inst.R + r }
	nAccs := inst.Dims[inst.N] * inst.R
	nValues := nInputs + nAccs

	var ops []op
	idx := make([]int, N)
	for c := 0; c < I; c++ {
		for r := 0; r < inst.R; r++ {
			inputs := []int{xID(idx)}
			for k := 0; k < N; k++ {
				if k == inst.N {
					continue
				}
				inputs = append(inputs, aID[[3]int{k, idx[k], r}])
			}
			ops = append(ops, op{inputs: inputs, acc: bID(idx[inst.N], r)})
		}
		for k := 0; k < N; k++ {
			idx[k]++
			if idx[k] < inst.Dims[k] {
				break
			}
			idx[k] = 0
		}
	}
	if nValues+len(ops)+nAccs > 62 {
		return nil, fmt.Errorf("%w: %d state bits needed", ErrTooLarge, nValues+len(ops)+nAccs)
	}
	return &problem{
		nValues: nValues,
		nInputs: nInputs,
		nAccs:   nAccs,
		ops:     ops,
		accBase: nInputs,
		m:       inst.M,
	}, nil
}

// state encoding: bits [0, nValues) resident; [nValues,
// nValues+len(ops)) done; then nAccs dirty bits (dirty implies
// resident accumulator).
type state = uint64

func (p *problem) residentCount(s state) int {
	return bits.OnesCount64(uint64(s) & (1<<uint(p.nValues) - 1))
}

func (p *problem) isResident(s state, v int) bool { return s&(1<<uint(v)) != 0 }
func (p *problem) isDone(s state, o int) bool     { return s&(1<<uint(p.nValues+o)) != 0 }
func (p *problem) dirtyBit(a int) state           { return 1 << uint(p.nValues+len(p.ops)+a) }

// progress reports whether any op targeting accumulator id acc is done.
func (p *problem) progress(s state, acc int) bool {
	for o, oo := range p.ops {
		if oo.acc == acc && p.isDone(s, o) {
			return true
		}
	}
	return false
}

// executable reports whether op o can fire in state s.
func (p *problem) executable(s state, o int) bool {
	oo := p.ops[o]
	if p.isDone(s, o) || !p.isResident(s, oo.acc) {
		return false
	}
	for _, v := range oo.inputs {
		if !p.isResident(s, v) {
			return false
		}
	}
	return true
}

// fire executes op o (must be executable).
func (p *problem) fire(s state, o int) state {
	s |= 1 << uint(p.nValues+o)
	s |= p.dirtyBit(p.ops[o].acc - p.accBase)
	return s
}

// closure eagerly fires every executable op whose accumulator is
// already dirty: such firings are free and forfeit nothing (the
// accumulator already owes a store). Ops on *clean* accumulators are
// left as explicit branch decisions — firing them early can cost a
// store/reload pair that a delayed schedule avoids.
func (p *problem) closure(s state) state {
	for {
		changed := false
		for o := range p.ops {
			if p.executable(s, o) && s&p.dirtyBit(p.ops[o].acc-p.accBase) != 0 {
				s = p.fire(s, o)
				changed = true
			}
		}
		if !changed {
			return s
		}
	}
}

func (p *problem) allDone(s state) bool {
	mask := state(1)<<uint(len(p.ops)) - 1
	return (s>>uint(p.nValues))&mask == mask
}

func (p *problem) dirtyCount(s state) int {
	mask := state(1)<<uint(p.nAccs) - 1
	return bits.OnesCount64(uint64((s >> uint(p.nValues+len(p.ops))) & mask))
}

type pqItem struct {
	s    state
	cost int64
}
type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].cost < q[j].cost }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Optimal returns the minimum loads+stores over all executions of the
// instance, exploring at most maxStates distinct states.
func Optimal(inst Instance, maxStates int) (int64, error) {
	p, err := build(inst)
	if err != nil {
		return 0, err
	}
	start := p.closure(0)
	best := map[state]int64{start: 0}
	q := &pq{{s: start, cost: 0}}
	explored := 0
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if c, ok := best[it.s]; ok && it.cost > c {
			continue
		}
		if p.allDone(it.s) {
			return it.cost + int64(p.dirtyCount(it.s)), nil
		}
		explored++
		if explored > maxStates {
			return 0, fmt.Errorf("%w: state budget %d exhausted", ErrTooLarge, maxStates)
		}
		relax := func(ns state, nc int64) {
			ns = p.closure(ns)
			if c, ok := best[ns]; !ok || nc < c {
				best[ns] = nc
				heap.Push(q, pqItem{s: ns, cost: nc})
			}
		}
		// Fire an executable op on a clean accumulator (free, but an
		// explicit decision: it makes the accumulator dirty). Possible
		// whether or not memory is full.
		for o := range p.ops {
			if p.executable(it.s, o) {
				relax(p.fire(it.s, o), it.cost)
			}
		}
		if p.residentCount(it.s) >= p.m {
			// Full: evictions (deferred until space is needed).
			for v := 0; v < p.nValues; v++ {
				if !p.isResident(it.s, v) {
					continue
				}
				ns := it.s &^ (1 << uint(v))
				cost := it.cost
				if v >= p.accBase {
					a := v - p.accBase
					if it.s&p.dirtyBit(a) != 0 {
						cost++ // store the partial/complete sum
						ns &^= p.dirtyBit(a)
					}
				}
				relax(ns, cost)
			}
			continue
		}
		// Loads of absent inputs.
		for v := 0; v < p.nInputs; v++ {
			if !p.isResident(it.s, v) {
				relax(it.s|1<<uint(v), it.cost+1)
			}
		}
		// Accumulators: reload (progress exists in slow memory) costs
		// 1; fresh creation is free.
		for a := 0; a < p.nAccs; a++ {
			v := p.accBase + a
			if p.isResident(it.s, v) {
				continue
			}
			cost := it.cost
			if p.progress(it.s, v) {
				cost++
			}
			relax(it.s|1<<uint(v), cost)
		}
	}
	return 0, ErrInfeasible
}
