package pebble

import (
	"errors"
	"testing"

	"repro/internal/bounds"
	"repro/internal/memsim"
	"repro/internal/seq"
	"repro/internal/tensor"
)

func TestSingleOpInstance(t *testing.T) {
	// 1x1 tensor, R=1, N=2: one op needing X(0), A(1)(0,0), and the
	// accumulator. Optimal: load X (1), load A (1), create B free,
	// fire, store B (1) => 3 words.
	opt, err := Optimal(Instance{Dims: []int{1, 1}, R: 1, N: 0, M: 3}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 3 {
		t.Fatalf("OPT = %d, want 3", opt)
	}
}

func TestInfeasibleWhenMTooSmall(t *testing.T) {
	// An op needs N inputs + 1 accumulator resident: M = N fails.
	_, err := Optimal(Instance{Dims: []int{2, 2}, R: 1, N: 0, M: 2}, 1_000_000)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestMatrixVectorOptimal(t *testing.T) {
	// 2x2 tensor, R=1, N=2, mode 0 (matrix-vector product), M=3.
	// Inputs: 4 X + 2 A; outputs: 2 B. Every input must be loaded at
	// least once (6) and every output stored at least once (2), so
	// OPT >= 8. A schedule achieving 8: for each column j, hold A(j),
	// stream X(:,j), and alternate the two accumulators... each
	// accumulator eviction while partial costs an extra store+load.
	// The exact optimum is found by search; pin it and sandwich it.
	inst := Instance{Dims: []int{2, 2}, R: 1, N: 0, M: 3}
	opt, err := Optimal(inst, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if opt < 8 {
		t.Fatalf("OPT = %d below the touch bound 8", opt)
	}
	// Algorithm 1's cost is an upper bound.
	if alg1 := int64(4 + 4*1*3); opt > alg1 {
		t.Fatalf("OPT = %d exceeds Algorithm 1's %d", opt, alg1)
	}
	t.Logf("OPT(2x2, R=1, M=3) = %d", opt)
}

// The headline validation: for tiny instances, the true optimum over
// ALL executions respects Theorem 4.1 and Fact 4.1, and is achieved or
// beaten by no algorithm — in particular Algorithm 2's measured cost
// upper-bounds it.
func TestOptimalSandwichedByBounds(t *testing.T) {
	cases := []Instance{
		{Dims: []int{2, 2}, R: 1, N: 0, M: 3},
		{Dims: []int{2, 2}, R: 1, N: 0, M: 4},
		{Dims: []int{2, 2}, R: 1, N: 1, M: 4},
		{Dims: []int{3, 2}, R: 1, N: 0, M: 4},
		{Dims: []int{2, 2}, R: 2, N: 0, M: 4},
		{Dims: []int{2, 2, 2}, R: 1, N: 0, M: 4},
		{Dims: []int{2, 2, 2}, R: 1, N: 2, M: 5},
	}
	for _, inst := range cases {
		opt, err := Optimal(inst, 20_000_000)
		if err != nil {
			t.Fatalf("%+v: %v", inst, err)
		}
		prob := bounds.Problem{Dims: inst.Dims, R: inst.R}
		lb := bounds.SeqBest(prob, float64(inst.M))
		if float64(opt) < lb {
			t.Fatalf("%+v: OPT %d beats the lower bound %v — Theorem 4.1 violated?!", inst, opt, lb)
		}
		// Measured Algorithm 2 (b = 1 always fits with M >= N+1) is an
		// upper bound on OPT.
		x := tensor.RandomDense(1, inst.Dims...)
		fs := tensor.RandomFactors(2, inst.Dims, inst.R)
		res, err := seq.Blocked(x, fs, inst.N, 1, memsim.New(int64(inst.M)))
		if err != nil {
			t.Fatalf("%+v: %v", inst, err)
		}
		if opt > res.Counts.Words() {
			t.Fatalf("%+v: OPT %d exceeds Algorithm 2's measured %d", inst, opt, res.Counts.Words())
		}
		t.Logf("%v R=%d n=%d M=%d: lb=%.1f OPT=%d alg2=%d",
			inst.Dims, inst.R, inst.N, inst.M, lb, opt, res.Counts.Words())
	}
}

// Monotonicity: more fast memory never increases the optimum.
func TestOptimalMonotoneInM(t *testing.T) {
	inst := Instance{Dims: []int{2, 2}, R: 2, N: 0}
	prev := int64(1 << 60)
	for _, M := range []int{3, 4, 6, 10, 16} {
		inst.M = M
		opt, err := Optimal(inst, 20_000_000)
		if err != nil {
			t.Fatalf("M=%d: %v", M, err)
		}
		if opt > prev {
			t.Fatalf("OPT increased with M: %d -> %d at M=%d", prev, opt, M)
		}
		prev = opt
	}
	// With everything fitting, OPT = touched inputs + outputs:
	// 4 X + 4 A + 4 B = 12.
	if prev != 12 {
		t.Fatalf("unbounded-memory OPT = %d, want 12", prev)
	}
}

func TestBadInstances(t *testing.T) {
	for _, inst := range []Instance{
		{Dims: []int{4}, R: 1, N: 0, M: 4},
		{Dims: []int{2, 2}, R: 0, N: 0, M: 4},
		{Dims: []int{2, 2}, R: 1, N: 5, M: 4},
		{Dims: []int{2, 0}, R: 1, N: 0, M: 4},
		{Dims: []int{2, 2}, R: 1, N: 0, M: 0},
	} {
		if _, err := Optimal(inst, 1000); err == nil {
			t.Errorf("instance %+v should be rejected", inst)
		}
	}
}

func TestTooLargeInstance(t *testing.T) {
	_, err := Optimal(Instance{Dims: []int{4, 4, 4}, R: 4, N: 0, M: 8}, 1000)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestStateBudgetRespected(t *testing.T) {
	_, err := Optimal(Instance{Dims: []int{2, 2, 2}, R: 1, N: 0, M: 4}, 10)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want budget exhaustion, got %v", err)
	}
}
