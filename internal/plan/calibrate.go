package plan

// Runtime calibration: a one-shot startup micro-benchmark measuring
// the machine constants the planner's cost model multiplies against —
// per-path GEMM flop rate and stream bandwidth (for both the active
// SIMD dispatch path and the REPRO_NOSIMD scalar path), parallel
// scaling, and goroutine fan-out overhead. The result is cached to
// disk keyed by simd.Describe() plus the CPU and GOMAXPROCS, so every
// later process start is a single JSON read; a missing, truncated, or
// stale cache silently re-measures and rewrites — it must never crash
// or yield a garbage plan.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"time"

	"repro/internal/linalg"
	"repro/internal/simd"
)

// calibrationVersion invalidates cached files when the measurement
// scheme (and therefore the meaning of the constants) changes.
const calibrationVersion = 1

// defaultCacheWords is the planner's working-set budget for one hot
// GEMM panel, in 8-byte words (512 KiB — a typical per-core L2). Cache
// probing is deliberately out of calibration scope: the block-size
// pick only needs the order of magnitude.
const defaultCacheWords = 1 << 16

// EnvCachePath overrides the calibration cache location when set.
const EnvCachePath = "REPRO_CALIBRATION"

// Calibration holds the measured machine constants the cost model
// scales by. Rates are per single worker; ParEff and MemEff are the
// incremental per-extra-worker speedup fractions for compute-bound
// and memory-bound loops (rate at w workers is modeled as
// rate1 * (1 + (w-1)*eff)).
type Calibration struct {
	Version    int    `json:"version"`
	Key        string `json:"key"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	FlopsSIMD    float64 `json:"flops_simd"`   // GEMM flops/sec, 1 worker, dispatch path
	FlopsScalar  float64 `json:"flops_scalar"` // same, forced scalar path
	StreamSIMD   float64 `json:"stream_simd"`  // axpy words/sec, 1 worker, dispatch path
	StreamScalar float64 `json:"stream_scalar"`

	ParEff  float64 `json:"par_eff"`  // compute parallel efficiency increment
	MemEff  float64 `json:"mem_eff"`  // bandwidth parallel efficiency increment
	SpawnNs float64 `json:"spawn_ns"` // goroutine fan-out + join overhead per parallel section

	CacheWords int `json:"cache_words"` // hot-panel budget for block sizing
}

// Key returns the cache key identifying the machine configuration a
// calibration is valid for: the SIMD dispatch banner (path + CPU
// features + REPRO_NOSIMD state) plus architecture, CPU count, and
// GOMAXPROCS.
func Key() string {
	return simd.Describe() + "|" + runtime.GOARCH + "|cpus=" + strconv.Itoa(runtime.NumCPU()) +
		"|gomaxprocs=" + strconv.Itoa(runtime.GOMAXPROCS(0))
}

// DefaultCachePath returns the calibration cache file location: the
// REPRO_CALIBRATION environment variable when set, else a file under
// the user cache directory, else under the system temp directory.
func DefaultCachePath() string {
	if p := os.Getenv(EnvCachePath); p != "" {
		return p
	}
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "repro-mttkrp", "calibration.json")
	}
	return filepath.Join(os.TempDir(), "repro-mttkrp-calibration.json")
}

// Load reads and validates a cached calibration. Any defect — missing
// file, truncated or malformed JSON, a version or key mismatch, or
// non-positive rates — returns an error so the caller re-measures.
func Load(path string) (*Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Calibration
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("plan: calibration cache %s: %w", path, err)
	}
	if err := c.validate(); err != nil {
		return nil, fmt.Errorf("plan: calibration cache %s: %w", path, err)
	}
	return &c, nil
}

// validate checks a calibration is usable on this process's
// configuration.
func (c *Calibration) validate() error {
	if c.Version != calibrationVersion {
		return fmt.Errorf("version %d, want %d", c.Version, calibrationVersion)
	}
	if c.Key != Key() {
		return fmt.Errorf("stale key %q (machine is %q)", c.Key, Key())
	}
	if c.GOMAXPROCS < 1 {
		return fmt.Errorf("bad GOMAXPROCS %d", c.GOMAXPROCS)
	}
	for name, v := range map[string]float64{
		"flops_simd": c.FlopsSIMD, "flops_scalar": c.FlopsScalar,
		"stream_simd": c.StreamSIMD, "stream_scalar": c.StreamScalar,
	} {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("non-positive rate %s = %g", name, v)
		}
	}
	if c.CacheWords < 1<<10 {
		return fmt.Errorf("implausible cache budget %d words", c.CacheWords)
	}
	return nil
}

// Save writes the calibration to path, creating parent directories.
func (c *Calibration) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadOrMeasure returns the cached calibration when it is valid for
// this machine, and otherwise runs the startup micro-benchmark and
// best-effort rewrites the cache. It never fails: a corrupt or stale
// cache file triggers silent re-calibration, and an unwritable cache
// path only costs the next process a re-measurement.
func LoadOrMeasure(path string) *Calibration {
	if c, err := Load(path); err == nil {
		return c
	}
	c := Measure()
	_ = c.Save(path) // best-effort: a read-only cache dir is not an error
	return c
}

// Measure runs the one-shot startup micro-benchmark (~tens of
// milliseconds): single-worker GEMM flop rate and stream bandwidth on
// the active dispatch path and on the forced-scalar path, parallel
// efficiency at GOMAXPROCS for both regimes, and goroutine fan-out
// overhead. Implausible timer readings fall back to Default()
// constants so the planner always has positive rates to divide by.
//
//repro:ignore determinism startup measurement: wall-clock timing calibrates the cost model, it never feeds a kernel
func Measure() *Calibration {
	c := Default()
	c.Key = Key()
	maxW := runtime.GOMAXPROCS(0)
	c.GOMAXPROCS = maxW

	b := newMicrobench()
	if f, s := b.ratesWorkers(1); f > 0 && s > 0 {
		c.FlopsSIMD, c.StreamSIMD = f, s
	}
	if simd.Path() == "scalar" {
		c.FlopsScalar, c.StreamScalar = c.FlopsSIMD, c.StreamSIMD
	} else {
		restore := simd.ForceScalar()
		if f, s := b.ratesWorkers(1); f > 0 && s > 0 {
			c.FlopsScalar, c.StreamScalar = f, s
		}
		restore()
	}
	if maxW > 1 {
		if f, s := b.ratesWorkers(maxW); f > 0 && s > 0 {
			c.ParEff = incrementalEff(c.FlopsSIMD, f, maxW)
			c.MemEff = incrementalEff(c.StreamSIMD, s, maxW)
		}
		if ns := b.spawnNs(maxW); ns > 0 {
			c.SpawnNs = ns
		}
	} else {
		c.ParEff, c.MemEff = 0, 0
	}
	return c
}

// Default returns conservative fallback constants (roughly a 1 GFLOP/s
// core moving 4x10^8 words/s) used when measurement is impossible or
// yields implausible readings. The key is empty so a Default is never
// mistaken for a measured cache entry.
func Default() *Calibration {
	return &Calibration{
		Version:      calibrationVersion,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		FlopsSIMD:    1e9,
		FlopsScalar:  5e8,
		StreamSIMD:   4e8,
		StreamScalar: 3e8,
		ParEff:       0.7,
		MemEff:       0.25,
		SpawnNs:      5000,
		CacheWords:   defaultCacheWords,
	}
}

// incrementalEff converts a measured 1-worker and P-worker rate pair
// into the per-extra-worker efficiency increment of the scaling model
// rate(w) = rate1 * (1 + (w-1)*eff), clamped to [0, 1].
func incrementalEff(rate1, rateP float64, P int) float64 {
	if rate1 <= 0 || P < 2 {
		return 0
	}
	eff := (rateP/rate1 - 1) / float64(P-1)
	if eff < 0 {
		return 0
	}
	if eff > 1 {
		return 1
	}
	return eff
}

// microbench owns the operand buffers of the measurement loops, sized
// so each timed region runs a few milliseconds on a ~1 GFLOP/s core
// while streaming well past any L2.
type microbench struct {
	a, bb, cc []float64 // GEMM operands: a is gm x gk, bb gm x gn, cc gk x gn
	sx, sy    []float64 // stream operands
}

const (
	gemmM     = 4096    // shared (contiguous) contraction extent of the timed GemmTN
	gemmK     = 32      // rows of C
	gemmN     = 16      // columns of C
	streamLen = 1 << 20 // 8 MiB per operand: past L2, bandwidth-bound
)

func newMicrobench() *microbench {
	b := &microbench{
		a:  make([]float64, gemmM*gemmK),
		bb: make([]float64, gemmM*gemmN),
		cc: make([]float64, gemmK*gemmN),
		sx: make([]float64, streamLen),
		sy: make([]float64, streamLen),
	}
	for i := range b.a {
		b.a[i] = 1.0 / float64(i+1)
	}
	for i := range b.bb {
		b.bb[i] = 1.0 / float64(i+2)
	}
	for i := range b.sx {
		b.sx[i] = float64(i%7) + 0.5
	}
	return b
}

// ratesWorkers times the GEMM and stream loops at the given worker
// count and returns (flops/sec, words/sec); zero when the timer
// misbehaves.
//
//repro:ignore determinism startup measurement: wall-clock timing calibrates the cost model, it never feeds a kernel
func (b *microbench) ratesWorkers(workers int) (flopRate, wordRate float64) {
	const reps = 3
	gemmFlops := 2.0 * gemmM * gemmK * gemmN
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		linalg.GemmTN(b.cc, b.a, b.bb, gemmM, gemmK, gemmN, workers)
		if dt := time.Since(t0).Seconds(); dt < best {
			best = dt
		}
	}
	if best > 0 && !math.IsInf(best, 1) {
		flopRate = gemmFlops / best
	}
	// Stream: axpy reads two operands and writes one — 3 words per
	// element. The parallel variant splits the slice into disjoint
	// worker chunks, matching how the engines' folds share bandwidth.
	streamWords := 3.0 * streamLen
	best = math.Inf(1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if workers <= 1 {
			simd.Axpy(b.sy, b.sx, 1.000001)
		} else {
			parallelAxpy(b.sy, b.sx, workers)
		}
		if dt := time.Since(t0).Seconds(); dt < best {
			best = dt
		}
	}
	if best > 0 && !math.IsInf(best, 1) {
		wordRate = streamWords / best
	}
	return flopRate, wordRate
}

// parallelAxpy streams disjoint chunks from `workers` goroutines.
func parallelAxpy(dst, src []float64, workers int) {
	done := make(chan struct{}, workers)
	n := len(dst)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		go func(lo, hi int) {
			simd.Axpy(dst[lo:hi], src[lo:hi], 1.000001)
			done <- struct{}{}
		}(lo, hi)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

// spawnNs times an empty parallel section (spawn + join of `workers`
// goroutines) — the fixed price the planner charges any parallel
// engine pass.
//
//repro:ignore determinism startup measurement: wall-clock timing calibrates the cost model, it never feeds a kernel
func (b *microbench) spawnNs(workers int) float64 {
	const reps = 64
	done := make(chan struct{}, workers)
	t0 := time.Now()
	for r := 0; r < reps; r++ {
		for w := 0; w < workers; w++ {
			go func() { done <- struct{}{} }()
		}
		for w := 0; w < workers; w++ {
			<-done
		}
	}
	return float64(time.Since(t0).Nanoseconds()) / reps
}

// rates returns the active dispatch path's calibrated single-worker
// (flop rate, stream bandwidth).
func (c *Calibration) rates() (flops, bw float64) {
	if simd.Path() == "scalar" {
		return c.FlopsScalar, c.StreamScalar
	}
	return c.FlopsSIMD, c.StreamSIMD
}

// Seconds converts a streaming-model cost into predicted wall-clock
// seconds at the given worker count: flops at the calibrated flop
// rate with compute-efficiency scaling, words at the calibrated
// bandwidth with (weaker) bandwidth scaling, plus the goroutine
// fan-out overhead for parallel sections.
func (c *Calibration) Seconds(words, flops float64, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	fl, bw := c.rates()
	fe := 1 + float64(workers-1)*c.ParEff
	be := 1 + float64(workers-1)*c.MemEff
	t := flops/(fl*fe) + words/(bw*be)
	if workers > 1 {
		t += c.SpawnNs * 1e-9
	}
	return t
}
