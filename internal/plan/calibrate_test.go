package plan

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestKeyStable(t *testing.T) {
	if Key() != Key() {
		t.Fatal("Key() is not stable within a process")
	}
	if Key() == "" {
		t.Fatal("empty machine key")
	}
}

func TestMeasureProducesValidCalibration(t *testing.T) {
	c := Measure()
	if err := c.validate(); err != nil {
		t.Fatalf("fresh measurement is invalid: %v", err)
	}
	if c.ParEff < 0 || c.ParEff > 1 || c.MemEff < 0 || c.MemEff > 1 {
		t.Errorf("efficiency out of [0,1]: par=%g mem=%g", c.ParEff, c.MemEff)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "cal.json")
	c := Measure()
	if err := c.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if *got != *c { //repro:bitwise the cache round trip must preserve every measured constant exactly
		t.Errorf("round trip changed the calibration:\nsaved  %+v\nloaded %+v", c, got)
	}
}

// TestLoadRejectsCorruptCache: every cache defect must surface as a
// Load error (so LoadOrMeasure silently re-calibrates) — never a
// crash, never a garbage calibration accepted as valid.
func TestLoadRejectsCorruptCache(t *testing.T) {
	dir := t.TempDir()
	good := Measure()
	goodJSON, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}

	stale := *good
	stale.Key = "cpu=some-other-machine"
	staleJSON, _ := json.Marshal(&stale)

	wrongVer := *good
	wrongVer.Version = calibrationVersion + 1
	wrongVerJSON, _ := json.Marshal(&wrongVer)

	negRate := *good
	negRate.FlopsSIMD = -1
	negRateJSON, _ := json.Marshal(&negRate)

	cases := []struct {
		name string
		data []byte
	}{
		{"truncated", goodJSON[:len(goodJSON)/2]},
		{"empty", nil},
		{"not-json", []byte("plain text, not a calibration")},
		{"wrong-cpu-key", staleJSON},
		{"wrong-version", wrongVerJSON},
		{"negative-rate", negRateJSON},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".json")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Load(path); err == nil {
				t.Fatalf("Load accepted a %s cache", tc.name)
			}
			c := LoadOrMeasure(path)
			if c == nil {
				t.Fatal("LoadOrMeasure returned nil")
			}
			if err := c.validate(); err != nil {
				t.Fatalf("LoadOrMeasure's re-calibration is invalid: %v", err)
			}
			// The silently re-measured calibration must also have been
			// rewritten so the next process gets a cache hit.
			if reread, err := Load(path); err != nil {
				t.Fatalf("cache not repaired after re-calibration: %v", err)
			} else if reread.Key != Key() {
				t.Fatalf("repaired cache has key %q, want %q", reread.Key, Key())
			}
		})
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "does-not-exist.json")); err == nil {
		t.Fatal("Load succeeded on a missing file")
	}
}

func TestLoadOrMeasureCacheHit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.json")
	c1 := LoadOrMeasure(path) // miss: measures and writes
	c2 := LoadOrMeasure(path) // hit: must return the cached values
	if *c1 != *c2 {           //repro:bitwise a cache hit must return the stored constants verbatim
		t.Errorf("cache hit returned different constants:\nfirst  %+v\nsecond %+v", c1, c2)
	}
}

func TestDefaultCachePathEnvOverride(t *testing.T) {
	t.Setenv(EnvCachePath, "/some/explicit/cal.json")
	if got := DefaultCachePath(); got != "/some/explicit/cal.json" {
		t.Errorf("DefaultCachePath = %q, want the %s override", got, EnvCachePath)
	}
}

func TestSecondsScaling(t *testing.T) {
	c := Default()
	one := c.Seconds(1e6, 1e6, 1)
	if one <= 0 {
		t.Fatalf("non-positive prediction %g", one)
	}
	// More work costs more time.
	if c.Seconds(2e6, 2e6, 1) <= one {
		t.Error("doubling the work did not increase the prediction")
	}
	// The default calibration has positive parallel efficiency, so the
	// per-work time shrinks with workers even after spawn overhead on
	// work this large.
	if par := c.Seconds(1e6, 1e6, 4); par >= one {
		t.Errorf("4 workers predicted %g >= 1 worker %g", par, one)
	}
}

func TestIncrementalEff(t *testing.T) {
	if got := incrementalEff(1e9, 4e9, 4); got < 0.99 || got > 1 {
		t.Errorf("perfect scaling: eff = %g, want 1", got)
	}
	if got := incrementalEff(1e9, 1e9, 4); got != 0 { //repro:bitwise clamp boundary is exact
		t.Errorf("no scaling: eff = %g, want 0", got)
	}
	if got := incrementalEff(1e9, 5e8, 4); got != 0 { //repro:bitwise clamp boundary is exact
		t.Errorf("anti-scaling must clamp to 0, got %g", got)
	}
}
