package plan

// Engine adapters: thin shims that give every local MTTKRP
// implementation the planner's common Engine face. Each adapter's
// Cost mirrors its kernel's documented loop structure via the
// costmodel streaming forms; Prepare builds reusable state (f32
// mirrors, CSF trees, workspaces) so Run stays allocation-free in
// steady state. Output matrices are grown lazily on the first Run and
// reused afterwards, the same grow-only discipline the engines
// themselves follow.

import (
	"fmt"
	"math"

	"repro/internal/costmodel"
	"repro/internal/dimtree"
	"repro/internal/kernel"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// ensureB grows res.B to rows x cols if needed.
func ensureB(res *Result, rows, cols int) {
	if res.B == nil || res.B.Rows() != rows || res.B.Cols() != cols {
		res.B = tensor.NewMatrix(rows, cols) //repro:ignore hotpath-alloc first-call growth; steady state reuses res.B
	}
}

// ensureAll grows res.All to one matrix per mode.
func ensureAll(res *Result, dims []int, R int) {
	if len(res.All) != len(dims) {
		res.All = make([]*tensor.Matrix, len(dims)) //repro:ignore hotpath-alloc first-call growth; steady state reuses res.All
	}
	for n, d := range dims {
		if res.All[n] == nil || res.All[n].Rows() != d || res.All[n].Cols() != R {
			res.All[n] = tensor.NewMatrix(d, R) //repro:ignore hotpath-alloc first-call growth; steady state reuses res.All
		}
	}
}

// ensureB32 grows res.B32 to rows x cols if needed.
func ensureB32(res *Result, rows, cols int) {
	if res.B32 == nil || res.B32.Rows() != rows || res.B32.Cols() != cols {
		res.B32 = tensor.NewMatrix32(rows, cols) //repro:ignore hotpath-alloc first-call growth; steady state reuses res.B32
	}
}

// ensureAll32 grows res.All32 to one matrix per mode.
func ensureAll32(res *Result, dims []int, R int) {
	if len(res.All32) != len(dims) {
		res.All32 = make([]*tensor.Matrix32, len(dims)) //repro:ignore hotpath-alloc first-call growth; steady state reuses res.All32
	}
	for n, d := range dims {
		if res.All32[n] == nil || res.All32[n].Rows() != d || res.All32[n].Cols() != R {
			res.All32[n] = tensor.NewMatrix32(d, R) //repro:ignore hotpath-alloc first-call growth; steady state reuses res.All32
		}
	}
}

// fastEngine wraps kernel.Fast, the KRP-splitting dense f64 kernel.
// An all-modes request runs N independent passes.
type fastEngine struct{}

func (fastEngine) Name() string { return "fast" }

func (fastEngine) Supports(p Problem) bool {
	return !p.Sparse() && p.DType == F64 && !p.TTMChain()
}

func (fastEngine) Cost(p Problem, cal *Calibration, workers int) Cost {
	m := p.model()
	var ec costmodel.EngineCost
	if p.Mode == AllModes {
		ec = m.FastAllModesCost()
	} else {
		ec = m.FastKernelCost(p.Mode)
	}
	ec = ec.Scale(p.reuses())
	return Cost{Words: ec.Words, Flops: ec.Flops, Seconds: cal.Seconds(ec.Words, ec.Flops, workers)}
}

func (fastEngine) Prepare(p Problem, inst *Instance) error {
	if inst.X == nil {
		return fmt.Errorf("plan: engine fast needs a dense f64 tensor")
	}
	if inst.kws == nil {
		inst.kws = new(kernel.Workspace)
	}
	return nil
}

//repro:hotpath
func (fastEngine) Run(p Problem, inst *Instance, res *Result, workers int) {
	if p.Mode == AllModes {
		ensureAll(res, p.Dims, p.R)
		for n := range p.Dims {
			kernel.FastInto(res.All[n], inst.X, inst.Factors, n, workers, inst.kws)
		}
		return
	}
	ensureB(res, p.Dims[p.Mode], p.R)
	kernel.FastInto(res.B, inst.X, inst.Factors, p.Mode, workers, inst.kws)
}

// fast32Engine is the float32-storage variant of kernel.Fast. The cost
// model halves the word traffic (4-byte elements through the same
// streaming structure) and keeps the flop count: accumulation is still
// float64.
type fast32Engine struct{}

func (fast32Engine) Name() string { return "fast32" }

func (fast32Engine) Supports(p Problem) bool {
	return !p.Sparse() && p.DType == F32 && !p.TTMChain()
}

func (fast32Engine) Cost(p Problem, cal *Calibration, workers int) Cost {
	m := p.model()
	var ec costmodel.EngineCost
	if p.Mode == AllModes {
		ec = m.FastAllModesCost()
	} else {
		ec = m.FastKernelCost(p.Mode)
	}
	ec = ec.Scale(p.reuses())
	words := ec.Words / 2 // float32 storage: half the bytes through the same loop structure
	return Cost{Words: words, Flops: ec.Flops, Seconds: cal.Seconds(words, ec.Flops, workers)}
}

func (fast32Engine) Prepare(p Problem, inst *Instance) error {
	if inst.X32 == nil {
		if inst.X == nil {
			return fmt.Errorf("plan: engine fast32 needs a dense tensor")
		}
		inst.X32 = tensor.Dense32FromDense(inst.X)
	}
	if inst.Factors32 == nil && inst.Factors != nil {
		inst.Factors32 = make([]*tensor.Matrix32, len(inst.Factors))
		for k, f := range inst.Factors {
			inst.Factors32[k] = tensor.Matrix32FromMatrix(f)
		}
	}
	if inst.kws == nil {
		inst.kws = new(kernel.Workspace)
	}
	return nil
}

//repro:hotpath
func (fast32Engine) Run(p Problem, inst *Instance, res *Result, workers int) {
	if p.Mode == AllModes {
		ensureAll32(res, p.Dims, p.R)
		for n := range p.Dims {
			kernel.Fast32Into(res.All32[n], inst.X32, inst.Factors32, n, workers, inst.kws)
		}
		return
	}
	ensureB32(res, p.Dims[p.Mode], p.R)
	kernel.Fast32Into(res.B32, inst.X32, inst.Factors32, p.Mode, workers, inst.kws)
}

// treeEngine wraps the dimension-tree engine: the all-modes sweep that
// reuses partial contractions across modes. It declines single-mode
// requests (a tree pays for itself only when every mode is needed).
type treeEngine struct{}

func (treeEngine) Name() string { return "tree" }

func (treeEngine) Supports(p Problem) bool {
	return !p.Sparse() && p.DType == F64 && p.Mode == AllModes && !p.TTMChain()
}

func (treeEngine) Cost(p Problem, cal *Calibration, workers int) Cost {
	ec := p.model().TreeAllModesCost().Scale(p.reuses())
	return Cost{Words: ec.Words, Flops: ec.Flops, Seconds: cal.Seconds(ec.Words, ec.Flops, workers)}
}

func (treeEngine) Prepare(p Problem, inst *Instance) error {
	if inst.X == nil {
		return fmt.Errorf("plan: engine tree needs a dense f64 tensor")
	}
	if inst.tree == nil {
		inst.tree = dimtree.NewEngine(0)
	}
	if inst.treeRes == nil {
		inst.treeRes = new(dimtree.Result)
	}
	return nil
}

//repro:hotpath
func (treeEngine) Run(p Problem, inst *Instance, res *Result, workers int) {
	inst.tree.Workers = workers
	inst.tree.AllModesInto(inst.treeRes, inst.X, inst.Factors)
	res.All = inst.treeRes.B
}

// csfEngine wraps the compressed-sparse-fiber kernels. Its cost charges
// the one-time tree build (sort + compression) against the problem's
// Reuses, which is how the planner learns that CSF loses to COO for a
// single pass over few nonzeros but wins any iterated workload.
type csfEngine struct{}

func (csfEngine) Name() string { return "csf" }

func (csfEngine) Supports(p Problem) bool { return p.Sparse() }

func (csfEngine) Cost(p Problem, cal *Calibration, workers int) Cost {
	m := p.model()
	nnz := float64(p.NNZ)
	var pass costmodel.EngineCost
	if p.Mode == AllModes {
		pass = m.CSFAllModesCost(nnz)
	} else {
		pass = m.CSFCost(nnz, p.Mode)
	}
	total := pass.Scale(p.reuses())
	if p.NNZ > 1 {
		// One-time build: stream the entries twice (sort + compress) and
		// pay comparison work ~ nnz log2 nnz.
		N := float64(len(p.Dims))
		total = total.Add(costmodel.EngineCost{
			Words: 2 * nnz * (N + 1),
			Flops: nnz * math.Log2(nnz),
		})
	}
	if p.DType == F32 {
		total.Words /= 2
	}
	return Cost{Words: total.Words, Flops: total.Flops, Seconds: cal.Seconds(total.Words, total.Flops, workers)}
}

func (csfEngine) Prepare(p Problem, inst *Instance) error {
	if inst.CSF == nil {
		if inst.COO == nil {
			return fmt.Errorf("plan: engine csf needs a sparse tensor")
		}
		root := 0
		if p.Mode != AllModes {
			root = p.Mode
		}
		inst.CSF = sparse.FromCOO(inst.COO, root)
	}
	if p.DType == F32 {
		inst.CSF.EnableF32Values()
		if inst.Factors32 == nil && inst.Factors != nil {
			inst.Factors32 = make([]*tensor.Matrix32, len(inst.Factors))
			for k, f := range inst.Factors {
				inst.Factors32[k] = tensor.Matrix32FromMatrix(f)
			}
		}
	}
	if inst.sws == nil {
		inst.sws = sparse.NewWorkspace()
	}
	return nil
}

//repro:hotpath
func (csfEngine) Run(p Problem, inst *Instance, res *Result, workers int) {
	if p.DType == F32 {
		if p.Mode == AllModes {
			ensureAll32(res, p.Dims, p.R)
			inst.CSF.AllModesInto32(res.All32, inst.Factors32, workers, inst.sws)
			return
		}
		ensureB32(res, p.Dims[p.Mode], p.R)
		inst.CSF.MTTKRPInto32(res.B32, inst.Factors32, p.Mode, workers, inst.sws)
		return
	}
	if p.Mode == AllModes {
		ensureAll(res, p.Dims, p.R)
		inst.CSF.AllModesInto(res.All, inst.Factors, workers, inst.sws)
		return
	}
	ensureB(res, p.Dims[p.Mode], p.R)
	inst.CSF.MTTKRPInto(res.B, inst.Factors, p.Mode, workers, inst.sws)
}

// cooEngine is the naive coordinate-format accumulation loop: no build
// step, no reuse across modes, sequential only. It exists as the
// baseline the cost model can fall back to for tiny single-pass
// problems where even one CSF sort costs more than the whole MTTKRP.
type cooEngine struct{}

func (cooEngine) Name() string { return "coo" }

func (cooEngine) Supports(p Problem) bool {
	return p.Sparse() && p.DType == F64
}

func (cooEngine) Cost(p Problem, cal *Calibration, workers int) Cost {
	m := p.model()
	nnz := float64(p.NNZ)
	var ec costmodel.EngineCost
	if p.Mode == AllModes {
		for n := range p.Dims {
			ec = ec.Add(m.COOCost(nnz, n))
		}
	} else {
		ec = m.COOCost(nnz, p.Mode)
	}
	ec = ec.Scale(p.reuses())
	// The COO loop is sequential; extra workers buy nothing.
	return Cost{Words: ec.Words, Flops: ec.Flops, Seconds: cal.Seconds(ec.Words, ec.Flops, 1)}
}

func (cooEngine) Prepare(p Problem, inst *Instance) error {
	if inst.COO == nil {
		return fmt.Errorf("plan: engine coo needs a sparse tensor in coordinate form")
	}
	return nil
}

// Run executes the naive loop. sparse.MTTKRP allocates its output per
// call; that is acceptable here because the planner only selects coo
// for single-pass problems, never iterated steady-state loops.
func (cooEngine) Run(p Problem, inst *Instance, res *Result, workers int) {
	if p.Mode == AllModes {
		if len(res.All) != len(p.Dims) {
			res.All = make([]*tensor.Matrix, len(p.Dims))
		}
		for n := range p.Dims {
			res.All[n] = sparse.MTTKRP(inst.COO, inst.Factors, n)
		}
		return
	}
	res.B = sparse.MTTKRP(inst.COO, inst.Factors, p.Mode)
}
