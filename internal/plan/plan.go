// Package plan is the cost-model-driven engine planner: one Engine
// interface that every local MTTKRP engine implements (dense
// KRP-splitting kernel, f32 kernel, dimension tree, sparse CSF, sparse
// COO), and a planner that — given a problem descriptor — picks the
// engine, worker count, and GEMM/tile block sizes by evaluating
// internal/costmodel streaming formulas against machine constants
// measured once at startup and cached to disk (see calibrate.go).
//
// Determinism contract: a Choice's block sizes and chunk counts depend
// only on the problem shape and the calibration constants — never on
// the worker count — so applying a plan preserves the repository's
// bitwise worker-count-independence guarantee. Two runs of the same
// problem against the same calibration file produce identical plans.
package plan

import (
	"fmt"
	"strconv"

	"repro/internal/costmodel"
	"repro/internal/dimtree"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

// DType selects the element storage of the planned computation.
type DType int

const (
	F64 DType = iota
	F32
)

func (d DType) String() string {
	if d == F32 {
		return "f32"
	}
	return "f64"
}

// WordBytes is the storage width the obs layer should charge per word.
func (d DType) WordBytes() int {
	if d == F32 {
		return 4
	}
	return 8
}

// AllModes as Problem.Mode requests a full sweep (one output per mode),
// the shape CP-ALS consumes.
const AllModes = -1

// Problem describes one MTTKRP workload for the planner: shape, rank,
// target mode (or AllModes), sparsity (NNZ == 0 means dense), element
// type, the worker-count ceiling, and how many times the plan will be
// reused (amortizes one-time preparation like the CSF build).
type Problem struct {
	Dims  []int
	R     int
	Mode  int
	NNZ   int64
	DType DType
	// MaxWorkers caps the planner's worker search; 0 means
	// linalg.Workers() (the package default, normally GOMAXPROCS).
	MaxWorkers int
	// Reuses is the expected number of passes over the same tensor with
	// the same plan (CP-ALS sets iterations x modes); 0 means 1.
	Reuses int
	// Ranks, when set (one per mode), turns the problem into a TTM
	// chain instead of an MTTKRP: contract every mode k down to
	// Ranks[k] columns, except the skipped mode — Mode names the mode
	// to skip (HOOI's projection), AllModes means skip none (the full
	// core chain). Only the dense f64 TTM engine serves these.
	Ranks []int
}

// TTMChain reports whether the problem is a TTM chain rather than an
// MTTKRP.
func (p Problem) TTMChain() bool { return len(p.Ranks) > 0 }

func (p Problem) validate() error {
	if len(p.Dims) < 2 {
		return fmt.Errorf("plan: order-%d problem (need >= 2 modes)", len(p.Dims))
	}
	for i, d := range p.Dims {
		if d < 1 {
			return fmt.Errorf("plan: dim %d = %d", i, d)
		}
	}
	if p.R < 1 {
		return fmt.Errorf("plan: rank %d", p.R)
	}
	if p.Mode != AllModes && (p.Mode < 0 || p.Mode >= len(p.Dims)) {
		return fmt.Errorf("plan: mode %d out of range for order %d", p.Mode, len(p.Dims))
	}
	if p.NNZ < 0 {
		return fmt.Errorf("plan: negative nnz %d", p.NNZ)
	}
	if p.TTMChain() {
		if len(p.Ranks) != len(p.Dims) {
			return fmt.Errorf("plan: %d chain ranks for order-%d problem", len(p.Ranks), len(p.Dims))
		}
		for i, r := range p.Ranks {
			if r < 1 {
				return fmt.Errorf("plan: chain rank %d = %d", i, r)
			}
		}
		if p.Sparse() {
			return fmt.Errorf("plan: TTM chains are dense-only (nnz = %d)", p.NNZ)
		}
	}
	return nil
}

// Sparse reports whether the problem is a sparse tensor.
func (p Problem) Sparse() bool { return p.NNZ > 0 }

// Elems is the dense element count of the shape.
func (p Problem) Elems() int64 {
	n := int64(1)
	for _, d := range p.Dims {
		n *= int64(d)
	}
	return n
}

// model converts the problem shape into a costmodel.Model.
func (p Problem) model() costmodel.Model {
	dims := make([]float64, len(p.Dims))
	for i, d := range p.Dims {
		dims[i] = float64(d)
	}
	return costmodel.Model{Dims: dims, R: float64(p.R)}
}

// reuses returns the effective pass count (>= 1).
func (p Problem) reuses() float64 {
	if p.Reuses < 1 {
		return 1
	}
	return float64(p.Reuses)
}

// Cost is a planner prediction: streamed words, floating-point
// operations, and the wall-clock seconds the calibration translates
// them into at the chosen worker count.
type Cost struct {
	Words   float64 `json:"words"`
	Flops   float64 `json:"flops"`
	Seconds float64 `json:"seconds"`
}

// Choice is the planner's output: which engine to run, at how many
// workers, with which tunables, and what the cost model predicted.
// GemmKC/GemmMC and Chunks are derived from the shape and calibration
// only — applying them cannot perturb worker-count independence.
type Choice struct {
	Engine    string `json:"engine"`
	Workers   int    `json:"workers"`
	GemmKC    int    `json:"gemm_kc"`
	GemmMC    int    `json:"gemm_mc"`
	Chunks    int    `json:"chunks"`
	Predicted Cost   `json:"predicted"`
	CalKey    string `json:"cal_key"`
}

// Apply installs the choice's tunables into the packages that own
// them, and records the decision as a flight-recorder instant so
// traces carry the plan that shaped them. Call once per process before
// the hot loop, not inside it.
func (c Choice) Apply() {
	if c.GemmKC > 0 && c.GemmMC > 0 {
		// linalg clamps; the planner already keeps candidates in range.
		linalg.SetBlockSizes(c.GemmKC, c.GemmMC)
	}
	if c.Chunks > 0 {
		sparse.SetChunks(c.Chunks)
	}
	flight.Rec().ColdInstant("plan", map[string]string{
		"engine":  c.Engine,
		"workers": strconv.Itoa(c.Workers),
		"gemm_kc": strconv.Itoa(c.GemmKC),
		"gemm_mc": strconv.Itoa(c.GemmMC),
		"chunks":  strconv.Itoa(c.Chunks),
		"cal_key": c.CalKey,
	})
}

// PlanInfo converts the choice into the obs report attachment.
func (c Choice) PlanInfo() *obs.PlanInfo {
	return &obs.PlanInfo{
		Engine:           c.Engine,
		Workers:          c.Workers,
		GemmKC:           c.GemmKC,
		GemmMC:           c.GemmMC,
		Chunks:           c.Chunks,
		PredictedWords:   c.Predicted.Words,
		PredictedSeconds: c.Predicted.Seconds,
		CalibrationKey:   c.CalKey,
	}
}

// Instance carries the operands an engine runs against. Dense engines
// read X (or X32), sparse engines read COO/CSF; Prepare fills any
// derived structure that is missing (e.g. the CSF build from COO, or
// the f32 mirrors of f64 operands).
type Instance struct {
	X         *tensor.Dense
	X32       *tensor.Dense32
	COO       *sparse.COO
	CSF       *sparse.CSF
	Factors   []*tensor.Matrix
	Factors32 []*tensor.Matrix32

	// Engine state built by Prepare and reused across Runs, so steady-
	// state passes stay allocation-free.
	kws     *kernel.Workspace
	sws     *sparse.Workspace
	tree    *dimtree.Engine
	treeRes *dimtree.Result
	tws     *ttm.Workspace
}

// Result receives an engine pass's output. Single-mode f64 runs fill
// B, single-mode f32 runs fill B32, all-modes runs fill All (or
// All32). Engines reuse whatever capacity is already present, so a
// Result recycled across iterations reaches zero steady-state
// allocations after the first pass.
type Result struct {
	B     *tensor.Matrix
	B32   *tensor.Matrix32
	All   []*tensor.Matrix
	All32 []*tensor.Matrix32
	// Y receives a TTM-chain pass's projected tensor.
	Y *tensor.Dense
}

// Engine is the planner's view of one MTTKRP implementation.
type Engine interface {
	// Name is the stable identifier used in plans, flags, and reports.
	Name() string
	// Supports reports whether the engine can run the problem at all
	// (dtype, sparsity, mode coverage).
	Supports(p Problem) bool
	// Cost predicts one full workload (all Reuses passes plus any
	// one-time preparation) at the given worker count.
	Cost(p Problem, cal *Calibration, workers int) Cost
	// Prepare builds any derived operand structure the engine needs
	// (CSF trees, f32 mirrors). It may allocate; Run must not.
	Prepare(p Problem, inst *Instance) error
	// Run executes one pass into res at the given worker count.
	Run(p Problem, inst *Instance, res *Result, workers int)
}

// engines is the registry, in deterministic preference order: when
// predicted costs tie, the earlier entry wins.
var engines = []Engine{
	fastEngine{},
	fast32Engine{},
	treeEngine{},
	csfEngine{},
	cooEngine{},
	ttmEngine{},
}

// Engines returns the registered engine names in registry order.
func Engines() []string {
	names := make([]string, len(engines))
	for i, e := range engines {
		names[i] = e.Name()
	}
	return names
}

// Lookup returns the registered engine with the given name.
func Lookup(name string) (Engine, bool) {
	for _, e := range engines {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}
