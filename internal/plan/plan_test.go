package plan

import (
	"testing"

	"repro/internal/dimtree"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/internal/ttm"
	"repro/internal/workload"
)

// testCal is a fixed calibration so planner tests are machine- and
// SIMD-path-independent (both paths share the same rates).
func testCal() *Calibration {
	return &Calibration{
		Version:      calibrationVersion,
		Key:          "fixture",
		GOMAXPROCS:   8,
		FlopsSIMD:    4e9,
		FlopsScalar:  4e9,
		StreamSIMD:   8e8,
		StreamScalar: 8e8,
		ParEff:       0.8,
		MemEff:       0.3,
		SpawnNs:      20000,
		CacheWords:   1 << 16,
	}
}

func TestPlanDeterministic(t *testing.T) {
	p := Problem{Dims: []int{64, 64, 64}, R: 16, Mode: AllModes, MaxWorkers: 8}
	cal := testCal()
	a, err := Plan(p, cal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(p, cal)
	if err != nil {
		t.Fatal(err)
	}
	if a != b { //repro:bitwise the determinism contract under test: identical plans, floats included
		t.Errorf("same problem, same calibration, different plans:\n%+v\n%+v", a, b)
	}
}

// TestPlanTunablesIndependentOfWorkers: the bitwise worker-count-
// independence guarantee requires that block sizes and chunk counts
// never vary with the worker budget.
func TestPlanTunablesIndependentOfWorkers(t *testing.T) {
	shapes := []Problem{
		{Dims: []int{128, 128, 128}, R: 16, Mode: AllModes},
		{Dims: []int{1024, 16, 16}, R: 16, Mode: 0},
		{Dims: []int{256, 256, 256}, R: 16, Mode: 0, NNZ: 1 << 20},
	}
	cal := testCal()
	for _, p := range shapes {
		var kc0, mc0, ch0 int
		for i, w := range []int{1, 2, 3, 8} {
			p.MaxWorkers = w
			c, err := Plan(p, cal)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				kc0, mc0, ch0 = c.GemmKC, c.GemmMC, c.Chunks
				continue
			}
			if c.GemmKC != kc0 || c.GemmMC != mc0 || c.Chunks != ch0 {
				t.Errorf("dims %v: tunables vary with MaxWorkers=%d: kc/mc/chunks %d/%d/%d vs %d/%d/%d",
					p.Dims, w, c.GemmKC, c.GemmMC, c.Chunks, kc0, mc0, ch0)
			}
		}
	}
}

func TestPlanSmallShapeCutover(t *testing.T) {
	cal := testCal()
	small := Problem{Dims: []int{16, 16, 16}, R: 8, Mode: AllModes, MaxWorkers: 8}
	c, err := Plan(small, cal)
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine != "fast" {
		t.Errorf("16^3 all-modes picked %q, want the fast-kernel cutover", c.Engine)
	}
	// Above the cutover the tree's reuse advantage must reassert itself.
	big := Problem{Dims: []int{32, 32, 32, 32, 32}, R: 16, Mode: AllModes, MaxWorkers: 8}
	c, err = Plan(big, cal)
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine != "tree" {
		t.Errorf("32^5 all-modes picked %q, want tree", c.Engine)
	}
}

func TestPlanGEMMRespectsBudget(t *testing.T) {
	cal := testCal()
	kc, mc := PlanGEMM(4096, 1<<20, 16, cal)
	if kc*mc > cal.CacheWords {
		t.Errorf("blocks %dx%d exceed the %d-word budget", kc, mc, cal.CacheWords)
	}
	if kc < 16 || mc < 16 {
		t.Errorf("blocks %dx%d below the kernel minimum", kc, mc)
	}
}

func TestChoiceApply(t *testing.T) {
	kc0, mc0 := linalg.BlockSizes()
	ch0 := sparse.Chunks()
	defer func() {
		linalg.SetBlockSizes(kc0, mc0)
		sparse.SetChunks(ch0)
	}()
	Choice{GemmKC: 128, GemmMC: 512, Chunks: 64}.Apply()
	if kc, mc := linalg.BlockSizes(); kc != 128 || mc != 512 {
		t.Errorf("Apply left blocks at %dx%d", kc, mc)
	}
	if sparse.Chunks() != 64 {
		t.Errorf("Apply left chunks at %d", sparse.Chunks())
	}
	// Zero fields leave the installed values untouched.
	Choice{}.Apply()
	if kc, mc := linalg.BlockSizes(); kc != 128 || mc != 512 {
		t.Errorf("zero Choice reset blocks to %dx%d", kc, mc)
	}
}

func TestPlanInfoRoundTrip(t *testing.T) {
	c := Choice{Engine: "tree", Workers: 4, GemmKC: 256, GemmMC: 128, Chunks: 32,
		Predicted: Cost{Words: 100, Flops: 200, Seconds: 0.5}, CalKey: "k"}
	pi := c.PlanInfo()
	if pi.Engine != "tree" || pi.Workers != 4 || pi.GemmKC != 256 || pi.GemmMC != 128 ||
		pi.Chunks != 32 || pi.PredictedWords != 100 || pi.PredictedSeconds != 0.5 || pi.CalibrationKey != "k" { //repro:bitwise exact copy check on constants
		t.Errorf("PlanInfo dropped fields: %+v", pi)
	}
}

// denseProblem builds a small dense instance for engine-adapter tests.
func denseProblem(t *testing.T, dims []int, R int) (Problem, *Instance) {
	t.Helper()
	w, err := workload.Generate(workload.Spec{Dims: dims, R: R, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Dims: dims, R: R, Mode: AllModes, MaxWorkers: 4}
	return p, &Instance{X: w.X, Factors: w.Factors}
}

func matricesEqual(t *testing.T, what string, got, want *tensor.Matrix) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("%s: length %d vs %d", what, len(gd), len(wd))
	}
	for i := range gd {
		if gd[i] != wd[i] { //repro:bitwise the adapters must reproduce the wrapped engines exactly
			t.Fatalf("%s: element %d differs: %g vs %g", what, i, gd[i], wd[i])
		}
	}
}

// TestFastAdapterMatchesKernel: the planner adapter must be a zero-cost
// shim — bitwise identical to calling the kernel directly.
func TestFastAdapterMatchesKernel(t *testing.T) {
	dims := []int{12, 10, 8}
	p, inst := denseProblem(t, dims, 6)
	p.Mode = 1
	e, _ := Lookup("fast")
	if err := e.Prepare(p, inst); err != nil {
		t.Fatal(err)
	}
	var res Result
	e.Run(p, inst, &res, 2)
	want := kernel.FastWorkers(inst.X, inst.Factors, 1, 2)
	matricesEqual(t, "fast mode 1", res.B, want)
}

func TestTreeAdapterMatchesDimtree(t *testing.T) {
	dims := []int{10, 9, 8, 7}
	p, inst := denseProblem(t, dims, 5)
	e, _ := Lookup("tree")
	if err := e.Prepare(p, inst); err != nil {
		t.Fatal(err)
	}
	var res Result
	e.Run(p, inst, &res, 2)
	want := dimtree.AllModesWorkers(inst.X, inst.Factors, 2)
	for n := range dims {
		matricesEqual(t, "tree mode", res.All[n], want.B[n])
	}
}

func TestCSFAdapterMatchesSparse(t *testing.T) {
	coo := sparse.Random(11, 500, 40, 30, 20)
	fs := tensor.RandomFactors(3, []int{40, 30, 20}, 8)
	p := Problem{Dims: []int{40, 30, 20}, R: 8, Mode: 0, NNZ: 500, MaxWorkers: 4}
	inst := &Instance{COO: coo, Factors: fs}
	e, _ := Lookup("csf")
	if err := e.Prepare(p, inst); err != nil {
		t.Fatal(err)
	}
	var res Result
	e.Run(p, inst, &res, 2)
	want := sparse.FromCOO(coo, 0).MTTKRPWorkers(fs, 0, 2)
	matricesEqual(t, "csf mode 0", res.B, want)
}

func TestCOOAdapterMatchesSparse(t *testing.T) {
	coo := sparse.Random(13, 200, 24, 18, 12)
	fs := tensor.RandomFactors(5, []int{24, 18, 12}, 4)
	p := Problem{Dims: []int{24, 18, 12}, R: 4, Mode: 2, NNZ: 200, MaxWorkers: 1}
	inst := &Instance{COO: coo, Factors: fs}
	e, _ := Lookup("coo")
	if err := e.Prepare(p, inst); err != nil {
		t.Fatal(err)
	}
	var res Result
	e.Run(p, inst, &res, 1)
	matricesEqual(t, "coo mode 2", res.B, sparse.MTTKRP(coo, fs, 2))
}

// TestFast32AdapterMatchesKernel: the f32 adapter mirrors operands on
// Prepare and must then match the direct f32 kernel bitwise.
func TestFast32AdapterMatchesKernel(t *testing.T) {
	dims := []int{12, 10, 8}
	p, inst := denseProblem(t, dims, 6)
	p.DType = F32
	p.Mode = 0
	e, _ := Lookup("fast32")
	if err := e.Prepare(p, inst); err != nil {
		t.Fatal(err)
	}
	var res Result
	e.Run(p, inst, &res, 1)
	want := kernel.Fast32(inst.X32, inst.Factors32, 0)
	gd, wd := res.B32.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("length %d vs %d", len(gd), len(wd))
	}
	for i := range gd {
		if gd[i] != wd[i] { //repro:bitwise the adapters must reproduce the wrapped engines exactly
			t.Fatalf("element %d differs: %g vs %g", i, gd[i], wd[i])
		}
	}
}

// TestAdapterWorkerIndependence: runs at 1, 2, and 3 workers must be
// bitwise identical through the planner adapters, preserving each
// engine's determinism contract.
func TestAdapterWorkerIndependence(t *testing.T) {
	dims := []int{14, 12, 10}
	p, inst := denseProblem(t, dims, 8)
	for _, name := range []string{"fast", "tree"} {
		e, _ := Lookup(name)
		if err := e.Prepare(p, inst); err != nil {
			t.Fatal(err)
		}
		var ref Result
		e.Run(p, inst, &ref, 1)
		refCopy := make([]*tensor.Matrix, len(dims))
		for n := range refCopy {
			refCopy[n] = tensor.NewMatrix(ref.All[n].Rows(), ref.All[n].Cols())
			copy(refCopy[n].Data(), ref.All[n].Data())
		}
		for _, w := range []int{2, 3} {
			var res Result
			e.Run(p, inst, &res, w)
			for n := range dims {
				matricesEqual(t, name+" worker-independence", res.All[n], refCopy[n])
			}
		}
	}
}

// TestAdapterZeroAllocSteadyState: after a warm first pass, Run must
// not allocate — the planner must not tax the hot loops it schedules.
func TestAdapterZeroAllocSteadyState(t *testing.T) {
	dims := []int{16, 12, 10}
	p, inst := denseProblem(t, dims, 8)
	var res Result
	for _, name := range []string{"fast", "tree"} {
		e, _ := Lookup(name)
		if err := e.Prepare(p, inst); err != nil {
			t.Fatal(err)
		}
		e.Run(p, inst, &res, 1)                                                                  // warm: grows outputs and workspaces
		if allocs := testing.AllocsPerRun(10, func() { e.Run(p, inst, &res, 1) }); allocs != 0 { //repro:bitwise exact allocation count
			t.Errorf("%s: %v allocs/op in steady state, want 0", name, allocs)
		}
	}
	// Sparse CSF path.
	coo := sparse.Random(17, 400, 30, 24, 18)
	fs := tensor.RandomFactors(9, []int{30, 24, 18}, 8)
	sp := Problem{Dims: []int{30, 24, 18}, R: 8, Mode: 0, NNZ: 400}
	sinst := &Instance{COO: coo, Factors: fs}
	e, _ := Lookup("csf")
	if err := e.Prepare(sp, sinst); err != nil {
		t.Fatal(err)
	}
	var sres Result
	e.Run(sp, sinst, &sres, 1)
	if allocs := testing.AllocsPerRun(10, func() { e.Run(sp, sinst, &sres, 1) }); allocs != 0 { //repro:bitwise exact allocation count
		t.Errorf("csf: %v allocs/op in steady state, want 0", allocs)
	}
}

func TestPlanRejectsBadProblems(t *testing.T) {
	cal := testCal()
	bad := []Problem{
		{Dims: []int{64}, R: 8, Mode: 0},               // order 1
		{Dims: []int{64, 64}, R: 0, Mode: 0},           // rank 0
		{Dims: []int{64, 64}, R: 8, Mode: 2},           // mode out of range
		{Dims: []int{64, 0}, R: 8, Mode: 0},            // zero dim
		{Dims: []int{64, 64}, R: 8, Mode: 0, NNZ: -1},  // negative nnz
		{Dims: []int{64, 64}, R: 8, Mode: 0, DType: 9}, // no engine for dtype
	}
	for i, p := range bad {
		if _, err := Plan(p, cal); err == nil {
			t.Errorf("case %d: Plan accepted %+v", i, p)
		}
	}
}

// TestTTMAdapterMatchesChain: the TTM-chain adapter must reproduce a
// direct ttm.ChainWorkers call bitwise, for both the full core chain
// (Mode = AllModes) and a skipped HOOI projection.
func TestTTMAdapterMatchesChain(t *testing.T) {
	dims := []int{12, 10, 8}
	ranks := []int{5, 4, 3}
	x := tensor.RandomDense(21, dims...)
	us := make([]*tensor.Matrix, len(dims))
	for k := range dims {
		us[k] = tensor.RandomMatrix(int64(30+k), dims[k], ranks[k])
	}
	for _, mode := range []int{AllModes, 0, 1, 2} {
		p := Problem{Dims: dims, R: 5, Mode: mode, Ranks: ranks, MaxWorkers: 4}
		inst := &Instance{X: x, Factors: us}
		e, ok := Lookup("ttm")
		if !ok {
			t.Fatal("no ttm engine registered")
		}
		if !e.Supports(p) {
			t.Fatalf("ttm engine does not support %+v", p)
		}
		if err := e.Prepare(p, inst); err != nil {
			t.Fatal(err)
		}
		var res Result
		e.Run(p, inst, &res, 2)
		want := ttm.ChainWorkers(x, us, p.chainSkip(), 2)
		gd, wd := res.Y.Data(), want.Data()
		if len(gd) != len(wd) {
			t.Fatalf("mode %d: length %d vs %d", mode, len(gd), len(wd))
		}
		for i := range gd {
			if gd[i] != wd[i] { //repro:bitwise the adapters must reproduce the wrapped engines exactly
				t.Fatalf("mode %d: element %d differs: %g vs %g", mode, i, gd[i], wd[i])
			}
		}
	}
}

// TestPlanPicksTTMForChains: a chain problem must route to the TTM
// engine (the MTTKRP engines all decline it), and MTTKRP problems must
// never see the TTM engine.
func TestPlanPicksTTMForChains(t *testing.T) {
	cal := testCal()
	p := Problem{Dims: []int{64, 64, 64}, R: 16, Mode: AllModes,
		Ranks: []int{16, 16, 16}, MaxWorkers: 4}
	c, err := Plan(p, cal)
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine != "ttm" {
		t.Errorf("chain problem picked %q, want ttm", c.Engine)
	}
	// Small shapes must not trip the fast-kernel cutover for chains.
	small := Problem{Dims: []int{8, 8, 8}, R: 4, Mode: AllModes,
		Ranks: []int{4, 4, 4}, MaxWorkers: 4}
	c, err = Plan(small, cal)
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine != "ttm" {
		t.Errorf("small chain problem picked %q, want ttm", c.Engine)
	}
	plain := Problem{Dims: []int{64, 64, 64}, R: 16, Mode: AllModes, MaxWorkers: 4}
	if (ttmEngine{}).Supports(plain) {
		t.Error("ttm engine claims a plain MTTKRP problem")
	}
}

// TestTTMAdapterZeroAllocSteadyState: once warm, the chain adapter
// must be allocation-free like the other dense engines.
func TestTTMAdapterZeroAllocSteadyState(t *testing.T) {
	dims := []int{16, 12, 10}
	ranks := []int{6, 5, 4}
	x := tensor.RandomDense(33, dims...)
	us := make([]*tensor.Matrix, len(dims))
	for k := range dims {
		us[k] = tensor.RandomMatrix(int64(40+k), dims[k], ranks[k])
	}
	p := Problem{Dims: dims, R: 6, Mode: AllModes, Ranks: ranks}
	inst := &Instance{X: x, Factors: us}
	e, _ := Lookup("ttm")
	if err := e.Prepare(p, inst); err != nil {
		t.Fatal(err)
	}
	var res Result
	e.Run(p, inst, &res, 1)
	if allocs := testing.AllocsPerRun(10, func() { e.Run(p, inst, &res, 1) }); allocs != 0 { //repro:bitwise exact allocation count
		t.Errorf("ttm: %v allocs/op in steady state, want 0", allocs)
	}
}

func TestPlanRejectsBadChainProblems(t *testing.T) {
	cal := testCal()
	bad := []Problem{
		{Dims: []int{64, 64, 64}, R: 8, Mode: AllModes, Ranks: []int{8, 8}},    // rank count
		{Dims: []int{64, 64, 64}, R: 8, Mode: AllModes, Ranks: []int{8, 0, 8}}, // zero rank
		{Dims: []int{64, 64}, R: 8, Mode: 0, NNZ: 100, Ranks: []int{8, 8}},     // sparse chain
		{Dims: []int{64, 64}, R: 8, Mode: 0, DType: F32, Ranks: []int{8, 8}},   // no f32 chain engine
	}
	for i, p := range bad {
		if _, err := Plan(p, cal); err == nil {
			t.Errorf("case %d: Plan accepted %+v", i, p)
		}
	}
}

func TestEnginesRegistry(t *testing.T) {
	names := Engines()
	want := []string{"fast", "fast32", "tree", "csf", "coo", "ttm"}
	if len(names) != len(want) {
		t.Fatalf("registry %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry %v, want %v", names, want)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup found a nonexistent engine")
	}
}
