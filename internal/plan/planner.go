package plan

// The planner: evaluate every supporting engine's cost model at every
// candidate worker count against the calibration, take the cheapest
// predicted wall-clock, then derive block-size tunables for the pick.
// All choices are deterministic: engines are scanned in registry
// order, worker candidates ascending, and ties keep the earlier
// candidate — so the same problem and calibration always produce the
// same plan. Tunables (GEMM blocks, CSF chunk count) are functions of
// the shape and calibration only, never of the worker count, which
// preserves bitwise worker-count independence of the results.

import (
	"fmt"

	"repro/internal/linalg"
)

// SmallAllModesElems is the dense element count below which the
// planner forces the independent fast kernel for all-modes sweeps. On
// tiny tensors (e.g. 16^3) a whole sweep is tens of microseconds: the
// streaming cost model cannot resolve the real fast-vs-tree gap down
// there (it is dominated by setup, fan-out, and cache effects the
// model does not carry), so rather than trust sub-resolution
// predictions the planner pins the engine with no setup cost and no
// tree construction. BenchmarkSmallShapeCutover locks both sides of
// the cutover.
const SmallAllModesElems = 1 << 13

// Plan picks the engine, worker count, and tunables for a problem.
func Plan(p Problem, cal *Calibration) (Choice, error) {
	return plan(p, cal, "")
}

// PlanEngine plans with the engine fixed by name — the worker count
// and tunables are still chosen by the cost model. This backs the
// explicit -engine <name> command flags.
func PlanEngine(name string, p Problem, cal *Calibration) (Choice, error) {
	e, ok := Lookup(name)
	if !ok {
		return Choice{}, fmt.Errorf("plan: unknown engine %q (have %v)", name, Engines())
	}
	if err := p.validate(); err != nil {
		return Choice{}, err
	}
	if !e.Supports(p) {
		return Choice{}, fmt.Errorf("plan: engine %q does not support this problem (mode %d, dtype %s, nnz %d)",
			name, p.Mode, p.DType, p.NNZ)
	}
	return plan(p, cal, name)
}

func plan(p Problem, cal *Calibration, only string) (Choice, error) {
	if err := p.validate(); err != nil {
		return Choice{}, err
	}
	if cal == nil {
		cal = Default()
	}
	maxW := p.MaxWorkers
	if maxW < 1 {
		maxW = linalg.ResolveWorkers(0)
	}

	var (
		best        Engine
		bestWorkers int
		bestCost    Cost
	)
	for _, e := range engines {
		if !e.Supports(p) {
			continue
		}
		if only != "" && e.Name() != only {
			continue
		}
		if only == "" && p.forceFast() && e.Name() != "fast" {
			continue
		}
		for w := 1; w <= maxW; w++ {
			c := e.Cost(p, cal, w)
			if best == nil || c.Seconds < bestCost.Seconds {
				best, bestWorkers, bestCost = e, w, c
			}
		}
	}
	if best == nil {
		return Choice{}, fmt.Errorf("plan: no engine supports %s order-%d problem (mode %d, dtype %s)",
			map[bool]string{true: "sparse", false: "dense"}[p.Sparse()], len(p.Dims), p.Mode, p.DType)
	}

	kc, mc := blocksFor(p, cal)
	return Choice{
		Engine:    best.Name(),
		Workers:   bestWorkers,
		GemmKC:    kc,
		GemmMC:    mc,
		Chunks:    chunksFor(p),
		Predicted: bestCost,
		CalKey:    cal.Key,
	}, nil
}

// forceFast is the small-shape cutover guard.
func (p Problem) forceFast() bool {
	return !p.Sparse() && p.DType == F64 && p.Mode == AllModes && !p.TTMChain() &&
		p.Elems() < SmallAllModesElems
}

// Auto loads (or measures) the calibration from the default cache path
// and plans. This is the one-call entry point the commands use.
func Auto(p Problem) (Choice, *Calibration, error) {
	cal := LoadOrMeasure(DefaultCachePath())
	choice, err := Plan(p, cal)
	return choice, cal, err
}

// blocksFor sizes the GEMM panel blocks for the problem's dominant
// dense contraction. Sparse problems keep the package defaults — their
// kernels never enter the blocked GEMMs.
func blocksFor(p Problem, cal *Calibration) (kc, mc int) {
	kc, mc = linalg.BlockSizes()
	if p.Sparse() {
		return kc, mc
	}
	if p.TTMChain() {
		// The chain's first (and largest) GEMM contracts the greedy
		// pick — the mode with the smallest Ranks/Dims ratio — against
		// the full tensor: (Elems / I_k0) x I_k0 x Ranks[k0].
		k0 := -1
		skip := p.chainSkip()
		for k := range p.Dims {
			if k == skip {
				continue
			}
			if k0 < 0 || p.Ranks[k]*p.Dims[k0] < p.Ranks[k0]*p.Dims[k] {
				k0 = k
			}
		}
		if k0 < 0 {
			return kc, mc
		}
		return PlanGEMM(int(p.Elems()/int64(p.Dims[k0])), p.Dims[k0], p.Ranks[k0], cal)
	}
	// The dominant GEMM of every dense engine pass has the shape
	// (rows of the kept mode) x (product of the streamed modes) x R:
	// for single-mode MTTKRP the kept mode is the output mode; for
	// all-modes sweeps the root contraction keeps the first half.
	m := p.Dims[0]
	if p.Mode != AllModes {
		m = p.Dims[p.Mode]
	}
	k := int(p.Elems() / int64(m))
	return PlanGEMM(m, k, p.R, cal)
}

// PlanGEMM sizes the panel blocks (KC over the shared dimension, MC
// over the output rows) for an m x k x n GEMM by minimizing the
// modeled slow-memory traffic
//
//	words(KC, MC) ~ m*k  +  k*n * ceil(m/MC)  +  2*m*n * ceil(k/KC)
//
// (stream A once; re-read each B panel per MC row block; read-modify-
// write C per KC panel) subject to the calibrated hot-panel budget
// KC*MC <= CacheWords. Candidates are powers of two, scanned in a
// fixed order with strict improvement, so the result is deterministic
// and — critically — independent of the worker count.
func PlanGEMM(m, k, n int, cal *Calibration) (kc, mc int) {
	if cal == nil {
		cal = Default()
	}
	budget := cal.CacheWords
	if budget < 1<<10 {
		budget = defaultCacheWords
	}
	if m < 1 || k < 1 || n < 1 {
		return linalg.BlockSizes()
	}
	kc, mc = linalg.BlockSizes()
	bestWords := gemmTrafficWords(m, k, n, kc, mc)
	for ckc := 16; ckc <= 4096; ckc *= 2 {
		for cmc := 16; cmc <= 4096; cmc *= 2 {
			if ckc*cmc > budget {
				continue
			}
			if w := gemmTrafficWords(m, k, n, ckc, cmc); w < bestWords {
				bestWords, kc, mc = w, ckc, cmc
			}
		}
	}
	return kc, mc
}

// gemmTrafficWords is the panel-blocking traffic model PlanGEMM
// minimizes.
func gemmTrafficWords(m, k, n, kc, mc int) float64 {
	mBlocks := float64((m + mc - 1) / mc)
	kBlocks := float64((k + kc - 1) / kc)
	return float64(m)*float64(k) + float64(k)*float64(n)*mBlocks + 2*float64(m)*float64(n)*kBlocks
}

// chunksFor sizes the sparse CSF work-queue chunk count from the
// nonzero count alone: enough chunks that the largest is a small
// fraction of the work (load balance), few enough that per-chunk
// fan-out stays negligible. Never a function of the worker count —
// the chunk partition fixes the accumulation grouping, and deriving
// it from workers would break bitwise worker independence.
func chunksFor(p Problem) int {
	if !p.Sparse() {
		return 0 // leave the package default untouched
	}
	chunks := 32
	for nnz := p.NNZ; nnz >= 1<<21 && chunks < 256; nnz >>= 2 {
		chunks *= 2
	}
	return chunks
}
