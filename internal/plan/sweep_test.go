package plan

// The golden shape sweep: on a canon of dense and sparse shapes
// covering the regimes the engines were built for, the planner's pick
// must (a) match the hand-picked engine an expert would choose for
// that shape, and (b) have a modeled cost within 10% of the best
// modeled cost over every supporting engine — i.e. the planner never
// leaves more than 10% predicted performance on the table. The
// calibration comes from the checked-in fixture (not a live
// measurement), with identical rates for the SIMD and scalar paths,
// so the sweep is reproducible on any machine and under REPRO_NOSIMD.

import (
	"encoding/json"
	"os"
	"testing"
)

func fixtureCal(t *testing.T) *Calibration {
	t.Helper()
	data, err := os.ReadFile("testdata/calibration.json")
	if err != nil {
		t.Fatal(err)
	}
	var c Calibration
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	return &c
}

func TestGoldenShapeSweep(t *testing.T) {
	cal := fixtureCal(t)
	cases := []struct {
		name   string
		p      Problem
		engine string
	}{
		{"dense-cubic-64c3-allmodes", Problem{Dims: []int{64, 64, 64}, R: 16, Mode: AllModes}, "tree"},
		{"dense-cubic-128c3-allmodes", Problem{Dims: []int{128, 128, 128}, R: 16, Mode: AllModes}, "tree"},
		{"dense-tiny-16c3-allmodes", Problem{Dims: []int{16, 16, 16}, R: 8, Mode: AllModes}, "fast"},
		{"dense-cubic-64c3-mode0", Problem{Dims: []int{64, 64, 64}, R: 16, Mode: 0}, "fast"},
		{"dense-skewed-long-mode0", Problem{Dims: []int{65536, 16, 16}, R: 16, Mode: 0}, "fast"},
		{"dense-skewed-flat-allmodes", Problem{Dims: []int{8, 8, 65536}, R: 8, Mode: AllModes}, "tree"},
		{"dense-order5-32c5-allmodes", Problem{Dims: []int{32, 32, 32, 32, 32}, R: 16, Mode: AllModes}, "tree"},
		{"dense-order6-8c6-allmodes", Problem{Dims: []int{8, 8, 8, 8, 8, 8}, R: 4, Mode: AllModes}, "tree"},
		{"dense-order2-4096x64-mode0", Problem{Dims: []int{4096, 64}, R: 32, Mode: 0}, "fast"},
		{"dense-f32-64c3-allmodes", Problem{Dims: []int{64, 64, 64}, R: 16, Mode: AllModes, DType: F32}, "fast32"},
		{"dense-f32-128c3-mode1", Problem{Dims: []int{128, 128, 128}, R: 16, Mode: 1, DType: F32}, "fast32"},
		{"sparse-1e5-mode0", Problem{Dims: []int{256, 256, 256}, R: 16, Mode: 0, NNZ: 100_000}, "csf"},
		{"sparse-1e6-allmodes", Problem{Dims: []int{1024, 1024, 1024}, R: 16, Mode: AllModes, NNZ: 1_000_000}, "csf"},
		{"sparse-1e6-iterated", Problem{Dims: []int{512, 512, 512}, R: 16, Mode: AllModes, NNZ: 1_000_000, Reuses: 50}, "csf"},
		{"sparse-tiny-single-pass", Problem{Dims: []int{256, 256, 256}, R: 16, Mode: 1, NNZ: 100}, "coo"},
		{"sparse-f32-1e5-mode0", Problem{Dims: []int{256, 256, 256}, R: 16, Mode: 0, NNZ: 100_000, DType: F32}, "csf"},
	}
	if len(cases) < 12 {
		t.Fatalf("sweep must cover at least 12 canonical shapes, has %d", len(cases))
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.p.MaxWorkers = 8
			c, err := Plan(tc.p, cal)
			if err != nil {
				t.Fatal(err)
			}
			if c.Engine != tc.engine {
				t.Errorf("picked %q, hand-picked engine is %q (predicted %+v)", c.Engine, tc.engine, c.Predicted)
			}
			// The pick's modeled cost must be within 10% of the best
			// modeled cost over all supporting engines. The small-shape
			// cutover is the one sanctioned exception: there the model's
			// streaming terms are too coarse and measurement says fast
			// wins, which is exactly why the guard exists.
			if tc.p.forceFast() {
				return
			}
			best := bestModeledSeconds(tc.p, cal)
			if c.Predicted.Seconds > 1.1*best {
				t.Errorf("pick %q predicts %.4gs, > 1.1x the best supporting engine's %.4gs",
					c.Engine, c.Predicted.Seconds, best)
			}
		})
	}
}

// bestModeledSeconds scans every supporting engine and worker count
// for the cheapest prediction — the planner's own search, re-run
// independently as the sweep's oracle.
func bestModeledSeconds(p Problem, cal *Calibration) float64 {
	best := -1.0
	for _, e := range engines {
		if !e.Supports(p) {
			continue
		}
		for w := 1; w <= p.MaxWorkers; w++ {
			if s := e.Cost(p, cal, w).Seconds; best < 0 || s < best {
				best = s
			}
		}
	}
	return best
}

// TestSweepPlansStableAcrossRuns pins the full Choice (engine, workers,
// blocks, chunks) for a few representative shapes, so an accidental
// cost-model change that silently flips plans shows up in review.
func TestSweepPlansStableAcrossRuns(t *testing.T) {
	cal := fixtureCal(t)
	for _, p := range []Problem{
		{Dims: []int{64, 64, 64}, R: 16, Mode: AllModes, MaxWorkers: 8},
		{Dims: []int{256, 256, 256}, R: 16, Mode: 0, NNZ: 100_000, MaxWorkers: 8},
	} {
		a, err := Plan(p, cal)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Plan(p, cal)
		if err != nil {
			t.Fatal(err)
		}
		if a != b { //repro:bitwise plans must be run-to-run stable, floats included
			t.Errorf("plan for %v not stable: %+v vs %+v", p.Dims, a, b)
		}
		if a.CalKey != cal.Key {
			t.Errorf("plan does not carry the calibration key: %q", a.CalKey)
		}
	}
}
