package plan

// ttmEngine adapts the blocked TTM chain engine (internal/ttm) to the
// planner, so Tucker workloads run through the same calibrated
// engine/worker/block selection as the MTTKRP kernels. A TTM-chain
// problem carries per-mode target Ranks; Mode selects the skipped mode
// (AllModes = none skipped, the full core chain).

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/ttm"
)

// chainSkip maps Problem.Mode onto the chain's skip argument.
func (p Problem) chainSkip() int {
	if p.Mode == AllModes {
		return -1
	}
	return p.Mode
}

// chainRanks converts Ranks to the cost model's float form.
func (p Problem) chainRanks() []float64 {
	out := make([]float64, len(p.Ranks))
	for i, r := range p.Ranks {
		out[i] = float64(r)
	}
	return out
}

type ttmEngine struct{}

func (ttmEngine) Name() string { return "ttm" }

func (ttmEngine) Supports(p Problem) bool {
	return p.TTMChain() && !p.Sparse() && p.DType == F64
}

func (ttmEngine) Cost(p Problem, cal *Calibration, workers int) Cost {
	ec := p.model().TTMChainCost(p.chainRanks(), p.chainSkip()).Scale(p.reuses())
	return Cost{Words: ec.Words, Flops: ec.Flops, Seconds: cal.Seconds(ec.Words, ec.Flops, workers)}
}

func (ttmEngine) Prepare(p Problem, inst *Instance) error {
	if inst.X == nil {
		return fmt.Errorf("plan: engine ttm needs a dense f64 tensor")
	}
	if inst.tws == nil {
		inst.tws = ttm.NewWorkspace()
	}
	return nil
}

//repro:hotpath
func (ttmEngine) Run(p Problem, inst *Instance, res *Result, workers int) {
	skip := p.chainSkip()
	ensureY(res, p, skip)
	ttm.ChainInto(res.Y, inst.X, inst.Factors, skip, workers, inst.tws)
}

// ensureY grows res.Y to the chain's output shape: Ranks[k] on every
// contracted mode, the input extent on the skipped one.
func ensureY(res *Result, p Problem, skip int) {
	ok := res.Y != nil && res.Y.Order() == len(p.Dims)
	if ok {
		for k, d := range p.Dims {
			want := p.Ranks[k]
			if k == skip {
				want = d
			}
			if res.Y.Dim(k) != want {
				ok = false
				break
			}
		}
	}
	if ok {
		return
	}
	outDims := make([]int, len(p.Dims)) //repro:ignore hotpath-alloc first-call growth; steady state reuses res.Y
	for k, d := range p.Dims {
		if k == skip {
			outDims[k] = d
		} else {
			outDims[k] = p.Ranks[k]
		}
	}
	res.Y = tensor.NewDense(outDims...) //repro:ignore hotpath-alloc first-call growth; steady state reuses res.Y
}
