package seq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memsim"
	"repro/internal/tensor"
)

func TestUnblockedCorrectAndExactCost(t *testing.T) {
	dims := []int{4, 3, 5}
	R := 3
	x := tensor.RandomDense(11, dims...)
	fs := tensor.RandomFactors(13, dims, R)
	for n := range dims {
		mach := memsim.New(16)
		res, err := Unblocked(x, fs, n, mach)
		if err != nil {
			t.Fatal(err)
		}
		if !res.B.EqualApprox(Ref(x, fs, n), 1e-10) {
			t.Fatalf("Unblocked wrong result, mode %d", n)
		}
		// Exact counts from the pseudocode: loads = I + I*R*N,
		// stores = I*R, total = I + I*R*(N+1).
		I := int64(x.Elems())
		N := int64(len(dims))
		wantLoads := I + I*int64(R)*N
		wantStores := I * int64(R)
		if res.Counts.Loads != wantLoads || res.Counts.Stores != wantStores {
			t.Fatalf("mode %d: loads=%d stores=%d, want %d/%d",
				n, res.Counts.Loads, res.Counts.Stores, wantLoads, wantStores)
		}
		if got, want := res.Counts.Words(), UpperUnblocked(dims, R); got != want {
			t.Fatalf("words=%d, upper bound says exactly %d", got, want)
		}
		// Peak residency is tiny: N+1 words.
		if res.Counts.Peak > N+1 {
			t.Fatalf("peak residency %d > N+1", res.Counts.Peak)
		}
	}
}

func TestUnblockedNeedsNPlusOneWords(t *testing.T) {
	dims := []int{2, 2, 2}
	x := tensor.RandomDense(1, dims...)
	fs := tensor.RandomFactors(2, dims, 2)
	if _, err := Unblocked(x, fs, 0, memsim.New(3)); err == nil {
		t.Fatal("M=N should be rejected (need N+1)")
	}
	if _, err := Unblocked(x, fs, 0, memsim.New(4)); err != nil {
		t.Fatalf("M=N+1 should work: %v", err)
	}
}

func TestBlockedCorrectAllModesAndBlockSizes(t *testing.T) {
	dims := []int{6, 4, 5}
	R := 3
	x := tensor.RandomDense(3, dims...)
	fs := tensor.RandomFactors(4, dims, R)
	want := make([]*tensor.Matrix, len(dims))
	for n := range dims {
		want[n] = Ref(x, fs, n)
	}
	for _, b := range []int{1, 2, 3, 4, 6, 7} {
		for n := range dims {
			mach := memsim.New(int64(b*b*b + 3*b + 8))
			res, err := Blocked(x, fs, n, b, mach)
			if err != nil {
				t.Fatalf("b=%d mode=%d: %v", b, n, err)
			}
			if !res.B.EqualApprox(want[n], 1e-10) {
				t.Fatalf("Blocked wrong result, b=%d mode=%d", b, n)
			}
		}
	}
}

func TestBlockedCostMatchesEq12WhenDivisible(t *testing.T) {
	// When b divides every dimension, Eq. (12) should hold with
	// equality: I + (I/b^N) * R * (N+1) * b.
	dims := []int{6, 6, 6}
	R := 2
	b := 3
	x := tensor.RandomDense(5, dims...)
	fs := tensor.RandomFactors(6, dims, R)
	mach := memsim.New(int64(b*b*b + 3*b))
	res, err := Blocked(x, fs, 0, b, mach)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Counts.Words(), UpperBlocked(dims, R, b); got != want {
		t.Fatalf("words=%d, Eq.(12)=%d", got, want)
	}
}

func TestBlockedCostAtMostEq12Always(t *testing.T) {
	dims := []int{5, 7, 4}
	R := 3
	x := tensor.RandomDense(7, dims...)
	fs := tensor.RandomFactors(8, dims, R)
	for _, b := range []int{1, 2, 3, 4, 5} {
		mach := memsim.New(int64(b*b*b + 3*b + 2))
		res, err := Blocked(x, fs, 1, b, mach)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts.Words() > UpperBlocked(dims, R, b) {
			t.Fatalf("b=%d: measured %d exceeds Eq.(12) %d",
				b, res.Counts.Words(), UpperBlocked(dims, R, b))
		}
	}
}

func TestBlockedPeakRespectsEq11(t *testing.T) {
	dims := []int{8, 8, 8}
	b := 2
	x := tensor.RandomDense(9, dims...)
	fs := tensor.RandomFactors(10, dims, 2)
	M := int64(b*b*b + 3*b)
	mach := memsim.New(M)
	res, err := Blocked(x, fs, 0, b, mach)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Peak > M {
		t.Fatalf("peak %d exceeds M %d", res.Counts.Peak, M)
	}
}

func TestBlockedRejectsOversizedBlock(t *testing.T) {
	dims := []int{4, 4, 4}
	x := tensor.RandomDense(1, dims...)
	fs := tensor.RandomFactors(2, dims, 2)
	// b=3: 27 + 9 = 36 > M = 35.
	if _, err := Blocked(x, fs, 0, 3, memsim.New(35)); err == nil {
		t.Fatal("expected block-size rejection")
	}
	if _, err := Blocked(x, fs, 0, 0, memsim.New(100)); err == nil {
		t.Fatal("expected rejection of b=0")
	}
}

func TestBlockFits(t *testing.T) {
	// b^N + N*b <= M boundary cases.
	if !BlockFits(2, 3, 14) { // 8 + 6 = 14
		t.Fatal("b=2,N=3,M=14 should fit")
	}
	if BlockFits(2, 3, 13) {
		t.Fatal("b=2,N=3,M=13 should not fit")
	}
	if BlockFits(0, 3, 100) {
		t.Fatal("b=0 never fits")
	}
	if !BlockFits(1, 4, 5) { // 1 + 4 = 5
		t.Fatal("b=1,N=4,M=5 should fit")
	}
}

func TestChooseBlock(t *testing.T) {
	b, err := ChooseBlock(1000, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !BlockFits(b, 3, 1000) {
		t.Fatalf("chosen block %d does not fit", b)
	}
	// Should be near (0.5*1000)^(1/3) ~ 7.9 -> 7.
	if b < 6 || b > 8 {
		t.Fatalf("b = %d, expected near 7", b)
	}
	if _, err := ChooseBlock(3, 3, 0.5); err == nil {
		t.Fatal("M=3 < N+1 should fail")
	}
	if _, err := ChooseBlock(100, 3, 1.5); err == nil {
		t.Fatal("alpha >= 1 should fail")
	}
}

func TestViaMatmulCorrect(t *testing.T) {
	dims := []int{4, 5, 3}
	R := 3
	x := tensor.RandomDense(21, dims...)
	fs := tensor.RandomFactors(22, dims, R)
	for n := range dims {
		mach := memsim.New(256)
		res, err := ViaMatmul(x, fs, n, mach)
		if err != nil {
			t.Fatal(err)
		}
		if !res.B.EqualApprox(Ref(x, fs, n), 1e-9) {
			t.Fatalf("ViaMatmul wrong result, mode %d", n)
		}
	}
}

func TestViaMatmulMode0SkipsPermutation(t *testing.T) {
	dims := []int{8, 8, 8}
	R := 2
	x := tensor.RandomDense(31, dims...)
	fs := tensor.RandomFactors(32, dims, R)
	m0 := memsim.New(300)
	r0, err := ViaMatmul(x, fs, 0, m0)
	if err != nil {
		t.Fatal(err)
	}
	m1 := memsim.New(300)
	r1, err := ViaMatmul(x, fs, 1, m1)
	if err != nil {
		t.Fatal(err)
	}
	I := int64(x.Elems())
	if r1.Counts.Words()-r0.Counts.Words() != 2*I {
		t.Fatalf("mode-1 should cost exactly 2I more (permutation): diff=%d want %d",
			r1.Counts.Words()-r0.Counts.Words(), 2*I)
	}
}

func TestViaMatmulFlopsFewerThanAtomic(t *testing.T) {
	// Breaking atomicity reduces arithmetic: 2IR+... vs (N+1)IR.
	dims := []int{8, 8, 8}
	R := 4
	x := tensor.RandomDense(41, dims...)
	fs := tensor.RandomFactors(42, dims, R)
	mach := memsim.New(512)
	res, err := ViaMatmul(x, fs, 0, mach)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flops >= RefFlops(x, R) {
		t.Fatalf("via-matmul flops %d should be < atomic %d", res.Flops, RefFlops(x, R))
	}
}

func TestGemmTile(t *testing.T) {
	if got := GemmTile(75); got != 5 { // 3*25 = 75
		t.Fatalf("GemmTile(75) = %d, want 5", got)
	}
	if got := GemmTile(74); got != 4 {
		t.Fatalf("GemmTile(74) = %d, want 4", got)
	}
	if got := GemmTile(1); got != 1 {
		t.Fatalf("GemmTile(1) = %d, want 1", got)
	}
}

// Property: all three instrumented algorithms agree with Ref on random
// problems.
func TestAllAlgorithmsAgreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 2 + rng.Intn(2)
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = 2 + rng.Intn(4)
		}
		R := 1 + rng.Intn(3)
		n := rng.Intn(nd)
		x := tensor.RandomDense(seed, dims...)
		fs := tensor.RandomFactors(seed+1, dims, R)
		want := Ref(x, fs, n)

		ru, err := Unblocked(x, fs, n, memsim.New(64))
		if err != nil || !ru.B.EqualApprox(want, 1e-9) {
			return false
		}
		b := 1 + rng.Intn(3)
		rb, err := Blocked(x, fs, n, b, memsim.New(int64(b*b*b*b+4*b+16)))
		if err != nil || !rb.B.EqualApprox(want, 1e-9) {
			return false
		}
		rm, err := ViaMatmul(x, fs, n, memsim.New(512))
		if err != nil || !rm.B.EqualApprox(want, 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The headline sequential claim (Section VI-A): in the factor-dominated
// regime the blocked algorithm beats via-matmul; in the
// tensor-dominated regime they are comparable.
func TestBlockedBeatsMatmulWhenFactorsDominate(t *testing.T) {
	dims := []int{12, 12, 12}
	R := 32 // large R relative to M: factor traffic dominates
	M := int64(64)
	x := tensor.RandomDense(51, dims...)
	fs := tensor.RandomFactors(52, dims, R)
	b, err := ChooseBlock(M, 3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	machB := memsim.New(M)
	rb, err := Blocked(x, fs, 0, b, machB)
	if err != nil {
		t.Fatal(err)
	}
	machM := memsim.New(M)
	rm, err := ViaMatmul(x, fs, 0, machM)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Counts.Words() >= rm.Counts.Words() {
		t.Fatalf("blocked (%d words) should beat via-matmul (%d words) when NR >> M^(1-1/N)",
			rb.Counts.Words(), rm.Counts.Words())
	}
}

func TestUpperBoundFormulas(t *testing.T) {
	dims := []int{6, 6, 6}
	if got, want := UpperUnblocked(dims, 2), int64(216+216*2*4); got != want {
		t.Fatalf("UpperUnblocked = %d, want %d", got, want)
	}
	if got, want := UpperBlocked(dims, 2, 3), int64(216+8*2*4*3); got != want {
		t.Fatalf("UpperBlocked = %d, want %d", got, want)
	}
	if UpperBlockedSimplified(dims, 2, 100) <= float64(216) {
		t.Fatal("simplified bound should exceed I")
	}
	if UpperViaMatmul(dims, 2, 1, 100) <= UpperViaMatmul(dims, 2, 0, 100) {
		t.Fatal("non-zero mode should cost more (permutation)")
	}
}
