package seq

import (
	"fmt"
	"math"

	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// BlockFits reports whether block size b satisfies the fast-memory
// constraint of Algorithm 2, Eq. (11): b^N + N*b <= M.
func BlockFits(b, N int, M int64) bool {
	if b < 1 {
		return false
	}
	// Compute b^N guarding against overflow.
	pow := int64(1)
	for i := 0; i < N; i++ {
		if pow > M { // already too big; M bounds the useful range
			return false
		}
		pow *= int64(b)
	}
	return pow+int64(N)*int64(b) <= M
}

// ChooseBlock picks the Algorithm 2 block size b = floor((alpha*M)^(1/N))
// used in the proof of Theorem 6.1, decreasing it if necessary until
// Eq. (11) holds. It returns an error when even b = 1 does not fit
// (i.e. M < N+1).
func ChooseBlock(M int64, N int, alpha float64) (int, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("seq: alpha must be in (0,1), got %v", alpha)
	}
	b := int(math.Floor(math.Pow(alpha*float64(M), 1/float64(N))))
	if b < 1 {
		b = 1
	}
	for b >= 1 && !BlockFits(b, N, M) {
		b--
	}
	if b < 1 {
		return 0, fmt.Errorf("seq: no valid block size for M=%d, N=%d (need M >= N+1)", M, N)
	}
	return b, nil
}

// Blocked runs Algorithm 2 (Sequential Blocked MTTKRP) with block size
// b on the machine. Per block it loads the subtensor once and, for each
// rank column r, loads the N-1 factor subvectors and the output
// subvector, updates the output subvector in fast memory, and stores it
// back. The communication cost is bounded by Eq. (12):
//
//	I + ceil(I1/b)*...*ceil(IN/b) * R * (N+1) * b.
func Blocked(x *tensor.Dense, factors []*tensor.Matrix, n, b int, mach *memsim.Machine) (*Result, error) {
	N, R := checkArgs(x, factors, n)
	if b < 1 {
		return nil, fmt.Errorf("seq: block size %d < 1", b)
	}
	if !BlockFits(b, N, mach.Capacity()) {
		return nil, fmt.Errorf("seq: block size %d violates b^N + N*b <= M with N=%d, M=%d", b, N, mach.Capacity())
	}
	span := obs.Start(obs.PhaseSeq)
	defer span.Stop()
	dims := x.Dims()
	out := tensor.NewMatrix(dims[n], R)
	start := mach.Snapshot()

	// Enumerate blocks: j[k] in multiples of b.
	nblocks := make([]int, N)
	for k, d := range dims {
		nblocks[k] = (d + b - 1) / b
	}
	blk := make([]int, N) // block coordinates
	lo := make([]int, N)
	hi := make([]int, N)
	for {
		blockElems := int64(1)
		for k := 0; k < N; k++ {
			lo[k] = blk[k] * b
			hi[k] = lo[k] + b
			if hi[k] > dims[k] {
				hi[k] = dims[k]
			}
			blockElems *= int64(hi[k] - lo[k])
		}
		if err := mach.Load(blockElems); err != nil { // subtensor block
			return nil, err
		}
		bn := int64(hi[n] - lo[n])
		for r := 0; r < R; r++ {
			var vecWords int64
			for k := 0; k < N; k++ {
				if k == n {
					continue
				}
				vecWords += int64(hi[k] - lo[k])
			}
			if err := mach.Load(vecWords); err != nil { // A(k)(jk:Jk, r)
				return nil, err
			}
			if err := mach.Load(bn); err != nil { // B(n)(jn:Jn, r)
				return nil, err
			}
			// Inner loops over the block (order irrelevant to cost).
			blockKernelColumn(out, x, factors, n, r, lo, hi)
			if err := mach.Store(bn); err != nil { // store B subvector
				return nil, err
			}
			if err := mach.Evict(vecWords); err != nil {
				return nil, err
			}
		}
		if err := mach.Evict(blockElems); err != nil {
			return nil, err
		}
		// Advance block coordinates.
		done := true
		for k := 0; k < N; k++ {
			blk[k]++
			if blk[k] < nblocks[k] {
				done = false
				break
			}
			blk[k] = 0
		}
		if done {
			break
		}
	}
	end := mach.Snapshot()
	return &Result{B: out, Counts: diff(start, end), Flops: RefFlops(x, R)}, nil
}

// blockKernelColumn accumulates, for a single rank column r, the
// contribution of the subtensor block [lo, hi) into out. Products stay
// atomic: each (i, r) forms its full (N-1)-way factor product.
func blockKernelColumn(out *tensor.Matrix, x *tensor.Dense, factors []*tensor.Matrix, n, r int, lo, hi []int) {
	N := x.Order()
	idx := make([]int, N)
	copy(idx, lo)
	for {
		p := x.At(idx...)
		for k, f := range factors {
			if k == n {
				continue
			}
			p *= f.At(idx[k], r)
		}
		out.AddAt(idx[n], r, p)
		// Advance within the block.
		done := true
		for k := 0; k < N; k++ {
			idx[k]++
			if idx[k] < hi[k] {
				done = false
				break
			}
			idx[k] = lo[k]
		}
		if done {
			return
		}
	}
}
