package seq

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/tensor"
)

// FuzzAlgorithmsAgree cross-checks all sequential algorithms on
// fuzzer-chosen shapes: any disagreement between the unblocked,
// blocked, via-matmul, and shared-memory kernels is a bug. Under
// plain `go test` only the seed corpus runs; `go test -fuzz=Fuzz...`
// explores further.
func FuzzAlgorithmsAgree(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(2), uint8(0), uint8(2))
	f.Add(int64(7), uint8(2), uint8(6), uint8(3), uint8(1), uint8(1))
	f.Add(int64(42), uint8(4), uint8(2), uint8(1), uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nd, side, r, mode, blk uint8) {
		N := 2 + int(nd)%3   // 2..4
		s := 2 + int(side)%4 // 2..5
		R := 1 + int(r)%4    // 1..4
		b := 1 + int(blk)%3  // 1..3
		dims := make([]int, N)
		for i := range dims {
			dims[i] = s
		}
		n := int(mode) % N
		x := tensor.RandomDense(seed, dims...)
		fs := tensor.RandomFactors(seed+1, dims, R)
		want := Ref(x, fs, n)

		if got := RefParallel(x, fs, n, 3); !got.EqualApprox(want, 1e-9) {
			t.Fatalf("RefParallel disagrees: %v", got.MaxAbsDiff(want))
		}
		ru, err := Unblocked(x, fs, n, memsim.New(64))
		if err != nil {
			t.Fatal(err)
		}
		if !ru.B.EqualApprox(want, 1e-9) {
			t.Fatal("Unblocked disagrees")
		}
		M := int64(1)
		for i := 0; i < N; i++ {
			M *= int64(b)
		}
		M += int64(N*b) + 8
		rb, err := Blocked(x, fs, n, b, memsim.New(M))
		if err != nil {
			t.Fatal(err)
		}
		if !rb.B.EqualApprox(want, 1e-9) {
			t.Fatal("Blocked disagrees")
		}
		rm, err := ViaMatmul(x, fs, n, memsim.New(4096))
		if err != nil {
			t.Fatal(err)
		}
		if !rm.B.EqualApprox(want, 1e-8) {
			t.Fatal("ViaMatmul disagrees")
		}
		// Invariants: measured counts within the closed-form bounds.
		if ru.Counts.Words() != UpperUnblocked(dims, R) {
			t.Fatal("Algorithm 1 cost formula violated")
		}
		if rb.Counts.Words() > UpperBlocked(dims, R, b) {
			t.Fatal("Eq. (12) violated")
		}
	})
}
