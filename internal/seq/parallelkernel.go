package seq

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/kernel"
	"repro/internal/tensor"
)

// RefParallel computes the MTTKRP with the atomic kernel split across
// `workers` goroutines (0 means GOMAXPROCS). The tensor's element
// range is divided into contiguous chunks; each worker accumulates
// into a private output matrix through a cached column-slice table
// (the same hoisting as AccumulateRef), and the privates are combined
// with the engine's parallel pairwise tree reduction
// (kernel.ReduceTree). This is the shared-memory counterpart of the
// distributed algorithms: within one node, the "communication" is the
// final R * I_n * workers reduction, mirroring the C-matrix reductions
// of Algorithms 3-4.
//
// Results equal Ref up to floating-point reassociation of the final
// reduction.
func RefParallel(x *tensor.Dense, factors []*tensor.Matrix, n, workers int) *tensor.Matrix {
	_, R := checkArgs(x, factors, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := x.Elems()
	if workers > total {
		workers = total
	}
	if workers == 1 {
		return Ref(x, factors, n)
	}
	N := x.Order()
	dims := x.Dims()
	data := x.Data()
	privates := make([]*tensor.Matrix, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * total / workers
			hi := (w + 1) * total / workers
			b := tensor.NewMatrix(x.Dim(n), R)
			fcols, bcols := cacheCols(b, factors, n, R)
			idx := multiIndexOf(lo, dims)
			for off := lo; off < hi; off++ {
				v := data[off]
				in := idx[n]
				for r := 0; r < R; r++ {
					p := v
					for k := 0; k < N; k++ {
						if k == n {
							continue
						}
						p *= fcols[k*R+r][idx[k]]
					}
					bcols[r][in] += p
				}
				incIndex(idx, dims)
			}
			privates[w] = b
		}(w)
	}
	wg.Wait()
	bufs := make([][]float64, workers)
	for w, p := range privates {
		bufs[w] = p.Data()
	}
	kernel.ReduceTree(bufs, workers)
	return privates[0]
}

// multiIndexOf converts a column-major linear offset to a multi-index.
func multiIndexOf(off int, dims []int) []int {
	idx := make([]int, len(dims))
	for k, d := range dims {
		idx[k] = off % d
		off /= d
	}
	if off != 0 {
		panic(fmt.Sprintf("seq: offset out of range for dims %v", dims))
	}
	return idx
}
