package seq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestRefParallelMatchesRef(t *testing.T) {
	dims := []int{7, 6, 5}
	R := 4
	x := tensor.RandomDense(41, dims...)
	fs := tensor.RandomFactors(42, dims, R)
	for _, workers := range []int{0, 1, 2, 3, 8, 1000} {
		for n := range dims {
			got := RefParallel(x, fs, n, workers)
			want := Ref(x, fs, n)
			if !got.EqualApprox(want, 1e-10) {
				t.Fatalf("workers=%d mode=%d: maxdiff %v", workers, n, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestRefParallelTinyTensor(t *testing.T) {
	// workers > elements must clamp.
	x := tensor.RandomDense(43, 2, 2)
	fs := tensor.RandomFactors(44, []int{2, 2}, 2)
	got := RefParallel(x, fs, 0, 64)
	if !got.EqualApprox(Ref(x, fs, 0), 1e-12) {
		t.Fatal("clamped workers produced wrong result")
	}
}

func TestMultiIndexOf(t *testing.T) {
	dims := []int{3, 4, 2}
	for off := 0; off < 24; off++ {
		idx := multiIndexOf(off, dims)
		back := idx[0] + 3*idx[1] + 12*idx[2]
		if back != off {
			t.Fatalf("offset %d -> %v -> %d", off, idx, back)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	multiIndexOf(24, dims)
}

func TestRefParallelQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 2 + rng.Intn(2)
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = 1 + rng.Intn(5)
		}
		R := 1 + rng.Intn(3)
		x := tensor.RandomDense(seed, dims...)
		fs := tensor.RandomFactors(seed+1, dims, R)
		n := rng.Intn(nd)
		w := 1 + rng.Intn(6)
		return RefParallel(x, fs, n, w).EqualApprox(Ref(x, fs, n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
