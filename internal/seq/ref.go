// Package seq implements the paper's sequential MTTKRP algorithms:
// the unblocked Algorithm 1, the communication-optimal blocked
// Algorithm 2, the MTTKRP-via-matrix-multiplication baseline of
// Section III-B / VI-A, and a shared-memory multicore kernel. The
// instrumented variants run against a memsim.Machine and account for
// every load and store in the two-level memory model, so their
// measured communication can be compared directly with the lower
// bounds of Section IV.
package seq

import (
	"fmt"

	"repro/internal/tensor"
)

// checkArgs validates a (tensor, factors, mode) triple and returns
// (N, R). factors must have one entry per mode; factors[n] may be nil.
func checkArgs(x *tensor.Dense, factors []*tensor.Matrix, n int) (int, int) {
	N := x.Order()
	if len(factors) != N {
		panic(fmt.Sprintf("seq: %d factors for order-%d tensor", len(factors), N))
	}
	if n < 0 || n >= N {
		panic(fmt.Sprintf("seq: mode %d out of range [0,%d)", n, N))
	}
	R := -1
	for k, f := range factors {
		if k == n {
			continue
		}
		if f == nil {
			panic(fmt.Sprintf("seq: factor %d is nil", k))
		}
		if f.Rows() != x.Dim(k) {
			panic(fmt.Sprintf("seq: factor %d has %d rows, tensor dim is %d", k, f.Rows(), x.Dim(k)))
		}
		if R == -1 {
			R = f.Cols()
		} else if f.Cols() != R {
			panic(fmt.Sprintf("seq: factor %d has %d cols, want %d", k, f.Cols(), R))
		}
	}
	if R == -1 {
		panic("seq: MTTKRP needs at least two modes")
	}
	return N, R
}

// Ref computes the MTTKRP B(n) = X_(n) * KRP directly from Definition
// 2.1, evaluating each N-ary multiply atomically. It performs no
// communication accounting and serves as the correctness reference and
// as the local kernel of the parallel algorithms.
func Ref(x *tensor.Dense, factors []*tensor.Matrix, n int) *tensor.Matrix {
	b := tensor.NewMatrix(x.Dim(n), factorCols(factors, n))
	AccumulateRef(b, x, factors, n)
	return b
}

func factorCols(factors []*tensor.Matrix, n int) int {
	for k, f := range factors {
		if k != n && f != nil {
			return f.Cols()
		}
	}
	panic("seq: no participating factor")
}

// AccumulateRef adds the MTTKRP contribution of x into b, which must be
// x.Dim(n) x R. Splitting allocation from accumulation lets parallel
// ranks accumulate local contributions into a shared-shape buffer.
//
// The factor and output columns are hoisted into a cached slice table
// before the element loop, so the N-ary inner products index plain
// []float64 slices instead of going through At/AddAt bounds-and-offset
// arithmetic. The multiplication order of Definition 2.1's atomic
// product is unchanged, so results are bitwise identical to the
// uncached kernel.
func AccumulateRef(b *tensor.Matrix, x *tensor.Dense, factors []*tensor.Matrix, n int) {
	N, R := checkArgs(x, factors, n)
	if b.Rows() != x.Dim(n) || b.Cols() != R {
		panic(fmt.Sprintf("seq: output is %dx%d, want %dx%d", b.Rows(), b.Cols(), x.Dim(n), R))
	}
	dims := x.Dims()
	idx := make([]int, N)
	data := x.Data()
	fcols, bcols := cacheCols(b, factors, n, R)
	for off := 0; off < len(data); off++ {
		v := data[off]
		// Atomic N-ary multiplies: the (N-1)-way factor product is
		// formed per (i, r) with no reuse across iterations.
		in := idx[n]
		for r := 0; r < R; r++ {
			p := 1.0
			for k := 0; k < N; k++ {
				if k == n {
					continue
				}
				p *= fcols[k*R+r][idx[k]]
			}
			bcols[r][in] += v * p
		}
		incIndex(idx, dims)
	}
}

// cacheCols builds the flat column-slice tables used by the reference
// kernels: fcols[k*R+r] is column r of factors[k] (nil for mode n) and
// bcols[r] is column r of the output.
func cacheCols(b *tensor.Matrix, factors []*tensor.Matrix, n, R int) (fcols, bcols [][]float64) {
	N := len(factors)
	fcols = make([][]float64, N*R)
	for k, f := range factors {
		if k == n {
			continue
		}
		for r := 0; r < R; r++ {
			fcols[k*R+r] = f.Col(r)
		}
	}
	bcols = make([][]float64, R)
	for r := 0; r < R; r++ {
		bcols[r] = b.Col(r)
	}
	return fcols, bcols
}

// RefFlops returns the arithmetic operation count of the atomic
// reference kernel: each of the I*R loop iterations performs an N-ary
// multiply (N-1 multiplications) plus one more multiplication by the
// tensor entry and one addition.
func RefFlops(x *tensor.Dense, R int) int64 {
	N := int64(x.Order())
	return int64(x.Elems()) * int64(R) * (N + 1)
}

// incIndex advances a column-major multi-index (duplicated from tensor
// to keep the hot loop free of cross-package calls).
func incIndex(idx, dims []int) {
	for k := range idx {
		idx[k]++
		if idx[k] < dims[k] {
			return
		}
		idx[k] = 0
	}
}
