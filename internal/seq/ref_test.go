package seq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/tensor"
)

// viaUnfold computes MTTKRP the textbook way (X_(n) * KRP) as an
// independent oracle for Ref.
func viaUnfold(x *tensor.Dense, factors []*tensor.Matrix, n int) *tensor.Matrix {
	return linalg.MatMul(tensor.Unfold(x, n), tensor.KRPAll(factors, n))
}

func TestRefMatchesUnfoldOracle(t *testing.T) {
	dimsets := [][]int{{4, 5}, {3, 4, 5}, {2, 3, 2, 3}, {2, 2, 2, 2, 2}}
	for _, dims := range dimsets {
		x := tensor.RandomDense(17, dims...)
		fs := tensor.RandomFactors(23, dims, 3)
		for n := range dims {
			got := Ref(x, fs, n)
			want := viaUnfold(x, fs, n)
			if !got.EqualApprox(want, 1e-10) {
				t.Fatalf("Ref differs from oracle, dims=%v mode=%d, maxdiff=%v",
					dims, n, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestRefHandExample(t *testing.T) {
	// 2x2 matrix case (N=2): MTTKRP reduces to X * A(1) for n=0.
	x := tensor.NewDenseFromData([]float64{1, 2, 3, 4}, 2, 2) // cols [1 2],[3 4]
	a1 := tensor.NewMatrixFromData([]float64{1, 1, 2, 0}, 2, 2)
	fs := []*tensor.Matrix{nil, a1}
	b := Ref(x, fs, 0)
	// B(i, r) = sum_j X(i,j) A1(j,r).
	want := linalg.MatMul(tensor.NewMatrixFromData([]float64{1, 2, 3, 4}, 2, 2), a1)
	if !b.EqualApprox(want, 1e-12) {
		t.Fatalf("hand example mismatch: got %v want %v", b.Data(), want.Data())
	}
}

func TestRefRankOneExact(t *testing.T) {
	// For an exact rank-1 tensor with unit factors, the MTTKRP has a
	// closed form: B(n)(i,r) = a_n(i) * prod_{k!=n} <a_k, a_k(r-col)>.
	dims := []int{3, 4, 5}
	fs := tensor.RandomFactors(5, dims, 1)
	x := tensor.FromFactors(fs)
	for n := range dims {
		b := Ref(x, fs, n)
		scale := 1.0
		for k := range dims {
			if k == n {
				continue
			}
			col := fs[k].Col(0)
			var s float64
			for _, v := range col {
				s += v * v
			}
			scale *= s
		}
		for i := 0; i < dims[n]; i++ {
			want := fs[n].At(i, 0) * scale
			if math.Abs(b.At(i, 0)-want) > 1e-10 {
				t.Fatalf("rank-1 closed form fails at mode %d row %d", n, i)
			}
		}
	}
}

func TestAccumulateRefAddsContributions(t *testing.T) {
	dims := []int{3, 3, 3}
	x := tensor.RandomDense(31, dims...)
	fs := tensor.RandomFactors(32, dims, 2)
	b := tensor.NewMatrix(3, 2)
	AccumulateRef(b, x, fs, 0)
	AccumulateRef(b, x, fs, 0)
	single := Ref(x, fs, 0)
	single.Add(1, Ref(x, fs, 0))
	if !b.EqualApprox(single, 1e-10) {
		t.Fatal("AccumulateRef does not accumulate")
	}
}

func TestCheckArgsPanics(t *testing.T) {
	x := tensor.RandomDense(1, 3, 4)
	fs := tensor.RandomFactors(2, []int{3, 4}, 2)
	for _, f := range []func(){
		func() { Ref(x, fs[:1], 0) },
		func() { Ref(x, fs, 2) },
		func() { Ref(x, fs, -1) },
		func() { Ref(x, []*tensor.Matrix{nil, nil}, 0) },
		func() { Ref(x, []*tensor.Matrix{fs[0], tensor.NewMatrix(5, 2)}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	// Mismatched R across two participating factors.
	x3 := tensor.RandomDense(1, 2, 3, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for mismatched R")
			}
		}()
		Ref(x3, []*tensor.Matrix{nil, tensor.NewMatrix(3, 2), tensor.NewMatrix(4, 3)}, 0)
	}()
}

func TestRefFlops(t *testing.T) {
	x := tensor.NewDense(2, 3, 4)
	if got, want := RefFlops(x, 5), int64(24*5*4); got != want {
		t.Fatalf("RefFlops = %d, want %d", got, want)
	}
}

// Property: MTTKRP is linear in the tensor argument.
func TestRefLinearInTensorQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 2 + rng.Intn(2)
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = 1 + rng.Intn(4)
		}
		R := 1 + rng.Intn(3)
		fs := tensor.RandomFactors(seed, dims, R)
		x := tensor.RandomDense(seed+1, dims...)
		y := tensor.RandomDense(seed+2, dims...)
		n := rng.Intn(nd)
		z := x.Clone()
		z.Add(2.5, y)
		bz := Ref(z, fs, n)
		bx := Ref(x, fs, n)
		bx.Add(2.5, Ref(y, fs, n))
		return bz.EqualApprox(bx, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
