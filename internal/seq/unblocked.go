package seq

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Result bundles the output of an instrumented sequential MTTKRP with
// its communication counts and arithmetic cost.
type Result struct {
	B      *tensor.Matrix
	Counts memsim.Counts
	Flops  int64
}

// Unblocked runs Algorithm 1 (Sequential Unblocked MTTKRP) on the
// machine, counting every load and store exactly as in the pseudocode:
// one load per tensor entry, and per (entry, r) a load of each of the
// N-1 factor entries, a load of the output entry, and a store of the
// output entry. Its communication cost is W <= I + I*R*(N+1).
//
// It requires fast memory capacity M >= N+1 (one tensor entry, N-1
// factor entries, and one output entry resident at once).
func Unblocked(x *tensor.Dense, factors []*tensor.Matrix, n int, mach *memsim.Machine) (*Result, error) {
	N, R := checkArgs(x, factors, n)
	if mach.Capacity() < int64(N)+1 {
		return nil, fmt.Errorf("seq: unblocked needs M >= N+1 = %d, have %d", N+1, mach.Capacity())
	}
	span := obs.Start(obs.PhaseSeq)
	defer span.Stop()
	b := tensor.NewMatrix(x.Dim(n), R)
	start := mach.Snapshot()

	dims := x.Dims()
	idx := make([]int, N)
	data := x.Data()
	for off := 0; off < len(data); off++ {
		if err := mach.Load(1); err != nil { // X(i1,...,iN)
			return nil, err
		}
		v := data[off]
		in := idx[n]
		for r := 0; r < R; r++ {
			if err := mach.Load(int64(N) - 1); err != nil { // A(k)(ik, r), k != n
				return nil, err
			}
			if err := mach.Load(1); err != nil { // B(n)(in, r)
				return nil, err
			}
			p := v // atomic N-ary multiply
			for k, f := range factors {
				if k == n {
					continue
				}
				p *= f.At(idx[k], r)
			}
			b.AddAt(in, r, p)
			if err := mach.Store(1); err != nil { // B(n)(in, r)
				return nil, err
			}
			if err := mach.Evict(int64(N) - 1); err != nil { // drop factor entries
				return nil, err
			}
		}
		if err := mach.Evict(1); err != nil { // drop X entry
			return nil, err
		}
		incIndex(idx, dims)
	}
	end := mach.Snapshot()
	return &Result{
		B:      b,
		Counts: diff(start, end),
		Flops:  RefFlops(x, R),
	}, nil
}

func diff(start, end memsim.Counts) memsim.Counts {
	return memsim.Counts{
		Loads:  end.Loads - start.Loads,
		Stores: end.Stores - start.Stores,
		Peak:   end.Peak,
	}
}
