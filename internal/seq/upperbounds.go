package seq

import "math"

// This file evaluates the paper's closed-form sequential communication
// upper bounds so tests and experiments can compare measured counts
// against them.

// UpperUnblocked returns the Algorithm 1 bound W <= I + I*R*(N+1)
// (Section V-A).
func UpperUnblocked(dims []int, R int) int64 {
	I := prodInt64(dims)
	N := int64(len(dims))
	return I + I*int64(R)*(N+1)
}

// UpperBlocked returns the Algorithm 2 bound of Eq. (12):
//
//	I + ceil(I1/b)*...*ceil(IN/b) * R * (N+1) * b.
func UpperBlocked(dims []int, R, b int) int64 {
	I := prodInt64(dims)
	N := int64(len(dims))
	blocks := int64(1)
	for _, d := range dims {
		blocks *= int64((d + b - 1) / b)
	}
	return I + blocks*int64(R)*(N+1)*int64(b)
}

// UpperBlockedSimplified returns the asymptotic form of Eq. (13),
// I + N*I*R / M^(1-1/N), evaluated without hidden constants. It is the
// shape Algorithm 2's cost takes with b ~ M^(1/N).
func UpperBlockedSimplified(dims []int, R int, M int64) float64 {
	I := float64(prodInt64(dims))
	N := float64(len(dims))
	return I + N*I*float64(R)/math.Pow(float64(M), 1-1/N)
}

// UpperViaMatmul returns the via-matrix-multiplication baseline cost
// shape of Section VI-A, I + I*R/sqrt(M) (plus the permutation term 2*I
// for modes that require an explicit matricization pass and the KRP
// formation term, both included here for a fair comparison).
func UpperViaMatmul(dims []int, R, n int, M int64) float64 {
	I := float64(prodInt64(dims))
	In := float64(dims[n])
	J := I / In
	perm := 0.0
	if n != 0 {
		perm = 2 * I
	}
	krp := J * float64(R) // stores of the explicit KRP
	for k, d := range dims {
		if k != n {
			krp += float64(R) * float64(d) // factor column loads
		}
	}
	gemm := I + 2*I*float64(R)/math.Sqrt(float64(M)/3) + In*float64(R)
	return perm + krp + gemm
}

func prodInt64(dims []int) int64 {
	p := int64(1)
	for _, d := range dims {
		p *= int64(d)
	}
	return p
}
