package seq

import (
	"fmt"
	"math"

	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// ViaMatmul runs the MTTKRP-via-matrix-multiplication baseline of
// Section III-B: permute the tensor into its mode-n matricization,
// form the Khatri-Rao product explicitly, and multiply the two
// matrices with a communication-efficient blocked GEMM. This approach
// deliberately violates the atomicity assumption of Definition 2.1 —
// it is the comparator the paper argues against.
//
// Accounting:
//   - matricization: free for n = 0 (mode-0 unfolding is the memory
//     layout); otherwise a streaming permutation costing I loads +
//     I stores;
//   - explicit KRP: per rank column, load the N-1 factor columns and
//     store the J = I/I_n product entries;
//   - GEMM: square tiles of side t with 3t^2 <= M, costing
//     2*I_n*J*R/t loads + I_n*R stores, i.e. O(I + IR/sqrt(M)).
func ViaMatmul(x *tensor.Dense, factors []*tensor.Matrix, n int, mach *memsim.Machine) (*Result, error) {
	N, R := checkArgs(x, factors, n)
	dims := x.Dims()
	In := dims[n]
	I := int64(x.Elems())
	J := I / int64(In)

	span := obs.Start(obs.PhaseSeq)
	defer span.Stop()
	start := mach.Snapshot()

	// Step 1: matricize. Mode-0 unfolding is a reshape of column-major
	// storage; other modes require a pass over the tensor through fast
	// memory in chunks.
	xn := tensor.Unfold(x, n)
	if n != 0 {
		chunk := mach.Capacity() / 2
		if chunk < 1 {
			return nil, fmt.Errorf("seq: via-matmul needs M >= 2, have %d", mach.Capacity())
		}
		for moved := int64(0); moved < I; moved += chunk {
			c := chunk
			if moved+c > I {
				c = I - moved
			}
			if err := mach.Load(c); err != nil {
				return nil, err
			}
			if err := mach.Store(c); err != nil {
				return nil, err
			}
		}
	}

	// Step 2: explicit Khatri-Rao product, one rank column at a time.
	// Fast memory holds the N-1 factor columns plus a streaming window.
	krp := tensor.KRPAll(factors, n)
	var colWords int64
	for k := 0; k < N; k++ {
		if k != n {
			colWords += int64(dims[k])
		}
	}
	if colWords+1 > mach.Capacity() {
		return nil, fmt.Errorf("seq: via-matmul KRP formation needs M >= %d, have %d", colWords+1, mach.Capacity())
	}
	for r := 0; r < R; r++ {
		if err := mach.Load(colWords); err != nil { // factor columns
			return nil, err
		}
		// Stream the J product entries out one word at a time.
		if err := mach.Alloc(1); err != nil {
			return nil, err
		}
		for j := int64(0); j < J; j++ {
			if err := mach.StoreKeep(1); err != nil {
				return nil, err
			}
		}
		if err := mach.Evict(1); err != nil {
			return nil, err
		}
		if err := mach.Evict(colWords); err != nil {
			return nil, err
		}
	}

	// Step 3: blocked GEMM B = X_(n) (In x J) * KRP (J x R).
	b, err := gemmBlocked(xn, krp, mach)
	if err != nil {
		return nil, err
	}
	end := mach.Snapshot()
	// Flops: KRP formation (N-2 multiplies per entry) + GEMM (2 per
	// multiply-add). This is the reduced operation count the baseline
	// buys by breaking atomicity.
	flops := J*int64(R)*int64(max(N-2, 0)) + 2*int64(In)*J*int64(R)
	return &Result{B: b, Counts: diff(start, end), Flops: flops}, nil
}

// GemmTile returns the square tile size used by the blocked GEMM for a
// machine of capacity M: the largest t with 3*t^2 <= M.
func GemmTile(M int64) int {
	t := int(math.Sqrt(float64(M) / 3))
	for t > 1 && 3*int64(t)*int64(t) > M {
		t--
	}
	if t < 1 {
		t = 1
	}
	return t
}

// gemmBlocked multiplies a (m x k) by b (k x n) with square tiles,
// counting loads/stores: each C tile stays resident across the k sweep
// while A and B tiles stream through.
func gemmBlocked(a, b *tensor.Matrix, mach *memsim.Machine) (*tensor.Matrix, error) {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	t := GemmTile(mach.Capacity())
	if 3*int64(t)*int64(t) > mach.Capacity() {
		return nil, fmt.Errorf("seq: GEMM needs M >= 3, have %d", mach.Capacity())
	}
	c := tensor.NewMatrix(m, n)
	for i0 := 0; i0 < m; i0 += t {
		i1 := min(i0+t, m)
		for j0 := 0; j0 < n; j0 += t {
			j1 := min(j0+t, n)
			ctile := int64(i1-i0) * int64(j1-j0)
			if err := mach.Alloc(ctile); err != nil { // C tile accumulator
				return nil, err
			}
			for l0 := 0; l0 < k; l0 += t {
				l1 := min(l0+t, k)
				atile := int64(i1-i0) * int64(l1-l0)
				btile := int64(l1-l0) * int64(j1-j0)
				if err := mach.Load(atile); err != nil {
					return nil, err
				}
				if err := mach.Load(btile); err != nil {
					return nil, err
				}
				for j := j0; j < j1; j++ {
					cj := c.Col(j)
					bj := b.Col(j)
					for l := l0; l < l1; l++ {
						al := a.Col(l)
						blj := bj[l]
						for i := i0; i < i1; i++ {
							cj[i] += al[i] * blj
						}
					}
				}
				if err := mach.Evict(atile + btile); err != nil {
					return nil, err
				}
			}
			if err := mach.Store(ctile); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}
