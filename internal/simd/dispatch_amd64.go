//go:build amd64 && !purego

package simd

// Runtime dispatch for amd64. Feature detection is stdlib-only: two
// assembly helpers (CPUID, XGETBV) and the bit tests below — no x/sys
// dependency. The AVX2 kernel set requires all of:
//
//	CPUID.1:ECX  bit 12 (FMA), bit 27 (OSXSAVE), bit 28 (AVX)
//	XCR0         bits 1–2 (OS saves XMM+YMM state on context switch)
//	CPUID.7.0:EBX bit 5 (AVX2)
//
// OSXSAVE must be checked before XGETBV is executed, and XCR0 must be
// checked even when AVX is advertised: a kernel that does not manage
// YMM state would silently corrupt registers across preemption.

const (
	cpuidFMA     = 1 << 12 // leaf 1 ECX
	cpuidOSXSAVE = 1 << 27 // leaf 1 ECX
	cpuidAVX     = 1 << 28 // leaf 1 ECX
	cpuidAVX2    = 1 << 5  // leaf 7.0 EBX
	xcr0AVXState = 0x6     // XMM (bit 1) + YMM (bit 2)
)

func hasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const need = cpuidFMA | cpuidOSXSAVE | cpuidAVX
	if ecx1&need != need {
		return false
	}
	if lo, _ := xgetbv0(); lo&xcr0AVXState != xcr0AVXState {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&cpuidAVX2 != 0
}

func init() {
	if !hasAVX2FMA() {
		return
	}
	features = "avx2,fma"
	if noSIMD() {
		return
	}
	bindAVX2()
}

// bindAVX2 points every dispatch variable at the AVX2+FMA kernels.
// The closures trim trailing slices to the destination length so the
// assembly (which trusts the first header) cannot read out of bounds,
// and short inputs fail the same way the scalar kernels do.
func bindAVX2() {
	Axpy4x4 = func(c0, c1, c2, c3, a0, a1, a2, a3 []float64,
		w00, w01, w02, w03,
		w10, w11, w12, w13,
		w20, w21, w22, w23,
		w30, w31, w32, w33 float64) {
		n := len(c0)
		a0, a1, a2, a3 = a0[:n], a1[:n], a2[:n], a3[:n]
		c1, c2, c3 = c1[:n], c2[:n], c3[:n]
		axpy4x4AVX2(c0, c1, c2, c3, a0, a1, a2, a3,
			w00, w01, w02, w03, w10, w11, w12, w13,
			w20, w21, w22, w23, w30, w31, w32, w33)
	}
	Axpy4x1 = func(c0, c1, c2, c3, a []float64, w0, w1, w2, w3 float64) {
		n := len(c0)
		a = a[:n]
		c1, c2, c3 = c1[:n], c2[:n], c3[:n]
		axpy4x1AVX2(c0, c1, c2, c3, a, w0, w1, w2, w3)
	}
	Axpy1x4 = func(c, a0, a1, a2, a3 []float64, w0, w1, w2, w3 float64) {
		n := len(c)
		a0, a1, a2, a3 = a0[:n], a1[:n], a2[:n], a3[:n]
		axpy1x4AVX2(c, a0, a1, a2, a3, w0, w1, w2, w3)
	}
	Axpy = func(c, a []float64, w float64) {
		a = a[:len(c)]
		axpyAVX2(c, a, w)
	}
	Axpy2 = func(o, p, d, l []float64, v float64) {
		n := len(o)
		p, d, l = p[:n], d[:n], l[:n]
		axpy2AVX2(o, p, d, l, v)
	}
	Dot = func(x, y []float64) float64 {
		y = y[:len(x)]
		return dotAVX2(x, y)
	}
	Dot4 = func(x, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64) {
		n := len(x)
		y0, y1, y2, y3 = y0[:n], y1[:n], y2[:n], y3[:n]
		return dot4AVX2(x, y0, y1, y2, y3)
	}
	Mul = func(dst, a, b []float64) {
		n := len(dst)
		a, b = a[:n], b[:n]
		mulAVX2(dst, a, b)
	}
	MulAdd = func(dst, a, b []float64) {
		n := len(dst)
		a, b = a[:n], b[:n]
		muladdAVX2(dst, a, b)
	}
	Add = func(dst, a []float64) {
		a = a[:len(dst)]
		addAVX2(dst, a)
	}
	AxpyF32 = func(c []float64, a []float32, w float64) {
		a = a[:len(c)]
		axpyF32AVX2(c, a, w)
	}
	Axpy1x4F32 = func(c []float64, a0, a1, a2, a3 []float32, w0, w1, w2, w3 float64) {
		n := len(c)
		a0, a1, a2, a3 = a0[:n], a1[:n], a2[:n], a3[:n]
		axpy1x4F32AVX2(c, a0, a1, a2, a3, w0, w1, w2, w3)
	}
	DotF32 = func(x []float32, y []float64) float64 {
		y = y[:len(x)]
		return dotF32AVX2(x, y)
	}
	Dot4F32 = func(x []float32, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64) {
		n := len(x)
		y0, y1, y2, y3 = y0[:n], y1[:n], y2[:n], y3[:n]
		return dot4F32AVX2(x, y0, y1, y2, y3)
	}
	AxpyRows = func(dst, pk []float64, idx []int32, vals []float64) {
		vals = vals[:len(idx)]
		axpyRowsAVX2(dst, pk, idx, vals)
	}
	AxpyRowsF32 = func(dst, pk []float64, idx []int32, vals []float32) {
		vals = vals[:len(idx)]
		axpyRowsF32AVX2(dst, pk, idx, vals)
	}
	pathName = "avx2"
}
