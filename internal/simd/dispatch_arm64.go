//go:build arm64 && !purego

package simd

// Dispatch for arm64. AdvSIMD (NEON) is an architectural requirement
// of AArch64, so there is nothing to detect — the float64 kernel set
// binds unconditionally unless REPRO_NOSIMD=1 (or the purego tag)
// holds it back. The float32-operand table stays on the scalar
// generics: the Go assembler has no vector float32→float64 widening
// (FCVTL), and the mixed-precision kernels are dominated by the
// float64 accumulate anyway.

func init() {
	features = "neon"
	if noSIMD() {
		return
	}
	bindNEON()
}

func bindNEON() {
	Axpy4x4 = func(c0, c1, c2, c3, a0, a1, a2, a3 []float64,
		w00, w01, w02, w03,
		w10, w11, w12, w13,
		w20, w21, w22, w23,
		w30, w31, w32, w33 float64) {
		n := len(c0)
		a0, a1, a2, a3 = a0[:n], a1[:n], a2[:n], a3[:n]
		c1, c2, c3 = c1[:n], c2[:n], c3[:n]
		axpy4x4NEON(c0, c1, c2, c3, a0, a1, a2, a3,
			w00, w01, w02, w03, w10, w11, w12, w13,
			w20, w21, w22, w23, w30, w31, w32, w33)
	}
	Axpy4x1 = func(c0, c1, c2, c3, a []float64, w0, w1, w2, w3 float64) {
		n := len(c0)
		a = a[:n]
		c1, c2, c3 = c1[:n], c2[:n], c3[:n]
		axpy4x1NEON(c0, c1, c2, c3, a, w0, w1, w2, w3)
	}
	Axpy1x4 = func(c, a0, a1, a2, a3 []float64, w0, w1, w2, w3 float64) {
		n := len(c)
		a0, a1, a2, a3 = a0[:n], a1[:n], a2[:n], a3[:n]
		axpy1x4NEON(c, a0, a1, a2, a3, w0, w1, w2, w3)
	}
	Axpy = func(c, a []float64, w float64) {
		a = a[:len(c)]
		axpyNEON(c, a, w)
	}
	Axpy2 = func(o, p, d, l []float64, v float64) {
		n := len(o)
		p, d, l = p[:n], d[:n], l[:n]
		axpy2NEON(o, p, d, l, v)
	}
	Dot = func(x, y []float64) float64 {
		y = y[:len(x)]
		return dotNEON(x, y)
	}
	Dot4 = func(x, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64) {
		n := len(x)
		y0, y1, y2, y3 = y0[:n], y1[:n], y2[:n], y3[:n]
		return dot4NEON(x, y0, y1, y2, y3)
	}
	Mul = func(dst, a, b []float64) {
		n := len(dst)
		a, b = a[:n], b[:n]
		mulNEON(dst, a, b)
	}
	MulAdd = func(dst, a, b []float64) {
		n := len(dst)
		a, b = a[:n], b[:n]
		muladdNEON(dst, a, b)
	}
	Add = func(dst, a []float64) {
		a = a[:len(dst)]
		addNEON(dst, a)
	}
	// The batched leaf fold binds to a Go loop over the NEON axpy:
	// the win over the generic is the vector inner loop, and a
	// hand-batched NEON kernel can come later without an API change.
	// AxpyRowsF32 stays on the scalar generic with the rest of the
	// float32 table (no vector widening in the Go assembler).
	AxpyRows = func(dst, pk []float64, idx []int32, vals []float64) {
		R := len(dst)
		vals = vals[:len(idx)]
		for c, ix := range idx {
			axpyNEON(dst, pk[int(ix)*R:int(ix)*R+R], vals[c])
		}
	}
	pathName = "neon"
}
