//go:build purego || (!amd64 && !arm64)

package simd

// Portable build: no detector runs, the package-level defaults (the
// *Generic kernels) stay bound, Path() reports "scalar". The purego
// tag forces this file onto amd64/arm64 too, which is the supported
// way to get exactly-scalar numerics without the REPRO_NOSIMD env.
