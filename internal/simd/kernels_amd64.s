//go:build amd64 && !purego

// AVX2+FMA micro-kernels. Conventions shared by every TEXT below:
//
//   - Lengths come from the first destination (or x) slice header;
//     the Go shims in dispatch_amd64.go have already trimmed every
//     other slice to that length, so loads past len cannot happen.
//   - Vector accumulators reduce as (acc0+acc1)+(acc2+acc3), then
//     lanes, then the scalar tail folds into the reduced sum — the
//     accumulator order DotGeneric mirrors.
//   - Every kernel ends with VZEROUPPER to avoid AVX/SSE transition
//     stalls in the surrounding Go code.

#include "textflag.h"

// func axpyAVX2(c, a []float64, w float64)
// c[i] += a[i] * w
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	MOVQ         c_base+0(FP), DI
	MOVQ         a_base+24(FP), SI
	MOVQ         c_len+8(FP), CX
	VBROADCASTSD w+48(FP), Y0
	XORQ         AX, AX

axpy_loop16:
	MOVQ AX, DX
	ADDQ $16, DX
	CMPQ DX, CX
	JGT  axpy_loop4
	VMOVUPD      (DI)(AX*8), Y1
	VMOVUPD      32(DI)(AX*8), Y2
	VMOVUPD      64(DI)(AX*8), Y3
	VMOVUPD      96(DI)(AX*8), Y4
	VFMADD231PD  (SI)(AX*8), Y0, Y1
	VFMADD231PD  32(SI)(AX*8), Y0, Y2
	VFMADD231PD  64(SI)(AX*8), Y0, Y3
	VFMADD231PD  96(SI)(AX*8), Y0, Y4
	VMOVUPD      Y1, (DI)(AX*8)
	VMOVUPD      Y2, 32(DI)(AX*8)
	VMOVUPD      Y3, 64(DI)(AX*8)
	VMOVUPD      Y4, 96(DI)(AX*8)
	MOVQ         DX, AX
	JMP          axpy_loop16

axpy_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  axpy_tail
	VMOVUPD     (DI)(AX*8), Y1
	VFMADD231PD (SI)(AX*8), Y0, Y1
	VMOVUPD     Y1, (DI)(AX*8)
	MOVQ        DX, AX
	JMP         axpy_loop4

axpy_tail:
	CMPQ AX, CX
	JGE  axpy_done
	VMOVSD      (DI)(AX*8), X1
	VFMADD231SD (SI)(AX*8), X0, X1
	VMOVSD      X1, (DI)(AX*8)
	INCQ        AX
	JMP         axpy_tail

axpy_done:
	VZEROUPPER
	RET

// func axpy2AVX2(o, p, d, l []float64, v float64)
// o[i] += v*p[i]; d[i] += v*l[i]
TEXT ·axpy2AVX2(SB), NOSPLIT, $0-104
	MOVQ         o_base+0(FP), DI
	MOVQ         p_base+24(FP), SI
	MOVQ         d_base+48(FP), R8
	MOVQ         l_base+72(FP), R9
	MOVQ         o_len+8(FP), CX
	VBROADCASTSD v+96(FP), Y0
	XORQ         AX, AX

axpy2_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  axpy2_tail
	VMOVUPD     (DI)(AX*8), Y1
	VMOVUPD     (R8)(AX*8), Y2
	VFMADD231PD (SI)(AX*8), Y0, Y1
	VFMADD231PD (R9)(AX*8), Y0, Y2
	VMOVUPD     Y1, (DI)(AX*8)
	VMOVUPD     Y2, (R8)(AX*8)
	MOVQ        DX, AX
	JMP         axpy2_loop4

axpy2_tail:
	CMPQ AX, CX
	JGE  axpy2_done
	VMOVSD      (DI)(AX*8), X1
	VMOVSD      (R8)(AX*8), X2
	VFMADD231SD (SI)(AX*8), X0, X1
	VFMADD231SD (R9)(AX*8), X0, X2
	VMOVSD      X1, (DI)(AX*8)
	VMOVSD      X2, (R8)(AX*8)
	INCQ        AX
	JMP         axpy2_tail

axpy2_done:
	VZEROUPPER
	RET

// func axpy4x1AVX2(c0, c1, c2, c3, a []float64, w0, w1, w2, w3 float64)
// c_j[i] += a[i] * w_j
TEXT ·axpy4x1AVX2(SB), NOSPLIT, $0-152
	MOVQ         c0_base+0(FP), DI
	MOVQ         c1_base+24(FP), R8
	MOVQ         c2_base+48(FP), R9
	MOVQ         c3_base+72(FP), R10
	MOVQ         a_base+96(FP), SI
	MOVQ         c0_len+8(FP), CX
	VBROADCASTSD w0+120(FP), Y0
	VBROADCASTSD w1+128(FP), Y1
	VBROADCASTSD w2+136(FP), Y2
	VBROADCASTSD w3+144(FP), Y3
	XORQ         AX, AX

a4x1_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  a4x1_tail
	VMOVUPD     (SI)(AX*8), Y4
	VMOVUPD     (DI)(AX*8), Y5
	VMOVUPD     (R8)(AX*8), Y6
	VFMADD231PD Y0, Y4, Y5
	VFMADD231PD Y1, Y4, Y6
	VMOVUPD     Y5, (DI)(AX*8)
	VMOVUPD     Y6, (R8)(AX*8)
	VMOVUPD     (R9)(AX*8), Y5
	VMOVUPD     (R10)(AX*8), Y6
	VFMADD231PD Y2, Y4, Y5
	VFMADD231PD Y3, Y4, Y6
	VMOVUPD     Y5, (R9)(AX*8)
	VMOVUPD     Y6, (R10)(AX*8)
	MOVQ        DX, AX
	JMP         a4x1_loop4

a4x1_tail:
	CMPQ AX, CX
	JGE  a4x1_done
	VMOVSD      (SI)(AX*8), X4
	VMOVSD      (DI)(AX*8), X5
	VFMADD231SD X0, X4, X5
	VMOVSD      X5, (DI)(AX*8)
	VMOVSD      (R8)(AX*8), X5
	VFMADD231SD X1, X4, X5
	VMOVSD      X5, (R8)(AX*8)
	VMOVSD      (R9)(AX*8), X5
	VFMADD231SD X2, X4, X5
	VMOVSD      X5, (R9)(AX*8)
	VMOVSD      (R10)(AX*8), X5
	VFMADD231SD X3, X4, X5
	VMOVSD      X5, (R10)(AX*8)
	INCQ        AX
	JMP         a4x1_tail

a4x1_done:
	VZEROUPPER
	RET

// func axpy1x4AVX2(c, a0, a1, a2, a3 []float64, w0, w1, w2, w3 float64)
// c[i] += a0[i]*w0 + a1[i]*w1 + a2[i]*w2 + a3[i]*w3
TEXT ·axpy1x4AVX2(SB), NOSPLIT, $0-152
	MOVQ         c_base+0(FP), DI
	MOVQ         a0_base+24(FP), SI
	MOVQ         a1_base+48(FP), R8
	MOVQ         a2_base+72(FP), R9
	MOVQ         a3_base+96(FP), R10
	MOVQ         c_len+8(FP), CX
	VBROADCASTSD w0+120(FP), Y0
	VBROADCASTSD w1+128(FP), Y1
	VBROADCASTSD w2+136(FP), Y2
	VBROADCASTSD w3+144(FP), Y3
	XORQ         AX, AX

a1x4_loop8:
	MOVQ AX, DX
	ADDQ $8, DX
	CMPQ DX, CX
	JGT  a1x4_loop4
	VMOVUPD     (DI)(AX*8), Y4
	VMOVUPD     32(DI)(AX*8), Y5
	VFMADD231PD (SI)(AX*8), Y0, Y4
	VFMADD231PD 32(SI)(AX*8), Y0, Y5
	VFMADD231PD (R8)(AX*8), Y1, Y4
	VFMADD231PD 32(R8)(AX*8), Y1, Y5
	VFMADD231PD (R9)(AX*8), Y2, Y4
	VFMADD231PD 32(R9)(AX*8), Y2, Y5
	VFMADD231PD (R10)(AX*8), Y3, Y4
	VFMADD231PD 32(R10)(AX*8), Y3, Y5
	VMOVUPD     Y4, (DI)(AX*8)
	VMOVUPD     Y5, 32(DI)(AX*8)
	MOVQ        DX, AX
	JMP         a1x4_loop8

a1x4_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  a1x4_tail
	VMOVUPD     (DI)(AX*8), Y4
	VFMADD231PD (SI)(AX*8), Y0, Y4
	VFMADD231PD (R8)(AX*8), Y1, Y4
	VFMADD231PD (R9)(AX*8), Y2, Y4
	VFMADD231PD (R10)(AX*8), Y3, Y4
	VMOVUPD     Y4, (DI)(AX*8)
	MOVQ        DX, AX
	JMP         a1x4_loop4

a1x4_tail:
	CMPQ AX, CX
	JGE  a1x4_done
	VMOVSD      (DI)(AX*8), X4
	VFMADD231SD (SI)(AX*8), X0, X4
	VFMADD231SD (R8)(AX*8), X1, X4
	VFMADD231SD (R9)(AX*8), X2, X4
	VFMADD231SD (R10)(AX*8), X3, X4
	VMOVSD      X4, (DI)(AX*8)
	INCQ        AX
	JMP         a1x4_tail

a1x4_done:
	VZEROUPPER
	RET

// func axpy4x4AVX2(c0, c1, c2, c3, a0, a1, a2, a3 []float64,
//	w00, ..., w33 float64)
// c_j[i] += Σ_k a_k[i] * w_jk, as two (c pair) x (a quad) passes so
// the eight live weights of each pass stay in registers.
TEXT ·axpy4x4AVX2(SB), NOSPLIT, $0-320
	MOVQ c0_base+0(FP), DI
	MOVQ c1_base+24(FP), R8
	MOVQ c2_base+48(FP), R9
	MOVQ c3_base+72(FP), R10
	MOVQ a0_base+96(FP), SI
	MOVQ a1_base+120(FP), R11
	MOVQ a2_base+144(FP), R12
	MOVQ a3_base+168(FP), R13
	MOVQ c0_len+8(FP), CX

	// Pass 1: c0 and c1.
	VBROADCASTSD w00+192(FP), Y8
	VBROADCASTSD w01+200(FP), Y9
	VBROADCASTSD w02+208(FP), Y10
	VBROADCASTSD w03+216(FP), Y11
	VBROADCASTSD w10+224(FP), Y12
	VBROADCASTSD w11+232(FP), Y13
	VBROADCASTSD w12+240(FP), Y14
	VBROADCASTSD w13+248(FP), Y15
	XORQ         AX, AX

a4x4_p1:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  a4x4_p2_setup
	VMOVUPD     (SI)(AX*8), Y0
	VMOVUPD     (R11)(AX*8), Y1
	VMOVUPD     (R12)(AX*8), Y2
	VMOVUPD     (R13)(AX*8), Y3
	VMOVUPD     (DI)(AX*8), Y4
	VFMADD231PD Y8, Y0, Y4
	VFMADD231PD Y9, Y1, Y4
	VFMADD231PD Y10, Y2, Y4
	VFMADD231PD Y11, Y3, Y4
	VMOVUPD     Y4, (DI)(AX*8)
	VMOVUPD     (R8)(AX*8), Y5
	VFMADD231PD Y12, Y0, Y5
	VFMADD231PD Y13, Y1, Y5
	VFMADD231PD Y14, Y2, Y5
	VFMADD231PD Y15, Y3, Y5
	VMOVUPD     Y5, (R8)(AX*8)
	MOVQ        DX, AX
	JMP         a4x4_p1

	// Pass 2: c2 and c3, over the same vector range.
a4x4_p2_setup:
	VBROADCASTSD w20+256(FP), Y8
	VBROADCASTSD w21+264(FP), Y9
	VBROADCASTSD w22+272(FP), Y10
	VBROADCASTSD w23+280(FP), Y11
	VBROADCASTSD w30+288(FP), Y12
	VBROADCASTSD w31+296(FP), Y13
	VBROADCASTSD w32+304(FP), Y14
	VBROADCASTSD w33+312(FP), Y15
	XORQ         AX, AX

a4x4_p2:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  a4x4_tail
	VMOVUPD     (SI)(AX*8), Y0
	VMOVUPD     (R11)(AX*8), Y1
	VMOVUPD     (R12)(AX*8), Y2
	VMOVUPD     (R13)(AX*8), Y3
	VMOVUPD     (R9)(AX*8), Y4
	VFMADD231PD Y8, Y0, Y4
	VFMADD231PD Y9, Y1, Y4
	VFMADD231PD Y10, Y2, Y4
	VFMADD231PD Y11, Y3, Y4
	VMOVUPD     Y4, (R9)(AX*8)
	VMOVUPD     (R10)(AX*8), Y5
	VFMADD231PD Y12, Y0, Y5
	VFMADD231PD Y13, Y1, Y5
	VFMADD231PD Y14, Y2, Y5
	VFMADD231PD Y15, Y3, Y5
	VMOVUPD     Y5, (R10)(AX*8)
	MOVQ        DX, AX
	JMP         a4x4_p2

	// Scalar tail over the last n%4 rows, all four destinations.
a4x4_tail:
	CMPQ AX, CX
	JGE  a4x4_done
	VMOVSD      (SI)(AX*8), X0
	VMOVSD      (R11)(AX*8), X1
	VMOVSD      (R12)(AX*8), X2
	VMOVSD      (R13)(AX*8), X3
	VMOVSD      (DI)(AX*8), X4
	VFMADD231SD w00+192(FP), X0, X4
	VFMADD231SD w01+200(FP), X1, X4
	VFMADD231SD w02+208(FP), X2, X4
	VFMADD231SD w03+216(FP), X3, X4
	VMOVSD      X4, (DI)(AX*8)
	VMOVSD      (R8)(AX*8), X4
	VFMADD231SD w10+224(FP), X0, X4
	VFMADD231SD w11+232(FP), X1, X4
	VFMADD231SD w12+240(FP), X2, X4
	VFMADD231SD w13+248(FP), X3, X4
	VMOVSD      X4, (R8)(AX*8)
	VMOVSD      (R9)(AX*8), X4
	VFMADD231SD w20+256(FP), X0, X4
	VFMADD231SD w21+264(FP), X1, X4
	VFMADD231SD w22+272(FP), X2, X4
	VFMADD231SD w23+280(FP), X3, X4
	VMOVSD      X4, (R9)(AX*8)
	VMOVSD      (R10)(AX*8), X4
	VFMADD231SD w30+288(FP), X0, X4
	VFMADD231SD w31+296(FP), X1, X4
	VFMADD231SD w32+304(FP), X2, X4
	VFMADD231SD w33+312(FP), X3, X4
	VMOVSD      X4, (R10)(AX*8)
	INCQ        AX
	JMP         a4x4_tail

a4x4_done:
	VZEROUPPER
	RET

// func dotAVX2(x, y []float64) float64
TEXT ·dotAVX2(SB), NOSPLIT, $0-56
	MOVQ   x_base+0(FP), SI
	MOVQ   y_base+24(FP), DI
	MOVQ   x_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ   AX, AX

dot_loop16:
	MOVQ AX, DX
	ADDQ $16, DX
	CMPQ DX, CX
	JGT  dot_loop4
	VMOVUPD     (SI)(AX*8), Y4
	VMOVUPD     32(SI)(AX*8), Y5
	VMOVUPD     64(SI)(AX*8), Y6
	VMOVUPD     96(SI)(AX*8), Y7
	VFMADD231PD (DI)(AX*8), Y4, Y0
	VFMADD231PD 32(DI)(AX*8), Y5, Y1
	VFMADD231PD 64(DI)(AX*8), Y6, Y2
	VFMADD231PD 96(DI)(AX*8), Y7, Y3
	MOVQ        DX, AX
	JMP         dot_loop16

dot_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  dot_reduce
	VMOVUPD     (SI)(AX*8), Y4
	VFMADD231PD (DI)(AX*8), Y4, Y0
	MOVQ        DX, AX
	JMP         dot_loop4

dot_reduce:
	// (Y0+Y1)+(Y2+Y3), then lanes, then the scalar tail.
	VADDPD       Y1, Y0, Y0
	VADDPD       Y3, Y2, Y2
	VADDPD       Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VPERMILPD    $1, X0, X1
	VADDSD       X1, X0, X0

dot_tail:
	CMPQ AX, CX
	JGE  dot_done
	VMOVSD      (SI)(AX*8), X4
	VFMADD231SD (DI)(AX*8), X4, X0
	INCQ        AX
	JMP         dot_tail

dot_done:
	VMOVSD X0, ret+48(FP)
	VZEROUPPER
	RET

// func dot4AVX2(x, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64)
// Four dot products sharing one x stream.
TEXT ·dot4AVX2(SB), NOSPLIT, $0-152
	MOVQ   x_base+0(FP), SI
	MOVQ   y0_base+24(FP), DI
	MOVQ   y1_base+48(FP), R8
	MOVQ   y2_base+72(FP), R9
	MOVQ   y3_base+96(FP), R10
	MOVQ   x_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ   AX, AX

dot4_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  dot4_reduce
	VMOVUPD     (SI)(AX*8), Y4
	VFMADD231PD (DI)(AX*8), Y4, Y0
	VFMADD231PD (R8)(AX*8), Y4, Y1
	VFMADD231PD (R9)(AX*8), Y4, Y2
	VFMADD231PD (R10)(AX*8), Y4, Y3
	MOVQ        DX, AX
	JMP         dot4_loop4

dot4_reduce:
	VEXTRACTF128 $1, Y0, X4
	VADDPD       X4, X0, X0
	VPERMILPD    $1, X0, X4
	VADDSD       X4, X0, X0
	VEXTRACTF128 $1, Y1, X4
	VADDPD       X4, X1, X1
	VPERMILPD    $1, X1, X4
	VADDSD       X4, X1, X1
	VEXTRACTF128 $1, Y2, X4
	VADDPD       X4, X2, X2
	VPERMILPD    $1, X2, X4
	VADDSD       X4, X2, X2
	VEXTRACTF128 $1, Y3, X4
	VADDPD       X4, X3, X3
	VPERMILPD    $1, X3, X4
	VADDSD       X4, X3, X3

dot4_tail:
	CMPQ AX, CX
	JGE  dot4_done
	VMOVSD      (SI)(AX*8), X4
	VFMADD231SD (DI)(AX*8), X4, X0
	VFMADD231SD (R8)(AX*8), X4, X1
	VFMADD231SD (R9)(AX*8), X4, X2
	VFMADD231SD (R10)(AX*8), X4, X3
	INCQ        AX
	JMP         dot4_tail

dot4_done:
	VMOVSD X0, s0+120(FP)
	VMOVSD X1, s1+128(FP)
	VMOVSD X2, s2+136(FP)
	VMOVSD X3, s3+144(FP)
	VZEROUPPER
	RET

// func mulAVX2(dst, a, b []float64)
// dst[i] = a[i] * b[i]
TEXT ·mulAVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ dst_len+8(FP), CX
	XORQ AX, AX

mul_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  mul_tail
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  (R8)(AX*8), Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	MOVQ    DX, AX
	JMP     mul_loop4

mul_tail:
	CMPQ AX, CX
	JGE  mul_done
	VMOVSD (SI)(AX*8), X1
	VMULSD (R8)(AX*8), X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ   AX
	JMP    mul_tail

mul_done:
	VZEROUPPER
	RET

// func muladdAVX2(dst, a, b []float64)
// dst[i] += a[i] * b[i]
TEXT ·muladdAVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), R8
	MOVQ dst_len+8(FP), CX
	XORQ AX, AX

muladd_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  muladd_tail
	VMOVUPD     (DI)(AX*8), Y1
	VMOVUPD     (SI)(AX*8), Y2
	VFMADD231PD (R8)(AX*8), Y2, Y1
	VMOVUPD     Y1, (DI)(AX*8)
	MOVQ        DX, AX
	JMP         muladd_loop4

muladd_tail:
	CMPQ AX, CX
	JGE  muladd_done
	VMOVSD      (DI)(AX*8), X1
	VMOVSD      (SI)(AX*8), X2
	VFMADD231SD (R8)(AX*8), X2, X1
	VMOVSD      X1, (DI)(AX*8)
	INCQ        AX
	JMP         muladd_tail

muladd_done:
	VZEROUPPER
	RET

// func addAVX2(dst, a []float64)
// dst[i] += a[i]
TEXT ·addAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ dst_len+8(FP), CX
	XORQ AX, AX

add_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  add_tail
	VMOVUPD (DI)(AX*8), Y1
	VADDPD  (SI)(AX*8), Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	MOVQ    DX, AX
	JMP     add_loop4

add_tail:
	CMPQ AX, CX
	JGE  add_done
	VMOVSD (DI)(AX*8), X1
	VADDSD (SI)(AX*8), X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ   AX
	JMP    add_tail

add_done:
	VZEROUPPER
	RET

// func axpyF32AVX2(c []float64, a []float32, w float64)
// c[i] += float64(a[i]) * w — float32 stream widened in registers.
TEXT ·axpyF32AVX2(SB), NOSPLIT, $0-56
	MOVQ         c_base+0(FP), DI
	MOVQ         a_base+24(FP), SI
	MOVQ         c_len+8(FP), CX
	VBROADCASTSD w+48(FP), Y0
	XORQ         AX, AX

axpyf32_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  axpyf32_tail
	VCVTPS2PD   (SI)(AX*4), Y1
	VMOVUPD     (DI)(AX*8), Y2
	VFMADD231PD Y0, Y1, Y2
	VMOVUPD     Y2, (DI)(AX*8)
	MOVQ        DX, AX
	JMP         axpyf32_loop4

axpyf32_tail:
	CMPQ AX, CX
	JGE  axpyf32_done
	VMOVSS      (SI)(AX*4), X1
	VCVTSS2SD   X1, X1, X1
	VMOVSD      (DI)(AX*8), X2
	VFMADD231SD X0, X1, X2
	VMOVSD      X2, (DI)(AX*8)
	INCQ        AX
	JMP         axpyf32_tail

axpyf32_done:
	VZEROUPPER
	RET

// func axpy1x4F32AVX2(c []float64, a0, a1, a2, a3 []float32,
//	w0, w1, w2, w3 float64)
TEXT ·axpy1x4F32AVX2(SB), NOSPLIT, $0-152
	MOVQ         c_base+0(FP), DI
	MOVQ         a0_base+24(FP), SI
	MOVQ         a1_base+48(FP), R8
	MOVQ         a2_base+72(FP), R9
	MOVQ         a3_base+96(FP), R10
	MOVQ         c_len+8(FP), CX
	VBROADCASTSD w0+120(FP), Y0
	VBROADCASTSD w1+128(FP), Y1
	VBROADCASTSD w2+136(FP), Y2
	VBROADCASTSD w3+144(FP), Y3
	XORQ         AX, AX

a1x4f32_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  a1x4f32_tail
	VMOVUPD     (DI)(AX*8), Y4
	VCVTPS2PD   (SI)(AX*4), Y5
	VFMADD231PD Y0, Y5, Y4
	VCVTPS2PD   (R8)(AX*4), Y5
	VFMADD231PD Y1, Y5, Y4
	VCVTPS2PD   (R9)(AX*4), Y5
	VFMADD231PD Y2, Y5, Y4
	VCVTPS2PD   (R10)(AX*4), Y5
	VFMADD231PD Y3, Y5, Y4
	VMOVUPD     Y4, (DI)(AX*8)
	MOVQ        DX, AX
	JMP         a1x4f32_loop4

a1x4f32_tail:
	CMPQ AX, CX
	JGE  a1x4f32_done
	VMOVSD      (DI)(AX*8), X4
	VMOVSS      (SI)(AX*4), X5
	VCVTSS2SD   X5, X5, X5
	VFMADD231SD X0, X5, X4
	VMOVSS      (R8)(AX*4), X5
	VCVTSS2SD   X5, X5, X5
	VFMADD231SD X1, X5, X4
	VMOVSS      (R9)(AX*4), X5
	VCVTSS2SD   X5, X5, X5
	VFMADD231SD X2, X5, X4
	VMOVSS      (R10)(AX*4), X5
	VCVTSS2SD   X5, X5, X5
	VFMADD231SD X3, X5, X4
	VMOVSD      X4, (DI)(AX*8)
	INCQ        AX
	JMP         a1x4f32_tail

a1x4f32_done:
	VZEROUPPER
	RET

// func dotF32AVX2(x []float32, y []float64) float64
TEXT ·dotF32AVX2(SB), NOSPLIT, $0-56
	MOVQ   x_base+0(FP), SI
	MOVQ   y_base+24(FP), DI
	MOVQ   x_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	XORQ   AX, AX

dotf32_loop8:
	MOVQ AX, DX
	ADDQ $8, DX
	CMPQ DX, CX
	JGT  dotf32_loop4
	VCVTPS2PD   (SI)(AX*4), Y4
	VCVTPS2PD   16(SI)(AX*4), Y5
	VFMADD231PD (DI)(AX*8), Y4, Y0
	VFMADD231PD 32(DI)(AX*8), Y5, Y1
	MOVQ        DX, AX
	JMP         dotf32_loop8

dotf32_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  dotf32_reduce
	VCVTPS2PD   (SI)(AX*4), Y4
	VFMADD231PD (DI)(AX*8), Y4, Y0
	MOVQ        DX, AX
	JMP         dotf32_loop4

dotf32_reduce:
	VADDPD       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VPERMILPD    $1, X0, X1
	VADDSD       X1, X0, X0

dotf32_tail:
	CMPQ AX, CX
	JGE  dotf32_done
	VMOVSS      (SI)(AX*4), X4
	VCVTSS2SD   X4, X4, X4
	VFMADD231SD (DI)(AX*8), X4, X0
	INCQ        AX
	JMP         dotf32_tail

dotf32_done:
	VMOVSD X0, ret+48(FP)
	VZEROUPPER
	RET

// func dot4F32AVX2(x []float32, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64)
TEXT ·dot4F32AVX2(SB), NOSPLIT, $0-152
	MOVQ   x_base+0(FP), SI
	MOVQ   y0_base+24(FP), DI
	MOVQ   y1_base+48(FP), R8
	MOVQ   y2_base+72(FP), R9
	MOVQ   y3_base+96(FP), R10
	MOVQ   x_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ   AX, AX

dot4f32_loop4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  dot4f32_reduce
	VCVTPS2PD   (SI)(AX*4), Y4
	VFMADD231PD (DI)(AX*8), Y4, Y0
	VFMADD231PD (R8)(AX*8), Y4, Y1
	VFMADD231PD (R9)(AX*8), Y4, Y2
	VFMADD231PD (R10)(AX*8), Y4, Y3
	MOVQ        DX, AX
	JMP         dot4f32_loop4

dot4f32_reduce:
	VEXTRACTF128 $1, Y0, X4
	VADDPD       X4, X0, X0
	VPERMILPD    $1, X0, X4
	VADDSD       X4, X0, X0
	VEXTRACTF128 $1, Y1, X4
	VADDPD       X4, X1, X1
	VPERMILPD    $1, X1, X4
	VADDSD       X4, X1, X1
	VEXTRACTF128 $1, Y2, X4
	VADDPD       X4, X2, X2
	VPERMILPD    $1, X2, X4
	VADDSD       X4, X2, X2
	VEXTRACTF128 $1, Y3, X4
	VADDPD       X4, X3, X3
	VPERMILPD    $1, X3, X4
	VADDSD       X4, X3, X3

dot4f32_tail:
	CMPQ AX, CX
	JGE  dot4f32_done
	VMOVSS      (SI)(AX*4), X4
	VCVTSS2SD   X4, X4, X4
	VFMADD231SD (DI)(AX*8), X4, X0
	VFMADD231SD (R8)(AX*8), X4, X1
	VFMADD231SD (R9)(AX*8), X4, X2
	VFMADD231SD (R10)(AX*8), X4, X3
	INCQ        AX
	JMP         dot4f32_tail

dot4f32_done:
	VMOVSD X0, s0+120(FP)
	VMOVSD X1, s1+128(FP)
	VMOVSD X2, s2+136(FP)
	VMOVSD X3, s3+144(FP)
	VZEROUPPER
	RET

// func axpyRowsAVX2(dst, pk []float64, idx []int32, vals []float64)
// dst[r] += vals[c] * pk[idx[c]*R+r] for every c; R = len(dst).
// Batched CSF leaf fold: the caller guarantees the gathered rows lie
// within pk, and the shim trims vals to len(idx). R == 16 (the
// benchmark sweet spot, 4 ymm registers) keeps dst resident in
// registers across the whole leaf run; the generic path re-loads dst
// per leaf (L1-hot: dst is one fiber's accumulator row). Element
// order matches AxpyRowsGeneric: leaves in stream order, one FMA per
// leaf per element.
TEXT ·axpyRowsAVX2(SB), NOSPLIT, $0-96
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ pk_base+24(FP), SI
	MOVQ idx_base+48(FP), R8
	MOVQ idx_len+56(FP), R9
	MOVQ vals_base+72(FP), R10
	XORQ BX, BX
	CMPQ R9, $0
	JE   rows_done
	CMPQ CX, $16
	JE   rows16

rows_loop:
	CMPQ BX, R9
	JGE  rows_done
	MOVLQSX      (R8)(BX*4), DX
	IMULQ        CX, DX
	LEAQ         (SI)(DX*8), R11
	VBROADCASTSD (R10)(BX*8), Y0
	XORQ         AX, AX

rows_inner4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  rows_inner_tail
	VMOVUPD     (DI)(AX*8), Y1
	VFMADD231PD (R11)(AX*8), Y0, Y1
	VMOVUPD     Y1, (DI)(AX*8)
	MOVQ        DX, AX
	JMP         rows_inner4

rows_inner_tail:
	CMPQ AX, CX
	JGE  rows_next
	VMOVSD      (DI)(AX*8), X1
	VFMADD231SD (R11)(AX*8), X0, X1
	VMOVSD      X1, (DI)(AX*8)
	INCQ        AX
	JMP         rows_inner_tail

rows_next:
	INCQ BX
	JMP  rows_loop

rows16:
	VMOVUPD (DI), Y1
	VMOVUPD 32(DI), Y2
	VMOVUPD 64(DI), Y3
	VMOVUPD 96(DI), Y4

rows16_loop:
	CMPQ BX, R9
	JGE  rows16_store
	MOVLQSX      (R8)(BX*4), DX
	SHLQ         $4, DX
	LEAQ         (SI)(DX*8), R11
	VBROADCASTSD (R10)(BX*8), Y0
	VFMADD231PD  (R11), Y0, Y1
	VFMADD231PD  32(R11), Y0, Y2
	VFMADD231PD  64(R11), Y0, Y3
	VFMADD231PD  96(R11), Y0, Y4
	INCQ         BX
	JMP          rows16_loop

rows16_store:
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	VMOVUPD Y3, 64(DI)
	VMOVUPD Y4, 96(DI)

rows_done:
	VZEROUPPER
	RET

// func axpyRowsF32AVX2(dst, pk []float64, idx []int32, vals []float32)
// axpyRowsAVX2 over a float32 value stream: each leaf value widens
// exactly (VCVTSS2SD) before the broadcast, so the accumulation
// arithmetic is identical to the float64 variant fed the re-rounded
// stream — the CSF f32-vs-f64 bitwise contract depends on this.
TEXT ·axpyRowsF32AVX2(SB), NOSPLIT, $0-96
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ pk_base+24(FP), SI
	MOVQ idx_base+48(FP), R8
	MOVQ idx_len+56(FP), R9
	MOVQ vals_base+72(FP), R10
	XORQ BX, BX
	CMPQ R9, $0
	JE   rowsf_done
	CMPQ CX, $16
	JE   rowsf16

rowsf_loop:
	CMPQ BX, R9
	JGE  rowsf_done
	MOVLQSX      (R8)(BX*4), DX
	IMULQ        CX, DX
	LEAQ         (SI)(DX*8), R11
	VCVTSS2SD    (R10)(BX*4), X0, X0
	VBROADCASTSD X0, Y0
	XORQ         AX, AX

rowsf_inner4:
	MOVQ AX, DX
	ADDQ $4, DX
	CMPQ DX, CX
	JGT  rowsf_inner_tail
	VMOVUPD     (DI)(AX*8), Y1
	VFMADD231PD (R11)(AX*8), Y0, Y1
	VMOVUPD     Y1, (DI)(AX*8)
	MOVQ        DX, AX
	JMP         rowsf_inner4

rowsf_inner_tail:
	CMPQ AX, CX
	JGE  rowsf_next
	VMOVSD      (DI)(AX*8), X1
	VFMADD231SD (R11)(AX*8), X0, X1
	VMOVSD      X1, (DI)(AX*8)
	INCQ        AX
	JMP         rowsf_inner_tail

rowsf_next:
	INCQ BX
	JMP  rowsf_loop

rowsf16:
	VMOVUPD (DI), Y1
	VMOVUPD 32(DI), Y2
	VMOVUPD 64(DI), Y3
	VMOVUPD 96(DI), Y4

rowsf16_loop:
	CMPQ BX, R9
	JGE  rowsf16_store
	MOVLQSX      (R8)(BX*4), DX
	SHLQ         $4, DX
	LEAQ         (SI)(DX*8), R11
	VCVTSS2SD    (R10)(BX*4), X0, X0
	VBROADCASTSD X0, Y0
	VFMADD231PD  (R11), Y0, Y1
	VFMADD231PD  32(R11), Y0, Y2
	VFMADD231PD  64(R11), Y0, Y3
	VFMADD231PD  96(R11), Y0, Y4
	INCQ         BX
	JMP          rowsf16_loop

rowsf16_store:
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	VMOVUPD Y3, 64(DI)
	VMOVUPD Y4, 96(DI)

rowsf_done:
	VZEROUPPER
	RET
